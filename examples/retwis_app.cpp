// Retwis-style social network on Carousel — the workload the paper's
// introduction motivates. Users are partitioned geographically; a user's
// data lives in (and is led from) their home region. The app implements
// the four Retwis operations as 2FI transactions:
//
//   add_user       1 get / 3 puts   (profile, followers, timeline)
//   follow         2 gets / 2 puts  (both users' follow lists)
//   post_tweet     3 gets / 5 puts  (tweet + fan-out to timeline keys)
//   load_timeline  reads only       (read-only fast path: 1 roundtrip)
//
// A follow between users in the same region is a Local-Replica
// Transaction; following someone across the world is a Remote-Partition
// Transaction — the case Carousel optimizes. The demo prints per-
// operation latencies for both.
//
// Run:  ./build/examples/retwis_app

#include <cstdio>
#include <string>

#include "harness/cluster.h"

using namespace carousel;

namespace {

struct App {
  core::Cluster* cluster;

  Key Profile(const std::string& user) { return "user:" + user; }
  Key Follows(const std::string& user) { return "follows:" + user; }
  Key Timeline(const std::string& user) { return "timeline:" + user; }

  /// Runs `fn` as a transaction from the given client and reports latency.
  template <typename Body>
  void Run(int client_index, const std::string& label, KeyList reads,
           KeyList writes, Body body) {
    core::CarouselClient* client = cluster->client(client_index);
    const TxnId tid = client->Begin();
    const SimTime start = cluster->sim().now();
    client->ReadAndPrepare(
        tid, reads, writes,
        [this, client, tid, label, start, body, writes](
            Status status, const core::CarouselClient::ReadResults& reads) {
          if (!status.ok()) {
            std::printf("  %-28s -> %s\n", label.c_str(),
                        status.ToString().c_str());
            return;
          }
          if (writes.empty()) {
            std::printf("  %-28s -> OK (read-only) in %6.1f ms\n",
                        label.c_str(),
                        (cluster->sim().now() - start) / 1000.0);
            return;
          }
          body(client, tid, reads);
          client->Commit(tid, [this, label, start](Status s) {
            std::printf("  %-28s -> %-7s in %6.1f ms\n", label.c_str(),
                        s.ok() ? "OK" : "ABORTED",
                        (cluster->sim().now() - start) / 1000.0);
          });
        });
    cluster->sim().RunFor(3 * kMicrosPerSecond);
  }

  void AddUser(int client_index, const std::string& user) {
    Run(client_index, "add_user(" + user + ")", {Profile(user)},
        {Profile(user), Follows(user), Timeline(user)},
        [this, user](core::CarouselClient* client, TxnId tid,
                     const core::CarouselClient::ReadResults&) {
          client->Write(tid, Profile(user), "name=" + user);
          client->Write(tid, Follows(user), "");
          client->Write(tid, Timeline(user), "");
        });
  }

  void Follow(int client_index, const std::string& who,
              const std::string& whom) {
    Run(client_index, "follow(" + who + "->" + whom + ")",
        {Follows(who), Follows(whom)}, {Follows(who), Follows(whom)},
        [this, who, whom](core::CarouselClient* client, TxnId tid,
                          const core::CarouselClient::ReadResults& reads) {
          client->Write(tid, Follows(who),
                        reads.at(Follows(who)).value + whom + ",");
          client->Write(tid, Follows(whom),
                        reads.at(Follows(whom)).value + "<-" + who + ",");
        });
  }

  void PostTweet(int client_index, const std::string& user,
                 const std::string& text,
                 const std::vector<std::string>& followers) {
    KeyList reads = {Profile(user), Follows(user), Timeline(user)};
    KeyList writes = {Timeline(user)};
    for (const auto& f : followers) writes.push_back(Timeline(f));
    Run(client_index, "post_tweet(" + user + ")", reads, writes,
        [this, user, text, followers](
            core::CarouselClient* client, TxnId tid,
            const core::CarouselClient::ReadResults& reads) {
          const std::string entry = user + ": " + text + "\n";
          client->Write(tid, Timeline(user),
                        reads.at(Timeline(user)).value + entry);
          for (const auto& f : followers) {
            client->Write(tid, Timeline(f), entry);
          }
        });
  }

  void LoadTimeline(int client_index, const std::string& user) {
    Run(client_index, "load_timeline(" + user + ")", {Timeline(user)}, {},
        [](core::CarouselClient*, TxnId,
           const core::CarouselClient::ReadResults&) {});
  }
};

}  // namespace

int main() {
  Topology topology = Topology::PaperEc2();
  topology.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) topology.AddClient(dc);

  core::CarouselOptions options;
  options.fast_path = true;
  options.local_reads = true;
  core::Cluster cluster(std::move(topology), options, sim::NetworkOptions{},
                        /*seed=*/42);
  cluster.Start();

  App app{&cluster};
  // Clients 0..4 live in US-West, US-East, Europe, Asia, Australia.
  std::printf("== sign-ups from three regions ==\n");
  app.AddUser(0, "ada");     // US-West
  app.AddUser(2, "grace");   // Europe
  app.AddUser(4, "alan");    // Australia

  std::printf("== social graph: local and cross-region follows ==\n");
  app.Follow(0, "ada", "grace");  // US-West client, data in 2 regions (RPT).
  app.Follow(4, "alan", "grace");
  app.Follow(2, "grace", "ada");

  std::printf("== tweets fan out to follower timelines ==\n");
  app.PostTweet(2, "grace", "CPC overlaps 2PC with consensus!",
                {"ada", "alan"});
  app.PostTweet(0, "ada", "one WAN roundtrip when replicas are local",
                {"grace"});

  std::printf("== timelines load in one roundtrip (read-only) ==\n");
  app.LoadTimeline(0, "ada");
  app.LoadTimeline(4, "alan");

  // Show the durable state.
  cluster.sim().RunFor(5 * kMicrosPerSecond);
  const Key k = app.Timeline("alan");
  const PartitionId p = cluster.directory().PartitionFor(k);
  std::printf("== alan's timeline (from partition %d leader) ==\n%s", p,
              cluster.LeaderOf(p)->store().Get(k).value.c_str());
  return 0;
}
