// Dependent reads via reconnaissance transactions (paper §3.2).
//
// The 2FI model requires all keys up front, so a TPC-C-style Payment that
// identifies the customer *by name* cannot be one transaction: the
// customer key comes out of a secondary index. The paper's workaround is
// a read-only reconnaissance transaction that resolves the index, followed
// by the real payment which re-validates the index entry and retries on a
// mismatch. This demo runs payments by name while a rename/merge workload
// keeps moving an index entry, showing retries in action and auditing the
// final balances.
//
// Run:  ./build/examples/payment_by_name

#include <cstdio>
#include <string>

#include "harness/cluster.h"
#include "carousel/recon.h"

using namespace carousel;
using core::CarouselClient;
using core::ReconnaissanceRunner;

namespace {

Key IndexKey(const std::string& name) { return "index:" + name; }
Key CustomerKey(const std::string& id) { return "cust:" + id; }

void SeedKey(core::Cluster& cluster, const Key& key, const Value& value) {
  CarouselClient* client = cluster.client(0);
  const TxnId tid = client->Begin();
  client->ReadAndPrepare(tid, {}, {key},
                         [&, tid, key, value](Status,
                                              const CarouselClient::ReadResults&) {
                           client->Write(tid, key, value);
                           client->Commit(tid, [](Status) {});
                         });
  cluster.sim().RunFor(2 * kMicrosPerSecond);
}

}  // namespace

int main() {
  Topology topology = Topology::PaperEc2();
  topology.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) topology.AddClient(dc);
  core::CarouselOptions options;
  options.fast_path = true;
  options.local_reads = true;
  core::Cluster cluster(std::move(topology), options, sim::NetworkOptions{},
                        /*seed=*/99);
  cluster.Start();

  // Two customer records plus a name index.
  SeedKey(cluster, CustomerKey("1001"), "100");
  SeedKey(cluster, CustomerKey("2002"), "100");
  SeedKey(cluster, IndexKey("smith"), "1001");
  std::printf("seeded: smith -> cust 1001 (balance 100); cust 2002 "
              "(balance 100)\n\n");

  // An account-merge job re-points 'smith' to customer 2002 after 150 ms.
  cluster.sim().Schedule(150 * kMicrosPerMilli, [&]() {
    CarouselClient* admin = cluster.client(4);
    const TxnId tid = admin->Begin();
    admin->ReadAndPrepare(
        tid, {}, {IndexKey("smith")},
        [&, tid](Status, const CarouselClient::ReadResults&) {
          admin->Write(tid, IndexKey("smith"), "2002");
          admin->Commit(tid, [](Status s) {
            std::printf("[admin] index smith -> 2002 (%s)\n",
                        s.ToString().c_str());
          });
        });
  });

  // Payment of 40 to 'smith', racing the merge.
  int total_payments = 0;
  auto pay = [&](int client_index, int amount) {
    CarouselClient* client = cluster.client(client_index);
    ReconnaissanceRunner::Run(
        client, {IndexKey("smith")},
        [](const ReconnaissanceRunner::ReadResults& recon) {
          const Key record = CustomerKey(recon.at(IndexKey("smith")).value);
          std::printf("[recon] smith resolves to %s\n", record.c_str());
          return ReconnaissanceRunner::MainTxn{{record}, {record}};
        },
        [amount](CarouselClient* c, const TxnId& tid,
                 const ReconnaissanceRunner::ReadResults& reads) {
          for (const auto& [k, vv] : reads) {
            if (k.rfind("cust:", 0) == 0) {
              c->Write(tid, k, std::to_string(std::stoi(vv.value) + amount));
            }
          }
        },
        [&, amount](Status status, int attempts) {
          std::printf("[payment] %+d -> %s after %d attempt(s)\n", amount,
                      status.ToString().c_str(), attempts);
          if (status.ok()) total_payments += amount;
        });
  };
  pay(0, 40);   // From US-West, racing the merge.
  cluster.sim().RunFor(5 * kMicrosPerSecond);
  pay(2, 15);   // From Europe, after the dust settles.
  cluster.sim().RunFor(10 * kMicrosPerSecond);

  const int b1 = std::stoi(
      cluster.LeaderOf(cluster.directory().PartitionFor(CustomerKey("1001")))
          ->store()
          .Get(CustomerKey("1001"))
          .value);
  const int b2 = std::stoi(
      cluster.LeaderOf(cluster.directory().PartitionFor(CustomerKey("2002")))
          ->store()
          .Get(CustomerKey("2002"))
          .value);
  std::printf("\nfinal balances: cust 1001 = %d, cust 2002 = %d\n", b1, b2);
  std::printf("audit: balances sum to %d (200 seed + %d payments): %s\n",
              b1 + b2, total_payments,
              b1 + b2 == 200 + total_payments ? "CONSISTENT" : "BROKEN");
  return b1 + b2 == 200 + total_payments ? 0 : 1;
}
