// Bank-transfer demo: concurrent transfers between accounts sharded over
// partitions in 5 geo-distributed DCs (the paper's EC2 topology). Each
// transfer is a 2FI read-modify-write transaction; conflicting transfers
// abort rather than lose money. At the end the example audits the books:
// the total balance is conserved and no account is negative — the
// serializability guarantee, observable.
//
// Run:  ./build/examples/bank_transfer

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "common/rng.h"

using namespace carousel;

namespace {

constexpr int kAccounts = 16;
constexpr int kInitialBalance = 1000;
constexpr int kTransfers = 200;

Key AccountKey(int i) { return "acct:" + std::to_string(i); }

int Balance(const Value& v) { return v.empty() ? 0 : std::stoi(v); }

}  // namespace

int main() {
  Topology topology = Topology::PaperEc2();
  topology.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) topology.AddClient(dc);

  core::CarouselOptions options;
  options.fast_path = true;
  options.local_reads = true;
  core::Cluster cluster(std::move(topology), options, sim::NetworkOptions{},
                        /*seed=*/2024);
  cluster.Start();

  // Seed the accounts via blind writes.
  core::CarouselClient* seeder = cluster.client(0);
  for (int i = 0; i < kAccounts; ++i) {
    const TxnId tid = seeder->Begin();
    seeder->ReadAndPrepare(
        tid, {}, {AccountKey(i)},
        [&, tid, i](Status, const core::CarouselClient::ReadResults&) {
          seeder->Write(tid, AccountKey(i), std::to_string(kInitialBalance));
          seeder->Commit(tid, [](Status) {});
        });
  }
  cluster.sim().RunFor(10 * kMicrosPerSecond);
  std::printf("seeded %d accounts with %d each (total %d)\n", kAccounts,
              kInitialBalance, kAccounts * kInitialBalance);

  // Fire concurrent transfers from clients in every region.
  Rng rng(7);
  int committed = 0, aborted = 0, declined = 0;
  for (int i = 0; i < kTransfers; ++i) {
    const SimTime at =
        cluster.sim().now() + rng.UniformInt(0, 20 * kMicrosPerSecond);
    const int client_index =
        static_cast<int>(rng.UniformInt(0, cluster.clients().size() - 1));
    int from = static_cast<int>(rng.UniformInt(0, kAccounts - 1));
    int to = static_cast<int>(rng.UniformInt(0, kAccounts - 2));
    if (to >= from) to++;
    const int amount = static_cast<int>(rng.UniformInt(1, 250));

    cluster.sim().ScheduleAt(at, [&, client_index, from, to, amount]() {
      core::CarouselClient* client = cluster.client(client_index);
      const Key src = AccountKey(from), dst = AccountKey(to);
      const TxnId tid = client->Begin();
      client->ReadAndPrepare(
          tid, {src, dst}, {src, dst},
          [&, client, tid, src, dst, amount](
              Status status, const core::CarouselClient::ReadResults& reads) {
            if (!status.ok()) {
              aborted++;
              return;
            }
            const int src_balance = Balance(reads.at(src).value);
            if (src_balance < amount) {
              declined++;  // Insufficient funds: application-level abort.
              client->Abort(tid);
              return;
            }
            client->Write(tid, src, std::to_string(src_balance - amount));
            client->Write(tid, dst,
                          std::to_string(Balance(reads.at(dst).value) + amount));
            client->Commit(tid, [&](Status s) {
              if (s.ok()) {
                committed++;
              } else {
                aborted++;  // OCC conflict with a concurrent transfer.
              }
            });
          });
    });
  }
  cluster.sim().RunFor(60 * kMicrosPerSecond);

  // Audit.
  int total = 0, negative = 0;
  for (int i = 0; i < kAccounts; ++i) {
    const PartitionId p = cluster.directory().PartitionFor(AccountKey(i));
    core::CarouselServer* leader = cluster.LeaderOf(p);
    const int balance = Balance(leader->store().Get(AccountKey(i)).value);
    if (balance < 0) negative++;
    total += balance;
  }
  std::printf("transfers: %d committed, %d aborted (conflict), %d declined\n",
              committed, aborted, declined);
  std::printf("audit: total=%d (expected %d), negative accounts=%d\n", total,
              kAccounts * kInitialBalance, negative);
  const bool ok = total == kAccounts * kInitialBalance && negative == 0 &&
                  committed + aborted + declined == kTransfers;
  std::printf("%s\n", ok ? "BOOKS BALANCE: serializability held"
                         : "AUDIT FAILED");
  return ok ? 0 : 1;
}
