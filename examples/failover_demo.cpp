// Failover demo: Carousel keeps committing through a participant-leader
// crash. The demo drives a steady stream of transactions against one
// partition, kills the partition's Raft leader mid-stream, and shows (a)
// the election + CPC recovery on the new leader, (b) the client-side
// retransmissions masking the failure, and (c) that no committed write is
// lost and no pending transaction leaks.
//
// Run:  ./build/examples/failover_demo

#include <cstdio>
#include <vector>

#include "harness/cluster.h"

using namespace carousel;

int main() {
  Topology topology = Topology::Uniform(/*num_dcs=*/3, /*rtt_ms=*/20);
  topology.PlacePartitions(3, 3);
  topology.AddClient(0);

  core::CarouselOptions options;
  options.fast_path = true;
  options.local_reads = true;
  // Small timers so the demo fails over quickly.
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.client_retry_timeout = 1'000'000;
  options.coordinator_retry_interval = 1'000'000;

  core::Cluster cluster(std::move(topology), options, sim::NetworkOptions{},
                        /*seed=*/3);
  cluster.Start();

  // Find a key in partition 1 (whose leader we will crash).
  Key key;
  for (int i = 0;; ++i) {
    key = "counter" + std::to_string(i);
    if (cluster.directory().PartitionFor(key) == 1) break;
  }
  const NodeId doomed = cluster.topology().InitialLeader(1);
  std::printf("target key '%s' on partition 1; leader is node %d (DC%d)\n",
              key.c_str(), doomed, cluster.topology().DcOf(doomed));

  // Issue 12 sequential increments, one every 400 ms; crash the leader
  // while transaction #4 is in flight, recover it at 8 s.
  core::CarouselClient* client = cluster.client(0);
  int committed = 0, failed = 0;
  std::vector<double> latencies;

  for (int i = 0; i < 12; ++i) {
    cluster.sim().ScheduleAt(
        cluster.sim().now() + 400 * kMicrosPerMilli * (i + 1), [&, i]() {
          const TxnId tid = client->Begin();
          const SimTime start = cluster.sim().now();
          client->ReadAndPrepare(
              tid, {key}, {key},
              [&, tid, start, i](Status status,
                                 const core::CarouselClient::ReadResults& r) {
                if (!status.ok()) {
                  std::printf("txn %2d: read failed: %s\n", i,
                              status.ToString().c_str());
                  failed++;
                  return;
                }
                const int value =
                    r.at(key).value.empty() ? 0 : std::stoi(r.at(key).value);
                client->Write(tid, key, std::to_string(value + 1));
                client->Commit(tid, [&, start, i, value](Status s) {
                  const double ms =
                      (cluster.sim().now() - start) / 1000.0;
                  latencies.push_back(ms);
                  std::printf("txn %2d: %-7s (%2d -> %2d) in %7.1f ms%s\n", i,
                              s.ok() ? "COMMIT" : "ABORT", value, value + 1,
                              ms, ms > 500 ? "   <-- failover window" : "");
                  if (s.ok()) {
                    committed++;
                  } else {
                    failed++;
                  }
                });
              });
        });
  }
  cluster.sim().Schedule(1'700 * kMicrosPerMilli, [&]() {
    std::printf("*** crashing node %d (partition 1 leader) ***\n", doomed);
    cluster.Crash(doomed);
  });
  cluster.sim().Schedule(8 * kMicrosPerSecond, [&]() {
    std::printf("*** recovering node %d ***\n", doomed);
    cluster.Recover(doomed);
  });

  cluster.sim().RunFor(20 * kMicrosPerSecond);

  core::CarouselServer* leader = cluster.LeaderOf(1);
  std::printf("\nafter the run: partition 1 leader is node %d (%s)\n",
              leader->id(),
              leader->id() == doomed ? "recovered original" : "new leader");
  const int final_value = std::stoi(leader->store().Get(key).value);
  std::printf("committed=%d failed=%d, final counter=%d, version=%llu\n",
              committed, failed, final_value,
              static_cast<unsigned long long>(
                  leader->store().Get(key).version));
  std::printf("pending entries leaked: %zu\n", leader->pending().size());

  const bool consistent =
      final_value == committed &&
      leader->store().Get(key).version == static_cast<Version>(committed);
  std::printf("%s\n", consistent
                          ? "CONSISTENT: every commit applied exactly once"
                          : "INCONSISTENT!");
  return consistent ? 0 : 1;
}
