// Quickstart: bring up a simulated 3-datacenter Carousel deployment, run a
// read-modify-write transaction through the paper's client interface
// (Begin / ReadAndPrepare / Write / Commit), and read the result back.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "harness/cluster.h"

using namespace carousel;

int main() {
  // 1. Describe the deployment: 3 DCs at 20 ms RTT, 3 partitions
  //    replicated 3x (f = 1), one client application server in DC0.
  Topology topology = Topology::Uniform(/*num_dcs=*/3, /*inter_dc_rtt_ms=*/20);
  topology.PlacePartitions(/*num_partitions=*/3, /*replication_factor=*/3);
  topology.AddClient(/*dc=*/0);

  // 2. Pick the protocol: Carousel Fast = CPC fast path + local reads.
  core::CarouselOptions options;
  options.fast_path = true;
  options.local_reads = true;

  core::Cluster cluster(std::move(topology), options);
  cluster.Start();
  std::printf("cluster up: %d partitions x %d replicas across %d DCs\n",
              cluster.topology().num_partitions(),
              cluster.topology().replication_factor(),
              cluster.topology().num_dcs());

  // 3. Run one 2FI transaction: read two keys, increment-style write both.
  //    All read AND write keys are declared up front (the 2FI model);
  //    write *values* may depend on the read results.
  core::CarouselClient* client = cluster.client(0);
  const TxnId tid = client->Begin();
  const SimTime start = cluster.sim().now();

  client->ReadAndPrepare(
      tid, /*reads=*/{"hello", "world"}, /*writes=*/{"hello", "world"},
      [&](Status status, const core::CarouselClient::ReadResults& reads) {
        std::printf("read round done (%s):\n", status.ToString().c_str());
        for (const auto& [key, vv] : reads) {
          std::printf("  %-6s = '%s' @ version %llu\n", key.c_str(),
                      vv.value.c_str(),
                      static_cast<unsigned long long>(vv.version));
        }
        client->Write(tid, "hello", "carousel");
        client->Write(tid, "world", "sigmod18");
        client->Commit(tid, [&](Status commit_status) {
          std::printf("commit: %s after %.1f ms (simulated)\n",
                      commit_status.ToString().c_str(),
                      static_cast<double>(cluster.sim().now() - start) /
                          kMicrosPerMilli);
        });
      });
  cluster.sim().RunFor(5 * kMicrosPerSecond);

  // 4. Read the values back with a read-only transaction (one roundtrip,
  //    no coordinator).
  const TxnId ro = client->Begin();
  client->ReadAndPrepare(
      ro, {"hello", "world"}, /*writes=*/{},
      [&](Status status, const core::CarouselClient::ReadResults& reads) {
        std::printf("read-only txn (%s):\n", status.ToString().c_str());
        for (const auto& [key, vv] : reads) {
          std::printf("  %-6s = '%s' @ version %llu\n", key.c_str(),
                      vv.value.c_str(),
                      static_cast<unsigned long long>(vv.version));
        }
      });
  cluster.sim().RunFor(5 * kMicrosPerSecond);
  return 0;
}
