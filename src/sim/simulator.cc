#include "sim/simulator.h"

namespace carousel::sim {

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  EventQueue::Event ev = queue_.PopMin();
  now_ = ev.time;
  events_processed_++;
  ev.fn();
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.PeekTime() <= t) {
    RunOne();
  }
  if (now_ < t) now_ = t;
}

void Simulator::RunToCompletion() {
  while (RunOne()) {
  }
}

}  // namespace carousel::sim
