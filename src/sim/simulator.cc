#include "sim/simulator.h"

#include <algorithm>

namespace carousel::sim {

void Simulator::RunEvent(EventQueue::Event ev) {
  // Monotone clock: in normal mode events arrive in time order so this is
  // plain assignment; in controlled mode an out-of-order pick must never
  // move time backwards.
  if (ev.time > now_) now_ = ev.time;
  events_processed_++;
  const NodeId prev = context_node_;
  context_node_ = ev.label.node;
  ev.fn();
  context_node_ = prev;
}

bool Simulator::RunOne() {
  if (!controlled_mode_) {
    if (queue_.empty()) return false;
    RunEvent(queue_.PopMin());
    return true;
  }
  if (pending_.empty()) return false;
  // Ascending-seq iteration with a strict < keeps the pick at the
  // (time, seq) minimum, matching normal-mode order exactly.
  auto best = pending_.begin();
  for (auto it = std::next(best); it != pending_.end(); ++it) {
    if (it->second.time < best->second.time) best = it;
  }
  EventQueue::Event ev = std::move(best->second);
  pending_.erase(best);
  RunEvent(std::move(ev));
  return true;
}

bool Simulator::PeekNextTime(SimTime* t) {
  if (!controlled_mode_) {
    if (queue_.empty()) return false;
    *t = queue_.PeekTime();
    return true;
  }
  if (pending_.empty()) return false;
  SimTime min = pending_.begin()->second.time;
  for (const auto& [seq, ev] : pending_) min = std::min(min, ev.time);
  *t = min;
  return true;
}

void Simulator::RunUntil(SimTime t) {
  SimTime next = 0;
  while (PeekNextTime(&next) && next <= t) {
    RunOne();
  }
  if (now_ < t) now_ = t;
}

void Simulator::RunToCompletion() {
  while (RunOne()) {
  }
}

std::vector<Simulator::ReadyEvent> Simulator::ReadyEvents() const {
  std::vector<ReadyEvent> out;
  out.reserve(pending_.size());
  for (const auto& [seq, ev] : pending_) {
    out.push_back(ReadyEvent{seq, ev.time, ev.label});
  }
  std::sort(out.begin(), out.end(), [](const ReadyEvent& a, const ReadyEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return out;
}

bool Simulator::RunSeq(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return false;
  EventQueue::Event ev = std::move(it->second);
  pending_.erase(it);
  RunEvent(std::move(ev));
  return true;
}

}  // namespace carousel::sim
