#include "sim/simulator.h"

namespace carousel::sim {

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  events_processed_++;
  ev.fn();
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunOne();
  }
  if (now_ < t) now_ = t;
}

void Simulator::RunToCompletion() {
  while (RunOne()) {
  }
}

}  // namespace carousel::sim
