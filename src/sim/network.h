#ifndef CAROUSEL_SIM_NETWORK_H_
#define CAROUSEL_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/topology.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace carousel::sim {

/// Tuning knobs for the simulated network.
struct NetworkOptions {
  /// Per-message framing/header overhead added to Message::SizeBytes() for
  /// bandwidth accounting (rough TCP/IP + RPC framing cost).
  size_t header_bytes = 80;
  /// One-way latency jitter: each delivery is scaled by a factor drawn
  /// uniformly from [1, 1 + jitter_fraction].
  double jitter_fraction = 0.05;
  /// Latency for a node messaging itself (in-process handoff).
  SimTime loopback_micros = 5;
  /// When true, deliveries between each ordered node pair preserve send
  /// order (TCP/gRPC semantics, which the paper's prototype uses). When
  /// false messages may reorder (UDP semantics, as assumed by TAPIR's IR).
  bool fifo_pairs = true;
  /// Probability that an inter-node message is silently dropped
  /// (loopback is exempt). The asynchronous-network model of §3.1:
  /// protocols must stay correct; timers and retransmissions mask it.
  double loss_fraction = 0.0;
};

/// Per-node traffic counters for Figure 7 bandwidth accounting.
struct Traffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t msgs_sent = 0;
  uint64_t msgs_received = 0;
};

/// Routes messages between nodes with topology-derived latencies, models
/// per-node serial processing (service times -> queueing), accounts
/// traffic, and injects failures.
class Network {
 public:
  Network(Simulator* sim, const Topology* topology, NetworkOptions options);

  /// Registers a node; nodes must be registered in id order and outlive
  /// the network.
  void Register(Node* node);

  Node* node(NodeId id) const { return nodes_[id]; }
  const Topology& topology() const { return *topology_; }
  Simulator* simulator() const { return sim_; }

  /// Sends `msg` from `from` to `to`. Delivery happens after the one-way
  /// latency (RTT/2 + jitter) plus queueing for the receiver's CPU. Drops
  /// silently if either endpoint is crashed or the pair is partitioned
  /// (fail-stop + asynchronous network model, paper §3.1).
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// ---- Failure injection ----

  /// Crashes a node: in-flight messages to it are dropped, its timers stop
  /// firing (nodes check alive()), and sends from it are suppressed.
  void Crash(NodeId id);

  /// Recovers a crashed node with its state intact (a process pause, not a
  /// disk wipe; Raft state is assumed durable).
  void Recover(NodeId id);

  /// Drops all traffic between `a` and `b` until unblocked.
  void BlockPair(NodeId a, NodeId b);
  void UnblockPair(NodeId a, NodeId b);

  bool IsAlive(NodeId id) const { return nodes_[id]->alive(); }

  /// ---- Traffic accounting ----

  const Traffic& traffic(NodeId id) const { return traffic_[id]; }
  /// Zeroes all counters (called at the start of a measurement window).
  void ResetTraffic();

  /// Total messages delivered (for tests).
  uint64_t messages_delivered() const { return messages_delivered_; }

  /// Messages sent per message type (diagnostics / traffic breakdowns).
  const std::map<int, uint64_t>& sent_by_type() const { return sent_by_type_; }

 private:
  SimTime OneWayLatency(NodeId from, NodeId to);
  void Deliver(NodeId from, NodeId to, MessagePtr msg);

  Simulator* sim_;
  const Topology* topology_;
  NetworkOptions options_;
  carousel::Rng rng_;
  std::vector<Node*> nodes_;
  std::vector<Traffic> traffic_;
  /// Last scheduled arrival per (from, to), for fifo_pairs.
  std::vector<std::vector<SimTime>> last_arrival_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  uint64_t messages_delivered_ = 0;
  std::map<int, uint64_t> sent_by_type_;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_NETWORK_H_
