#ifndef CAROUSEL_SIM_NETWORK_H_
#define CAROUSEL_SIM_NETWORK_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/topology.h"
#include "common/types.h"
#include "runtime/endpoint.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace carousel::sim {

/// Tuning knobs for the simulated network.
struct NetworkOptions {
  /// Per-message framing/header overhead added to Message::SizeBytes() for
  /// bandwidth accounting (rough TCP/IP + RPC framing cost).
  size_t header_bytes = 80;
  /// One-way latency jitter: each delivery is scaled by a factor drawn
  /// uniformly from [1, 1 + jitter_fraction].
  double jitter_fraction = 0.05;
  /// Latency for a node messaging itself (in-process handoff).
  SimTime loopback_micros = 5;
  /// When true, deliveries between each ordered node pair preserve send
  /// order (TCP/gRPC semantics, which the paper's prototype uses). When
  /// false messages may reorder (UDP semantics, as assumed by TAPIR's IR).
  bool fifo_pairs = true;
  /// Probability that an inter-node message is silently dropped
  /// (loopback is exempt). The asynchronous-network model of §3.1:
  /// protocols must stay correct; timers and retransmissions mask it.
  double loss_fraction = 0.0;
  /// When true, messages on the same (from, to) edge that arrive at the
  /// same tick are delivered by ONE simulator event that hands each
  /// message to the receiver in send order. Pure wall-clock optimization
  /// for the simulator's own overhead: simulated results are unchanged
  /// except for same-tick interleaving with other nodes' events, so it is
  /// flag-gated (off = historical event-per-message behavior).
  bool coalesce_deliveries = false;
  /// When true the owning harness builds its Simulator in controlled-
  /// scheduling mode (check/explore): the pending-event set is exposed to
  /// an external scheduler via ReadyEvents()/RunSeq() instead of running
  /// in (time, seq) order. Carried here (like coalesce_deliveries) so
  /// core::Cluster wires the simulator and network consistently from one
  /// options struct. Incompatible with coalesce_deliveries — a coalesced
  /// bucket hides individual messages from the scheduler.
  bool controlled_scheduling = false;
};

/// Per-node traffic counters for Figure 7 bandwidth accounting.
struct Traffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t msgs_sent = 0;
  uint64_t msgs_received = 0;
};

/// Passive observer of message deliveries (WANRT accounting; implemented
/// by obs::WanrtLedger). The network consults it at the two points that
/// matter for causal accounting: when a delivery is scheduled (OnSend) and
/// when the receiver's handler is about to run (OnDeliver). Observers must
/// not mutate messages or send traffic — simulated behavior has to be
/// identical with and without one attached.
class DeliveryObserver {
 public:
  virtual ~DeliveryObserver() = default;
  /// Called for every delivery actually scheduled (after partition/loss
  /// drops). Returns an opaque token handed back at delivery, or 0 when
  /// the observer does not track this message.
  virtual uint64_t OnSend(const Message& msg, NodeId from, NodeId to) = 0;
  /// Called right before the receiver handles the message (after any
  /// queueing delay from the CPU cost model).
  virtual void OnDeliver(uint64_t token, NodeId to) = 0;
  /// Called when a tracked delivery dies en route (receiver crashed).
  virtual void OnDrop(uint64_t token) = 0;
};

/// Routes messages between endpoints with topology-derived latencies,
/// models per-node serial processing (service times -> queueing), accounts
/// traffic, and injects failures. This is the simulator backend's
/// runtime::Transport: registering an endpoint binds it to this transport
/// and the simulator's virtual clock / timer queue.
class Network final : public runtime::Transport {
 public:
  Network(Simulator* sim, const Topology* topology, NetworkOptions options);

  /// Registers an endpoint; endpoints must be registered in id order and
  /// outlive the network. Binds the endpoint's runtime hooks (transport,
  /// clock, timers) to this network and its simulator.
  void Register(runtime::Endpoint* node);

  runtime::Endpoint* node(NodeId id) const { return nodes_[id]; }
  const Topology& topology() const { return *topology_; }
  Simulator* simulator() const { return sim_; }

  /// Sends `msg` from `from` to `to`. Delivery happens after the one-way
  /// latency (RTT/2 + jitter) plus queueing for the receiver's CPU. Drops
  /// silently if either endpoint is crashed or the pair is partitioned
  /// (fail-stop + asynchronous network model, paper §3.1).
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  /// ---- Failure injection ----

  /// Crashes a node: in-flight messages to it are dropped, its timers stop
  /// firing (nodes check alive()), and sends from it are suppressed.
  void Crash(NodeId id);

  /// Recovers a crashed node with its state intact (a process pause, not a
  /// disk wipe; Raft state is assumed durable).
  void Recover(NodeId id);

  /// Drops all traffic between `a` and `b` until unblocked.
  void BlockPair(NodeId a, NodeId b);
  void UnblockPair(NodeId a, NodeId b);

  bool IsAlive(NodeId id) const { return nodes_[id]->alive(); }

  /// ---- Traffic accounting ----

  const Traffic& traffic(NodeId id) const { return traffic_[id]; }
  /// Zeroes all counters (called at the start of a measurement window).
  void ResetTraffic();

  /// Total messages delivered (for tests).
  uint64_t messages_delivered() const { return messages_delivered_; }

  /// Messages sent per message type (diagnostics / traffic breakdowns).
  /// Materialized from flat per-type counters on demand: the per-send
  /// increment is an array index, not a map lookup.
  std::map<int, uint64_t> sent_by_type() const {
    return MaterializeByType(sent_by_type_counts_);
  }

  /// Wire bytes sent per message type (Fig. 7 bandwidth breakdowns; an
  /// envelope's bytes are charged to kBatchEnvelope, not its items).
  std::map<int, uint64_t> bytes_by_type() const {
    return MaterializeByType(bytes_by_type_counts_);
  }

  /// Batching accounting for the measurement window: envelopes sent, the
  /// messages carried inside them, and deliveries saved by same-edge
  /// same-tick coalescing.
  uint64_t envelopes_sent() const { return envelopes_sent_; }
  uint64_t enveloped_items_sent() const { return enveloped_items_sent_; }
  uint64_t deliveries_coalesced() const { return deliveries_coalesced_; }

  /// Attaches a delivery observer (nullptr detaches). The network takes no
  /// ownership; the observer must outlive it or be detached first. With no
  /// observer attached the per-delivery overhead is one null check.
  void set_delivery_observer(DeliveryObserver* observer) {
    observer_ = observer;
  }

 private:
  SimTime OneWayLatency(NodeId from, NodeId to);
  void Deliver(NodeId from, NodeId to, MessagePtr msg, uint64_t token);
  void ScheduleDelivery(NodeId from, NodeId to, SimTime arrival,
                        MessagePtr msg, uint64_t token);

  Simulator* sim_;
  const Topology* topology_;
  NetworkOptions options_;
  carousel::Rng rng_;
  std::vector<runtime::Endpoint*> nodes_;
  std::vector<Traffic> traffic_;
  /// Last scheduled arrival per (from, to), for fifo_pairs.
  std::vector<std::vector<SimTime>> last_arrival_;
  /// Per-node per-core completion times for the CPU cost model (lazily
  /// sized to the node's cores()). Cost-model bookkeeping is the
  /// simulator backend's business, so it lives here, not on Endpoint.
  std::vector<std::vector<SimTime>> core_busy_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  /// One slot per MessageType value (flat enum, < 400 everywhere).
  static constexpr size_t kMaxMessageType = 512;

  static std::map<int, uint64_t> MaterializeByType(
      const std::array<uint64_t, kMaxMessageType>& counts) {
    std::map<int, uint64_t> out;
    for (size_t t = 0; t < counts.size(); ++t) {
      if (counts[t] != 0) out.emplace(static_cast<int>(t), counts[t]);
    }
    return out;
  }

  uint64_t messages_delivered_ = 0;
  std::array<uint64_t, kMaxMessageType> sent_by_type_counts_{};
  std::array<uint64_t, kMaxMessageType> bytes_by_type_counts_{};
  uint64_t envelopes_sent_ = 0;
  uint64_t enveloped_items_sent_ = 0;
  uint64_t deliveries_coalesced_ = 0;
  /// Same-tick delivery buckets per edge, keyed by (from, to) then
  /// arrival tick; only populated when coalesce_deliveries is on. Each
  /// entry carries its observer token alongside the message.
  std::map<std::pair<NodeId, NodeId>,
           std::map<SimTime, std::vector<std::pair<MessagePtr, uint64_t>>>>
      pending_coalesced_;
  DeliveryObserver* observer_ = nullptr;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_NETWORK_H_
