#ifndef CAROUSEL_SIM_NODE_H_
#define CAROUSEL_SIM_NODE_H_

#include <vector>

#include "common/types.h"
#include "sim/message.h"

namespace carousel::sim {

class Network;
class Simulator;

/// An actor in the simulation: a server process or a client library
/// instance. Nodes receive messages via HandleMessage and send through the
/// network; they never share state directly.
class Node {
 public:
  Node(NodeId id, DcId dc) : id_(id), dc_(dc) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  DcId dc() const { return dc_; }
  bool alive() const { return alive_; }

  /// Delivers a message; `from` is the sender's node id.
  virtual void HandleMessage(NodeId from, const MessagePtr& msg) = 0;

  /// CPU time (microseconds) this node spends processing `msg`. Nodes
  /// process messages serially (single-core FIFO), which is what produces
  /// queueing and saturation in the throughput experiments. Clients return
  /// 0 by default.
  virtual SimTime ServiceCost(const Message& msg) const {
    (void)msg;
    return 0;
  }

  /// Called by the failure injector when the node crashes / recovers.
  virtual void OnCrash() {}
  virtual void OnRecover() {}

  Network* network() const { return network_; }
  Simulator* simulator() const { return simulator_; }

  /// Number of CPU cores processing messages in parallel. Message costs
  /// (ServiceCost) occupy one core each; more cores means proportionally
  /// more capacity before queueing sets in.
  int cores() const { return cores_; }
  void set_cores(int cores) { cores_ = cores < 1 ? 1 : cores; }

 private:
  friend class Network;

  NodeId id_;
  DcId dc_;
  bool alive_ = true;
  int cores_ = 1;
  /// Per-core completion times (lazily sized to cores_ by the network).
  std::vector<SimTime> core_busy_until_;
  Network* network_ = nullptr;
  Simulator* simulator_ = nullptr;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_NODE_H_
