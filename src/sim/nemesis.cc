#include "sim/nemesis.h"

#include <algorithm>
#include <sstream>

namespace carousel::sim {

void Nemesis::Note(SimTime at, std::string what) {
  plan_.push_back(PlannedEvent{at, std::move(what)});
}

void Nemesis::CrashAt(SimTime at, NodeId id) {
  Note(at, "crash node " + std::to_string(id));
  net_->simulator()->ScheduleAt(at, [this, id] {
    if (!crashed_.insert(id).second) return;
    faults_injected_++;
    net_->Crash(id);
  });
}

void Nemesis::RecoverAt(SimTime at, NodeId id) {
  Note(at, "recover node " + std::to_string(id));
  net_->simulator()->ScheduleAt(at, [this, id] {
    if (crashed_.erase(id) == 0) return;
    net_->Recover(id);
  });
}

void Nemesis::PartitionAt(SimTime at, std::vector<NodeId> side_a,
                          std::vector<NodeId> side_b) {
  std::ostringstream what;
  what << "partition {";
  for (size_t i = 0; i < side_a.size(); ++i)
    what << (i ? "," : "") << side_a[i];
  what << "} | {";
  for (size_t i = 0; i < side_b.size(); ++i)
    what << (i ? "," : "") << side_b[i];
  what << "}";
  Note(at, what.str());
  net_->simulator()->ScheduleAt(
      at, [this, a = std::move(side_a), b = std::move(side_b)] {
        for (NodeId x : a) {
          for (NodeId y : b) {
            auto pair = std::minmax(x, y);
            if (!blocked_.insert({pair.first, pair.second}).second) continue;
            faults_injected_++;
            net_->BlockPair(x, y);
          }
        }
      });
}

void Nemesis::HealPartitionAt(SimTime at, std::vector<NodeId> side_a,
                              std::vector<NodeId> side_b) {
  Note(at, "heal partition");
  net_->simulator()->ScheduleAt(
      at, [this, a = std::move(side_a), b = std::move(side_b)] {
        for (NodeId x : a) {
          for (NodeId y : b) {
            auto pair = std::minmax(x, y);
            if (blocked_.erase({pair.first, pair.second}) == 0) continue;
            net_->UnblockPair(x, y);
          }
        }
      });
}

void Nemesis::HealAllAt(SimTime at) {
  Note(at, "heal all");
  net_->simulator()->ScheduleAt(at, [this] {
    for (NodeId id : crashed_) net_->Recover(id);
    crashed_.clear();
    for (const auto& [a, b] : blocked_) net_->UnblockPair(a, b);
    blocked_.clear();
  });
}

std::string Nemesis::Describe() const {
  std::vector<PlannedEvent> sorted = plan_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const PlannedEvent& a, const PlannedEvent& b) {
                     return a.at < b.at;
                   });
  std::ostringstream out;
  for (const PlannedEvent& e : sorted) {
    out << "  t=" << e.at << "us " << e.what << "\n";
  }
  return out.str();
}

}  // namespace carousel::sim
