#ifndef CAROUSEL_SIM_MESSAGE_H_
#define CAROUSEL_SIM_MESSAGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace carousel::sim {

/// Message type tags. Each protocol module owns a numeric range so that a
/// receiving node can dispatch on type() and static_cast to the concrete
/// struct. Keeping one flat enum makes traffic accounting by type trivial.
enum MessageType : int {
  kInvalidMessage = 0,

  // sim/test messages: 1..99
  kPing = 1,
  kPong = 2,
  kBatchEnvelope = 10,

  // raft: 100..199
  kRaftRequestVote = 100,
  kRaftVoteResponse = 101,
  kRaftAppendEntries = 102,
  kRaftAppendResponse = 103,

  // carousel: 200..299
  kCarouselReadPrepare = 200,
  kCarouselReadResponse = 201,
  kCarouselPrepareDecision = 202,
  kCarouselCoordPrepare = 203,
  kCarouselCommitRequest = 204,
  kCarouselAbortRequest = 205,
  kCarouselCommitResponse = 206,
  kCarouselWriteback = 207,
  kCarouselWritebackAck = 208,
  kCarouselHeartbeat = 209,
  kCarouselQueryPrepare = 210,
  kCarouselNotLeader = 211,
  kCarouselQueryDecision = 212,

  // carousel raft log payloads (never sent alone; carried in AppendEntries):
  // 250..269
  kLogTxnInfo = 250,
  kLogWriteData = 251,
  kLogDecision = 252,
  kLogPrepareResult = 253,
  kLogCommit = 254,
  kLogNoop = 255,

  // tapir: 300..399
  kTapirRead = 300,
  kTapirReadReply = 301,
  kTapirPrepare = 302,
  kTapirPrepareReply = 303,
  kTapirFinalize = 304,
  kTapirFinalizeReply = 305,
  kTapirDecide = 306,
  kTapirDecideAck = 307,
};

/// Instrumentation span: attributes one message (or one log payload it
/// carries) to a transaction and a protocol phase. Spans are accounting
/// metadata, not wire data — they add nothing to SizeBytes() and change no
/// protocol behavior. The phase tag is opaque to the sim layer (it is an
/// obs::WanrtPhase value; sim must not depend on obs).
struct WanSpan {
  TxnId tid{};
  uint8_t phase = 0;
  bool valid() const { return tid.valid(); }
};

/// Base class for every message exchanged through the simulated network
/// and for every replicated log payload. Concrete messages are plain
/// structs with public fields (they are wire DTOs, not objects with
/// invariants).
class Message {
 public:
  Message() = default;
  virtual ~Message() = default;

  // The size memo is an atomic (see WireSize); give the DTO structs back
  // their implicit copyability across it.
  Message(const Message& other)
      : wire_size_(other.wire_size_.load(std::memory_order_relaxed)),
        span_(other.span_) {}
  Message& operator=(const Message& other) {
    wire_size_.store(other.wire_size_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    span_ = other.span_;
    return *this;
  }

  /// The MessageType tag of the concrete struct.
  virtual int type() const = 0;

  /// Approximate serialized size in bytes (payload only; the network adds
  /// per-message header overhead). Used for Figure 7 bandwidth accounting.
  virtual size_t SizeBytes() const = 0;

  /// Memoized SizeBytes. A message is frozen once handed to the network
  /// (MessagePtr is pointer-to-const), but its size keeps being read: by
  /// traffic accounting at send and delivery, and — the expensive case —
  /// by every AppendEntries that carries it as a log payload, across
  /// every (re)transmission to every follower. Hot paths must use this.
  ///
  /// The memo is a relaxed atomic because the threaded runtime shares one
  /// immutable message across loop threads (in-process transport); racing
  /// initializers compute the same value, so last-write-wins is benign.
  size_t WireSize() const {
    size_t cached = wire_size_.load(std::memory_order_relaxed);
    if (cached == 0) {
      cached = SizeBytes();
      wire_size_.store(cached, std::memory_order_relaxed);
    }
    return cached;
  }

  /// ---- Span context (WANRT accounting; see obs/wanrt.h) ----

  const WanSpan& span() const { return span_; }
  /// Senders stamp the span before handing the message to the network.
  void set_span(const TxnId& tid, uint8_t phase) { span_ = WanSpan{tid, phase}; }

  /// Appends every span this message carries to `out`. The default is the
  /// message's own span (if set); aggregate messages — batch envelopes,
  /// Raft appends and their acks — override this to enumerate the spans of
  /// the items they carry.
  virtual void CollectSpans(std::vector<WanSpan>* out) const {
    if (span_.valid()) out->push_back(span_);
  }

 private:
  mutable std::atomic<size_t> wire_size_{0};
  WanSpan span_{};
};

using MessagePtr = std::shared_ptr<const Message>;

/// Downcasts a message to its concrete type; callers must have checked
/// type() first.
template <typename T>
const T& As(const Message& msg) {
  return static_cast<const T&>(msg);
}

/// A frame of coalesced messages sent as one wire message: the egress
/// batcher (sim/batcher.h) wraps everything buffered for one destination
/// in a single envelope per flush. Receivers unwrap and handle each item
/// as if it had arrived alone; the win is one network header and one
/// per-message CPU charge amortized over all items (the cost model charges
/// a smaller per-item rate for enveloped messages, see
/// ServerCostModel::per_batched_item).
struct BatchEnvelopeMsg final : Message {
  /// Per-item length-prefix/framing bytes inside the envelope.
  static constexpr size_t kPerItemFramingBytes = 8;

  std::vector<MessagePtr> items;

  int type() const override { return kBatchEnvelope; }
  size_t SizeBytes() const override {
    size_t total = 8;  // Envelope's own item-count framing.
    for (const auto& m : items) {
      total += m->WireSize() + kPerItemFramingBytes;
    }
    return total;
  }
  void CollectSpans(std::vector<WanSpan>* out) const override {
    for (const auto& m : items) m->CollectSpans(out);
  }
};

/// Checked downcast: returns nullptr unless `msg`'s type tag matches T's.
/// T must be default-constructible (messages are plain DTOs) so the
/// expected tag can be read off a throwaway instance.
template <typename T>
const T* TryAs(const Message& msg) {
  static const int expected = T{}.type();
  return msg.type() == expected ? static_cast<const T*>(&msg) : nullptr;
}

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_MESSAGE_H_
