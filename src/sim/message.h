#ifndef CAROUSEL_SIM_MESSAGE_H_
#define CAROUSEL_SIM_MESSAGE_H_

#include <memory>

namespace carousel::sim {

/// Message type tags. Each protocol module owns a numeric range so that a
/// receiving node can dispatch on type() and static_cast to the concrete
/// struct. Keeping one flat enum makes traffic accounting by type trivial.
enum MessageType : int {
  kInvalidMessage = 0,

  // sim/test messages: 1..99
  kPing = 1,
  kPong = 2,

  // raft: 100..199
  kRaftRequestVote = 100,
  kRaftVoteResponse = 101,
  kRaftAppendEntries = 102,
  kRaftAppendResponse = 103,

  // carousel: 200..299
  kCarouselReadPrepare = 200,
  kCarouselReadResponse = 201,
  kCarouselPrepareDecision = 202,
  kCarouselCoordPrepare = 203,
  kCarouselCommitRequest = 204,
  kCarouselAbortRequest = 205,
  kCarouselCommitResponse = 206,
  kCarouselWriteback = 207,
  kCarouselWritebackAck = 208,
  kCarouselHeartbeat = 209,
  kCarouselQueryPrepare = 210,
  kCarouselNotLeader = 211,
  kCarouselQueryDecision = 212,

  // carousel raft log payloads (never sent alone; carried in AppendEntries):
  // 250..269
  kLogTxnInfo = 250,
  kLogWriteData = 251,
  kLogDecision = 252,
  kLogPrepareResult = 253,
  kLogCommit = 254,
  kLogNoop = 255,

  // tapir: 300..399
  kTapirRead = 300,
  kTapirReadReply = 301,
  kTapirPrepare = 302,
  kTapirPrepareReply = 303,
  kTapirFinalize = 304,
  kTapirFinalizeReply = 305,
  kTapirDecide = 306,
  kTapirDecideAck = 307,
};

/// Base class for every message exchanged through the simulated network
/// and for every replicated log payload. Concrete messages are plain
/// structs with public fields (they are wire DTOs, not objects with
/// invariants).
class Message {
 public:
  virtual ~Message() = default;

  /// The MessageType tag of the concrete struct.
  virtual int type() const = 0;

  /// Approximate serialized size in bytes (payload only; the network adds
  /// per-message header overhead). Used for Figure 7 bandwidth accounting.
  virtual size_t SizeBytes() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Downcasts a message to its concrete type; callers must have checked
/// type() first.
template <typename T>
const T& As(const Message& msg) {
  return static_cast<const T&>(msg);
}

/// Checked downcast: returns nullptr unless `msg`'s type tag matches T's.
/// T must be default-constructible (messages are plain DTOs) so the
/// expected tag can be read off a throwaway instance.
template <typename T>
const T* TryAs(const Message& msg) {
  static const int expected = T{}.type();
  return msg.type() == expected ? static_cast<const T*>(&msg) : nullptr;
}

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_MESSAGE_H_
