#ifndef CAROUSEL_SIM_SIMULATOR_H_
#define CAROUSEL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime.h"
#include "sim/event_queue.h"

namespace carousel::sim {

/// Deterministic discrete-event simulator: a virtual clock plus an event
/// queue. All components (network delivery, protocol timers, workload
/// arrivals) run as scheduled callbacks, so a whole "distributed" run is a
/// single-threaded, reproducible computation.
///
/// The simulator is backend #1 of the runtime seam: it IS the Clock and
/// the (shared, virtual-time) TimerQueue that every node in a simulated
/// deployment binds to.
///
/// Two scheduling modes:
///  - Normal (default): events run in strict (time, seq) order — the
///    classic discrete-event loop.
///  - Controlled: the pending set is held in a flat store and exposed via
///    ReadyEvents()/RunSeq() so an external scheduler (check/explore) can
///    pick ANY pending event to run next. The virtual clock then advances
///    monotonically to max(now, event time): running an event "early"
///    relative to (time, seq) order is equivalent to every skipped event
///    having been delayed past it, which the asynchronous-network model of
///    the paper (§3.1) permits. RunOne/RunUntil still pick the (time, seq)
///    minimum, so harness code that settles with RunFor behaves exactly as
///    in normal mode.
class Simulator final : public runtime::Clock, public runtime::TimerQueue {
 public:
  explicit Simulator(uint64_t seed = 1, bool controlled = false)
      : controlled_mode_(controlled), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in microseconds.
  SimTime now() const override { return now_; }

  bool controlled() const { return controlled_mode_; }

  /// Schedules `fn` to run `delay` microseconds from now (clamped to >= 0).
  /// Events with equal times run in scheduling order.
  void Schedule(SimTime delay, EventFn fn) override {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to >= now). The event is
  /// labeled a timer of the current node context (see ScopedNode) when one
  /// is set, else internal — this is the path every Endpoint timer takes.
  void ScheduleAt(SimTime t, EventFn fn) override {
    EventLabel label;
    if (context_node_ != kInvalidNode) {
      label.kind = EventLabel::Kind::kTimer;
      label.node = context_node_;
    }
    ScheduleLabeledAt(t, label, std::move(fn));
  }

  /// Schedules with an explicit label: the network labels deliveries, the
  /// explorer labels workload injections.
  void ScheduleLabeledAt(SimTime t, EventLabel label, EventFn fn) {
    if (t < now_) t = now_;
    EventQueue::Event ev{t, next_seq_++, std::move(fn), label};
    if (controlled_mode_) {
      pending_.emplace(ev.seq, std::move(ev));
    } else {
      queue_.Push(std::move(ev));
    }
  }

  /// Runs the earliest event; returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the virtual clock reaches `t` (events at exactly
  /// `t` are executed) or the queue empties.
  void RunUntil(SimTime t);

  /// Runs events for `d` microseconds of virtual time from now.
  void RunFor(SimTime d) { RunUntil(now_ + d); }

  /// Runs until the event queue is empty.
  void RunToCompletion();

  /// ---- Controlled scheduling (check/explore) ----

  /// A pending event as exposed to an external scheduler.
  struct ReadyEvent {
    uint64_t seq = 0;
    SimTime time = 0;
    EventLabel label;
  };

  /// Snapshot of every pending event, ordered by (time, seq). Controlled
  /// mode only (empty otherwise).
  std::vector<ReadyEvent> ReadyEvents() const;

  /// Runs the pending event with sequence number `seq` (controlled mode).
  /// Returns false if no such event is pending.
  bool RunSeq(uint64_t seq);

  /// RAII node-context marker: while alive, plain ScheduleAt calls are
  /// labeled as timers of `node`. Endpoint handlers get the context
  /// automatically (RunOne/RunSeq set it from the executed event's label);
  /// harness code that calls into a node directly (Cluster::Start, the
  /// explorer's workload injection) wraps the call in one of these.
  class ScopedNode {
   public:
    ScopedNode(Simulator* sim, NodeId node)
        : sim_(sim), prev_(sim->context_node_) {
      sim_->context_node_ = node;
    }
    ~ScopedNode() { sim_->context_node_ = prev_; }
    ScopedNode(const ScopedNode&) = delete;
    ScopedNode& operator=(const ScopedNode&) = delete;

   private:
    Simulator* sim_;
    NodeId prev_;
  };

  /// Simulator-global RNG; components should Fork() their own streams.
  carousel::Rng* rng() { return &rng_; }

  /// Total events executed so far (for perf reporting).
  uint64_t events_processed() const { return events_processed_; }

 private:
  friend class ScopedNode;

  /// Advances the clock (monotonically), sets the node context from the
  /// event's label, and runs it. Shared by RunOne and RunSeq.
  void RunEvent(EventQueue::Event ev);

  /// Earliest pending (time, seq) event in either mode; nullptr-style via
  /// the bool return. O(pending) in controlled mode (pending sets there
  /// are tens of events).
  bool PeekNextTime(SimTime* t);

  bool controlled_mode_ = false;
  NodeId context_node_ = kInvalidNode;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
  /// Controlled-mode pending store, keyed by seq (map iteration order =
  /// scheduling order, which ties min-time scans deterministically).
  std::map<uint64_t, EventQueue::Event> pending_;
  carousel::Rng rng_;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_SIMULATOR_H_
