#ifndef CAROUSEL_SIM_SIMULATOR_H_
#define CAROUSEL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime.h"
#include "sim/event_queue.h"

namespace carousel::sim {

/// Deterministic discrete-event simulator: a virtual clock plus an event
/// queue. All components (network delivery, protocol timers, workload
/// arrivals) run as scheduled callbacks, so a whole "distributed" run is a
/// single-threaded, reproducible computation.
///
/// The simulator is backend #1 of the runtime seam: it IS the Clock and
/// the (shared, virtual-time) TimerQueue that every node in a simulated
/// deployment binds to.
class Simulator final : public runtime::Clock, public runtime::TimerQueue {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in microseconds.
  SimTime now() const override { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (clamped to >= 0).
  /// Events with equal times run in scheduling order.
  void Schedule(SimTime delay, EventFn fn) override {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to >= now).
  void ScheduleAt(SimTime t, EventFn fn) override {
    if (t < now_) t = now_;
    queue_.Push(EventQueue::Event{t, next_seq_++, std::move(fn)});
  }

  /// Runs the earliest event; returns false if the queue is empty.
  bool RunOne();

  /// Runs events until the virtual clock reaches `t` (events at exactly
  /// `t` are executed) or the queue empties.
  void RunUntil(SimTime t);

  /// Runs events for `d` microseconds of virtual time from now.
  void RunFor(SimTime d) { RunUntil(now_ + d); }

  /// Runs until the event queue is empty.
  void RunToCompletion();

  /// Simulator-global RNG; components should Fork() their own streams.
  carousel::Rng* rng() { return &rng_; }

  /// Total events executed so far (for perf reporting).
  uint64_t events_processed() const { return events_processed_; }

 private:
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
  carousel::Rng rng_;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_SIMULATOR_H_
