#ifndef CAROUSEL_SIM_EVENT_QUEUE_H_
#define CAROUSEL_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/event_fn.h"

namespace carousel::sim {

/// The simulator schedules the same callable type the runtime seam's
/// TimerQueue interface takes, so Simulator's Schedule/ScheduleAt are
/// exact overrides rather than converting wrappers.
using EventFn = runtime::EventFn;

/// Why a pending event exists, attached at scheduling time. The controlled
/// scheduler (check/explore) branches on deliveries and needs to know which
/// node each event acts on; normal (time, seq)-ordered runs never read it.
struct EventLabel {
  enum class Kind : uint8_t {
    kInternal = 0,  ///< Harness-internal (workload injection, settle code).
    kTimer = 1,     ///< A node's protocol timer (election, retry, GC...).
    kDelivery = 2,  ///< A network delivery (or its CPU-cost completion).
  };
  Kind kind = Kind::kInternal;
  /// The node the event acts on: delivery destination or timer owner.
  NodeId node = kInvalidNode;
  /// Delivery source (kDelivery only).
  NodeId from = kInvalidNode;
  /// MessageType of a delivery; 0 for coalesced delivery buckets.
  int msg_type = 0;
};

/// The simulator's pending-event set, ordered by (time, seq): a calendar
/// queue instead of one global binary heap. Discrete-event workloads are
/// heavily near-future biased — message deliveries and CPU completions land
/// within tens of milliseconds while only protocol timers (elections,
/// heartbeats, retries) sit seconds out — so events are spread over a ring
/// of small per-time-slice bucket heaps and percolate through heaps of a
/// few dozen entries instead of one of hundreds of thousands. Far-future
/// events (beyond the calendar horizon) wait in a single overflow heap,
/// which stays small and cold.
///
/// Ordering is identical to the old single-heap implementation: strictly
/// increasing (time, seq), with seq assigned at scheduling time — the
/// simulation replays deterministically event-for-event.
class EventQueue {
 public:
  struct Event {
    SimTime time = 0;
    uint64_t seq = 0;
    EventFn fn;
    EventLabel label;
  };

  /// 2048 buckets of 32 us cover a ~65 ms horizon: WAN one-way latencies
  /// and CPU queueing land in the calendar; second-scale timers overflow.
  static constexpr size_t kBuckets = 2048;
  static constexpr SimTime kBucketWidth = 32;

  EventQueue() : buckets_(kBuckets) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void Push(Event ev) {
    if (ev.time < base_) ev.time = base_;  // Defensive; Simulator clamps.
    size_++;
    // The cut is in slot units, not raw time: an event only enters the
    // calendar when its slot cannot alias an earlier window's slot.
    if (ev.time / kBucketWidth - base_ / kBucketWidth >=
        static_cast<SimTime>(kBuckets)) {
      overflow_.push_back(std::move(ev));
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
      return;
    }
    auto& bucket = buckets_[SlotOf(ev.time)];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    calendar_size_++;
  }

  /// Time of the earliest event; queue must be non-empty.
  SimTime PeekTime() { return FindMin()->front().time; }

  /// Removes and returns the earliest event; queue must be non-empty.
  Event PopMin() {
    std::vector<Event>* heap = FindMin();
    std::pop_heap(heap->begin(), heap->end(), Later{});
    Event ev = std::move(heap->back());
    heap->pop_back();
    size_--;
    if (heap != &overflow_) calendar_size_--;
    base_ = ev.time;  // Time is monotone; later pushes start here.
    return ev;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static size_t SlotOf(SimTime t) {
    return static_cast<size_t>(t / kBucketWidth) & (kBuckets - 1);
  }

  /// The heap holding the globally earliest event. All calendar events lie
  /// within one horizon of `base_`, so the slot ring scanned from
  /// `SlotOf(base_)` visits buckets in increasing time-window order and
  /// the first non-empty bucket holds the calendar minimum; the scan
  /// cursor only moves forward with time, so it amortizes to O(1) per pop
  /// on dense schedules.
  std::vector<Event>* FindMin() {
    if (calendar_size_ == 0) return &overflow_;
    const size_t start = SlotOf(base_);
    for (size_t i = 0; i < kBuckets; ++i) {
      auto& bucket = buckets_[(start + i) & (kBuckets - 1)];
      if (bucket.empty()) continue;
      if (!overflow_.empty() &&
          Later{}(bucket.front(), overflow_.front())) {
        return &overflow_;  // A migrated-past horizon boundary case.
      }
      return &bucket;
    }
    return &overflow_;  // Unreachable while calendar_size_ > 0.
  }

  std::vector<std::vector<Event>> buckets_;  // Each a binary min-heap.
  std::vector<Event> overflow_;              // Min-heap beyond the horizon.
  size_t size_ = 0;
  size_t calendar_size_ = 0;
  /// Lower bound on every queued event's time (the last popped time).
  SimTime base_ = 0;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_EVENT_QUEUE_H_
