#include "sim/network.h"

#include <cassert>

namespace carousel::sim {

Network::Network(Simulator* sim, const Topology* topology,
                 NetworkOptions options)
    : sim_(sim),
      topology_(topology),
      options_(options),
      rng_(sim->rng()->Fork()) {}

void Network::Register(runtime::Endpoint* node) {
  assert(node->id() == static_cast<NodeId>(nodes_.size()) &&
         "register nodes in id order");
  node->BindRuntime(this, sim_, sim_);
  nodes_.push_back(node);
  traffic_.emplace_back();
  last_arrival_.emplace_back();  // lazily sized in Send.
  core_busy_.emplace_back();     // lazily sized in Deliver.
}

SimTime Network::OneWayLatency(NodeId from, NodeId to) {
  if (from == to) return options_.loopback_micros;
  const SimTime rtt = topology_->RttMicros(topology_->DcOf(from),
                                           topology_->DcOf(to));
  const double jitter = 1.0 + options_.jitter_fraction * rng_.NextDouble();
  return static_cast<SimTime>(static_cast<double>(rtt) / 2.0 * jitter);
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  runtime::Endpoint* sender = nodes_[from];
  if (!sender->alive()) return;
  if (blocked_.count({std::min(from, to), std::max(from, to)}) > 0) {
    // Partitioned: bytes still leave the sender's NIC but never arrive.
    traffic_[from].bytes_sent += msg->WireSize() + options_.header_bytes;
    traffic_[from].msgs_sent++;
    return;
  }

  const size_t wire_bytes = msg->WireSize() + options_.header_bytes;
  traffic_[from].bytes_sent += wire_bytes;
  traffic_[from].msgs_sent++;
  const size_t type_slot = static_cast<size_t>(msg->type());
  sent_by_type_counts_[type_slot]++;
  bytes_by_type_counts_[type_slot] += wire_bytes;
  if (const auto* env = TryAs<BatchEnvelopeMsg>(*msg)) {
    envelopes_sent_++;
    enveloped_items_sent_ += env->items.size();
  }

  if (options_.loss_fraction > 0 && from != to &&
      rng_.Bernoulli(options_.loss_fraction)) {
    return;  // Dropped in flight.
  }

  SimTime arrival = sim_->now() + OneWayLatency(from, to);
  if (options_.fifo_pairs) {
    auto& row = last_arrival_[from];
    if (row.size() <= static_cast<size_t>(to)) row.resize(to + 1, 0);
    if (arrival < row[to]) arrival = row[to];
    row[to] = arrival;
  }

  // Only deliveries that are actually scheduled are observed; partition
  // and loss drops above never reach the WANRT ledger.
  const uint64_t token =
      observer_ != nullptr ? observer_->OnSend(*msg, from, to) : 0;
  ScheduleDelivery(from, to, arrival, std::move(msg), token);
}

void Network::ScheduleDelivery(NodeId from, NodeId to, SimTime arrival,
                               MessagePtr msg, uint64_t token) {
  if (!options_.coalesce_deliveries) {
    const EventLabel label{EventLabel::Kind::kDelivery, to, from,
                           static_cast<int>(msg->type())};
    sim_->ScheduleLabeledAt(
        arrival, label, [this, from, to, token, msg = std::move(msg)]() {
          Deliver(from, to, std::move(msg), token);
        });
    return;
  }
  // Bucket per (edge, tick): the first message of a tick schedules the
  // single delivery event; followers just append. Send order within the
  // bucket is preserved, so fifo_pairs semantics are unchanged.
  auto& bucket = pending_coalesced_[{from, to}][arrival];
  bucket.emplace_back(std::move(msg), token);
  if (bucket.size() > 1) {
    deliveries_coalesced_++;
    return;
  }
  // msg_type 0: a bucket event delivers a mixed batch, and controlled
  // scheduling (which branches on per-message types) rejects coalescing.
  sim_->ScheduleLabeledAt(
      arrival, EventLabel{EventLabel::Kind::kDelivery, to, from, 0},
      [this, from, to, arrival]() {
        auto edge_it = pending_coalesced_.find({from, to});
        if (edge_it == pending_coalesced_.end()) return;
        auto tick_it = edge_it->second.find(arrival);
        if (tick_it == edge_it->second.end()) return;
        auto msgs = std::move(tick_it->second);
        edge_it->second.erase(tick_it);
        if (edge_it->second.empty()) pending_coalesced_.erase(edge_it);
        for (auto& [m, tok] : msgs) {
          Deliver(from, to, std::move(m), tok);
        }
      });
}

void Network::Deliver(NodeId from, NodeId to, MessagePtr msg, uint64_t token) {
  runtime::Endpoint* receiver = nodes_[to];
  if (!receiver->alive()) {  // Dropped at a dead host.
    if (observer_ != nullptr && token != 0) observer_->OnDrop(token);
    return;
  }

  traffic_[to].bytes_received += msg->WireSize() + options_.header_bytes;
  traffic_[to].msgs_received++;

  const SimTime cost = receiver->ServiceCost(*msg);
  if (cost <= 0) {
    messages_delivered_++;
    // Observe before the handler runs: the handler's own sends must see
    // this delivery already folded into the ledger's watermarks.
    if (observer_ != nullptr && token != 0) observer_->OnDeliver(token, to);
    receiver->HandleMessage(from, msg);
    return;
  }
  // FIFO processing on the receiver's core pool: the message waits for
  // the earliest-free core, occupies it for `cost`, and the handler runs
  // at completion.
  auto& cores = core_busy_[to];
  if (cores.size() != static_cast<size_t>(receiver->cores())) {
    cores.assign(receiver->cores(), 0);
  }
  size_t best = 0;
  for (size_t i = 1; i < cores.size(); ++i) {
    if (cores[i] < cores[best]) best = i;
  }
  const SimTime start = std::max(sim_->now(), cores[best]);
  const SimTime done = start + cost;
  cores[best] = done;
  // The completion keeps the delivery label: to the controlled scheduler a
  // queued-for-CPU message is still "a delivery to `to`".
  const EventLabel label{EventLabel::Kind::kDelivery, to, from,
                         static_cast<int>(msg->type())};
  sim_->ScheduleLabeledAt(done, label, [this, from, to, token,
                                        msg = std::move(msg)]() {
    runtime::Endpoint* r = nodes_[to];
    if (!r->alive()) {  // Crashed while queued.
      if (observer_ != nullptr && token != 0) observer_->OnDrop(token);
      return;
    }
    messages_delivered_++;
    if (observer_ != nullptr && token != 0) observer_->OnDeliver(token, to);
    r->HandleMessage(from, msg);
  });
}

void Network::Crash(NodeId id) {
  runtime::Endpoint* node = nodes_[id];
  if (!node->alive()) return;
  node->set_alive(false);
  node->OnCrash();
}

void Network::Recover(NodeId id) {
  runtime::Endpoint* node = nodes_[id];
  if (node->alive()) return;
  node->set_alive(true);
  core_busy_[id].clear();
  node->OnRecover();
}

void Network::BlockPair(NodeId a, NodeId b) {
  blocked_.insert({std::min(a, b), std::max(a, b)});
}

void Network::UnblockPair(NodeId a, NodeId b) {
  blocked_.erase({std::min(a, b), std::max(a, b)});
}

void Network::ResetTraffic() {
  // Every counter a measurement window reads must reset here, or sweep
  // points bleed into each other: the per-node Traffic rows, BOTH by-type
  // maps (bytes_by_type_ was added for Fig. 7 batching accounting and
  // must not be forgotten), and the batching/coalescing tallies.
  for (auto& t : traffic_) t = Traffic{};
  sent_by_type_counts_.fill(0);
  bytes_by_type_counts_.fill(0);
  envelopes_sent_ = 0;
  enveloped_items_sent_ = 0;
  deliveries_coalesced_ = 0;
}

}  // namespace carousel::sim
