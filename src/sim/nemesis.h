#ifndef CAROUSEL_SIM_NEMESIS_H_
#define CAROUSEL_SIM_NEMESIS_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/network.h"

namespace carousel::sim {

/// Schedulable fault injector over the Network's primitive hooks. A chaos
/// run builds a schedule up front (crashes, recoveries, partitions, heals)
/// so the whole fault plan is part of the seed's deterministic replay and
/// can be printed alongside a failing history.
///
/// The nemesis tracks what it injected, so HealAllAt() undoes exactly the
/// outstanding faults — it never "recovers" a node it did not crash.
class Nemesis {
 public:
  explicit Nemesis(Network* net) : net_(net) {}

  /// Crashes `id` at virtual time `at` (no-op if already crashed then).
  void CrashAt(SimTime at, NodeId id);

  /// Recovers `id` at `at` (no-op unless this nemesis crashed it).
  void RecoverAt(SimTime at, NodeId id);

  /// Cuts all links between `side_a` and `side_b` at `at`.
  void PartitionAt(SimTime at, std::vector<NodeId> side_a,
                   std::vector<NodeId> side_b);

  /// Restores the links between `side_a` and `side_b` at `at` (only pairs
  /// this nemesis actually blocked). Lets a partition heal mid-run — e.g.
  /// mid-2PC — rather than only at the final heal-all.
  void HealPartitionAt(SimTime at, std::vector<NodeId> side_a,
                       std::vector<NodeId> side_b);

  /// Heals every fault still outstanding at `at`: recovers every node this
  /// nemesis crashed and unblocks every pair it partitioned. Schedule one
  /// before the quiesce window so the run can converge.
  void HealAllAt(SimTime at);

  /// The full schedule, one line per event in time order — printed with a
  /// failing seed so the fault plan is part of the bug report.
  std::string Describe() const;

  /// Events injected so far (fired, not just scheduled).
  size_t faults_injected() const { return faults_injected_; }

 private:
  struct PlannedEvent {
    SimTime at;
    std::string what;
  };

  void Note(SimTime at, std::string what);

  Network* net_;
  /// Live fault state, updated as events fire.
  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::vector<PlannedEvent> plan_;
  size_t faults_injected_ = 0;
};

}  // namespace carousel::sim

#endif  // CAROUSEL_SIM_NEMESIS_H_
