#include "check/chaos.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "check/explore.h"
#include "harness/cluster.h"
#include "common/rng.h"
#include "common/topology.h"
#include "sim/nemesis.h"

namespace carousel::check {
namespace {

/// One pre-sampled transaction invocation. Everything stochastic is drawn
/// up front so the rng stream does not depend on runtime interleavings.
struct PlannedTxn {
  SimTime at = 0;
  int client = 0;
  KeyList read_keys;
  WriteSet writes;  // key -> unique value
  bool voluntary_abort = false;
};

std::string KeyName(int i) { return "key" + std::to_string(i); }

/// Issues one planned transaction on its client, mirroring how an
/// application drives the 2FI API (read round -> buffered writes ->
/// commit), with an occasional voluntary abort after the read round.
void IssueTxn(core::Cluster* cluster, const PlannedTxn& plan) {
  core::CarouselClient* client = cluster->client(plan.client);
  if (!client->alive()) return;  // A crashed app server issues nothing.
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : plan.writes) write_keys.push_back(k);
  const WriteSet writes = plan.writes;
  const bool abort = plan.voluntary_abort;
  client->ReadAndPrepare(
      tid, plan.read_keys, write_keys,
      [client, tid, writes, abort](
          Status status, const core::CarouselClient::ReadResults&) {
        if (writes.empty() || !status.ok()) return;  // Done / already dead.
        if (abort) {
          client->Abort(tid);
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [](Status) {});
      });
}

}  // namespace

ChaosResult RunChaosSeed(const ChaosConfig& config) {
  ChaosResult result;
  result.seed = config.seed;
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);

  // ---- Sample the deployment ----
  const int dc_choices[] = {2, 3, 3, 3, 5};
  const int num_dcs = dc_choices[rng.UniformInt(0, 4)];
  const int replication =
      (num_dcs == 5 && rng.Bernoulli(0.4)) ? 5 : 3;
  const int partitions = static_cast<int>(rng.UniformInt(2, 4));
  const int clients_per_dc = static_cast<int>(rng.UniformInt(1, 2));
  const double rtt_ms = static_cast<double>(rng.UniformInt(5, 60));
  Topology topo = Topology::Uniform(num_dcs, rtt_ms);
  topo.PlacePartitions(partitions, replication);
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }

  core::CarouselOptions options;
  options.fast_path = rng.Bernoulli(0.75);
  options.local_reads = options.fast_path && rng.Bernoulli(0.6);
  options.closest_reads = options.local_reads && rng.Bernoulli(0.3);
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.heartbeat_interval = 200'000;
  options.client_retry_timeout = 1'500'000;
  options.coordinator_retry_interval = 1'500'000;
  options.pending_gc_interval = 5'000'000;
  options.bug_fast_path_skip_leader_check = config.inject_bug_fast_path;
  options.bug_skip_stale_read_check = config.inject_bug_stale_read;
  options.batching.enabled = config.batching;
  options.batching.coalesce_deliveries = config.batching;
  // Observability rides along on every chaos run: the delivery observer
  // runs in zero sim time, so results are bit-identical with it on, and
  // failing seeds get a metrics snapshot in their artifacts.
  options.metrics.enabled = true;

  sim::NetworkOptions net;
  net.loss_fraction =
      rng.Bernoulli(0.5) ? 0.0 : 0.01 * rng.UniformInt(1, 3);

  const int key_space = static_cast<int>(rng.UniformInt(6, 16));
  {
    std::ostringstream setup;
    setup << "dcs=" << num_dcs << " partitions=" << partitions
          << " replication=" << replication
          << " clients=" << clients_per_dc * num_dcs << " rtt=" << rtt_ms
          << "ms loss=" << net.loss_fraction << " keys=" << key_space
          << " fast_path=" << options.fast_path
          << " local_reads=" << options.local_reads
          << " closest_reads=" << options.closest_reads;
    if (config.batching) setup << " batching=1";
    if (config.inject_bug_fast_path) setup << " BUG=fast-path-quorum";
    if (config.inject_bug_stale_read) setup << " BUG=skip-stale-read";
    result.setup = setup.str();
  }

  core::Cluster cluster(std::move(topo), options, net, config.seed);
  HistoryRecorder* history = &result.history;
  cluster.AttachHistory(history);
  cluster.Start();

  const int num_clients = static_cast<int>(cluster.clients().size());
  const SimTime t0 = cluster.sim().now();
  const SimTime window = 20 * kMicrosPerSecond;

  // ---- Sample the workload ----
  std::vector<PlannedTxn> plan(static_cast<size_t>(std::max(config.txns, 1)));
  uint64_t value_counter = 0;
  for (PlannedTxn& txn : plan) {
    txn.at = t0 + rng.UniformInt(0, window);
    txn.client = static_cast<int>(rng.UniformInt(0, num_clients - 1));
    // Distinct keys for this transaction.
    std::vector<int> keys;
    const int nkeys = static_cast<int>(rng.UniformInt(1, 3));
    while (static_cast<int>(keys.size()) < nkeys) {
      const int k = static_cast<int>(rng.UniformInt(0, key_space - 1));
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    const double shape = rng.NextDouble();
    if (shape < 0.15) {
      // Read-only.
      for (int k : keys) txn.read_keys.push_back(KeyName(k));
    } else if (shape < 0.30) {
      // Blind writes.
      for (int k : keys) {
        txn.writes[KeyName(k)] =
            "s" + std::to_string(config.seed) + "t" +
            std::to_string(value_counter++);
      }
    } else {
      // Read-modify-write: read all, write a non-empty subset.
      for (int k : keys) txn.read_keys.push_back(KeyName(k));
      const size_t nwrites = 1 + rng.UniformInt(0, nkeys - 1);
      for (size_t i = 0; i < nwrites; ++i) {
        txn.writes[KeyName(keys[i])] =
            "s" + std::to_string(config.seed) + "t" +
            std::to_string(value_counter++);
      }
      txn.voluntary_abort = rng.Bernoulli(0.04);
    }
  }
  for (const PlannedTxn& txn : plan) {
    cluster.sim().ScheduleAt(txn.at,
                             [&cluster, txn] { IssueTxn(&cluster, txn); });
  }
  result.txns_invoked = plan.size();

  // ---- Sample the nemesis schedule ----
  sim::Nemesis nemesis(&cluster.network());
  struct Episode {
    PartitionId partition;
    SimTime start, end;
  };
  std::vector<Episode> episodes;
  const int crash_episodes = static_cast<int>(rng.UniformInt(0, 4));
  const int f = (replication - 1) / 2;
  for (int i = 0; i < crash_episodes; ++i) {
    const PartitionId p = static_cast<PartitionId>(
        rng.UniformInt(0, partitions - 1));
    const SimTime start = t0 + rng.UniformInt(kMicrosPerSecond, window);
    const SimTime dur = rng.UniformInt(500 * kMicrosPerMilli,
                                       8 * kMicrosPerSecond);
    // Mostly stay within the f-failure budget per group so the run keeps
    // making progress; occasionally exceed it (safety must still hold).
    int overlapping = 0;
    for (const Episode& e : episodes) {
      if (e.partition == p && e.start < start + dur && start < e.end) {
        overlapping++;
      }
    }
    if (overlapping >= f && !rng.Bernoulli(0.2)) continue;
    const auto& replicas = cluster.topology().Replicas(p);
    const NodeId node =
        replicas[rng.UniformInt(0, static_cast<int>(replicas.size()) - 1)];
    nemesis.CrashAt(start, node);
    nemesis.RecoverAt(start + dur, node);
    episodes.push_back(Episode{p, start, start + dur});
  }
  if (rng.Bernoulli(0.3) && num_clients > 0) {
    // Crash an app server mid-run: its in-flight transactions go
    // indeterminate and the coordinator heartbeat-abort path must clean up.
    const NodeId node = cluster.topology().clients()[rng.UniformInt(
        0, num_clients - 1)];
    const SimTime start = t0 + rng.UniformInt(kMicrosPerSecond, window);
    nemesis.CrashAt(start, node);
    nemesis.RecoverAt(start + rng.UniformInt(2, 10) * kMicrosPerSecond, node);
  }
  const int net_partitions = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < net_partitions && num_dcs >= 2; ++i) {
    const DcId a = static_cast<DcId>(rng.UniformInt(0, num_dcs - 1));
    DcId b = static_cast<DcId>(rng.UniformInt(0, num_dcs - 2));
    if (b >= a) b++;
    std::vector<NodeId> side_a, side_b;
    for (const NodeInfo& info : cluster.topology().nodes()) {
      if (info.dc == a) side_a.push_back(info.id);
      if (info.dc == b) side_b.push_back(info.id);
    }
    const SimTime start = t0 + rng.UniformInt(kMicrosPerSecond, window);
    const SimTime dur =
        rng.UniformInt(kMicrosPerSecond, 6 * kMicrosPerSecond);
    // The heal can land mid-2PC of any transaction started during the cut.
    nemesis.PartitionAt(start, side_a, side_b);
    nemesis.HealPartitionAt(start + dur, side_a, side_b);
  }
  nemesis.HealAllAt(t0 + window + 2 * kMicrosPerSecond);
  result.nemesis_schedule = nemesis.Describe();

  // ---- Run: workload + faults, then quiesce ----
  cluster.sim().RunUntil(t0 + window + 40 * kMicrosPerSecond);
  result.faults_injected = nemesis.faults_injected();

  // Make sure every group has a leader again before extracting state.
  for (int round = 0; round < 100; ++round) {
    bool all = true;
    for (PartitionId p = 0; p < partitions; ++p) {
      if (cluster.LeaderOf(p) == nullptr) all = false;
    }
    if (all) break;
    cluster.sim().RunFor(500 * kMicrosPerMilli);
  }

  // ---- Extract ground truth and cross-check replicas ----
  result.chains = ExtractWriterChains(&cluster, &result.check.violations);

  // ---- Certify ----
  CheckResult check = CheckSerializability(result.history, result.chains);
  for (Violation& v : check.violations) {
    result.check.violations.push_back(std::move(v));
  }
  result.check.committed = check.committed;
  result.check.aborted = check.aborted;
  result.check.indeterminate = check.indeterminate;
  result.check.edges = check.edges;
  result.wanrt = cluster.wanrt().stats();
  result.metrics_json = cluster.MetricsJson(2);
  return result;
}

std::string ChaosResult::Summary() const {
  std::ostringstream out;
  out << "seed " << seed << ": " << (ok() ? "OK" : "FAIL") << " ("
      << check.committed << " committed, " << check.aborted << " aborted, "
      << check.indeterminate << " indeterminate, " << faults_injected
      << " faults, " << check.edges << " edges, " << wanrt.fast_path_txns
      << " fast / " << wanrt.slow_path_txns << " slow / "
      << wanrt.degraded_txns << " degraded";
  if (!ok()) out << ", " << check.violations.size() << " VIOLATIONS";
  out << ")";
  return out.str();
}

std::string ChaosResult::Report() const {
  std::ostringstream out;
  out << "==== chaos seed " << seed << " ====\n"
      << "setup: " << setup << "\n"
      << "nemesis schedule:\n"
      << nemesis_schedule << Summary() << "\n"
      << check.Report(history);
  return out.str();
}

}  // namespace carousel::check
