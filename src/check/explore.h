#ifndef CAROUSEL_CHECK_EXPLORE_H_
#define CAROUSEL_CHECK_EXPLORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.h"
#include "check/serializability.h"
#include "common/types.h"

namespace carousel::core {
class Cluster;
}  // namespace carousel::core

namespace carousel::check {

/// Systematic state-space exploration of the commit protocol: the real
/// stack runs on the sim backend in controlled-scheduling mode, and an
/// iterative-deepening DFS enumerates message-delivery orderings (plus
/// optional crash points), certifying every terminal state with the DSG
/// serializability checker. Where the chaos harness samples interleavings
/// from a seed, the explorer enumerates them exhaustively on small
/// configurations — the regime every prior protocol bug actually lived in.
///
/// Scheduling policy (see DESIGN.md §14):
///  - Harness-internal events (workload injection) run eagerly.
///  - The branchable choices are message deliveries, restricted to the
///    earliest pending delivery per (from, to) edge — fifo_pairs order is
///    a transport guarantee, not adversary freedom.
///  - Deliveries to crashed nodes are dropped eagerly (no branch).
///  - Timers fire only at delivery-quiescence, earliest first (a forced
///    choice): a protocol timer racing a deliverable message is modeled by
///    delaying the delivery past the quiescent point instead.
///  - A sleep-set partial-order reduction prunes re-orderings of commuting
///    deliveries (different destination node => commute; node state is
///    disjoint and the checker is history-order-insensitive).
///  - With crash points enabled, delivering a message whose type is in
///    `crash_point_types` to a server arms a one-step crash choice for
///    that server (a crash at the prepare/decision persistence boundary);
///    crashed nodes may recover at quiescence.
struct ExploreConfig {
  uint64_t seed = 1;

  /// ---- Deployment (kept tiny: exploration is exponential) ----
  int num_dcs = 3;
  int partitions = 1;
  int replication = 3;
  int clients_per_dc = 1;
  int rtt_ms = 20;

  /// ---- Workload: `txns` transactions, all issued at t0, client
  /// round-robin; every txn reads all `keys` keys and writes two of them
  /// (txn i writes key[i % keys] and key[(i+1) % keys]) — maximally
  /// conflicting by construction. ----
  int txns = 2;
  int keys = 2;
  /// When true, txn i+1 is issued from txn i's completion callback instead
  /// of all txns starting at t0: conflicts then come only from replication
  /// lag (a later txn racing the previous one's trailing writebacks), the
  /// regime that exposes stale local reads (§4.2).
  bool sequential = false;

  /// ---- Protocol options under test ----
  bool fast_path = true;
  bool local_reads = false;
  /// Flag-gated protocol bugs (CarouselOptions), for checker self-tests.
  bool inject_bug_fast_path = false;
  bool inject_bug_stale_read = false;

  /// ---- Exploration bounds ----
  /// Branch points past this depth take the default (first) choice.
  int max_depth = 40;
  /// Cap on alternatives explored per branch point (0 = all).
  int branch_bound = 0;
  /// Stop after this many distinct completed schedules (0 = run until the
  /// bounded DFS exhausts).
  uint64_t max_schedules = 0;
  /// Controlled steps per run before truncating to the drain phase (a
  /// guard against runaway schedules; truncated runs are still certified).
  int max_steps = 4000;
  /// Iterative deepening: explore depth bounds step, 2*step, ... up to
  /// max_depth, counting only schedules whose deepest non-default choice
  /// is new to the window (0 = a single DFS at max_depth).
  int iterative_step = 0;
  /// CHESS-style delay bounding (supersedes max_depth/iterative_step when
  /// > 0): every branch point in the run may deviate from the default
  /// earliest-event choice, but at most `delay_bound` branch points per
  /// schedule actually do. Prefix-depth DFS can only reorder the first
  /// max_depth branch points — a bug whose triggering reordering sits late
  /// in the run (e.g. a stale local read racing the previous transaction's
  /// trailing writeback) hides behind an exponential prefix; delay
  /// bounding reaches it at polynomial cost in the bound.
  int delay_bound = 0;
  /// Sleep-set partial-order reduction (off = plain bounded DFS).
  bool sleep_sets = true;
  bool stop_on_violation = true;

  /// ---- Crash injection ----
  int max_crashes = 0;
  /// Message types whose delivery to a server arms a crash choice; empty
  /// means the default prepare/decision persistence set (RaftAppendEntries,
  /// CarouselCoordPrepare, CarouselPrepareDecision).
  std::vector<int> crash_point_types;
};

/// One controlled scheduling decision, as recorded in a replayable trace.
/// Deliveries are identified by their (from, node) edge — per-edge FIFO
/// means at most one delivery per edge is enabled at a time, so the edge
/// plus the step position pins the event without raw event seqs (which are
/// an implementation detail that may shift under unrelated changes).
struct TraceStep {
  enum class Kind : uint8_t { kDeliver = 0, kTimer = 1, kCrash = 2, kRecover = 3 };
  Kind kind = Kind::kDeliver;
  NodeId node = kInvalidNode;  ///< Destination / timer owner / crash target.
  NodeId from = kInvalidNode;  ///< Delivery source (kDeliver only).
  int msg_type = 0;            ///< Delivery MessageType (kDeliver only).
};

/// A replayable schedule: the run configuration plus every controlled
/// decision, serialized as JSON for corpus pinning and CI artifacts.
struct ScheduleTrace {
  ExploreConfig config;
  std::vector<TraceStep> steps;
  /// One-line violation summary when this trace certifies dirty.
  std::string violation;

  std::string ToJson() const;
  static bool FromJson(const std::string& json, ScheduleTrace* out,
                       std::string* error);
};

/// Outcome of executing one schedule end to end (controlled phase, then a
/// drain that recovers crashed nodes and settles, then certification).
struct RunOutcome {
  /// Sleep sets closed every enabled delivery: the schedule is equivalent
  /// to an already-explored one and was not certified.
  bool pruned = false;
  /// Hit max_steps before every transaction decided.
  bool truncated = false;
  CheckResult check;
  HistoryRecorder history;
  WriterChains chains;
  std::vector<TraceStep> steps;
  /// One-line violation summary (empty when the run certified clean).
  std::string violation;

  bool ok() const { return check.ok(); }
};

struct ExploreResult {
  ExploreConfig config;
  /// Distinct completed-and-certified schedules (the acceptance metric).
  uint64_t schedules = 0;
  /// Total executions, including sleep-set-pruned runs and the duplicated
  /// shallow re-runs of iterative deepening.
  uint64_t runs = 0;
  uint64_t pruned = 0;
  uint64_t truncated = 0;
  /// The bounded DFS ran out of alternatives (vs. stopping on
  /// max_schedules or a violation).
  bool exhausted = false;
  bool violation_found = false;
  ScheduleTrace violation_trace;
  /// Full checker report of the violating run.
  std::string violation_report;
  /// Outcome totals across counted schedules.
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t indeterminate = 0;

  bool ok() const { return !violation_found; }
  std::string Summary() const;
};

/// Runs the bounded exploration. Deterministic: same config, same result.
ExploreResult Explore(const ExploreConfig& config);

/// Re-executes a dumped schedule step-for-step under the trace's embedded
/// config. On a scheduling divergence (a recorded step is not enabled at
/// its position) fills *error and returns the partial outcome.
RunOutcome ReplayTrace(const ScheduleTrace& trace, std::string* error);

/// Extracts each key's ground-truth writer chain (the longest chain across
/// alive replicas) and appends a replica-divergence violation when an
/// alive replica's chain is not a prefix of it. Shared by the chaos
/// harness and the explorer.
WriterChains ExtractWriterChains(core::Cluster* cluster,
                                 std::vector<Violation>* violations);

}  // namespace carousel::check

#endif  // CAROUSEL_CHECK_EXPLORE_H_
