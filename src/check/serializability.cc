#include "check/serializability.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

namespace carousel::check {
namespace {

/// Internal graph representation: nodes are committed transactions, edges
/// carry their DSG label for reporting.
struct Graph {
  std::map<TxnId, std::vector<DsgEdge>> out;

  void AddEdge(const TxnId& from, const TxnId& to, char kind, const Key& key,
               Version version) {
    if (from == to) return;  // A txn never orders against itself.
    out[from].push_back(DsgEdge{from, to, kind, key, version});
    out.try_emplace(to);  // Ensure every endpoint is a node.
  }

  size_t edge_count() const {
    size_t n = 0;
    for (const auto& [tid, edges] : out) n += edges.size();
    return n;
  }
};

/// Finds any cycle via iterative three-color DFS; returns it as a node
/// sequence (first == last omitted), or empty when the graph is acyclic.
std::vector<TxnId> FindCycle(const Graph& g) {
  enum Color { kWhite, kGray, kBlack };
  std::map<TxnId, Color> color;
  for (const auto& [tid, edges] : g.out) color[tid] = kWhite;

  struct Frame {
    TxnId tid;
    size_t next_edge = 0;
  };
  for (const auto& [root, root_edges] : g.out) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = g.out.find(frame.tid);
      const std::vector<DsgEdge>& edges = it->second;
      if (frame.next_edge >= edges.size()) {
        color[frame.tid] = kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = edges[frame.next_edge++].to;
      if (color[next] == kGray) {
        // Back edge: the cycle is the stack suffix starting at `next`.
        std::vector<TxnId> cycle;
        size_t start = 0;
        while (start < stack.size() && !(stack[start].tid == next)) start++;
        for (size_t i = start; i < stack.size(); ++i) {
          cycle.push_back(stack[i].tid);
        }
        return cycle;
      }
      if (color[next] == kWhite) {
        color[next] = kGray;
        stack.push_back({next, 0});
      }
    }
  }
  return {};
}

/// BFS shortest path from `src` to `dst`; returns the edge sequence, or
/// empty when unreachable.
std::vector<DsgEdge> ShortestPath(const Graph& g, const TxnId& src,
                                  const TxnId& dst) {
  std::map<TxnId, DsgEdge> parent;  // node -> edge that reached it
  std::deque<TxnId> queue{src};
  std::set<TxnId> seen{src};
  while (!queue.empty()) {
    const TxnId cur = queue.front();
    queue.pop_front();
    if (cur == dst) break;
    auto it = g.out.find(cur);
    if (it == g.out.end()) continue;
    for (const DsgEdge& e : it->second) {
      if (!seen.insert(e.to).second) continue;
      parent.emplace(e.to, e);
      queue.push_back(e.to);
    }
  }
  if (seen.count(dst) == 0 || src == dst) return {};
  std::vector<DsgEdge> path;
  for (TxnId cur = dst; !(cur == src);) {
    const DsgEdge& e = parent.at(cur);
    path.push_back(e);
    cur = e.from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Shrinks a DFS-found cycle to a minimal one: for every edge (u -> v) on
/// the cycle, the shortest v -> u path plus that edge is the smallest cycle
/// through it; keep the overall minimum. The result is what gets dumped,
/// so smaller is strictly better for debugging.
std::vector<DsgEdge> MinimizeCycle(const Graph& g,
                                   const std::vector<TxnId>& cycle) {
  std::vector<DsgEdge> best;
  for (size_t i = 0; i < cycle.size(); ++i) {
    const TxnId& u = cycle[i];
    const TxnId& v = cycle[(i + 1) % cycle.size()];
    auto it = g.out.find(u);
    if (it == g.out.end()) continue;
    const DsgEdge* uv = nullptr;
    for (const DsgEdge& e : it->second) {
      if (e.to == v) {
        uv = &e;
        break;
      }
    }
    if (uv == nullptr) continue;
    std::vector<DsgEdge> back = ShortestPath(g, v, u);
    if (back.empty() && !(v == u)) continue;
    back.insert(back.begin(), *uv);
    if (best.empty() || back.size() < best.size()) best = std::move(back);
  }
  return best;
}

}  // namespace

std::string DsgEdge::ToString() const {
  const char* name = kind == 'w' ? "ww" : kind == 'r' ? "wr" : "rw";
  std::ostringstream out;
  out << from.ToString() << " -[" << name << " " << key << "@v" << version
      << "]-> " << to.ToString();
  return out.str();
}

CheckResult CheckSerializability(const HistoryRecorder& history,
                                 const WriterChains& chains) {
  CheckResult result;
  auto violate = [&result](const std::string& kind,
                           const std::string& description) {
    result.violations.push_back(Violation{kind, description, {}});
  };

  // Index: which chains does each tid appear in, and how often per key.
  std::map<TxnId, std::map<Key, int>> chain_occurrences;
  for (const auto& [key, chain] : chains) {
    for (const TxnId& tid : chain) chain_occurrences[tid][key]++;
  }

  // Effective verdict per txn: indeterminate outcomes resolve to whatever
  // the chains say (both verdicts are legal for them).
  std::set<TxnId> committed;
  for (const TxnRecord& rec : history.records()) {
    const bool in_chain = chain_occurrences.count(rec.tid) > 0;
    switch (rec.outcome) {
      case Outcome::kCommitted:
        committed.insert(rec.tid);
        result.committed++;
        break;
      case Outcome::kAborted:
        result.aborted++;
        if (in_chain) {
          violate("aborted-write-visible",
                  "aborted " + rec.tid.ToString() +
                      " installed a version (abort had visible effects)");
        }
        break;
      case Outcome::kUnknown:
      case Outcome::kTimedOut:
        result.indeterminate++;
        if (in_chain) committed.insert(rec.tid);
        break;
    }

    // Coordinator decision points must agree with each other and with the
    // client-visible outcome (CPC fast/slow agreement, failover
    // re-derivation, termination fences).
    for (const DecisionEvent& d : rec.decisions) {
      const DecisionEvent& first = rec.decisions.front();
      if (d.committed != first.committed) {
        violate("divergent-decision",
                rec.tid.ToString() + ": coordinator " +
                    std::to_string(first.coordinator) +
                    (first.committed ? " committed" : " aborted") +
                    " but coordinator " + std::to_string(d.coordinator) +
                    (d.committed ? " committed" : " aborted"));
        break;
      }
    }
    if (!rec.decisions.empty()) {
      const bool coord_commit = rec.decisions.front().committed;
      if (rec.outcome == Outcome::kCommitted && !coord_commit) {
        violate("divergent-decision",
                rec.tid.ToString() +
                    ": client saw commit, coordinator decided abort");
      }
      if (rec.outcome == Outcome::kAborted && coord_commit &&
          rec.reason != "client abort") {
        violate("divergent-decision",
                rec.tid.ToString() +
                    ": client saw abort, coordinator decided commit");
      }
    }
  }

  // Chain sanity: every chain entry must be a recorded transaction that
  // buffered a write for that key; committed writes must appear exactly
  // once per written key (atomically, across all written keys).
  for (const auto& [key, chain] : chains) {
    for (const TxnId& tid : chain) {
      const TxnRecord* rec = history.Find(tid);
      if (rec == nullptr) {
        violate("unrecorded-writer", "store version of '" + key +
                                         "' written by unknown txn " +
                                         tid.ToString());
      } else if (rec->writes.count(key) == 0) {
        violate("ghost-write", tid.ToString() + " installed a version of '" +
                                   key + "' it never buffered");
      }
    }
  }
  for (const TxnId& tid : committed) {
    const TxnRecord* rec = history.Find(tid);
    if (rec == nullptr) continue;
    const auto occ = chain_occurrences.find(tid);
    for (const auto& [key, value] : rec->writes) {
      const int n = occ == chain_occurrences.end() ? 0 : [&] {
        auto it = occ->second.find(key);
        return it == occ->second.end() ? 0 : it->second;
      }();
      if (n == 0) {
        violate("lost-write", tid.ToString() + " committed ('" +
                                  OutcomeName(rec->outcome) +
                                  "') but its write to '" + key +
                                  "' is not in the final state");
      } else if (n > 1) {
        violate("double-apply", tid.ToString() + " write to '" + key +
                                    "' was applied " + std::to_string(n) +
                                    " times");
      }
    }
  }

  // Read well-formedness (all transactions, committed or not: observing a
  // version that was never installed, or an aborted writer's value, is a
  // dirty read regardless of the reader's own fate).
  for (const TxnRecord& rec : history.records()) {
    for (const auto& [key, vv] : rec.reads) {
      if (vv.version == 0) {
        if (!vv.value.empty()) {
          violate("dirty-read", rec.tid.ToString() + " read '" + key +
                                    "'@v0 with non-initial value '" +
                                    vv.value + "'");
        }
        continue;
      }
      const auto chain_it = chains.find(key);
      const std::vector<TxnId>* chain =
          chain_it == chains.end() ? nullptr : &chain_it->second;
      if (chain == nullptr || vv.version > chain->size()) {
        violate("dirty-read",
                rec.tid.ToString() + " read '" + key + "'@v" +
                    std::to_string(vv.version) +
                    " which was never durably installed");
        continue;
      }
      const TxnId& writer = (*chain)[vv.version - 1];
      const TxnRecord* wrec = history.Find(writer);
      if (wrec != nullptr) {
        if (wrec->outcome == Outcome::kAborted) {
          violate("dirty-read", rec.tid.ToString() + " read '" + key +
                                    "'@v" + std::to_string(vv.version) +
                                    " written by aborted " +
                                    writer.ToString());
        }
        auto w = wrec->writes.find(key);
        if (w != wrec->writes.end() && w->second != vv.value) {
          violate("corrupt-read",
                  rec.tid.ToString() + " read '" + key + "'@v" +
                      std::to_string(vv.version) + " = '" + vv.value +
                      "' but " + writer.ToString() + " wrote '" + w->second +
                      "'");
        }
      }
    }
  }

  // ---- Direct serialization graph over the committed transactions ----
  Graph graph;
  for (const TxnId& tid : committed) graph.out.try_emplace(tid);

  // ww: the chain order itself.
  for (const auto& [key, chain] : chains) {
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      if (committed.count(chain[i]) == 0 || committed.count(chain[i + 1]) == 0)
        continue;
      graph.AddEdge(chain[i], chain[i + 1], 'w', key,
                    static_cast<Version>(i + 2));
    }
  }
  // wr and rw: anchored on each committed reader's observed versions.
  for (const TxnRecord& rec : history.records()) {
    if (committed.count(rec.tid) == 0) continue;
    for (const auto& [key, vv] : rec.reads) {
      const auto chain_it = chains.find(key);
      if (chain_it == chains.end()) continue;
      const std::vector<TxnId>& chain = chain_it->second;
      if (vv.version > chain.size()) continue;  // Already flagged above.
      if (vv.version >= 1) {
        const TxnId& writer = chain[vv.version - 1];
        if (committed.count(writer) > 0) {
          graph.AddEdge(writer, rec.tid, 'r', key, vv.version);
        }
      }
      if (vv.version < chain.size()) {
        const TxnId& overwriter = chain[vv.version];
        if (committed.count(overwriter) > 0) {
          graph.AddEdge(rec.tid, overwriter, 'a', key, vv.version + 1);
        }
      }
    }
  }
  result.edges = graph.edge_count();

  const std::vector<TxnId> cycle = FindCycle(graph);
  if (!cycle.empty()) {
    std::vector<DsgEdge> minimal = MinimizeCycle(graph, cycle);
    Violation v;
    v.kind = "cycle";
    std::ostringstream desc;
    desc << "dependency cycle over " << minimal.size()
         << " committed transactions:";
    for (const DsgEdge& e : minimal) {
      desc << "\n    " << e.ToString();
      v.cycle.push_back(e.from);
    }
    if (v.cycle.empty()) {
      // Minimization failed (should not happen); fall back to the DFS cycle.
      v.cycle = cycle;
      for (const TxnId& tid : cycle) desc << "\n    " << tid.ToString();
    }
    v.description = desc.str();
    result.violations.push_back(std::move(v));
  }

  return result;
}

std::string CheckResult::Report(const HistoryRecorder& history) const {
  std::ostringstream out;
  out << "serializability check: " << committed << " committed, " << aborted
      << " aborted, " << indeterminate << " indeterminate, " << edges
      << " DSG edges, " << violations.size() << " violation(s)\n";
  std::set<TxnId> dumped;
  for (const Violation& v : violations) {
    out << "VIOLATION [" << v.kind << "] " << v.description << "\n";
    for (const TxnId& tid : v.cycle) {
      if (!dumped.insert(tid).second) continue;
      const TxnRecord* rec = history.Find(tid);
      if (rec != nullptr) out << rec->ToString() << "\n";
    }
  }
  return out.str();
}

}  // namespace carousel::check
