#include "check/explore.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/topology.h"
#include "harness/cluster.h"

namespace carousel::check {

namespace {

/// Crash choices arm on delivering one of these to a server: the Raft
/// append that persists prepare/decision state, and the two Carousel
/// prepare messages (coordinator-side and participant-side) — the §4.3.3
/// persistence boundaries recovery evidence must survive.
const int kDefaultCrashPoints[] = {102 /*RaftAppendEntries*/,
                                   202 /*CarouselPrepareDecision*/,
                                   203 /*CarouselCoordPrepare*/};

/// One recorded branch point of a run: how many alternatives were enabled
/// (after the branch bound) and which one this run took.
struct Frame {
  size_t alternatives = 0;
  size_t chosen = 0;
};

/// An enabled scheduling choice at one step.
struct Choice {
  TraceStep step;
  uint64_t seq = 0;  // Pending-event seq for kDeliver/kTimer; 0 otherwise.
};

struct TxnFlag {
  bool done = false;
};

core::CarouselOptions MakeOptions(const ExploreConfig& config) {
  core::CarouselOptions options;
  options.fast_path = config.fast_path;
  options.local_reads = config.local_reads;
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.heartbeat_interval = 200'000;
  options.client_retry_timeout = 1'500'000;
  options.coordinator_retry_interval = 1'500'000;
  options.pending_gc_interval = 5'000'000;
  options.bug_fast_path_skip_leader_check = config.inject_bug_fast_path;
  options.bug_skip_stale_read_check = config.inject_bug_stale_read;
  return options;
}

Topology MakeTopology(const ExploreConfig& config) {
  Topology topo =
      Topology::Uniform(config.num_dcs, static_cast<double>(config.rtt_ms));
  topo.PlacePartitions(config.partitions, config.replication);
  for (DcId dc = 0; dc < config.num_dcs; ++dc) {
    for (int i = 0; i < config.clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

/// The workload's key set: key j lives on partition j % partitions, found
/// by probing the hash directory. Deterministic per config.
KeyList ProbeKeys(const core::Cluster& cluster, const ExploreConfig& config) {
  KeyList keys;
  std::set<Key> used;
  for (int j = 0; j < config.keys; ++j) {
    const PartitionId target =
        static_cast<PartitionId>(j % config.partitions);
    for (int i = 0; i < 100000; ++i) {
      Key k = "k" + std::to_string(i);
      if (used.count(k) > 0) continue;
      if (cluster.directory().PartitionFor(k) == target) {
        used.insert(k);
        keys.push_back(k);
        break;
      }
    }
  }
  return keys;
}

/// Drives one transaction through the 2FI API (read round -> buffered
/// writes -> commit), setting `flag` once a client-visible outcome exists.
void IssueExploreTxn(core::CarouselClient* client, const KeyList& reads,
                     const WriteSet& writes,
                     const std::shared_ptr<TxnFlag>& flag) {
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : writes) write_keys.push_back(k);
  client->ReadAndPrepare(
      tid, reads, write_keys,
      [client, tid, writes, flag](
          Status status, const core::CarouselClient::ReadResults&) {
        if (writes.empty() || !status.ok()) {
          flag->done = true;
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [flag](Status) { flag->done = true; });
      });
}

/// One planned transaction of a run's workload.
struct TxnPlan {
  int client = 0;
  KeyList reads;
  WriteSet writes;
};

/// Sequential-mode chain: issues plan i and, from its done-callback,
/// plan i+1 — the next transaction races only the previous one's trailing
/// writebacks.
struct SeqState {
  core::Cluster* cluster = nullptr;
  std::vector<TxnPlan> plans;
  std::vector<std::shared_ptr<TxnFlag>> flags;
};

void IssueSeq(const std::shared_ptr<SeqState>& st, size_t i) {
  if (i >= st->plans.size()) return;
  const TxnPlan& plan = st->plans[i];
  core::CarouselClient* client = st->cluster->client(plan.client);
  const std::shared_ptr<TxnFlag> flag = st->flags[i];
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : plan.writes) write_keys.push_back(k);
  const WriteSet writes = plan.writes;
  client->ReadAndPrepare(
      tid, plan.reads, write_keys,
      [client, tid, writes, flag, st, i](
          Status status, const core::CarouselClient::ReadResults&) {
        if (writes.empty() || !status.ok()) {
          flag->done = true;
          IssueSeq(st, i + 1);
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [flag, st, i](Status) {
          flag->done = true;
          IssueSeq(st, i + 1);
        });
      });
}

bool IsPrefix(const std::vector<TxnId>& prefix,
              const std::vector<TxnId>& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

bool IsCrashPoint(const ExploreConfig& config, int msg_type) {
  if (!config.crash_point_types.empty()) {
    return std::find(config.crash_point_types.begin(),
                     config.crash_point_types.end(),
                     msg_type) != config.crash_point_types.end();
  }
  for (int t : kDefaultCrashPoints) {
    if (t == msg_type) return true;
  }
  return false;
}

/// Executes one complete schedule: controlled phase (DFS prefix, forced
/// trace, or all-defaults), then a drain that recovers crashed nodes and
/// settles, then certification. Deterministic in (config, prefix/forced).
RunOutcome RunSchedule(const ExploreConfig& config,
                       const std::vector<size_t>& prefix, int depth_bound,
                       const std::vector<TraceStep>* forced,
                       std::vector<Frame>* frames,
                       std::string* replay_error) {
  RunOutcome outcome;
  sim::NetworkOptions net;
  net.jitter_fraction = 0.0;  // Timing diversity is the scheduler's job.
  net.controlled_scheduling = true;
  core::Cluster cluster(MakeTopology(config), MakeOptions(config), net,
                        config.seed);
  cluster.AttachHistory(&outcome.history);
  cluster.Start();
  sim::Simulator& sim = cluster.sim();

  // ---- Inject the workload: txn i reads every key and writes
  // key[i % K] and key[(i+1) % K] — maximally conflicting. ----
  const KeyList keys = ProbeKeys(cluster, config);
  const auto& client_nodes = cluster.topology().clients();
  const int num_clients = static_cast<int>(client_nodes.size());
  std::vector<std::shared_ptr<TxnFlag>> flags;
  std::vector<TxnPlan> plans;
  for (int i = 0; i < config.txns; ++i) {
    flags.push_back(std::make_shared<TxnFlag>());
    TxnPlan plan;
    plan.client = i % num_clients;
    plan.reads = keys;
    plan.writes[keys[static_cast<size_t>(i) % keys.size()]] =
        "t" + std::to_string(i);
    if (keys.size() > 1) {
      plan.writes[keys[static_cast<size_t>(i + 1) % keys.size()]] =
          "t" + std::to_string(i) + "b";
    }
    plans.push_back(std::move(plan));
  }
  if (config.sequential) {
    auto st = std::make_shared<SeqState>();
    st->cluster = &cluster;
    st->plans = plans;
    st->flags = flags;
    sim.ScheduleLabeledAt(
        sim.now(),
        sim::EventLabel{sim::EventLabel::Kind::kInternal,
                        client_nodes[plans.front().client], kInvalidNode, 0},
        [st] { IssueSeq(st, 0); });
  } else {
    for (int i = 0; i < config.txns; ++i) {
      const TxnPlan& plan = plans[static_cast<size_t>(i)];
      core::CarouselClient* client = cluster.client(plan.client);
      const std::shared_ptr<TxnFlag>& flag = flags[static_cast<size_t>(i)];
      sim.ScheduleLabeledAt(
          sim.now(),
          sim::EventLabel{sim::EventLabel::Kind::kInternal,
                          client_nodes[plan.client], kInvalidNode, 0},
          [client, plan, flag] {
            IssueExploreTxn(client, plan.reads, plan.writes, flag);
          });
    }
  }
  auto all_done = [&flags] {
    for (const auto& f : flags) {
      if (!f->done) return false;
    }
    return true;
  };

  // ---- Controlled phase ----
  using Kind = sim::EventLabel::Kind;
  std::map<uint64_t, NodeId> sleep;  // Sleeping delivery seq -> dest node.
  std::set<NodeId> crashed;
  NodeId crash_armed = kInvalidNode;
  int crashes_used = 0;
  int steps_executed = 0;
  size_t trace_idx = 0;

  while (true) {
    if (all_done()) break;
    if (steps_executed >= config.max_steps) {
      outcome.truncated = true;
      break;
    }
    const std::vector<sim::Simulator::ReadyEvent> ready = sim.ReadyEvents();
    if (ready.empty()) break;

    // Harness-internal events (workload injection and anything scheduled
    // outside a node context) run eagerly: they are not protocol
    // nondeterminism.
    bool ran_eager = false;
    for (const auto& ev : ready) {
      if (ev.label.kind == Kind::kInternal) {
        sim.RunSeq(ev.seq);
        steps_executed++;
        ran_eager = true;
        break;
      }
      // A delivery to a crashed node is a drop; run it eagerly (the
      // network discards it) instead of branching on a no-op.
      if (ev.label.kind == Kind::kDelivery && crashed.count(ev.label.node)) {
        sim.RunSeq(ev.seq);
        steps_executed++;
        ran_eager = true;
        break;
      }
    }
    if (ran_eager) continue;

    // Enabled deliveries: the earliest pending delivery per (from, to)
    // edge — per-edge FIFO is a transport guarantee (fifo_pairs), not
    // adversary freedom.
    std::map<std::pair<NodeId, NodeId>, const sim::Simulator::ReadyEvent*>
        edge_min;
    for (const auto& ev : ready) {
      if (ev.label.kind != Kind::kDelivery) continue;
      auto [it, inserted] =
          edge_min.emplace(std::make_pair(ev.label.from, ev.label.node), &ev);
      if (!inserted && ev.seq < it->second->seq) it->second = &ev;
    }
    std::vector<const sim::Simulator::ReadyEvent*> deliveries;
    deliveries.reserve(edge_min.size());
    for (const auto& [edge, ev] : edge_min) deliveries.push_back(ev);
    std::sort(deliveries.begin(), deliveries.end(),
              [](const auto* a, const auto* b) { return a->seq < b->seq; });

    std::vector<Choice> choices;
    for (const auto* d : deliveries) {
      if (config.sleep_sets && forced == nullptr && sleep.count(d->seq) > 0) {
        continue;
      }
      choices.push_back(Choice{TraceStep{TraceStep::Kind::kDeliver,
                                         d->label.node, d->label.from,
                                         d->label.msg_type},
                               d->seq});
    }
    const bool had_deliveries = !deliveries.empty();
    if (crash_armed != kInvalidNode) {
      const NodeId cand = crash_armed;
      crash_armed = kInvalidNode;  // One-step window.
      if (crashes_used < config.max_crashes && crashed.count(cand) == 0) {
        choices.push_back(Choice{
            TraceStep{TraceStep::Kind::kCrash, cand, kInvalidNode, 0}, 0});
      }
    }

    if (choices.empty()) {
      if (had_deliveries) {
        // Every enabled delivery is asleep: every continuation from here
        // reorders commuting deliveries of an already-explored schedule.
        outcome.pruned = true;
        break;
      }
      // Delivery-quiescence: the earliest live-node timer fires (a forced
      // choice — timer-vs-delivery races are modeled by delaying the
      // delivery past quiescence instead); crashed nodes may recover.
      const sim::Simulator::ReadyEvent* timer = nullptr;
      for (const auto& ev : ready) {
        if (ev.label.kind != Kind::kTimer) continue;
        if (crashed.count(ev.label.node) > 0) continue;
        if (timer == nullptr || ev.time < timer->time ||
            (ev.time == timer->time && ev.seq < timer->seq)) {
          timer = &ev;
        }
      }
      if (timer != nullptr) {
        choices.push_back(Choice{
            TraceStep{TraceStep::Kind::kTimer, timer->label.node,
                      kInvalidNode, 0},
            timer->seq});
      }
      for (NodeId x : crashed) {
        choices.push_back(Choice{
            TraceStep{TraceStep::Kind::kRecover, x, kInvalidNode, 0}, 0});
      }
      if (choices.empty()) break;  // Only crashed-node timers remain.
    }

    // ---- Pick ----
    size_t alternatives = choices.size();
    if (config.branch_bound > 0 &&
        alternatives > static_cast<size_t>(config.branch_bound)) {
      alternatives = static_cast<size_t>(config.branch_bound);
    }
    size_t chosen = 0;
    if (forced != nullptr) {
      if (trace_idx < forced->size()) {
        const TraceStep& want = (*forced)[trace_idx];
        bool found = false;
        for (size_t j = 0; j < choices.size(); ++j) {
          const TraceStep& have = choices[j].step;
          if (have.kind == want.kind && have.node == want.node &&
              have.from == want.from && have.msg_type == want.msg_type) {
            chosen = j;
            found = true;
            break;
          }
        }
        if (!found) {
          if (replay_error != nullptr) {
            std::ostringstream err;
            err << "replay diverged at step " << trace_idx << ": recorded "
                << "kind=" << static_cast<int>(want.kind)
                << " node=" << want.node << " from=" << want.from
                << " type=" << want.msg_type << " is not enabled ("
                << choices.size() << " choices)";
            *replay_error = err.str();
          }
          return outcome;
        }
        trace_idx++;
      }
    } else if (alternatives > 1 &&
               frames->size() < static_cast<size_t>(depth_bound)) {
      const size_t idx = frames->size();
      chosen = idx < prefix.size() ? prefix[idx] : 0;
      if (chosen >= alternatives) chosen = alternatives - 1;  // Defensive.
      frames->push_back(Frame{alternatives, chosen});
    }

    const Choice choice = choices[chosen];
    if (config.sleep_sets && forced == nullptr) {
      // Sleep-set update (Godefroid): earlier siblings were fully explored
      // from this state, so put them to sleep for this subtree; executing
      // a dependent event (same target node) wakes a sleeper.
      for (size_t j = 0; j < chosen; ++j) {
        if (choices[j].step.kind == TraceStep::Kind::kDeliver) {
          sleep[choices[j].seq] = choices[j].step.node;
        }
      }
      for (auto it = sleep.begin(); it != sleep.end();) {
        it = (it->second == choice.step.node) ? sleep.erase(it)
                                              : std::next(it);
      }
    }

    switch (choice.step.kind) {
      case TraceStep::Kind::kDeliver:
      case TraceStep::Kind::kTimer:
        sim.RunSeq(choice.seq);
        break;
      case TraceStep::Kind::kCrash:
        cluster.network().Crash(choice.step.node);
        crashed.insert(choice.step.node);
        crashes_used++;
        break;
      case TraceStep::Kind::kRecover:
        cluster.network().Recover(choice.step.node);
        crashed.erase(choice.step.node);
        break;
    }
    outcome.steps.push_back(choice.step);
    steps_executed++;

    if (choice.step.kind == TraceStep::Kind::kDeliver &&
        crashes_used < config.max_crashes &&
        crashed.count(choice.step.node) == 0 &&
        !cluster.topology().nodes()[choice.step.node].is_client &&
        IsCrashPoint(config, choice.step.msg_type)) {
      crash_armed = choice.step.node;
    }
  }

  // ---- Drain: recover everything, settle to outcomes, certify ----
  // RunFor in controlled mode executes in (time, seq) order, so the drain
  // is plain simulation.
  const std::vector<NodeId> still_crashed(crashed.begin(), crashed.end());
  for (NodeId x : still_crashed) cluster.network().Recover(x);
  for (int round = 0; round < 400 && !all_done(); ++round) {
    sim.RunFor(250 * kMicrosPerMilli);
  }
  for (int round = 0; round < 100; ++round) {
    bool all = true;
    for (PartitionId p = 0; p < config.partitions; ++p) {
      if (cluster.LeaderOf(p) == nullptr) all = false;
    }
    if (all) break;
    sim.RunFor(500 * kMicrosPerMilli);
  }
  // Writebacks/decision propagation may trail the last client outcome by a
  // couple of WAN roundtrips.
  sim.RunFor(2 * kMicrosPerSecond);

  outcome.chains = ExtractWriterChains(&cluster, &outcome.check.violations);
  CheckResult check = CheckSerializability(outcome.history, outcome.chains);
  for (Violation& v : check.violations) {
    outcome.check.violations.push_back(std::move(v));
  }
  outcome.check.committed = check.committed;
  outcome.check.aborted = check.aborted;
  outcome.check.indeterminate = check.indeterminate;
  outcome.check.edges = check.edges;
  if (!outcome.check.violations.empty()) {
    outcome.violation = outcome.check.violations.front().kind + ": " +
                        outcome.check.violations.front().description;
  }
  return outcome;
}

}  // namespace

WriterChains ExtractWriterChains(core::Cluster* cluster,
                                 std::vector<Violation>* violations) {
  WriterChains chains;
  for (PartitionId p = 0; p < cluster->topology().num_partitions(); ++p) {
    // Longest chain across alive replicas is the truth; every other alive
    // replica must hold a prefix of it (they all apply the same Raft log).
    std::map<Key, std::vector<const std::vector<TxnId>*>> per_key;
    for (NodeId id : cluster->topology().Replicas(p)) {
      core::CarouselServer* server = cluster->server(id);
      if (!server->alive()) continue;
      for (const auto& [key, chain] : server->store().writer_log()) {
        per_key[key].push_back(&chain);
      }
    }
    for (auto& [key, candidates] : per_key) {
      const std::vector<TxnId>* longest = candidates.front();
      for (const auto* c : candidates) {
        if (c->size() > longest->size()) longest = c;
      }
      for (const auto* c : candidates) {
        if (!IsPrefix(*c, *longest)) {
          violations->push_back(Violation{
              "replica-divergence",
              "replicas of partition " + std::to_string(p) +
                  " disagree on the write order of '" + key + "'",
              {}});
          break;
        }
      }
      chains[key] = *longest;
    }
  }
  return chains;
}

ExploreResult Explore(const ExploreConfig& config) {
  ExploreResult result;
  result.config = config;

  // Delay-bounded mode: a single DFS where every branch point is
  // recordable (no positional cutoff) and the budget below limits how
  // many deviate from the default.
  const bool delay_mode = config.delay_bound > 0;
  std::vector<int> bounds;
  if (delay_mode) {
    bounds.push_back(std::numeric_limits<int>::max());
  } else if (config.iterative_step > 0) {
    for (int b = config.iterative_step; b < config.max_depth;
         b += config.iterative_step) {
      bounds.push_back(b);
    }
    bounds.push_back(config.max_depth);
  } else {
    bounds.push_back(config.max_depth);
  }

  int prev_bound = 0;
  bool stopped = false;
  for (int bound : bounds) {
    std::vector<size_t> prefix;
    while (true) {
      std::vector<Frame> frames;
      RunOutcome out =
          RunSchedule(config, prefix, bound, nullptr, &frames, nullptr);
      result.runs++;
      if (out.pruned) result.pruned++;
      if (out.truncated) result.truncated++;
      if (!out.pruned && !out.ok() && !result.violation_found) {
        result.violation_found = true;
        result.violation_trace.config = config;
        result.violation_trace.steps = out.steps;
        result.violation_trace.violation = out.violation;
        result.violation_report = out.check.Report(out.history);
      }
      // Iterative-deepening dedup: count a run only when its deepest
      // non-default choice lies past the previous bound — shallower runs
      // were all enumerated (and counted) by the earlier round.
      int deepest = -1;
      for (size_t i = 0; i < frames.size(); ++i) {
        if (frames[i].chosen > 0) deepest = static_cast<int>(i);
      }
      if (!out.pruned && (prev_bound == 0 || deepest >= prev_bound)) {
        result.schedules++;
        result.committed += out.check.committed;
        result.aborted += out.check.aborted;
        result.indeterminate += out.check.indeterminate;
      }
      if (result.violation_found && config.stop_on_violation) {
        stopped = true;
        break;
      }
      if (config.max_schedules != 0 &&
          result.schedules >= config.max_schedules) {
        stopped = true;
        break;
      }
      while (!frames.empty()) {
        const Frame& f = frames.back();
        bool can_increment = f.chosen + 1 < f.alternatives;
        if (can_increment && delay_mode && f.chosen == 0) {
          // Turning a default choice into a deviation spends one unit of
          // the delay budget; advancing an existing deviation is free.
          int used = 0;
          for (const Frame& g : frames) used += g.chosen > 0 ? 1 : 0;
          if (used >= config.delay_bound) can_increment = false;
        }
        if (can_increment) break;
        frames.pop_back();
      }
      if (frames.empty()) break;  // This bound is exhausted.
      frames.back().chosen++;
      prefix.clear();
      for (const Frame& f : frames) prefix.push_back(f.chosen);
    }
    if (stopped) break;
    prev_bound = bound;
  }
  result.exhausted = !stopped;
  return result;
}

RunOutcome ReplayTrace(const ScheduleTrace& trace, std::string* error) {
  std::vector<Frame> frames;
  return RunSchedule(trace.config, {}, 0, &trace.steps, &frames, error);
}

std::string ExploreResult::Summary() const {
  std::ostringstream out;
  out << "explore: " << schedules << " schedule(s) (" << runs << " runs, "
      << pruned << " pruned, " << truncated << " truncated"
      << (exhausted ? ", exhausted)" : ")") << ", " << committed
      << " committed / " << aborted << " aborted / " << indeterminate
      << " indeterminate";
  if (violation_found) {
    out << ", VIOLATION: " << violation_trace.violation;
  } else {
    out << ", OK";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Trace JSON (writer + minimal recursive-descent reader)
// ---------------------------------------------------------------------------

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* StepKindName(TraceStep::Kind kind) {
  switch (kind) {
    case TraceStep::Kind::kDeliver:
      return "deliver";
    case TraceStep::Kind::kTimer:
      return "timer";
    case TraceStep::Kind::kCrash:
      return "crash";
    case TraceStep::Kind::kRecover:
      return "recover";
  }
  return "?";
}

/// Just enough JSON to read back what ToJson writes (plus whitespace and
/// unknown keys, so hand-edited corpus files stay readable).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " (at byte " + std::to_string(pos()) + ")";
    }
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' ||
                         *p_ == '\r' || *p_ == ',')) {
      p_++;
    }
  }

  bool Expect(char c) {
    SkipWs();
    if (p_ >= end_ || *p_ != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    p_++;
    return true;
  }

  bool AtChar(char c) {
    SkipWs();
    return p_ < end_ && *p_ == c;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\' && p_ + 1 < end_) {
        p_++;
        *out += (*p_ == 'n') ? '\n' : *p_;
      } else {
        *out += *p_;
      }
      p_++;
    }
    return Expect('"');
  }

  bool ParseInt(int64_t* out) {
    SkipWs();
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') p_++;
    while (p_ < end_ && *p_ >= '0' && *p_ <= '9') p_++;
    if (p_ == start) return Fail("expected integer");
    *out = std::strtoll(start, nullptr, 10);
    return true;
  }

  /// Skips any value (for unknown keys).
  bool SkipValue() {
    SkipWs();
    if (p_ >= end_) return Fail("truncated value");
    if (*p_ == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (*p_ == '{' || *p_ == '[') {
      const char open = *p_;
      const char close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      while (p_ < end_) {
        if (in_string) {
          if (*p_ == '\\') p_++;
          else if (*p_ == '"') in_string = false;
        } else if (*p_ == '"') {
          in_string = true;
        } else if (*p_ == open) {
          depth++;
        } else if (*p_ == close) {
          depth--;
          if (depth == 0) {
            p_++;
            return true;
          }
        }
        p_++;
      }
      return Fail("unbalanced value");
    }
    int64_t ignored;
    return ParseInt(&ignored);
  }

 private:
  size_t pos() const { return static_cast<size_t>(p_ - start_); }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
  std::string error_;
};

bool ParseConfig(JsonReader* r, ExploreConfig* config) {
  if (!r->Expect('{')) return false;
  while (!r->AtChar('}')) {
    std::string key;
    if (!r->ParseString(&key) || !r->Expect(':')) return false;
    if (key == "crash_point_types") {
      if (!r->Expect('[')) return false;
      config->crash_point_types.clear();
      while (!r->AtChar(']')) {
        int64_t v = 0;
        if (!r->ParseInt(&v)) return false;
        config->crash_point_types.push_back(static_cast<int>(v));
      }
      if (!r->Expect(']')) return false;
      continue;
    }
    int64_t v = 0;
    if (!r->ParseInt(&v)) return false;
    if (key == "seed") config->seed = static_cast<uint64_t>(v);
    else if (key == "dcs") config->num_dcs = static_cast<int>(v);
    else if (key == "partitions") config->partitions = static_cast<int>(v);
    else if (key == "replication") config->replication = static_cast<int>(v);
    else if (key == "clients_per_dc") config->clients_per_dc = static_cast<int>(v);
    else if (key == "rtt_ms") config->rtt_ms = static_cast<int>(v);
    else if (key == "txns") config->txns = static_cast<int>(v);
    else if (key == "keys") config->keys = static_cast<int>(v);
    else if (key == "sequential") config->sequential = v != 0;
    else if (key == "fast_path") config->fast_path = v != 0;
    else if (key == "local_reads") config->local_reads = v != 0;
    else if (key == "inject_bug_fast_path") config->inject_bug_fast_path = v != 0;
    else if (key == "inject_bug_stale_read") config->inject_bug_stale_read = v != 0;
    else if (key == "max_steps") config->max_steps = static_cast<int>(v);
    else if (key == "max_crashes") config->max_crashes = static_cast<int>(v);
    // Unknown numeric keys are ignored for forward compatibility.
  }
  return r->Expect('}');
}

bool ParseStep(JsonReader* r, TraceStep* step) {
  if (!r->Expect('{')) return false;
  while (!r->AtChar('}')) {
    std::string key;
    if (!r->ParseString(&key) || !r->Expect(':')) return false;
    if (key == "kind") {
      std::string kind;
      if (!r->ParseString(&kind)) return false;
      if (kind == "deliver") step->kind = TraceStep::Kind::kDeliver;
      else if (kind == "timer") step->kind = TraceStep::Kind::kTimer;
      else if (kind == "crash") step->kind = TraceStep::Kind::kCrash;
      else if (kind == "recover") step->kind = TraceStep::Kind::kRecover;
      else return r->Fail("unknown step kind '" + kind + "'");
      continue;
    }
    int64_t v = 0;
    if (!r->ParseInt(&v)) return false;
    if (key == "node") step->node = static_cast<NodeId>(v);
    else if (key == "from") step->from = static_cast<NodeId>(v);
    else if (key == "type") step->msg_type = static_cast<int>(v);
  }
  return r->Expect('}');
}

}  // namespace

std::string ScheduleTrace::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"config\": {";
  out << "\"seed\": " << config.seed << ", \"dcs\": " << config.num_dcs
      << ", \"partitions\": " << config.partitions
      << ", \"replication\": " << config.replication
      << ", \"clients_per_dc\": " << config.clients_per_dc
      << ", \"rtt_ms\": " << config.rtt_ms << ",\n    \"txns\": "
      << config.txns << ", \"keys\": " << config.keys
      << ", \"sequential\": " << (config.sequential ? 1 : 0)
      << ", \"fast_path\": " << (config.fast_path ? 1 : 0)
      << ", \"local_reads\": " << (config.local_reads ? 1 : 0)
      << ", \"inject_bug_fast_path\": " << (config.inject_bug_fast_path ? 1 : 0)
      << ", \"inject_bug_stale_read\": " << (config.inject_bug_stale_read ? 1 : 0)
      << ",\n    \"max_steps\": " << config.max_steps
      << ", \"max_crashes\": " << config.max_crashes
      << ", \"crash_point_types\": [";
  for (size_t i = 0; i < config.crash_point_types.size(); ++i) {
    out << (i > 0 ? ", " : "") << config.crash_point_types[i];
  }
  out << "]},\n  \"violation\": \"" << EscapeJson(violation) << "\",\n"
      << "  \"steps\": [\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    const TraceStep& s = steps[i];
    out << "    {\"kind\": \"" << StepKindName(s.kind) << "\", \"node\": "
        << s.node;
    if (s.kind == TraceStep::Kind::kDeliver) {
      out << ", \"from\": " << s.from << ", \"type\": " << s.msg_type;
    }
    out << "}" << (i + 1 < steps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool ScheduleTrace::FromJson(const std::string& json, ScheduleTrace* out,
                             std::string* error) {
  *out = ScheduleTrace{};
  JsonReader r(json);
  bool ok = [&] {
    if (!r.Expect('{')) return false;
    while (!r.AtChar('}')) {
      std::string key;
      if (!r.ParseString(&key) || !r.Expect(':')) return false;
      if (key == "config") {
        if (!ParseConfig(&r, &out->config)) return false;
      } else if (key == "violation") {
        if (!r.ParseString(&out->violation)) return false;
      } else if (key == "steps") {
        if (!r.Expect('[')) return false;
        while (!r.AtChar(']')) {
          TraceStep step;
          if (!ParseStep(&r, &step)) return false;
          out->steps.push_back(step);
        }
        if (!r.Expect(']')) return false;
      } else if (!r.SkipValue()) {
        return false;
      }
    }
    return r.Expect('}');
  }();
  if (!ok && error != nullptr) {
    *error = r.error().empty() ? "malformed trace JSON" : r.error();
  }
  return ok;
}

}  // namespace carousel::check
