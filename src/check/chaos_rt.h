#ifndef CAROUSEL_CHECK_CHAOS_RT_H_
#define CAROUSEL_CHECK_CHAOS_RT_H_

#include <cstdint>
#include <string>

#include "check/history.h"
#include "check/serializability.h"

namespace carousel::check {

/// One real-time chaos run: from a single seed, sample a deployment, a
/// workload mix and a timed fault schedule; run the full stack on the
/// threaded runtime (real threads, optionally real sockets) under them;
/// certify the resulting history with the same serializability checker
/// the simulator harness uses. Shared by the carousel_rt_chaos CLI and
/// the rt_chaos tests so a failing seed replays under the tool.
///
/// Unlike sim chaos, a seed here fixes only the *schedule* (deployment,
/// workload plan, fault timeline) — thread interleavings stay real, so
/// reruns of one seed explore different executions of the same scenario.
struct RtChaosConfig {
  uint64_t seed = 1;
  /// Target number of transaction invocations. The workload runs closed
  /// loop until it reaches this target AND the fault window has closed.
  int txns = 150;
  /// Inter-node messages over localhost TCP + wire codec instead of
  /// in-process handoff.
  bool use_tcp = false;
  /// Root for per-seed durable state (WALs live in <root>/seed-<N>/).
  /// The seed's directory is wiped before the run; after a clean run it
  /// is wiped again, after a failing run it is kept as an artifact.
  std::string storage_root = "/tmp/carousel-rt-chaos";
  /// Keep the storage directory even when the run passes.
  bool keep_storage = false;
};

struct RtChaosResult {
  uint64_t seed = 0;
  /// One-line summary of the sampled deployment and workload.
  std::string setup;
  /// The sampled fault timeline, one event per line.
  std::string nemesis_schedule;
  /// The transport failed to start (e.g. sockets unavailable in a
  /// sandbox). Not a verdict — callers should skip, not fail.
  bool start_failed = false;
  size_t txns_invoked = 0;
  /// Proof-of-fire counters: a schedule that never actually killed or
  /// partitioned anything is not testing what it claims to.
  size_t kills_fired = 0;
  size_t restarts_fired = 0;
  size_t partitions_fired = 0;
  size_t link_faults_fired = 0;
  uint64_t fault_dropped_messages = 0;
  /// Raft log entries / prepare pins read back from WALs by restarts.
  size_t recovered_log_entries = 0;
  size_t recovered_pending = 0;
  CheckResult check;
  /// Kept for reporting: the full history and ground-truth write order.
  HistoryRecorder history;
  WriterChains chains;
  /// Where this seed's WALs live(d), for failure artifacts.
  std::string storage_dir;

  bool ok() const { return !start_failed && check.ok(); }
  /// Compact one-line summary for sweep output.
  std::string Summary() const;
  /// Full failure dump: setup, fault timeline, every violation with the
  /// offending transactions' records. Self-contained bug report.
  std::string Report() const;
};

/// Runs one seed end to end against the threaded backend.
RtChaosResult RunRtChaosSeed(const RtChaosConfig& config);

}  // namespace carousel::check

#endif  // CAROUSEL_CHECK_CHAOS_RT_H_
