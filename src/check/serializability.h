#ifndef CAROUSEL_CHECK_SERIALIZABILITY_H_
#define CAROUSEL_CHECK_SERIALIZABILITY_H_

#include <map>
#include <string>
#include <vector>

#include "check/history.h"
#include "common/types.h"

namespace carousel::check {

/// Ground-truth write order, extracted from the versioned store after a
/// run: for each key, chain[v - 1] is the transaction whose committed
/// write installed version v. Versions increment by one per committed
/// write, so the chain *is* the per-key commit order.
using WriterChains = std::map<Key, std::vector<TxnId>>;

/// One certified defect in a history. `cycle` is filled for
/// non-serializable histories: a minimal dependency cycle over committed
/// transactions.
struct Violation {
  std::string kind;         // e.g. "cycle", "lost-write", "dirty-read"
  std::string description;  // human-readable, self-contained
  std::vector<TxnId> cycle;
};

/// A dependency edge of the direct serialization graph, kept for reporting.
struct DsgEdge {
  TxnId from;
  TxnId to;
  char kind;  // 'w' = ww, 'r' = wr, 'a' = rw (anti-dependency)
  Key key;
  Version version;  // the version the edge is anchored on

  std::string ToString() const;
};

struct CheckResult {
  std::vector<Violation> violations;
  /// Statistics over the checked history.
  size_t committed = 0;
  size_t aborted = 0;
  size_t indeterminate = 0;  // unknown / timed-out at the client
  size_t edges = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line report of every violation, with the full record of each
  /// transaction on an offending cycle (the replayable failure dump).
  std::string Report(const HistoryRecorder& history) const;
};

/// Certifies that a history is serializable and that aborted transactions
/// left no visible effects.
///
/// The checker builds the direct serialization graph over committed
/// transactions — ww edges from each key's writer chain, wr edges from
/// writer to every transaction that read the installed version, and rw
/// anti-dependency edges from each reader to the writer that overwrote the
/// version it read — and reports any cycle (a committed history is
/// serializable iff its DSG is acyclic). On top of the graph test it
/// checks, per transaction:
///
///  * committed writes are durable: each written key appears exactly once
///    in that key's chain (zero = lost write, two+ = double apply);
///  * aborted transactions are invisible: they never appear in a chain and
///    no transaction observed one of their writes;
///  * reads are well-formed: every observed (key, version) exists in the
///    chain and its value matches what the chain writer buffered;
///  * decisions agree: all coordinator decision events for a tid match
///    each other and the client-visible outcome.
///
/// Transactions with indeterminate client outcomes (unknown / timed-out)
/// are treated as committed when they appear in a chain and as aborted
/// otherwise — both verdicts are legal for them.
CheckResult CheckSerializability(const HistoryRecorder& history,
                                 const WriterChains& chains);

}  // namespace carousel::check

#endif  // CAROUSEL_CHECK_SERIALIZABILITY_H_
