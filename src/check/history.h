#ifndef CAROUSEL_CHECK_HISTORY_H_
#define CAROUSEL_CHECK_HISTORY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace carousel::check {

/// Client-visible outcome of a transaction, as recorded in a history.
enum class Outcome {
  /// The client never learned a verdict (crashed client, in-flight at end
  /// of run). The transaction may or may not have committed.
  kUnknown,
  kCommitted,
  kAborted,
  /// The client gave up after exhausting retransmissions; like kUnknown,
  /// the true verdict is indeterminate.
  kTimedOut,
};

const char* OutcomeName(Outcome outcome);

/// A coordinator-side decision event for one transaction. Several may be
/// recorded per tid (original decision, post-failover re-derivation, a 2PC
/// termination fence) — the checker requires them to agree.
struct DecisionEvent {
  NodeId coordinator = kInvalidNode;
  bool committed = false;
  std::string reason;
  SimTime at = 0;
};

/// Everything one transaction did, as observed at its client plus the
/// decision points of whichever coordinators handled it.
struct TxnRecord {
  TxnId tid;
  SimTime invoked_at = 0;
  SimTime finished_at = 0;
  bool read_only = false;
  /// Declared 2FI key sets (ReadAndPrepare arguments).
  KeyList read_keys;
  KeyList write_keys;
  /// What the read round returned: key -> (value, version).
  std::map<Key, VersionedValue> reads;
  /// What the client buffered with Write().
  WriteSet writes;
  Outcome outcome = Outcome::kUnknown;
  std::string reason;
  std::vector<DecisionEvent> decisions;

  std::string ToString() const;
};

/// Per-run history recorder: the verification subsystem's input. The
/// client library stamps invocation, observed reads, buffered writes and
/// the final client-visible outcome; coordinators stamp every decision
/// point (including post-failover re-decisions and termination fences).
/// Recording is append-only and keyed by tid; the recorder never interprets
/// the history — that is the serializability checker's job.
///
/// A null recorder pointer disables recording everywhere, mirroring how
/// TraceCollector is wired.
///
/// Recording is internally synchronized so the threaded runtime's clients
/// and servers can stamp events concurrently from their loop threads. The
/// read accessors are not: call them only after the run has quiesced
/// (simulator runs are single-threaded throughout, so they always may).
class HistoryRecorder {
 public:
  HistoryRecorder() = default;
  /// Copyable (results structs hold recorded histories by value); the copy
  /// gets its own lock.
  HistoryRecorder(const HistoryRecorder& other);
  HistoryRecorder& operator=(const HistoryRecorder& other);

  /// ---- Client-side hooks ----
  void Invoke(const TxnId& tid, const KeyList& reads, const KeyList& writes,
              bool read_only, SimTime now);
  void ObserveReads(const TxnId& tid,
                    const std::map<Key, VersionedValue>& results);
  void BufferWrite(const TxnId& tid, const Key& key, const Value& value);
  /// Final client-visible outcome; first call wins (a transaction finishes
  /// once at its client).
  void ClientOutcome(const TxnId& tid, Outcome outcome,
                     const std::string& reason, SimTime now);

  /// ---- Coordinator-side hook ----
  /// Records a commit/abort decision point. Unknown tids are recorded too:
  /// a coordinator can decide (e.g. heartbeat-abort) a transaction whose
  /// client never ran under this recorder.
  void CoordinatorDecision(const TxnId& tid, NodeId coordinator,
                           bool committed, const std::string& reason,
                           SimTime now);

  /// All records in invocation order (coordinator-only tids last, in
  /// first-decision order).
  const std::vector<TxnRecord>& records() const { return records_; }
  const TxnRecord* Find(const TxnId& tid) const;
  size_t size() const { return records_.size(); }

 private:
  TxnRecord& GetOrCreate(const TxnId& tid);

  mutable std::mutex mu_;
  std::vector<TxnRecord> records_;
  std::map<TxnId, size_t> index_;
};

}  // namespace carousel::check

#endif  // CAROUSEL_CHECK_HISTORY_H_
