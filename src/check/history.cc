#include "check/history.h"

#include <sstream>

namespace carousel::check {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kUnknown:
      return "unknown";
    case Outcome::kCommitted:
      return "committed";
    case Outcome::kAborted:
      return "aborted";
    case Outcome::kTimedOut:
      return "timed-out";
  }
  return "?";
}

std::string TxnRecord::ToString() const {
  std::ostringstream out;
  out << "txn " << tid.ToString() << " [" << OutcomeName(outcome);
  if (!reason.empty()) out << ": " << reason;
  out << "] invoked@" << invoked_at;
  if (finished_at > 0) out << " finished@" << finished_at;
  out << "\n  reads:";
  if (reads.empty()) out << " (none)";
  for (const auto& [k, vv] : reads) {
    out << " " << k << "@v" << vv.version << "='" << vv.value << "'";
  }
  out << "\n  writes:";
  if (writes.empty()) out << " (none)";
  for (const auto& [k, v] : writes) out << " " << k << "='" << v << "'";
  for (const DecisionEvent& d : decisions) {
    out << "\n  decision@" << d.at << " coord=" << d.coordinator << " "
        << (d.committed ? "commit" : "abort");
    if (!d.reason.empty()) out << " (" << d.reason << ")";
  }
  return out.str();
}

HistoryRecorder::HistoryRecorder(const HistoryRecorder& other) {
  std::lock_guard<std::mutex> lk(other.mu_);
  records_ = other.records_;
  index_ = other.index_;
}

HistoryRecorder& HistoryRecorder::operator=(const HistoryRecorder& other) {
  if (this == &other) return *this;
  std::scoped_lock lk(mu_, other.mu_);
  records_ = other.records_;
  index_ = other.index_;
  return *this;
}

TxnRecord& HistoryRecorder::GetOrCreate(const TxnId& tid) {
  auto [it, inserted] = index_.emplace(tid, records_.size());
  if (inserted) {
    records_.emplace_back();
    records_.back().tid = tid;
  }
  return records_[it->second];
}

void HistoryRecorder::Invoke(const TxnId& tid, const KeyList& reads,
                             const KeyList& writes, bool read_only,
                             SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord& rec = GetOrCreate(tid);
  rec.invoked_at = now;
  rec.read_only = read_only;
  rec.read_keys = reads;
  rec.write_keys = writes;
}

void HistoryRecorder::ObserveReads(
    const TxnId& tid, const std::map<Key, VersionedValue>& results) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord& rec = GetOrCreate(tid);
  for (const auto& [k, vv] : results) rec.reads[k] = vv;
}

void HistoryRecorder::BufferWrite(const TxnId& tid, const Key& key,
                                  const Value& value) {
  std::lock_guard<std::mutex> lk(mu_);
  GetOrCreate(tid).writes[key] = value;
}

void HistoryRecorder::ClientOutcome(const TxnId& tid, Outcome outcome,
                                    const std::string& reason, SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord& rec = GetOrCreate(tid);
  if (rec.outcome != Outcome::kUnknown) return;  // First outcome wins.
  rec.outcome = outcome;
  rec.reason = reason;
  rec.finished_at = now;
}

void HistoryRecorder::CoordinatorDecision(const TxnId& tid, NodeId coordinator,
                                          bool committed,
                                          const std::string& reason,
                                          SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  GetOrCreate(tid).decisions.push_back(
      DecisionEvent{coordinator, committed, reason, now});
}

const TxnRecord* HistoryRecorder::Find(const TxnId& tid) const {
  auto it = index_.find(tid);
  return it == index_.end() ? nullptr : &records_[it->second];
}

}  // namespace carousel::check
