#ifndef CAROUSEL_CHECK_CHAOS_H_
#define CAROUSEL_CHECK_CHAOS_H_

#include <cstdint>
#include <string>

#include "check/history.h"
#include "check/serializability.h"
#include "obs/wanrt.h"

namespace carousel::check {

/// One chaos run: from a single seed, sample a topology, a workload mix and
/// a nemesis schedule; run the full stack under them; certify the resulting
/// history. Shared by the carousel_chaos CLI and the corpus test so a seed
/// that fails in CI replays identically under the tool.
struct ChaosConfig {
  uint64_t seed = 1;
  /// Target number of transaction invocations (the sampled client/key mix
  /// decides how many actually run before the workload window closes).
  int txns = 120;
  /// Run with egress batching + delivery coalescing on (CarouselOptions::
  /// batching). Same seed with/without exercises the batch paths against
  /// identical fault schedules.
  bool batching = false;
  /// Flag-gated protocol bugs (see CarouselOptions); used to prove the
  /// checker catches real violations.
  bool inject_bug_fast_path = false;
  bool inject_bug_stale_read = false;
};

struct ChaosResult {
  uint64_t seed = 0;
  /// One-line summary of the sampled deployment and workload.
  std::string setup;
  /// The sampled fault plan, one event per line.
  std::string nemesis_schedule;
  size_t txns_invoked = 0;
  size_t faults_injected = 0;
  CheckResult check;
  /// Kept for reporting: the full history and ground-truth write order.
  HistoryRecorder history;
  WriterChains chains;
  /// WANRT accounting over the whole run. Chaos runs always enable
  /// metrics (they cost nothing in sim time and never change results), so
  /// every failing-seed artifact carries the protocol-path breakdown —
  /// fast/slow/degraded counts tell at a glance whether the nemesis
  /// actually knocked CPC off its fast path.
  obs::WanrtStats wanrt;
  /// Full observability snapshot (metrics registry + WANRT ledger), JSON.
  std::string metrics_json;

  bool ok() const { return check.ok(); }
  /// Compact one-line summary for sweep output.
  std::string Summary() const;
  /// Full failure dump: setup, nemesis schedule, every violation with the
  /// offending transactions' records. Self-contained bug report.
  std::string Report() const;
};

/// Runs one seed end to end. Deterministic: same config, same result.
ChaosResult RunChaosSeed(const ChaosConfig& config);

}  // namespace carousel::check

#endif  // CAROUSEL_CHECK_CHAOS_H_
