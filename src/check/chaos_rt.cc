#include "check/chaos_rt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/topology.h"
#include "harness/rt_cluster.h"
#include "runtime/nemesis_rt.h"

namespace carousel::check {
namespace {

constexpr SimTime kMs = 1'000;

/// Shared across the client driver threads and the main thread.
struct Scoreboard {
  std::atomic<int> invoked{0};
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> done_clients{0};
  std::atomic<bool> window_over{false};
};

/// One closed-loop driver pinned to a client's loop thread. Keeps issuing
/// transactions until the invocation target is met AND the fault window
/// has closed — load must overlap every scheduled fault, not finish
/// before the first one fires.
struct RtDriver : std::enable_shared_from_this<RtDriver> {
  RtDriver(harness::RtCluster* cluster, int index,
           std::shared_ptr<Scoreboard> board,
           const std::vector<std::vector<Key>>* pool, int partitions,
           int target, uint64_t seed, uint64_t value_tag)
      : cluster(cluster),
        index(index),
        board(std::move(board)),
        pool(pool),
        partitions(partitions),
        target(target),
        rng(seed),
        value_tag(value_tag) {}

  harness::RtCluster* cluster;
  int index;
  std::shared_ptr<Scoreboard> board;
  const std::vector<std::vector<Key>>* pool;
  int partitions;
  int target;
  Rng rng;
  uint64_t value_tag;
  uint64_t seq = 0;

  void Next() {
    if (board->invoked.load() >= target) {
      if (board->window_over.load()) {
        board->done_clients.fetch_add(1);
        return;
      }
      // Target met but faults are still firing: drop to a paced trickle
      // so every fault lands under load without ballooning the history
      // (and the checker's input) with tens of thousands of transactions.
      auto self = shared_from_this();
      cluster->rt()
          .loop(cluster->client(index)->id())
          ->Schedule(10 * kMs, [self]() { self->Issue(); });
      return;
    }
    Issue();
  }

  void Issue() {
    board->invoked.fetch_add(1);
    core::CarouselClient* client = cluster->client(index);
    auto self = shared_from_this();

    // Pick two distinct partitions when there are two to pick.
    const int p1 = static_cast<int>(rng.UniformInt(0, partitions - 1));
    const int p2 = partitions == 1
                       ? p1
                       : (p1 + 1 +
                          static_cast<int>(rng.UniformInt(0, partitions - 2))) %
                             partitions;
    const Key read1 = Pick(p1), read2 = Pick(p2);
    const double shape = rng.NextDouble();
    const TxnId tid = client->Begin();

    if (shape < 0.2) {
      // Read-only.
      client->ReadAndPrepare(
          tid, {read1, read2}, {},
          [self](Status status, const core::CarouselClient::ReadResults&) {
            if (status.ok()) {
              self->board->committed.fetch_add(1);
            } else {
              self->board->aborted.fetch_add(1);
            }
            self->Next();
          });
      return;
    }

    const Key write1 = Pick(p1), write2 = Pick(p2);
    const Value value = "s" + std::to_string(value_tag) + "c" +
                        std::to_string(index) + "t" + std::to_string(seq++);
    const bool voluntary_abort = rng.Bernoulli(0.03);
    client->ReadAndPrepare(
        tid, {read1, read2}, {write1, write2},
        [self, client, tid, write1, write2, value, voluntary_abort](
            Status status, const core::CarouselClient::ReadResults&) {
          if (!status.ok()) {
            self->board->aborted.fetch_add(1);
            self->Next();
            return;
          }
          if (voluntary_abort) {
            client->Abort(tid);
            self->board->aborted.fetch_add(1);
            self->Next();
            return;
          }
          client->Write(tid, write1, value);
          client->Write(tid, write2, value);
          client->Commit(tid, [self](Status commit_status) {
            if (commit_status.ok()) {
              self->board->committed.fetch_add(1);
            } else {
              self->board->aborted.fetch_add(1);
            }
            self->Next();
          });
        });
  }

 private:
  Key Pick(int partition) {
    const auto& keys = (*pool)[partition];
    return keys[rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1)];
  }
};

std::vector<std::vector<Key>> BuildKeyPools(const core::Directory& directory,
                                            int partitions,
                                            int keys_per_partition) {
  std::vector<std::vector<Key>> pool(partitions);
  int filled = 0;
  for (int i = 0; filled < partitions && i < 100000; ++i) {
    const Key key = "rck" + std::to_string(i);
    auto& bucket = pool[directory.PartitionFor(key)];
    if (static_cast<int>(bucket.size()) < keys_per_partition) {
      bucket.push_back(key);
      if (static_cast<int>(bucket.size()) == keys_per_partition) ++filled;
    }
  }
  return pool;
}

bool IsPrefix(const std::vector<TxnId>& prefix,
              const std::vector<TxnId>& full) {
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

}  // namespace

RtChaosResult RunRtChaosSeed(const RtChaosConfig& config) {
  RtChaosResult result;
  result.seed = config.seed;
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + 0x5eed);

  // ---- Sample the deployment ----
  const int num_dcs = 3;
  const int replication = 3;
  const int partitions = static_cast<int>(rng.UniformInt(2, 3));
  const int clients_per_dc = static_cast<int>(rng.UniformInt(1, 2));
  const int keys_per_partition = static_cast<int>(rng.UniformInt(4, 8));
  Topology topo = Topology::Uniform(num_dcs, /*inter_dc_rtt_ms=*/1);
  topo.PlacePartitions(partitions, replication);
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }

  // RT-scaled timers: these run against the wall clock, so they sit well
  // below the multi-second run window but far above scheduler jitter.
  core::CarouselOptions options;
  options.fast_path = rng.Bernoulli(0.75);
  options.local_reads = options.fast_path && rng.Bernoulli(0.5);
  // Half the seeds run with egress batching so BatchEnvelopeMsg rides
  // real sockets (TCP seeds) and real loop timers under faults, not just
  // the simulator. The 50 us flush window exercises the scheduled-flush
  // path; carousel_rt covers the flush-on-idle (interval 0) shape.
  options.batching.enabled = rng.Bernoulli(0.5);
  options.raft.election_timeout_min = 150 * kMs;
  options.raft.election_timeout_max = 300 * kMs;
  options.raft.heartbeat_interval = 40 * kMs;
  options.heartbeat_interval = 100 * kMs;
  options.client_retry_timeout = 600 * kMs;
  options.coordinator_retry_interval = 500 * kMs;
  options.pending_gc_interval = 2'000 * kMs;

  const int schedule_class = static_cast<int>(config.seed % 4);
  {
    std::ostringstream setup;
    setup << "dcs=" << num_dcs << " partitions=" << partitions
          << " replication=" << replication
          << " clients=" << clients_per_dc * num_dcs
          << " keys/partition=" << keys_per_partition
          << " fast_path=" << options.fast_path
          << " local_reads=" << options.local_reads
          << " batching=" << options.batching.enabled
          << " class=" << schedule_class
          << (config.use_tcp ? " transport=tcp" : " transport=inproc");
    result.setup = setup.str();
  }

  // ---- Durable storage root for this seed ----
  result.storage_dir =
      config.storage_root + "/seed-" + std::to_string(config.seed);
  std::error_code ec;
  std::filesystem::remove_all(result.storage_dir, ec);  // Stale previous run.

  harness::RtClusterOptions rt_options;
  rt_options.use_tcp = config.use_tcp;
  rt_options.seed = config.seed;
  rt_options.storage_dir = result.storage_dir;
  harness::RtCluster cluster(std::move(topo), options, rt_options);

  HistoryRecorder* history = &result.history;
  cluster.AttachHistory(history);
  if (!cluster.Start(/*timeout_ms=*/20000)) {
    result.start_failed = true;
    std::filesystem::remove_all(result.storage_dir, ec);
    return result;
  }

  const std::vector<std::vector<Key>> pool =
      BuildKeyPools(cluster.directory(), partitions, keys_per_partition);

  // ---- Sample the fault timeline ----
  // The window is when faults may fire; the workload keeps running until
  // it closes AND the invocation target is met, so every fault lands
  // under load.
  const SimTime window = 3'500 * kMs;
  runtime::RtNemesis::Hooks hooks;
  hooks.kill = [&cluster](NodeId id) { return cluster.KillServer(id); };
  hooks.restart = [&cluster](NodeId id) { return cluster.RestartServer(id); };
  runtime::RtNemesis nemesis(&cluster.rt(), hooks);

  auto sample_server = [&](PartitionId p) {
    const auto& replicas = cluster.topology().Replicas(p);
    return replicas[rng.UniformInt(0,
                                   static_cast<int>(replicas.size()) - 1)];
  };
  auto add_kill_episode = [&](SimTime earliest) {
    const PartitionId p =
        static_cast<PartitionId>(rng.UniformInt(0, partitions - 1));
    const NodeId node = sample_server(p);
    const SimTime start = earliest + rng.UniformInt(0, 800 * kMs);
    const SimTime dur = rng.UniformInt(600 * kMs, 1'500 * kMs);
    nemesis.KillAt(start, node);
    nemesis.RestartAt(start + dur, node);
  };
  auto add_dc_partition = [&](SimTime earliest) {
    const DcId a = static_cast<DcId>(rng.UniformInt(0, num_dcs - 1));
    DcId b = static_cast<DcId>(rng.UniformInt(0, num_dcs - 2));
    if (b >= a) b++;
    std::vector<NodeId> side_a, side_b;
    for (const NodeInfo& info : cluster.topology().nodes()) {
      if (info.dc == a) side_a.push_back(info.id);
      if (info.dc == b) side_b.push_back(info.id);
    }
    const SimTime start = earliest + rng.UniformInt(0, 700 * kMs);
    const SimTime dur = rng.UniformInt(500 * kMs, 1'200 * kMs);
    nemesis.PartitionAt(start, side_a, side_b);
    nemesis.HealPartitionAt(start + dur, side_a, side_b);
  };

  switch (schedule_class) {
    case 0: {
      // Kill-heavy: sequential kill/restart episodes, including one that
      // lands mid-prepare with near-certainty because load is continuous.
      add_kill_episode(300 * kMs);
      add_kill_episode(1'600 * kMs);
      break;
    }
    case 1: {
      // Partition-heavy: DC cuts, the second landing while CPC traffic
      // from the first heal is still settling.
      add_dc_partition(300 * kMs);
      if (rng.Bernoulli(0.6)) add_dc_partition(1'700 * kMs);
      break;
    }
    case 2: {
      // Combo: a DC cut overlapping a server kill. The killed node hosts
      // coordinators for every client that picked it, so in-flight CPC
      // rounds lose their coordinator before the decision.
      add_dc_partition(400 * kMs);
      add_kill_episode(900 * kMs);
      break;
    }
    default: {
      // Link faults: asymmetric delay/drop on a handful of server links.
      const int nlinks = static_cast<int>(rng.UniformInt(2, 4));
      for (int i = 0; i < nlinks; ++i) {
        const PartitionId p =
            static_cast<PartitionId>(rng.UniformInt(0, partitions - 1));
        const NodeId a = sample_server(p);
        NodeId b = sample_server(p);
        if (a == b) continue;
        runtime::ThreadedRuntime::LinkFault fault;
        fault.delay = rng.UniformInt(10 * kMs, 60 * kMs);
        fault.drop_prob = 0.05 + 0.20 * rng.NextDouble();
        nemesis.LinkFaultAt(300 * kMs + rng.UniformInt(0, 500 * kMs), a, b,
                            fault);
        nemesis.HealLinkAt(2'000 * kMs + rng.UniformInt(0, 800 * kMs), a, b);
      }
      break;
    }
  }
  nemesis.HealAllAt(window);
  result.nemesis_schedule = nemesis.Describe();

  // ---- Run: workload + faults ----
  auto board = std::make_shared<Scoreboard>();
  const int num_clients = static_cast<int>(cluster.num_clients());
  const int target = std::max(config.txns, 1);
  std::vector<std::shared_ptr<RtDriver>> drivers;
  for (int i = 0; i < num_clients; ++i) {
    drivers.push_back(std::make_shared<RtDriver>(
        &cluster, i, board, &pool, partitions, target,
        /*seed=*/config.seed * 131 + 1000 + 31 * i, config.seed));
  }
  for (int i = 0; i < num_clients; ++i) {
    auto driver = drivers[i];
    cluster.RunOnClient(i, [driver]() { driver->Next(); });
  }
  nemesis.Start();
  nemesis.Join();
  board->window_over.store(true);

  // Drivers drain once the target is met; the deadline is generous
  // because sanitizer builds slow everything by an order of magnitude.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(240);
  while (board->done_clients.load() < num_clients &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Quiesce: let in-flight writebacks land, make sure every partition is
  // serving again (leaders re-elected after the last heal), then join
  // every thread so server state is plain memory.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  cluster.WaitUntilServing(/*timeout_ms=*/15000);
  result.txns_invoked = static_cast<size_t>(board->invoked.load());
  result.kills_fired = nemesis.kills_fired();
  result.restarts_fired = cluster.restarts();
  result.partitions_fired = nemesis.partitions_fired();
  result.link_faults_fired = nemesis.link_faults_fired();
  result.fault_dropped_messages = cluster.rt().fault_dropped_messages();
  result.recovered_log_entries = cluster.recovered_log_entries();
  result.recovered_pending = cluster.recovered_pending();
  const bool drivers_done = board->done_clients.load() == num_clients;
  cluster.Stop();

  if (!drivers_done) {
    result.check.violations.push_back(
        Violation{"liveness",
                  "drivers stalled: " + std::to_string(board->invoked.load()) +
                      " invoked, " + std::to_string(board->committed.load()) +
                      " committed after deadline",
                  {}});
  }

  // ---- Extract ground truth and cross-check replicas ----
  for (PartitionId p = 0; p < partitions; ++p) {
    std::map<Key, std::vector<const std::vector<TxnId>*>> per_key;
    for (NodeId id : cluster.topology().Replicas(p)) {
      core::CarouselServer* server = cluster.server(id);
      if (server == nullptr) continue;  // Dead at teardown (stalled run).
      for (const auto& [key, chain] : server->store().writer_log()) {
        per_key[key].push_back(&chain);
      }
    }
    for (auto& [key, candidates] : per_key) {
      const std::vector<TxnId>* longest = candidates.front();
      for (const auto* c : candidates) {
        if (c->size() > longest->size()) longest = c;
      }
      for (const auto* c : candidates) {
        if (!IsPrefix(*c, *longest)) {
          result.check.violations.push_back(Violation{
              "replica-divergence",
              "replicas of partition " + std::to_string(p) +
                  " disagree on the write order of '" + key + "'",
              {}});
          break;
        }
      }
      result.chains[key] = *longest;
    }
  }

  // ---- Certify ----
  CheckResult check = CheckSerializability(result.history, result.chains);
  for (Violation& v : check.violations) {
    result.check.violations.push_back(std::move(v));
  }
  result.check.committed = check.committed;
  result.check.aborted = check.aborted;
  result.check.indeterminate = check.indeterminate;
  result.check.edges = check.edges;

  if (result.ok() && !config.keep_storage) {
    std::filesystem::remove_all(result.storage_dir, ec);
  }
  return result;
}

std::string RtChaosResult::Summary() const {
  std::ostringstream out;
  out << "seed " << seed << ": "
      << (start_failed ? "SKIP (transport unavailable)"
                       : (ok() ? "OK" : "FAIL"))
      << " (" << check.committed << " committed, " << check.aborted
      << " aborted, " << check.indeterminate << " indeterminate, "
      << kills_fired << " kills, " << restarts_fired << " restarts, "
      << partitions_fired << " partitions, " << link_faults_fired
      << " link-faults, " << fault_dropped_messages << " fault-dropped, "
      << recovered_log_entries << " recovered-entries, " << recovered_pending
      << " recovered-pins, " << check.edges << " edges";
  if (!start_failed && !ok()) {
    out << ", " << check.violations.size() << " VIOLATIONS";
  }
  out << ")";
  return out.str();
}

std::string RtChaosResult::Report() const {
  std::ostringstream out;
  out << "==== rt chaos seed " << seed << " ====\n"
      << "setup: " << setup << "\n"
      << "fault timeline:\n"
      << nemesis_schedule << Summary() << "\n"
      << "storage: " << storage_dir << "\n"
      << check.Report(history);
  return out.str();
}

}  // namespace carousel::check
