#ifndef CAROUSEL_COMMON_ZIPFIAN_H_
#define CAROUSEL_COMMON_ZIPFIAN_H_

#include <cstdint>

#include "common/rng.h"

namespace carousel {

/// Zipfian-distributed integer generator over [0, n), YCSB-style.
///
/// Item 0 is the most popular. The paper's workloads use a Zipfian key
/// popularity distribution with coefficient 0.75 over 10 million keys
/// (paper §6.2); we default to the same coefficient.
class ZipfianGenerator {
 public:
  /// `n` is the number of items (> 0); `theta` the skew in [0, 1).
  ZipfianGenerator(uint64_t n, double theta = 0.75);

  /// Draws the next item rank in [0, n).
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Bijectively scrambles `rank` into [0, n) so that popular items are
/// scattered across the key space (YCSB's "scrambled zipfian"). Without
/// scrambling the hottest keys would be adjacent and land in one partition.
uint64_t ScrambleRank(uint64_t rank, uint64_t n);

}  // namespace carousel

#endif  // CAROUSEL_COMMON_ZIPFIAN_H_
