#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace carousel {
namespace {

// Geometric growth factor for buckets above the linear range.
constexpr double kGrowth = 1.02;

int NumLinearBuckets() { return 1000 / 25; }

}  // namespace

Histogram::Histogram() {
  // Enough geometric buckets to cover kMaxValue.
  int geo = static_cast<int>(
                std::ceil(std::log(static_cast<double>(kMaxValue) / kLinearLimit) /
                          std::log(kGrowth))) +
            2;
  buckets_.assign(NumLinearBuckets() + geo, 0);
}

int Histogram::BucketFor(int64_t micros) {
  if (micros < 0) micros = 0;
  if (micros < kLinearLimit) return static_cast<int>(micros / kLinearStep);
  if (micros > kMaxValue) micros = kMaxValue;
  const double ratio = static_cast<double>(micros) / kLinearLimit;
  return NumLinearBuckets() +
         static_cast<int>(std::log(ratio) / std::log(kGrowth));
}

int64_t Histogram::BucketUpper(int bucket) {
  if (bucket < NumLinearBuckets()) return (bucket + 1) * kLinearStep;
  const int geo = bucket - NumLinearBuckets();
  return static_cast<int64_t>(kLinearLimit * std::pow(kGrowth, geo + 1));
}

void Histogram::Record(int64_t micros) {
  int b = BucketFor(micros);
  if (b >= static_cast<int>(buckets_.size())) b = buckets_.size() - 1;
  buckets_[b]++;
  if (count_ == 0 || micros < min_) min_ = micros;
  if (count_ == 0 || micros > max_) max_ = micros;
  sum_ += static_cast<double>(micros);
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Fractional rank under the midpoint rule: the k-th smallest sample
  // (1-based) sits at cumulative position k - 0.5. Interpolating linearly
  // within the covering bucket keeps low quantiles off the bucket's upper
  // edge (a p50 that lands mid-bucket used to be reported a full bucket
  // high); the min/max clamp keeps the answer inside the observed range.
  const double pos = q * static_cast<double>(count_) + 0.5;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t before = seen;
    seen += buckets_[i];
    if (pos <= static_cast<double>(seen)) {
      const int64_t lower =
          i == 0 ? 0 : BucketUpper(static_cast<int>(i) - 1);
      const int64_t upper = BucketUpper(static_cast<int>(i));
      double frac = (pos - static_cast<double>(before) - 0.5) /
                    static_cast<double>(buckets_[i]);
      frac = std::clamp(frac, 0.0, 1.0);
      const int64_t value = lower + static_cast<int64_t>(std::llround(
                                        frac * static_cast<double>(upper - lower)));
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::vector<std::pair<double, double>> Histogram::CdfPoints() const {
  std::vector<std::pair<double, double>> points;
  if (count_ == 0) return points;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.emplace_back(
        static_cast<double>(BucketUpper(static_cast<int>(i))) / 1000.0,
        static_cast<double>(seen) / static_cast<double>(count_));
  }
  return points;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms",
                static_cast<long long>(count_), Mean() / 1000.0,
                Quantile(0.5) / 1000.0, Quantile(0.95) / 1000.0,
                Quantile(0.99) / 1000.0, static_cast<double>(max()) / 1000.0);
  return buf;
}

}  // namespace carousel
