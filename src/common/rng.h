#ifndef CAROUSEL_COMMON_RNG_H_
#define CAROUSEL_COMMON_RNG_H_

#include <cstdint>

namespace carousel {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the simulator draws from an
/// Rng so that a run is fully reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Exponentially distributed value with the given mean (> 0); used for
  /// Poisson arrival processes.
  double Exponential(double mean);

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Forks an independent stream; children of distinct calls never collide.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace carousel

#endif  // CAROUSEL_COMMON_RNG_H_
