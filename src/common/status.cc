#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace carousel {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace carousel
