#ifndef CAROUSEL_COMMON_HISTOGRAM_H_
#define CAROUSEL_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace carousel {

/// Latency histogram with hybrid linear/log bucketing, supporting quantile
/// queries and CDF export. Values are recorded in microseconds.
///
/// Buckets: [0, kLinearLimit) in kLinearStep-wide bins, then geometric bins
/// growing by ~2% up to kMaxValue, so quantile error stays below ~2%.
class Histogram {
 public:
  Histogram();

  /// Records one sample (clamped to the representable range).
  void Record(int64_t micros);

  /// Merges `other` into this histogram.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1]; 0 when empty.
  int64_t Quantile(double q) const;

  /// Median (p50) in microseconds.
  int64_t Median() const { return Quantile(0.5); }

  /// Returns (latency_ms, cumulative_fraction) points suitable for plotting
  /// a CDF, with one point per non-empty bucket.
  std::vector<std::pair<double, double>> CdfPoints() const;

  /// One-line summary: count/mean/p50/p95/p99/max in milliseconds.
  std::string Summary() const;

 private:
  static constexpr int64_t kLinearLimit = 1000;  // 1 ms.
  static constexpr int64_t kLinearStep = 25;     // 25 us bins below 1 ms.
  static constexpr int64_t kMaxValue = 600LL * 1000 * 1000;  // 10 min.

  static int BucketFor(int64_t micros);
  static int64_t BucketUpper(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace carousel

#endif  // CAROUSEL_COMMON_HISTOGRAM_H_
