#ifndef CAROUSEL_COMMON_STATUS_H_
#define CAROUSEL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace carousel {

/// Error codes used across the library. The library does not throw across
/// public boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kAborted,          // Transaction aborted (conflict, staleness, or client abort).
  kNotFound,         // Key or object does not exist.
  kInvalidArgument,  // Caller error (bad key set, wrong phase, ...).
  kUnavailable,      // Node down, no leader, or request dropped.
  kTimedOut,         // Operation did not complete in time.
  kNotLeader,        // Request sent to a replica that is not the leader.
  kInternal,         // Invariant violation; indicates a bug.
};

/// Returns a short human-readable name for a status code ("Aborted", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotLeader(std::string msg) {
    return Status(StatusCode::kNotLeader, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, modeled after absl::StatusOr<T>.
/// Accessing the value of a non-OK Result aborts the process.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return value;` / `return Status::Aborted(...)`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  Status status_;
  T value_{};
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok()) internal::DieBadResultAccess(status_);
}

}  // namespace carousel

#endif  // CAROUSEL_COMMON_STATUS_H_
