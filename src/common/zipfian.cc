#include "common/zipfian.h"

#include <cmath>

namespace carousel {
namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t ScrambleRank(uint64_t rank, uint64_t n) {
  // FNV-1a style mix, reduced modulo n. Not bijective in general, but
  // collisions only merge popularity mass of two ranks, which is harmless
  // for workload generation.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (rank >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h % n;
}

}  // namespace carousel
