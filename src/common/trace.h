#ifndef CAROUSEL_COMMON_TRACE_H_
#define CAROUSEL_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace carousel {

/// Lifecycle phases of one transaction, matching the paper's Figure 2
/// timeline. Each phase is stamped by whichever actor observes it first:
/// the client (execute/commit boundaries), the coordinator (quorum,
/// decision, writeback) or a participant (slow-path decision emission).
enum class TxnPhase {
  kExecuteStart,    // client: ReadAndPrepare issued (Read phase begins)
  kPrepareSent,     // client: piggybacked prepare requests on the wire
  kExecuteDone,     // client: all read results in (Read phase ends)
  kFastQuorum,      // coordinator: first partition decided via CPC fast path
  kSlowDecision,    // coordinator: first slow-path (replicated) decision used
  kCommitStart,     // client: Commit() called (Commit phase begins)
  kDecided,         // client observed the outcome (Commit phase ends)
  kWritebackStart,  // coordinator: writeback fan-out began
  kWritebackDone,   // coordinator: every participant acked its writeback
};

/// Per-transaction phase record. Timestamps are simulator micros; 0 means
/// "never observed". Multiple actors may stamp the same phase (e.g. the
/// coordinator decides and later the client learns the outcome); the
/// earliest stamp wins, except kWritebackDone which keeps the latest so it
/// covers the full fan-out.
struct TxnTrace {
  TxnId tid;
  SimTime execute_start = 0;
  SimTime prepare_sent = 0;
  SimTime execute_done = 0;
  SimTime fast_quorum = 0;
  SimTime slow_decision = 0;
  SimTime commit_start = 0;
  SimTime decided = 0;
  SimTime writeback_start = 0;
  SimTime writeback_done = 0;

  bool read_only = false;
  /// Set when the owner sealed the trace before the client had stamped
  /// kDecided (writeback can finish before the commit response reaches a
  /// far client); the kDecided stamp then completes the seal.
  bool seal_pending = false;
  /// True when every participant partition was decided through the CPC
  /// fast path (supermajority of identical direct replies); false when at
  /// least one partition needed the leader's replicated slow-path decision.
  bool fast_path = false;
  bool decided_known = false;
  bool committed = false;
  std::string abort_reason;

  SimTime& SlotFor(TxnPhase phase);
};

/// Aggregate view over sealed traces, consumed by the benches. Histograms
/// are in microseconds, mirroring the client-visible phase split the paper
/// reports (Figure 2): Read phase, Commit phase, and the end-to-end span;
/// plus protocol-internal spans that the client cannot see.
struct TraceStats {
  /// ExecuteStart -> ExecuteDone, read-write transactions only.
  Histogram read_phase;
  /// CommitStart -> Decided, committed transactions only.
  Histogram commit_phase;
  /// ExecuteStart -> Decided, committed read-write transactions.
  Histogram total;
  /// PrepareSent -> FastQuorum (fast-path transactions).
  Histogram prepare_fast;
  /// PrepareSent -> SlowDecision (transactions that touched the slow path).
  Histogram prepare_slow;
  /// Decided -> WritebackDone (asynchronous writeback span).
  Histogram writeback;

  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t read_only = 0;
  uint64_t fast_path = 0;
  uint64_t slow_path = 0;
  std::map<std::string, uint64_t> abort_reasons;

  double FastPathFraction() const {
    const uint64_t decided = fast_path + slow_path;
    return decided > 0 ? static_cast<double>(fast_path) / decided : 0.0;
  }
};

/// Collects TxnTrace records from every actor in a deployment (client,
/// coordinator, participants all hold a pointer to the cluster's one
/// collector). A trace accumulates stamps while the transaction is live
/// and is *sealed* when its owner is done with it (coordinator after the
/// decision is logged and every writeback acked; client for read-only
/// transactions and timeouts). Sealing folds the record into TraceStats
/// and — unless retain_all is set — drops it, so memory stays bounded at
/// the number of in-flight transactions even in long throughput runs.
class TraceCollector {
 public:
  /// Disabled collectors ignore every call (zero overhead knob for
  /// saturation benches). Enabled by default.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Keep sealed traces for inspection (tests). Off by default.
  void set_retain_all(bool retain) { retain_all_ = retain; }

  /// Opens the trace and stamps kExecuteStart. Only the issuing client
  /// calls this — every other actor's observations necessarily come later,
  /// so RecordPhase/RecordOutcome ignore unknown tids rather than create
  /// them (a late retransmission can never resurrect a sealed trace).
  void Begin(const TxnId& tid, SimTime now, bool read_only);

  /// Stamps `phase` at `now`. Earliest stamp wins (latest for
  /// kWritebackDone); unknown (never-begun or already-sealed) tids are
  /// ignored.
  void RecordPhase(const TxnId& tid, TxnPhase phase, SimTime now);

  /// Records the outcome: path taken, verdict, abort reason. First call
  /// wins (the coordinator knows the path; the client only the verdict).
  /// Does NOT stamp kDecided — the commit phase ends when the *client*
  /// observes the outcome, so the client stamps that phase itself.
  void RecordOutcome(const TxnId& tid, bool committed, bool fast_path,
                     const std::string& abort_reason, SimTime now);

  /// Folds the trace into the aggregate stats and forgets it (unless
  /// retain_all). Idempotent; unknown tids are ignored. If the outcome is
  /// known but the client has not stamped kDecided yet (writeback raced
  /// ahead of the commit response), the seal is deferred until that stamp
  /// arrives, so commit-phase spans of far clients are not dropped; a
  /// second Seal call (e.g. the client's timeout path) seals immediately.
  void Seal(const TxnId& tid);

  const TraceStats& stats() const { return stats_; }

  /// In-flight (unsealed) traces, for tests.
  size_t live_count() const { return live_.size(); }
  /// Looks up a live or retained trace; nullptr when unknown.
  const TxnTrace* Find(const TxnId& tid) const;
  /// Retained sealed traces, in seal order (retain_all mode).
  const std::vector<TxnTrace>& sealed() const { return sealed_; }

 private:
  TxnTrace& GetOrCreate(const TxnId& tid);
  void Fold(const TxnTrace& trace);

  bool enabled_ = true;
  bool retain_all_ = false;
  std::unordered_map<TxnId, TxnTrace, TxnIdHash> live_;
  std::vector<TxnTrace> sealed_;
  TraceStats stats_;
};

}  // namespace carousel

#endif  // CAROUSEL_COMMON_TRACE_H_
