#ifndef CAROUSEL_COMMON_TOPOLOGY_H_
#define CAROUSEL_COMMON_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace carousel {

/// Role and placement of one node in a deployment.
struct NodeInfo {
  NodeId id = kInvalidNode;
  DcId dc = 0;
  bool is_client = false;
  /// Servers only: the partition whose replica this node hosts.
  PartitionId partition = kInvalidPartition;
  /// Servers only: replica index within the partition's consensus group;
  /// replica 0 is the initial leader.
  int replica_index = -1;
};

/// Describes a geo-distributed deployment: datacenters, the inter-DC RTT
/// matrix, and the placement of partition replicas and clients.
///
/// Placement follows the paper's EC2 setup (§6.1): replica r of partition p
/// lives in DC (p + r) mod num_dcs, so each DC hosts at most one replica
/// per partition, each DC hosts replication_factor partitions, and each DC
/// is home (initial leader) to partition p == dc when num_partitions ==
/// num_dcs.
class Topology {
 public:
  /// The paper's 5-region Amazon EC2 deployment with Table 1 roundtrip
  /// latencies. DC ids: 0=US-West, 1=US-East, 2=Europe, 3=Asia,
  /// 4=Australia.
  static Topology PaperEc2();

  /// A "local cluster" style deployment with `num_dcs` simulated
  /// datacenters and a uniform inter-DC RTT (paper §6.4 uses 5 ms).
  static Topology Uniform(int num_dcs, double inter_dc_rtt_ms);

  /// Places `num_partitions` partitions, each replicated on
  /// `replication_factor` (= 2f+1) servers. Must be called once before
  /// adding clients.
  void PlacePartitions(int num_partitions, int replication_factor);

  /// Adds a client (application server) node in `dc`; returns its id.
  NodeId AddClient(DcId dc);

  int num_dcs() const { return static_cast<int>(dc_names_.size()); }
  int num_partitions() const { return num_partitions_; }
  int replication_factor() const { return replication_factor_; }
  /// f: the number of simultaneous replica failures tolerated.
  int max_failures() const { return (replication_factor_ - 1) / 2; }

  const std::string& dc_name(DcId dc) const { return dc_names_[dc]; }

  /// Round-trip time between two DCs in microseconds; intra-DC RTT when
  /// a == b.
  SimTime RttMicros(DcId a, DcId b) const;
  SimTime intra_dc_rtt_micros() const { return intra_dc_rtt_micros_; }
  void set_intra_dc_rtt_micros(SimTime rtt) { intra_dc_rtt_micros_ = rtt; }

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const NodeInfo& node(NodeId id) const { return nodes_[id]; }
  DcId DcOf(NodeId id) const { return nodes_[id].dc; }

  /// All replica node ids of a partition, ordered by replica index.
  const std::vector<NodeId>& Replicas(PartitionId p) const {
    return replicas_[p];
  }

  /// The initial leader (replica 0) of a partition.
  NodeId InitialLeader(PartitionId p) const { return replicas_[p][0]; }

  /// The replica of partition `p` located in `dc`, or kInvalidNode.
  NodeId ReplicaIn(PartitionId p, DcId dc) const;

  /// The partition whose initial leader lives in `dc`, or
  /// kInvalidPartition. Used by clients to pick a local coordinator.
  PartitionId HomePartitionOf(DcId dc) const;

  /// All client node ids.
  const std::vector<NodeId>& clients() const { return clients_; }

 private:
  std::vector<std::string> dc_names_;
  /// rtt_ms_[a][b]: inter-DC RTT in milliseconds.
  std::vector<std::vector<double>> rtt_ms_;
  SimTime intra_dc_rtt_micros_ = 500;  // 0.5 ms within a DC.

  int num_partitions_ = 0;
  int replication_factor_ = 0;
  std::vector<NodeInfo> nodes_;
  std::vector<std::vector<NodeId>> replicas_;  // [partition] -> node ids.
  std::vector<NodeId> clients_;
};

}  // namespace carousel

#endif  // CAROUSEL_COMMON_TOPOLOGY_H_
