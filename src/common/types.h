#ifndef CAROUSEL_COMMON_TYPES_H_
#define CAROUSEL_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace carousel {

/// Keys and values are opaque byte strings, as in the paper's key-value
/// store interface.
using Key = std::string;
using Value = std::string;

/// Monotonically increasing per-key version number; version 0 means the key
/// has never been written (reads return an empty value).
using Version = uint64_t;

/// Simulated time in microseconds since the start of the run.
using SimTime = int64_t;
constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * 1000;

/// Identifies a node (server or client) in the deployment. Dense, assigned
/// by the topology.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// Identifies a datacenter (site).
using DcId = int32_t;

/// Identifies a data partition; each partition is managed by one consensus
/// group of 2f+1 replicas.
using PartitionId = int32_t;
constexpr PartitionId kInvalidPartition = -1;

/// Identifies a client (application server) instance.
using ClientId = int32_t;

/// Globally unique transaction ID: (client ID, per-client counter), as in
/// paper §3.3.
struct TxnId {
  ClientId client = -1;
  uint64_t counter = 0;

  bool valid() const { return client >= 0; }
  std::string ToString() const {
    return std::to_string(client) + "." + std::to_string(counter);
  }

  friend bool operator==(const TxnId& a, const TxnId& b) {
    return a.client == b.client && a.counter == b.counter;
  }
  friend bool operator<(const TxnId& a, const TxnId& b) {
    if (a.client != b.client) return a.client < b.client;
    return a.counter < b.counter;
  }
};

struct TxnIdHash {
  size_t operator()(const TxnId& id) const {
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(id.client)) << 40) ^
                 id.counter;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// A read result: value plus the version it was read at.
struct VersionedValue {
  Value value;
  Version version = 0;

  friend bool operator==(const VersionedValue& a, const VersionedValue& b) {
    return a.version == b.version && a.value == b.value;
  }
};

/// Map from key to the version a transaction observed for it.
using ReadVersionMap = std::map<Key, Version>;

/// Buffered writes of a transaction.
using WriteSet = std::map<Key, Value>;

/// Ordered set of keys (std::map keys give deterministic iteration).
using KeyList = std::vector<Key>;

}  // namespace carousel

#endif  // CAROUSEL_COMMON_TYPES_H_
