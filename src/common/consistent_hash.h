#ifndef CAROUSEL_COMMON_CONSISTENT_HASH_H_
#define CAROUSEL_COMMON_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace carousel {

/// Maps keys to partitions with consistent hashing (paper §3.3): each
/// partition owns `virtual_nodes` points on a 64-bit ring, and a key maps
/// to the partition owning the first point clockwise from the key's hash.
///
/// Adding or removing a partition only remaps ~1/P of the key space, which
/// the stability tests assert.
class ConsistentHashRing {
 public:
  /// Builds a ring over partitions [0, num_partitions).
  explicit ConsistentHashRing(int num_partitions, int virtual_nodes = 64);

  /// Returns the partition responsible for `key`.
  PartitionId PartitionFor(const Key& key) const;

  /// Adds a new partition id to the ring.
  void AddPartition(PartitionId partition);

  /// Removes a partition from the ring.
  void RemovePartition(PartitionId partition);

  int num_partitions() const { return num_partitions_; }

  /// Hashes an arbitrary byte string to a ring position (FNV-1a, exposed
  /// for tests).
  static uint64_t HashBytes(const Key& key);

 private:
  std::map<uint64_t, PartitionId> ring_;
  int virtual_nodes_;
  int num_partitions_;
};

}  // namespace carousel

#endif  // CAROUSEL_COMMON_CONSISTENT_HASH_H_
