#include "common/consistent_hash.h"

#include <string>

namespace carousel {

uint64_t ConsistentHashRing::HashBytes(const Key& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche so nearby keys spread out.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

ConsistentHashRing::ConsistentHashRing(int num_partitions, int virtual_nodes)
    : virtual_nodes_(virtual_nodes), num_partitions_(0) {
  for (PartitionId p = 0; p < num_partitions; ++p) AddPartition(p);
}

void ConsistentHashRing::AddPartition(PartitionId partition) {
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::string token =
        "p" + std::to_string(partition) + "#" + std::to_string(v);
    ring_[HashBytes(token)] = partition;
  }
  num_partitions_++;
}

void ConsistentHashRing::RemovePartition(PartitionId partition) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == partition) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  num_partitions_--;
}

PartitionId ConsistentHashRing::PartitionFor(const Key& key) const {
  const uint64_t h = HashBytes(key);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace carousel
