#include "common/trace.h"

namespace carousel {

SimTime& TxnTrace::SlotFor(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kExecuteStart:
      return execute_start;
    case TxnPhase::kPrepareSent:
      return prepare_sent;
    case TxnPhase::kExecuteDone:
      return execute_done;
    case TxnPhase::kFastQuorum:
      return fast_quorum;
    case TxnPhase::kSlowDecision:
      return slow_decision;
    case TxnPhase::kCommitStart:
      return commit_start;
    case TxnPhase::kDecided:
      return decided;
    case TxnPhase::kWritebackStart:
      return writeback_start;
    case TxnPhase::kWritebackDone:
      return writeback_done;
  }
  return execute_start;  // Unreachable; keeps -Werror=return-type happy.
}

TxnTrace& TraceCollector::GetOrCreate(const TxnId& tid) {
  auto [it, inserted] = live_.try_emplace(tid);
  if (inserted) it->second.tid = tid;
  return it->second;
}

void TraceCollector::Begin(const TxnId& tid, SimTime now, bool read_only) {
  if (!enabled_) return;
  TxnTrace& trace = GetOrCreate(tid);
  trace.read_only = read_only;
  SimTime& slot = trace.SlotFor(TxnPhase::kExecuteStart);
  if (slot == 0 || now < slot) slot = now;
}

void TraceCollector::RecordPhase(const TxnId& tid, TxnPhase phase,
                                 SimTime now) {
  if (!enabled_) return;
  auto it = live_.find(tid);
  if (it == live_.end()) return;
  TxnTrace& trace = it->second;
  SimTime& slot = trace.SlotFor(phase);
  if (phase == TxnPhase::kWritebackDone) {
    // The writeback span ends at the *last* participant ack.
    if (now > slot) slot = now;
  } else if (slot == 0 || now < slot) {
    // Earliest observer wins: the coordinator usually decides before the
    // client hears about it, but messages can race on retries.
    slot = now;
  }
  if (phase == TxnPhase::kDecided && trace.seal_pending) {
    // The coordinator already finished with this trace; the client's
    // kDecided stamp was the last missing piece.
    Seal(tid);
  }
}

void TraceCollector::RecordOutcome(const TxnId& tid, bool committed,
                                   bool fast_path,
                                   const std::string& abort_reason,
                                   SimTime now) {
  if (!enabled_) return;
  auto it = live_.find(tid);
  if (it == live_.end()) return;
  TxnTrace& trace = it->second;
  if (!trace.decided_known) {
    trace.decided_known = true;
    trace.committed = committed;
    trace.fast_path = fast_path;
    trace.abort_reason = abort_reason;
  }
  (void)now;
}

void TraceCollector::Seal(const TxnId& tid) {
  if (!enabled_) return;
  auto it = live_.find(tid);
  if (it == live_.end()) return;
  TxnTrace& trace = it->second;
  if (!trace.seal_pending && !trace.read_only && trace.decided_known &&
      trace.decided == 0) {
    // Writeback finished before the commit response reached the client.
    // Wait for the client's kDecided stamp so the commit-phase span is
    // not lost; the client's own Seal paths (timeout, abort) pass here
    // at most once, so a second call seals unconditionally.
    trace.seal_pending = true;
    return;
  }
  Fold(trace);
  if (retain_all_) sealed_.push_back(std::move(it->second));
  live_.erase(it);
}

const TxnTrace* TraceCollector::Find(const TxnId& tid) const {
  auto it = live_.find(tid);
  if (it != live_.end()) return &it->second;
  for (const TxnTrace& trace : sealed_) {
    if (trace.tid == tid) return &trace;
  }
  return nullptr;
}

void TraceCollector::Fold(const TxnTrace& trace) {
  if (trace.read_only) {
    stats_.read_only++;
    if (trace.decided_known && !trace.committed) {
      stats_.aborted++;
      stats_.abort_reasons[trace.abort_reason]++;
    } else {
      stats_.committed++;
    }
    return;
  }
  if (trace.execute_start > 0 && trace.execute_done >= trace.execute_start) {
    stats_.read_phase.Record(trace.execute_done - trace.execute_start);
  }
  if (!trace.decided_known) return;  // Timed out before any decision.
  if (trace.committed) {
    stats_.committed++;
    if (trace.commit_start > 0 && trace.decided >= trace.commit_start) {
      stats_.commit_phase.Record(trace.decided - trace.commit_start);
    }
    if (trace.execute_start > 0 && trace.decided >= trace.execute_start) {
      stats_.total.Record(trace.decided - trace.execute_start);
    }
  } else {
    stats_.aborted++;
    stats_.abort_reasons[trace.abort_reason]++;
  }
  if (trace.fast_path) {
    stats_.fast_path++;
    if (trace.prepare_sent > 0 && trace.fast_quorum >= trace.prepare_sent) {
      stats_.prepare_fast.Record(trace.fast_quorum - trace.prepare_sent);
    }
  } else {
    stats_.slow_path++;
    if (trace.prepare_sent > 0 && trace.slow_decision >= trace.prepare_sent) {
      stats_.prepare_slow.Record(trace.slow_decision - trace.prepare_sent);
    }
  }
  if (trace.decided > 0 && trace.writeback_done >= trace.decided) {
    stats_.writeback.Record(trace.writeback_done - trace.decided);
  }
}

}  // namespace carousel
