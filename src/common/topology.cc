#include "common/topology.h"

namespace carousel {

Topology Topology::PaperEc2() {
  Topology t;
  t.dc_names_ = {"US-West", "US-East", "Europe", "Asia", "Australia"};
  const int n = 5;
  t.rtt_ms_.assign(n, std::vector<double>(n, 0.0));
  auto set = [&t](int a, int b, double ms) {
    t.rtt_ms_[a][b] = ms;
    t.rtt_ms_[b][a] = ms;
  };
  // Paper Table 1 (ms).
  set(0, 1, 73);   // US-West <-> US-East
  set(0, 2, 166);  // US-West <-> Europe
  set(0, 3, 102);  // US-West <-> Asia
  set(0, 4, 161);  // US-West <-> Australia
  set(1, 2, 88);   // US-East <-> Europe
  set(1, 3, 172);  // US-East <-> Asia
  set(1, 4, 205);  // US-East <-> Australia
  set(2, 3, 235);  // Europe <-> Asia
  set(2, 4, 290);  // Europe <-> Australia
  set(3, 4, 115);  // Asia <-> Australia
  return t;
}

Topology Topology::Uniform(int num_dcs, double inter_dc_rtt_ms) {
  Topology t;
  for (int i = 0; i < num_dcs; ++i) t.dc_names_.push_back("DC" + std::to_string(i));
  t.rtt_ms_.assign(num_dcs, std::vector<double>(num_dcs, inter_dc_rtt_ms));
  for (int i = 0; i < num_dcs; ++i) t.rtt_ms_[i][i] = 0.0;
  return t;
}

SimTime Topology::RttMicros(DcId a, DcId b) const {
  if (a == b) return intra_dc_rtt_micros_;
  return static_cast<SimTime>(rtt_ms_[a][b] * kMicrosPerMilli);
}

void Topology::PlacePartitions(int num_partitions, int replication_factor) {
  num_partitions_ = num_partitions;
  replication_factor_ = replication_factor;
  replicas_.assign(num_partitions, {});
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (int r = 0; r < replication_factor; ++r) {
      NodeInfo info;
      info.id = static_cast<NodeId>(nodes_.size());
      info.dc = (p + r) % num_dcs();
      info.is_client = false;
      info.partition = p;
      info.replica_index = r;
      nodes_.push_back(info);
      replicas_[p].push_back(info.id);
    }
  }
}

NodeId Topology::AddClient(DcId dc) {
  NodeInfo info;
  info.id = static_cast<NodeId>(nodes_.size());
  info.dc = dc;
  info.is_client = true;
  nodes_.push_back(info);
  clients_.push_back(info.id);
  return info.id;
}

NodeId Topology::ReplicaIn(PartitionId p, DcId dc) const {
  for (NodeId id : replicas_[p]) {
    if (nodes_[id].dc == dc) return id;
  }
  return kInvalidNode;
}

PartitionId Topology::HomePartitionOf(DcId dc) const {
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    if (nodes_[replicas_[p][0]].dc == dc) return p;
  }
  return kInvalidPartition;
}

}  // namespace carousel
