#ifndef CAROUSEL_RUNTIME_STORAGE_H_
#define CAROUSEL_RUNTIME_STORAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"
#include "runtime/threaded.h"

namespace carousel::runtime {

/// Everything a node must rediscover after a SIGKILL-style restart. The
/// Raft hard state, log and commit index reconstruct the replicated state
/// machine (participant/coordinator decision state is rebuilt by replaying
/// the applied prefix); the pending blobs are the CPC fast-path prepare
/// pins (kv::PendingTxn, serialized by the hosting server) — tentative
/// votes that were never in the Raft log but that §4.3.3's supermajority
/// recovery counts on, so a durable deployment syncs them like votedFor.
struct DurableNodeState {
  uint64_t term = 0;
  NodeId voted_for = kInvalidNode;
  uint64_t commit_index = 0;

  struct LogEntry {
    uint64_t term = 0;
    /// Message type tag of `payload` (< 0 when the payload is null).
    int payload_type = -1;
    MessagePtr payload;
  };
  std::vector<LogEntry> log;

  /// Opaque prepare-pin records, keyed by the owner's transaction-id key.
  std::map<std::string, std::vector<uint8_t>> pending;

  /// True when nothing was ever persisted — a genuinely fresh node (the
  /// bootstrap path). Any started node has at least term 1 on disk.
  bool empty() const { return term == 0 && log.empty() && pending.empty(); }
};

/// Durable node state for the threaded backend, wired through NodeEnv.
/// Null under the simulator (crashes there are process pauses with
/// in-memory "durable" state, so nothing needs a disk). All methods are
/// called from the owning node's event-loop thread only, except Load,
/// which the harness may call before the loop starts.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Raft hard state (term, votedFor); must be on disk before the vote or
  /// ballot it protects leaves the node.
  virtual void PersistHardState(uint64_t term, NodeId voted_for) = 0;

  /// Commit watermark; replayed entries up to it re-apply on restart.
  virtual void PersistCommitIndex(uint64_t commit_index) = 0;

  /// Appends log entry `index` (1-based), implicitly truncating any
  /// previously persisted suffix at >= index (Raft conflict resolution).
  virtual void PersistLogEntry(uint64_t index, uint64_t term,
                               const MessagePtr& payload) = 0;

  /// Upserts / erases a prepare-pin blob under `key`.
  virtual void PersistPendingAdd(const std::string& key,
                                 std::vector<uint8_t> blob) = 0;
  virtual void PersistPendingErase(const std::string& key) = 0;

  /// Reads back the persisted state (memoized after the first call, so
  /// both the Raft member and the hosting server can consume it). Returns
  /// false when nothing was recovered.
  virtual bool Load(DurableNodeState* out) = 0;

  /// Folds the WAL into a snapshot (crash-safe: tmp + rename) and
  /// truncates it.
  virtual void Compact() = 0;
};

struct WalStorageOptions {
  /// fsync after every WAL append and snapshot. The RT chaos harness
  /// turns this off: its kill model stops threads inside one process, so
  /// page-cache contents survive and the fsync cost buys nothing.
  bool fsync = true;
  /// Auto-compact once the WAL grows past this many bytes (0 = manual
  /// Compact() only).
  size_t compact_threshold_bytes = 8u << 20;
};

/// File-backed Storage: an append-only WAL (`wal.log`) of CRC-framed
/// records replayed over an atomic snapshot (`snapshot.bin`, written
/// tmp-then-rename). A torn final record — the partial write of a crash —
/// is detected by length/CRC and truncated away on load; everything
/// before it is recovered. Log payloads are serialized with the same
/// injected wire codec the TCP transport uses, so the WAL speaks the
/// protocol's canonical byte format and the runtime library stays
/// independent of the codec implementation.
class WalStorage final : public Storage {
 public:
  /// Creates `dir` (recursively) if missing and loads any existing state.
  WalStorage(std::string dir, WireCodec codec, WalStorageOptions options = {});
  ~WalStorage() override;

  WalStorage(const WalStorage&) = delete;
  WalStorage& operator=(const WalStorage&) = delete;

  void PersistHardState(uint64_t term, NodeId voted_for) override;
  void PersistCommitIndex(uint64_t commit_index) override;
  void PersistLogEntry(uint64_t index, uint64_t term,
                       const MessagePtr& payload) override;
  void PersistPendingAdd(const std::string& key,
                         std::vector<uint8_t> blob) override;
  void PersistPendingErase(const std::string& key) override;
  bool Load(DurableNodeState* out) override;
  void Compact() override;

  /// The recovered + live mirror (what Load copies out).
  const DurableNodeState& state() const { return state_; }
  /// Records dropped on load because of a torn tail or CRC mismatch.
  size_t torn_records() const { return torn_records_; }
  /// Bytes currently in the WAL (drops to 0 after Compact).
  size_t wal_bytes() const { return wal_bytes_; }

 private:
  void LoadFromDisk();
  bool LoadSnapshot();
  void ReplayWal();
  void AppendRecord(const std::vector<uint8_t>& body);
  void MaybeAutoCompact();

  std::string dir_;
  WireCodec codec_;
  WalStorageOptions options_;
  int wal_fd_ = -1;
  size_t wal_bytes_ = 0;
  size_t torn_records_ = 0;
  bool recovered_any_ = false;
  DurableNodeState state_;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_STORAGE_H_
