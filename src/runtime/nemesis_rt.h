#ifndef CAROUSEL_RUNTIME_NEMESIS_RT_H_
#define CAROUSEL_RUNTIME_NEMESIS_RT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "runtime/threaded.h"

namespace carousel::runtime {

/// Fault driver for the threaded backend — the real-time sibling of
/// sim::Nemesis. A schedule of timed events (node kill/restart, link
/// partition/heal, per-link delay/drop) is declared up front, then a
/// driver thread replays it against wall-clock deadlines while the
/// workload runs. Transport faults go straight to ThreadedRuntime's link
/// table; node lifecycle goes through caller-supplied hooks so the
/// harness (which owns the server objects and their durable storage)
/// controls what "SIGKILL" and "restart from WAL" mean.
///
/// Capability differences vs the simulator nemesis are inherent to the
/// substrate: sim crashes pause a node and preserve its memory, RT kills
/// destroy the process image and recovery comes from the WAL; sim
/// schedules are deterministic to the microsecond, RT events fire at
/// best-effort wall-clock times against a nondeterministic interleaving.
class RtNemesis {
 public:
  struct Hooks {
    /// SIGKILL-equivalent; returns false if the node was already dead.
    std::function<bool(NodeId)> kill;
    /// Restart from durable state; returns false if not restartable.
    std::function<bool(NodeId)> restart;
  };

  RtNemesis(ThreadedRuntime* rt, Hooks hooks);
  /// Joins the driver thread (applying nothing further once asked to
  /// stop); never leaves a node dead that a HealAllAt would have revived.
  ~RtNemesis();

  RtNemesis(const RtNemesis&) = delete;
  RtNemesis& operator=(const RtNemesis&) = delete;

  /// ---- Schedule declaration (before Start) ----
  /// All times are microseconds relative to Start().
  void KillAt(SimTime at, NodeId node);
  void RestartAt(SimTime at, NodeId node);
  /// Blocks every link between `side_a` and `side_b`, both directions.
  void PartitionAt(SimTime at, std::vector<NodeId> side_a,
                   std::vector<NodeId> side_b);
  void HealPartitionAt(SimTime at, std::vector<NodeId> side_a,
                       std::vector<NodeId> side_b);
  /// Installs a delay/drop policy on one link (both directions).
  void LinkFaultAt(SimTime at, NodeId a, NodeId b,
                   ThreadedRuntime::LinkFault fault);
  void HealLinkAt(SimTime at, NodeId a, NodeId b);
  /// Clears every link fault and restarts every node the schedule killed;
  /// every schedule should end with one so the cluster can quiesce.
  void HealAllAt(SimTime at);

  /// Launches the driver thread; the schedule's clock starts now.
  void Start();
  /// Blocks until the whole schedule has been applied.
  void Join();

  /// Human-readable schedule, one event per line.
  std::string Describe() const;

  size_t faults_injected() const { return faults_injected_.load(); }
  size_t kills_fired() const { return kills_fired_.load(); }
  size_t restarts_fired() const { return restarts_fired_.load(); }
  size_t partitions_fired() const { return partitions_fired_.load(); }
  size_t link_faults_fired() const { return link_faults_fired_.load(); }

 private:
  struct Event {
    enum Kind {
      kKill,
      kRestart,
      kPartition,
      kHealPartition,
      kLinkFault,
      kHealLink,
      kHealAll,
    };
    SimTime at = 0;
    Kind kind = kKill;
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;
    std::vector<NodeId> side_a;
    std::vector<NodeId> side_b;
    ThreadedRuntime::LinkFault fault;
  };

  void RunSchedule();
  void Apply(const Event& event);

  ThreadedRuntime* rt_;
  Hooks hooks_;
  std::vector<Event> events_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool cancel_ = false;
  bool started_ = false;
  /// Nodes currently down (driver thread only, except after Join).
  std::set<NodeId> down_;
  std::atomic<size_t> faults_injected_{0};
  std::atomic<size_t> kills_fired_{0};
  std::atomic<size_t> restarts_fired_{0};
  std::atomic<size_t> partitions_fired_{0};
  std::atomic<size_t> link_faults_fired_{0};
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_NEMESIS_RT_H_
