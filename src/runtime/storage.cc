#include "runtime/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace carousel::runtime {
namespace {

// WAL record framing: [u32 body_len][u32 crc32(body)][body]. A record is
// valid only if the full body is present and the CRC matches; the first
// invalid record marks the torn tail and everything from there is
// discarded. Body[0] is the record kind.
constexpr uint8_t kRecHardState = 1;
constexpr uint8_t kRecCommitIndex = 2;
constexpr uint8_t kRecLogEntry = 3;
constexpr uint8_t kRecPendingAdd = 4;
constexpr uint8_t kRecPendingErase = 5;

constexpr uint32_t kSnapshotMagic = 0x6e535743;  // "CWSn"
constexpr uint32_t kSnapshotVersion = 1;

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xedb88320u & (~(c & 1) + 1));
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutBytes(std::vector<uint8_t>* out, const uint8_t* data, size_t len) {
  out->insert(out->end(), data, data + len);
}

/// Bounds-checked little-endian reader; underflow latches !ok().
struct ByteReader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  bool Take(size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    pos += n;
    return true;
  }
  uint8_t U8() { return Take(1) ? data[pos - 1] : 0; }
  uint32_t U32() {
    if (!Take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos - 4 + i]) << (8 * i);
    return v;
  }
  uint64_t U64() {
    if (!Take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos - 8 + i]) << (8 * i);
    return v;
  }
  std::string Str(size_t n) {
    if (!Take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data + pos - n), n);
  }
  std::vector<uint8_t> Bytes(size_t n) {
    if (!Take(n)) return {};
    return std::vector<uint8_t>(data + pos - n, data + pos);
  }
  size_t remaining() const { return len - pos; }
};

bool WriteAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

void MkDirs(const std::string& path) {
  std::string prefix;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!prefix.empty() && prefix != "/") ::mkdir(prefix.c_str(), 0755);
    }
    if (i < path.size()) prefix.push_back(path[i]);
  }
}

void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

WalStorage::WalStorage(std::string dir, WireCodec codec,
                       WalStorageOptions options)
    : dir_(std::move(dir)), codec_(std::move(codec)), options_(options) {
  MkDirs(dir_);
  LoadFromDisk();
  wal_fd_ = ::open((dir_ + "/wal.log").c_str(),
                   O_WRONLY | O_CREAT | O_APPEND, 0644);
}

WalStorage::~WalStorage() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

void WalStorage::AppendRecord(const std::vector<uint8_t>& body) {
  std::vector<uint8_t> rec;
  rec.reserve(8 + body.size());
  PutU32(&rec, static_cast<uint32_t>(body.size()));
  PutU32(&rec, Crc32(body.data(), body.size()));
  PutBytes(&rec, body.data(), body.size());
  if (wal_fd_ >= 0 && WriteAll(wal_fd_, rec.data(), rec.size())) {
    wal_bytes_ += rec.size();
    if (options_.fsync) ::fsync(wal_fd_);
  }
  MaybeAutoCompact();
}

void WalStorage::PersistHardState(uint64_t term, NodeId voted_for) {
  state_.term = term;
  state_.voted_for = voted_for;
  std::vector<uint8_t> body{kRecHardState};
  PutU64(&body, term);
  PutU32(&body, static_cast<uint32_t>(voted_for));
  AppendRecord(body);
}

void WalStorage::PersistCommitIndex(uint64_t commit_index) {
  state_.commit_index = commit_index;
  std::vector<uint8_t> body{kRecCommitIndex};
  PutU64(&body, commit_index);
  AppendRecord(body);
}

void WalStorage::PersistLogEntry(uint64_t index, uint64_t term,
                                 const MessagePtr& payload) {
  DurableNodeState::LogEntry entry;
  entry.term = term;
  entry.payload = payload;
  entry.payload_type = payload == nullptr ? -1 : payload->type();
  std::vector<uint8_t> encoded;
  if (payload != nullptr && codec_.encode) encoded = codec_.encode(*payload);
  // Implicit suffix truncation: appending at `index` invalidates anything
  // previously persisted at or beyond it, exactly like the in-memory
  // log_.resize() in Raft's conflict handling.
  if (index >= 1 && index <= state_.log.size()) {
    state_.log.resize(index - 1);
  }
  if (index == state_.log.size() + 1) {
    state_.log.push_back(std::move(entry));
  }
  if (state_.commit_index > state_.log.size()) {
    state_.commit_index = state_.log.size();
  }

  std::vector<uint8_t> body{kRecLogEntry};
  PutU64(&body, index);
  PutU64(&body, term);
  PutU32(&body, static_cast<uint32_t>(
                    payload == nullptr ? -1 : payload->type()));
  PutBytes(&body, encoded.data(), encoded.size());
  AppendRecord(body);
}

void WalStorage::PersistPendingAdd(const std::string& key,
                                   std::vector<uint8_t> blob) {
  std::vector<uint8_t> body{kRecPendingAdd};
  PutU32(&body, static_cast<uint32_t>(key.size()));
  PutBytes(&body, reinterpret_cast<const uint8_t*>(key.data()), key.size());
  PutBytes(&body, blob.data(), blob.size());
  state_.pending[key] = std::move(blob);
  AppendRecord(body);
}

void WalStorage::PersistPendingErase(const std::string& key) {
  if (state_.pending.erase(key) == 0) return;  // Nothing durable to undo.
  std::vector<uint8_t> body{kRecPendingErase};
  PutU32(&body, static_cast<uint32_t>(key.size()));
  PutBytes(&body, reinterpret_cast<const uint8_t*>(key.data()), key.size());
  AppendRecord(body);
}

bool WalStorage::Load(DurableNodeState* out) {
  *out = state_;
  return recovered_any_;
}

void WalStorage::LoadFromDisk() {
  state_ = DurableNodeState{};
  const bool had_snapshot = LoadSnapshot();
  ReplayWal();
  if (state_.commit_index > state_.log.size()) {
    state_.commit_index = state_.log.size();
  }
  recovered_any_ = had_snapshot || !state_.empty();
}

bool WalStorage::LoadSnapshot() {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(dir_ + "/snapshot.bin", &bytes)) return false;
  ByteReader header{bytes.data(), bytes.size()};
  if (header.U32() != kSnapshotMagic || header.U32() != kSnapshotVersion) {
    return false;
  }
  const uint32_t body_len = header.U32();
  const uint32_t crc = header.U32();
  if (!header.ok || header.remaining() < body_len) return false;
  const uint8_t* body = bytes.data() + header.pos;
  if (Crc32(body, body_len) != crc) return false;

  ByteReader r{body, body_len};
  state_.term = r.U64();
  state_.voted_for = static_cast<NodeId>(static_cast<int32_t>(r.U32()));
  state_.commit_index = r.U64();
  const uint64_t nlog = r.U64();
  for (uint64_t i = 0; i < nlog && r.ok; ++i) {
    DurableNodeState::LogEntry entry;
    entry.term = r.U64();
    entry.payload_type = static_cast<int32_t>(r.U32());
    const uint32_t plen = r.U32();
    const std::vector<uint8_t> payload = r.Bytes(plen);
    if (!r.ok) break;
    if (entry.payload_type >= 0 && codec_.decode) {
      entry.payload =
          codec_.decode(entry.payload_type, payload.data(), payload.size());
    }
    state_.log.push_back(std::move(entry));
  }
  const uint64_t npending = r.U64();
  for (uint64_t i = 0; i < npending && r.ok; ++i) {
    const uint32_t klen = r.U32();
    const std::string key = r.Str(klen);
    const uint32_t blen = r.U32();
    std::vector<uint8_t> blob = r.Bytes(blen);
    if (!r.ok) break;
    state_.pending[key] = std::move(blob);
  }
  if (!r.ok) {
    // A snapshot is written atomically (tmp + rename), so a parse failure
    // means external corruption; start over rather than trust half of it.
    state_ = DurableNodeState{};
    return false;
  }
  return true;
}

void WalStorage::ReplayWal() {
  const std::string path = dir_ + "/wal.log";
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) return;
  size_t pos = 0;
  while (pos + 8 <= bytes.size()) {
    ByteReader header{bytes.data() + pos, 8};
    const uint32_t body_len = header.U32();
    const uint32_t crc = header.U32();
    if (pos + 8 + body_len > bytes.size() || body_len == 0) break;  // Torn.
    const uint8_t* body = bytes.data() + pos + 8;
    if (Crc32(body, body_len) != crc) break;  // Torn / corrupt tail.

    ByteReader r{body, body_len};
    switch (r.U8()) {
      case kRecHardState: {
        state_.term = r.U64();
        state_.voted_for = static_cast<NodeId>(static_cast<int32_t>(r.U32()));
        break;
      }
      case kRecCommitIndex: {
        state_.commit_index = r.U64();
        break;
      }
      case kRecLogEntry: {
        const uint64_t index = r.U64();
        DurableNodeState::LogEntry entry;
        entry.term = r.U64();
        entry.payload_type = static_cast<int32_t>(r.U32());
        std::vector<uint8_t> payload = r.Bytes(r.remaining());
        if (!r.ok) break;
        if (entry.payload_type >= 0 && codec_.decode) {
          entry.payload = codec_.decode(entry.payload_type, payload.data(),
                                        payload.size());
        }
        if (index >= 1 && index <= state_.log.size()) {
          state_.log.resize(index - 1);
        }
        if (index == state_.log.size() + 1) {
          state_.log.push_back(std::move(entry));
        }
        break;
      }
      case kRecPendingAdd: {
        const uint32_t klen = r.U32();
        const std::string key = r.Str(klen);
        std::vector<uint8_t> blob = r.Bytes(r.remaining());
        if (r.ok) state_.pending[key] = std::move(blob);
        break;
      }
      case kRecPendingErase: {
        const uint32_t klen = r.U32();
        const std::string key = r.Str(klen);
        if (r.ok) state_.pending.erase(key);
        break;
      }
      default:
        break;  // Unknown kind from a future version: skip the record.
    }
    pos += 8 + body_len;
  }
  wal_bytes_ = pos;
  if (pos < bytes.size()) {
    // Torn tail: drop the partial/corrupt suffix so the next append starts
    // on a clean record boundary.
    torn_records_++;
    ::truncate(path.c_str(), static_cast<off_t>(pos));
  }
}

void WalStorage::Compact() {
  std::vector<uint8_t> body;
  PutU64(&body, state_.term);
  PutU32(&body, static_cast<uint32_t>(state_.voted_for));
  PutU64(&body, state_.commit_index);
  PutU64(&body, state_.log.size());
  for (const DurableNodeState::LogEntry& entry : state_.log) {
    PutU64(&body, entry.term);
    PutU32(&body, static_cast<uint32_t>(entry.payload_type));
    std::vector<uint8_t> encoded;
    if (entry.payload != nullptr && codec_.encode) {
      encoded = codec_.encode(*entry.payload);
    }
    PutU32(&body, static_cast<uint32_t>(encoded.size()));
    PutBytes(&body, encoded.data(), encoded.size());
  }
  PutU64(&body, state_.pending.size());
  for (const auto& [key, blob] : state_.pending) {
    PutU32(&body, static_cast<uint32_t>(key.size()));
    PutBytes(&body, reinterpret_cast<const uint8_t*>(key.data()), key.size());
    PutU32(&body, static_cast<uint32_t>(blob.size()));
    PutBytes(&body, blob.data(), blob.size());
  }

  std::vector<uint8_t> file;
  PutU32(&file, kSnapshotMagic);
  PutU32(&file, kSnapshotVersion);
  PutU32(&file, static_cast<uint32_t>(body.size()));
  PutU32(&file, Crc32(body.data(), body.size()));
  PutBytes(&file, body.data(), body.size());

  const std::string tmp = dir_ + "/snapshot.tmp";
  const std::string final_path = dir_ + "/snapshot.bin";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const bool written = WriteAll(fd, file.data(), file.size());
  if (options_.fsync) ::fsync(fd);
  ::close(fd);
  if (!written || ::rename(tmp.c_str(), final_path.c_str()) != 0) return;
  if (options_.fsync) FsyncDir(dir_);

  // The snapshot now carries everything; restart the WAL from empty.
  if (wal_fd_ >= 0) ::close(wal_fd_);
  wal_fd_ = ::open((dir_ + "/wal.log").c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  wal_bytes_ = 0;
}

void WalStorage::MaybeAutoCompact() {
  if (options_.compact_threshold_bytes == 0) return;
  if (wal_bytes_ < options_.compact_threshold_bytes) return;
  Compact();
}

}  // namespace carousel::runtime
