#ifndef CAROUSEL_RUNTIME_EVENT_FN_H_
#define CAROUSEL_RUNTIME_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace carousel::runtime {

/// Move-only callable holder for runtime events, sized so typical event
/// captures (a network/node pointer, a couple of node ids, a MessagePtr)
/// live inline instead of on the heap. std::function's small-object buffer
/// is 16 bytes on libstdc++, which every delivery and service-completion
/// lambda overflows — at millions of events per simulated second those
/// heap round-trips are a measurable slice of bench wall-clock. Oversized
/// callables transparently fall back to one heap allocation.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 56;

  EventFn() = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT: implicit so call sites just pass lambdas.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destructs src's; the
    /// caller is responsible for clearing src's ops_.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static void InlineInvoke(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void InlineRelocate(void* dst, void* src) {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void InlineDestroy(void* p) {
    static_cast<Fn*>(p)->~Fn();
  }
  template <typename Fn>
  static constexpr Ops kInlineOps{&InlineInvoke<Fn>, &InlineRelocate<Fn>,
                                  &InlineDestroy<Fn>};

  template <typename Fn>
  static Fn*& HeapSlot(void* p) {
    return *static_cast<Fn**>(p);
  }
  template <typename Fn>
  static void HeapInvoke(void* p) {
    (*HeapSlot<Fn>(p))();
  }
  template <typename Fn>
  static void HeapRelocate(void* dst, void* src) {
    ::new (dst) Fn*(HeapSlot<Fn>(src));
  }
  template <typename Fn>
  static void HeapDestroy(void* p) {
    delete HeapSlot<Fn>(p);
  }
  template <typename Fn>
  static constexpr Ops kHeapOps{&HeapInvoke<Fn>, &HeapRelocate<Fn>,
                                &HeapDestroy<Fn>};

  void MoveFrom(EventFn&& other) {
    if (other.ops_ == nullptr) return;
    ops_ = other.ops_;
    ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_EVENT_FN_H_
