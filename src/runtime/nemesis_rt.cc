#include "runtime/nemesis_rt.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

namespace carousel::runtime {

RtNemesis::RtNemesis(ThreadedRuntime* rt, Hooks hooks)
    : rt_(rt), hooks_(std::move(hooks)) {}

RtNemesis::~RtNemesis() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancel_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void RtNemesis::KillAt(SimTime at, NodeId node) {
  Event e;
  e.at = at;
  e.kind = Event::kKill;
  e.node = node;
  events_.push_back(std::move(e));
}

void RtNemesis::RestartAt(SimTime at, NodeId node) {
  Event e;
  e.at = at;
  e.kind = Event::kRestart;
  e.node = node;
  events_.push_back(std::move(e));
}

void RtNemesis::PartitionAt(SimTime at, std::vector<NodeId> side_a,
                            std::vector<NodeId> side_b) {
  Event e;
  e.at = at;
  e.kind = Event::kPartition;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
}

void RtNemesis::HealPartitionAt(SimTime at, std::vector<NodeId> side_a,
                                std::vector<NodeId> side_b) {
  Event e;
  e.at = at;
  e.kind = Event::kHealPartition;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
}

void RtNemesis::LinkFaultAt(SimTime at, NodeId a, NodeId b,
                            ThreadedRuntime::LinkFault fault) {
  Event e;
  e.at = at;
  e.kind = Event::kLinkFault;
  e.node = a;
  e.peer = b;
  e.fault = fault;
  events_.push_back(std::move(e));
}

void RtNemesis::HealLinkAt(SimTime at, NodeId a, NodeId b) {
  Event e;
  e.at = at;
  e.kind = Event::kHealLink;
  e.node = a;
  e.peer = b;
  events_.push_back(std::move(e));
}

void RtNemesis::HealAllAt(SimTime at) {
  Event e;
  e.at = at;
  e.kind = Event::kHealAll;
  events_.push_back(std::move(e));
}

void RtNemesis::Start() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  started_ = true;
  thread_ = std::thread([this]() { RunSchedule(); });
}

void RtNemesis::Join() {
  if (thread_.joinable()) thread_.join();
}

void RtNemesis::RunSchedule() {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& event : events_) {
    const auto due = t0 + std::chrono::microseconds(event.at);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_until(lk, due, [this]() { return cancel_; });
    if (cancel_) {
      // Teardown mid-schedule: still revive anything we killed so the
      // owner never joins a half-dead cluster.
      lk.unlock();
      for (NodeId node : down_) {
        if (hooks_.restart) hooks_.restart(node);
      }
      down_.clear();
      return;
    }
    lk.unlock();
    Apply(event);
  }
}

void RtNemesis::Apply(const Event& event) {
  switch (event.kind) {
    case Event::kKill: {
      if (down_.count(event.node) > 0) return;
      if (hooks_.kill && hooks_.kill(event.node)) {
        down_.insert(event.node);
        kills_fired_.fetch_add(1);
        faults_injected_.fetch_add(1);
      }
      break;
    }
    case Event::kRestart: {
      if (down_.count(event.node) == 0) return;
      if (hooks_.restart && hooks_.restart(event.node)) {
        down_.erase(event.node);
        restarts_fired_.fetch_add(1);
      }
      break;
    }
    case Event::kPartition: {
      ThreadedRuntime::LinkFault blocked;
      blocked.blocked = true;
      for (NodeId a : event.side_a) {
        for (NodeId b : event.side_b) rt_->SetLinkFault(a, b, blocked);
      }
      partitions_fired_.fetch_add(1);
      faults_injected_.fetch_add(1);
      break;
    }
    case Event::kHealPartition: {
      for (NodeId a : event.side_a) {
        for (NodeId b : event.side_b) rt_->ClearLinkFault(a, b);
      }
      break;
    }
    case Event::kLinkFault: {
      rt_->SetLinkFault(event.node, event.peer, event.fault);
      link_faults_fired_.fetch_add(1);
      faults_injected_.fetch_add(1);
      break;
    }
    case Event::kHealLink: {
      rt_->ClearLinkFault(event.node, event.peer);
      break;
    }
    case Event::kHealAll: {
      rt_->ClearAllLinkFaults();
      for (NodeId node : down_) {
        if (hooks_.restart && hooks_.restart(node)) {
          restarts_fired_.fetch_add(1);
        }
      }
      down_.clear();
      break;
    }
  }
}

std::string RtNemesis::Describe() const {
  std::ostringstream out;
  auto list = [](const std::vector<NodeId>& nodes) {
    std::string s = "{";
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(nodes[i]);
    }
    return s + "}";
  };
  for (const Event& e : events_) {
    out << "  t=" << e.at / 1000 << "ms ";
    switch (e.kind) {
      case Event::kKill:
        out << "kill node " << e.node;
        break;
      case Event::kRestart:
        out << "restart node " << e.node;
        break;
      case Event::kPartition:
        out << "partition " << list(e.side_a) << " | " << list(e.side_b);
        break;
      case Event::kHealPartition:
        out << "heal partition " << list(e.side_a) << " | " << list(e.side_b);
        break;
      case Event::kLinkFault:
        out << "link " << e.node << "<->" << e.peer
            << " delay=" << e.fault.delay / 1000
            << "ms drop=" << e.fault.drop_prob;
        break;
      case Event::kHealLink:
        out << "heal link " << e.node << "<->" << e.peer;
        break;
      case Event::kHealAll:
        out << "heal all (restart dead, clear faults)";
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace carousel::runtime
