#ifndef CAROUSEL_RUNTIME_NET_H_
#define CAROUSEL_RUNTIME_NET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

/// Encode/decode hooks for the TCP transport, injected so the runtime
/// library doesn't depend on the wire codec (which depends on every
/// protocol library). wire::Codec() produces one.
struct WireCodec {
  /// Serializes the message payload (excluding framing).
  std::function<std::vector<uint8_t>(const Message&)> encode;
  /// Appends the payload to `out` instead of allocating a fresh vector;
  /// the transport prefers this hook so pooled frame buffers are reused
  /// across messages. Optional — when unset the transport falls back to
  /// `encode` plus a copy.
  std::function<void(const Message&, std::vector<uint8_t>*)> encode_append;
  /// Reconstructs a message of `type` from payload bytes; returns nullptr
  /// on malformed input (the frame is dropped).
  std::function<MessagePtr(int type, const uint8_t* data, size_t len)> decode;
};

struct NetOptions {
  /// Bound on each peer's egress queue, in frames. When a queue is full
  /// the frame is dropped and counted — the bounded-asynchronous-network
  /// model; protocols mask drops with retries.
  size_t max_egress_frames = 8192;
  /// Frames larger than this on an inbound stream mark it malformed; the
  /// connection is closed (the peer reconnects with a fresh stream).
  size_t max_frame_bytes = 64u << 20;
  /// How many frames one sendmsg() gathers at most (the coalescing cap).
  size_t max_frames_per_batch = 64;
  /// Inbound read chunk per recv() call.
  size_t read_chunk = 128 * 1024;
  /// Encode buffers kept for reuse (per node). Buffers whose capacity
  /// outgrew max_pooled_buffer_bytes are freed instead of pooled.
  size_t max_pooled_buffers = 128;
  size_t max_pooled_buffer_bytes = 1u << 20;
  int listen_backlog = 64;
  /// When nonzero, sets SO_SNDBUF on outbound connections. Tests use a
  /// tiny buffer to force partial writes and EAGAIN deterministically;
  /// production leaves the kernel's auto-tuning alone.
  int so_sndbuf = 0;
};

/// Hot-path counters of one node's TCP endpoint. Writers use relaxed
/// atomics; readers (stats reporting, CI gates) take whole-counter
/// snapshots. The drops_* counters split transport drops by reason:
///   queue_full    — egress queue at max_egress_frames (backpressure)
///   connect_fail  — connect refused/failed, or an established connection
///                   broke with frames still queued (they die with it)
///   decode_fail   — inbound frame the codec rejected, or a frame whose
///                   claimed sender id is out of range
struct NetStats {
  std::atomic<uint64_t> frames_enqueued{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> send_syscalls{0};
  std::atomic<uint64_t> send_eagain{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> drops_queue_full{0};
  std::atomic<uint64_t> drops_connect_fail{0};
  std::atomic<uint64_t> drops_decode_fail{0};
};

/// Plain snapshot of NetStats, summable across nodes. The coalescing
/// factor (frames_sent / send_syscalls) is the transport's efficiency
/// metric: >1 means the writer gathered multiple frames per sendmsg.
struct TransportStats {
  uint64_t frames_enqueued = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t send_syscalls = 0;
  uint64_t send_eagain = 0;
  uint64_t frames_received = 0;
  uint64_t reconnects = 0;
  uint64_t drops_queue_full = 0;
  uint64_t drops_connect_fail = 0;
  uint64_t drops_decode_fail = 0;

  uint64_t dropped_total() const {
    return drops_queue_full + drops_connect_fail + drops_decode_fail;
  }
  double frames_per_syscall() const {
    return send_syscalls == 0
               ? 0.0
               : static_cast<double>(frames_sent) /
                     static_cast<double>(send_syscalls);
  }
  TransportStats& operator+=(const NetStats& s);
};

class NodeNet;

/// One epoll-driven I/O thread shared by one or more NodeNets. Every
/// socket syscall in the transport — connect, accept, sendmsg, recv —
/// happens on this thread; node event-loop threads only enqueue frames
/// and (rarely) write the wakeup eventfd. Sharing one poller across the
/// nodes of a process means a message's send side and its receiver's read
/// side run back to back on the same thread, and one wakeup drains every
/// node's egress in a single pass — the coalescing that makes the
/// transport cheaper than a syscall per message.
///
/// Lifecycle: Init() (epoll + eventfd), attach nets, Start(), Stop()
/// (joins; idempotent). Attach/detach after Start is marshalled onto the
/// I/O thread via RunSync. The epoll/eventfd descriptors stay open until
/// destruction so a racing late Wake() hits a valid (just idle) fd.
class NetPoller {
 public:
  NetPoller();
  ~NetPoller();

  NetPoller(const NetPoller&) = delete;
  NetPoller& operator=(const NetPoller&) = delete;

  /// Creates the epoll instance and wakeup eventfd. Returns false when
  /// unavailable (sandbox); the poller is then inert.
  bool Init();

  /// Launches the I/O thread. Init must have succeeded.
  void Start();

  /// Joins the I/O thread (remaining RunSync tasks are drained first so
  /// no caller is left waiting). Idempotent; fds close at destruction.
  void Stop();

  /// Collapsed eventfd wakeup: only the first caller after a drain pass
  /// pays the write syscall.
  void Wake();

  /// Runs `fn` on the I/O thread and waits for it — the safe way to touch
  /// I/O-thread-owned state (socket teardown, net attach/detach) from
  /// outside. Runs inline when the poller is not running or when already
  /// on the I/O thread.
  void RunSync(std::function<void()> fn);

  bool OnIoThread() const {
    return std::this_thread::get_id() ==
           io_tid_.load(std::memory_order_relaxed);
  }

  /// True when it is safe to touch I/O-thread-owned state: either this is
  /// the I/O thread, or the poller is not running (pre-Start setup and
  /// post-Stop teardown run inline on the caller). Debug asserts use this;
  /// an event-loop thread calling a socket-touching member while the
  /// poller runs is a crash, not a latency mystery.
  bool InIoContext() const {
    return OnIoThread() || !running_.load(std::memory_order_acquire);
  }

 private:
  friend class NodeNet;

  /// What an epoll event points at: epoll_event.data.u64 is an index into
  /// entries_. Freed slots are recycled only after the current event
  /// batch, so a stale event for a just-closed fd dispatches to a slot
  /// marked kFree instead of a new connection.
  enum EvKind : uint8_t { kFree = 0, kWake, kListen, kOut, kIn };
  struct EvEntry {
    EvKind kind = kFree;
    NodeNet* net = nullptr;
    uint32_t idx = 0;
  };

  /// I/O-thread-only (or pre-Start) entry management.
  uint64_t AddEntry(EvKind kind, NodeNet* net, uint32_t idx);
  void FreeEntry(uint64_t id);

  void AttachNet(NodeNet* net);
  void DetachNet(NodeNet* net);

  void IoLoop();
  void RunTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::atomic<bool> stop_{false};
  /// True between Start() and the end of Stop() (set false after the
  /// join, when the caller has inherited the I/O thread's state).
  std::atomic<bool> running_{false};
  /// Collapses per-Send eventfd writes: set by the first waker after the
  /// I/O thread went through a drain pass, cleared by the I/O thread
  /// before it drains. Keeps the wakeup syscall off the per-message path.
  std::atomic<bool> wake_pending_{false};
  std::atomic<std::thread::id> io_tid_{};
  std::thread thread_;

  std::mutex task_mu_;
  std::deque<std::function<void()>> tasks_;

  /// Debug-only loop telemetry (printed when CAROUSEL_NET_DEBUG is set).
  std::atomic<uint64_t> dbg_wake_writes_{0};
  uint64_t dbg_polls_ = 0;
  uint64_t dbg_events_ = 0;

  /// I/O-thread-only (mutated via RunSync once running).
  std::vector<NodeNet*> nets_;
  std::vector<EvEntry> entries_;
  std::vector<uint64_t> free_entries_;
  std::vector<uint64_t> deferred_free_;  // Recycled at the next loop top.
};

/// One node's TCP endpoint: a loopback listener plus all of the node's
/// peer connections, driven by a shared NetPoller. The node's event-loop
/// thread never touches a socket:
///
///   * Send() (any thread) encodes the message into a pooled frame
///     buffer, appends it to the destination's bounded egress queue,
///     marks the destination dirty, and — only when the I/O thread might
///     be parked — writes one eventfd wakeup. No socket syscall, no
///     blocking.
///   * The poller's I/O thread connects lazily and non-blockingly
///     (EINPROGRESS + EPOLLOUT), gathers up to max_frames_per_batch
///     queued frames into a single sendmsg(), resumes partial writes via
///     EPOLLOUT, accepts inbound connections, and parses/decodes inbound
///     frames, handing each decoded message to the deliver callback
///     (which enqueues onto the owner's event loop).
///
/// Frame format on the wire (little-endian), unchanged from the blocking
/// transport it replaces: [u32 len][u32 type][u32 from][payload] with
/// `len` counting everything after itself (8 + payload size).
///
/// Failure semantics: a full egress queue, a failed connect, and a broken
/// connection all drop frames (counted by reason in NetStats) — exactly
/// the asynchronous-network model the protocols already mask with
/// retries. A connection that breaks is re-established by the next Send.
/// Stop() discards whatever is still queued without counting drops (a
/// process teardown is not a network fault).
///
/// In debug builds every socket-touching member asserts it runs on the
/// poller's I/O thread, so an event-loop thread blocking in send/connect
/// is a crash, not a latency mystery.
class NodeNet {
 public:
  /// Delivery hook for decoded inbound messages; runs on the I/O thread,
  /// must not block (the runtime's hook bulk-enqueues onto the owner's
  /// loop). Called once per drain pass with every message decoded since
  /// the last call — one loop wakeup amortized over the whole batch.
  /// The callee moves the messages out but leaves the vector itself
  /// intact, so its allocation is reused pass over pass.
  using DeliverFn =
      std::function<void(std::vector<std::pair<NodeId, MessagePtr>>& msgs)>;

  NodeNet(NodeId id, size_t num_nodes, NetPoller* poller, WireCodec codec,
          DeliverFn deliver, NetOptions options = {});
  ~NodeNet();

  NodeNet(const NodeNet&) = delete;
  NodeNet& operator=(const NodeNet&) = delete;

  /// Binds the loopback listener (port 0 = OS-assigned). Returns false
  /// when sockets are unavailable (sandbox); the object is then inert and
  /// only Stop()/destruction is valid. Call before Start().
  bool Bind(uint16_t port = 0);

  /// The bound listener port (valid after Bind).
  uint16_t port() const { return port_; }

  /// Installs peer `node`'s listener port. Thread-safe; normally all
  /// ports are installed between Bind and Start, but tests move a peer
  /// (restart on a new port) mid-run.
  void SetPeerPort(NodeId node, uint16_t port);

  /// Attaches this net (and its listener) to the poller and starts
  /// accepting. Bind must have succeeded. Safe while the poller runs.
  void Start();

  /// Detaches from the poller and closes every fd (listener and all
  /// connections — no reader state survives). Queued egress is discarded
  /// uncounted. Idempotent; the destructor calls it.
  void Stop();

  /// Encodes and enqueues one frame for `to`. Returns false when the
  /// frame was dropped (queue full or transport stopped); queue-full
  /// drops are counted in stats. Thread-safe, non-blocking, and never
  /// touches a socket (the eventfd wakeup is the one syscall, paid only
  /// when the I/O thread may be parked).
  bool Send(NodeId to, const Message& msg);

  const NetStats& stats() const { return stats_; }

 private:
  friend class NetPoller;

  struct OutConn {
    // Shared with senders (guarded by egress_mu_).
    std::deque<std::vector<uint8_t>> pending;
    bool dirty = false;  // Queued on dirty_ for the next drain pass.
    // I/O-thread-only write state.
    int fd = -1;
    uint64_t entry = 0;
    bool connecting = false;
    bool want_write = false;  // EPOLLOUT armed.
    std::deque<std::vector<uint8_t>> inflight;
    size_t offset = 0;  // Bytes of inflight.front() already written.
  };
  struct InConn {
    int fd = -1;
    uint64_t entry = 0;
    /// Capacity-managed read buffer: valid bytes are [pos, len); the
    /// vector is resized only when it grows, so recv() never pays a
    /// value-initializing memset of the read chunk.
    std::vector<uint8_t> buf;
    size_t pos = 0;  // Parse cursor.
    size_t len = 0;  // Bytes received and not yet consumed past.
  };

  /// All I/O-thread-only.
  void DrainEgress();
  void FlushInbound();
  void EnsureConnected(NodeId peer);
  void OnConnectWritable(NodeId peer);
  void TryWrite(NodeId peer);
  void CloseOut(NodeId peer, bool count_drops);
  void AcceptNew();
  void OnReadable(size_t slot);
  void CloseIn(size_t slot);
  void UpdateOutEvents(NodeId peer, bool want_write);
  void CloseAll();

  std::vector<uint8_t> GetBuffer();
  void PutBuffer(std::vector<uint8_t> buf);

  const NodeId id_;
  NetPoller* const poller_;
  const WireCodec codec_;
  const DeliverFn deliver_;
  const NetOptions options_;

  int listen_fd_ = -1;
  uint64_t listen_entry_ = 0;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};

  std::mutex egress_mu_;
  std::vector<OutConn> out_;     // Indexed by peer NodeId.
  std::vector<NodeId> dirty_;    // Peers with new frames since last drain.
  /// Cheap pre-check so a drain pass skips egress_mu_ when this net has
  /// nothing queued (the common case with many nets on one poller).
  std::atomic<bool> any_dirty_{false};
  /// I/O-thread-only scratch that dirty_ swaps into each drain pass.
  std::vector<NodeId> drain_scratch_;

  std::mutex peer_mu_;
  std::vector<uint16_t> peer_ports_;

  std::mutex pool_mu_;
  std::vector<std::vector<uint8_t>> pool_;

  std::vector<InConn> in_;  // Slot map; closed slots have fd == -1.
  /// Messages decoded this pass, bulk-delivered by FlushInbound.
  /// I/O-thread-only.
  std::vector<std::pair<NodeId, MessagePtr>> rx_batch_;

  NetStats stats_;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_NET_H_
