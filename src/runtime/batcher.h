#ifndef CAROUSEL_RUNTIME_BATCHER_H_
#define CAROUSEL_RUNTIME_BATCHER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

class Endpoint;

/// Per-destination egress coalescer: messages an endpoint sends to the
/// same destination within a short window leave as one BatchEnvelopeMsg
/// instead of N separate wire messages. The first message buffered for a
/// destination arms a flush timer `flush_interval` out; everything sent
/// before it fires joins the batch, and the queue also flushes early the
/// moment it reaches `max_items`. Every message therefore waits at most
/// one window — the price of coalescing — which is why batching is an
/// opt-in for throughput experiments rather than always-on.
///
/// Per-destination FIFO is preserved: batches carry their items in send
/// order and the sim network's fifo_pairs option keeps (from, to)
/// deliveries ordered. Crashing the owner drops buffered messages (Clear),
/// exactly like messages sitting in a real process's socket buffer.
///
/// The batcher lives entirely on the owner's execution context (the sim
/// thread, or the owner's event-loop thread): Send, Flush and the timer
/// callback all run there, so no locking is needed under either backend.
class MessageBatcher {
 public:
  struct Options {
    /// How long the first buffered message waits before the queue
    /// flushes. Should sit well under protocol timeouts.
    SimTime flush_interval = 50;
    /// Flush as soon as a window holds this many messages.
    size_t max_items = 64;
  };

  struct Stats {
    uint64_t envelopes = 0;         // Flushes that produced an envelope.
    uint64_t enveloped_items = 0;   // Messages carried inside envelopes.
    uint64_t single_flushes = 0;    // Windows that held just one message.
  };

  /// `owner` must outlive the batcher and be registered with a transport
  /// before the first Send.
  MessageBatcher(Endpoint* owner, Options options)
      : owner_(owner), options_(options) {}

  /// Buffers `msg` for `to` and arms the flush timer if the queue was
  /// empty. Never batches loopback (to == owner): the in-process handoff
  /// is already cheap and delaying it only distorts local latencies.
  void Send(NodeId to, MessagePtr msg);

  /// Sends whatever is buffered for `to` right now (early flush).
  void Flush(NodeId to);

  /// Drops all buffered messages and invalidates scheduled flushes; called
  /// from the owner's OnCrash.
  void Clear();

  const Stats& stats() const { return stats_; }

 private:
  struct Queue {
    std::vector<MessagePtr> items;
    /// Invalidates in-flight flush callbacks (early flush, crash).
    uint64_t epoch = 0;
    bool flush_scheduled = false;
  };

  Queue& QueueFor(NodeId to) {
    if (queues_.size() <= static_cast<size_t>(to)) queues_.resize(to + 1);
    return queues_[to];
  }

  Endpoint* owner_;
  Options options_;
  std::vector<Queue> queues_;  // Indexed by destination node id.
  Stats stats_;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_BATCHER_H_
