#include "runtime/net.h"

#include <netinet/in.h>
#include <sched.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace carousel::runtime {

namespace {

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

constexpr size_t kFrameHeaderBytes = 12;
constexpr size_t kMaxIov = 64;

}  // namespace

TransportStats& TransportStats::operator+=(const NetStats& s) {
  const auto ld = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  frames_enqueued += ld(s.frames_enqueued);
  frames_sent += ld(s.frames_sent);
  bytes_sent += ld(s.bytes_sent);
  send_syscalls += ld(s.send_syscalls);
  send_eagain += ld(s.send_eagain);
  frames_received += ld(s.frames_received);
  reconnects += ld(s.reconnects);
  drops_queue_full += ld(s.drops_queue_full);
  drops_connect_fail += ld(s.drops_connect_fail);
  drops_decode_fail += ld(s.drops_decode_fail);
  return *this;
}

// --------------------------------------------------------------- poller --

NetPoller::NetPoller() = default;

NetPoller::~NetPoller() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool NetPoller::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return false;
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return false;
  // Slot 0 is the wakeup entry, so entry id 0 never names a connection
  // (nets use 0 as "no entry").
  const uint64_t id = AddEntry(kWake, nullptr, 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0;
}

void NetPoller::Start() {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() { IoLoop(); });
}

void NetPoller::Stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    thread_.join();
    if (std::getenv("CAROUSEL_NET_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "net-poller: polls=%llu events=%llu wake-writes=%llu\n",
                   static_cast<unsigned long long>(dbg_polls_),
                   static_cast<unsigned long long>(dbg_events_),
                   static_cast<unsigned long long>(
                       dbg_wake_writes_.load(std::memory_order_relaxed)));
    }
  }
  io_tid_.store(std::thread::id{}, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
  // Any RunSync task that raced the shutdown still completes (inline, on
  // this thread — the I/O thread is gone so its state is ours now).
  RunTasks();
}

void NetPoller::Wake() {
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    dbg_wake_writes_.fetch_add(1, std::memory_order_relaxed);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void NetPoller::RunSync(std::function<void()> fn) {
  if (!thread_.joinable() || OnIoThread() ||
      stop_.load(std::memory_order_acquire)) {
    fn();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  {
    std::lock_guard<std::mutex> lk(task_mu_);
    tasks_.push_back([&]() {
      fn();
      std::lock_guard<std::mutex> dlk(mu);
      done = true;
      cv.notify_one();
    });
  }
  Wake();
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&]() { return done; });
}

uint64_t NetPoller::AddEntry(EvKind kind, NodeNet* net, uint32_t idx) {
  uint64_t id;
  if (!free_entries_.empty()) {
    id = free_entries_.back();
    free_entries_.pop_back();
  } else {
    id = entries_.size();
    entries_.emplace_back();
  }
  entries_[id] = EvEntry{kind, net, idx};
  return id;
}

void NetPoller::FreeEntry(uint64_t id) {
  entries_[id] = EvEntry{};
  // Not reusable until the next loop iteration: a stale event for the
  // closed fd may still sit in the current epoll batch.
  deferred_free_.push_back(id);
}

void NetPoller::AttachNet(NodeNet* net) { nets_.push_back(net); }

void NetPoller::DetachNet(NodeNet* net) {
  nets_.erase(std::remove(nets_.begin(), nets_.end(), net), nets_.end());
}

void NetPoller::RunTasks() {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lk(task_mu_);
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void NetPoller::IoLoop() {
  io_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    free_entries_.insert(free_entries_.end(), deferred_free_.begin(),
                         deferred_free_.end());
    deferred_free_.clear();
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone; shutdown race.
    }
    dbg_polls_++;
    dbg_events_ += static_cast<uint64_t>(n);
    for (int i = 0; i < n; ++i) {
      const EvEntry e = entries_[events[i].data.u64];
      const uint32_t evs = events[i].events;
      switch (e.kind) {
        case kFree:
          break;  // fd closed earlier in this batch.
        case kWake: {
          uint64_t drain;
          [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
          break;
        }
        case kListen:
          e.net->AcceptNew();
          break;
        case kOut: {
          const NodeId peer = static_cast<NodeId>(e.idx);
          NodeNet::OutConn& c = e.net->out_[peer];
          if (c.fd < 0) break;
          if ((evs & (EPOLLERR | EPOLLHUP)) != 0 && !c.connecting) {
            e.net->CloseOut(peer, /*count_drops=*/true);
            break;
          }
          if ((evs & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
            if (c.connecting) {
              e.net->OnConnectWritable(peer);
            } else {
              e.net->TryWrite(peer);
            }
          }
          break;
        }
        case kIn:
          if (e.idx < e.net->in_.size() && e.net->in_[e.idx].fd >= 0) {
            e.net->OnReadable(e.idx);
          }
          break;
      }
    }
    RunTasks();
    if (stop_.load(std::memory_order_acquire)) return;
    // End of pass: hand each net's decoded inbound to its owner loop in
    // one bulk enqueue (one lock, one wakeup), then gather egress. Clear
    // the wakeup flag BEFORE draining: a sender that enqueues after this
    // store either lands in the drain below or sees the flag false and
    // writes the eventfd, so no frame is ever stranded.
    for (NodeNet* net : nets_) net->FlushInbound();
    wake_pending_.store(false, std::memory_order_release);
    for (NodeNet* net : nets_) net->DrainEgress();
  }
}

// -------------------------------------------------------------- NodeNet --

NodeNet::NodeNet(NodeId id, size_t num_nodes, NetPoller* poller,
                 WireCodec codec, DeliverFn deliver, NetOptions options)
    : id_(id),
      poller_(poller),
      codec_(std::move(codec)),
      deliver_(std::move(deliver)),
      options_(options),
      out_(num_nodes),
      peer_ports_(num_nodes, 0) {}

NodeNet::~NodeNet() { Stop(); }

bool NodeNet::Bind(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

void NodeNet::SetPeerPort(NodeId node, uint16_t port) {
  std::lock_guard<std::mutex> lk(peer_mu_);
  peer_ports_.at(node) = port;
}

void NodeNet::Start() {
  poller_->RunSync([this]() {
    poller_->AttachNet(this);
    listen_entry_ = poller_->AddEntry(NetPoller::kListen, this, 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = listen_entry_;
    ::epoll_ctl(poller_->epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  });
  running_.store(true, std::memory_order_release);
}

void NodeNet::Stop() {
  running_.store(false, std::memory_order_release);
  poller_->RunSync([this]() {
    CloseAll();
    poller_->DetachNet(this);
  });
}

void NodeNet::CloseAll() {
  // Runs on the I/O thread (or inline once the poller has stopped).
  // Messages already decoded still deliver; queued egress is discarded
  // uncounted — teardown is not a network fault.
  FlushInbound();
  for (NodeId peer = 0; peer < static_cast<NodeId>(out_.size()); ++peer) {
    OutConn& c = out_[peer];
    if (c.fd >= 0) {
      ::close(c.fd);
      if (c.entry != 0) poller_->FreeEntry(c.entry);
    }
    c.fd = -1;
    c.entry = 0;
    c.connecting = false;
    c.want_write = false;
    c.inflight.clear();
    c.offset = 0;
  }
  {
    std::lock_guard<std::mutex> lk(egress_mu_);
    for (OutConn& c : out_) {
      c.pending.clear();
      c.dirty = false;
    }
    dirty_.clear();
    any_dirty_.store(false, std::memory_order_relaxed);
  }
  for (InConn& c : in_) {
    if (c.fd >= 0) {
      ::close(c.fd);
      if (c.entry != 0) poller_->FreeEntry(c.entry);
    }
    c.fd = -1;
    c.entry = 0;
    c.buf.clear();
  }
  in_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (listen_entry_ != 0) poller_->FreeEntry(listen_entry_);
  }
  listen_fd_ = -1;
  listen_entry_ = 0;
}

std::vector<uint8_t> NodeNet::GetBuffer() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_.empty()) return {};
  std::vector<uint8_t> buf = std::move(pool_.back());
  pool_.pop_back();
  return buf;
}

void NodeNet::PutBuffer(std::vector<uint8_t> buf) {
  if (buf.capacity() > options_.max_pooled_buffer_bytes) return;
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_.size() >= options_.max_pooled_buffers) return;
  buf.clear();
  pool_.push_back(std::move(buf));
}

bool NodeNet::Send(NodeId to, const Message& msg) {
  if (!running_.load(std::memory_order_acquire)) return false;
  std::vector<uint8_t> frame = GetBuffer();
  frame.resize(kFrameHeaderBytes);
  if (codec_.encode_append) {
    codec_.encode_append(msg, &frame);
  } else {
    const std::vector<uint8_t> payload = codec_.encode(msg);
    frame.insert(frame.end(), payload.begin(), payload.end());
  }
  PutU32(frame.data(), static_cast<uint32_t>(frame.size() - 4));
  PutU32(frame.data() + 4, static_cast<uint32_t>(msg.type()));
  PutU32(frame.data() + 8, static_cast<uint32_t>(id_));
  {
    std::lock_guard<std::mutex> lk(egress_mu_);
    OutConn& c = out_.at(to);
    if (c.pending.size() >= options_.max_egress_frames) {
      stats_.drops_queue_full.fetch_add(1, std::memory_order_relaxed);
      PutBuffer(std::move(frame));
      return false;
    }
    c.pending.push_back(std::move(frame));
    if (!c.dirty) {
      c.dirty = true;
      dirty_.push_back(to);
    }
    any_dirty_.store(true, std::memory_order_release);
  }
  stats_.frames_enqueued.fetch_add(1, std::memory_order_relaxed);
  poller_->Wake();
  return true;
}

void NodeNet::FlushInbound() {
  assert(poller_->InIoContext());
  if (rx_batch_.empty()) return;
  deliver_(rx_batch_);  // Moves the messages out, keeps the allocation.
  rx_batch_.clear();
}

void NodeNet::DrainEgress() {
  assert(poller_->InIoContext());
  if (!any_dirty_.load(std::memory_order_acquire)) return;
  // Swap out the dirty list so senders keep enqueueing while we write.
  // Peers parked on EAGAIN resume via EPOLLOUT, not here; peers mid-
  // connect flush from OnConnectWritable.
  drain_scratch_.clear();
  {
    std::lock_guard<std::mutex> lk(egress_mu_);
    any_dirty_.store(false, std::memory_order_relaxed);
    if (dirty_.empty()) return;
    drain_scratch_.swap(dirty_);
    for (NodeId peer : drain_scratch_) out_[peer].dirty = false;
  }
  for (NodeId peer : drain_scratch_) {
    OutConn& c = out_[peer];
    if (c.fd < 0) EnsureConnected(peer);
    if (c.fd >= 0 && !c.connecting && !c.want_write) TryWrite(peer);
  }
}

void NodeNet::EnsureConnected(NodeId peer) {
  assert(poller_->InIoContext() &&
         "connect() runs only on the net I/O thread, never a loop thread");
  OutConn& c = out_[peer];
  if (c.fd >= 0) return;
  uint16_t port;
  {
    std::lock_guard<std::mutex> lk(peer_mu_);
    port = peer_ports_[peer];
  }
  const int fd =
      port == 0
          ? -1
          : ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    CloseOut(peer, /*count_drops=*/true);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof(options_.so_sndbuf));
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    CloseOut(peer, /*count_drops=*/true);
    return;
  }
  c.fd = fd;
  c.connecting = rc != 0;
  c.want_write = c.connecting;  // Completion is signaled by writability.
  c.entry = poller_->AddEntry(NetPoller::kOut, this, static_cast<uint32_t>(peer));
  epoll_event ev{};
  ev.events = EPOLLRDHUP | (c.connecting ? uint32_t{EPOLLOUT} : 0u);
  ev.data.u64 = c.entry;
  if (::epoll_ctl(poller_->epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    poller_->FreeEntry(c.entry);
    c.fd = -1;
    c.entry = 0;
    c.connecting = false;
    c.want_write = false;
    CloseOut(peer, /*count_drops=*/true);
  }
}

void NodeNet::OnConnectWritable(NodeId peer) {
  assert(poller_->InIoContext());
  OutConn& c = out_[peer];
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    CloseOut(peer, /*count_drops=*/true);
    return;
  }
  c.connecting = false;
  UpdateOutEvents(peer, /*want_write=*/false);
  TryWrite(peer);
}

void NodeNet::UpdateOutEvents(NodeId peer, bool want_write) {
  OutConn& c = out_[peer];
  if (c.fd < 0 || c.want_write == want_write) {
    c.want_write = want_write;
    return;
  }
  c.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLRDHUP | (want_write ? uint32_t{EPOLLOUT} : 0u);
  ev.data.u64 = c.entry;
  ::epoll_ctl(poller_->epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void NodeNet::TryWrite(NodeId peer) {
  assert(poller_->InIoContext() &&
         "socket writes run only on the net I/O thread, never a loop thread");
  OutConn& c = out_[peer];
  for (;;) {
    if (c.inflight.size() < options_.max_frames_per_batch) {
      std::lock_guard<std::mutex> lk(egress_mu_);
      while (!c.pending.empty() &&
             c.inflight.size() < options_.max_frames_per_batch) {
        c.inflight.push_back(std::move(c.pending.front()));
        c.pending.pop_front();
      }
    }
    if (c.inflight.empty()) {
      if (c.want_write) UpdateOutEvents(peer, false);
      return;
    }
    iovec iov[kMaxIov];
    size_t iovcnt = 0;
    size_t off = c.offset;
    for (auto& frame : c.inflight) {
      if (iovcnt == options_.max_frames_per_batch || iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = frame.data() + off;
      iov[iovcnt].iov_len = frame.size() - off;
      off = 0;
      ++iovcnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        stats_.send_eagain.fetch_add(1, std::memory_order_relaxed);
        if (!c.want_write) UpdateOutEvents(peer, true);
        return;
      }
      CloseOut(peer, /*count_drops=*/true);
      return;
    }
    stats_.send_syscalls.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
    size_t rem = static_cast<size_t>(n);
    uint64_t completed = 0;
    while (rem > 0) {
      std::vector<uint8_t>& frame = c.inflight.front();
      const size_t left = frame.size() - c.offset;
      if (rem < left) {
        c.offset += rem;  // Partial frame; resume from here next round.
        rem = 0;
        break;
      }
      rem -= left;
      c.offset = 0;
      ++completed;
      PutBuffer(std::move(frame));
      c.inflight.pop_front();
    }
    if (completed > 0) {
      stats_.frames_sent.fetch_add(completed, std::memory_order_relaxed);
    }
  }
}

void NodeNet::CloseOut(NodeId peer, bool count_drops) {
  assert(poller_->InIoContext());
  OutConn& c = out_[peer];
  if (c.fd >= 0) {
    ::close(c.fd);  // Kernel removes it from the epoll set.
    if (c.entry != 0) poller_->FreeEntry(c.entry);
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  c.fd = -1;
  c.entry = 0;
  c.connecting = false;
  c.want_write = false;
  c.offset = 0;
  size_t lost = c.inflight.size();
  for (auto& frame : c.inflight) PutBuffer(std::move(frame));
  c.inflight.clear();
  {
    std::lock_guard<std::mutex> lk(egress_mu_);
    lost += c.pending.size();
    for (auto& frame : c.pending) PutBuffer(std::move(frame));
    c.pending.clear();
  }
  if (count_drops && lost > 0) {
    stats_.drops_connect_fail.fetch_add(lost, std::memory_order_relaxed);
  }
}

void NodeNet::AcceptNew() {
  assert(poller_->InIoContext() &&
         "accept() runs only on the net I/O thread, never a loop thread");
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener shut down.
    }
    size_t slot = in_.size();
    for (size_t i = 0; i < in_.size(); ++i) {
      if (in_[i].fd < 0) {
        slot = i;
        break;
      }
    }
    if (slot == in_.size()) in_.emplace_back();
    InConn& c = in_[slot];
    c.fd = fd;
    c.buf.clear();
    c.pos = 0;
    c.len = 0;
    c.entry = poller_->AddEntry(NetPoller::kIn, this, static_cast<uint32_t>(slot));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = c.entry;
    if (::epoll_ctl(poller_->epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseIn(slot);
    }
  }
}

void NodeNet::OnReadable(size_t slot) {
  assert(poller_->InIoContext() &&
         "socket reads run only on the net I/O thread, never a loop thread");
  InConn& c = in_[slot];
  for (;;) {
    // Make at least read_chunk bytes of tail room: compact the consumed
    // prefix first, grow the buffer only as a last resort. The grow is the
    // sole (one-time) memset; steady state reuses the same allocation.
    if (c.buf.size() - c.len < options_.read_chunk) {
      if (c.pos > 0) {
        std::memmove(c.buf.data(), c.buf.data() + c.pos, c.len - c.pos);
        c.len -= c.pos;
        c.pos = 0;
      }
      if (c.buf.size() - c.len < options_.read_chunk) {
        c.buf.resize(c.len + options_.read_chunk);
      }
    }
    const size_t room = c.buf.size() - c.len;
    const ssize_t n = ::recv(c.fd, c.buf.data() + c.len, room, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseIn(slot);
      return;
    }
    if (n == 0) {  // Peer closed; the buffered tail can hold no full frame.
      CloseIn(slot);
      return;
    }
    c.len += static_cast<size_t>(n);
    // Parse complete frames: [u32 len][u32 type][u32 from][payload].
    uint64_t received = 0;
    while (c.len - c.pos >= kFrameHeaderBytes) {
      const uint8_t* p = c.buf.data() + c.pos;
      const uint32_t len = GetU32(p);
      if (len < 8 || len > options_.max_frame_bytes) {
        if (received > 0) {
          stats_.frames_received.fetch_add(received, std::memory_order_relaxed);
        }
        CloseIn(slot);  // Malformed stream; the peer reconnects fresh.
        return;
      }
      if (c.len - c.pos < 4 + static_cast<size_t>(len)) break;
      const uint32_t type = GetU32(p + 4);
      const NodeId from = static_cast<NodeId>(GetU32(p + 8));
      MessagePtr msg = codec_.decode(static_cast<int>(type), p + 12, len - 8);
      if (msg == nullptr || static_cast<size_t>(from) >= out_.size()) {
        stats_.drops_decode_fail.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++received;
        rx_batch_.emplace_back(from, std::move(msg));
      }
      c.pos += 4 + static_cast<size_t>(len);
    }
    if (received > 0) {
      stats_.frames_received.fetch_add(received, std::memory_order_relaxed);
    }
    if (c.pos == c.len) {  // Fully parsed; reuse the buffer from the top.
      c.pos = 0;
      c.len = 0;
    }
    if (static_cast<size_t>(n) < room) break;  // Drained.
  }
}

void NodeNet::CloseIn(size_t slot) {
  assert(poller_->InIoContext());
  InConn& c = in_[slot];
  if (c.fd >= 0) {
    ::close(c.fd);
    if (c.entry != 0) poller_->FreeEntry(c.entry);
  }
  c.fd = -1;
  c.entry = 0;
  c.buf.clear();
  c.buf.shrink_to_fit();
  c.pos = 0;
  c.len = 0;
}

}  // namespace carousel::runtime
