#include "runtime/threaded.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace carousel::runtime {

namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------- clock --

SteadyClock::SteadyClock() : start_nanos_(MonotonicNanos()) {}

SimTime SteadyClock::now() const {
  return (MonotonicNanos() - start_nanos_) / 1000;
}

// ----------------------------------------------------------- event loop --

EventLoop::EventLoop(const Clock* clock, size_t max_inbound)
    : clock_(clock), max_inbound_(max_inbound) {}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Schedule(SimTime delay, EventFn fn) {
  ScheduleAt(clock_->now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventLoop::ScheduleAt(SimTime t, EventFn fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    timers_.push_back(Timer{t, next_timer_seq_++, std::move(fn)});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  }
  cv_.notify_one();
}

void EventLoop::Post(EventFn fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool EventLoop::PostMessage(NodeId from, MessagePtr msg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ || inbound_.size() >= max_inbound_) {
      // A stopped (killed) node accepts no input; overflow is the bounded
      // asynchronous-network model. Either way, a counted drop.
      dropped_++;
      return false;
    }
    inbound_.emplace_back(from, std::move(msg));
    posted_++;
  }
  // Notify after unlock so the woken loop thread doesn't immediately
  // block on mu_ held here.
  cv_.notify_one();
  return true;
}

void EventLoop::PostMessages(std::vector<std::pair<NodeId, MessagePtr>>& msgs) {
  if (msgs.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [from, msg] : msgs) {
      if (stop_ || inbound_.size() >= max_inbound_) {
        dropped_++;
        continue;
      }
      inbound_.emplace_back(from, std::move(msg));
      posted_++;
    }
  }
  cv_.notify_one();
}

void EventLoop::Start(Endpoint* endpoint) {
  endpoint_ = endpoint;
  thread_ = std::thread([this]() { Run(); });
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      // Already stopping; just make sure the thread is joined below.
    }
    stop_ = true;
    cv_.notify_one();
  }
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Restart(Endpoint* endpoint) {
  if (thread_.joinable()) thread_.join();  // Stop() normally already did.
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Nothing volatile survives the kill: queued messages, posted tasks
    // and armed timers of the previous life are gone.
    inbound_.clear();
    tasks_.clear();
    timers_.clear();
    stop_ = false;
    endpoint_ = endpoint;
  }
  thread_ = std::thread([this]() { Run(); });
}

bool EventLoop::stopped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stop_;
}

uint64_t EventLoop::dropped_messages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

uint64_t EventLoop::posted_messages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return posted_;
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<std::pair<NodeId, MessagePtr>> msgs;
  std::vector<EventFn> work;
  while (!stop_) {
    const SimTime now = clock_->now();
    if (inbound_.empty() && tasks_.empty() &&
        (timers_.empty() || timers_.front().at > now)) {
      if (timers_.empty()) {
        cv_.wait(lk);
      } else {
        cv_.wait_for(lk,
                     std::chrono::microseconds(timers_.front().at - now));
      }
      continue;
    }
    // Drain one batch of work under the lock, then run it unlocked so
    // handlers can freely Schedule/Post/Send (including to this loop).
    msgs.clear();
    work.clear();
    while (!inbound_.empty()) {
      msgs.push_back(std::move(inbound_.front()));
      inbound_.pop_front();
    }
    while (!tasks_.empty()) {
      work.push_back(std::move(tasks_.front()));
      tasks_.pop_front();
    }
    std::vector<EventFn> due;
    while (!timers_.empty() && timers_.front().at <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      due.push_back(std::move(timers_.back().fn));
      timers_.pop_back();
    }
    lk.unlock();
    for (auto& [from, msg] : msgs) endpoint_->HandleMessage(from, msg);
    for (auto& fn : work) fn();
    for (auto& fn : due) fn();
    msgs.clear();
    work.clear();
    lk.lock();
  }
}

// -------------------------------------------------------------- runtime --

ThreadedRuntime::ThreadedRuntime(size_t num_nodes,
                                 ThreadedRuntimeOptions options)
    : options_(std::move(options)) {
  loops_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    loops_.push_back(
        std::make_unique<EventLoop>(&clock_, options_.max_inbound_queue));
  }
  endpoints_.resize(num_nodes, nullptr);
}

ThreadedRuntime::~ThreadedRuntime() { Stop(); }

void ThreadedRuntime::Register(Endpoint* endpoint) {
  endpoint->BindRuntime(this, &clock_, loops_[endpoint->id()].get());
  endpoints_[endpoint->id()] = endpoint;
}

bool ThreadedRuntime::Start() {
  if (options_.use_tcp && !StartTcp()) return false;
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->Start(endpoints_[i]);
  }
  started_ = true;
  return true;
}

void ThreadedRuntime::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Transport first: once the nets are down no I/O thread can deliver
  // into a loop, so the loops drain and join without new inbound work.
  for (auto& net : nets_) {
    if (net != nullptr) net->Stop();
  }
  if (poller_ != nullptr) poller_->Stop();
  for (auto& loop : loops_) loop->Stop();
}

void ThreadedRuntime::Send(NodeId from, NodeId to, MessagePtr msg) {
  if (from != to && faults_active_.load(std::memory_order_relaxed)) {
    SimTime delay = 0;
    {
      std::lock_guard<std::mutex> lk(fault_mu_);
      auto it = faults_.find(LinkKey(from, to));
      if (it != faults_.end()) {
        const LinkFault& fault = it->second;
        if (fault.blocked) {
          fault_dropped_++;
          return;
        }
        if (fault.drop_prob > 0.0 &&
            std::uniform_real_distribution<double>(0.0, 1.0)(fault_rng_) <
                fault.drop_prob) {
          fault_dropped_++;
          return;
        }
        delay = fault.delay;
      }
    }
    if (delay > 0) {
      // In TCP mode the delayed write must still happen on the sender's
      // loop thread (frames on an edge never interleave); in-process the
      // receiver's loop is the natural carrier. A stopped carrier loop
      // discards the timer — a drop, as a dead link would.
      EventLoop* carrier = loops_[options_.use_tcp ? from : to].get();
      carrier->Schedule(delay, [this, from, to, m = std::move(msg)]() {
        DeliverDirect(from, to, m);
      });
      return;
    }
  }
  DeliverDirect(from, to, std::move(msg));
}

void ThreadedRuntime::DeliverDirect(NodeId from, NodeId to, MessagePtr msg) {
  if (!options_.use_tcp || from == to) {
    // In-process handoff: the receiver's loop takes a reference to the
    // same immutable message. Loopback always takes this path — a real
    // process doesn't route to itself through the kernel either.
    loops_[to]->PostMessage(from, std::move(msg));
    return;
  }
  if (nets_.empty()) {
    // TCP requested but the transport never came up (StartTcp failed).
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Encode + enqueue on the sender's NodeNet; never touches a socket on
  // this (the loop) thread. Drops are counted inside the net by reason.
  nets_[from]->Send(to, *msg);
}

void ThreadedRuntime::SetLinkFault(NodeId a, NodeId b, const LinkFault& fault) {
  if (a == b) return;
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_[LinkKey(a, b)] = fault;
  faults_[LinkKey(b, a)] = fault;
  faults_active_.store(true, std::memory_order_relaxed);
}

void ThreadedRuntime::ClearLinkFault(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_.erase(LinkKey(a, b));
  faults_.erase(LinkKey(b, a));
  if (faults_.empty()) faults_active_.store(false, std::memory_order_relaxed);
}

void ThreadedRuntime::ClearAllLinkFaults() {
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_.clear();
  faults_active_.store(false, std::memory_order_relaxed);
}

uint64_t ThreadedRuntime::fault_dropped_messages() const {
  std::lock_guard<std::mutex> lk(fault_mu_);
  return fault_dropped_;
}

void ThreadedRuntime::StopNode(NodeId id) { loops_[id]->Stop(); }

void ThreadedRuntime::RestartNode(Endpoint* endpoint) {
  const NodeId id = endpoint->id();
  endpoint->BindRuntime(this, &clock_, loops_[id].get());
  endpoints_[id] = endpoint;
  loops_[id]->Restart(endpoint);
}

uint64_t ThreadedRuntime::dropped_messages() const {
  uint64_t total = dropped_.load(std::memory_order_relaxed);
  for (const auto& loop : loops_) total += loop->dropped_messages();
  TransportStats net;
  for (const auto& n : nets_) {
    if (n != nullptr) net += n->stats();
  }
  return total + net.dropped_total();
}

uint64_t ThreadedRuntime::posted_messages() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->posted_messages();
  return total;
}

TransportStats ThreadedRuntime::transport_stats() const {
  TransportStats total;
  for (const auto& net : nets_) {
    if (net != nullptr) total += net->stats();
  }
  return total;
}

bool ThreadedRuntime::StartTcp() {
  poller_ = std::make_unique<NetPoller>();
  if (!poller_->Init()) {
    poller_.reset();
    return false;
  }
  const size_t n = loops_.size();
  nets_.reserve(n);
  // Bind every node's listener first so all ports are known before the
  // I/O thread (and hence any connect) starts.
  for (size_t i = 0; i < n; ++i) {
    const NodeId owner = static_cast<NodeId>(i);
    // The deliver hook runs on the I/O thread once per drain pass and
    // hands everything decoded for this node to its event loop in one
    // bounded, non-blocking bulk enqueue that counts its own drops.
    auto deliver = [this,
                    owner](std::vector<std::pair<NodeId, MessagePtr>>& msgs) {
      loops_[owner]->PostMessages(msgs);
    };
    nets_.push_back(std::make_unique<NodeNet>(owner, n, poller_.get(),
                                              options_.codec,
                                              std::move(deliver),
                                              options_.net));
    if (!nets_.back()->Bind()) {
      nets_.clear();
      poller_.reset();
      return false;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t peer = 0; peer < n; ++peer) {
      nets_[i]->SetPeerPort(static_cast<NodeId>(peer), nets_[peer]->port());
    }
  }
  // Attach runs inline (the poller thread isn't up yet); Start it last.
  for (auto& net : nets_) net->Start();
  poller_->Start();
  return true;
}

}  // namespace carousel::runtime
