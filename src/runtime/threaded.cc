#include "runtime/threaded.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>

namespace carousel::runtime {

namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes all of `len` bytes; returns false on error/EOF.
bool WriteAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes; returns false on error/EOF.
bool ReadAll(int fd, uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

// ---------------------------------------------------------------- clock --

SteadyClock::SteadyClock() : start_nanos_(MonotonicNanos()) {}

SimTime SteadyClock::now() const {
  return (MonotonicNanos() - start_nanos_) / 1000;
}

// ----------------------------------------------------------- event loop --

EventLoop::EventLoop(const Clock* clock, size_t max_inbound)
    : clock_(clock), max_inbound_(max_inbound) {}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Schedule(SimTime delay, EventFn fn) {
  ScheduleAt(clock_->now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventLoop::ScheduleAt(SimTime t, EventFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  timers_.push_back(Timer{t, next_timer_seq_++, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  cv_.notify_one();
}

void EventLoop::Post(EventFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  tasks_.push_back(std::move(fn));
  cv_.notify_one();
}

bool EventLoop::PostMessage(NodeId from, MessagePtr msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_ || inbound_.size() >= max_inbound_) {
    // A stopped (killed) node accepts no input; overflow is the bounded
    // asynchronous-network model. Either way, a counted drop.
    dropped_++;
    return false;
  }
  inbound_.emplace_back(from, std::move(msg));
  cv_.notify_one();
  return true;
}

void EventLoop::Start(Endpoint* endpoint) {
  endpoint_ = endpoint;
  thread_ = std::thread([this]() { Run(); });
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      // Already stopping; just make sure the thread is joined below.
    }
    stop_ = true;
    cv_.notify_one();
  }
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Restart(Endpoint* endpoint) {
  if (thread_.joinable()) thread_.join();  // Stop() normally already did.
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Nothing volatile survives the kill: queued messages, posted tasks
    // and armed timers of the previous life are gone.
    inbound_.clear();
    tasks_.clear();
    timers_.clear();
    stop_ = false;
    endpoint_ = endpoint;
  }
  thread_ = std::thread([this]() { Run(); });
}

bool EventLoop::stopped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stop_;
}

uint64_t EventLoop::dropped_messages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<std::pair<NodeId, MessagePtr>> msgs;
  std::vector<EventFn> work;
  while (!stop_) {
    const SimTime now = clock_->now();
    if (inbound_.empty() && tasks_.empty() &&
        (timers_.empty() || timers_.front().at > now)) {
      if (timers_.empty()) {
        cv_.wait(lk);
      } else {
        cv_.wait_for(lk,
                     std::chrono::microseconds(timers_.front().at - now));
      }
      continue;
    }
    // Drain one batch of work under the lock, then run it unlocked so
    // handlers can freely Schedule/Post/Send (including to this loop).
    msgs.clear();
    work.clear();
    while (!inbound_.empty()) {
      msgs.push_back(std::move(inbound_.front()));
      inbound_.pop_front();
    }
    while (!tasks_.empty()) {
      work.push_back(std::move(tasks_.front()));
      tasks_.pop_front();
    }
    std::vector<EventFn> due;
    while (!timers_.empty() && timers_.front().at <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      due.push_back(std::move(timers_.back().fn));
      timers_.pop_back();
    }
    lk.unlock();
    for (auto& [from, msg] : msgs) endpoint_->HandleMessage(from, msg);
    for (auto& fn : work) fn();
    for (auto& fn : due) fn();
    msgs.clear();
    work.clear();
    lk.lock();
  }
}

// ------------------------------------------------------------------ TCP --

struct ThreadedRuntime::TcpState {
  /// Listening socket + accept thread per node; the accept thread spawns
  /// one reader thread per inbound connection.
  std::vector<int> listen_fds;
  std::vector<uint16_t> ports;
  std::vector<std::thread> accept_threads;
  std::mutex reader_mu;
  std::vector<std::thread> reader_threads;
  std::vector<int> reader_fds;
  /// Outbound connections, [from][to]; opened lazily by the sender.
  std::mutex conn_mu;
  std::vector<std::vector<int>> conns;
  std::atomic<bool> shutting_down{false};
};

// -------------------------------------------------------------- runtime --

ThreadedRuntime::ThreadedRuntime(size_t num_nodes,
                                 ThreadedRuntimeOptions options)
    : options_(std::move(options)) {
  loops_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    loops_.push_back(
        std::make_unique<EventLoop>(&clock_, options_.max_inbound_queue));
  }
  endpoints_.resize(num_nodes, nullptr);
}

ThreadedRuntime::~ThreadedRuntime() { Stop(); }

void ThreadedRuntime::Register(Endpoint* endpoint) {
  endpoint->BindRuntime(this, &clock_, loops_[endpoint->id()].get());
  endpoints_[endpoint->id()] = endpoint;
}

bool ThreadedRuntime::Start() {
  if (options_.use_tcp && !StartTcp()) return false;
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->Start(endpoints_[i]);
  }
  started_ = true;
  return true;
}

void ThreadedRuntime::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (tcp_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(tcp_->conn_mu);
      tcp_->shutting_down = true;
      for (auto& row : tcp_->conns) {
        for (int fd : row) {
          if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
        }
      }
    }
    for (int fd : tcp_->listen_fds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    {
      std::lock_guard<std::mutex> lk(tcp_->reader_mu);
      for (int fd : tcp_->reader_fds) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : tcp_->accept_threads) {
      if (t.joinable()) t.join();
    }
    {
      std::lock_guard<std::mutex> lk(tcp_->reader_mu);
      for (auto& t : tcp_->reader_threads) {
        if (t.joinable()) t.join();
      }
    }
    for (int fd : tcp_->listen_fds) {
      if (fd >= 0) ::close(fd);
    }
    {
      std::lock_guard<std::mutex> lk(tcp_->conn_mu);
      for (auto& row : tcp_->conns) {
        for (int fd : row) {
          if (fd >= 0) ::close(fd);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(tcp_->reader_mu);
      for (int fd : tcp_->reader_fds) ::close(fd);
    }
  }
  for (auto& loop : loops_) loop->Stop();
}

void ThreadedRuntime::Send(NodeId from, NodeId to, MessagePtr msg) {
  if (from != to && faults_active_.load(std::memory_order_relaxed)) {
    SimTime delay = 0;
    {
      std::lock_guard<std::mutex> lk(fault_mu_);
      auto it = faults_.find(LinkKey(from, to));
      if (it != faults_.end()) {
        const LinkFault& fault = it->second;
        if (fault.blocked) {
          fault_dropped_++;
          return;
        }
        if (fault.drop_prob > 0.0 &&
            std::uniform_real_distribution<double>(0.0, 1.0)(fault_rng_) <
                fault.drop_prob) {
          fault_dropped_++;
          return;
        }
        delay = fault.delay;
      }
    }
    if (delay > 0) {
      // In TCP mode the delayed write must still happen on the sender's
      // loop thread (frames on an edge never interleave); in-process the
      // receiver's loop is the natural carrier. A stopped carrier loop
      // discards the timer — a drop, as a dead link would.
      EventLoop* carrier = loops_[options_.use_tcp ? from : to].get();
      carrier->Schedule(delay, [this, from, to, m = std::move(msg)]() {
        DeliverDirect(from, to, m);
      });
      return;
    }
  }
  DeliverDirect(from, to, std::move(msg));
}

void ThreadedRuntime::DeliverDirect(NodeId from, NodeId to, MessagePtr msg) {
  if (!options_.use_tcp || from == to) {
    // In-process handoff: the receiver's loop takes a reference to the
    // same immutable message. Loopback always takes this path — a real
    // process doesn't route to itself through the kernel either.
    loops_[to]->PostMessage(from, std::move(msg));
    return;
  }
  SendTcp(from, to, *msg);
}

void ThreadedRuntime::SetLinkFault(NodeId a, NodeId b, const LinkFault& fault) {
  if (a == b) return;
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_[LinkKey(a, b)] = fault;
  faults_[LinkKey(b, a)] = fault;
  faults_active_.store(true, std::memory_order_relaxed);
}

void ThreadedRuntime::ClearLinkFault(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_.erase(LinkKey(a, b));
  faults_.erase(LinkKey(b, a));
  if (faults_.empty()) faults_active_.store(false, std::memory_order_relaxed);
}

void ThreadedRuntime::ClearAllLinkFaults() {
  std::lock_guard<std::mutex> lk(fault_mu_);
  faults_.clear();
  faults_active_.store(false, std::memory_order_relaxed);
}

uint64_t ThreadedRuntime::fault_dropped_messages() const {
  std::lock_guard<std::mutex> lk(fault_mu_);
  return fault_dropped_;
}

void ThreadedRuntime::StopNode(NodeId id) { loops_[id]->Stop(); }

void ThreadedRuntime::RestartNode(Endpoint* endpoint) {
  const NodeId id = endpoint->id();
  endpoint->BindRuntime(this, &clock_, loops_[id].get());
  endpoints_[id] = endpoint;
  loops_[id]->Restart(endpoint);
}

uint64_t ThreadedRuntime::dropped_messages() const {
  uint64_t total;
  {
    std::lock_guard<std::mutex> lk(drop_mu_);
    total = dropped_;
  }
  for (const auto& loop : loops_) total += loop->dropped_messages();
  return total;
}

bool ThreadedRuntime::StartTcp() {
  tcp_ = std::make_unique<TcpState>();
  const size_t n = loops_.size();
  tcp_->listen_fds.assign(n, -1);
  tcp_->ports.assign(n, 0);
  tcp_->conns.assign(n, std::vector<int>(n, -1));

  // Bind all listeners first so every node's port is known before any
  // loop thread (and hence any send) starts.
  for (size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return false;
    }
    tcp_->listen_fds[i] = fd;
    tcp_->ports[i] = ntohs(addr.sin_port);
  }

  for (size_t i = 0; i < n; ++i) {
    const int listen_fd = tcp_->listen_fds[i];
    const NodeId owner = static_cast<NodeId>(i);
    tcp_->accept_threads.emplace_back([this, listen_fd, owner]() {
      for (;;) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) {
          if (errno == EINTR) continue;
          return;  // Listener shut down.
        }
        std::lock_guard<std::mutex> lk(tcp_->reader_mu);
        if (tcp_->shutting_down) {
          ::close(conn);
          return;
        }
        tcp_->reader_fds.push_back(conn);
        tcp_->reader_threads.emplace_back(
            [this, conn, owner]() { ReadFrames(conn, owner); });
      }
    });
  }
  return true;
}

void ThreadedRuntime::SendTcp(NodeId from, NodeId to, const Message& msg) {
  // Frame: [u32 len][u32 type][i32 from][payload], len counting
  // everything after itself. The payload is the codec's encoding, whose
  // size the wire tests pin to Message::SizeBytes() — the same accounting
  // the simulator's bandwidth model charges.
  std::vector<uint8_t> payload = options_.codec.encode(msg);
  std::vector<uint8_t> frame(12 + payload.size());
  PutU32(frame.data(), static_cast<uint32_t>(8 + payload.size()));
  PutU32(frame.data() + 4, static_cast<uint32_t>(msg.type()));
  PutU32(frame.data() + 8, static_cast<uint32_t>(from));
  std::memcpy(frame.data() + 12, payload.data(), payload.size());

  int fd;
  {
    std::lock_guard<std::mutex> lk(tcp_->conn_mu);
    if (tcp_->shutting_down) return;
    fd = tcp_->conns[from][to];
    if (fd < 0) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        std::lock_guard<std::mutex> dlk(drop_mu_);
        dropped_++;
        return;
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(tcp_->ports[to]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        ::close(fd);
        std::lock_guard<std::mutex> dlk(drop_mu_);
        dropped_++;
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      tcp_->conns[from][to] = fd;
    }
  }
  // All sends on a (from, to) edge originate on from's loop thread, so
  // frames never interleave and writes need no lock.
  if (!WriteAll(fd, frame.data(), frame.size())) {
    std::lock_guard<std::mutex> dlk(drop_mu_);
    dropped_++;
  }
}

void ThreadedRuntime::ReadFrames(int fd, NodeId to) {
  // Each node has its own listening socket, so this reader drains frames
  // destined for exactly one node: the listener's owner.
  for (;;) {
    uint8_t header[12];
    if (!ReadAll(fd, header, sizeof(header))) return;
    const uint32_t len = GetU32(header);
    if (len < 8 || len > (64u << 20)) return;  // Malformed stream.
    const uint32_t type = GetU32(header + 4);
    const NodeId from = static_cast<NodeId>(GetU32(header + 8));
    std::vector<uint8_t> payload(len - 8);
    if (!payload.empty() && !ReadAll(fd, payload.data(), payload.size())) {
      return;
    }
    MessagePtr msg = options_.codec.decode(static_cast<int>(type),
                                           payload.data(), payload.size());
    if (msg == nullptr || static_cast<size_t>(from) >= loops_.size()) {
      std::lock_guard<std::mutex> dlk(drop_mu_);
      dropped_++;
      continue;
    }
    loops_[to]->PostMessage(from, std::move(msg));
  }
}

}  // namespace carousel::runtime
