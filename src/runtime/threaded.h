#ifndef CAROUSEL_RUNTIME_THREADED_H_
#define CAROUSEL_RUNTIME_THREADED_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/endpoint.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

/// Real time for the threaded backend: microseconds of monotonic clock
/// elapsed since construction, so SimTime stays "micros since the start of
/// the run" under both backends.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  SimTime now() const override;

 private:
  int64_t start_nanos_;
};

class ThreadedRuntime;

/// One node's event loop: a thread draining an inbound message queue, a
/// run-soon task queue, and a timer min-heap. Everything an endpoint does
/// (message handlers, timer callbacks, posted closures) runs on this one
/// thread, preserving the actor model the protocols were written against —
/// handlers for a node never run concurrently with each other.
class EventLoop final : public TimerQueue {
 public:
  EventLoop(const Clock* clock, size_t max_inbound);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// TimerQueue: callable from any thread (typically this loop's own).
  void Schedule(SimTime delay, EventFn fn) override;
  void ScheduleAt(SimTime t, EventFn fn) override;

  /// Runs `fn` on the loop thread as soon as possible. Thread-safe; the
  /// harness uses this to drive client API calls onto client loops.
  void Post(EventFn fn);

  /// Enqueues an inbound message for the endpoint. Returns false (and
  /// counts a drop) when the bounded queue is full — the asynchronous
  /// network model; protocols mask it with retries. Thread-safe.
  bool PostMessage(NodeId from, MessagePtr msg);

  /// Launches the loop thread delivering to `endpoint`.
  void Start(Endpoint* endpoint);

  /// Stops and joins the loop thread; pending work is discarded.
  void Stop();

  uint64_t dropped_messages() const;

 private:
  struct Timer {
    SimTime at = 0;
    uint64_t seq = 0;
    EventFn fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void Run();

  const Clock* clock_;
  const size_t max_inbound_;
  Endpoint* endpoint_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<std::pair<NodeId, MessagePtr>> inbound_;
  std::deque<EventFn> tasks_;
  std::vector<Timer> timers_;  // Min-heap by (at, seq).
  uint64_t next_timer_seq_ = 0;
  uint64_t dropped_ = 0;
  std::thread thread_;
};

/// Encode/decode hooks for the TCP transport, injected so the runtime
/// library doesn't depend on the wire codec (which depends on every
/// protocol library). wire::Codec() produces one.
struct WireCodec {
  /// Serializes the message payload (excluding framing).
  std::function<std::vector<uint8_t>(const Message&)> encode;
  /// Reconstructs a message of `type` from payload bytes; returns nullptr
  /// on malformed input (the frame is dropped).
  std::function<MessagePtr(int type, const uint8_t* data, size_t len)> decode;
};

struct ThreadedRuntimeOptions {
  /// Bound on each node's inbound message queue; overflow drops.
  size_t max_inbound_queue = 65536;
  /// When true, inter-node messages travel over localhost TCP sockets
  /// (serialized with `codec`); when false they are handed across loops
  /// in-process as shared pointers.
  bool use_tcp = false;
  WireCodec codec;
};

/// Backend #2 of the runtime seam: one event-loop thread per node on a
/// shared monotonic clock, with either in-process or localhost-TCP message
/// transport. No fault injection, no cost model, no determinism — this is
/// the "as fast as the hardware allows" deployment shape; the simulator
/// remains the substrate for reproducible experiments.
class ThreadedRuntime final : public Transport {
 public:
  /// Creates loops for nodes 0..num_nodes-1 (ids are dense, as in the
  /// simulator's Topology).
  ThreadedRuntime(size_t num_nodes, ThreadedRuntimeOptions options);
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  Clock* clock() { return &clock_; }
  EventLoop* loop(NodeId id) { return loops_[id].get(); }

  /// Executor handle for constructing node `id`'s endpoint.
  NodeEnv MakeEnv(NodeId id, carousel::Rng rng) {
    return NodeEnv{&clock_, loops_[id].get(), std::move(rng)};
  }

  /// Registers node `id`'s endpoint; must be called for every id before
  /// Start. Binds the endpoint's runtime hooks to this transport.
  void Register(Endpoint* endpoint);

  /// Opens sockets (TCP mode) and launches all loop threads. Returns
  /// false if TCP setup fails (e.g. sockets unavailable in a sandbox);
  /// the runtime is then unusable and only Stop/destruction is valid.
  bool Start();

  /// Stops and joins all loop and socket threads. Idempotent.
  void Stop();

  /// Transport: in-process handoff or TCP frame, per options. Loopback
  /// (from == to) is always a direct in-process handoff.
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  /// Messages dropped across all nodes (full queues, encode failures,
  /// dead connections).
  uint64_t dropped_messages() const;

 private:
  struct TcpState;

  bool StartTcp();
  void SendTcp(NodeId from, NodeId to, const Message& msg);
  void ReadFrames(int fd, NodeId to);

  ThreadedRuntimeOptions options_;
  SteadyClock clock_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<Endpoint*> endpoints_;
  bool started_ = false;
  bool stopped_ = false;
  std::unique_ptr<TcpState> tcp_;
  mutable std::mutex drop_mu_;
  uint64_t dropped_ = 0;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_THREADED_H_
