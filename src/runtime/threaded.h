#ifndef CAROUSEL_RUNTIME_THREADED_H_
#define CAROUSEL_RUNTIME_THREADED_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/endpoint.h"
#include "runtime/net.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

/// Real time for the threaded backend: microseconds of monotonic clock
/// elapsed since construction, so SimTime stays "micros since the start of
/// the run" under both backends.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  SimTime now() const override;

 private:
  int64_t start_nanos_;
};

class ThreadedRuntime;

/// One node's event loop: a thread draining an inbound message queue, a
/// run-soon task queue, and a timer min-heap. Everything an endpoint does
/// (message handlers, timer callbacks, posted closures) runs on this one
/// thread, preserving the actor model the protocols were written against —
/// handlers for a node never run concurrently with each other.
class EventLoop final : public TimerQueue {
 public:
  EventLoop(const Clock* clock, size_t max_inbound);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// TimerQueue: callable from any thread (typically this loop's own).
  void Schedule(SimTime delay, EventFn fn) override;
  void ScheduleAt(SimTime t, EventFn fn) override;

  /// Runs `fn` on the loop thread as soon as possible. Thread-safe; the
  /// harness uses this to drive client API calls onto client loops.
  void Post(EventFn fn);

  /// Enqueues an inbound message for the endpoint. Returns false (and
  /// counts a drop) when the bounded queue is full — the asynchronous
  /// network model; protocols mask it with retries. Thread-safe.
  bool PostMessage(NodeId from, MessagePtr msg);

  /// Bulk PostMessage: one lock and one wakeup for the whole batch (the
  /// TCP I/O thread delivers everything it decoded in a drain pass this
  /// way). Moves the messages out of `msgs` but leaves the vector intact
  /// for reuse. Messages past the queue bound are dropped and counted
  /// individually. Thread-safe.
  void PostMessages(std::vector<std::pair<NodeId, MessagePtr>>& msgs);

  /// Launches the loop thread delivering to `endpoint`.
  void Start(Endpoint* endpoint);

  /// Stops and joins the loop thread; pending work is discarded. While
  /// stopped, PostMessage drops (counted) — a dead process accepts no
  /// input — and posted tasks/timers accumulate only to be cleared by
  /// Restart. Idempotent.
  void Stop();

  /// Relaunches a stopped loop for `endpoint` (typically a fresh one
  /// recovered from durable storage). All queued messages, tasks and
  /// timers from the previous life are discarded first — the SIGKILL
  /// model: nothing volatile survives.
  void Restart(Endpoint* endpoint);

  bool stopped() const;

  uint64_t dropped_messages() const;

  /// Messages accepted onto this loop's inbound queue over its lifetime.
  /// Monotone; tests poll the cluster-wide sum for quiescence (the count
  /// stops moving once no node is generating traffic).
  uint64_t posted_messages() const;

 private:
  struct Timer {
    SimTime at = 0;
    uint64_t seq = 0;
    EventFn fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void Run();

  const Clock* clock_;
  const size_t max_inbound_;
  Endpoint* endpoint_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<std::pair<NodeId, MessagePtr>> inbound_;
  std::deque<EventFn> tasks_;
  std::vector<Timer> timers_;  // Min-heap by (at, seq).
  uint64_t next_timer_seq_ = 0;
  uint64_t dropped_ = 0;
  uint64_t posted_ = 0;
  std::thread thread_;
};

struct ThreadedRuntimeOptions {
  /// Bound on each node's inbound message queue; overflow drops.
  size_t max_inbound_queue = 65536;
  /// When true, inter-node messages travel over localhost TCP sockets
  /// (serialized with `codec`, carried by per-node NodeNet I/O threads);
  /// when false they are handed across loops in-process as shared
  /// pointers. WireCodec lives in runtime/net.h; wire::Codec() makes one.
  bool use_tcp = false;
  WireCodec codec;
  /// Transport tuning (egress bound, coalescing cap, buffer pool sizes).
  NetOptions net;
};

/// Backend #2 of the runtime seam: one event-loop thread per node on a
/// shared monotonic clock, with either in-process or localhost-TCP message
/// transport. No fault injection, no cost model, no determinism — this is
/// the "as fast as the hardware allows" deployment shape; the simulator
/// remains the substrate for reproducible experiments.
class ThreadedRuntime final : public Transport {
 public:
  /// Creates loops for nodes 0..num_nodes-1 (ids are dense, as in the
  /// simulator's Topology).
  ThreadedRuntime(size_t num_nodes, ThreadedRuntimeOptions options);
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  Clock* clock() { return &clock_; }
  EventLoop* loop(NodeId id) { return loops_[id].get(); }

  /// Executor handle for constructing node `id`'s endpoint. `storage`
  /// (optional) attaches durable node state; the endpoint persists through
  /// it and recovers from it after a kill/restart cycle.
  NodeEnv MakeEnv(NodeId id, carousel::Rng rng, Storage* storage = nullptr) {
    return NodeEnv{&clock_, loops_[id].get(), std::move(rng), storage};
  }

  /// Registers node `id`'s endpoint; must be called for every id before
  /// Start. Binds the endpoint's runtime hooks to this transport.
  void Register(Endpoint* endpoint);

  /// Opens sockets (TCP mode) and launches all loop threads. Returns
  /// false if TCP setup fails (e.g. sockets unavailable in a sandbox);
  /// the runtime is then unusable and only Stop/destruction is valid.
  bool Start();

  /// Stops and joins all loop and socket threads. Idempotent.
  void Stop();

  /// Transport: in-process handoff or TCP frame, per options. Loopback
  /// (from == to) is always a direct in-process handoff.
  void Send(NodeId from, NodeId to, MessagePtr msg) override;

  /// ---- Fault injection (RT nemesis) ----
  /// Per-link fault policy, applied at the send side of the transport —
  /// before serialization in TCP mode, so a partitioned link carries no
  /// frames at all. Normal-path cost when no fault is installed is one
  /// relaxed atomic load.
  struct LinkFault {
    /// Drop everything (network partition).
    bool blocked = false;
    /// Drop each message independently with this probability.
    double drop_prob = 0.0;
    /// Delay each surviving message by this many microseconds.
    SimTime delay = 0;
  };

  /// Installs `fault` on the (a, b) link in both directions, replacing any
  /// previous fault on it. Loopback (a == b) is never faulted.
  void SetLinkFault(NodeId a, NodeId b, const LinkFault& fault);
  /// Removes the fault on (a, b), both directions.
  void ClearLinkFault(NodeId a, NodeId b);
  /// Removes every installed link fault (partition heal-all).
  void ClearAllLinkFaults();
  /// Messages dropped by blocked links and probabilistic loss — the proof
  /// that an injected partition actually carried traffic away.
  uint64_t fault_dropped_messages() const;

  /// ---- Node kill/restart (RT nemesis) ----
  /// SIGKILL-equivalent: joins node `id`'s loop thread and discards its
  /// queued work; messages to it drop until RestartNode. The node's
  /// listener socket stays open in TCP mode (its frames drain into the
  /// drop counter), so peers keep their connections.
  void StopNode(NodeId id);
  /// Re-registers `endpoint` (a fresh object, typically recovered from
  /// durable storage) as node endpoint->id() and restarts its loop.
  void RestartNode(Endpoint* endpoint);
  bool node_stopped(NodeId id) const { return loops_[id]->stopped(); }

  /// Messages dropped across all nodes: full inbound queues plus every
  /// transport drop (queue-full, connect-fail, decode-fail). Fault drops
  /// are counted separately.
  uint64_t dropped_messages() const;

  /// Messages accepted onto any node's inbound queue (monotone). Tests
  /// poll this for quiescence instead of sleeping a fixed settle period.
  uint64_t posted_messages() const;

  /// Aggregated TCP transport counters across all nodes (all zero in
  /// in-process mode). Per-reason drop counts and the egress coalescing
  /// factor (frames per sendmsg syscall) live here.
  TransportStats transport_stats() const;

 private:
  bool StartTcp();
  /// The fault-free delivery path (in-process handoff or TCP frame).
  void DeliverDirect(NodeId from, NodeId to, MessagePtr msg);
  static uint64_t LinkKey(NodeId from, NodeId to) {
    return static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32 |
           static_cast<uint32_t>(to);
  }

  ThreadedRuntimeOptions options_;
  SteadyClock clock_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<Endpoint*> endpoints_;
  bool started_ = false;
  bool stopped_ = false;
  /// Shared epoll I/O thread carrying every node's sockets (null in
  /// in-process mode). Declared before nets_ so the nets detach from a
  /// live poller on destruction.
  std::unique_ptr<NetPoller> poller_;
  /// One TCP endpoint per node (empty in in-process mode); each owns its
  /// listener and peer connections, driven by poller_.
  std::vector<std::unique_ptr<NodeNet>> nets_;
  /// Runtime-level drops (e.g. TCP sends before the transport is up).
  /// Per-site transport drops live in each NodeNet's stats; this is an
  /// atomic so drop sites never serialize on a shared mutex.
  std::atomic<uint64_t> dropped_{0};

  /// Fast-path guard: senders consult the fault table only when at least
  /// one fault is installed.
  std::atomic<bool> faults_active_{false};
  mutable std::mutex fault_mu_;
  std::unordered_map<uint64_t, LinkFault> faults_;
  std::mt19937_64 fault_rng_{0x9e3779b97f4a7c15ull};
  uint64_t fault_dropped_ = 0;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_THREADED_H_
