#include "runtime/batcher.h"

#include <utility>

#include "runtime/arena.h"
#include "runtime/endpoint.h"

namespace carousel::runtime {

void MessageBatcher::Send(NodeId to, MessagePtr msg) {
  if (to == owner_->id()) {
    owner_->Send(to, std::move(msg));
    return;
  }
  Queue& q = QueueFor(to);
  q.items.push_back(std::move(msg));
  if (q.items.size() >= options_.max_items) {
    Flush(to);
    return;
  }
  if (!q.flush_scheduled) {
    q.flush_scheduled = true;
    const uint64_t epoch = q.epoch;
    owner_->Schedule(options_.flush_interval, [this, to, epoch]() {
      Queue& cur = QueueFor(to);
      if (cur.epoch != epoch) return;
      Flush(to);
    });
  }
}

void MessageBatcher::Flush(NodeId to) {
  Queue& q = QueueFor(to);
  q.epoch++;  // Any scheduled callback for the old window is now stale.
  q.flush_scheduled = false;
  if (q.items.empty()) return;
  if (q.items.size() == 1) {
    stats_.single_flushes++;
    MessagePtr only = std::move(q.items.front());
    q.items.clear();
    owner_->Send(to, std::move(only));
    return;
  }
  stats_.envelopes++;
  stats_.enveloped_items += q.items.size();
  auto envelope = MakeMessage<sim::BatchEnvelopeMsg>();
  envelope->items = std::move(q.items);
  q.items.clear();
  owner_->Send(to, std::move(envelope));
}

void MessageBatcher::Clear() {
  for (Queue& q : queues_) {
    q.items.clear();
    q.epoch++;
    q.flush_scheduled = false;
  }
}

}  // namespace carousel::runtime
