#ifndef CAROUSEL_RUNTIME_ARENA_H_
#define CAROUSEL_RUNTIME_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace carousel::runtime {

// Arena-backed message allocation. Every protocol message lives exactly
// one delivery: allocated at send, dropped when the last handler lets the
// shared_ptr go. make_shared puts each of those short-lived control-block+
// payload pairs through the global allocator — at bench load that is
// hundreds of thousands of malloc/free pairs per simulated second and a
// measurable slice of wall-clock. MessageArena recycles the blocks
// instead: frees push onto a per-size free list, allocations pop, and
// fresh memory is only carved (in chunks) when a list runs dry.
//
// The pools are thread_local: under the simulator everything stays on the
// one simulation thread; under the threaded backend each event-loop thread
// recycles its own blocks with no locking. A message allocated on one
// thread can be released on another (in-process transport hands the same
// shared_ptr across loops), which simply donates the block to the
// releasing thread's pool — chunks are never freed, so blocks stay valid
// wherever they end up.
//
// Under ASan/MSan/TSan the pool is disabled (plain make_shared) so the
// sanitizers keep seeing every message's true lifetime.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CAROUSEL_MESSAGE_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer) || \
    __has_feature(thread_sanitizer)
#define CAROUSEL_MESSAGE_POOL_DISABLED 1
#endif
#endif

namespace arena_internal {

/// One free list of `Size`-byte, `Align`-aligned blocks, per thread.
/// Blocks are carved from chunk allocations (64 at a time) that are
/// deliberately never released: a block freed on a different thread than
/// the one that carved it must stay valid for that thread's pool to
/// reuse, so chunks live for the life of the process.
template <size_t Size, size_t Align>
class BlockPool {
 public:
  static BlockPool& Instance() {
    static thread_local BlockPool pool;
    return pool;
  }

  void* Get() {
    if (free_.empty()) Refill();
    void* p = free_.back();
    free_.pop_back();
    return p;
  }

  void Put(void* p) { free_.push_back(p); }

 private:
  static constexpr size_t kChunkBlocks = 64;

  void Refill() {
    char* chunk = static_cast<char*>(
        ::operator new(Size * kChunkBlocks, std::align_val_t(Align)));
    for (size_t i = 0; i < kChunkBlocks; ++i) {
      free_.push_back(chunk + i * Size);
    }
  }

  std::vector<void*> free_;
};

/// Allocator handed to allocate_shared: routes the single-object
/// allocation (control block + message, one `U` per message) through the
/// matching BlockPool; anything else falls back to the heap.
template <typename U>
struct PoolAllocator {
  using value_type = U;

  PoolAllocator() = default;
  template <typename V>
  PoolAllocator(const PoolAllocator<V>&) {}

  U* allocate(size_t n) {
    if (n == 1) {
      return static_cast<U*>(
          BlockPool<sizeof(U), alignof(U)>::Instance().Get());
    }
    return std::allocator<U>().allocate(n);
  }
  void deallocate(U* p, size_t n) {
    if (n == 1) {
      BlockPool<sizeof(U), alignof(U)>::Instance().Put(p);
      return;
    }
    std::allocator<U>().deallocate(p, n);
  }

  template <typename V>
  bool operator==(const PoolAllocator<V>&) const {
    return true;
  }
};

}  // namespace arena_internal

/// Drop-in replacement for std::make_shared for message structs (and any
/// other short-lived object): same value semantics, recycled storage.
template <typename T, typename... Args>
std::shared_ptr<T> MakeMessage(Args&&... args) {
#ifdef CAROUSEL_MESSAGE_POOL_DISABLED
  return std::make_shared<T>(std::forward<Args>(args)...);
#else
  return std::allocate_shared<T>(arena_internal::PoolAllocator<T>(),
                                 std::forward<Args>(args)...);
#endif
}

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_ARENA_H_
