#ifndef CAROUSEL_RUNTIME_RUNTIME_H_
#define CAROUSEL_RUNTIME_RUNTIME_H_

#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/event_fn.h"
#include "sim/message.h"

namespace carousel::runtime {

/// The message DTO layer is substrate-neutral: every backend moves the
/// same sim::Message structs, whether by pointer handoff (simulator,
/// in-process threads) or serialized over a socket. Aliased here so code
/// written against the runtime seam never names the sim namespace.
using Message = sim::Message;
using MessagePtr = sim::MessagePtr;

/// Time source of a deployment. The discrete-event simulator implements it
/// with its virtual clock; the threaded backend with the monotonic clock.
/// All times are microseconds since the start of the run (SimTime), so
/// protocol code is oblivious to which one it runs under.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the start of the run.
  virtual SimTime now() const = 0;
};

/// Deferred-execution service. Under the simulator, callbacks interleave
/// deterministically with message deliveries on the virtual clock; under
/// the threaded backend each node's timers fire on that node's event-loop
/// thread at monotonic-clock deadlines. Either way a node's callbacks
/// never run concurrently with its message handlers.
class TimerQueue {
 public:
  virtual ~TimerQueue() = default;

  /// Runs `fn` `delay` microseconds from now (clamped to >= 0).
  virtual void Schedule(SimTime delay, EventFn fn) = 0;

  /// Runs `fn` at absolute time `t` (clamped to >= now()).
  virtual void ScheduleAt(SimTime t, EventFn fn) = 0;
};

/// Message fabric between endpoints. Send() is fire-and-forget and may
/// drop (crashed endpoints, injected loss, full inbound queues) — the
/// asynchronous-network model of paper §3.1; protocols mask drops with
/// timers and retransmissions. Delivery happens via
/// Endpoint::HandleMessage on the receiving endpoint's execution context.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void Send(NodeId from, NodeId to, MessagePtr msg) = 0;
};

class Storage;  // runtime/storage.h — durable node state (threaded backend).

/// Per-node executor handle: everything a protocol component needs from
/// its hosting substrate at construction time, before the node is
/// registered with a transport. The simulator hands out {sim, sim, fork};
/// the threaded backend hands out {shared steady clock, the node's own
/// timer queue, fork}. The Rng is moved in by value so each node owns an
/// independent deterministic stream. `storage`, when non-null, is the
/// node's durable state layer (WAL + snapshot) — the simulator leaves it
/// null and keeps its in-memory crash model.
struct NodeEnv {
  Clock* clock = nullptr;
  TimerQueue* timers = nullptr;
  carousel::Rng rng;
  Storage* storage = nullptr;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_RUNTIME_H_
