#ifndef CAROUSEL_RUNTIME_ENDPOINT_H_
#define CAROUSEL_RUNTIME_ENDPOINT_H_

#include <utility>

#include "common/types.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

/// An actor in a deployment: a server process or a client library
/// instance. Endpoints receive messages via HandleMessage and send through
/// their bound transport; they never share state directly. Under the
/// simulator every endpoint runs on the one simulation thread; under the
/// threaded backend each endpoint owns an event-loop thread and all of its
/// handlers and timer callbacks run there.
class Endpoint {
 public:
  Endpoint(NodeId id, DcId dc) : id_(id), dc_(dc) {}
  virtual ~Endpoint() = default;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }
  DcId dc() const { return dc_; }
  bool alive() const { return alive_; }

  /// Delivers a message; `from` is the sender's node id.
  virtual void HandleMessage(NodeId from, const MessagePtr& msg) = 0;

  /// CPU time (microseconds) this endpoint spends processing `msg`.
  /// Consulted only by backends that model CPU queueing (the simulator);
  /// the threaded backend spends real CPU instead. Clients return 0.
  virtual SimTime ServiceCost(const Message& msg) const {
    (void)msg;
    return 0;
  }

  /// Called by the failure injector when the node crashes / recovers.
  /// Fault injection is a simulator-backend feature; the threaded backend
  /// never calls these.
  virtual void OnCrash() {}
  virtual void OnRecover() {}

  /// Number of CPU cores processing messages in parallel under the
  /// simulator's cost model. Message costs (ServiceCost) occupy one core
  /// each; more cores means proportionally more capacity before queueing.
  int cores() const { return cores_; }
  void set_cores(int cores) { cores_ = cores < 1 ? 1 : cores; }

  /// ---- Backend binding (backends only) ----

  /// Binds this endpoint to its substrate; called exactly once by the
  /// backend when the endpoint is registered, before any send or timer.
  void BindRuntime(Transport* transport, Clock* clock, TimerQueue* timers) {
    transport_ = transport;
    clock_ = clock;
    timers_ = timers;
  }

  /// Liveness flip for fault injection (simulator backend only).
  void set_alive(bool alive) { alive_ = alive; }

  /// ---- Substrate access (valid after registration) ----

  Transport* transport() const { return transport_; }
  Clock* clock() const { return clock_; }
  TimerQueue* timers() const { return timers_; }

  /// Sends `msg` from this endpoint.
  void Send(NodeId to, MessagePtr msg) {
    transport_->Send(id_, to, std::move(msg));
  }

  SimTime now() const { return clock_->now(); }

  void Schedule(SimTime delay, EventFn fn) {
    timers_->Schedule(delay, std::move(fn));
  }

 private:
  NodeId id_;
  DcId dc_;
  bool alive_ = true;
  int cores_ = 1;
  Transport* transport_ = nullptr;
  Clock* clock_ = nullptr;
  TimerQueue* timers_ = nullptr;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_ENDPOINT_H_
