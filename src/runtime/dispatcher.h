#ifndef CAROUSEL_RUNTIME_DISPATCHER_H_
#define CAROUSEL_RUNTIME_DISPATCHER_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace carousel::runtime {

/// Typed message dispatcher: maps a MessageType tag to exactly one checked
/// handler. Protocol modules register handlers with On<T>() — the type tag
/// is derived from the message struct itself, so the downcast inside the
/// dispatcher can never disagree with the registered tag (no
/// switch/static_cast pairs to keep in sync by hand).
///
/// Unknown types take a defined path: the fallback handler if one is set,
/// otherwise a once-per-type stderr diagnostic plus an unhandled counter
/// (never a silent drop, never an unchecked downcast). Dispatch() reports
/// whether a registered handler ran so callers can layer policies (e.g.
/// buffering during recovery) on top.
///
/// The same class dispatches Raft log payloads on apply; there `from` is
/// kInvalidNode.
class Dispatcher {
 public:
  using Handler = std::function<void(NodeId from, const MessagePtr& msg)>;

  /// Registers `handler` for the concrete message struct T. T must be
  /// default-constructible (messages are plain DTOs) so the tag can be read
  /// off a throwaway instance. Double registration of a type aborts: one
  /// type, one handler.
  template <typename T>
  void On(std::function<void(NodeId from, const T& msg)> handler) {
    const int tag = T{}.type();
    const bool inserted =
        handlers_
            .emplace(tag,
                     [handler = std::move(handler)](NodeId from,
                                                    const MessagePtr& msg) {
                       handler(from, static_cast<const T&>(*msg));
                     })
            .second;
    if (!inserted) AbortDuplicate(tag);
  }

  /// Registers a handler that receives the message untyped (for forwarding
  /// whole ranges, e.g. Raft protocol traffic, to a sub-module).
  void OnRaw(int type, Handler handler) {
    const bool inserted = handlers_.emplace(type, std::move(handler)).second;
    if (!inserted) AbortDuplicate(type);
  }

  /// Handler invoked for types with no registered handler. Replaces the
  /// default loud-drop diagnostic.
  void set_fallback(Handler handler) { fallback_ = std::move(handler); }

  /// Routes `msg` to its handler. Returns true when a registered handler
  /// ran; false when the type was unknown (fallback path).
  bool Dispatch(NodeId from, const MessagePtr& msg) {
    auto it = handlers_.find(msg->type());
    if (it == handlers_.end()) {
      unhandled_++;
      if (fallback_) {
        fallback_(from, msg);
      } else if (warned_types_.emplace(msg->type(), true).second) {
        std::fprintf(stderr,
                     "carousel: dispatcher has no handler for message type %d "
                     "(from node %d); dropping\n",
                     msg->type(), from);
      }
      return false;
    }
    dispatched_++;
    it->second(from, msg);
    return true;
  }

  bool Handles(int type) const { return handlers_.count(type) > 0; }

  /// All registered type tags, sorted (coverage tests).
  std::vector<int> RegisteredTypes() const {
    std::vector<int> types;
    types.reserve(handlers_.size());
    for (const auto& [type, handler] : handlers_) types.push_back(type);
    return types;
  }

  /// Messages that hit the unknown-type path since construction.
  uint64_t unhandled_count() const { return unhandled_; }

  /// Messages routed to a registered handler since construction.
  uint64_t dispatched_count() const { return dispatched_; }
  /// Stable address of the dispatched counter, for zero-cost exposure
  /// through a metrics registry (read only at snapshot time).
  const uint64_t* dispatched_cell() const { return &dispatched_; }

 private:
  /// A second handler for an already-registered type is a wiring bug that
  /// would silently drop the new handler. assert() compiles out under
  /// NDEBUG, so this fails hard in every build mode instead.
  [[noreturn]] static void AbortDuplicate(int type) {
    std::fprintf(stderr,
                 "carousel: duplicate handler registration for message type "
                 "%d; aborting\n",
                 type);
    std::abort();
  }

  std::map<int, Handler> handlers_;
  Handler fallback_;
  std::map<int, bool> warned_types_;
  uint64_t unhandled_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace carousel::runtime

#endif  // CAROUSEL_RUNTIME_DISPATCHER_H_
