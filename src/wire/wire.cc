#include "wire/wire.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "carousel/messages.h"
#include "raft/messages.h"
#include "runtime/arena.h"
#include "tapir/messages.h"

namespace carousel::wire {
namespace {

// ---------------------------------------------------------------------------
// Little-endian writer/reader
// ---------------------------------------------------------------------------

/// Appends to a shared output vector; offsets (PadTo) are relative to the
/// writer's construction point, so nested writers handle the recursive
/// payloads (AppendEntries entries, batch envelope items) naturally.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out), start_(out->size()) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Raw(const std::string& s) {
    out_->insert(out_->end(), s.begin(), s.end());
  }

  /// Zero-pads the current message to exactly `n` bytes; the fixed-header
  /// budget in SizeBytes() is authoritative, the natural fields must fit.
  void PadTo(size_t n) {
    assert(written() <= n);
    out_->resize(start_ + n, 0);
  }

  size_t written() const { return out_->size() - start_; }

 private:
  /// One growth check and one memcpy per field instead of a bounds-checked
  /// push_back per byte — the encode side of the TCP frame hot path.
  template <typename T>
  void AppendLe(T v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    T le = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
      le |= static_cast<T>(static_cast<uint8_t>(v >> (8 * i)))
            << (8 * (sizeof(T) - 1 - i));
    v = le;
#endif
    const uint8_t* b = reinterpret_cast<const uint8_t*>(&v);
    out_->insert(out_->end(), b, b + sizeof(T));
  }

  std::vector<uint8_t>* out_;
  size_t start_;
};

/// Bounds-checked reader over a payload slice. Underflow latches ok()=false
/// and yields zeros; decoders check ok() once at the end.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  uint8_t U8() { return Take(1) ? data_[pos_ - 1] : 0; }
  uint16_t U16() { return TakeLe<uint16_t>(); }
  uint32_t U32() { return TakeLe<uint32_t>(); }
  uint64_t U64() { return TakeLe<uint64_t>(); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  std::string Raw(size_t n) {
    if (!Take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }

  /// Skips forward to absolute offset `n` within this payload (the padded
  /// remainder of a fixed header).
  void SkipTo(size_t n) {
    if (n < pos_ || n > len_) {
      ok_ = false;
      return;
    }
    pos_ = n;
  }

  const uint8_t* cursor() const { return data_ + pos_; }
  size_t remaining() const { return len_ - pos_; }
  void Advance(size_t n) { Take(n); }
  bool ok() const { return ok_; }

 private:
  bool Take(size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  /// One bounds check and one unaligned load per field — the decode side
  /// of the TCP frame hot path.
  template <typename T>
  T TakeLe() {
    if (!Take(sizeof(T))) return 0;
    T v;
    std::memcpy(&v, data_ + pos_ - sizeof(T), sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    T le = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
      le |= static_cast<T>(static_cast<uint8_t>(v >> (8 * i)))
            << (8 * (sizeof(T) - 1 - i));
    v = le;
#endif
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Shared sub-encodings (byte-compatible with the SizeOf* accounting)
// ---------------------------------------------------------------------------

void PutTxnId(Writer& w, const TxnId& t) {  // 12 bytes
  w.I32(t.client);
  w.U64(t.counter);
}
TxnId GetTxnId(Reader& r) {
  TxnId t;
  t.client = r.I32();
  t.counter = r.U64();
  return t;
}

// SizeOfKeys: 4 + per key (4 + klen).
void PutKeys(Writer& w, const KeyList& keys) {
  w.U32(static_cast<uint32_t>(keys.size()));
  for (const Key& k : keys) {
    w.U32(static_cast<uint32_t>(k.size()));
    w.Raw(k);
  }
}
KeyList GetKeys(Reader& r) {
  KeyList keys;
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint32_t len = r.U32();
    keys.push_back(r.Raw(len));
  }
  return keys;
}

// SizeOfWrites: 4 + per entry (8 + klen + vlen).
void PutWrites(Writer& w, const WriteSet& writes) {
  w.U32(static_cast<uint32_t>(writes.size()));
  for (const auto& [k, v] : writes) {
    w.U32(static_cast<uint32_t>(k.size()));
    w.U32(static_cast<uint32_t>(v.size()));
    w.Raw(k);
    w.Raw(v);
  }
}
WriteSet GetWrites(Reader& r) {
  WriteSet writes;
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint32_t klen = r.U32();
    const uint32_t vlen = r.U32();
    Key k = r.Raw(klen);
    writes[std::move(k)] = r.Raw(vlen);
  }
  return writes;
}

// SizeOfVersions: 4 + per entry (12 + klen) = u32 klen + key + u64 version.
void PutVersions(Writer& w, const ReadVersionMap& versions) {
  w.U32(static_cast<uint32_t>(versions.size()));
  for (const auto& [k, v] : versions) {
    w.U32(static_cast<uint32_t>(k.size()));
    w.Raw(k);
    w.U64(v);
  }
}
ReadVersionMap GetVersions(Reader& r) {
  ReadVersionMap versions;
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint32_t klen = r.U32();
    Key k = r.Raw(klen);
    versions[std::move(k)] = r.U64();
  }
  return versions;
}

// SizeOfReads: 4 + per entry (12 + klen + vlen) =
// u16 klen + u16 vlen + u64 version + key + value.
void PutReads(Writer& w, const std::map<Key, VersionedValue>& reads) {
  w.U32(static_cast<uint32_t>(reads.size()));
  for (const auto& [k, vv] : reads) {
    w.U16(static_cast<uint16_t>(k.size()));
    w.U16(static_cast<uint16_t>(vv.value.size()));
    w.U64(vv.version);
    w.Raw(k);
    w.Raw(vv.value);
  }
}
std::map<Key, VersionedValue> GetReads(Reader& r) {
  std::map<Key, VersionedValue> reads;
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint16_t klen = r.U16();
    const uint16_t vlen = r.U16();
    VersionedValue vv;
    vv.version = r.U64();
    Key k = r.Raw(klen);
    vv.value = r.Raw(vlen);
    reads[std::move(k)] = std::move(vv);
  }
  return reads;
}

// Per-partition key sets: the entry count lives in the enclosing fixed
// header (the size formulas charge a flat 8 per entry), each entry is
// i32 partition + u32 reserved + keys + keys.
void PutPartitionKeys(Writer& w, const std::map<PartitionId, core::RwKeys>& m) {
  for (const auto& [p, rw] : m) {
    w.I32(p);
    w.U32(0);
    PutKeys(w, rw.reads);
    PutKeys(w, rw.writes);
  }
}
std::map<PartitionId, core::RwKeys> GetPartitionKeys(Reader& r, uint32_t n) {
  std::map<PartitionId, core::RwKeys> m;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const PartitionId p = r.I32();
    r.U32();  // reserved
    core::RwKeys rw;
    rw.reads = GetKeys(r);
    rw.writes = GetKeys(r);
    m[p] = std::move(rw);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Registry plumbing
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeInternal(const sim::Message& msg);
sim::MessagePtr DecodeInternal(int type, const uint8_t* data, size_t len);

using EncodeFn = void (*)(const sim::Message&, Writer&);
using DecodeFn = std::shared_ptr<sim::Message> (*)(Reader&);

struct Entry {
  EncodeFn encode;
  DecodeFn decode;
};

// ---------------------------------------------------------------------------
// Carousel client/coordinator/participant messages
// ---------------------------------------------------------------------------

void EncodeBody(const core::ReadPrepareMsg& m, Writer& w) {  // 48 + keys + keys
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.client);
  w.I32(m.coordinator);
  w.U32(m.attempt);
  w.U8(m.read_only);
  w.U8(m.fast_path);
  w.U8(m.want_data);
  w.U8(m.is_retry);
  w.PadTo(48);
  PutKeys(w, m.read_keys);
  PutKeys(w, m.write_keys);
}
void DecodeBody(core::ReadPrepareMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.client = r.I32();
  m.coordinator = r.I32();
  m.attempt = r.U32();
  m.read_only = r.U8() != 0;
  m.fast_path = r.U8() != 0;
  m.want_data = r.U8() != 0;
  m.is_retry = r.U8() != 0;
  r.SkipTo(48);
  m.read_keys = GetKeys(r);
  m.write_keys = GetKeys(r);
}

void EncodeBody(const core::ReadResponseMsg& m, Writer& w) {  // 32 + reads
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.U32(m.attempt);
  w.U8(m.ok);
  w.U8(m.from_leader);
  w.PadTo(32);
  PutReads(w, m.reads);
}
void DecodeBody(core::ReadResponseMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.attempt = r.U32();
  m.ok = r.U8() != 0;
  m.from_leader = r.U8() != 0;
  r.SkipTo(32);
  m.reads = GetReads(r);
}

void EncodeBody(const core::PrepareDecisionMsg& m, Writer& w) {  // 48 + vers
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.replica);
  w.U64(m.term);
  w.U8(m.is_leader);
  w.U8(m.via_fast_path);
  w.U8(m.prepared);
  w.PadTo(48);
  PutVersions(w, m.read_versions);
}
void DecodeBody(core::PrepareDecisionMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.replica = r.I32();
  m.term = r.U64();
  m.is_leader = r.U8() != 0;
  m.via_fast_path = r.U8() != 0;
  m.prepared = r.U8() != 0;
  r.SkipTo(48);
  m.read_versions = GetVersions(r);
}

void EncodeBody(const core::CoordPrepareMsg& m, Writer& w) {  // 32 + pkeys
  PutTxnId(w, m.tid);
  w.I32(m.client);
  w.U8(m.fast_path);
  w.U32(static_cast<uint32_t>(m.keys.size()));
  w.PadTo(32);
  PutPartitionKeys(w, m.keys);
}
void DecodeBody(core::CoordPrepareMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.client = r.I32();
  m.fast_path = r.U8() != 0;
  const uint32_t n = r.U32();
  r.SkipTo(32);
  m.keys = GetPartitionKeys(r, n);
}

void EncodeBody(const core::CommitRequestMsg& m, Writer& w) {
  // 32 + writes + versions + pkeys
  PutTxnId(w, m.tid);
  w.I32(m.client);
  w.U32(static_cast<uint32_t>(m.keys.size()));
  w.PadTo(32);
  PutWrites(w, m.writes);
  PutVersions(w, m.read_versions);
  PutPartitionKeys(w, m.keys);
}
void DecodeBody(core::CommitRequestMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.client = r.I32();
  const uint32_t n = r.U32();
  r.SkipTo(32);
  m.writes = GetWrites(r);
  m.read_versions = GetVersions(r);
  m.keys = GetPartitionKeys(r, n);
}

void EncodeBody(const core::AbortRequestMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.client);
  w.PadTo(24);
}
void DecodeBody(core::AbortRequestMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.client = r.I32();
  r.SkipTo(24);
}

void EncodeBody(const core::CommitResponseMsg& m, Writer& w) {  // 24 + reason
  PutTxnId(w, m.tid);
  w.U8(m.committed);
  w.U32(static_cast<uint32_t>(m.reason.size()));
  w.PadTo(24);
  w.Raw(m.reason);
}
void DecodeBody(core::CommitResponseMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.committed = r.U8() != 0;
  const uint32_t len = r.U32();
  r.SkipTo(24);
  m.reason = r.Raw(len);
}

void EncodeBody(const core::WritebackMsg& m, Writer& w) {  // 32 + writes
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.coordinator);
  w.U8(m.commit);
  w.PadTo(32);
  PutWrites(w, m.writes);
}
void DecodeBody(core::WritebackMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.coordinator = r.I32();
  m.commit = r.U8() != 0;
  r.SkipTo(32);
  m.writes = GetWrites(r);
}

void EncodeBody(const core::WritebackAckMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.PadTo(24);
}
void DecodeBody(core::WritebackAckMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  r.SkipTo(24);
}

void EncodeBody(const core::HeartbeatMsg& m, Writer& w) {  // 20
  PutTxnId(w, m.tid);
  w.I32(m.client);
  w.PadTo(20);
}
void DecodeBody(core::HeartbeatMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.client = r.I32();
  r.SkipTo(20);
}

void EncodeBody(const core::QueryPrepareMsg& m, Writer& w) {  // 40 + keys x2
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.coordinator);
  w.PadTo(40);
  PutKeys(w, m.read_keys);
  PutKeys(w, m.write_keys);
}
void DecodeBody(core::QueryPrepareMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.coordinator = r.I32();
  r.SkipTo(40);
  m.read_keys = GetKeys(r);
  m.write_keys = GetKeys(r);
}

void EncodeBody(const core::QueryDecisionMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.PadTo(24);
}
void DecodeBody(core::QueryDecisionMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  r.SkipTo(24);
}

void EncodeBody(const core::NotLeaderMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.leader_hint);
  w.PadTo(24);
}
void DecodeBody(core::NotLeaderMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.leader_hint = r.I32();
  r.SkipTo(24);
}

// ---------------------------------------------------------------------------
// Raft log payloads
// ---------------------------------------------------------------------------

void EncodeBody(const core::LogTxnInfo& m, Writer& w) {  // 32 + pkeys
  PutTxnId(w, m.tid);
  w.I32(m.client);
  w.U8(m.fast_path);
  w.U32(static_cast<uint32_t>(m.keys.size()));
  w.PadTo(32);
  PutPartitionKeys(w, m.keys);
}
void DecodeBody(core::LogTxnInfo& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.client = r.I32();
  m.fast_path = r.U8() != 0;
  const uint32_t n = r.U32();
  r.SkipTo(32);
  m.keys = GetPartitionKeys(r, n);
}

void EncodeBody(const core::LogWriteData& m, Writer& w) {  // 24 + w + v
  PutTxnId(w, m.tid);
  w.PadTo(24);
  PutWrites(w, m.writes);
  PutVersions(w, m.client_versions);
}
void DecodeBody(core::LogWriteData& m, Reader& r) {
  m.tid = GetTxnId(r);
  r.SkipTo(24);
  m.writes = GetWrites(r);
  m.client_versions = GetVersions(r);
}

void EncodeBody(const core::LogDecision& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.U8(m.commit);
  w.PadTo(24);
}
void DecodeBody(core::LogDecision& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.commit = r.U8() != 0;
  r.SkipTo(24);
}

void EncodeBody(const core::LogPrepareResult& m, Writer& w) {
  // 48 + keys + keys + versions
  PutTxnId(w, m.tid);
  w.I32(m.coordinator);
  w.U64(m.term);
  w.U8(m.prepared);
  w.PadTo(48);
  PutKeys(w, m.read_keys);
  PutKeys(w, m.write_keys);
  PutVersions(w, m.read_versions);
}
void DecodeBody(core::LogPrepareResult& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.coordinator = r.I32();
  m.term = r.U64();
  m.prepared = r.U8() != 0;
  r.SkipTo(48);
  m.read_keys = GetKeys(r);
  m.write_keys = GetKeys(r);
  m.read_versions = GetVersions(r);
}

void EncodeBody(const core::LogCommit& m, Writer& w) {  // 32 + writes
  PutTxnId(w, m.tid);
  w.I32(m.coordinator);
  w.U8(m.commit);
  w.PadTo(32);
  PutWrites(w, m.writes);
}
void DecodeBody(core::LogCommit& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.coordinator = r.I32();
  m.commit = r.U8() != 0;
  r.SkipTo(32);
  m.writes = GetWrites(r);
}

void EncodeBody(const raft::NoopPayload&, Writer& w) { w.PadTo(8); }
void DecodeBody(raft::NoopPayload&, Reader& r) { r.SkipTo(8); }

// ---------------------------------------------------------------------------
// Raft RPCs
// ---------------------------------------------------------------------------

void EncodeBody(const raft::RequestVoteMsg& m, Writer& w) {  // 40
  w.I32(m.group);
  w.U64(m.term);
  w.I32(m.candidate);
  w.U64(m.last_log_index);
  w.U64(m.last_log_term);
  w.PadTo(40);
}
void DecodeBody(raft::RequestVoteMsg& m, Reader& r) {
  m.group = r.I32();
  m.term = r.U64();
  m.candidate = r.I32();
  m.last_log_index = r.U64();
  m.last_log_term = r.U64();
  r.SkipTo(40);
}

// PendingTxnWireSize charges 24 + per-write-key (4 + klen) + per-read-key
// (4 + klen + 8). Header (24): tid + i32 coordinator + u32 term +
// u16 read count + u16 write count. Versions ride as one u64 per read
// key, in read_keys order — per read *key*, not per read_versions entry,
// because the map dedupes duplicate keys.
void PutPendingTxn(Writer& w, const kv::PendingTxn& t) {
  PutTxnId(w, t.tid);
  w.I32(t.coordinator);
  w.U32(static_cast<uint32_t>(t.term));
  w.U16(static_cast<uint16_t>(t.read_keys.size()));
  w.U16(static_cast<uint16_t>(t.write_keys.size()));
  for (const Key& k : t.read_keys) {
    w.U32(static_cast<uint32_t>(k.size()));
    w.Raw(k);
  }
  for (const Key& k : t.write_keys) {
    w.U32(static_cast<uint32_t>(k.size()));
    w.Raw(k);
  }
  for (const Key& k : t.read_keys) {
    auto it = t.read_versions.find(k);
    w.U64(it == t.read_versions.end() ? 0 : it->second);
  }
}
kv::PendingTxn GetPendingTxn(Reader& r) {
  kv::PendingTxn t;
  t.tid = GetTxnId(r);
  t.coordinator = r.I32();
  t.term = r.U32();
  const uint16_t reads = r.U16();
  const uint16_t writes = r.U16();
  for (uint16_t i = 0; i < reads && r.ok(); ++i) {
    t.read_keys.push_back(r.Raw(r.U32()));
  }
  for (uint16_t i = 0; i < writes && r.ok(); ++i) {
    t.write_keys.push_back(r.Raw(r.U32()));
  }
  for (const Key& k : t.read_keys) t.read_versions[k] = r.U64();
  return t;
}

void EncodeBody(const raft::VoteResponseMsg& m, Writer& w) {  // 24 + pending
  w.I32(m.group);
  w.U64(m.term);
  w.I32(m.voter);
  w.U8(m.granted);
  w.U32(static_cast<uint32_t>(m.pending_list.size()));
  w.PadTo(24);
  for (const auto& txn : m.pending_list) PutPendingTxn(w, txn);
}
void DecodeBody(raft::VoteResponseMsg& m, Reader& r) {
  m.group = r.I32();
  m.term = r.U64();
  m.voter = r.I32();
  m.granted = r.U8() != 0;
  const uint32_t n = r.U32();
  r.SkipTo(24);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    m.pending_list.push_back(GetPendingTxn(r));
  }
}

void EncodeBody(const raft::AppendEntriesMsg& m, Writer& w) {
  // 48 + per entry (16 + payload).
  w.I32(m.group);
  w.U64(m.term);
  w.I32(m.leader);
  w.U64(m.prev_log_index);
  w.U64(m.prev_log_term);
  w.U64(m.leader_commit);
  w.U32(static_cast<uint32_t>(m.entries.size()));
  w.PadTo(48);
  for (const auto& e : m.entries) {
    w.U64(e.term);
    if (e.payload == nullptr) {
      w.U32(0);
      w.U32(0);
      continue;
    }
    std::vector<uint8_t> payload = EncodeInternal(*e.payload);
    w.U32(static_cast<uint32_t>(e.payload->type()));
    w.U32(static_cast<uint32_t>(payload.size()));
    w.Raw(std::string(payload.begin(), payload.end()));
  }
}
void DecodeBody(raft::AppendEntriesMsg& m, Reader& r) {
  m.group = r.I32();
  m.term = r.U64();
  m.leader = r.I32();
  m.prev_log_index = r.U64();
  m.prev_log_term = r.U64();
  m.leader_commit = r.U64();
  const uint32_t n = r.U32();
  r.SkipTo(48);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    raft::LogEntry e;
    e.term = r.U64();
    const uint32_t type = r.U32();
    const uint32_t len = r.U32();
    if (r.remaining() < len) {
      r.Advance(r.remaining() + 1);  // Latch the underflow.
      return;
    }
    if (type != 0) {
      e.payload = DecodeInternal(static_cast<int>(type), r.cursor(), len);
      if (e.payload == nullptr) {
        r.Advance(r.remaining() + 1);
        return;
      }
    }
    r.Advance(len);
    m.entries.push_back(std::move(e));
  }
}

void EncodeBody(const raft::AppendResponseMsg& m, Writer& w) {  // 32
  w.I32(m.group);
  w.U64(m.term);
  w.I32(m.follower);
  w.U8(m.success);
  w.U64(m.match_index);
  w.PadTo(32);
  // wan_spans: accounting metadata, zero wire bytes, not serialized.
}
void DecodeBody(raft::AppendResponseMsg& m, Reader& r) {
  m.group = r.I32();
  m.term = r.U64();
  m.follower = r.I32();
  m.success = r.U8() != 0;
  m.match_index = r.U64();
  r.SkipTo(32);
}

// ---------------------------------------------------------------------------
// TAPIR
// ---------------------------------------------------------------------------

void EncodeBody(const tapir::TapirReadMsg& m, Writer& w) {  // 32 + keys
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.client);
  w.PadTo(32);
  PutKeys(w, m.keys);
}
void DecodeBody(tapir::TapirReadMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.client = r.I32();
  r.SkipTo(32);
  m.keys = GetKeys(r);
}

void EncodeBody(const tapir::TapirReadReplyMsg& m, Writer& w) {  // 24 + reads
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.PadTo(24);
  PutReads(w, m.reads);
}
void DecodeBody(tapir::TapirReadReplyMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  r.SkipTo(24);
  m.reads = GetReads(r);
}

void EncodeBody(const tapir::TapirPrepareMsg& m, Writer& w) {
  // 40 + versions + writes
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.client);
  w.U64(m.timestamp);
  w.PadTo(40);
  PutVersions(w, m.read_versions);
  PutWrites(w, m.writes);
}
void DecodeBody(tapir::TapirPrepareMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.client = r.I32();
  m.timestamp = r.U64();
  r.SkipTo(40);
  m.read_versions = GetVersions(r);
  m.writes = GetWrites(r);
}

void EncodeBody(const tapir::TapirPrepareReplyMsg& m, Writer& w) {  // 28
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.replica);
  w.U8(static_cast<uint8_t>(m.vote));
  w.PadTo(28);
}
void DecodeBody(tapir::TapirPrepareReplyMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.replica = r.I32();
  m.vote = static_cast<tapir::Vote>(r.U8());
  r.SkipTo(28);
}

void EncodeBody(const tapir::TapirFinalizeMsg& m, Writer& w) {  // 28
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.U8(static_cast<uint8_t>(m.vote));
  w.PadTo(28);
}
void DecodeBody(tapir::TapirFinalizeMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.vote = static_cast<tapir::Vote>(r.U8());
  r.SkipTo(28);
}

void EncodeBody(const tapir::TapirFinalizeReplyMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.replica);
  w.PadTo(24);
}
void DecodeBody(tapir::TapirFinalizeReplyMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.replica = r.I32();
  r.SkipTo(24);
}

void EncodeBody(const tapir::TapirDecideMsg& m, Writer& w) {  // 32 + writes
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.U64(m.timestamp);
  w.U8(m.commit);
  w.PadTo(32);
  PutWrites(w, m.writes);
}
void DecodeBody(tapir::TapirDecideMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.timestamp = r.U64();
  m.commit = r.U8() != 0;
  r.SkipTo(32);
  m.writes = GetWrites(r);
}

void EncodeBody(const tapir::TapirDecideAckMsg& m, Writer& w) {  // 24
  PutTxnId(w, m.tid);
  w.I32(m.partition);
  w.I32(m.replica);
  w.PadTo(24);
}
void DecodeBody(tapir::TapirDecideAckMsg& m, Reader& r) {
  m.tid = GetTxnId(r);
  m.partition = r.I32();
  m.replica = r.I32();
  r.SkipTo(24);
}

// ---------------------------------------------------------------------------
// Batch envelope
// ---------------------------------------------------------------------------

void EncodeBody(const sim::BatchEnvelopeMsg& m, Writer& w) {
  // 8 + per item (kPerItemFramingBytes + payload).
  w.U32(static_cast<uint32_t>(m.items.size()));
  w.PadTo(8);
  for (const auto& item : m.items) {
    std::vector<uint8_t> payload = EncodeInternal(*item);
    w.U32(static_cast<uint32_t>(item->type()));
    w.U32(static_cast<uint32_t>(payload.size()));
    w.Raw(std::string(payload.begin(), payload.end()));
  }
}
void DecodeBody(sim::BatchEnvelopeMsg& m, Reader& r) {
  const uint32_t n = r.U32();
  r.SkipTo(8);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint32_t type = r.U32();
    const uint32_t len = r.U32();
    if (r.remaining() < len) {
      r.Advance(r.remaining() + 1);
      return;
    }
    sim::MessagePtr item =
        DecodeInternal(static_cast<int>(type), r.cursor(), len);
    if (item == nullptr) {
      r.Advance(r.remaining() + 1);
      return;
    }
    r.Advance(len);
    m.items.push_back(std::move(item));
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

template <typename T>
Entry MakeEntry() {
  return Entry{
      [](const sim::Message& m, Writer& w) { EncodeBody(sim::As<T>(m), w); },
      [](Reader& r) -> std::shared_ptr<sim::Message> {
        auto msg = runtime::MakeMessage<T>();
        DecodeBody(*msg, r);
        if (!r.ok()) return nullptr;
        return msg;
      }};
}

const std::map<int, Entry>& Registry() {
  static const std::map<int, Entry> registry = [] {
    std::map<int, Entry> r;
    r[sim::kBatchEnvelope] = MakeEntry<sim::BatchEnvelopeMsg>();

    r[sim::kRaftRequestVote] = MakeEntry<raft::RequestVoteMsg>();
    r[sim::kRaftVoteResponse] = MakeEntry<raft::VoteResponseMsg>();
    r[sim::kRaftAppendEntries] = MakeEntry<raft::AppendEntriesMsg>();
    r[sim::kRaftAppendResponse] = MakeEntry<raft::AppendResponseMsg>();

    r[sim::kCarouselReadPrepare] = MakeEntry<core::ReadPrepareMsg>();
    r[sim::kCarouselReadResponse] = MakeEntry<core::ReadResponseMsg>();
    r[sim::kCarouselPrepareDecision] = MakeEntry<core::PrepareDecisionMsg>();
    r[sim::kCarouselCoordPrepare] = MakeEntry<core::CoordPrepareMsg>();
    r[sim::kCarouselCommitRequest] = MakeEntry<core::CommitRequestMsg>();
    r[sim::kCarouselAbortRequest] = MakeEntry<core::AbortRequestMsg>();
    r[sim::kCarouselCommitResponse] = MakeEntry<core::CommitResponseMsg>();
    r[sim::kCarouselWriteback] = MakeEntry<core::WritebackMsg>();
    r[sim::kCarouselWritebackAck] = MakeEntry<core::WritebackAckMsg>();
    r[sim::kCarouselHeartbeat] = MakeEntry<core::HeartbeatMsg>();
    r[sim::kCarouselQueryPrepare] = MakeEntry<core::QueryPrepareMsg>();
    r[sim::kCarouselNotLeader] = MakeEntry<core::NotLeaderMsg>();
    r[sim::kCarouselQueryDecision] = MakeEntry<core::QueryDecisionMsg>();

    r[sim::kLogTxnInfo] = MakeEntry<core::LogTxnInfo>();
    r[sim::kLogWriteData] = MakeEntry<core::LogWriteData>();
    r[sim::kLogDecision] = MakeEntry<core::LogDecision>();
    r[sim::kLogPrepareResult] = MakeEntry<core::LogPrepareResult>();
    r[sim::kLogCommit] = MakeEntry<core::LogCommit>();
    r[sim::kLogNoop] = MakeEntry<raft::NoopPayload>();

    r[sim::kTapirRead] = MakeEntry<tapir::TapirReadMsg>();
    r[sim::kTapirReadReply] = MakeEntry<tapir::TapirReadReplyMsg>();
    r[sim::kTapirPrepare] = MakeEntry<tapir::TapirPrepareMsg>();
    r[sim::kTapirPrepareReply] = MakeEntry<tapir::TapirPrepareReplyMsg>();
    r[sim::kTapirFinalize] = MakeEntry<tapir::TapirFinalizeMsg>();
    r[sim::kTapirFinalizeReply] = MakeEntry<tapir::TapirFinalizeReplyMsg>();
    r[sim::kTapirDecide] = MakeEntry<tapir::TapirDecideMsg>();
    r[sim::kTapirDecideAck] = MakeEntry<tapir::TapirDecideAckMsg>();
    return r;
  }();
  return registry;
}

/// Dense type-indexed view of Registry() for the per-frame hot path: an
/// array index instead of a red-black tree walk per encode/decode. Types
/// are small ints (sim/message.h tops out at kTapirDecideAck); unknown or
/// out-of-range types return null.
const Entry* FindEntry(int type) {
  static const std::vector<Entry> flat = [] {
    size_t max_type = 0;
    for (const auto& [t, e] : Registry()) {
      max_type = std::max(max_type, static_cast<size_t>(t));
    }
    std::vector<Entry> v(max_type + 1, Entry{nullptr, nullptr});
    for (const auto& [t, e] : Registry()) v[t] = e;
    return v;
  }();
  if (type < 0 || static_cast<size_t>(type) >= flat.size() ||
      flat[type].encode == nullptr) {
    return nullptr;
  }
  return &flat[type];
}

std::vector<uint8_t> EncodeInternal(const sim::Message& msg) {
  std::vector<uint8_t> out;
  const Entry* e = FindEntry(msg.type());
  if (e == nullptr) return out;
  Writer w(&out);
  e->encode(msg, w);
  return out;
}

sim::MessagePtr DecodeInternal(int type, const uint8_t* data, size_t len) {
  const Entry* e = FindEntry(type);
  if (e == nullptr) return nullptr;
  Reader r(data, len);
  return e->decode(r);
}

}  // namespace

std::vector<uint8_t> Encode(const sim::Message& msg) {
  return EncodeInternal(msg);
}

sim::MessagePtr Decode(int type, const uint8_t* data, size_t len) {
  return DecodeInternal(type, data, len);
}

bool Encodable(int type) { return Registry().count(type) > 0; }

std::vector<int> RegisteredTypes() {
  std::vector<int> types;
  for (const auto& [type, entry] : Registry()) types.push_back(type);
  return types;
}

runtime::WireCodec Codec() {
  runtime::WireCodec codec;
  codec.encode = [](const sim::Message& msg) { return EncodeInternal(msg); };
  // The transport's hot path: append into its pooled frame buffer so the
  // encode allocates nothing once the pool is warm. Unregistered types
  // append zero bytes — the receiver's decode rejects the frame, matching
  // the plain-encode path's empty payload.
  codec.encode_append = [](const sim::Message& msg,
                           std::vector<uint8_t>* out) {
    const Entry* e = FindEntry(msg.type());
    if (e == nullptr) return;
    Writer w(out);
    e->encode(msg, w);
  };
  codec.decode = [](int type, const uint8_t* data, size_t len) {
    return DecodeInternal(type, data, len);
  };
  return codec;
}

}  // namespace carousel::wire
