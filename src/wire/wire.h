#ifndef CAROUSEL_WIRE_WIRE_H_
#define CAROUSEL_WIRE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/net.h"
#include "sim/message.h"

namespace carousel::wire {

/// Binary codec for every registered message type (Raft, Carousel, TAPIR,
/// the Raft log payloads they replicate, and the batch envelope).
///
/// The encoding is little-endian and size-exact: for every registered
/// type, Encode() produces exactly Message::SizeBytes() payload bytes, so
/// the bytes the threaded TCP transport puts on the wire are the bytes the
/// simulator's bandwidth model has been charging all along. Fixed headers
/// write their natural fields and zero-pad to the size the accounting
/// declares; variable sections mirror the SizeOf* helpers field for field.
///
/// Not serialized: WanSpan contexts and AppendResponseMsg::wan_spans
/// (accounting metadata, zero wire bytes by design — span attribution is a
/// simulator-side instrument and does not cross a real socket).

/// Serializes `msg`'s payload, framing excluded. Returns an empty vector
/// if the type is not registered (the transport then drops the message).
std::vector<uint8_t> Encode(const sim::Message& msg);

/// Reconstructs a message of `type` from payload bytes. Returns nullptr
/// for unregistered types or malformed (truncated) input.
sim::MessagePtr Decode(int type, const uint8_t* data, size_t len);

/// True if `type` has encode/decode entries.
bool Encodable(int type);

/// Every registered type tag, ascending (property tests iterate this).
std::vector<int> RegisteredTypes();

/// The codec hooks the threaded runtime's TCP transport consumes.
runtime::WireCodec Codec();

}  // namespace carousel::wire

#endif  // CAROUSEL_WIRE_WIRE_H_
