#ifndef CAROUSEL_KV_PENDING_LIST_H_
#define CAROUSEL_KV_PENDING_LIST_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace carousel::kv {

/// One entry in a pending-transaction list: a transaction that has been
/// prepared on this replica but not yet committed or aborted (paper
/// §4.1.4 / §4.2). Key sets are restricted to the replica's partition.
struct PendingTxn {
  TxnId tid;
  KeyList read_keys;
  KeyList write_keys;
  /// Versions the preparing replica used for the read keys; compared
  /// against the leader's versions by the CPC fast path and by recovery.
  ReadVersionMap read_versions;
  /// Raft term the replica was in when it prepared the transaction.
  uint64_t term = 0;
  /// Transaction coordinator, so a newly elected leader can notify it
  /// after failure recovery.
  NodeId coordinator = kInvalidNode;
  /// When the entry was created (microseconds of simulated time); drives
  /// the pending-entry garbage-collection probe.
  int64_t prepared_at_micros = 0;
};

/// The pending-transaction list a Carousel replica maintains, with the OCC
/// conflict checks from the paper: a new transaction conflicts with the
/// pending set if any of its reads hits a pending write (read-write), or
/// any of its writes hits a pending read (write-read) or a pending write
/// (write-write). Conflicts fail the prepare; there is no waiting.
class PendingList {
 public:
  PendingList() = default;

  /// True if (reads, writes) conflicts with any pending transaction.
  bool HasConflict(const KeyList& reads, const KeyList& writes) const;

  /// True if any of `reads` has a pending writer. Used by the read-only
  /// transaction optimization (paper §4.4.2).
  bool HasPendingWriter(const KeyList& reads) const;

  /// Adds a prepared transaction. Fails with InvalidArgument if the tid is
  /// already pending.
  Status Add(PendingTxn txn);

  bool Contains(const TxnId& tid) const { return txns_.count(tid) > 0; }

  /// The pending entry for `tid`, or nullptr.
  const PendingTxn* Find(const TxnId& tid) const;

  /// Removes `tid` (no-op if absent), e.g., when the commit decision
  /// arrives in the Writeback phase.
  void Remove(const TxnId& tid);

  /// Copy of all pending entries; piggybacked on Raft vote messages for
  /// CPC leader-failure recovery (paper §4.3.3 step 1).
  std::vector<PendingTxn> Snapshot() const;

  size_t size() const { return txns_.size(); }

  /// Mutation observers, fired after a successful Add and after an actual
  /// removal. The durable backend journals prepare pins through these so
  /// a restarted replica still answers §4.3.3's supermajority count; the
  /// simulator (whose crashes preserve memory) leaves them unset.
  using AddObserver = std::function<void(const PendingTxn&)>;
  using RemoveObserver = std::function<void(const TxnId&)>;
  void SetObservers(AddObserver on_add, RemoveObserver on_remove) {
    on_add_ = std::move(on_add);
    on_remove_ = std::move(on_remove);
  }

 private:
  std::unordered_map<TxnId, PendingTxn, TxnIdHash> txns_;
  /// Key -> number of pending transactions reading / writing it, so the
  /// conflict check is O(|keys|) instead of O(|pending| * |keys|).
  std::unordered_map<Key, int> readers_;
  std::unordered_map<Key, int> writers_;
  AddObserver on_add_;
  RemoveObserver on_remove_;
};

/// Flat little-endian serialization of one pending entry, for the durable
/// prepare-pin journal (runtime storage sees it as an opaque blob).
std::vector<uint8_t> EncodePendingTxn(const PendingTxn& txn);
/// Returns false on malformed input (the blob is then ignored).
bool DecodePendingTxn(const uint8_t* data, size_t len, PendingTxn* out);

}  // namespace carousel::kv

#endif  // CAROUSEL_KV_PENDING_LIST_H_
