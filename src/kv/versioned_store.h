#ifndef CAROUSEL_KV_VERSIONED_STORE_H_
#define CAROUSEL_KV_VERSIONED_STORE_H_

#include <unordered_map>

#include "common/types.h"

namespace carousel::kv {

/// In-memory key-value store where each record carries a version number
/// that monotonically increases with transactional writes (paper §3.3).
/// Replicas applying the same writes in the same (Raft log) order compute
/// identical versions, which is what makes version comparison a valid
/// staleness check for local-replica reads.
///
/// The store materializes lazily: a key that has never been written reads
/// as (empty value, version 0). This keeps a 10-million-key workload space
/// memory-free until written, without changing conflict behaviour.
class VersionedStore {
 public:
  VersionedStore() = default;

  /// Latest committed value + version of `key`.
  VersionedValue Get(const Key& key) const {
    auto it = records_.find(key);
    if (it == records_.end()) return VersionedValue{};
    return it->second;
  }

  /// Latest committed version of `key` (0 if never written).
  Version GetVersion(const Key& key) const {
    auto it = records_.find(key);
    return it == records_.end() ? 0 : it->second.version;
  }

  /// Applies a committed write; returns the new version (old + 1).
  Version Apply(const Key& key, Value value) {
    VersionedValue& rec = records_[key];
    rec.value = std::move(value);
    rec.version++;
    return rec.version;
  }

  /// Number of materialized (written at least once) keys.
  size_t size() const { return records_.size(); }

 private:
  std::unordered_map<Key, VersionedValue> records_;
};

}  // namespace carousel::kv

#endif  // CAROUSEL_KV_VERSIONED_STORE_H_
