#ifndef CAROUSEL_KV_VERSIONED_STORE_H_
#define CAROUSEL_KV_VERSIONED_STORE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace carousel::kv {

/// In-memory key-value store where each record carries a version number
/// that monotonically increases with transactional writes (paper §3.3).
/// Replicas applying the same writes in the same (Raft log) order compute
/// identical versions, which is what makes version comparison a valid
/// staleness check for local-replica reads.
///
/// The store materializes lazily: a key that has never been written reads
/// as (empty value, version 0). This keeps a 10-million-key workload space
/// memory-free until written, without changing conflict behaviour.
class VersionedStore {
 public:
  VersionedStore() = default;

  /// Latest committed value + version of `key`.
  VersionedValue Get(const Key& key) const {
    auto it = records_.find(key);
    if (it == records_.end()) return VersionedValue{};
    return it->second;
  }

  /// Latest committed version of `key` (0 if never written).
  Version GetVersion(const Key& key) const {
    auto it = records_.find(key);
    return it == records_.end() ? 0 : it->second.version;
  }

  /// Applies a committed write; returns the new version (old + 1). When
  /// the writer log is enabled, `writer` is appended to the key's chain so
  /// chain[v - 1] names the transaction that installed version v — the
  /// ground-truth commit order the serializability checker runs against.
  Version Apply(const Key& key, Value value,
                const TxnId& writer = TxnId{}) {
    VersionedValue& rec = records_[key];
    rec.value = std::move(value);
    rec.version++;
    if (writer_log_enabled_) writer_log_[key].push_back(writer);
    return rec.version;
  }

  /// Turns on per-version writer recording (off by default: it grows
  /// without bound, so only verification runs pay for it).
  void EnableWriterLog() { writer_log_enabled_ = true; }

  /// Per-key writer chains; empty unless EnableWriterLog() was called
  /// before the writes of interest. Ordered for deterministic iteration.
  const std::map<Key, std::vector<TxnId>>& writer_log() const {
    return writer_log_;
  }

  /// Number of materialized (written at least once) keys.
  size_t size() const { return records_.size(); }

 private:
  std::unordered_map<Key, VersionedValue> records_;
  bool writer_log_enabled_ = false;
  std::map<Key, std::vector<TxnId>> writer_log_;
};

}  // namespace carousel::kv

#endif  // CAROUSEL_KV_VERSIONED_STORE_H_
