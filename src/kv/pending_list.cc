#include "kv/pending_list.h"

namespace carousel::kv {

bool PendingList::HasConflict(const KeyList& reads,
                              const KeyList& writes) const {
  for (const Key& k : reads) {
    if (writers_.count(k) > 0) return true;  // read-write
  }
  for (const Key& k : writes) {
    if (writers_.count(k) > 0) return true;  // write-write
    if (readers_.count(k) > 0) return true;  // write-read
  }
  return false;
}

bool PendingList::HasPendingWriter(const KeyList& reads) const {
  for (const Key& k : reads) {
    if (writers_.count(k) > 0) return true;
  }
  return false;
}

Status PendingList::Add(PendingTxn txn) {
  if (txns_.count(txn.tid) > 0) {
    return Status::InvalidArgument("txn " + txn.tid.ToString() +
                                   " already pending");
  }
  for (const Key& k : txn.read_keys) readers_[k]++;
  for (const Key& k : txn.write_keys) writers_[k]++;
  txns_.emplace(txn.tid, std::move(txn));
  return Status::OK();
}

const PendingTxn* PendingList::Find(const TxnId& tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

void PendingList::Remove(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  for (const Key& k : it->second.read_keys) {
    auto rit = readers_.find(k);
    if (rit != readers_.end() && --rit->second == 0) readers_.erase(rit);
  }
  for (const Key& k : it->second.write_keys) {
    auto wit = writers_.find(k);
    if (wit != writers_.end() && --wit->second == 0) writers_.erase(wit);
  }
  txns_.erase(it);
}

std::vector<PendingTxn> PendingList::Snapshot() const {
  std::vector<PendingTxn> out;
  out.reserve(txns_.size());
  for (const auto& [tid, txn] : txns_) out.push_back(txn);
  return out;
}

}  // namespace carousel::kv
