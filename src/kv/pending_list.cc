#include "kv/pending_list.h"

namespace carousel::kv {

bool PendingList::HasConflict(const KeyList& reads,
                              const KeyList& writes) const {
  for (const Key& k : reads) {
    if (writers_.count(k) > 0) return true;  // read-write
  }
  for (const Key& k : writes) {
    if (writers_.count(k) > 0) return true;  // write-write
    if (readers_.count(k) > 0) return true;  // write-read
  }
  return false;
}

bool PendingList::HasPendingWriter(const KeyList& reads) const {
  for (const Key& k : reads) {
    if (writers_.count(k) > 0) return true;
  }
  return false;
}

Status PendingList::Add(PendingTxn txn) {
  if (txns_.count(txn.tid) > 0) {
    return Status::InvalidArgument("txn " + txn.tid.ToString() +
                                   " already pending");
  }
  for (const Key& k : txn.read_keys) readers_[k]++;
  for (const Key& k : txn.write_keys) writers_[k]++;
  auto [it, inserted] = txns_.emplace(txn.tid, std::move(txn));
  (void)inserted;
  if (on_add_) on_add_(it->second);
  return Status::OK();
}

const PendingTxn* PendingList::Find(const TxnId& tid) const {
  auto it = txns_.find(tid);
  return it == txns_.end() ? nullptr : &it->second;
}

void PendingList::Remove(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  for (const Key& k : it->second.read_keys) {
    auto rit = readers_.find(k);
    if (rit != readers_.end() && --rit->second == 0) readers_.erase(rit);
  }
  for (const Key& k : it->second.write_keys) {
    auto wit = writers_.find(k);
    if (wit != writers_.end() && --wit->second == 0) writers_.erase(wit);
  }
  txns_.erase(it);
  if (on_remove_) on_remove_(tid);
}

std::vector<PendingTxn> PendingList::Snapshot() const {
  std::vector<PendingTxn> out;
  out.reserve(txns_.size());
  for (const auto& [tid, txn] : txns_) out.push_back(txn);
  return out;
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutStr(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

struct BlobReader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  bool Take(size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    pos += n;
    return true;
  }
  uint32_t U32() {
    if (!Take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos - 4 + i]) << (8 * i);
    return v;
  }
  uint64_t U64() {
    if (!Take(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos - 8 + i]) << (8 * i);
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!Take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data + pos - n), n);
  }
};

}  // namespace

std::vector<uint8_t> EncodePendingTxn(const PendingTxn& txn) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(txn.tid.client));
  PutU64(&out, txn.tid.counter);
  PutU64(&out, txn.term);
  PutU32(&out, static_cast<uint32_t>(txn.coordinator));
  PutU64(&out, static_cast<uint64_t>(txn.prepared_at_micros));
  PutU32(&out, static_cast<uint32_t>(txn.read_keys.size()));
  for (const Key& k : txn.read_keys) PutStr(&out, k);
  PutU32(&out, static_cast<uint32_t>(txn.write_keys.size()));
  for (const Key& k : txn.write_keys) PutStr(&out, k);
  PutU32(&out, static_cast<uint32_t>(txn.read_versions.size()));
  for (const auto& [k, v] : txn.read_versions) {
    PutStr(&out, k);
    PutU64(&out, v);
  }
  return out;
}

bool DecodePendingTxn(const uint8_t* data, size_t len, PendingTxn* out) {
  BlobReader r{data, len};
  PendingTxn txn;
  txn.tid.client = static_cast<ClientId>(static_cast<int32_t>(r.U32()));
  txn.tid.counter = r.U64();
  txn.term = r.U64();
  txn.coordinator = static_cast<NodeId>(static_cast<int32_t>(r.U32()));
  txn.prepared_at_micros = static_cast<int64_t>(r.U64());
  const uint32_t nreads = r.U32();
  for (uint32_t i = 0; i < nreads && r.ok; ++i) txn.read_keys.push_back(r.Str());
  const uint32_t nwrites = r.U32();
  for (uint32_t i = 0; i < nwrites && r.ok; ++i) {
    txn.write_keys.push_back(r.Str());
  }
  const uint32_t nversions = r.U32();
  for (uint32_t i = 0; i < nversions && r.ok; ++i) {
    Key k = r.Str();
    txn.read_versions[std::move(k)] = r.U64();
  }
  if (!r.ok) return false;
  *out = std::move(txn);
  return true;
}

}  // namespace carousel::kv
