#ifndef CAROUSEL_CAROUSEL_SERVER_CONTEXT_H_
#define CAROUSEL_CAROUSEL_SERVER_CONTEXT_H_

#include <functional>
#include <string>
#include <utility>

#include "carousel/directory.h"
#include "carousel/options.h"
#include "check/history.h"
#include "common/trace.h"
#include "common/types.h"
#include "kv/pending_list.h"
#include "kv/versioned_store.h"
#include "obs/metrics.h"
#include "raft/raft_node.h"
#include "runtime/runtime.h"
#include "sim/message.h"

namespace carousel::core {

/// Fast-path quorum for a participant group of size n = 2f+1:
/// ceil(3f/2) + 1 (paper §4.2).
inline int SupermajorityFor(int group_size) {
  const int f = (group_size - 1) / 2;
  return (3 * f + 1) / 2 + 1;
}

/// The slice of a Carousel data server that its role modules (Participant,
/// Coordinator, RecoveryManager) share: identity, configuration, the
/// storage and consensus substrate, and narrow hooks back into the hosting
/// node (send, liveness, tracing). The context owns none of it — the
/// CarouselServer wires the pointers once at construction and the roles
/// treat the context as their only window onto the host. Time and timers
/// come through the runtime seam's Clock/TimerQueue interfaces, so the
/// roles run unchanged under the simulator and the threaded backend.
struct ServerContext {
  NodeId self = kInvalidNode;
  PartitionId partition = kInvalidPartition;
  const Directory* directory = nullptr;
  const CarouselOptions* options = nullptr;

  kv::VersionedStore* store = nullptr;
  kv::PendingList* pending = nullptr;
  raft::RaftNode* raft = nullptr;
  runtime::Clock* clock = nullptr;
  runtime::TimerQueue* timers = nullptr;

  /// Sends a message from this server; bound to the host's transport by
  /// the CarouselServer (roles never touch the transport directly).
  std::function<void(NodeId to, sim::MessagePtr msg)> send;
  /// Whether the hosting node is alive (timer callbacks must re-check).
  std::function<bool()> node_alive;
  /// Cluster-wide phase recorder; may be null (tracing disabled).
  TraceCollector* traces = nullptr;
  /// Verification history; may be null (recording disabled).
  check::HistoryRecorder* history = nullptr;
  /// Cluster-wide metrics registry; may be null or disabled (then the
  /// helpers below hand out null handles and every op is a no-op branch).
  obs::MetricsRegistry* metrics = nullptr;

  bool IsLeader() const { return raft->is_leader(); }
  SimTime now() const { return clock->now(); }
  bool alive() const { return node_alive && node_alive(); }

  void Send(NodeId to, sim::MessagePtr msg) const {
    send(to, std::move(msg));
  }

  /// Runs `fn` on the host's execution context `delay` microseconds out
  /// (roles re-check alive() when it fires).
  void Schedule(SimTime delay, runtime::EventFn fn) const {
    timers->Schedule(delay, std::move(fn));
  }

  /// ---- Tracing (all no-ops when traces == nullptr) ----
  void TracePhase(const TxnId& tid, TxnPhase phase) const {
    if (traces != nullptr) traces->RecordPhase(tid, phase, now());
  }
  void TraceOutcome(const TxnId& tid, bool committed, bool fast_path,
                    const std::string& reason) const {
    if (traces != nullptr) {
      traces->RecordOutcome(tid, committed, fast_path, reason, now());
    }
  }
  void TraceSeal(const TxnId& tid) const {
    if (traces != nullptr) traces->Seal(tid);
  }

  /// Counter scoped to this server and a role module, e.g.
  /// "server.3.participant.prepares_ok". Null handle when metrics are off,
  /// so roles grab their counters once at construction and bump them
  /// unconditionally.
  obs::Counter RoleCounter(const char* role, const char* name) const {
    if (metrics == nullptr) return {};
    return metrics->GetCounter("server." + std::to_string(self) + "." + role +
                               "." + name);
  }

  /// Records a coordinator decision point in the verification history
  /// (no-op when history == nullptr).
  void RecordDecision(const TxnId& tid, bool committed,
                      const std::string& reason) const {
    if (history != nullptr) {
      history->CoordinatorDecision(tid, self, committed, reason, now());
    }
  }
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_SERVER_CONTEXT_H_
