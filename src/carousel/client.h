#ifndef CAROUSEL_CAROUSEL_CLIENT_H_
#define CAROUSEL_CAROUSEL_CLIENT_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "carousel/directory.h"
#include "carousel/messages.h"
#include "carousel/options.h"
#include "check/history.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/wanrt.h"
#include "runtime/endpoint.h"

namespace carousel::core {

/// Carousel's client-side library (paper Fig. 1). One instance runs inside
/// each application server; transactions follow the 2FI model: Begin ->
/// ReadAndPrepare (all read/write keys up front) -> Write (buffered) ->
/// Commit or Abort. Completion is delivered through callbacks because the
/// client is an actor in the simulated cluster.
///
/// The library piggybacks prepare requests on reads, notifies the
/// coordinator, heartbeats until Commit, uses local replicas when
/// configured (Carousel Fast), and masks leader failures by retransmitting
/// to whole consensus groups.
class CarouselClient : public runtime::Endpoint {
 public:
  using ReadResults = std::map<Key, VersionedValue>;
  /// Status is OK, Aborted (read-only validation failure) or TimedOut.
  using ReadCallback = std::function<void(Status, const ReadResults&)>;
  /// Status is OK (committed), Aborted (with reason) or TimedOut.
  using CommitCallback = std::function<void(Status)>;

  /// `traces`, when non-null, receives per-transaction phase records: the
  /// client opens each trace and stamps the client-visible phase
  /// boundaries (execute/commit); servers stamp the protocol-internal
  /// ones.
  CarouselClient(NodeId id, DcId dc, ClientId client_id,
                 const Directory* directory, const CarouselOptions& options,
                 TraceCollector* traces = nullptr);

  /// Starts a transaction and returns its id.
  TxnId Begin();

  /// Issues the single read round and, unless the write set is empty,
  /// initiates the concurrent Prepare phase. An empty `writes` makes this
  /// a read-only transaction (one roundtrip, no coordinator, §4.4.2),
  /// which completes at the callback.
  void ReadAndPrepare(const TxnId& tid, KeyList reads, KeyList writes,
                      ReadCallback callback);

  /// Buffers a write; `key` must be in the write set given to
  /// ReadAndPrepare. Unwritten write-set keys simply keep their old value.
  void Write(const TxnId& tid, Key key, Value value);

  /// Commits the transaction; the callback reports the outcome.
  void Commit(const TxnId& tid, CommitCallback callback);

  /// Aborts the transaction (fire and forget).
  void Abort(const TxnId& tid);

  /// Attaches a verification history recorder (may be null). The client
  /// stamps invocation, observed reads, buffered writes and the final
  /// client-visible outcome of every transaction it runs.
  void set_history(check::HistoryRecorder* history) { history_ = history; }

  /// Attaches the cluster metrics registry (may be null / disabled; the
  /// counters then become no-op null handles).
  void set_metrics(obs::MetricsRegistry* registry);
  /// Attaches the WANRT ledger (may be null). The issuing client brackets
  /// each transaction: Begin at ReadAndPrepare, Seal when the outcome is
  /// client-visible — so decided_hops is exactly the causal cross-DC hop
  /// depth behind what the application observed.
  void set_wanrt(obs::WanrtLedger* ledger) { wanrt_ = ledger; }

  /// Number of transactions with no local replica for some participant
  /// partition (Remote-Partition Transactions); for experiment reporting.
  uint64_t rpt_count() const { return rpt_count_; }

  /// Phase latency breakdown over committed read-write transactions:
  /// Read phase (ReadAndPrepare -> read callback) and Commit phase
  /// (Commit -> response). The concurrent Prepare phase has no
  /// client-visible end; its latency is what the commit phase absorbs
  /// when it exceeds Read + Commit (paper Fig. 2).
  const Histogram& read_phase_latency() const { return read_phase_; }
  const Histogram& commit_phase_latency() const { return commit_phase_; }

  // runtime::Endpoint interface.
  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override;

 private:
  struct ActiveTxn {
    TxnId tid;
    bool read_only = false;
    std::map<PartitionId, RwKeys> keys;
    NodeId coordinator = kInvalidNode;
    std::set<PartitionId> awaiting_data;
    ReadResults results;
    ReadVersionMap versions_used;
    ReadCallback read_cb;
    bool reads_done = false;
    bool ro_failed = false;
    /// Bumped whenever a read-only transaction restarts its read round;
    /// responses from older attempts are ignored so one snapshot never
    /// mixes reads taken a retry-interval apart.
    uint32_t read_attempt = 0;
    WriteSet writes;
    bool commit_sent = false;
    CommitCallback commit_cb;
    /// Coordinator decided before we asked (e.g., early abort on a prepare
    /// conflict).
    bool have_early_response = false;
    bool early_committed = false;
    std::string early_reason;
    uint64_t hb_gen = 0;
    uint64_t retry_gen = 0;
    int retries = 0;
    SimTime read_started_at = 0;
    SimTime commit_started_at = 0;
  };

  void SendReadPrepares(ActiveTxn& txn, bool retry);
  void SendCommit(ActiveTxn& txn, bool broadcast);
  void MaybeFinishReads(ActiveTxn& txn);
  void FinishCommit(const TxnId& tid, bool committed,
                    const std::string& reason);
  void ArmHeartbeat(const TxnId& tid);
  void ArmRetryTimer(const TxnId& tid);

  ClientId client_id_;
  const Directory* directory_;
  CarouselOptions options_;
  TraceCollector* traces_;
  check::HistoryRecorder* history_ = nullptr;
  uint64_t next_counter_ = 0;
  std::unordered_map<TxnId, ActiveTxn, TxnIdHash> txns_;
  uint64_t rpt_count_ = 0;
  Histogram read_phase_;
  Histogram commit_phase_;
  obs::WanrtLedger* wanrt_ = nullptr;
  // Metrics (null handles until set_metrics with an enabled registry).
  obs::Counter m_started_;
  obs::Counter m_committed_;
  obs::Counter m_aborted_;
  obs::Counter m_timedout_;
  static constexpr int kMaxRetries = 10;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_CLIENT_H_
