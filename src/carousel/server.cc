#include "carousel/server.h"

#include <string>

#include "raft/messages.h"
#include "runtime/storage.h"

namespace carousel::core {

// Wire-size helpers shared by the message structs (declared in messages.h).
size_t SizeOfKeys(const KeyList& keys) {
  size_t sz = 4;
  for (const Key& k : keys) sz += k.size() + 4;
  return sz;
}

size_t SizeOfWrites(const WriteSet& writes) {
  size_t sz = 4;
  for (const auto& [k, v] : writes) sz += k.size() + v.size() + 8;
  return sz;
}

size_t SizeOfVersions(const ReadVersionMap& versions) {
  size_t sz = 4;
  for (const auto& [k, v] : versions) sz += k.size() + 12;
  return sz;
}

size_t SizeOfReads(const std::map<Key, VersionedValue>& reads) {
  size_t sz = 4;
  for (const auto& [k, vv] : reads) sz += k.size() + vv.value.size() + 12;
  return sz;
}

CarouselServer::CarouselServer(const NodeInfo& info, const Directory* directory,
                               runtime::NodeEnv env,
                               const CarouselOptions& options,
                               TraceCollector* traces,
                               obs::MetricsRegistry* metrics)
    : runtime::Endpoint(info.id, info.dc),
      partition_(info.partition),
      directory_(directory),
      options_(options),
      group_members_(directory->Replicas(info.partition)),
      storage_(env.storage),
      batcher_(this, options.batching.ToBatcherOptions()) {
  set_cores(options.cost.cores);
  raft_ = std::make_unique<raft::RaftNode>(partition_, id(), group_members_,
                                           env.clock, env.timers,
                                           std::move(env.rng), options.raft,
                                           storage_);

  // Shared context: the roles' only window onto this host.
  ctx_.self = id();
  ctx_.partition = partition_;
  ctx_.directory = directory_;
  ctx_.options = &options_;
  ctx_.store = &store_;
  ctx_.pending = &pending_;
  ctx_.raft = raft_.get();
  ctx_.clock = env.clock;
  ctx_.timers = env.timers;
  ctx_.send = [this](NodeId to, sim::MessagePtr msg) {
    SendRouted(to, std::move(msg));
  };
  ctx_.node_alive = [this]() { return alive(); };
  ctx_.traces = traces;
  ctx_.metrics = metrics;

  participant_ = std::make_unique<Participant>(&ctx_);
  coordinator_ = std::make_unique<Coordinator>(&ctx_);
  recovery_ =
      std::make_unique<Recovery>(&ctx_, participant_.get(), coordinator_.get());
  recovery_->set_redeliver([this](NodeId from, const sim::MessagePtr& msg) {
    HandleMessage(from, msg);
  });

  // Network routing: the roles register their own message types; Raft
  // protocol traffic forwards untyped into the Raft module.
  participant_->Register(&dispatcher_);
  coordinator_->Register(&dispatcher_);
  for (int t = sim::kRaftRequestVote; t <= sim::kRaftAppendResponse; ++t) {
    dispatcher_.OnRaw(t, [this](NodeId from, const sim::MessagePtr& msg) {
      raft_->HandleMessage(from, msg);
    });
  }

  // Log-apply routing. No-op entries (leader barriers) are expected and
  // carry nothing to apply.
  participant_->RegisterApply(&apply_dispatcher_);
  coordinator_->RegisterApply(&apply_dispatcher_);
  apply_dispatcher_.OnRaw(
      sim::kLogNoop, [](NodeId /*from*/, const sim::MessagePtr& /*msg*/) {});

  // Raft traffic is always server-to-server, so it shares the egress
  // batcher: one flush can carry an AppendEntries plus CPC votes bound for
  // the same replica. Raft tolerates the added <=flush_interval delay; it
  // sits orders of magnitude under election timeouts.
  raft_->set_send_fn([this](NodeId to, sim::MessagePtr msg) {
    SendRouted(to, std::move(msg));
  });
  raft_->set_apply_fn([this](uint64_t index, const sim::MessagePtr& payload) {
    ApplyLogEntry(index, payload);
  });
  raft_->set_vote_attachment_fn([this]() { return pending_.Snapshot(); });
  raft_->set_leadership_fn(
      [this](uint64_t term, std::vector<std::vector<kv::PendingTxn>> lists) {
        recovery_->OnLeadership(term, std::move(lists));
      });
  raft_->set_step_down_fn(
      [this](uint64_t term) { recovery_->OnStepDown(term); });
  raft_->set_elected_fn([this](uint64_t term) { recovery_->OnElected(term); });

  // Observability: raft ack-span stamping plus zero-hot-path-cost
  // exposures — the registry reads these only at snapshot time, so an
  // enabled-but-unsampled run pays nothing between snapshots.
  if (metrics != nullptr && metrics->enabled()) {
    raft_->set_span_tracking(true);
    const std::string prefix = "server." + std::to_string(id()) + ".";
    metrics->ExposeCounter(prefix + "dispatch.messages",
                           dispatcher_.dispatched_cell());
    metrics->ExposeCounter(prefix + "dispatch.applies",
                           apply_dispatcher_.dispatched_cell());
    metrics->ExposeGauge(prefix + "raft.log_entries", [this]() {
      return static_cast<int64_t>(raft_->last_log_index());
    });
    metrics->ExposeGauge(prefix + "raft.elections_won", [this]() {
      return static_cast<int64_t>(raft_->elections_won());
    });
    metrics->ExposeGauge(prefix + "raft.proposals", [this]() {
      return static_cast<int64_t>(raft_->proposals());
    });
    metrics->ExposeGauge(prefix + "coordinator.active_txns", [this]() {
      return static_cast<int64_t>(coordinator_->active_txns());
    });
    metrics->ExposeGauge(prefix + "recovery.buffered", [this]() {
      return static_cast<int64_t>(recovery_->buffered_count());
    });
    metrics->ExposeGauge(prefix + "pending.size", [this]() {
      return static_cast<int64_t>(pending_.size());
    });
  }
}

CarouselServer::~CarouselServer() = default;

void CarouselServer::Start() {
  if (storage_ != nullptr) {
    // Restore any prepare pins a previous life journaled — §4.3.3's
    // supermajority recovery counts them, so they must outlive a SIGKILL
    // just like votedFor. Seed BEFORE wiring the observers (restores must
    // not re-journal), and wire the observers BEFORE raft_->Start (log
    // replay below may legitimately add/remove pins, and those mutations
    // must hit the journal; duplicate adds are idempotent upserts).
    runtime::DurableNodeState durable;
    if (storage_->Load(&durable)) {
      for (const auto& [key, blob] : durable.pending) {
        kv::PendingTxn txn;
        if (kv::DecodePendingTxn(blob.data(), blob.size(), &txn)) {
          (void)pending_.Add(std::move(txn));
        }
      }
    }
    pending_.SetObservers(
        [this](const kv::PendingTxn& txn) {
          storage_->PersistPendingAdd(txn.tid.ToString(),
                                      kv::EncodePendingTxn(txn));
        },
        [this](const TxnId& tid) {
          storage_->PersistPendingErase(tid.ToString());
        });
  }
  const bool bootstrap_leader =
      directory_->topology().node(id()).replica_index == 0;
  raft_->Start(bootstrap_leader);
  participant_->ArmPendingGcTimer();
}

void CarouselServer::SendRouted(NodeId to, sim::MessagePtr msg) {
  if (options_.batching.enabled &&
      !directory_->topology().node(to).is_client) {
    batcher_.Send(to, std::move(msg));
    return;
  }
  Send(to, std::move(msg));
}

void CarouselServer::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  // A batch envelope unwraps here: each carried message takes the exact
  // path it would have taken arriving alone (recovery buffering included),
  // in its original send order. Envelopes never nest.
  if (const auto* env = sim::TryAs<sim::BatchEnvelopeMsg>(*msg)) {
    for (const sim::MessagePtr& item : env->items) {
      HandleMessage(from, item);
    }
    return;
  }
  // A freshly elected leader buffers requests until the CPC
  // failure-handling protocol completes (paper §4.3.3 step 1). Responses
  // (decisions, acks, heartbeats) and Raft traffic pass straight through.
  if (recovery_->MaybeBuffer(from, msg)) return;
  dispatcher_.Dispatch(from, msg);
}

SimTime CarouselServer::PayloadCost(const sim::Message& msg) const {
  const ServerCostModel& c = options_.cost;
  if (const auto* m = sim::TryAs<ReadPrepareMsg>(msg)) {
    return c.per_read_key * static_cast<SimTime>(m->read_keys.size()) +
           c.per_occ_key *
               static_cast<SimTime>(m->read_keys.size() + m->write_keys.size());
  }
  if (const auto* m = sim::TryAs<raft::AppendEntriesMsg>(msg)) {
    return c.per_log_entry * static_cast<SimTime>(m->entries.size());
  }
  if (const auto* m = sim::TryAs<WritebackMsg>(msg)) {
    return c.per_write_key * static_cast<SimTime>(m->writes.size());
  }
  return 0;
}

SimTime CarouselServer::ServiceCost(const sim::Message& msg) const {
  const ServerCostModel& c = options_.cost;
  if (c.base == 0 && c.per_read_key == 0 && c.per_occ_key == 0 &&
      c.per_write_key == 0 && c.per_log_entry == 0) {
    return 0;
  }
  // An envelope pays the per-message base once; each carried message pays
  // only the cheaper demux charge plus its payload-proportional work.
  // This cost split is where protocol batching buys simulated throughput.
  if (const auto* env = sim::TryAs<sim::BatchEnvelopeMsg>(msg)) {
    const SimTime per_item =
        c.per_batched_item < 0 ? c.base : c.per_batched_item;
    SimTime total = c.base;
    for (const sim::MessagePtr& item : env->items) {
      total += per_item + PayloadCost(*item);
    }
    return total;
  }
  return c.base + PayloadCost(msg);
}

void CarouselServer::OnCrash() {
  // Buffered egress dies with the process, like bytes in a socket buffer.
  batcher_.Clear();
  raft_->OnCrash();
  participant_->OnCrash();
}

void CarouselServer::OnRecover() {
  recovery_->OnHostRecover();
  raft_->OnRecover();
  participant_->ArmPendingGcTimer();
}

void CarouselServer::ApplyLogEntry(uint64_t index,
                                   const sim::MessagePtr& payload) {
  (void)index;
  if (payload == nullptr) return;
  apply_dispatcher_.Dispatch(kInvalidNode, payload);
}

}  // namespace carousel::core
