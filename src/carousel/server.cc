#include "carousel/server.h"

#include <algorithm>
#include <cassert>

#include "sim/simulator.h"

namespace {
// Protocol tracing for debugging: set CAROUSEL_TRACE=1 in the environment.
bool TraceEnabled() {
  static const bool enabled = ::getenv("CAROUSEL_TRACE") != nullptr;
  return enabled;
}
}  // namespace

namespace carousel::core {

size_t SizeOfKeys(const KeyList& keys) {
  size_t sz = 4;
  for (const Key& k : keys) sz += k.size() + 4;
  return sz;
}

size_t SizeOfWrites(const WriteSet& writes) {
  size_t sz = 4;
  for (const auto& [k, v] : writes) sz += k.size() + v.size() + 8;
  return sz;
}

size_t SizeOfVersions(const ReadVersionMap& versions) {
  size_t sz = 4;
  for (const auto& [k, v] : versions) sz += k.size() + 12;
  return sz;
}

size_t SizeOfReads(const std::map<Key, VersionedValue>& reads) {
  size_t sz = 4;
  for (const auto& [k, vv] : reads) sz += k.size() + vv.value.size() + 12;
  return sz;
}

CarouselServer::CarouselServer(const NodeInfo& info, const Directory* directory,
                               sim::Simulator* sim,
                               const CarouselOptions& options)
    : sim::Node(info.id, info.dc),
      partition_(info.partition),
      directory_(directory),
      options_(options),
      group_members_(directory->Replicas(info.partition)) {
  set_cores(options.cost.cores);
  raft_ = std::make_unique<raft::RaftNode>(partition_, id(), group_members_,
                                           sim, options.raft);
  raft_->set_send_fn([this](NodeId to, sim::MessagePtr msg) {
    network()->Send(id(), to, std::move(msg));
  });
  raft_->set_apply_fn([this](uint64_t index, const sim::MessagePtr& payload) {
    ApplyLogEntry(index, payload);
  });
  raft_->set_vote_attachment_fn(
      [this]() { return pending_.Snapshot(); });
  raft_->set_leadership_fn(
      [this](uint64_t term, std::vector<std::vector<kv::PendingTxn>> lists) {
        OnLeadership(term, std::move(lists));
      });
  raft_->set_step_down_fn([this](uint64_t term) { OnStepDown(term); });
  raft_->set_elected_fn([this](uint64_t term) {
    // Buffer client/coordinator requests from the instant of election
    // until the CPC failure-handling protocol completes (§4.3.3 step 1).
    (void)term;
    serving_ = false;
  });
}

void CarouselServer::Start() {
  const bool bootstrap_leader =
      directory_->topology().node(id()).replica_index == 0;
  raft_->Start(bootstrap_leader);
  ArmPendingGcTimer();
}

void CarouselServer::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  const int t = msg->type();
  if (t >= sim::kRaftRequestVote && t <= sim::kRaftAppendResponse) {
    raft_->HandleMessage(from, msg);
    return;
  }

  // A freshly elected leader buffers requests until the CPC
  // failure-handling protocol completes (paper §4.3.3 step 1). Responses
  // (decisions, acks, heartbeats) are processed immediately.
  if (!serving_) {
    switch (t) {
      case sim::kCarouselReadPrepare:
      case sim::kCarouselQueryPrepare:
      case sim::kCarouselQueryDecision:
      case sim::kCarouselWriteback:
      case sim::kCarouselCoordPrepare:
      case sim::kCarouselCommitRequest:
      case sim::kCarouselAbortRequest:
        buffered_.emplace_back(from, msg);
        return;
      default:
        break;
    }
  }

  switch (t) {
    case sim::kCarouselReadPrepare:
      HandleReadPrepare(from, sim::As<ReadPrepareMsg>(*msg));
      break;
    case sim::kCarouselQueryPrepare:
      HandleQueryPrepare(from, sim::As<QueryPrepareMsg>(*msg));
      break;
    case sim::kCarouselWriteback:
      HandleWriteback(from, sim::As<WritebackMsg>(*msg));
      break;
    case sim::kCarouselQueryDecision:
      HandleQueryDecision(from, sim::As<QueryDecisionMsg>(*msg));
      break;
    case sim::kCarouselCoordPrepare:
      HandleCoordPrepare(from, sim::As<CoordPrepareMsg>(*msg));
      break;
    case sim::kCarouselCommitRequest:
      HandleCommitRequest(from, sim::As<CommitRequestMsg>(*msg));
      break;
    case sim::kCarouselAbortRequest:
      HandleAbortRequest(from, sim::As<AbortRequestMsg>(*msg));
      break;
    case sim::kCarouselPrepareDecision:
      HandlePrepareDecision(from, sim::As<PrepareDecisionMsg>(*msg));
      break;
    case sim::kCarouselWritebackAck:
      HandleWritebackAck(from, sim::As<WritebackAckMsg>(*msg));
      break;
    case sim::kCarouselHeartbeat:
      HandleHeartbeat(from, sim::As<HeartbeatMsg>(*msg));
      break;
    default:
      break;
  }
}

SimTime CarouselServer::ServiceCost(const sim::Message& msg) const {
  const ServerCostModel& c = options_.cost;
  if (c.base == 0 && c.per_read_key == 0 && c.per_occ_key == 0 &&
      c.per_write_key == 0 && c.per_log_entry == 0) {
    return 0;
  }
  switch (msg.type()) {
    case sim::kCarouselReadPrepare: {
      const auto& m = sim::As<ReadPrepareMsg>(msg);
      return c.base + c.per_read_key * static_cast<SimTime>(m.read_keys.size()) +
             c.per_occ_key *
                 static_cast<SimTime>(m.read_keys.size() + m.write_keys.size());
    }
    case sim::kRaftAppendEntries: {
      const auto& m = sim::As<raft::AppendEntriesMsg>(msg);
      return c.base + c.per_log_entry * static_cast<SimTime>(m.entries.size());
    }
    case sim::kCarouselWriteback: {
      const auto& m = sim::As<WritebackMsg>(msg);
      return c.base + c.per_write_key * static_cast<SimTime>(m.writes.size());
    }
    default:
      return c.base;
  }
}

void CarouselServer::OnCrash() {
  raft_->OnCrash();
  gc_timer_gen_++;
}

void CarouselServer::OnRecover() {
  serving_ = true;
  raft_->OnRecover();
  ArmPendingGcTimer();
}

// ---------------------------------------------------------------------------
// Participant role
// ---------------------------------------------------------------------------

void CarouselServer::HandleReadPrepare(NodeId from, const ReadPrepareMsg& msg) {
  (void)from;
  if (TraceEnabled()) {
    fprintf(stderr,
            "[%lld] node %d got ReadPrepare tid %s from %d leader=%d retry=%d "
            "pending=%zu serving=%d\n",
            (long long)simulator()->now(), id(), msg.tid.ToString().c_str(),
            from, IsLeader(), msg.is_retry, pending_.size(), serving_);
  }
  if (msg.read_only) {
    if (!IsLeader()) return;  // Read-only reads go to leaders only.
    auto reply = std::make_shared<ReadResponseMsg>();
    reply->tid = msg.tid;
    reply->partition = partition_;
    reply->from_leader = true;
    // OCC validation: fail if any read key has a pending writer (§4.4.2).
    reply->ok = !pending_.HasPendingWriter(msg.read_keys);
    if (reply->ok) {
      for (const Key& k : msg.read_keys) reply->reads[k] = store_.Get(k);
    }
    network()->Send(id(), msg.client, std::move(reply));
    return;
  }

  if (IsLeader()) {
    if (msg.want_data) {
      auto reply = std::make_shared<ReadResponseMsg>();
      reply->tid = msg.tid;
      reply->partition = partition_;
      reply->from_leader = true;
      for (const Key& k : msg.read_keys) reply->reads[k] = store_.Get(k);
      network()->Send(id(), msg.client, std::move(reply));
    }
    // Idempotency for retries.
    auto done = decided_.find(msg.tid);
    if (done != decided_.end()) {
      SendDecision(msg.coordinator, msg.tid, done->second, {}, raft_->term(),
                   /*is_leader=*/true, /*via_fast_path=*/false);
      return;
    }
    if (pending_.Contains(msg.tid)) {
      const kv::PendingTxn* entry = pending_.Find(msg.tid);
      if (logged_prepares_.count(msg.tid) > 0) {
        SendDecision(msg.coordinator, msg.tid, true, entry->read_versions,
                     entry->term, true, false);
      }
      // else: the slow-path decision goes out when the log entry commits.
      return;
    }
    LeaderPrepare(msg.tid, msg.read_keys, msg.write_keys, msg.coordinator,
                  msg.fast_path);
    return;
  }

  // Follower: CPC fast path and/or local-read service.
  if (msg.fast_path && !msg.is_retry) {
    FollowerFastPrepare(msg);
  } else if (msg.want_data) {
    auto reply = std::make_shared<ReadResponseMsg>();
    reply->tid = msg.tid;
    reply->partition = partition_;
    reply->from_leader = false;
    for (const Key& k : msg.read_keys) reply->reads[k] = store_.Get(k);
    network()->Send(id(), msg.client, std::move(reply));
  }
}

void CarouselServer::LeaderPrepare(const TxnId& tid, const KeyList& reads,
                                   const KeyList& writes, NodeId coordinator,
                                   bool fast_path) {
  ReadVersionMap versions;
  for (const Key& k : reads) versions[k] = store_.GetVersion(k);

  const bool prepared = !pending_.HasConflict(reads, writes);
  const uint64_t term = raft_->term();
  if (prepared) {
    kv::PendingTxn entry;
    entry.tid = tid;
    entry.read_keys = reads;
    entry.write_keys = writes;
    entry.read_versions = versions;
    entry.term = term;
    entry.coordinator = coordinator;
    entry.prepared_at_micros = simulator()->now();
    pending_.Add(std::move(entry)).ok();
  }

  if (fast_path) {
    // CPC: the leader's direct (fast) reply goes out before replication.
    SendDecision(coordinator, tid, prepared, versions, term, true, true);
  }

  auto log = std::make_shared<LogPrepareResult>();
  log->tid = tid;
  log->coordinator = coordinator;
  log->prepared = prepared;
  log->read_keys = reads;
  log->write_keys = writes;
  log->read_versions = versions;
  log->term = term;
  raft_->Propose(std::move(log)).ok();
}

void CarouselServer::FollowerFastPrepare(const ReadPrepareMsg& msg) {
  if (msg.want_data) {
    // Local-read optimization (§4.4.1): serve (possibly stale) data.
    auto reply = std::make_shared<ReadResponseMsg>();
    reply->tid = msg.tid;
    reply->partition = partition_;
    reply->from_leader = false;
    for (const Key& k : msg.read_keys) reply->reads[k] = store_.Get(k);
    network()->Send(id(), msg.client, std::move(reply));
  }

  if (decided_.count(msg.tid) > 0 || pending_.Contains(msg.tid)) return;

  ReadVersionMap versions;
  for (const Key& k : msg.read_keys) versions[k] = store_.GetVersion(k);
  const bool prepared = !pending_.HasConflict(msg.read_keys, msg.write_keys);
  const uint64_t term = raft_->term();
  if (prepared) {
    kv::PendingTxn entry;
    entry.tid = msg.tid;
    entry.read_keys = msg.read_keys;
    entry.write_keys = msg.write_keys;
    entry.read_versions = versions;
    entry.term = term;
    entry.coordinator = msg.coordinator;
    entry.prepared_at_micros = simulator()->now();
    pending_.Add(std::move(entry)).ok();
  }
  SendDecision(msg.coordinator, msg.tid, prepared, versions, term,
               /*is_leader=*/false, /*via_fast_path=*/true);
}

void CarouselServer::SendDecision(NodeId coordinator, const TxnId& tid,
                                  bool prepared, ReadVersionMap versions,
                                  uint64_t term, bool is_leader,
                                  bool via_fast_path) {
  if (coordinator == kInvalidNode) return;
  auto msg = std::make_shared<PrepareDecisionMsg>();
  msg->tid = tid;
  msg->partition = partition_;
  msg->replica = id();
  msg->is_leader = is_leader;
  msg->via_fast_path = via_fast_path;
  msg->prepared = prepared;
  msg->read_versions = std::move(versions);
  msg->term = term;
  network()->Send(id(), coordinator, std::move(msg));
}

void CarouselServer::HandleQueryPrepare(NodeId from,
                                        const QueryPrepareMsg& msg) {
  (void)from;
  if (!IsLeader()) return;
  auto done = decided_.find(msg.tid);
  if (done != decided_.end()) {
    SendDecision(msg.coordinator, msg.tid, done->second, {}, raft_->term(),
                 true, false);
    return;
  }
  if (pending_.Contains(msg.tid)) {
    const kv::PendingTxn* entry = pending_.Find(msg.tid);
    if (logged_prepares_.count(msg.tid) > 0) {
      SendDecision(msg.coordinator, msg.tid, true, entry->read_versions,
                   entry->term, true, false);
    }
    return;
  }
  // The transaction is unknown here (lost before it was durably prepared):
  // prepare it afresh from the key sets in the query.
  LeaderPrepare(msg.tid, msg.read_keys, msg.write_keys, msg.coordinator,
                /*fast_path=*/false);
}

void CarouselServer::HandleWriteback(NodeId from, const WritebackMsg& msg) {
  (void)from;
  if (!IsLeader()) return;
  auto done = decided_.find(msg.tid);
  if (done != decided_.end()) {
    auto ack = std::make_shared<WritebackAckMsg>();
    ack->tid = msg.tid;
    ack->partition = partition_;
    network()->Send(id(), msg.coordinator, std::move(ack));
    return;
  }
  auto log = std::make_shared<LogCommit>();
  log->tid = msg.tid;
  log->coordinator = msg.coordinator;
  log->commit = msg.commit;
  log->writes = msg.writes;
  raft_->Propose(std::move(log)).ok();
}

void CarouselServer::HandleQueryDecision(NodeId from,
                                         const QueryDecisionMsg& msg) {
  if (!IsLeader()) return;
  auto reply = std::make_shared<WritebackMsg>();
  reply->tid = msg.tid;
  reply->partition = msg.partition;
  reply->coordinator = id();

  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    reply->commit = done->second;
    if (reply->commit) {
      auto it = coord_txns_.find(msg.tid);
      if (it != coord_txns_.end()) {
        for (const auto& [k, v] : it->second.writes) {
          if (directory_->PartitionFor(k) == msg.partition) {
            reply->writes[k] = v;
          }
        }
      }
    }
    network()->Send(id(), from, std::move(reply));
    return;
  }
  auto it = coord_txns_.find(msg.tid);
  if (it != coord_txns_.end() && !it->second.decided) {
    return;  // Still in progress; the writeback will arrive eventually.
  }
  // Unknown transaction: fence it as aborted. Safe because a commit
  // decision is always preceded by replicated write data in this group.
  coord_decided_[msg.tid] = false;
  reply->commit = false;
  network()->Send(id(), from, std::move(reply));
}

void CarouselServer::ArmPendingGcTimer() {
  if (options_.pending_gc_interval <= 0) return;
  const uint64_t gen = ++gc_timer_gen_;
  simulator()->Schedule(options_.pending_gc_interval, [this, gen]() {
    if (gen != gc_timer_gen_ || !alive()) return;
    if (IsLeader()) {
      const SimTime cutoff = simulator()->now() - options_.pending_gc_interval;
      for (const kv::PendingTxn& entry : pending_.Snapshot()) {
        if (entry.prepared_at_micros < cutoff &&
            entry.coordinator != kInvalidNode) {
          auto probe = std::make_shared<QueryDecisionMsg>();
          probe->tid = entry.tid;
          probe->partition = partition_;
          network()->Send(id(), entry.coordinator, std::move(probe));
        }
      }
    }
    gc_timer_gen_--;  // Allow re-arm with the same gen sequencing.
    ArmPendingGcTimer();
  });
}

// ---------------------------------------------------------------------------
// Coordinator role
// ---------------------------------------------------------------------------

CarouselServer::CoordTxn& CarouselServer::GetOrCreateCoordTxn(
    const TxnId& tid) {
  auto [it, inserted] = coord_txns_.try_emplace(tid);
  CoordTxn& txn = it->second;
  if (inserted) {
    txn.tid = tid;
    txn.last_heartbeat = simulator()->now();
    // Absorb decisions that raced ahead of the prepare notification.
    auto orphan = orphan_decisions_.find(tid);
    if (orphan != orphan_decisions_.end()) {
      for (const auto& [partition, decision] : orphan->second) {
        RecordDecision(txn, partition, decision);
      }
      orphan_decisions_.erase(orphan);
    }
  }
  return txn;
}

void CarouselServer::HandleCoordPrepare(NodeId from,
                                        const CoordPrepareMsg& msg) {
  (void)from;
  if (!IsLeader()) return;
  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    ReplyToClient(msg.client, msg.tid, done->second, "replayed");
    return;
  }
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  txn.fast = msg.fast_path;
  if (txn.keys.empty()) txn.keys = msg.keys;
  txn.last_heartbeat = simulator()->now();
  if (!txn.heartbeat_timer_armed) ArmHeartbeatTimer(txn);
  ArmCoordRetryTimer(msg.tid);

  if (!txn.info_proposed) {
    txn.info_proposed = true;
    auto log = std::make_shared<LogTxnInfo>();
    log->tid = msg.tid;
    log->client = msg.client;
    log->fast_path = msg.fast_path;
    log->keys = msg.keys;
    raft_->Propose(std::move(log)).ok();
  }
  EvaluateCoordTxn(txn);
}

void CarouselServer::HandleCommitRequest(NodeId from,
                                         const CommitRequestMsg& msg) {
  (void)from;
  if (!IsLeader()) {
    auto redirect = std::make_shared<NotLeaderMsg>();
    redirect->tid = msg.tid;
    redirect->partition = partition_;
    redirect->leader_hint = raft_->leader_hint();
    network()->Send(id(), msg.client, std::move(redirect));
    return;
  }
  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    ReplyToClient(msg.client, msg.tid, done->second, "replayed");
    return;
  }
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  if (txn.keys.empty()) txn.keys = msg.keys;
  if (txn.commit_received) return;  // Duplicate (retry in flight).
  txn.commit_received = true;
  txn.writes = msg.writes;
  txn.client_versions = msg.read_versions;
  ArmCoordRetryTimer(msg.tid);

  if (!txn.info_proposed) {
    // The prepare notification was lost (e.g., coordinator failover):
    // replicate transaction info now, from the copy in the commit request.
    txn.info_proposed = true;
    auto info = std::make_shared<LogTxnInfo>();
    info->tid = msg.tid;
    info->client = msg.client;
    info->fast_path = txn.fast;
    info->keys = txn.keys;
    raft_->Propose(std::move(info)).ok();
  }

  auto log = std::make_shared<LogWriteData>();
  log->tid = msg.tid;
  log->writes = msg.writes;
  log->client_versions = msg.read_versions;
  raft_->Propose(std::move(log)).ok();
  EvaluateCoordTxn(txn);
}

void CarouselServer::HandleAbortRequest(NodeId from,
                                        const AbortRequestMsg& msg) {
  (void)from;
  if (!IsLeader()) return;
  if (coord_decided_.count(msg.tid) > 0) return;
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  txn.client_abort = true;
  EvaluateCoordTxn(txn);
}

void CarouselServer::HandlePrepareDecision(NodeId from,
                                           const PrepareDecisionMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.tid);
  if (it == coord_txns_.end()) {
    if (coord_decided_.count(msg.tid) > 0) return;
    orphan_decisions_[msg.tid].emplace_back(msg.partition, msg);
    return;
  }
  RecordDecision(it->second, msg.partition, msg);
  EvaluateCoordTxn(it->second);
}

void CarouselServer::RecordDecision(CoordTxn& txn, PartitionId partition,
                                    const PrepareDecisionMsg& msg) {
  if (TraceEnabled()) {
    fprintf(stderr, "[%lld] coord %d tid %s part %d decision from %d fast=%d leader=%d prepared=%d term=%llu\n",
            (long long)simulator()->now(), id(), txn.tid.ToString().c_str(), partition,
            msg.replica, msg.via_fast_path, msg.is_leader, msg.prepared,
            (unsigned long long)msg.term);
  }
  PartState& part = txn.parts[partition];
  if (msg.via_fast_path) {
    FastReply reply;
    reply.prepared = msg.prepared;
    reply.versions = msg.read_versions;
    reply.term = msg.term;
    reply.is_leader = msg.is_leader;
    part.fast_replies[msg.replica] = std::move(reply);
  } else if (!part.slow_seen) {
    part.slow_seen = true;
    if (!part.decided) {
      part.decided = true;
      part.prepared = msg.prepared;
      part.leader_versions = msg.read_versions;
    }
    // When the fast path already decided this partition, the slow-path
    // response is simply dropped (paper §4.2, CPC guarantees agreement).
  }
}

void CarouselServer::EvaluateCoordTxn(CoordTxn& txn) {
  if (txn.decided) return;

  // CPC fast-path evaluation per participant partition (§4.2): identical
  /// decisions from an up-to-date supermajority that includes the leader.
  if (txn.fast) {
    for (const auto& [p, rw] : txn.keys) {
      PartState& part = txn.parts[p];
      if (part.decided) continue;
      const FastReply* leader_reply = nullptr;
      for (const auto& [node, reply] : part.fast_replies) {
        if (reply.is_leader) {
          leader_reply = &reply;
          break;
        }
      }
      if (leader_reply == nullptr) continue;
      int agreeing = 0;
      for (const auto& [node, reply] : part.fast_replies) {
        if (reply.prepared == leader_reply->prepared &&
            reply.term == leader_reply->term &&
            reply.versions == leader_reply->versions) {
          agreeing++;
        }
      }
      const int group_size =
          static_cast<int>(directory_->Replicas(p).size());
      if (agreeing >= SupermajorityFor(group_size)) {
        part.decided = true;
        part.prepared = leader_reply->prepared;
        part.leader_versions = leader_reply->versions;
      }
    }
  }

  // Any participant abort aborts the transaction; the coordinator may
  // answer immediately without waiting for the other participants.
  for (const auto& [p, rw] : txn.keys) {
    auto it = txn.parts.find(p);
    if (it != txn.parts.end() && it->second.decided && !it->second.prepared) {
      Decide(txn, false, "prepare conflict");
      return;
    }
  }

  if (txn.client_abort && !txn.commit_received) {
    Decide(txn, false, "client abort");
    return;
  }

  if (!txn.commit_received || !txn.write_logged || !txn.info_logged ||
      txn.keys.empty()) {
    return;
  }
  for (const auto& [p, rw] : txn.keys) {
    auto it = txn.parts.find(p);
    if (it == txn.parts.end() || !it->second.decided) return;
  }

  // All participants prepared; validate the versions the client actually
  // read (stale local-replica reads, §4.4.1).
  for (const auto& [key, version] : txn.client_versions) {
    const PartitionId p = directory_->PartitionFor(key);
    auto it = txn.parts.find(p);
    if (it == txn.parts.end()) continue;
    auto lv = it->second.leader_versions.find(key);
    if (lv != it->second.leader_versions.end() && lv->second != version) {
      Decide(txn, false, "stale read");
      return;
    }
  }
  Decide(txn, true, "");
}

void CarouselServer::Decide(CoordTxn& txn, bool commit,
                            const std::string& reason) {
  if (TraceEnabled()) {
    fprintf(stderr, "[%lld] coord %d tid %s DECIDE commit=%d reason=%s\n",
            (long long)simulator()->now(), id(), txn.tid.ToString().c_str(),
            commit, reason.c_str());
  }
  txn.decided = true;
  txn.committed = commit;
  txn.reason = reason;
  txn.hb_timer_gen++;  // Cancel the client-failure timer.
  coord_decided_[txn.tid] = commit;

  // The coordinator answers the client immediately: on commit, write data
  // is already replicated here and prepare decisions are replicated at the
  // participants; on abort no durability is needed (§4.1.2).
  ReplyToClient(txn.client, txn.tid, commit, reason);

  if (IsLeader()) {
    auto log = std::make_shared<LogDecision>();
    log->tid = txn.tid;
    log->commit = commit;
    raft_->Propose(std::move(log)).ok();
  }
  StartWriteback(txn);
  ArmCoordRetryTimer(txn.tid);
}

void CarouselServer::StartWriteback(CoordTxn& txn) {
  txn.writeback_started = true;
  for (const auto& [p, rw] : txn.keys) {
    if (!txn.parts[p].writeback_acked) {
      SendWriteback(txn, p, directory_->CachedLeader(p));
    }
  }
}

void CarouselServer::SendWriteback(CoordTxn& txn, PartitionId partition,
                                   NodeId target) {
  auto msg = std::make_shared<WritebackMsg>();
  msg->tid = txn.tid;
  msg->partition = partition;
  msg->coordinator = id();
  msg->commit = txn.committed;
  if (txn.committed) {
    for (const auto& [k, v] : txn.writes) {
      if (directory_->PartitionFor(k) == partition) msg->writes[k] = v;
    }
  }
  network()->Send(id(), target, std::move(msg));
}

void CarouselServer::ArmHeartbeatTimer(CoordTxn& txn) {
  txn.heartbeat_timer_armed = true;
  const TxnId tid = txn.tid;
  const uint64_t gen = txn.hb_timer_gen;
  simulator()->Schedule(options_.heartbeat_interval, [this, tid, gen]() {
    if (!alive() || !IsLeader()) return;
    auto it = coord_txns_.find(tid);
    if (it == coord_txns_.end()) return;
    CoordTxn& txn = it->second;
    if (txn.decided || txn.commit_received || gen != txn.hb_timer_gen) return;
    const SimTime deadline =
        txn.last_heartbeat +
        options_.heartbeat_interval * options_.heartbeat_misses;
    if (simulator()->now() > deadline) {
      // h consecutive heartbeats missed before Commit: the client is
      // presumed dead; abort (§4.3.1).
      Decide(txn, false, "client timeout");
      return;
    }
    ArmHeartbeatTimer(txn);
  });
}

void CarouselServer::ArmCoordRetryTimer(const TxnId& tid) {
  if (options_.coordinator_retry_interval <= 0) return;
  auto it = coord_txns_.find(tid);
  if (it == coord_txns_.end()) return;
  const uint64_t gen = ++it->second.retry_timer_gen;
  simulator()->Schedule(options_.coordinator_retry_interval,
                        [this, tid, gen]() {
    if (!alive() || !IsLeader()) return;
    auto it = coord_txns_.find(tid);
    if (it == coord_txns_.end()) return;
    CoordTxn& txn = it->second;
    if (gen != txn.retry_timer_gen) return;
    if (!txn.decided) {
      // Re-acquire missing prepare decisions from every replica (the
      // leader may have moved).
      for (const auto& [p, rw] : txn.keys) {
        auto part = txn.parts.find(p);
        if (part != txn.parts.end() && part->second.decided) continue;
        for (NodeId replica : directory_->Replicas(p)) {
          auto query = std::make_shared<QueryPrepareMsg>();
          query->tid = tid;
          query->partition = p;
          query->coordinator = id();
          query->read_keys = rw.reads;
          query->write_keys = rw.writes;
          network()->Send(id(), replica, std::move(query));
        }
      }
    } else {
      // Retransmit writebacks to all replicas of unacked partitions.
      for (const auto& [p, rw] : txn.keys) {
        if (txn.parts[p].writeback_acked) continue;
        for (NodeId replica : directory_->Replicas(p)) {
          SendWriteback(txn, p, replica);
        }
      }
    }
    ArmCoordRetryTimer(tid);
  });
}

void CarouselServer::HandleWritebackAck(NodeId from,
                                        const WritebackAckMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.tid);
  if (it == coord_txns_.end()) return;
  it->second.parts[msg.partition].writeback_acked = true;
  MaybeFinishCoordTxn(msg.tid);
}

void CarouselServer::MaybeFinishCoordTxn(const TxnId& tid) {
  auto it = coord_txns_.find(tid);
  if (it == coord_txns_.end()) return;
  CoordTxn& txn = it->second;
  if (!txn.decided || !txn.decision_logged) return;
  for (const auto& [p, rw] : txn.keys) {
    auto part = txn.parts.find(p);
    if (part == txn.parts.end() || !part->second.writeback_acked) return;
  }
  coord_txns_.erase(it);  // Timers notice the missing entry and stop.
}

void CarouselServer::HandleHeartbeat(NodeId from, const HeartbeatMsg& msg) {
  (void)from;
  if (!IsLeader()) return;
  auto it = coord_txns_.find(msg.tid);
  if (it != coord_txns_.end()) {
    it->second.last_heartbeat = simulator()->now();
    it->second.client = msg.client;
    return;
  }
  if (coord_decided_.count(msg.tid) > 0) return;
  // First contact via heartbeat (prepare notification still in flight or
  // lost): track the transaction so the client-failure timer exists.
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  if (!txn.heartbeat_timer_armed) ArmHeartbeatTimer(txn);
}

void CarouselServer::ReplyToClient(NodeId client, const TxnId& tid,
                                   bool committed, const std::string& reason) {
  if (client == kInvalidNode) return;
  auto msg = std::make_shared<CommitResponseMsg>();
  msg->tid = tid;
  msg->committed = committed;
  msg->reason = reason;
  network()->Send(id(), client, std::move(msg));
}

// ---------------------------------------------------------------------------
// Raft integration
// ---------------------------------------------------------------------------

void CarouselServer::ApplyLogEntry(uint64_t index,
                                   const sim::MessagePtr& payload) {
  (void)index;
  if (payload == nullptr) return;
  switch (payload->type()) {
    case sim::kLogPrepareResult:
      ApplyPrepareResult(sim::As<LogPrepareResult>(*payload));
      break;
    case sim::kLogCommit:
      ApplyCommitEntry(sim::As<LogCommit>(*payload));
      break;
    case sim::kLogTxnInfo: {
      const auto& info = sim::As<LogTxnInfo>(*payload);
      CoordTxn& txn = GetOrCreateCoordTxn(info.tid);
      txn.client = info.client;
      txn.fast = info.fast_path;
      if (txn.keys.empty()) txn.keys = info.keys;
      txn.info_logged = true;
      txn.info_proposed = true;
      if (IsLeader()) EvaluateCoordTxn(txn);
      break;
    }
    case sim::kLogWriteData: {
      const auto& data = sim::As<LogWriteData>(*payload);
      CoordTxn& txn = GetOrCreateCoordTxn(data.tid);
      txn.commit_received = true;
      txn.write_logged = true;
      txn.writes = data.writes;
      txn.client_versions = data.client_versions;
      if (IsLeader()) EvaluateCoordTxn(txn);
      break;
    }
    case sim::kLogDecision: {
      const auto& decision = sim::As<LogDecision>(*payload);
      coord_decided_[decision.tid] = decision.commit;
      auto it = coord_txns_.find(decision.tid);
      if (it != coord_txns_.end()) {
        CoordTxn& txn = it->second;
        txn.decided = true;
        txn.committed = decision.commit;
        txn.decision_logged = true;
        MaybeFinishCoordTxn(decision.tid);
      }
      break;
    }
    default:
      break;
  }
}

void CarouselServer::ApplyPrepareResult(const LogPrepareResult& entry) {
  const bool recovering = recovery_tids_.erase(entry.tid) > 0;
  if (recovering) {
    recovery_outstanding_--;
  }

  if (decided_.count(entry.tid) == 0) {
    if (entry.prepared) {
      if (!pending_.Contains(entry.tid)) {
        kv::PendingTxn pend;
        pend.tid = entry.tid;
        pend.read_keys = entry.read_keys;
        pend.write_keys = entry.write_keys;
        pend.read_versions = entry.read_versions;
        pend.term = entry.term;
        pend.coordinator = entry.coordinator;
        pend.prepared_at_micros = simulator()->now();
        pending_.Add(std::move(pend)).ok();
      }
      logged_prepares_.insert(entry.tid);
    } else {
      // The leader decided abort; any tentative fast-path entry is void.
      pending_.Remove(entry.tid);
      logged_prepares_.erase(entry.tid);
    }
  }

  // The slow-path decision reaches the coordinator only after the prepare
  // result is durably replicated — i.e., exactly now, on the leader.
  if (IsLeader()) {
    SendDecision(entry.coordinator, entry.tid, entry.prepared,
                 entry.read_versions, entry.term, /*is_leader=*/true,
                 /*via_fast_path=*/false);
  }
  if (recovering) FinishRecoveryIfReady();
}

void CarouselServer::ApplyCommitEntry(const LogCommit& entry) {
  if (decided_.count(entry.tid) > 0) return;  // Duplicate writeback.
  pending_.Remove(entry.tid);
  logged_prepares_.erase(entry.tid);
  if (entry.commit) {
    for (const auto& [k, v] : entry.writes) store_.Apply(k, v);
    committed_count_++;
  }
  decided_[entry.tid] = entry.commit;
  if (IsLeader()) {
    auto ack = std::make_shared<WritebackAckMsg>();
    ack->tid = entry.tid;
    ack->partition = partition_;
    network()->Send(id(), entry.coordinator, std::move(ack));
  }
}

void CarouselServer::OnLeadership(
    uint64_t term, std::vector<std::vector<kv::PendingTxn>> vote_lists) {
  serving_ = false;
  recovery_outstanding_ = 0;
  recovery_tids_.clear();

  // ---- CPC failure handling (paper §4.3.3) ----
  // Step 2 (completing replication of the log) has already happened: Raft
  // invokes this callback only after the new leader's no-op entry — and
  // with it every earlier entry — is committed and applied.
  //
  // Step 3: examine f+1 pending-transaction lists (our own plus f of the
  // lists piggybacked on granted votes).
  const int f = (static_cast<int>(group_members_.size()) - 1) / 2;
  std::vector<std::vector<kv::PendingTxn>> lists;
  lists.push_back(pending_.Snapshot());
  for (int i = 0; i < f && i < static_cast<int>(vote_lists.size()); ++i) {
    lists.push_back(vote_lists[i]);
  }
  const bool enough_lists = static_cast<int>(lists.size()) >= f + 1;
  const int majority_needed = (f + 1) / 2 + 1;

  std::vector<kv::PendingTxn> survivors;
  if (enough_lists && f > 0) {
    // Count, per transaction, how many lists prepared it with identical
    // versions and in the same term.
    std::map<TxnId, std::vector<const kv::PendingTxn*>> by_tid;
    for (const auto& list : lists) {
      for (const auto& entry : list) by_tid[entry.tid].push_back(&entry);
    }
    for (const auto& [tid, entries] : by_tid) {
      if (logged_prepares_.count(tid) > 0) continue;  // Slow-path prepared.
      if (decided_.count(tid) > 0) continue;
      int agreeing = 0;
      const kv::PendingTxn* sample = entries.front();
      for (const kv::PendingTxn* e : entries) {
        if (e->term == sample->term &&
            e->read_versions == sample->read_versions) {
          agreeing++;
        }
      }
      if (agreeing < majority_needed) continue;

      // Step 4: exclude stale versions (the failed leader always had the
      // latest) ...
      bool stale = false;
      for (const auto& [key, version] : sample->read_versions) {
        if (store_.GetVersion(key) != version) {
          stale = true;
          break;
        }
      }
      if (stale) continue;
      // ... and conflicts with slow-path prepared transactions.
      bool conflicts = false;
      for (const kv::PendingTxn& logged : pending_.Snapshot()) {
        if (logged_prepares_.count(logged.tid) == 0) continue;
        auto overlaps = [](const KeyList& a, const KeyList& b) {
          for (const Key& x : a) {
            for (const Key& y : b) {
              if (x == y) return true;
            }
          }
          return false;
        };
        if (overlaps(sample->read_keys, logged.write_keys) ||
            overlaps(sample->write_keys, logged.write_keys) ||
            overlaps(sample->write_keys, logged.read_keys)) {
          conflicts = true;
          break;
        }
      }
      if (conflicts) continue;
      survivors.push_back(*sample);
    }
  }

  // Drop tentative fast-path entries that did not survive: they cannot
  // have been exposed to any coordinator (a fast-path quorum of
  // ceil(3f/2)+1 leaves at least a majority of every f+1 sample prepared).
  std::set<TxnId> survivor_tids;
  for (const auto& s : survivors) survivor_tids.insert(s.tid);
  for (const kv::PendingTxn& entry : pending_.Snapshot()) {
    if (logged_prepares_.count(entry.tid) == 0 &&
        survivor_tids.count(entry.tid) == 0) {
      pending_.Remove(entry.tid);
    }
  }

  // Step 5: replicate the surviving fast-path prepares; requests are
  // buffered (serving_ == false) until these commit.
  for (const kv::PendingTxn& s : survivors) {
    if (!pending_.Contains(s.tid)) {
      kv::PendingTxn copy = s;
      copy.prepared_at_micros = simulator()->now();
      pending_.Add(std::move(copy)).ok();
    }
    recovery_tids_.insert(s.tid);
    recovery_outstanding_++;
    auto log = std::make_shared<LogPrepareResult>();
    log->tid = s.tid;
    log->coordinator = s.coordinator;
    log->prepared = true;
    log->read_keys = s.read_keys;
    log->write_keys = s.write_keys;
    log->read_versions = s.read_versions;
    log->term = s.term;
    raft_->Propose(std::move(log)).ok();
  }

  // Re-announce slow-path prepared transactions to their coordinators (the
  // failed leader may have died between replication and notification).
  for (const kv::PendingTxn& entry : pending_.Snapshot()) {
    if (logged_prepares_.count(entry.tid) > 0) {
      SendDecision(entry.coordinator, entry.tid, true, entry.read_versions,
                   entry.term, true, false);
    }
  }

  TakeOverCoordination();
  (void)term;
  FinishRecoveryIfReady();
}

void CarouselServer::OnStepDown(uint64_t term) {
  (void)term;
  // Abandon any in-progress recovery; a follower serves (fast-path
  // prepares, reads) normally.
  serving_ = true;
  recovery_outstanding_ = 0;
  recovery_tids_.clear();
  DrainBuffered();
}

void CarouselServer::FinishRecoveryIfReady() {
  if (serving_ || recovery_outstanding_ > 0) return;
  serving_ = true;
  DrainBuffered();
}

void CarouselServer::DrainBuffered() {
  std::deque<std::pair<NodeId, sim::MessagePtr>> pending_msgs;
  pending_msgs.swap(buffered_);
  for (auto& [from, msg] : pending_msgs) HandleMessage(from, msg);
}

void CarouselServer::TakeOverCoordination() {
  for (auto& [tid, txn] : coord_txns_) {
    txn.hb_timer_gen++;
    if (txn.decided) {
      StartWriteback(txn);
      ArmCoordRetryTimer(tid);
      continue;
    }
    txn.last_heartbeat = simulator()->now();
    txn.heartbeat_timer_armed = true;
    ArmHeartbeatTimer(txn);
    // Re-acquire prepare decisions for everything still undecided.
    for (const auto& [p, rw] : txn.keys) {
      auto part = txn.parts.find(p);
      if (part != txn.parts.end() && part->second.decided) continue;
      for (NodeId replica : directory_->Replicas(p)) {
        auto query = std::make_shared<QueryPrepareMsg>();
        query->tid = tid;
        query->partition = p;
        query->coordinator = id();
        query->read_keys = rw.reads;
        query->write_keys = rw.writes;
        network()->Send(id(), replica, std::move(query));
      }
    }
    ArmCoordRetryTimer(tid);
    EvaluateCoordTxn(txn);
  }
}

}  // namespace carousel::core
