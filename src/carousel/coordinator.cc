#include "carousel/coordinator.h"

#include <cstdio>
#include <memory>

#include "runtime/arena.h"

namespace {
// Protocol tracing for debugging: set CAROUSEL_TRACE=1 in the environment.
bool TraceEnabled() {
  static const bool enabled = ::getenv("CAROUSEL_TRACE") != nullptr;
  return enabled;
}
}  // namespace

namespace carousel::core {

void Coordinator::Register(runtime::Dispatcher* dispatcher) {
  dispatcher->On<CoordPrepareMsg>(
      [this](NodeId from, const CoordPrepareMsg& msg) {
        HandleCoordPrepare(from, msg);
      });
  dispatcher->On<CommitRequestMsg>(
      [this](NodeId from, const CommitRequestMsg& msg) {
        HandleCommitRequest(from, msg);
      });
  dispatcher->On<AbortRequestMsg>(
      [this](NodeId from, const AbortRequestMsg& msg) {
        HandleAbortRequest(from, msg);
      });
  dispatcher->On<PrepareDecisionMsg>(
      [this](NodeId from, const PrepareDecisionMsg& msg) {
        HandlePrepareDecision(from, msg);
      });
  dispatcher->On<WritebackAckMsg>(
      [this](NodeId from, const WritebackAckMsg& msg) {
        HandleWritebackAck(from, msg);
      });
  dispatcher->On<HeartbeatMsg>([this](NodeId from, const HeartbeatMsg& msg) {
    HandleHeartbeat(from, msg);
  });
  dispatcher->On<QueryDecisionMsg>(
      [this](NodeId from, const QueryDecisionMsg& msg) {
        HandleQueryDecision(from, msg);
      });
}

void Coordinator::RegisterApply(runtime::Dispatcher* apply) {
  apply->On<LogTxnInfo>([this](NodeId /*from*/, const LogTxnInfo& info) {
    ApplyTxnInfo(info);
  });
  apply->On<LogWriteData>([this](NodeId /*from*/, const LogWriteData& data) {
    ApplyWriteData(data);
  });
  apply->On<LogDecision>(
      [this](NodeId /*from*/, const LogDecision& decision) {
        ApplyDecision(decision);
      });
}

Coordinator::CoordTxn& Coordinator::GetOrCreateCoordTxn(const TxnId& tid) {
  auto [it, inserted] = coord_txns_.try_emplace(tid);
  CoordTxn& txn = it->second;
  if (inserted) {
    txn.tid = tid;
    txn.last_heartbeat = ctx_->now();
    // Absorb decisions that raced ahead of the prepare notification.
    auto orphan = orphan_decisions_.find(tid);
    if (orphan != orphan_decisions_.end()) {
      for (const auto& [partition, decision] : orphan->second) {
        RecordDecision(txn, partition, decision);
      }
      orphan_decisions_.erase(orphan);
    }
  }
  return txn;
}

void Coordinator::HandleCoordPrepare(NodeId from, const CoordPrepareMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) return;
  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    ReplyToClient(msg.client, msg.tid, done->second, "replayed");
    return;
  }
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  txn.fast = msg.fast_path;
  if (txn.keys.empty()) txn.keys = msg.keys;
  txn.last_heartbeat = ctx_->now();
  if (!txn.heartbeat_timer_armed) ArmHeartbeatTimer(txn);
  ArmCoordRetryTimer(msg.tid);

  if (!txn.info_proposed) {
    txn.info_proposed = true;
    auto log = runtime::MakeMessage<LogTxnInfo>();
    log->tid = msg.tid;
    log->client = msg.client;
    log->fast_path = msg.fast_path;
    log->keys = msg.keys;
    TagSpan(log.get(), msg.tid, obs::WanrtPhase::kPrepare);
    ctx_->raft->Propose(std::move(log)).ok();
  }
  EvaluateCoordTxn(txn);
}

void Coordinator::HandleCommitRequest(NodeId from,
                                      const CommitRequestMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) {
    auto redirect = runtime::MakeMessage<NotLeaderMsg>();
    redirect->tid = msg.tid;
    redirect->partition = ctx_->partition;
    redirect->leader_hint = ctx_->raft->leader_hint();
    TagSpan(redirect.get(), msg.tid, obs::WanrtPhase::kDecision);
    ctx_->Send(msg.client, std::move(redirect));
    return;
  }
  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    ReplyToClient(msg.client, msg.tid, done->second, "replayed");
    return;
  }
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  if (txn.keys.empty()) txn.keys = msg.keys;
  if (txn.commit_received) return;  // Duplicate (retry in flight).
  txn.commit_received = true;
  txn.writes = msg.writes;
  txn.client_versions = msg.read_versions;
  ArmCoordRetryTimer(msg.tid);

  if (!txn.info_proposed) {
    // The prepare notification was lost (e.g., coordinator failover):
    // replicate transaction info now, from the copy in the commit request.
    txn.info_proposed = true;
    auto info = runtime::MakeMessage<LogTxnInfo>();
    info->tid = msg.tid;
    info->client = msg.client;
    info->fast_path = txn.fast;
    info->keys = txn.keys;
    TagSpan(info.get(), msg.tid, obs::WanrtPhase::kPrepare);
    ctx_->raft->Propose(std::move(info)).ok();
  }

  auto log = runtime::MakeMessage<LogWriteData>();
  log->tid = msg.tid;
  log->writes = msg.writes;
  log->client_versions = msg.read_versions;
  TagSpan(log.get(), msg.tid, obs::WanrtPhase::kDecision);
  ctx_->raft->Propose(std::move(log)).ok();
  EvaluateCoordTxn(txn);
}

void Coordinator::HandleAbortRequest(NodeId from, const AbortRequestMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) return;
  if (coord_decided_.count(msg.tid) > 0) return;
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  txn.client_abort = true;
  EvaluateCoordTxn(txn);
}

void Coordinator::HandlePrepareDecision(NodeId from,
                                        const PrepareDecisionMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.tid);
  if (it == coord_txns_.end()) {
    if (coord_decided_.count(msg.tid) > 0) return;
    orphan_decisions_[msg.tid].emplace_back(msg.partition, msg);
    return;
  }
  RecordDecision(it->second, msg.partition, msg);
  EvaluateCoordTxn(it->second);
}

void Coordinator::RecordDecision(CoordTxn& txn, PartitionId partition,
                                 const PrepareDecisionMsg& msg) {
  if (TraceEnabled()) {
    fprintf(stderr,
            "[%lld] coord %d tid %s part %d decision from %d fast=%d "
            "leader=%d prepared=%d term=%llu\n",
            (long long)ctx_->now(), ctx_->self, txn.tid.ToString().c_str(),
            partition, msg.replica, msg.via_fast_path, msg.is_leader,
            msg.prepared, (unsigned long long)msg.term);
  }
  PartState& part = txn.parts[partition];
  if (msg.via_fast_path) {
    FastReply reply;
    reply.prepared = msg.prepared;
    reply.versions = msg.read_versions;
    reply.term = msg.term;
    reply.is_leader = msg.is_leader;
    part.fast_replies[msg.replica] = std::move(reply);
  } else if (!part.slow_seen) {
    part.slow_seen = true;
    if (!part.decided) {
      part.decided = true;
      part.prepared = msg.prepared;
      part.leader_versions = msg.read_versions;
      // This partition's decision came off the replicated slow path.
      txn.slow_path_used = true;
      m_slow_decisions_.Increment();
      ctx_->TracePhase(txn.tid, TxnPhase::kSlowDecision);
    }
    // When the fast path already decided this partition, the slow-path
    // response is simply dropped (paper §4.2, CPC guarantees agreement).
  }
}

void Coordinator::EvaluateCoordTxn(CoordTxn& txn) {
  if (txn.decided) return;

  // CPC fast-path evaluation per participant partition (§4.2): identical
  // decisions from an up-to-date supermajority that includes the leader.
  if (txn.fast) {
    const bool buggy_quorum = ctx_->options->bug_fast_path_skip_leader_check;
    for (const auto& [p, rw] : txn.keys) {
      PartState& part = txn.parts[p];
      if (part.decided) continue;
      auto agree = [](const FastReply& a, const FastReply& b) {
        return a.prepared == b.prepared && a.term == b.term &&
               a.versions == b.versions;
      };
      const FastReply* anchor = nullptr;
      int agreeing = 0;
      if (buggy_quorum) {
        // INJECTED BUG (bug_fast_path_skip_leader_check): anchor on the
        // largest agreeing reply group, leader or not — a stale follower
        // majority can out-vote the leader's conflict check.
        for (const auto& [node, reply] : part.fast_replies) {
          int n = 0;
          for (const auto& [other, r] : part.fast_replies) {
            if (agree(reply, r)) n++;
          }
          if (n > agreeing) {
            anchor = &reply;
            agreeing = n;
          }
        }
      } else {
        for (const auto& [node, reply] : part.fast_replies) {
          if (reply.is_leader) {
            anchor = &reply;
            break;
          }
        }
        if (anchor == nullptr) continue;
        for (const auto& [node, reply] : part.fast_replies) {
          if (agree(reply, *anchor)) agreeing++;
        }
      }
      if (anchor == nullptr) continue;
      const int group_size =
          static_cast<int>(ctx_->directory->Replicas(p).size());
      const int needed =
          buggy_quorum ? group_size / 2 + 1 : SupermajorityFor(group_size);
      if (agreeing >= needed) {
        part.decided = true;
        part.prepared = anchor->prepared;
        part.leader_versions = anchor->versions;
        m_fast_quorums_.Increment();
        ctx_->TracePhase(txn.tid, TxnPhase::kFastQuorum);
      }
    }
  }

  // Any participant abort aborts the transaction; the coordinator may
  // answer immediately without waiting for the other participants.
  for (const auto& [p, rw] : txn.keys) {
    auto it = txn.parts.find(p);
    if (it != txn.parts.end() && it->second.decided && !it->second.prepared) {
      Decide(txn, false, "prepare conflict");
      return;
    }
  }

  if (txn.client_abort && !txn.commit_received) {
    Decide(txn, false, "client abort");
    return;
  }

  if (!txn.commit_received || !txn.write_logged || !txn.info_logged ||
      txn.keys.empty()) {
    return;
  }
  for (const auto& [p, rw] : txn.keys) {
    auto it = txn.parts.find(p);
    if (it == txn.parts.end() || !it->second.decided) return;
  }

  // All participants prepared; validate the versions the client actually
  // read (stale local-replica reads, §4.4.1). Skippable only via the
  // injected-bug flag, to prove the checker catches the resulting
  // lost-update anomalies.
  if (!ctx_->options->bug_skip_stale_read_check) {
    for (const auto& [key, version] : txn.client_versions) {
      const PartitionId p = ctx_->directory->PartitionFor(key);
      auto it = txn.parts.find(p);
      if (it == txn.parts.end()) continue;
      auto lv = it->second.leader_versions.find(key);
      if (lv != it->second.leader_versions.end() && lv->second != version) {
        Decide(txn, false, "stale read");
        return;
      }
    }
  }
  Decide(txn, true, "");
}

void Coordinator::Decide(CoordTxn& txn, bool commit,
                         const std::string& reason) {
  if (TraceEnabled()) {
    fprintf(stderr, "[%lld] coord %d tid %s DECIDE commit=%d reason=%s\n",
            (long long)ctx_->now(), ctx_->self, txn.tid.ToString().c_str(),
            commit, reason.c_str());
  }
  txn.decided = true;
  txn.committed = commit;
  txn.reason = reason;
  txn.hb_timer_gen++;  // Cancel the client-failure timer.
  (commit ? m_commits_ : m_aborts_).Increment();
  // Phase record: which path decided this transaction, and the verdict.
  ctx_->TraceOutcome(txn.tid, commit, txn.fast && !txn.slow_path_used,
                     reason);

  if (ctx_->IsLeader()) {
    auto log = runtime::MakeMessage<LogDecision>();
    log->tid = txn.tid;
    log->commit = commit;
    TagSpan(log.get(), txn.tid, obs::WanrtPhase::kDecision);
    ctx_->raft->Propose(std::move(log)).ok();
  }

  // A COMMIT is externalized immediately (§4.1.2): write data is already
  // replicated in this group and every participant's prepare is durable
  // (logged on the slow path; supermajority-held pending entries on the
  // fast path), so any successor leader re-derives the same verdict.
  //
  // An ABORT is NOT safe to externalize yet: conflict and client-timeout
  // aborts are time-local — a successor leader re-querying the pinned
  // prepares can legitimately find all of them prepared and commit. The
  // reply and the writebacks therefore wait until LogDecision is
  // replicated (ApplyDecision); a deposed leader's abort then simply
  // evaporates instead of surfacing a verdict the group never agreed to.
  if (commit) {
    Externalize(txn);
  }
  ArmCoordRetryTimer(txn.tid);
}

void Coordinator::Externalize(CoordTxn& txn) {
  if (txn.externalized) return;
  txn.externalized = true;
  coord_decided_[txn.tid] = txn.committed;
  // Verification history: every externalized decision point lands here
  // (original decision, heartbeat abort, post-failover re-derivation);
  // the checker requires all of them to agree.
  ctx_->RecordDecision(txn.tid, txn.committed, txn.reason);
  ReplyToClient(txn.client, txn.tid, txn.committed, txn.reason);
  StartWriteback(txn);
}

void Coordinator::StartWriteback(CoordTxn& txn) {
  txn.writeback_started = true;
  ctx_->TracePhase(txn.tid, TxnPhase::kWritebackStart);
  for (const auto& [p, rw] : txn.keys) {
    if (!txn.parts[p].writeback_acked) {
      SendWriteback(txn, p, ctx_->directory->CachedLeader(p));
    }
  }
}

void Coordinator::SendWriteback(CoordTxn& txn, PartitionId partition,
                                NodeId target) {
  auto msg = runtime::MakeMessage<WritebackMsg>();
  msg->tid = txn.tid;
  msg->partition = partition;
  msg->coordinator = ctx_->self;
  msg->commit = txn.committed;
  TagSpan(msg.get(), txn.tid, obs::WanrtPhase::kDecision);
  if (txn.committed) {
    for (const auto& [k, v] : txn.writes) {
      if (ctx_->directory->PartitionFor(k) == partition) msg->writes[k] = v;
    }
  }
  ctx_->Send(target, std::move(msg));
}

void Coordinator::ArmHeartbeatTimer(CoordTxn& txn) {
  txn.heartbeat_timer_armed = true;
  const TxnId tid = txn.tid;
  const uint64_t gen = txn.hb_timer_gen;
  ctx_->Schedule(ctx_->options->heartbeat_interval, [this, tid, gen]() {
    if (!ctx_->alive() || !ctx_->IsLeader()) return;
    auto it = coord_txns_.find(tid);
    if (it == coord_txns_.end()) return;
    CoordTxn& txn = it->second;
    if (txn.decided || txn.commit_received || gen != txn.hb_timer_gen) return;
    const SimTime deadline =
        txn.last_heartbeat +
        ctx_->options->heartbeat_interval * ctx_->options->heartbeat_misses;
    if (ctx_->now() > deadline) {
      // h consecutive heartbeats missed before Commit: the client is
      // presumed dead; abort (§4.3.1).
      Decide(txn, false, "client timeout");
      return;
    }
    ArmHeartbeatTimer(txn);
  });
}

void Coordinator::ArmCoordRetryTimer(const TxnId& tid) {
  if (ctx_->options->coordinator_retry_interval <= 0) return;
  auto it = coord_txns_.find(tid);
  if (it == coord_txns_.end()) return;
  const uint64_t gen = ++it->second.retry_timer_gen;
  ctx_->Schedule(
      ctx_->options->coordinator_retry_interval, [this, tid, gen]() {
        if (!ctx_->alive() || !ctx_->IsLeader()) return;
        auto it = coord_txns_.find(tid);
        if (it == coord_txns_.end()) return;
        CoordTxn& txn = it->second;
        if (gen != txn.retry_timer_gen) return;
        if (!txn.decided) {
          // Re-acquire missing prepare decisions from every replica (the
          // leader may have moved).
          for (const auto& [p, rw] : txn.keys) {
            auto part = txn.parts.find(p);
            if (part != txn.parts.end() && part->second.decided) continue;
            for (NodeId replica : ctx_->directory->Replicas(p)) {
              auto query = runtime::MakeMessage<QueryPrepareMsg>();
              query->tid = tid;
              query->partition = p;
              query->coordinator = ctx_->self;
              query->read_keys = rw.reads;
              query->write_keys = rw.writes;
              TagSpan(query.get(), tid, obs::WanrtPhase::kPrepare);
              ctx_->Send(replica, std::move(query));
            }
          }
        } else if (txn.externalized) {
          // Retransmit writebacks to all replicas of unacked partitions.
          for (const auto& [p, rw] : txn.keys) {
            if (txn.parts[p].writeback_acked) continue;
            for (NodeId replica : ctx_->directory->Replicas(p)) {
              SendWriteback(txn, p, replica);
            }
          }
        }
        ArmCoordRetryTimer(tid);
      });
}

void Coordinator::HandleWritebackAck(NodeId from, const WritebackAckMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.tid);
  if (it == coord_txns_.end()) return;
  it->second.parts[msg.partition].writeback_acked = true;
  MaybeFinishCoordTxn(msg.tid);
}

void Coordinator::MaybeFinishCoordTxn(const TxnId& tid) {
  auto it = coord_txns_.find(tid);
  if (it == coord_txns_.end()) return;
  CoordTxn& txn = it->second;
  if (!txn.decided || !txn.decision_logged) return;
  for (const auto& [p, rw] : txn.keys) {
    auto part = txn.parts.find(p);
    if (part == txn.parts.end() || !part->second.writeback_acked) return;
  }
  // Every participant acked: the transaction's full lifecycle is over;
  // close out its phase trace.
  ctx_->TracePhase(tid, TxnPhase::kWritebackDone);
  ctx_->TraceSeal(tid);
  coord_txns_.erase(it);  // Timers notice the missing entry and stop.
}

void Coordinator::HandleHeartbeat(NodeId from, const HeartbeatMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) return;
  auto it = coord_txns_.find(msg.tid);
  if (it != coord_txns_.end()) {
    it->second.last_heartbeat = ctx_->now();
    it->second.client = msg.client;
    return;
  }
  if (coord_decided_.count(msg.tid) > 0) return;
  // First contact via heartbeat (prepare notification still in flight or
  // lost): track the transaction so the client-failure timer exists.
  CoordTxn& txn = GetOrCreateCoordTxn(msg.tid);
  txn.client = msg.client;
  if (!txn.heartbeat_timer_armed) ArmHeartbeatTimer(txn);
}

void Coordinator::HandleQueryDecision(NodeId from,
                                      const QueryDecisionMsg& msg) {
  if (!ctx_->IsLeader()) return;
  auto reply = runtime::MakeMessage<WritebackMsg>();
  reply->tid = msg.tid;
  reply->partition = msg.partition;
  reply->coordinator = ctx_->self;
  TagSpan(reply.get(), msg.tid, obs::WanrtPhase::kDecision);

  auto done = coord_decided_.find(msg.tid);
  if (done != coord_decided_.end()) {
    reply->commit = done->second;
    if (reply->commit) {
      auto it = coord_txns_.find(msg.tid);
      if (it != coord_txns_.end()) {
        for (const auto& [k, v] : it->second.writes) {
          if (ctx_->directory->PartitionFor(k) == msg.partition) {
            reply->writes[k] = v;
          }
        }
      }
    }
    ctx_->Send(from, std::move(reply));
    return;
  }
  auto it = coord_txns_.find(msg.tid);
  if (it != coord_txns_.end()) {
    if (!it->second.decided) {
      return;  // Still in progress; the writeback will arrive eventually.
    }
    // Decided but not yet durable (a deferred abort): answer once the
    // LogDecision entry applies.
    pending_fence_queries_[msg.tid].emplace_back(from, msg.partition);
    return;
  }
  // Unknown transaction: fence it as aborted — durably. The fence must
  // go through the log before anyone observes it: a prior leader's
  // commit decision may still sit uncommitted in our log, and apply
  // order (first decision wins) arbitrates between the two.
  auto& waiters = pending_fence_queries_[msg.tid];
  waiters.emplace_back(from, msg.partition);
  if (waiters.size() == 1) {
    auto log = runtime::MakeMessage<LogDecision>();
    log->tid = msg.tid;
    log->commit = false;
    TagSpan(log.get(), msg.tid, obs::WanrtPhase::kDecision);
    ctx_->raft->Propose(std::move(log)).ok();
  }
}

void Coordinator::AnswerFenceQueries(const TxnId& tid) {
  auto pend = pending_fence_queries_.find(tid);
  if (pend == pending_fence_queries_.end()) return;
  auto done = coord_decided_.find(tid);
  if (done == coord_decided_.end()) return;
  const bool commit = done->second;
  auto it = coord_txns_.find(tid);
  if (it == coord_txns_.end() && !commit) {
    ctx_->RecordDecision(tid, false, "termination fence");
  }
  for (const auto& [node, partition] : pend->second) {
    auto reply = runtime::MakeMessage<WritebackMsg>();
    reply->tid = tid;
    reply->partition = partition;
    reply->coordinator = ctx_->self;
    reply->commit = commit;
    TagSpan(reply.get(), tid, obs::WanrtPhase::kDecision);
    if (commit && it != coord_txns_.end()) {
      for (const auto& [k, v] : it->second.writes) {
        if (ctx_->directory->PartitionFor(k) == partition) {
          reply->writes[k] = v;
        }
      }
    }
    ctx_->Send(node, std::move(reply));
  }
  pending_fence_queries_.erase(pend);
}

void Coordinator::ReplyToClient(NodeId client, const TxnId& tid,
                                bool committed, const std::string& reason) {
  if (client == kInvalidNode) return;
  auto msg = runtime::MakeMessage<CommitResponseMsg>();
  msg->tid = tid;
  msg->committed = committed;
  msg->reason = reason;
  TagSpan(msg.get(), tid, obs::WanrtPhase::kDecision);
  ctx_->Send(client, std::move(msg));
}

void Coordinator::ApplyTxnInfo(const LogTxnInfo& info) {
  CoordTxn& txn = GetOrCreateCoordTxn(info.tid);
  txn.client = info.client;
  txn.fast = info.fast_path;
  if (txn.keys.empty()) txn.keys = info.keys;
  txn.info_logged = true;
  txn.info_proposed = true;
  if (ctx_->IsLeader()) EvaluateCoordTxn(txn);
}

void Coordinator::ApplyWriteData(const LogWriteData& data) {
  CoordTxn& txn = GetOrCreateCoordTxn(data.tid);
  txn.commit_received = true;
  txn.write_logged = true;
  txn.writes = data.writes;
  txn.client_versions = data.client_versions;
  if (ctx_->IsLeader()) EvaluateCoordTxn(txn);
}

void Coordinator::ApplyDecision(const LogDecision& decision) {
  // Decisions are write-once: when a fence raced an earlier leader's
  // decision in the log, the first applied entry stands and the later
  // conflicting one is void (the order is the same on every replica).
  auto existing = coord_decided_.find(decision.tid);
  if (existing != coord_decided_.end() &&
      existing->second != decision.commit) {
    AnswerFenceQueries(decision.tid);
    return;
  }
  coord_decided_[decision.tid] = decision.commit;
  auto it = coord_txns_.find(decision.tid);
  if (it != coord_txns_.end()) {
    CoordTxn& txn = it->second;
    txn.decided = true;
    txn.committed = decision.commit;
    txn.decision_logged = true;
    if (txn.reason.empty() && !decision.commit) txn.reason = "recovered abort";
    // A deferred abort becomes durable here; the leader may now let the
    // client and the participants see it.
    if (ctx_->IsLeader()) Externalize(txn);
    MaybeFinishCoordTxn(decision.tid);
  }
  AnswerFenceQueries(decision.tid);
}

void Coordinator::TakeOverCoordination() {
  for (auto& [tid, txn] : coord_txns_) {
    txn.hb_timer_gen++;
    if (txn.decided && (txn.decision_logged || txn.externalized)) {
      if (!txn.decision_logged) {
        // Our commit was externalized but its LogDecision may have died
        // with the old term; re-propose so the group eventually agrees.
        auto log = runtime::MakeMessage<LogDecision>();
        log->tid = tid;
        log->commit = txn.committed;
        TagSpan(log.get(), tid, obs::WanrtPhase::kDecision);
        ctx_->raft->Propose(std::move(log)).ok();
      }
      if (txn.externalized) {
        StartWriteback(txn);
      } else {
        Externalize(txn);
      }
      ArmCoordRetryTimer(tid);
      continue;
    }
    if (txn.decided) {
      // A deferred abort whose LogDecision never became durable: the
      // group never agreed to it and nothing outside this node saw it.
      // Forget the verdict and re-derive from the pinned prepares, like
      // any successor leader would (§4.3.3).
      txn.decided = false;
      txn.committed = false;
      txn.reason.clear();
    }
    txn.last_heartbeat = ctx_->now();
    txn.heartbeat_timer_armed = true;
    ArmHeartbeatTimer(txn);
    // Re-acquire prepare decisions for everything still undecided.
    for (const auto& [p, rw] : txn.keys) {
      auto part = txn.parts.find(p);
      if (part != txn.parts.end() && part->second.decided) continue;
      for (NodeId replica : ctx_->directory->Replicas(p)) {
        auto query = runtime::MakeMessage<QueryPrepareMsg>();
        query->tid = tid;
        query->partition = p;
        query->coordinator = ctx_->self;
        query->read_keys = rw.reads;
        query->write_keys = rw.writes;
        TagSpan(query.get(), tid, obs::WanrtPhase::kPrepare);
        ctx_->Send(replica, std::move(query));
      }
    }
    ArmCoordRetryTimer(tid);
    EvaluateCoordTxn(txn);
  }
}

}  // namespace carousel::core
