#ifndef CAROUSEL_CAROUSEL_RECON_H_
#define CAROUSEL_CAROUSEL_RECON_H_

#include <functional>

#include "carousel/client.h"
#include "common/status.h"
#include "common/types.h"

namespace carousel::core {

/// Reconnaissance transactions (paper §3.2).
///
/// 2FI transactions cannot perform dependent reads or writes — keys whose
/// identity depends on the value of an earlier read (e.g., finding a
/// customer id through a name index, then updating the customer record).
/// The paper's workaround: first run a read-only *reconnaissance*
/// transaction to discover the keys, then run the real transaction with
/// the discovered keys, re-reading the reconnaissance keys and validating
/// that their values did not change in between; on a mismatch both
/// transactions retry.
///
/// RunWithReconnaissance packages that pattern:
///   1. a read-only transaction reads `recon_reads`;
///   2. `derive` turns the reconnaissance results into the main
///      transaction's key sets (the runner automatically adds the
///      reconnaissance keys to the main read set for validation);
///   3. the main transaction runs; if any reconnaissance key's version
///      changed, it is aborted and the whole sequence retries;
///   4. `body` issues the writes (it sees the main transaction's reads);
///   5. `done(status, attempts)` reports the final outcome.
class ReconnaissanceRunner {
 public:
  using ReadResults = CarouselClient::ReadResults;

  /// Key sets of the main transaction, as derived from reconnaissance.
  struct MainTxn {
    KeyList reads;
    KeyList writes;
  };

  using DeriveFn = std::function<MainTxn(const ReadResults& recon_results)>;
  /// Issues Write() calls for the main transaction.
  using BodyFn = std::function<void(CarouselClient* client, const TxnId& tid,
                                    const ReadResults& main_reads)>;
  using DoneFn = std::function<void(Status status, int attempts)>;

  /// Runs the two-transaction sequence with up to `max_attempts` tries.
  /// Completion statuses: OK (committed), Aborted (conflict persisted
  /// through all attempts), TimedOut (infrastructure failure).
  static void Run(CarouselClient* client, KeyList recon_reads,
                  DeriveFn derive, BodyFn body, DoneFn done,
                  int max_attempts = 5);

 private:
  static void Attempt(CarouselClient* client, KeyList recon_reads,
                      DeriveFn derive, BodyFn body, DoneFn done,
                      int attempt, int max_attempts);
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_RECON_H_
