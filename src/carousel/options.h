#ifndef CAROUSEL_CAROUSEL_OPTIONS_H_
#define CAROUSEL_CAROUSEL_OPTIONS_H_

#include "common/types.h"
#include "raft/raft_node.h"
#include "runtime/batcher.h"

namespace carousel::core {

/// Per-message-type CPU costs of a Carousel data server, in microseconds.
/// Zero (the default) disables the queueing model, which is appropriate for
/// latency experiments at low load; the throughput benches (Figures 5-7)
/// set realistic costs so saturation emerges from queueing.
struct ServerCostModel {
  SimTime base = 0;             // dispatch overhead per message
  SimTime per_read_key = 0;     // store lookup per read key
  SimTime per_occ_key = 0;      // conflict-check per key
  SimTime per_write_key = 0;    // apply per written key
  SimTime per_log_entry = 0;    // raft append/apply per entry
  /// Dispatch overhead for a message arriving inside a BatchEnvelopeMsg:
  /// the envelope pays `base` once (syscall/RPC framing) and each carried
  /// message only this smaller demux charge plus its payload-proportional
  /// terms. Batching's throughput win is exactly base - per_batched_item
  /// per amortized message. Defaults to base when <0 (i.e. no win) so the
  /// term is harmless when unset.
  SimTime per_batched_item = -1;
  /// CPU cores per server. Carousel's prototype (Go, goroutine-per-
  /// request) exploits all cores of the paper's 8-vCPU instances, whereas
  /// TAPIR's reference implementation processes requests on a single
  /// event loop; benches model that difference here.
  int cores = 1;
};

/// Egress batching of server-to-server traffic (prepare fan-out, CPC
/// votes, Raft appends, writebacks). Off by default: unbatched is the
/// historical behavior and the ablation baseline.
struct BatchingOptions {
  bool enabled = false;
  /// Egress flush window / idle threshold (runtime/batcher.h semantics).
  /// Must stay well below Raft election timeouts and client retry
  /// timeouts; 50 us matches a tight syscall-coalescing loop, not an
  /// artificial delay.
  SimTime flush_interval = 50;
  /// Early-flush threshold per destination window.
  size_t max_batch_items = 64;
  /// Also coalesce same-edge same-tick deliveries inside the simulator
  /// (sim::NetworkOptions::coalesce_deliveries). A wall-clock
  /// optimization; gated here so the cluster wiring can set it in one
  /// place.
  bool coalesce_deliveries = false;

  runtime::MessageBatcher::Options ToBatcherOptions() const {
    runtime::MessageBatcher::Options o;
    o.flush_interval = flush_interval;
    o.max_items = max_batch_items;
    return o;
  }
};

/// Observability (src/obs). Off by default: the registry then hands out
/// null handles (one predictable branch per op) and the WANRT ledger is
/// never attached to the network, so the hot path does no metric work.
struct MetricsOptions {
  /// Master switch: live registry handles, WANRT ledger on the network,
  /// Raft ack-span stamping.
  bool enabled = false;
  /// Keep sealed per-transaction WANRT records for Find() queries. Tests
  /// only — long runs would grow without bound.
  bool retain_per_txn = false;
};

/// Configuration of a Carousel deployment.
struct CarouselOptions {
  /// Use the CPC fast path (Carousel Fast). When false the system is
  /// Carousel Basic (paper §5).
  bool fast_path = false;
  /// Read from a replica in the client's DC when one exists (§4.4.1);
  /// evaluated only when fast_path is on, matching the paper's "Carousel
  /// Fast" configuration.
  bool local_reads = false;
  /// Extension mentioned in §4.4.1: when no replica is local, also read
  /// from the *closest* replica (by RTT) instead of only the leader; the
  /// coordinator's version check still aborts stale reads. Requires
  /// local_reads.
  bool closest_reads = false;

  /// Client heartbeat interval and the number of consecutive misses after
  /// which the coordinator aborts an uncommitted transaction (§4.3.1).
  SimTime heartbeat_interval = 1'000'000;  // 1 s
  int heartbeat_misses = 3;

  /// Client-side retransmission timeout for reads/commits (covers leader
  /// failures) and the coordinator's writeback/query retry interval.
  SimTime client_retry_timeout = 4'000'000;  // 4 s
  SimTime coordinator_retry_interval = 4'000'000;

  /// Participant leaders probe the coordinator for pending transactions
  /// older than this (2PC termination; closes leaks when both the client
  /// and the coordinator notification are lost).
  SimTime pending_gc_interval = 20'000'000;  // 20 s

  /// ---- Flag-gated protocol bugs (verification harness only) ----
  /// These deliberately weaken the protocol so the chaos harness can prove
  /// the serializability checker catches real violations. Never set them
  /// outside tests/tools.

  /// CPC fast path accepts any f+1 identical prepare replies without
  /// requiring the partition leader among them — a plausible misreading of
  /// §4.2's quorum rule that lets a stale follower majority out-vote the
  /// leader's conflict check.
  bool bug_fast_path_skip_leader_check = false;
  /// Coordinator skips the stale-read version validation (§4.4.1), so a
  /// transaction that read a stale local replica commits anyway.
  bool bug_skip_stale_read_check = false;

  raft::RaftOptions raft;
  ServerCostModel cost;
  BatchingOptions batching;
  MetricsOptions metrics;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_OPTIONS_H_
