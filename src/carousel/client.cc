#include "carousel/client.h"

#include <memory>

#include "runtime/arena.h"
#include <utility>


namespace carousel::core {

CarouselClient::CarouselClient(NodeId id, DcId dc, ClientId client_id,
                               const Directory* directory,
                               const CarouselOptions& options,
                               TraceCollector* traces)
    : runtime::Endpoint(id, dc),
      client_id_(client_id),
      directory_(directory),
      options_(options),
      traces_(traces) {}

TxnId CarouselClient::Begin() {
  return TxnId{client_id_, ++next_counter_};
}

void CarouselClient::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const std::string prefix = "client." + std::to_string(id()) + ".";
  m_started_ = registry->GetCounter(prefix + "txns_started");
  m_committed_ = registry->GetCounter(prefix + "txns_committed");
  m_aborted_ = registry->GetCounter(prefix + "txns_aborted");
  m_timedout_ = registry->GetCounter(prefix + "txns_timedout");
}

void CarouselClient::ReadAndPrepare(const TxnId& tid, KeyList reads,
                                    KeyList writes, ReadCallback callback) {
  ActiveTxn& txn = txns_[tid];
  txn.tid = tid;
  txn.read_cb = std::move(callback);
  txn.read_only = writes.empty();
  txn.read_started_at = now();
  // Only the issuing client opens the trace; every later observer merely
  // stamps into it.
  if (traces_) traces_->Begin(tid, now(), txn.read_only);
  if (wanrt_) wanrt_->Begin(tid);
  m_started_.Increment();
  if (history_) {
    history_->Invoke(tid, reads, writes, txn.read_only, now());
  }

  for (Key& k : reads) {
    txn.keys[directory_->PartitionFor(k)].reads.push_back(std::move(k));
  }
  for (Key& k : writes) {
    txn.keys[directory_->PartitionFor(k)].writes.push_back(std::move(k));
  }

  bool all_local = true;
  for (const auto& [p, rw] : txn.keys) {
    if (!rw.reads.empty()) txn.awaiting_data.insert(p);
    if (directory_->LocalReplica(p, dc()) == kInvalidNode) all_local = false;
  }
  if (!all_local) rpt_count_++;

  if (!txn.read_only) {
    std::set<PartitionId> participants;
    for (const auto& [p, rw] : txn.keys) participants.insert(p);
    txn.coordinator = directory_->CoordinatorFor(dc(), participants);

    auto notify = runtime::MakeMessage<CoordPrepareMsg>();
    notify->tid = tid;
    notify->client = id();
    notify->fast_path = options_.fast_path;
    notify->keys = txn.keys;
    TagSpan(notify.get(), tid, obs::WanrtPhase::kPrepare);
    Send(txn.coordinator, std::move(notify));
    ArmHeartbeat(tid);
  }

  SendReadPrepares(txn, /*retry=*/false);
  if (traces_ && !txn.read_only) {
    traces_->RecordPhase(tid, TxnPhase::kPrepareSent, now());
  }
  ArmRetryTimer(tid);

  if (txn.awaiting_data.empty()) MaybeFinishReads(txn);
}

void CarouselClient::SendReadPrepares(ActiveTxn& txn, bool retry) {
  for (const auto& [p, rw] : txn.keys) {
    const bool need_data = txn.awaiting_data.count(p) > 0;
    auto make_msg = [&](bool want_data) {
      auto msg = runtime::MakeMessage<ReadPrepareMsg>();
      msg->tid = txn.tid;
      msg->partition = p;
      msg->client = id();
      msg->coordinator = txn.coordinator;
      msg->read_keys = rw.reads;
      msg->write_keys = rw.writes;
      msg->read_only = txn.read_only;
      msg->fast_path = options_.fast_path && !txn.read_only;
      msg->want_data = want_data;
      msg->is_retry = retry;
      msg->attempt = txn.read_attempt;
      TagSpan(msg.get(), txn.tid, obs::WanrtPhase::kExecute);
      return msg;
    };

    if (retry) {
      // Leader unknown after a failure: ask the whole group; only the
      // leader acts (and replies with data).
      if (!need_data && txn.read_only) continue;
      for (NodeId replica : directory_->Replicas(p)) {
        Send(replica, make_msg(need_data));
      }
      continue;
    }

    const NodeId leader = directory_->CachedLeader(p);
    if (txn.read_only) {
      Send(leader, make_msg(true));
      continue;
    }
    if (options_.fast_path) {
      // CPC: prepare goes to every replica; data comes from the leader
      // and, with the local-read optimization, the replica in our DC (or
      // the closest one, when enabled and none is local).
      NodeId extra = options_.local_reads
                         ? directory_->LocalReplica(p, dc())
                         : kInvalidNode;
      if (extra == kInvalidNode && options_.local_reads &&
          options_.closest_reads) {
        const Topology& topo = directory_->topology();
        SimTime best_rtt = 0;
        for (NodeId replica : directory_->Replicas(p)) {
          const SimTime rtt = topo.RttMicros(dc(), topo.DcOf(replica));
          if (extra == kInvalidNode || rtt < best_rtt) {
            extra = replica;
            best_rtt = rtt;
          }
        }
      }
      for (NodeId replica : directory_->Replicas(p)) {
        const bool want_data =
            need_data && (replica == leader || replica == extra);
        Send(replica, make_msg(want_data));
      }
    } else {
      Send(leader, make_msg(need_data));
    }
  }
}

void CarouselClient::Write(const TxnId& tid, Key key, Value value) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  if (history_) history_->BufferWrite(tid, key, value);
  it->second.writes[std::move(key)] = std::move(value);
}

void CarouselClient::Commit(const TxnId& tid, CommitCallback callback) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    callback(Status::InvalidArgument("unknown transaction"));
    return;
  }
  ActiveTxn& txn = it->second;
  txn.commit_cb = std::move(callback);
  if (txn.read_only) {
    // Read-only transactions completed at the read callback.
    FinishCommit(tid, !txn.ro_failed, txn.ro_failed ? "read-only conflict" : "");
    return;
  }
  if (txn.have_early_response) {
    FinishCommit(tid, txn.early_committed, txn.early_reason);
    return;
  }
  txn.commit_sent = true;
  txn.commit_started_at = now();
  if (traces_) {
    traces_->RecordPhase(tid, TxnPhase::kCommitStart, now());
  }
  txn.hb_gen++;  // Commit supersedes heartbeats.
  txn.retries = 0;
  SendCommit(txn, /*broadcast=*/false);
  ArmRetryTimer(tid);
}

void CarouselClient::SendCommit(ActiveTxn& txn, bool broadcast) {
  auto msg = runtime::MakeMessage<CommitRequestMsg>();
  msg->tid = txn.tid;
  msg->client = id();
  msg->writes = txn.writes;
  msg->read_versions = txn.versions_used;
  msg->keys = txn.keys;
  TagSpan(msg.get(), txn.tid, obs::WanrtPhase::kDecision);
  if (broadcast) {
    const PartitionId p =
        directory_->topology().node(txn.coordinator).partition;
    for (NodeId replica : directory_->Replicas(p)) {
      Send(replica, msg);
    }
  } else {
    Send(txn.coordinator, std::move(msg));
  }
}

void CarouselClient::Abort(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  ActiveTxn& txn = it->second;
  if (!txn.read_only && txn.coordinator != kInvalidNode) {
    auto msg = runtime::MakeMessage<AbortRequestMsg>();
    msg->tid = tid;
    msg->client = id();
    TagSpan(msg.get(), tid, obs::WanrtPhase::kDecision);
    Send(txn.coordinator, std::move(msg));
  } else if (traces_) {
    // No coordinator will ever seal this trace; close it here.
    traces_->RecordPhase(tid, TxnPhase::kDecided, now());
    traces_->RecordOutcome(tid, /*committed=*/false, /*fast_path=*/false,
                           "client abort", now());
    traces_->Seal(tid);
  }
  // A voluntary abort always precedes Commit(), so the coordinator cannot
  // have decided commit (it needs our CommitRequest's write data first);
  // recording a definite abort is sound.
  if (history_) {
    history_->ClientOutcome(tid, check::Outcome::kAborted, "client abort",
                            now());
  }
  if (wanrt_) wanrt_->Seal(tid, id(), /*committed=*/false, txn.read_only);
  m_aborted_.Increment();
  txns_.erase(it);
}

void CarouselClient::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  (void)from;
  switch (msg->type()) {
    case sim::kCarouselReadResponse: {
      const auto& m = sim::As<ReadResponseMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end()) return;
      ActiveTxn& txn = it->second;
      if (txn.reads_done) return;
      if (m.attempt != txn.read_attempt) return;  // Stale attempt.
      if (txn.read_only && !m.ok) {
        txn.ro_failed = true;
        txn.awaiting_data.erase(m.partition);
        MaybeFinishReads(txn);
        return;
      }
      // First response per partition wins (leader or local replica).
      if (txn.awaiting_data.erase(m.partition) == 0) return;
      for (const auto& [k, vv] : m.reads) {
        txn.results[k] = vv;
        txn.versions_used[k] = vv.version;
      }
      MaybeFinishReads(txn);
      return;
    }
    case sim::kCarouselCommitResponse: {
      const auto& m = sim::As<CommitResponseMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end()) return;
      ActiveTxn& txn = it->second;
      if (!txn.commit_sent && !txn.commit_cb) {
        // Early decision (e.g., abort on prepare conflict) before the
        // application called Commit; remember it.
        txn.have_early_response = true;
        txn.early_committed = m.committed;
        txn.early_reason = m.reason;
        return;
      }
      FinishCommit(m.tid, m.committed, m.reason);
      return;
    }
    case sim::kCarouselNotLeader: {
      const auto& m = sim::As<NotLeaderMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end()) return;
      ActiveTxn& txn = it->second;
      if (txn.commit_sent && m.leader_hint != kInvalidNode &&
          m.leader_hint != txn.coordinator) {
        txn.coordinator = m.leader_hint;
        SendCommit(txn, /*broadcast=*/false);
      }
      return;
    }
    default:
      return;
  }
}

void CarouselClient::MaybeFinishReads(ActiveTxn& txn) {
  if (txn.reads_done || !txn.awaiting_data.empty()) return;
  txn.reads_done = true;
  if (!txn.read_only) {
    read_phase_.Record(now() - txn.read_started_at);
  }
  const TxnId tid = txn.tid;
  if (history_) history_->ObserveReads(tid, txn.results);
  if (traces_) {
    traces_->RecordPhase(tid, TxnPhase::kExecuteDone, now());
  }
  if (txn.read_only) {
    txn.hb_gen++;
    txn.retry_gen++;
    ReadCallback cb = std::move(txn.read_cb);
    const bool failed = txn.ro_failed;
    ReadResults results = std::move(txn.results);
    // Read-only transactions end here: the client owns their whole trace.
    if (traces_) {
      traces_->RecordOutcome(tid, !failed, /*fast_path=*/false,
                             failed ? "read-only conflict" : "",
                             now());
      traces_->Seal(tid);
    }
    if (history_) {
      history_->ClientOutcome(
          tid, failed ? check::Outcome::kAborted : check::Outcome::kCommitted,
          failed ? "read-only conflict" : "", now());
    }
    if (wanrt_) wanrt_->Seal(tid, id(), !failed, /*read_only=*/true);
    (failed ? m_aborted_ : m_committed_).Increment();
    txns_.erase(tid);
    if (cb) {
      cb(failed ? Status::Aborted("read-only conflict") : Status::OK(),
         results);
    }
    return;
  }
  if (txn.read_cb) {
    ReadCallback cb = std::move(txn.read_cb);
    cb(Status::OK(), txn.results);
    // Note: the callback may have called Commit()/Abort() re-entrantly;
    // `txn` may be invalid past this point.
  }
}

void CarouselClient::FinishCommit(const TxnId& tid, bool committed,
                                  const std::string& reason) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  if (committed && it->second.commit_started_at > 0) {
    commit_phase_.Record(now() - it->second.commit_started_at);
  }
  // The Commit phase ends now, when the client sees the outcome (the
  // coordinator recorded the outcome itself when it decided).
  if (traces_) {
    traces_->RecordPhase(tid, TxnPhase::kDecided, now());
    traces_->RecordOutcome(tid, committed, /*fast_path=*/false, reason,
                           now());
  }
  if (history_) {
    history_->ClientOutcome(
        tid, committed ? check::Outcome::kCommitted : check::Outcome::kAborted,
        reason, now());
  }
  if (wanrt_) wanrt_->Seal(tid, id(), committed, /*read_only=*/false);
  (committed ? m_committed_ : m_aborted_).Increment();
  CommitCallback cb = std::move(it->second.commit_cb);
  // `reason` may alias a field of the ActiveTxn erased next (e.g.
  // early_reason), so copy it before the erase.
  const std::string why = reason;
  it->second.hb_gen++;
  it->second.retry_gen++;
  txns_.erase(it);
  if (cb) {
    cb(committed ? Status::OK() : Status::Aborted(why));
  }
}

void CarouselClient::ArmHeartbeat(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  const uint64_t gen = it->second.hb_gen;
  Schedule(options_.heartbeat_interval, [this, tid, gen]() {
    if (!alive()) return;
    auto it = txns_.find(tid);
    if (it == txns_.end() || it->second.hb_gen != gen) return;
    ActiveTxn& txn = it->second;
    if (txn.commit_sent) return;
    auto msg = runtime::MakeMessage<HeartbeatMsg>();
    msg->tid = tid;
    msg->client = id();
    Send(txn.coordinator, msg);
    ArmHeartbeat(tid);
  });
}

void CarouselClient::ArmRetryTimer(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  const uint64_t gen = ++it->second.retry_gen;
  Schedule(options_.client_retry_timeout, [this, tid, gen]() {
    if (!alive()) return;
    auto it = txns_.find(tid);
    if (it == txns_.end() || it->second.retry_gen != gen) return;
    ActiveTxn& txn = it->second;
    if (txn.reads_done && !txn.commit_sent) {
      // Between phases (application is deciding); nothing to retransmit.
      ArmRetryTimer(tid);
      return;
    }
    if (++txn.retries > kMaxRetries) {
      const bool in_commit = txn.commit_sent;
      CommitCallback ccb = std::move(txn.commit_cb);
      ReadCallback rcb = txn.reads_done ? nullptr : std::move(txn.read_cb);
      // Give up: close the trace with an unknown-outcome timeout (unless
      // some coordinator already sealed it).
      if (traces_) {
        traces_->RecordPhase(tid, TxnPhase::kDecided, now());
        traces_->RecordOutcome(tid, /*committed=*/false, /*fast_path=*/false,
                               "timeout", now());
        traces_->Seal(tid);
      }
      // The true verdict is indeterminate: the commit may still land.
      if (history_) {
        history_->ClientOutcome(tid, check::Outcome::kTimedOut,
                                in_commit ? "commit timeout" : "read timeout",
                                now());
      }
      if (wanrt_) {
        wanrt_->Seal(tid, id(), /*committed=*/false, txn.read_only);
      }
      m_timedout_.Increment();
      txns_.erase(it);
      if (rcb) rcb(Status::TimedOut("read phase"), {});
      if (in_commit && ccb) ccb(Status::TimedOut("commit"));
      return;
    }
    if (txn.commit_sent) {
      SendCommit(txn, /*broadcast=*/true);
    } else if (!txn.reads_done) {
      if (txn.read_only) {
        // A read-only snapshot must come from ONE attempt. Keeping results
        // from the previous attempt and filling in only the missing
        // partitions would merge reads taken a retry-interval apart —
        // a fractured snapshot that breaks serializability (writers that
        // committed in between are half-visible). Start over.
        txn.read_attempt++;
        txn.ro_failed = false;
        txn.results.clear();
        txn.versions_used.clear();
        txn.awaiting_data.clear();
        for (const auto& [p, rw] : txn.keys) {
          if (!rw.reads.empty()) txn.awaiting_data.insert(p);
        }
      }
      SendReadPrepares(txn, /*retry=*/true);
    }
    ArmRetryTimer(tid);
  });
}

}  // namespace carousel::core
