#ifndef CAROUSEL_CAROUSEL_SERVER_H_
#define CAROUSEL_CAROUSEL_SERVER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "carousel/directory.h"
#include "carousel/messages.h"
#include "carousel/options.h"
#include "common/types.h"
#include "kv/pending_list.h"
#include "kv/versioned_store.h"
#include "raft/raft_node.h"
#include "sim/network.h"
#include "sim/node.h"

namespace carousel::core {

/// A Carousel data server (CDS, paper §3.3): one replica of one partition's
/// consensus group. Every server can act in two roles:
///
///  * Participant (leader or follower) for transactions touching its
///    partition: answers reads, runs OCC prepare checks against its
///    pending-transaction list, replicates prepare results through Raft
///    (slow path), replies directly to coordinators on the CPC fast path,
///    and applies writebacks.
///  * Coordinator, when it is its group's leader and a local client picks
///    it: tracks participant decisions, replicates transaction info /
///    write data / the final decision to its consensus group, answers the
///    client, and drives the asynchronous Writeback phase.
///
/// Failure handling follows paper §4.3: pending-transaction lists ride on
/// Raft votes; a new leader reconstructs fast-path prepare decisions
/// before serving, and a new coordinator re-derives commit decisions from
/// replicated state plus re-queried prepare responses.
class CarouselServer : public sim::Node {
 public:
  CarouselServer(const NodeInfo& info, const Directory* directory,
                 sim::Simulator* sim, const CarouselOptions& options);

  /// Starts the Raft member. Replica 0 bootstraps as leader of term 1.
  void Start();

  // sim::Node interface.
  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override;
  SimTime ServiceCost(const sim::Message& msg) const override;
  void OnCrash() override;
  void OnRecover() override;

  /// ---- Introspection (tests, benches) ----
  raft::RaftNode* raft() { return raft_.get(); }
  const kv::VersionedStore& store() const { return store_; }
  const kv::PendingList& pending() const { return pending_; }
  PartitionId partition() const { return partition_; }
  /// False while a newly elected leader is still running the CPC
  /// failure-handling protocol (requests are buffered).
  bool serving() const { return serving_; }
  /// Number of transactions this node committed (applied writes for).
  uint64_t committed_count() const { return committed_count_; }

  /// Fast-path quorum for a participant group of size n = 2f+1:
  /// ceil(3f/2) + 1 (paper §4.2).
  static int SupermajorityFor(int group_size) {
    const int f = (group_size - 1) / 2;
    return (3 * f + 1) / 2 + 1;
  }

 private:
  // ---- Participant role ----
  void HandleReadPrepare(NodeId from, const ReadPrepareMsg& msg);
  void HandleQueryPrepare(NodeId from, const QueryPrepareMsg& msg);
  void HandleWriteback(NodeId from, const WritebackMsg& msg);
  void HandleQueryDecision(NodeId from, const QueryDecisionMsg& msg);
  /// Periodic sweep that probes coordinators about over-age pending
  /// entries (2PC termination protocol).
  void ArmPendingGcTimer();
  /// Leader-side prepare: OCC check, pending-list insert, Raft replication
  /// of the decision, and (fast path) the immediate direct reply.
  void LeaderPrepare(const TxnId& tid, const KeyList& reads,
                     const KeyList& writes, NodeId coordinator,
                     bool fast_path);
  /// Follower-side tentative prepare for the CPC fast path.
  void FollowerFastPrepare(const ReadPrepareMsg& msg);
  void SendDecision(NodeId coordinator, const TxnId& tid, bool prepared,
                    ReadVersionMap versions, uint64_t term, bool is_leader,
                    bool via_fast_path);

  // ---- Coordinator role ----
  struct FastReply {
    bool prepared = false;
    ReadVersionMap versions;
    uint64_t term = 0;
    bool is_leader = false;
  };
  struct PartState {
    bool decided = false;
    bool prepared = false;
    /// Versions the participant leader prepared with (staleness check).
    ReadVersionMap leader_versions;
    bool slow_seen = false;
    std::map<NodeId, FastReply> fast_replies;
    bool writeback_acked = false;
  };
  struct CoordTxn {
    TxnId tid;
    NodeId client = kInvalidNode;
    bool fast = false;
    std::map<PartitionId, RwKeys> keys;
    std::map<PartitionId, PartState> parts;
    bool info_logged = false;
    bool info_proposed = false;
    bool commit_received = false;
    bool write_logged = false;
    bool decision_logged = false;
    bool client_abort = false;
    WriteSet writes;
    ReadVersionMap client_versions;
    bool decided = false;
    bool committed = false;
    std::string reason;
    SimTime last_heartbeat = 0;
    bool heartbeat_timer_armed = false;
    bool writeback_started = false;
    uint64_t hb_timer_gen = 0;
    uint64_t retry_timer_gen = 0;
  };

  void HandleCoordPrepare(NodeId from, const CoordPrepareMsg& msg);
  void HandleCommitRequest(NodeId from, const CommitRequestMsg& msg);
  void HandleAbortRequest(NodeId from, const AbortRequestMsg& msg);
  void HandlePrepareDecision(NodeId from, const PrepareDecisionMsg& msg);
  void HandleWritebackAck(NodeId from, const WritebackAckMsg& msg);
  void HandleHeartbeat(NodeId from, const HeartbeatMsg& msg);

  CoordTxn& GetOrCreateCoordTxn(const TxnId& tid);
  void RecordDecision(CoordTxn& txn, PartitionId partition,
                      const PrepareDecisionMsg& msg);
  /// Re-runs the commit/abort decision rule; called whenever any input
  /// changes.
  void EvaluateCoordTxn(CoordTxn& txn);
  void Decide(CoordTxn& txn, bool commit, const std::string& reason);
  void StartWriteback(CoordTxn& txn);
  void SendWriteback(CoordTxn& txn, PartitionId partition, NodeId target);
  void ArmHeartbeatTimer(CoordTxn& txn);
  void ArmCoordRetryTimer(const TxnId& tid);
  void MaybeFinishCoordTxn(const TxnId& tid);
  /// Replies to the client (idempotently) with the recorded outcome.
  void ReplyToClient(NodeId client, const TxnId& tid, bool committed,
                     const std::string& reason);

  // ---- Raft integration ----
  void ApplyLogEntry(uint64_t index, const sim::MessagePtr& payload);
  void ApplyPrepareResult(const LogPrepareResult& entry);
  void ApplyCommitEntry(const LogCommit& entry);
  /// CPC leader-failure recovery (paper §4.3.3 steps 3-5) plus coordinator
  /// takeover; runs when this node wins an election and its log is fully
  /// committed.
  void OnLeadership(uint64_t term,
                    std::vector<std::vector<kv::PendingTxn>> vote_lists);
  void OnStepDown(uint64_t term);
  void FinishRecoveryIfReady();
  void DrainBuffered();
  void TakeOverCoordination();

  bool IsLeader() const { return raft_->is_leader(); }

  // ---- Identity / wiring ----
  PartitionId partition_;
  const Directory* directory_;
  CarouselOptions options_;
  std::vector<NodeId> group_members_;
  std::unique_ptr<raft::RaftNode> raft_;

  // ---- Participant state ----
  kv::VersionedStore store_;
  kv::PendingList pending_;
  /// Tids whose prepare result has been applied from the Raft log
  /// (slow-path prepared), vs. merely tentative fast-path entries.
  std::set<TxnId> logged_prepares_;
  /// Final outcomes, for idempotent retries. true = committed.
  std::unordered_map<TxnId, bool, TxnIdHash> decided_;
  uint64_t committed_count_ = 0;

  // ---- Coordinator state ----
  std::unordered_map<TxnId, CoordTxn, TxnIdHash> coord_txns_;
  std::unordered_map<TxnId, bool, TxnIdHash> coord_decided_;
  /// Fast/slow decisions that arrived before the CoordPrepareMsg.
  std::unordered_map<TxnId, std::vector<std::pair<PartitionId, PrepareDecisionMsg>>,
                     TxnIdHash>
      orphan_decisions_;

  // ---- Recovery state ----
  bool serving_ = true;
  int recovery_outstanding_ = 0;
  /// Tids whose fast-path prepare is being re-replicated by a new leader.
  std::set<TxnId> recovery_tids_;
  std::deque<std::pair<NodeId, sim::MessagePtr>> buffered_;
  uint64_t gc_timer_gen_ = 0;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_SERVER_H_
