#ifndef CAROUSEL_CAROUSEL_SERVER_H_
#define CAROUSEL_CAROUSEL_SERVER_H_

#include <memory>
#include <vector>

#include "carousel/coordinator.h"
#include "carousel/directory.h"
#include "carousel/options.h"
#include "carousel/participant.h"
#include "carousel/recovery.h"
#include "carousel/server_context.h"
#include "common/trace.h"
#include "common/types.h"
#include "kv/pending_list.h"
#include "kv/versioned_store.h"
#include "raft/raft_node.h"
#include "runtime/batcher.h"
#include "runtime/dispatcher.h"
#include "runtime/endpoint.h"
#include "runtime/runtime.h"

namespace carousel::core {

/// A Carousel data server (CDS, paper §3.3): one replica of one partition's
/// consensus group. The protocol itself lives in three role modules that
/// share a ServerContext:
///
///  * Participant (participant.h) — reads, OCC prepare checks, slow-path
///    replication, CPC fast-path replies, writeback application.
///  * Coordinator (coordinator.h) — active on the group leader when a local
///    client picks it; tracks participant decisions, replicates txn state,
///    answers the client, drives Writeback.
///  * Recovery (recovery.h) — CPC failure handling (§4.3.3): buffers
///    requests on a fresh leader until fast-path prepares are
///    reconstructed and re-replicated.
///
/// This class is wiring and lifecycle only: it owns the storage and Raft
/// substrate, builds the shared context, and routes incoming messages and
/// applied log entries through typed dispatchers the roles register into.
class CarouselServer : public runtime::Endpoint {
 public:
  /// `metrics`, when non-null and enabled, receives per-role counters and
  /// zero-cost exposures (dispatch counts, raft state, queue depths); it
  /// also switches on Raft ack-span stamping for WANRT accounting.
  /// `env` is the hosting substrate's executor handle (clock, this
  /// node's timer queue, a forked RNG); the server must then be
  /// Register()ed with the matching backend before Start().
  CarouselServer(const NodeInfo& info, const Directory* directory,
                 runtime::NodeEnv env, const CarouselOptions& options,
                 TraceCollector* traces = nullptr,
                 obs::MetricsRegistry* metrics = nullptr);
  ~CarouselServer() override;

  /// Starts the Raft member. Replica 0 bootstraps as leader of term 1.
  void Start();

  // runtime::Endpoint interface.
  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override;
  SimTime ServiceCost(const sim::Message& msg) const override;
  void OnCrash() override;
  void OnRecover() override;

  /// ---- Introspection (tests, benches) ----
  raft::RaftNode* raft() { return raft_.get(); }
  const kv::VersionedStore& store() const { return store_; }
  /// Mutable store access for verification runs (writer-log enablement).
  kv::VersionedStore& mutable_store() { return store_; }
  /// Attaches a verification history recorder (may be null); coordinators
  /// stamp their decision points into it.
  void set_history(check::HistoryRecorder* history) { ctx_.history = history; }
  const kv::PendingList& pending() const { return pending_; }
  PartitionId partition() const { return partition_; }
  /// False while a newly elected leader is still running the CPC
  /// failure-handling protocol (requests are buffered).
  bool serving() const { return recovery_->serving(); }
  /// Number of transactions this node committed (applied writes for).
  uint64_t committed_count() const { return participant_->committed_count(); }

  Participant& participant() { return *participant_; }
  Coordinator& coordinator() { return *coordinator_; }
  Recovery& recovery() { return *recovery_; }
  /// Egress batcher statistics (tests, benches). Counters stay zero when
  /// batching is disabled.
  const runtime::MessageBatcher::Stats& batcher_stats() const {
    return batcher_.stats();
  }
  /// Network-message routing table (coverage tests).
  const runtime::Dispatcher& dispatcher() const { return dispatcher_; }
  /// Raft log payload routing table (coverage tests).
  const runtime::Dispatcher& apply_dispatcher() const {
    return apply_dispatcher_;
  }

  /// Fast-path quorum for a participant group of size n = 2f+1:
  /// ceil(3f/2) + 1 (paper §4.2).
  static int SupermajorityFor(int group_size);

 private:
  void ApplyLogEntry(uint64_t index, const sim::MessagePtr& payload);
  /// Outbound routing: server-to-server traffic goes through the egress
  /// batcher when batching is on; client-bound and all unbatched traffic
  /// goes straight to the transport.
  void SendRouted(NodeId to, sim::MessagePtr msg);
  /// CPU charge for one message's payload-proportional work (per-key,
  /// per-entry terms), excluding the per-message dispatch base.
  SimTime PayloadCost(const sim::Message& msg) const;

  // ---- Identity / wiring ----
  PartitionId partition_;
  const Directory* directory_;
  CarouselOptions options_;
  std::vector<NodeId> group_members_;
  std::unique_ptr<raft::RaftNode> raft_;
  /// Durable state (threaded backend); null under the simulator.
  runtime::Storage* storage_ = nullptr;

  // ---- Substrate shared by the roles ----
  kv::VersionedStore store_;
  kv::PendingList pending_;
  ServerContext ctx_;

  // ---- Roles ----
  std::unique_ptr<Participant> participant_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<Recovery> recovery_;

  // ---- Routing ----
  runtime::Dispatcher dispatcher_;
  runtime::Dispatcher apply_dispatcher_;
  runtime::MessageBatcher batcher_;
};

inline int CarouselServer::SupermajorityFor(int group_size) {
  return ::carousel::core::SupermajorityFor(group_size);
}

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_SERVER_H_
