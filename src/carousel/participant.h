#ifndef CAROUSEL_CAROUSEL_PARTICIPANT_H_
#define CAROUSEL_CAROUSEL_PARTICIPANT_H_

#include <functional>
#include <set>
#include <unordered_map>

#include "carousel/messages.h"
#include "carousel/server_context.h"
#include "common/types.h"
#include "runtime/dispatcher.h"

namespace carousel::core {

/// Participant role of a Carousel data server (paper §3.3, §4.1-§4.2):
/// answers reads, runs OCC prepare checks against the pending-transaction
/// list, replicates prepare results through Raft (slow path), replies
/// directly to coordinators on the CPC fast path, and applies writebacks.
/// Leader and follower behaviour both live here; the Raft role is read off
/// the shared context per message.
class Participant {
 public:
  explicit Participant(ServerContext* ctx)
      : ctx_(ctx),
        m_prepares_ok_(ctx->RoleCounter("participant", "prepares_ok")),
        m_prepares_conflict_(
            ctx->RoleCounter("participant", "prepares_conflict")),
        m_fast_votes_(ctx->RoleCounter("participant", "fast_votes")),
        m_writebacks_(ctx->RoleCounter("participant", "writebacks_applied")) {}

  /// Registers this role's network message handlers.
  void Register(runtime::Dispatcher* dispatcher);
  /// Registers this role's Raft log payload handlers.
  void RegisterApply(runtime::Dispatcher* apply);

  /// Hook invoked from ApplyPrepareResult so the recovery module can track
  /// re-replicated fast-path prepares (CPC failure handling, §4.3.3).
  void set_on_prepare_applied(std::function<void(const TxnId&)> fn) {
    on_prepare_applied_ = std::move(fn);
  }

  /// Periodic sweep that probes coordinators about over-age pending
  /// entries (2PC termination protocol). Re-armed on recovery.
  void ArmPendingGcTimer();
  /// Invalidates outstanding timers (host crash).
  void OnCrash() { gc_timer_gen_++; }

  /// Sends a PrepareDecisionMsg to `coordinator` (also used by recovery to
  /// re-announce slow-path prepared transactions after an election).
  void SendDecision(NodeId coordinator, const TxnId& tid, bool prepared,
                    ReadVersionMap versions, uint64_t term, bool is_leader,
                    bool via_fast_path);

  /// ---- State shared with recovery / introspection ----
  bool HasLoggedPrepare(const TxnId& tid) const {
    return logged_prepares_.count(tid) > 0;
  }
  bool HasDecided(const TxnId& tid) const { return decided_.count(tid) > 0; }
  uint64_t committed_count() const { return committed_count_; }

 private:
  void HandleReadPrepare(NodeId from, const ReadPrepareMsg& msg);
  void HandleQueryPrepare(NodeId from, const QueryPrepareMsg& msg);
  void HandleWriteback(NodeId from, const WritebackMsg& msg);
  /// Leader-side prepare: OCC check, pending-list insert, Raft replication
  /// of the decision, and (fast path) the immediate direct reply.
  void LeaderPrepare(const TxnId& tid, const KeyList& reads,
                     const KeyList& writes, NodeId coordinator,
                     bool fast_path);
  /// Follower-side tentative prepare for the CPC fast path.
  void FollowerFastPrepare(const ReadPrepareMsg& msg);
  void SendReadData(const ReadPrepareMsg& msg, bool from_leader);

  void ApplyPrepareResult(const LogPrepareResult& entry);
  void ApplyCommitEntry(const LogCommit& entry);

  ServerContext* ctx_;
  std::function<void(const TxnId&)> on_prepare_applied_;

  /// Tids whose prepare result has been applied from the Raft log
  /// (slow-path prepared), vs. merely tentative fast-path entries.
  std::set<TxnId> logged_prepares_;
  /// Tids durably REFUSED at prepare (conflict). Prepare results are
  /// write-once: a refusal must stay a refusal across leader changes, or
  /// two coordinator leaders re-deriving the decision at different times
  /// could reach opposite verdicts (the conflict may have evaporated).
  std::set<TxnId> refused_;
  /// Final outcomes, for idempotent retries. true = committed.
  std::unordered_map<TxnId, bool, TxnIdHash> decided_;
  uint64_t committed_count_ = 0;
  uint64_t gc_timer_gen_ = 0;

  // Metrics (null handles when the registry is absent or disabled).
  obs::Counter m_prepares_ok_;
  obs::Counter m_prepares_conflict_;
  obs::Counter m_fast_votes_;
  obs::Counter m_writebacks_;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_PARTICIPANT_H_
