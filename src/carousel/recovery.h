#ifndef CAROUSEL_CAROUSEL_RECOVERY_H_
#define CAROUSEL_CAROUSEL_RECOVERY_H_

#include <deque>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "carousel/coordinator.h"
#include "carousel/participant.h"
#include "carousel/server_context.h"
#include "kv/pending_list.h"
#include "sim/message.h"

namespace carousel::core {

/// Recovery role of a Carousel data server: the CPC failure-handling
/// protocol (paper §4.3.3). A freshly elected leader buffers new requests,
/// reconstructs the pending-transaction list from f+1 vote attachments,
/// re-replicates surviving fast-path prepares, re-announces slow-path
/// prepared transactions, and only then opens the serving gate.
class Recovery {
 public:
  Recovery(ServerContext* ctx, Participant* participant,
           Coordinator* coordinator)
      : ctx_(ctx),
        participant_(participant),
        coordinator_(coordinator),
        m_recoveries_(ctx->RoleCounter("recovery", "leadership_recoveries")),
        m_reproposed_(ctx->RoleCounter("recovery", "prepares_rereplicated")) {
    participant_->set_on_prepare_applied(
        [this](const TxnId& tid) { OnPrepareApplied(tid); });
  }

  /// Redelivery sink for buffered messages (the server's dispatch entry).
  void set_redeliver(
      std::function<void(NodeId, const sim::MessagePtr&)> redeliver) {
    redeliver_ = std::move(redeliver);
  }

  /// Raft callbacks, wired up by the server.
  void OnElected(uint64_t term);
  void OnLeadership(uint64_t term,
                    std::vector<std::vector<kv::PendingTxn>> vote_lists);
  void OnStepDown(uint64_t term);

  /// Pre-dispatch gate: buffers request-class messages while the CPC
  /// failure-handling protocol is in flight. Returns true if buffered
  /// (the caller must not dispatch the message).
  bool MaybeBuffer(NodeId from, const sim::MessagePtr& msg);

  /// Host crash-recover: a restarted node serves immediately (it rejoins
  /// as a follower; leader recovery re-runs on election).
  void OnHostRecover() { serving_ = true; }

  bool serving() const { return serving_; }
  size_t buffered_count() const { return buffered_.size(); }

 private:
  /// Participant hook: a prepare result we re-replicated has committed.
  void OnPrepareApplied(const TxnId& tid);
  void FinishRecoveryIfReady();
  void DrainBuffered();

  ServerContext* ctx_;
  Participant* participant_;
  Coordinator* coordinator_;
  std::function<void(NodeId, const sim::MessagePtr&)> redeliver_;

  /// False from election until §4.3.3 completes; requests buffer below.
  bool serving_ = true;
  std::deque<std::pair<NodeId, sim::MessagePtr>> buffered_;
  /// Fast-path prepares being re-replicated (step 5), until applied.
  std::set<TxnId> recovery_tids_;
  int recovery_outstanding_ = 0;

  // Metrics (null handles when the registry is absent or disabled).
  obs::Counter m_recoveries_;
  obs::Counter m_reproposed_;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_RECOVERY_H_
