#include "carousel/recon.h"

#include <algorithm>
#include <memory>

namespace carousel::core {

void ReconnaissanceRunner::Run(CarouselClient* client, KeyList recon_reads,
                               DeriveFn derive, BodyFn body, DoneFn done,
                               int max_attempts) {
  Attempt(client, std::move(recon_reads), std::move(derive), std::move(body),
          std::move(done), 1, max_attempts);
}

void ReconnaissanceRunner::Attempt(CarouselClient* client,
                                   KeyList recon_reads, DeriveFn derive,
                                   BodyFn body, DoneFn done, int attempt,
                                   int max_attempts) {
  // Step 1: the reconnaissance transaction — read-only, 2FI by
  // construction since the reconnaissance keys are known in advance.
  const TxnId recon_tid = client->Begin();
  client->ReadAndPrepare(
      recon_tid, recon_reads, /*writes=*/{},
      [client, recon_reads, derive, body, done, attempt, max_attempts](
          Status recon_status, const ReadResults& recon_results) {
        if (recon_status.code() == StatusCode::kTimedOut) {
          done(recon_status, attempt);
          return;
        }
        if (!recon_status.ok()) {
          // Read-only validation conflict: retry the reconnaissance.
          if (attempt >= max_attempts) {
            done(Status::Aborted("reconnaissance kept conflicting"), attempt);
            return;
          }
          Attempt(client, recon_reads, derive, body, done, attempt + 1,
                  max_attempts);
          return;
        }

        // Step 2: derive the main transaction; the reconnaissance keys
        // join its read set so their versions are re-validated.
        MainTxn main = derive(recon_results);
        for (const Key& k : recon_reads) {
          if (std::find(main.reads.begin(), main.reads.end(), k) ==
              main.reads.end()) {
            main.reads.push_back(k);
          }
        }

        // Step 3: the main transaction (2FI: keys now fixed).
        const TxnId main_tid = client->Begin();
        client->ReadAndPrepare(
            main_tid, main.reads, main.writes,
            [client, main_tid, recon_reads, recon_results, derive, body,
             done, attempt, max_attempts](Status main_status,
                                          const ReadResults& main_reads) {
              if (!main_status.ok()) {
                done(main_status, attempt);
                return;
              }
              // Validate: every reconnaissance read must be unchanged,
              // otherwise the derived keys may be wrong (paper: "check
              // that the customer's name matches the name used by the
              // reconnaissance transaction").
              for (const Key& k : recon_reads) {
                auto now = main_reads.find(k);
                auto then = recon_results.find(k);
                const bool changed =
                    now == main_reads.end() || then == recon_results.end() ||
                    now->second.version != then->second.version;
                if (changed) {
                  client->Abort(main_tid);
                  if (attempt >= max_attempts) {
                    done(Status::Aborted("reconnaissance data kept changing"),
                         attempt);
                    return;
                  }
                  Attempt(client, recon_reads, derive, body, done,
                          attempt + 1, max_attempts);
                  return;
                }
              }
              body(client, main_tid, main_reads);
              client->Commit(
                  main_tid,
                  [client, recon_reads, derive, body, done, attempt,
                   max_attempts](Status commit_status) {
                    if (commit_status.ok() ||
                        commit_status.code() == StatusCode::kTimedOut ||
                        attempt >= max_attempts) {
                      done(commit_status, attempt);
                      return;
                    }
                    // OCC conflict: retry the whole sequence.
                    Attempt(client, recon_reads, derive, body, done,
                            attempt + 1, max_attempts);
                  });
            });
      });
}

}  // namespace carousel::core
