#include "carousel/recovery.h"

#include <cstdio>
#include <map>
#include <memory>

#include "runtime/arena.h"

namespace {
// Protocol tracing for debugging: set CAROUSEL_TRACE=1 in the environment.
bool TraceEnabled() {
  static const bool enabled = ::getenv("CAROUSEL_TRACE") != nullptr;
  return enabled;
}
}  // namespace

namespace carousel::core {

void Recovery::OnElected(uint64_t term) {
  // Buffer client/coordinator requests from the instant of election until
  // the CPC failure-handling protocol completes (§4.3.3 step 1).
  (void)term;
  serving_ = false;
}

bool Recovery::MaybeBuffer(NodeId from, const sim::MessagePtr& msg) {
  if (serving_) return false;
  // Only request-class messages wait for recovery; responses (decisions,
  // acks, heartbeats) and Raft traffic are processed immediately.
  switch (msg->type()) {
    case sim::kCarouselReadPrepare:
    case sim::kCarouselQueryPrepare:
    case sim::kCarouselQueryDecision:
    case sim::kCarouselWriteback:
    case sim::kCarouselCoordPrepare:
    case sim::kCarouselCommitRequest:
    case sim::kCarouselAbortRequest:
      buffered_.emplace_back(from, msg);
      return true;
    default:
      return false;
  }
}

void Recovery::OnLeadership(
    uint64_t term, std::vector<std::vector<kv::PendingTxn>> vote_lists) {
  serving_ = false;
  recovery_outstanding_ = 0;
  recovery_tids_.clear();
  m_recoveries_.Increment();

  // ---- CPC failure handling (paper §4.3.3) ----
  // Step 2 (completing replication of the log) has already happened: Raft
  // invokes this callback only after the new leader's no-op entry — and
  // with it every earlier entry — is committed and applied.
  //
  // Step 3: examine f+1 pending-transaction lists (our own plus f of the
  // lists piggybacked on granted votes).
  const auto& group = ctx_->directory->Replicas(ctx_->partition);
  const int f = (static_cast<int>(group.size()) - 1) / 2;
  std::vector<std::vector<kv::PendingTxn>> lists;
  lists.push_back(ctx_->pending->Snapshot());
  for (int i = 0; i < f && i < static_cast<int>(vote_lists.size()); ++i) {
    lists.push_back(vote_lists[i]);
  }
  const bool enough_lists = static_cast<int>(lists.size()) >= f + 1;
  const int majority_needed = (f + 1) / 2 + 1;
  if (TraceEnabled()) {
    fprintf(stderr,
            "[%lld] node %d CPC recovery term=%llu lists=%zu (need %d) "
            "own_pending=%zu\n",
            (long long)ctx_->now(), ctx_->self, (unsigned long long)term,
            lists.size(), f + 1, lists.front().size());
  }

  std::vector<kv::PendingTxn> survivors;
  if (enough_lists && f > 0) {
    // Count, per transaction, how many lists prepared it with identical
    // versions and in the same term.
    std::map<TxnId, std::vector<const kv::PendingTxn*>> by_tid;
    for (const auto& list : lists) {
      for (const auto& entry : list) by_tid[entry.tid].push_back(&entry);
    }
    for (const auto& [tid, entries] : by_tid) {
      if (participant_->HasLoggedPrepare(tid)) continue;  // Slow-path done.
      if (participant_->HasDecided(tid)) continue;
      int agreeing = 0;
      const kv::PendingTxn* sample = entries.front();
      for (const kv::PendingTxn* e : entries) {
        if (e->term == sample->term &&
            e->read_versions == sample->read_versions) {
          agreeing++;
        }
      }
      if (TraceEnabled()) {
        fprintf(stderr, "[%lld] node %d CPC recovery tid %s agreeing=%d/%d\n",
                (long long)ctx_->now(), ctx_->self, tid.ToString().c_str(),
                agreeing, majority_needed);
      }
      if (agreeing < majority_needed) continue;

      // Step 4: exclude stale versions (the failed leader always had the
      // latest) ...
      bool stale = false;
      for (const auto& [key, version] : sample->read_versions) {
        if (ctx_->store->GetVersion(key) != version) {
          stale = true;
          break;
        }
      }
      if (stale) {
        if (TraceEnabled()) {
          fprintf(stderr, "[%lld] node %d CPC recovery tid %s STALE\n",
                  (long long)ctx_->now(), ctx_->self, tid.ToString().c_str());
        }
        continue;
      }
      // ... and conflicts with slow-path prepared transactions.
      bool conflicts = false;
      for (const kv::PendingTxn& logged : ctx_->pending->Snapshot()) {
        if (!participant_->HasLoggedPrepare(logged.tid)) continue;
        auto overlaps = [](const KeyList& a, const KeyList& b) {
          for (const Key& x : a) {
            for (const Key& y : b) {
              if (x == y) return true;
            }
          }
          return false;
        };
        if (overlaps(sample->read_keys, logged.write_keys) ||
            overlaps(sample->write_keys, logged.write_keys) ||
            overlaps(sample->write_keys, logged.read_keys)) {
          conflicts = true;
          break;
        }
      }
      if (conflicts) continue;
      if (TraceEnabled()) {
        fprintf(stderr, "[%lld] node %d CPC recovery tid %s SURVIVES\n",
                (long long)ctx_->now(), ctx_->self, tid.ToString().c_str());
      }
      survivors.push_back(*sample);
    }
  }

  // Drop tentative fast-path entries that did not survive: they cannot
  // have been exposed to any coordinator (a fast-path quorum of
  // ceil(3f/2)+1 leaves at least a majority of every f+1 sample prepared).
  std::set<TxnId> survivor_tids;
  for (const auto& s : survivors) survivor_tids.insert(s.tid);
  for (const kv::PendingTxn& entry : ctx_->pending->Snapshot()) {
    if (!participant_->HasLoggedPrepare(entry.tid) &&
        survivor_tids.count(entry.tid) == 0) {
      ctx_->pending->Remove(entry.tid);
    }
  }

  // Step 5: replicate the surviving fast-path prepares; requests are
  // buffered (serving_ == false) until these commit.
  for (const kv::PendingTxn& s : survivors) {
    if (!ctx_->pending->Contains(s.tid)) {
      kv::PendingTxn copy = s;
      copy.prepared_at_micros = ctx_->now();
      ctx_->pending->Add(std::move(copy)).ok();
    }
    recovery_tids_.insert(s.tid);
    recovery_outstanding_++;
    m_reproposed_.Increment();
    auto log = runtime::MakeMessage<LogPrepareResult>();
    log->tid = s.tid;
    log->coordinator = s.coordinator;
    log->prepared = true;
    log->read_keys = s.read_keys;
    log->write_keys = s.write_keys;
    log->read_versions = s.read_versions;
    log->term = s.term;
    TagSpan(log.get(), s.tid, obs::WanrtPhase::kPrepare);
    ctx_->raft->Propose(std::move(log)).ok();
  }

  // Re-announce slow-path prepared transactions to their coordinators (the
  // failed leader may have died between replication and notification).
  for (const kv::PendingTxn& entry : ctx_->pending->Snapshot()) {
    if (participant_->HasLoggedPrepare(entry.tid)) {
      participant_->SendDecision(entry.coordinator, entry.tid, true,
                                 entry.read_versions, entry.term,
                                 /*is_leader=*/true, /*via_fast_path=*/false);
    }
  }

  coordinator_->TakeOverCoordination();
  (void)term;
  FinishRecoveryIfReady();
}

void Recovery::OnStepDown(uint64_t term) {
  (void)term;
  // Abandon any in-progress recovery; a follower serves (fast-path
  // prepares, reads) normally.
  serving_ = true;
  recovery_outstanding_ = 0;
  recovery_tids_.clear();
  DrainBuffered();
}

void Recovery::OnPrepareApplied(const TxnId& tid) {
  if (recovery_tids_.erase(tid) == 0) return;
  recovery_outstanding_--;
  FinishRecoveryIfReady();
}

void Recovery::FinishRecoveryIfReady() {
  if (serving_ || recovery_outstanding_ > 0) return;
  serving_ = true;
  DrainBuffered();
}

void Recovery::DrainBuffered() {
  std::deque<std::pair<NodeId, sim::MessagePtr>> pending_msgs;
  pending_msgs.swap(buffered_);
  for (auto& [from, msg] : pending_msgs) redeliver_(from, msg);
}

}  // namespace carousel::core
