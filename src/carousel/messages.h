#ifndef CAROUSEL_CAROUSEL_MESSAGES_H_
#define CAROUSEL_CAROUSEL_MESSAGES_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/wanrt.h"
#include "sim/message.h"

namespace carousel::core {

/// Read and write key sets of a transaction restricted to one partition.
struct RwKeys {
  KeyList reads;
  KeyList writes;
};

/// Stamps the WANRT span (transaction id + protocol phase) onto an
/// outgoing message or Raft log payload. Zero wire bytes; the ledger uses
/// it to attribute every cross-DC delivery to a transaction and phase.
inline void TagSpan(sim::Message* msg, const TxnId& tid,
                    obs::WanrtPhase phase) {
  msg->set_span(tid, static_cast<uint8_t>(phase));
}

/// Byte-size helpers for bandwidth accounting.
size_t SizeOfKeys(const KeyList& keys);
size_t SizeOfWrites(const WriteSet& writes);
size_t SizeOfVersions(const ReadVersionMap& versions);
size_t SizeOfReads(const std::map<Key, VersionedValue>& reads);

/// Client -> participant replica. Carries the read request and the
/// piggybacked prepare request (paper §4.1.4). In Basic mode it goes to the
/// participant leader only; with CPC (fast_path) it goes to every replica
/// of the partition (§4.2). For read-only transactions it goes to the
/// leader only and carries no prepare (§4.4.2).
struct ReadPrepareMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId client = kInvalidNode;
  NodeId coordinator = kInvalidNode;
  KeyList read_keys;
  KeyList write_keys;
  bool read_only = false;
  bool fast_path = false;
  /// Whether this recipient should return read values to the client
  /// (leader always; with the local-read optimization also the replica in
  /// the client's DC).
  bool want_data = false;
  /// True when this is a recovery re-send (coordinator QueryPrepare or
  /// client retry); recipients must answer idempotently.
  bool is_retry = false;
  /// Read-attempt number, echoed in the response. A read-only client
  /// discards its partial results when it retries and must not merge a
  /// late response from an earlier attempt into the fresh snapshot.
  uint32_t attempt = 0;

  int type() const override { return sim::kCarouselReadPrepare; }
  size_t SizeBytes() const override {
    return 48 + SizeOfKeys(read_keys) + SizeOfKeys(write_keys);
  }
};

/// Participant replica -> client: read values (and read-only validation
/// outcome).
struct ReadResponseMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  /// False only for read-only transactions that failed OCC validation.
  bool ok = true;
  bool from_leader = true;
  /// Echo of ReadPrepareMsg::attempt.
  uint32_t attempt = 0;
  std::map<Key, VersionedValue> reads;

  int type() const override { return sim::kCarouselReadResponse; }
  size_t SizeBytes() const override { return 32 + SizeOfReads(reads); }
};

/// Participant replica -> coordinator: a prepare decision. Sent directly
/// by every replica on the CPC fast path (via_fast_path = true) and by the
/// leader after its decision is replicated on the slow path.
struct PrepareDecisionMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId replica = kInvalidNode;
  bool is_leader = false;
  bool via_fast_path = false;
  bool prepared = false;
  /// Data versions this replica used to prepare (CPC up-to-date check and
  /// the coordinator's staleness validation, §4.4.1).
  ReadVersionMap read_versions;
  /// Raft term the replica was in (CPC up-to-date check).
  uint64_t term = 0;

  int type() const override { return sim::kCarouselPrepareDecision; }
  size_t SizeBytes() const override {
    return 48 + SizeOfVersions(read_versions);
  }
};

/// Client -> coordinator, sent together with the read/prepare round:
/// announces the transaction and its full key sets so the coordinator can
/// replicate them to its consensus group (making the coordinator fault
/// tolerant, unlike client-coordinated protocols).
struct CoordPrepareMsg final : sim::Message {
  TxnId tid;
  NodeId client = kInvalidNode;
  bool fast_path = false;
  std::map<PartitionId, RwKeys> keys;

  int type() const override { return sim::kCarouselCoordPrepare; }
  size_t SizeBytes() const override {
    size_t sz = 32;
    for (const auto& [p, rw] : keys) {
      sz += 8 + SizeOfKeys(rw.reads) + SizeOfKeys(rw.writes);
    }
    return sz;
  }
};

/// Client -> coordinator: commit with buffered writes and the versions the
/// client actually read (for the staleness check).
struct CommitRequestMsg final : sim::Message {
  TxnId tid;
  NodeId client = kInvalidNode;
  WriteSet writes;
  ReadVersionMap read_versions;
  /// The transaction's key sets, repeated from the prepare notification so
  /// a coordinator that lost the notification (crash + failover) can still
  /// finish the transaction.
  std::map<PartitionId, RwKeys> keys;

  int type() const override { return sim::kCarouselCommitRequest; }
  size_t SizeBytes() const override {
    size_t sz = 32 + SizeOfWrites(writes) + SizeOfVersions(read_versions);
    for (const auto& [p, rw] : keys) {
      sz += 8 + SizeOfKeys(rw.reads) + SizeOfKeys(rw.writes);
    }
    return sz;
  }
};

/// Client -> coordinator: application-initiated abort.
struct AbortRequestMsg final : sim::Message {
  TxnId tid;
  NodeId client = kInvalidNode;

  int type() const override { return sim::kCarouselAbortRequest; }
  size_t SizeBytes() const override { return 24; }
};

/// Coordinator -> client: transaction outcome.
struct CommitResponseMsg final : sim::Message {
  TxnId tid;
  bool committed = false;
  /// Short reason for aborts ("conflict", "stale read", ...).
  std::string reason;

  int type() const override { return sim::kCarouselCommitResponse; }
  size_t SizeBytes() const override { return 24 + reason.size(); }
};

/// Coordinator -> participant leader (Writeback phase): the commit
/// decision and, on commit, the updates for that partition.
struct WritebackMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId coordinator = kInvalidNode;
  bool commit = false;
  WriteSet writes;

  int type() const override { return sim::kCarouselWriteback; }
  size_t SizeBytes() const override { return 32 + SizeOfWrites(writes); }
};

/// Participant leader -> coordinator: writeback durably replicated.
struct WritebackAckMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;

  int type() const override { return sim::kCarouselWritebackAck; }
  size_t SizeBytes() const override { return 24; }
};

/// Client -> coordinator: liveness heartbeat while a transaction is in its
/// Read phase (paper §4.3.1).
struct HeartbeatMsg final : sim::Message {
  TxnId tid;
  NodeId client = kInvalidNode;

  int type() const override { return sim::kCarouselHeartbeat; }
  size_t SizeBytes() const override { return 20; }
};

/// (Recovered) coordinator -> participant replicas: re-acquire a prepare
/// decision (paper §4.3.3, coordinator failure). Includes the key sets so
/// a participant that lost the transaction can prepare it afresh.
struct QueryPrepareMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId coordinator = kInvalidNode;
  KeyList read_keys;
  KeyList write_keys;

  int type() const override { return sim::kCarouselQueryPrepare; }
  size_t SizeBytes() const override {
    return 40 + SizeOfKeys(read_keys) + SizeOfKeys(write_keys);
  }
};

/// Participant leader -> coordinator: 2PC termination probe for a pending
/// transaction whose writeback never arrived (e.g., the coordinator and
/// client both failed). The coordinator answers with a WritebackMsg; an
/// unknown transaction is fenced as aborted, which is safe because commits
/// are always durably logged in the coordinator's group first.
struct QueryDecisionMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;

  int type() const override { return sim::kCarouselQueryDecision; }
  size_t SizeBytes() const override { return 24; }
};

/// Any replica -> client: redirect to the current group leader.
struct NotLeaderMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId leader_hint = kInvalidNode;

  int type() const override { return sim::kCarouselNotLeader; }
  size_t SizeBytes() const override { return 24; }
};

// ---------------------------------------------------------------------------
// Raft log payloads (replicated, never sent standalone).
// ---------------------------------------------------------------------------

/// Coordinator group: the transaction's participants and key sets,
/// replicated when the coordinator receives the prepare notification.
struct LogTxnInfo final : sim::Message {
  TxnId tid;
  NodeId client = kInvalidNode;
  bool fast_path = false;
  std::map<PartitionId, RwKeys> keys;

  int type() const override { return sim::kLogTxnInfo; }
  size_t SizeBytes() const override {
    size_t sz = 32;
    for (const auto& [p, rw] : keys) {
      sz += 8 + SizeOfKeys(rw.reads) + SizeOfKeys(rw.writes);
    }
    return sz;
  }
};

/// Coordinator group: the client's writes + observed read versions,
/// replicated on Commit before answering the client.
struct LogWriteData final : sim::Message {
  TxnId tid;
  WriteSet writes;
  ReadVersionMap client_versions;

  int type() const override { return sim::kLogWriteData; }
  size_t SizeBytes() const override {
    return 24 + SizeOfWrites(writes) + SizeOfVersions(client_versions);
  }
};

/// Coordinator group: the final decision (Writeback phase).
struct LogDecision final : sim::Message {
  TxnId tid;
  bool commit = false;

  int type() const override { return sim::kLogDecision; }
  size_t SizeBytes() const override { return 24; }
};

/// Participant group: the leader's prepare decision with read/write sets,
/// read versions and term (paper §4.1.4).
struct LogPrepareResult final : sim::Message {
  TxnId tid;
  NodeId coordinator = kInvalidNode;
  bool prepared = false;
  KeyList read_keys;
  KeyList write_keys;
  ReadVersionMap read_versions;
  uint64_t term = 0;

  int type() const override { return sim::kLogPrepareResult; }
  size_t SizeBytes() const override {
    return 48 + SizeOfKeys(read_keys) + SizeOfKeys(write_keys) +
           SizeOfVersions(read_versions);
  }
};

/// Participant group: the commit decision plus this partition's updates
/// (Writeback phase).
struct LogCommit final : sim::Message {
  TxnId tid;
  NodeId coordinator = kInvalidNode;
  bool commit = false;
  WriteSet writes;

  int type() const override { return sim::kLogCommit; }
  size_t SizeBytes() const override { return 32 + SizeOfWrites(writes); }
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_MESSAGES_H_
