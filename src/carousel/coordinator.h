#ifndef CAROUSEL_CAROUSEL_COORDINATOR_H_
#define CAROUSEL_CAROUSEL_COORDINATOR_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "carousel/messages.h"
#include "carousel/server_context.h"
#include "common/types.h"
#include "runtime/dispatcher.h"

namespace carousel::core {

/// Coordinator role of a Carousel data server (paper §4.1.2): active when
/// this node is its group's leader and a local client picks it. Tracks
/// participant decisions, replicates transaction info / write data / the
/// final decision to its consensus group, answers the client, and drives
/// the asynchronous Writeback phase. Also evaluates the CPC fast-path
/// quorum rule (§4.2) over direct replica replies.
class Coordinator {
 public:
  explicit Coordinator(ServerContext* ctx)
      : ctx_(ctx),
        m_commits_(ctx->RoleCounter("coordinator", "commits")),
        m_aborts_(ctx->RoleCounter("coordinator", "aborts")),
        m_fast_quorums_(ctx->RoleCounter("coordinator", "fast_quorums")),
        m_slow_decisions_(ctx->RoleCounter("coordinator", "slow_decisions")) {}

  /// Registers this role's network message handlers.
  void Register(runtime::Dispatcher* dispatcher);
  /// Registers this role's Raft log payload handlers.
  void RegisterApply(runtime::Dispatcher* apply);

  /// Coordinator takeover after winning an election (§4.3.3): re-arms
  /// client-failure timers, re-acquires missing prepare decisions, and
  /// restarts writebacks for decided transactions.
  void TakeOverCoordination();

  /// ---- Introspection (tests) ----
  size_t active_txns() const { return coord_txns_.size(); }

 private:
  struct FastReply {
    bool prepared = false;
    ReadVersionMap versions;
    uint64_t term = 0;
    bool is_leader = false;
  };
  struct PartState {
    bool decided = false;
    bool prepared = false;
    /// Versions the participant leader prepared with (staleness check).
    ReadVersionMap leader_versions;
    bool slow_seen = false;
    std::map<NodeId, FastReply> fast_replies;
    bool writeback_acked = false;
  };
  struct CoordTxn {
    TxnId tid;
    NodeId client = kInvalidNode;
    bool fast = false;
    std::map<PartitionId, RwKeys> keys;
    std::map<PartitionId, PartState> parts;
    bool info_logged = false;
    bool info_proposed = false;
    bool commit_received = false;
    bool write_logged = false;
    bool decision_logged = false;
    bool client_abort = false;
    /// True once any partition's decision came from the replicated slow
    /// path rather than a CPC fast quorum (phase tracing: fast vs slow).
    bool slow_path_used = false;
    WriteSet writes;
    ReadVersionMap client_versions;
    bool decided = false;
    bool committed = false;
    /// True once the verdict has been made visible outside this node
    /// (client reply / writebacks). Commits externalize at Decide();
    /// aborts only once LogDecision is replicated — see Decide().
    bool externalized = false;
    std::string reason;
    SimTime last_heartbeat = 0;
    bool heartbeat_timer_armed = false;
    bool writeback_started = false;
    uint64_t hb_timer_gen = 0;
    uint64_t retry_timer_gen = 0;
  };

  void HandleCoordPrepare(NodeId from, const CoordPrepareMsg& msg);
  void HandleCommitRequest(NodeId from, const CommitRequestMsg& msg);
  void HandleAbortRequest(NodeId from, const AbortRequestMsg& msg);
  void HandlePrepareDecision(NodeId from, const PrepareDecisionMsg& msg);
  void HandleWritebackAck(NodeId from, const WritebackAckMsg& msg);
  void HandleHeartbeat(NodeId from, const HeartbeatMsg& msg);
  void HandleQueryDecision(NodeId from, const QueryDecisionMsg& msg);

  void ApplyTxnInfo(const LogTxnInfo& info);
  void ApplyWriteData(const LogWriteData& data);
  void ApplyDecision(const LogDecision& decision);

  CoordTxn& GetOrCreateCoordTxn(const TxnId& tid);
  void RecordDecision(CoordTxn& txn, PartitionId partition,
                      const PrepareDecisionMsg& msg);
  /// Re-runs the commit/abort decision rule; called whenever any input
  /// changes.
  void EvaluateCoordTxn(CoordTxn& txn);
  void Decide(CoordTxn& txn, bool commit, const std::string& reason);
  /// Makes the verdict visible outside this node: records it for
  /// verification, replies to the client and starts the writebacks.
  /// Idempotent. Aborts reach this only once LogDecision is replicated.
  void Externalize(CoordTxn& txn);
  void StartWriteback(CoordTxn& txn);
  void SendWriteback(CoordTxn& txn, PartitionId partition, NodeId target);
  void ArmHeartbeatTimer(CoordTxn& txn);
  void ArmCoordRetryTimer(const TxnId& tid);
  void MaybeFinishCoordTxn(const TxnId& tid);
  /// Flushes QueryDecision replies parked until the decision was durable.
  void AnswerFenceQueries(const TxnId& tid);
  /// Replies to the client (idempotently) with the recorded outcome.
  void ReplyToClient(NodeId client, const TxnId& tid, bool committed,
                     const std::string& reason);

  ServerContext* ctx_;
  std::unordered_map<TxnId, CoordTxn, TxnIdHash> coord_txns_;
  std::unordered_map<TxnId, bool, TxnIdHash> coord_decided_;
  /// Fast/slow decisions that arrived before the CoordPrepareMsg.
  std::unordered_map<TxnId,
                     std::vector<std::pair<PartitionId, PrepareDecisionMsg>>,
                     TxnIdHash>
      orphan_decisions_;
  /// QueryDecision askers waiting for a decision (or its abort fence) to
  /// become durable; answered from ApplyDecision.
  std::unordered_map<TxnId, std::vector<std::pair<NodeId, PartitionId>>,
                     TxnIdHash>
      pending_fence_queries_;

  // Metrics (null handles when the registry is absent or disabled).
  obs::Counter m_commits_;
  obs::Counter m_aborts_;
  obs::Counter m_fast_quorums_;
  obs::Counter m_slow_decisions_;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_COORDINATOR_H_
