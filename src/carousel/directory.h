#ifndef CAROUSEL_CAROUSEL_DIRECTORY_H_
#define CAROUSEL_CAROUSEL_DIRECTORY_H_

#include <set>
#include <vector>

#include "common/consistent_hash.h"
#include "common/topology.h"
#include "common/types.h"

namespace carousel::core {

/// The directory service from paper §3.3 (the role Chubby/ZooKeeper plays
/// in a real deployment): maps keys to partitions via consistent hashing
/// and partitions to server locations. Client libraries hold a pointer to
/// it and treat leader information as a cache — it records the *initial*
/// leaders; after a failover clients discover the new leader by
/// retransmitting to the whole consensus group.
class Directory {
 public:
  Directory(const Topology* topology, int virtual_nodes = 64)
      : topology_(topology),
        ring_(topology->num_partitions(), virtual_nodes) {}

  const Topology& topology() const { return *topology_; }

  /// Partition owning `key`.
  PartitionId PartitionFor(const Key& key) const {
    return ring_.PartitionFor(key);
  }

  /// All replicas of a partition's consensus group.
  const std::vector<NodeId>& Replicas(PartitionId p) const {
    return topology_->Replicas(p);
  }

  /// The cached (initial) leader of a partition.
  NodeId CachedLeader(PartitionId p) const {
    return topology_->InitialLeader(p);
  }

  /// The replica of `p` in `dc`, or kInvalidNode.
  NodeId LocalReplica(PartitionId p, DcId dc) const {
    return topology_->ReplicaIn(p, dc);
  }

  /// Picks a coordinator for a transaction issued from `dc` touching
  /// `participants`: a local participant leader when one exists, otherwise
  /// any local consensus group leader (paper §3.3).
  NodeId CoordinatorFor(DcId dc, const std::set<PartitionId>& participants) const {
    for (PartitionId p : participants) {
      const NodeId leader = CachedLeader(p);
      if (topology_->DcOf(leader) == dc) return leader;
    }
    const PartitionId home = topology_->HomePartitionOf(dc);
    if (home != kInvalidPartition) return CachedLeader(home);
    // No local leader at all: fall back to the first partition's leader.
    return CachedLeader(0);
  }

 private:
  const Topology* topology_;
  ConsistentHashRing ring_;
};

}  // namespace carousel::core

#endif  // CAROUSEL_CAROUSEL_DIRECTORY_H_
