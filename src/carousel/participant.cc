#include "carousel/participant.h"

#include <cstdio>
#include <memory>

#include "runtime/arena.h"

namespace {
// Protocol tracing for debugging: set CAROUSEL_TRACE=1 in the environment.
bool TraceEnabled() {
  static const bool enabled = ::getenv("CAROUSEL_TRACE") != nullptr;
  return enabled;
}
}  // namespace

namespace carousel::core {

void Participant::Register(runtime::Dispatcher* dispatcher) {
  dispatcher->On<ReadPrepareMsg>(
      [this](NodeId from, const ReadPrepareMsg& msg) {
        HandleReadPrepare(from, msg);
      });
  dispatcher->On<QueryPrepareMsg>(
      [this](NodeId from, const QueryPrepareMsg& msg) {
        HandleQueryPrepare(from, msg);
      });
  dispatcher->On<WritebackMsg>([this](NodeId from, const WritebackMsg& msg) {
    HandleWriteback(from, msg);
  });
}

void Participant::RegisterApply(runtime::Dispatcher* apply) {
  apply->On<LogPrepareResult>(
      [this](NodeId /*from*/, const LogPrepareResult& entry) {
        ApplyPrepareResult(entry);
      });
  apply->On<LogCommit>([this](NodeId /*from*/, const LogCommit& entry) {
    ApplyCommitEntry(entry);
  });
}

void Participant::SendReadData(const ReadPrepareMsg& msg, bool from_leader) {
  auto reply = runtime::MakeMessage<ReadResponseMsg>();
  reply->tid = msg.tid;
  reply->partition = ctx_->partition;
  reply->from_leader = from_leader;
  reply->attempt = msg.attempt;
  TagSpan(reply.get(), msg.tid, obs::WanrtPhase::kExecute);
  for (const Key& k : msg.read_keys) reply->reads[k] = ctx_->store->Get(k);
  ctx_->Send(msg.client, std::move(reply));
}

void Participant::HandleReadPrepare(NodeId from, const ReadPrepareMsg& msg) {
  (void)from;
  if (TraceEnabled()) {
    fprintf(stderr,
            "[%lld] node %d got ReadPrepare tid %s from %d leader=%d retry=%d "
            "pending=%zu\n",
            (long long)ctx_->now(), ctx_->self, msg.tid.ToString().c_str(),
            from, ctx_->IsLeader(), msg.is_retry, ctx_->pending->size());
  }
  if (msg.read_only) {
    if (!ctx_->IsLeader()) return;  // Read-only reads go to leaders only.
    auto reply = runtime::MakeMessage<ReadResponseMsg>();
    reply->tid = msg.tid;
    reply->partition = ctx_->partition;
    reply->from_leader = true;
    reply->attempt = msg.attempt;
    TagSpan(reply.get(), msg.tid, obs::WanrtPhase::kExecute);
    // OCC validation: fail if any read key has a pending writer (§4.4.2).
    reply->ok = !ctx_->pending->HasPendingWriter(msg.read_keys);
    if (reply->ok) {
      for (const Key& k : msg.read_keys) reply->reads[k] = ctx_->store->Get(k);
    }
    ctx_->Send(msg.client, std::move(reply));
    return;
  }

  if (ctx_->IsLeader()) {
    if (msg.want_data) SendReadData(msg, /*from_leader=*/true);
    // Idempotency for retries.
    auto done = decided_.find(msg.tid);
    if (done != decided_.end()) {
      SendDecision(msg.coordinator, msg.tid, done->second, {},
                   ctx_->raft->term(), /*is_leader=*/true,
                   /*via_fast_path=*/false);
      return;
    }
    if (refused_.count(msg.tid) > 0) {
      // Durably refused: the verdict is pinned; never prepare it afresh.
      SendDecision(msg.coordinator, msg.tid, false, {}, ctx_->raft->term(),
                   /*is_leader=*/true, /*via_fast_path=*/false);
      return;
    }
    if (ctx_->pending->Contains(msg.tid)) {
      const kv::PendingTxn* entry = ctx_->pending->Find(msg.tid);
      if (logged_prepares_.count(msg.tid) > 0) {
        SendDecision(msg.coordinator, msg.tid, true, entry->read_versions,
                     entry->term, true, false);
      }
      // else: the slow-path decision goes out when the log entry commits.
      return;
    }
    LeaderPrepare(msg.tid, msg.read_keys, msg.write_keys, msg.coordinator,
                  msg.fast_path);
    return;
  }

  // Follower: CPC fast path and/or local-read service.
  if (msg.fast_path && !msg.is_retry) {
    FollowerFastPrepare(msg);
  } else if (msg.want_data) {
    SendReadData(msg, /*from_leader=*/false);
  }
}

void Participant::LeaderPrepare(const TxnId& tid, const KeyList& reads,
                                const KeyList& writes, NodeId coordinator,
                                bool fast_path) {
  ReadVersionMap versions;
  for (const Key& k : reads) versions[k] = ctx_->store->GetVersion(k);

  const bool prepared = !ctx_->pending->HasConflict(reads, writes);
  const uint64_t term = ctx_->raft->term();
  (prepared ? m_prepares_ok_ : m_prepares_conflict_).Increment();
  if (prepared) {
    kv::PendingTxn entry;
    entry.tid = tid;
    entry.read_keys = reads;
    entry.write_keys = writes;
    entry.read_versions = versions;
    entry.term = term;
    entry.coordinator = coordinator;
    entry.prepared_at_micros = ctx_->now();
    ctx_->pending->Add(std::move(entry)).ok();
  }

  if (fast_path && prepared) {
    // CPC: the leader's direct (fast) reply goes out before replication.
    // Only successful prepares may be announced early: they are
    // recoverable from the supermajority's pending entries (§4.3.3), but
    // a refusal leaves no reconstructible state, so it travels the slow
    // path and is only announced once it is durable (ApplyPrepareResult).
    SendDecision(coordinator, tid, prepared, versions, term, true, true);
  }

  auto log = runtime::MakeMessage<LogPrepareResult>();
  log->tid = tid;
  log->coordinator = coordinator;
  log->prepared = prepared;
  log->read_keys = reads;
  log->write_keys = writes;
  log->read_versions = versions;
  log->term = term;
  // Replicating the prepare result is prepare-phase traffic in both
  // modes; the CPC slow/fast distinction is carried by the decision
  // message, not the replication behind it.
  TagSpan(log.get(), tid, obs::WanrtPhase::kPrepare);
  ctx_->raft->Propose(std::move(log)).ok();
}

void Participant::FollowerFastPrepare(const ReadPrepareMsg& msg) {
  if (msg.want_data) {
    // Local-read optimization (§4.4.1): serve (possibly stale) data.
    SendReadData(msg, /*from_leader=*/false);
  }

  if (decided_.count(msg.tid) > 0 || refused_.count(msg.tid) > 0 ||
      ctx_->pending->Contains(msg.tid)) {
    return;
  }

  ReadVersionMap versions;
  for (const Key& k : msg.read_keys) versions[k] = ctx_->store->GetVersion(k);
  const bool prepared =
      !ctx_->pending->HasConflict(msg.read_keys, msg.write_keys);
  const uint64_t term = ctx_->raft->term();
  if (prepared) {
    kv::PendingTxn entry;
    entry.tid = msg.tid;
    entry.read_keys = msg.read_keys;
    entry.write_keys = msg.write_keys;
    entry.read_versions = versions;
    entry.term = term;
    entry.coordinator = msg.coordinator;
    entry.prepared_at_micros = ctx_->now();
    ctx_->pending->Add(std::move(entry)).ok();
  }
  SendDecision(msg.coordinator, msg.tid, prepared, versions, term,
               /*is_leader=*/false, /*via_fast_path=*/true);
}

void Participant::SendDecision(NodeId coordinator, const TxnId& tid,
                               bool prepared, ReadVersionMap versions,
                               uint64_t term, bool is_leader,
                               bool via_fast_path) {
  if (coordinator == kInvalidNode) return;
  if (TraceEnabled()) {
    std::string vs;
    for (const auto& [k, v] : versions) {
      vs += k + "@v" + std::to_string(v) + " ";
    }
    fprintf(stderr,
            "[%lld] node %d SendDecision tid %s to coord %d prepared=%d "
            "leader=%d fast=%d versions=[%s]\n",
            (long long)ctx_->now(), ctx_->self, tid.ToString().c_str(),
            coordinator, prepared, is_leader, via_fast_path, vs.c_str());
  }
  auto msg = runtime::MakeMessage<PrepareDecisionMsg>();
  msg->tid = tid;
  msg->partition = ctx_->partition;
  msg->replica = ctx_->self;
  msg->is_leader = is_leader;
  msg->via_fast_path = via_fast_path;
  msg->prepared = prepared;
  msg->read_versions = std::move(versions);
  msg->term = term;
  // Phase attribution: direct fast votes vs the replicated decision. When
  // the fast path was never attempted (Carousel Basic) the replicated
  // decision IS the prepare outcome; kCpcSlow is reserved for genuine
  // fast-path degradation so tests can detect it from the ledger alone.
  if (via_fast_path) {
    m_fast_votes_.Increment();
    TagSpan(msg.get(), tid, obs::WanrtPhase::kCpcFast);
  } else if (ctx_->options->fast_path) {
    TagSpan(msg.get(), tid, obs::WanrtPhase::kCpcSlow);
  } else {
    TagSpan(msg.get(), tid, obs::WanrtPhase::kPrepare);
  }
  ctx_->Send(coordinator, std::move(msg));
}

void Participant::HandleQueryPrepare(NodeId from, const QueryPrepareMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) return;
  auto done = decided_.find(msg.tid);
  if (done != decided_.end()) {
    SendDecision(msg.coordinator, msg.tid, done->second, {},
                 ctx_->raft->term(), true, false);
    return;
  }
  if (refused_.count(msg.tid) > 0) {
    // Durably refused: the verdict is pinned; never prepare it afresh.
    SendDecision(msg.coordinator, msg.tid, false, {}, ctx_->raft->term(),
                 true, false);
    return;
  }
  if (ctx_->pending->Contains(msg.tid)) {
    const kv::PendingTxn* entry = ctx_->pending->Find(msg.tid);
    if (logged_prepares_.count(msg.tid) > 0) {
      SendDecision(msg.coordinator, msg.tid, true, entry->read_versions,
                   entry->term, true, false);
    }
    return;
  }
  // The transaction is unknown here (lost before it was durably prepared):
  // prepare it afresh from the key sets in the query.
  LeaderPrepare(msg.tid, msg.read_keys, msg.write_keys, msg.coordinator,
                /*fast_path=*/false);
}

void Participant::HandleWriteback(NodeId from, const WritebackMsg& msg) {
  (void)from;
  if (!ctx_->IsLeader()) return;
  auto done = decided_.find(msg.tid);
  if (done != decided_.end()) {
    auto ack = runtime::MakeMessage<WritebackAckMsg>();
    ack->tid = msg.tid;
    ack->partition = ctx_->partition;
    TagSpan(ack.get(), msg.tid, obs::WanrtPhase::kDecision);
    ctx_->Send(msg.coordinator, std::move(ack));
    return;
  }
  auto log = runtime::MakeMessage<LogCommit>();
  log->tid = msg.tid;
  log->coordinator = msg.coordinator;
  log->commit = msg.commit;
  log->writes = msg.writes;
  TagSpan(log.get(), msg.tid, obs::WanrtPhase::kDecision);
  ctx_->raft->Propose(std::move(log)).ok();
}

void Participant::ArmPendingGcTimer() {
  if (ctx_->options->pending_gc_interval <= 0) return;
  const uint64_t gen = ++gc_timer_gen_;
  ctx_->Schedule(ctx_->options->pending_gc_interval, [this, gen]() {
    if (gen != gc_timer_gen_ || !ctx_->alive()) return;
    if (ctx_->IsLeader()) {
      const SimTime cutoff = ctx_->now() - ctx_->options->pending_gc_interval;
      for (const kv::PendingTxn& entry : ctx_->pending->Snapshot()) {
        if (entry.prepared_at_micros < cutoff &&
            entry.coordinator != kInvalidNode) {
          auto probe = runtime::MakeMessage<QueryDecisionMsg>();
          probe->tid = entry.tid;
          probe->partition = ctx_->partition;
          TagSpan(probe.get(), entry.tid, obs::WanrtPhase::kDecision);
          ctx_->Send(entry.coordinator, std::move(probe));
        }
      }
    }
    gc_timer_gen_--;  // Allow re-arm with the same gen sequencing.
    ArmPendingGcTimer();
  });
}

void Participant::ApplyPrepareResult(const LogPrepareResult& entry) {
  // Prepare results are write-once: after a leader change, a second
  // LogPrepareResult for the same tid (from a fresh re-prepare) may carry
  // the opposite verdict; the first applied entry stands — the log order
  // is the same on every replica, so the pin is identical group-wide.
  bool prepared = entry.prepared;
  ReadVersionMap versions = entry.read_versions;
  uint64_t term = entry.term;
  if (decided_.count(entry.tid) == 0) {
    if (refused_.count(entry.tid) > 0) {
      prepared = false;
      versions.clear();
    } else if (logged_prepares_.count(entry.tid) > 0) {
      prepared = true;
      if (const kv::PendingTxn* pinned = ctx_->pending->Find(entry.tid)) {
        versions = pinned->read_versions;
        term = pinned->term;
      }
    } else if (entry.prepared) {
      // The durable entry is the group-agreed prepare. A live tentative
      // fast-path entry here may disagree with it — e.g. this replica's
      // fast vote pinned older read versions, while the prepare that
      // actually went through the log was taken afresh by the leader at a
      // later store state (the original prepare never reached it). The
      // log wins: every later quote of this prepare — QueryPrepare
      // answers, recovery re-announcements — must carry the logged
      // versions, or the coordinator's stale-read validation is defeated
      // and a lost update can commit (chaos seed 1598).
      ctx_->pending->Remove(entry.tid);
      kv::PendingTxn pend;
      pend.tid = entry.tid;
      pend.read_keys = entry.read_keys;
      pend.write_keys = entry.write_keys;
      pend.read_versions = entry.read_versions;
      pend.term = entry.term;
      pend.coordinator = entry.coordinator;
      pend.prepared_at_micros = ctx_->now();
      ctx_->pending->Add(std::move(pend)).ok();
      logged_prepares_.insert(entry.tid);
    } else {
      // The leader refused the prepare; any tentative fast-path entry is
      // void and the refusal is pinned from here on.
      ctx_->pending->Remove(entry.tid);
      refused_.insert(entry.tid);
    }
  }

  // The slow-path decision reaches the coordinator only after the prepare
  // result is durably replicated — i.e., exactly now, on the leader.
  if (ctx_->IsLeader()) {
    ctx_->TracePhase(entry.tid, TxnPhase::kSlowDecision);
    SendDecision(entry.coordinator, entry.tid, prepared, versions, term,
                 /*is_leader=*/true, /*via_fast_path=*/false);
  }
  // The recovery module tracks fast-path prepares it is re-replicating
  // after an election (§4.3.3 step 5) and unblocks serving when done.
  if (on_prepare_applied_) on_prepare_applied_(entry.tid);
}

void Participant::ApplyCommitEntry(const LogCommit& entry) {
  if (decided_.count(entry.tid) > 0) return;  // Duplicate writeback.
  ctx_->pending->Remove(entry.tid);
  logged_prepares_.erase(entry.tid);
  refused_.erase(entry.tid);
  if (entry.commit) {
    for (const auto& [k, v] : entry.writes) {
      ctx_->store->Apply(k, v, entry.tid);
    }
    committed_count_++;
  }
  m_writebacks_.Increment();
  decided_[entry.tid] = entry.commit;
  if (ctx_->IsLeader()) {
    auto ack = runtime::MakeMessage<WritebackAckMsg>();
    ack->tid = entry.tid;
    ack->partition = ctx_->partition;
    TagSpan(ack.get(), entry.tid, obs::WanrtPhase::kDecision);
    ctx_->Send(entry.coordinator, std::move(ack));
  }
}

}  // namespace carousel::core
