#include "workload/workload.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/zipfian.h"

namespace carousel::workload {

Key KeyForRank(uint64_t rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%015llu",
                static_cast<unsigned long long>(rank));
  return Key(buf);
}

namespace {

/// Shared machinery: distinct Zipfian key draws, scrambled across the key
/// space so hot keys spread over partitions.
class ZipfKeyChooser {
 public:
  explicit ZipfKeyChooser(const WorkloadOptions& options)
      : options_(options), zipf_(options.num_keys, options.zipf_theta) {}

  KeyList Distinct(int n, Rng* rng) const {
    std::set<uint64_t> ranks;
    while (static_cast<int>(ranks.size()) < n) {
      ranks.insert(ScrambleRank(zipf_.Next(rng), options_.num_keys));
    }
    KeyList keys;
    keys.reserve(n);
    for (uint64_t r : ranks) keys.push_back(KeyForRank(r));
    return keys;
  }

 private:
  WorkloadOptions options_;
  ZipfianGenerator zipf_;
};

class RetwisGenerator final : public Generator {
 public:
  explicit RetwisGenerator(const WorkloadOptions& options)
      : chooser_(options) {}

  TxnSpec Next(Rng* rng) override {
    TxnSpec spec;
    const double p = rng->NextDouble();
    if (p < 0.05) {
      // Add User: 1 get, 3 puts.
      spec.type = "add_user";
      KeyList keys = chooser_.Distinct(3, rng);
      spec.reads = {keys[0]};
      spec.writes = keys;
    } else if (p < 0.20) {
      // Follow/Unfollow: 2 gets, 2 puts.
      spec.type = "follow";
      KeyList keys = chooser_.Distinct(2, rng);
      spec.reads = keys;
      spec.writes = keys;
    } else if (p < 0.50) {
      // Post Tweet: 3 gets, 5 puts.
      spec.type = "post_tweet";
      KeyList keys = chooser_.Distinct(5, rng);
      spec.reads = {keys[0], keys[1], keys[2]};
      spec.writes = keys;
    } else {
      // Load Timeline: rand(1, 10) gets, read-only.
      spec.type = "load_timeline";
      spec.reads = chooser_.Distinct(
          static_cast<int>(rng->UniformInt(1, 10)), rng);
    }
    return spec;
  }

  std::string name() const override { return "retwis"; }

 private:
  ZipfKeyChooser chooser_;
};

class YcsbTGenerator final : public Generator {
 public:
  explicit YcsbTGenerator(const WorkloadOptions& options)
      : chooser_(options) {}

  TxnSpec Next(Rng* rng) override {
    TxnSpec spec;
    spec.type = "rmw4";
    KeyList keys = chooser_.Distinct(4, rng);
    spec.reads = keys;
    spec.writes = keys;
    return spec;
  }

  std::string name() const override { return "ycsb+t"; }

 private:
  ZipfKeyChooser chooser_;
};

}  // namespace

std::unique_ptr<Generator> MakeRetwisGenerator(const WorkloadOptions& options) {
  return std::make_unique<RetwisGenerator>(options);
}

std::unique_ptr<Generator> MakeYcsbTGenerator(const WorkloadOptions& options) {
  return std::make_unique<YcsbTGenerator>(options);
}

}  // namespace carousel::workload
