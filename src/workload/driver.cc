#include "workload/driver.h"

#include <utility>

namespace carousel::workload {
namespace {

class CarouselAdapter final : public SystemAdapter {
 public:
  CarouselAdapter(core::Cluster* cluster, std::string name)
      : cluster_(cluster), name_(std::move(name)) {}

  sim::Simulator& sim() override { return cluster_->sim(); }
  sim::Network& network() override { return cluster_->network(); }
  int num_clients() const override {
    return static_cast<int>(cluster_->clients().size());
  }
  DcId client_dc(int index) const override {
    return cluster_->clients()[index]->dc();
  }
  std::string name() const override { return name_; }

  void Execute(int index, const TxnSpec& spec, const Value& payload,
               std::function<void(bool, bool)> done) override {
    core::CarouselClient* client = cluster_->client(index);
    const TxnId tid = client->Begin();
    auto done_ptr = std::make_shared<std::function<void(bool, bool)>>(
        std::move(done));
    KeyList writes = spec.writes;
    client->ReadAndPrepare(
        tid, spec.reads, spec.writes,
        [client, tid, writes, payload, done_ptr](
            Status status, const core::CarouselClient::ReadResults&) {
          if (writes.empty()) {
            // Read-only: complete at the read round (§4.4.2).
            (*done_ptr)(status.ok(), status.code() == StatusCode::kTimedOut);
            return;
          }
          if (!status.ok()) {
            (*done_ptr)(false, status.code() == StatusCode::kTimedOut);
            return;
          }
          for (const Key& k : writes) client->Write(tid, k, payload);
          client->Commit(tid, [done_ptr](Status commit_status) {
            (*done_ptr)(commit_status.ok(),
                        commit_status.code() == StatusCode::kTimedOut);
          });
        });
  }

 private:
  core::Cluster* cluster_;
  std::string name_;
};

class TapirAdapter final : public SystemAdapter {
 public:
  explicit TapirAdapter(tapir::TapirCluster* cluster) : cluster_(cluster) {}

  sim::Simulator& sim() override { return cluster_->sim(); }
  sim::Network& network() override { return cluster_->network(); }
  int num_clients() const override {
    return static_cast<int>(cluster_->clients().size());
  }
  DcId client_dc(int index) const override {
    return cluster_->clients()[index]->dc();
  }
  std::string name() const override { return "TAPIR"; }

  void Execute(int index, const TxnSpec& spec, const Value& payload,
               std::function<void(bool, bool)> done) override {
    tapir::TapirClient* client = cluster_->client(index);
    const TxnId tid = client->Begin();
    auto done_ptr = std::make_shared<std::function<void(bool, bool)>>(
        std::move(done));
    KeyList writes = spec.writes;
    // TAPIR has no read-only fast path: every transaction (including
    // read-only ones) runs the full prepare/commit protocol.
    client->Read(tid, spec.reads, spec.writes,
                 [client, tid, writes, payload, done_ptr](
                     Status status, const tapir::TapirClient::ReadResults&) {
                   if (!status.ok()) {
                     (*done_ptr)(false,
                                 status.code() == StatusCode::kTimedOut);
                     return;
                   }
                   for (const Key& k : writes) {
                     client->Write(tid, k, payload);
                   }
                   client->Commit(tid, [done_ptr](Status commit_status) {
                     (*done_ptr)(commit_status.ok(), false);
                   });
                 });
  }

 private:
  tapir::TapirCluster* cluster_;
};

/// Driver internals: per-client busy flags, per-DC idle lists and arrival
/// backlogs, a Poisson arrival process, and window accounting.
class DriverState {
 public:
  DriverState(SystemAdapter* system, Generator* generator,
              const DriverOptions& options)
      : system_(system),
        generator_(generator),
        options_(options),
        rng_(options.seed),
        payload_(options.value_size, 'v') {
    const int n = system->num_clients();
    busy_.assign(n, false);
    for (int i = 0; i < n; ++i) {
      idle_by_dc_[system->client_dc(i)].push_back(i);
      clients_per_dc_[system->client_dc(i)]++;
    }
    for (const auto& [dc, clients] : idle_by_dc_) dcs_.push_back(dc);
    window_start_ = options.warmup;
    window_end_ = options.duration - options.cooldown;
  }

  RunResult Run() {
    ScheduleNextArrival();
    // Run to the end of the load phase, then drain stragglers briefly.
    system_->sim().RunFor(options_.duration);
    stopped_ = true;
    system_->sim().RunFor(5 * kMicrosPerSecond);
    result_.window_seconds =
        static_cast<double>(window_end_ - window_start_) / kMicrosPerSecond;
    return std::move(result_);
  }

 private:
  void ScheduleNextArrival() {
    if (stopped_) return;
    const double mean_gap = kMicrosPerSecond / options_.target_tps;
    const SimTime gap =
        std::max<SimTime>(1, static_cast<SimTime>(rng_.Exponential(mean_gap)));
    system_->sim().Schedule(gap, [this]() {
      if (stopped_) return;
      Arrive();
      ScheduleNextArrival();
    });
  }

  void Arrive() {
    const SimTime now = system_->sim().now();
    if (InWindow(now)) result_.arrivals++;
    const DcId dc = dcs_[rng_.UniformInt(0, dcs_.size() - 1)];
    auto& idle = idle_by_dc_[dc];
    if (!idle.empty()) {
      const int client = idle.back();
      idle.pop_back();
      Launch(client);
      return;
    }
    auto& backlog = backlog_by_dc_[dc];
    const size_t cap = clients_in_dc(dc) *
                       static_cast<size_t>(options_.backlog_per_client);
    if (backlog.size() >= cap) {
      if (InWindow(now)) result_.dropped++;
      return;
    }
    backlog.push_back(now);
  }

  void Launch(int client) {
    busy_[client] = true;
    const TxnSpec spec = generator_->Next(&rng_);
    const SimTime start = system_->sim().now();
    system_->Execute(client, spec, payload_,
                     [this, client, start](bool committed, bool timed_out) {
                       OnDone(client, start, committed, timed_out);
                     });
  }

  void OnDone(int client, SimTime start, bool committed, bool timed_out) {
    const SimTime now = system_->sim().now();
    if (InWindow(now)) {
      if (committed) {
        result_.committed++;
        result_.latency.Record(now - start);
      } else if (timed_out) {
        result_.timed_out++;
      } else {
        result_.aborted++;
        result_.aborted_latency.Record(now - start);
      }
    }
    busy_[client] = false;
    const DcId dc = system_->client_dc(client);
    auto& backlog = backlog_by_dc_[dc];
    if (!backlog.empty() && !stopped_) {
      backlog.pop_front();
      Launch(client);
    } else {
      idle_by_dc_[dc].push_back(client);
    }
  }

  bool InWindow(SimTime t) const {
    return t >= window_start_ && t < window_end_;
  }

  size_t clients_in_dc(DcId dc) {
    return std::max<size_t>(1, clients_per_dc_[dc]);
  }

  SystemAdapter* system_;
  Generator* generator_;
  DriverOptions options_;
  Rng rng_;
  Value payload_;
  std::vector<bool> busy_;
  std::map<DcId, size_t> clients_per_dc_;
  std::map<DcId, std::vector<int>> idle_by_dc_;
  std::map<DcId, std::deque<SimTime>> backlog_by_dc_;
  std::vector<DcId> dcs_;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  bool stopped_ = false;
  RunResult result_;
};

}  // namespace

std::unique_ptr<SystemAdapter> MakeCarouselAdapter(core::Cluster* cluster,
                                                   std::string name) {
  return std::make_unique<CarouselAdapter>(cluster, std::move(name));
}

std::unique_ptr<SystemAdapter> MakeTapirAdapter(tapir::TapirCluster* cluster) {
  return std::make_unique<TapirAdapter>(cluster);
}

RunResult RunWorkload(SystemAdapter* system, Generator* generator,
                      const DriverOptions& options) {
  DriverState state(system, generator, options);
  return state.Run();
}

}  // namespace carousel::workload
