#ifndef CAROUSEL_WORKLOAD_WORKLOAD_H_
#define CAROUSEL_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace carousel::workload {

/// One 2FI transaction to execute: a fixed read set and a fixed write set
/// (write values are produced later, after the reads, by the driver).
struct TxnSpec {
  KeyList reads;
  KeyList writes;
  /// Workload-specific label ("add_user", "load_timeline", ...).
  std::string type;

  bool read_only() const { return writes.empty(); }
};

/// Workload generation knobs shared by all benchmarks (paper §6.2).
struct WorkloadOptions {
  uint64_t num_keys = 10'000'000;
  double zipf_theta = 0.75;
  /// Size of each written value in bytes.
  size_t value_size = 64;
};

/// Interface of a transaction-mix generator.
class Generator {
 public:
  virtual ~Generator() = default;
  /// Draws the next transaction.
  virtual TxnSpec Next(Rng* rng) = 0;
  virtual std::string name() const = 0;
};

/// Formats key index `rank` as a fixed-width store key.
Key KeyForRank(uint64_t rank);

/// Retwis transaction mix from paper Table 2: Add User (5%, 1 get /
/// 3 puts), Follow/Unfollow (15%, 2/2), Post Tweet (30%, 3/5), Load
/// Timeline (50%, rand(1,10) gets, read-only). Keys are Zipfian(0.75).
std::unique_ptr<Generator> MakeRetwisGenerator(const WorkloadOptions& options);

/// YCSB+T: every transaction performs 4 read-modify-write operations on
/// distinct keys (paper §6.2).
std::unique_ptr<Generator> MakeYcsbTGenerator(const WorkloadOptions& options);

}  // namespace carousel::workload

#endif  // CAROUSEL_WORKLOAD_WORKLOAD_H_
