#ifndef CAROUSEL_WORKLOAD_DRIVER_H_
#define CAROUSEL_WORKLOAD_DRIVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "common/histogram.h"
#include "common/types.h"
#include "harness/tapir_cluster.h"
#include "workload/workload.h"

namespace carousel::workload {

/// Uniform interface over the systems under evaluation, so the driver and
/// every bench are system-agnostic.
class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;
  virtual sim::Simulator& sim() = 0;
  virtual sim::Network& network() = 0;
  virtual int num_clients() const = 0;
  virtual DcId client_dc(int index) const = 0;
  /// Executes one 2FI transaction end to end on client `index`;
  /// `done(committed, timed_out)` fires at completion.
  virtual void Execute(int index, const TxnSpec& spec, const Value& payload,
                       std::function<void(bool, bool)> done) = 0;
  virtual std::string name() const = 0;
};

/// Adapter over a Carousel deployment (Basic or Fast, per its options).
std::unique_ptr<SystemAdapter> MakeCarouselAdapter(core::Cluster* cluster,
                                                   std::string name);
/// Adapter over the TAPIR baseline.
std::unique_ptr<SystemAdapter> MakeTapirAdapter(tapir::TapirCluster* cluster);

/// Open-loop driver configuration (paper §6.2: open arrivals at a target
/// rate, one outstanding transaction per client, fixed-length run with the
/// first and last intervals excluded from measurement).
struct DriverOptions {
  double target_tps = 200;
  SimTime duration = 90 * kMicrosPerSecond;
  SimTime warmup = 30 * kMicrosPerSecond;
  SimTime cooldown = 30 * kMicrosPerSecond;
  size_t value_size = 64;
  /// Max queued arrivals per client before arrivals are dropped (models
  /// a bounded accept queue under overload).
  int backlog_per_client = 4;
  uint64_t seed = 42;
};

/// Results over the measurement window.
struct RunResult {
  uint64_t arrivals = 0;
  uint64_t dropped = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t timed_out = 0;
  Histogram latency;          // committed transactions
  Histogram aborted_latency;  // aborted transactions
  double window_seconds = 0;

  double CommittedTps() const {
    return window_seconds > 0 ? static_cast<double>(committed) / window_seconds
                              : 0;
  }
  double AbortRate() const {
    const uint64_t total = committed + aborted;
    return total > 0 ? static_cast<double>(aborted) / static_cast<double>(total)
                     : 0;
  }
};

/// Runs `generator`'s transaction mix against `system` and gathers the
/// measurement-window statistics.
RunResult RunWorkload(SystemAdapter* system, Generator* generator,
                      const DriverOptions& options);

}  // namespace carousel::workload

#endif  // CAROUSEL_WORKLOAD_DRIVER_H_
