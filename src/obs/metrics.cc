#include "obs/metrics.h"

#include <cstdio>

namespace carousel::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// %.17g round-trips doubles exactly; trailing-digit noise is acceptable in
// exchange for snapshot/merge determinism tests comparing strings.
std::string NumStr(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  if (other.at > at) at = other.at;
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    histograms[name].Merge(h);
  }
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  const std::string pad4(indent + 4, ' ');
  std::string out = pad + "{\n";
  out += pad2 + "\"at\": " + std::to_string(at) + ",\n";

  out += pad2 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += pad4 + "\"" + JsonEscape(name) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad2 + "},\n";

  out += pad2 + "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += pad4 + "\"" + JsonEscape(name) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad2 + "},\n";

  out += pad2 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += pad4 + "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count()) + ", \"mean\": " + NumStr(h.Mean()) +
           ", \"p50\": " + std::to_string(h.Quantile(0.5)) +
           ", \"p99\": " + std::to_string(h.Quantile(0.99)) +
           ", \"max\": " + std::to_string(h.max()) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n" + pad2 + "}\n";
  out += pad + "}";
  return out;
}

Counter MetricsRegistry::GetCounter(const std::string& name) {
  if (!enabled_) return Counter{};
  return Counter{&counters_[name]};
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  return Gauge{&gauges_[name]};
}

Histo MetricsRegistry::GetHistogram(const std::string& name) {
  if (!enabled_) return Histo{};
  return Histo{&histograms_[name]};
}

void MetricsRegistry::ExposeCounter(const std::string& name,
                                    const uint64_t* cell) {
  if (!enabled_ || cell == nullptr) return;
  exposed_counters_[name] = cell;
}

void MetricsRegistry::ExposeGauge(const std::string& name,
                                  std::function<int64_t()> fn) {
  if (!enabled_ || !fn) return;
  exposed_gauges_[name] = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot(SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  if (!enabled_) return snap;
  snap.counters = counters_;
  for (const auto& [name, cell] : exposed_counters_) {
    snap.counters[name] += *cell;
  }
  snap.gauges = gauges_;
  for (const auto& [name, fn] : exposed_gauges_) {
    snap.gauges[name] += fn();
  }
  snap.histograms = histograms_;
  return snap;
}

void MetricsSampler::Start(SimTime interval, SimTime until) {
  if (interval <= 0 || registry_ == nullptr) return;
  for (SimTime t = interval; t <= until; t += interval) {
    sim_->ScheduleAt(t, [this, t]() {
      MetricsSnapshot snap = registry_->Snapshot(t);
      Row row;
      row.at = t;
      row.counters = std::move(snap.counters);
      row.gauges = std::move(snap.gauges);
      rows_.push_back(std::move(row));
    });
  }
}

}  // namespace carousel::obs
