#include "obs/wanrt.h"

#include <algorithm>

namespace carousel::obs {

const char* WanrtPhaseName(WanrtPhase phase) {
  switch (phase) {
    case WanrtPhase::kExecute:
      return "execute";
    case WanrtPhase::kPrepare:
      return "prepare";
    case WanrtPhase::kCpcFast:
      return "cpc_fast";
    case WanrtPhase::kCpcSlow:
      return "cpc_slow";
    case WanrtPhase::kDecision:
      return "decision";
  }
  return "?";
}

void WanrtStats::Merge(const WanrtStats& other) {
  sealed += other.sealed;
  committed += other.committed;
  aborted += other.aborted;
  read_only += other.read_only;
  fast_path_txns += other.fast_path_txns;
  slow_path_txns += other.slow_path_txns;
  degraded_txns += other.degraded_txns;
  for (int p = 0; p < kNumWanrtPhases; ++p) {
    cross_dc_deliveries[p] += other.cross_dc_deliveries[p];
    max_phase_hops[p] = std::max(max_phase_hops[p], other.max_phase_hops[p]);
  }
  for (const auto& [hops, n] : other.rw_decided_hops) {
    rw_decided_hops[hops] += n;
  }
  for (const auto& [hops, n] : other.ro_decided_hops) {
    ro_decided_hops[hops] += n;
  }
}

uint32_t WanrtStats::HopsQuantile(const std::map<uint32_t, uint64_t>& hist,
                                  double q) {
  uint64_t total = 0;
  for (const auto& [hops, n] : hist) total += n;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      q * static_cast<double>(total) + 0.5);
  uint64_t seen = 0;
  for (const auto& [hops, n] : hist) {
    seen += n;
    if (seen >= target) return hops;
  }
  return hist.rbegin()->first;
}

uint32_t WanrtStats::MaxHops(const std::map<uint32_t, uint64_t>& hist) {
  return hist.empty() ? 0 : hist.rbegin()->first;
}

std::string WanrtStats::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  const std::string pad4(indent + 4, ' ');
  std::string out = pad + "{\n";
  out += pad2 + "\"sealed\": " + std::to_string(sealed) + ",\n";
  out += pad2 + "\"committed\": " + std::to_string(committed) + ",\n";
  out += pad2 + "\"aborted\": " + std::to_string(aborted) + ",\n";
  out += pad2 + "\"read_only\": " + std::to_string(read_only) + ",\n";
  out += pad2 + "\"fast_path_txns\": " + std::to_string(fast_path_txns) + ",\n";
  out += pad2 + "\"slow_path_txns\": " + std::to_string(slow_path_txns) + ",\n";
  out += pad2 + "\"degraded_txns\": " + std::to_string(degraded_txns) + ",\n";
  out += pad2 + "\"phases\": {";
  for (int p = 0; p < kNumWanrtPhases; ++p) {
    out += p == 0 ? "\n" : ",\n";
    out += pad4 + "\"" + WanrtPhaseName(static_cast<WanrtPhase>(p)) +
           "\": {\"cross_dc_deliveries\": " +
           std::to_string(cross_dc_deliveries[p]) +
           ", \"max_hops\": " + std::to_string(max_phase_hops[p]) + "}";
  }
  out += "\n" + pad2 + "},\n";
  auto hist_json = [&](const std::map<uint32_t, uint64_t>& hist) {
    std::string h = "{";
    bool first = true;
    for (const auto& [hops, n] : hist) {
      h += first ? "" : ", ";
      h += "\"" + std::to_string(hops) + "\": " + std::to_string(n);
      first = false;
    }
    h += "}";
    return h;
  };
  out += pad2 + "\"rw_decided_hops\": " + hist_json(rw_decided_hops) + ",\n";
  out += pad2 + "\"ro_decided_hops\": " + hist_json(ro_decided_hops) + "\n";
  out += pad + "}";
  return out;
}

WanrtLedger::WanrtLedger(const Topology* topology, bool enabled)
    : topology_(topology), enabled_(enabled) {}

void WanrtLedger::Begin(const TxnId& tid) {
  if (!enabled_) return;
  LiveTxn& txn = live_[tid];
  txn.rec.tid = tid;
}

void WanrtLedger::Seal(const TxnId& tid, NodeId client, bool committed,
                       bool read_only) {
  if (!enabled_) return;
  auto it = live_.find(tid);
  if (it == live_.end()) return;  // Already sealed (idempotent).
  LiveTxn& txn = it->second;
  txn.rec.sealed = true;
  txn.rec.committed = committed;
  txn.rec.read_only = read_only;
  txn.rec.decided_hops = WatermarkOf(txn, client);
  Fold(txn.rec);
  if (retain_all_) retained_[tid] = txn.rec;
  live_.erase(it);
}

void WanrtLedger::Fold(const TxnWanrt& rec) {
  stats_.sealed++;
  if (rec.committed) {
    stats_.committed++;
  } else {
    stats_.aborted++;
  }
  if (rec.read_only) stats_.read_only++;
  if (!rec.read_only && rec.SawFastVotes() && !rec.SawSlowPath()) {
    stats_.fast_path_txns++;
  }
  if (rec.SawSlowPath()) stats_.slow_path_txns++;
  if (rec.Degraded()) stats_.degraded_txns++;
  for (int p = 0; p < kNumWanrtPhases; ++p) {
    stats_.cross_dc_deliveries[p] += rec.cross_dc_deliveries[p];
    stats_.max_phase_hops[p] =
        std::max(stats_.max_phase_hops[p], rec.max_hops[p]);
  }
  if (rec.committed) {
    auto& hist =
        rec.read_only ? stats_.ro_decided_hops : stats_.rw_decided_hops;
    hist[rec.decided_hops]++;
  }
}

uint64_t WanrtLedger::OnSend(const sim::Message& msg, NodeId from, NodeId to) {
  if (!enabled_) return 0;
  scratch_.clear();
  msg.CollectSpans(&scratch_);
  if (scratch_.empty()) return 0;
  const bool cross_dc =
      from != to && topology_->DcOf(from) != topology_->DcOf(to);

  // Acquire a slot lazily: most messages carry spans of unknown (sealed)
  // transactions or none at all, and those must stay token 0.
  uint32_t slot = 0;
  InFlightEntry* entry = nullptr;
  for (const sim::WanSpan& span : scratch_) {
    auto it = live_.find(span.tid);
    if (it == live_.end()) continue;  // Unknown or already sealed.
    InFlightSpan f;
    f.tid = span.tid;
    f.phase = span.phase;
    f.hops = WatermarkOf(it->second, from) + (cross_dc ? 1 : 0);
    f.cross_dc = cross_dc;
    if (entry == nullptr) {
      if (free_slots_.empty()) {
        slot = static_cast<uint32_t>(inflight_.size());
        inflight_.emplace_back();
      } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
      }
      entry = &inflight_[slot];
    }
    if (entry->count == 0) {
      entry->first = f;
    } else {
      entry->rest.push_back(f);
    }
    entry->count++;
  }
  if (entry == nullptr) return 0;
  return static_cast<uint64_t>(slot) + 1;
}

void WanrtLedger::OnDeliver(uint64_t token, NodeId to) {
  if (!enabled_ || token == 0 || token > inflight_.size()) return;
  InFlightEntry& entry = inflight_[token - 1];
  for (uint32_t i = 0; i < entry.count; ++i) {
    const InFlightSpan& span = i == 0 ? entry.first : entry.rest[i - 1];
    auto txn_it = live_.find(span.tid);
    if (txn_it == live_.end()) continue;  // Sealed while in flight.
    LiveTxn& txn = txn_it->second;
    if (txn.watermark.size() <= static_cast<size_t>(to)) {
      txn.watermark.resize(
          std::max(topology_->nodes().size(), static_cast<size_t>(to) + 1));
    }
    uint32_t& wm = txn.watermark[to];
    wm = std::max(wm, span.hops);
    const int phase =
        span.phase < kNumWanrtPhases ? span.phase : kNumWanrtPhases - 1;
    txn.rec.max_hops[phase] = std::max(txn.rec.max_hops[phase], span.hops);
    if (span.cross_dc) txn.rec.cross_dc_deliveries[phase]++;
  }
  entry.count = 0;
  entry.rest.clear();
  free_slots_.push_back(static_cast<uint32_t>(token - 1));
}

void WanrtLedger::OnDrop(uint64_t token) {
  if (!enabled_ || token == 0 || token > inflight_.size()) return;
  InFlightEntry& entry = inflight_[token - 1];
  entry.count = 0;
  entry.rest.clear();
  free_slots_.push_back(static_cast<uint32_t>(token - 1));
}

const TxnWanrt* WanrtLedger::Find(const TxnId& tid) const {
  auto it = live_.find(tid);
  if (it != live_.end()) return &it->second.rec;
  auto rt = retained_.find(tid);
  if (rt != retained_.end()) return &rt->second;
  return nullptr;
}

void WanrtLedger::ResetStats() { stats_ = WanrtStats{}; }

std::string WanrtLedger::SnapshotJson(int indent) const {
  return stats_.ToJson(indent);
}

}  // namespace carousel::obs
