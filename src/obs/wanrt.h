#ifndef CAROUSEL_OBS_WANRT_H_
#define CAROUSEL_OBS_WANRT_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/topology.h"
#include "common/types.h"
#include "sim/network.h"

namespace carousel::obs {

/// Protocol phase a message delivery is attributed to. Senders stamp the
/// phase into the message span (sim::Message::set_span); the ledger keeps
/// per-phase tallies so tests can tell a CPC fast-path commit from a
/// degraded slow-path one without wall-clock heuristics.
enum class WanrtPhase : uint8_t {
  kExecute = 0,  // read round: ReadPrepare / ReadResponse
  kPrepare,      // prepare traffic: CoordPrepare, prepare replication, votes
  kCpcFast,      // direct fast-path votes (PrepareDecision via_fast_path)
  kCpcSlow,      // slow-path decisions after a fast path was attempted
  kDecision,     // commit request/response, decision replication, writeback
};
inline constexpr int kNumWanrtPhases = 5;

const char* WanrtPhaseName(WanrtPhase phase);

/// Per-transaction wide-area round-trip record.
///
/// Counting model: every in-flight delivery carries the causal wan-hop
/// depth of the chain that produced it — the sender's per-transaction
/// watermark, plus one if this edge crosses DCs. Delivery folds the depth
/// into the receiver's watermark (max). The client's watermark when the
/// outcome lands is therefore the length in cross-DC hops of the longest
/// causal message chain behind the decision, and WANRTs = hops / 2. This
/// is exactly the quantity the paper budgets (§3-§5): jitter and queueing
/// never change it, only the protocol's message pattern does.
struct TxnWanrt {
  TxnId tid{};
  /// Cross-DC deliveries attributed to each phase.
  std::array<uint32_t, kNumWanrtPhases> cross_dc_deliveries{};
  /// Max causal wan-hop depth seen on any delivery of each phase.
  std::array<uint32_t, kNumWanrtPhases> max_hops{};
  /// The issuing client's watermark when it learned the outcome.
  uint32_t decided_hops = 0;
  bool sealed = false;
  bool committed = false;
  bool read_only = false;

  double DecidedWanrts() const { return decided_hops / 2.0; }
  /// CPC fast votes reached a coordinator for this transaction.
  bool SawFastVotes() const {
    return max_hops[static_cast<int>(WanrtPhase::kCpcFast)] > 0;
  }
  /// A replicated slow-path decision was used (fast quorum failed or the
  /// system runs Basic with fast_path off — then kPrepare is used instead).
  bool SawSlowPath() const {
    return max_hops[static_cast<int>(WanrtPhase::kCpcSlow)] > 0;
  }
  /// Fast path attempted but the decision came via the slow path.
  bool Degraded() const { return SawFastVotes() && SawSlowPath(); }
};

/// Aggregates folded from sealed transactions (bounded memory: the per-txn
/// watermark state is dropped at seal unless retain_all is on).
struct WanrtStats {
  uint64_t sealed = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t read_only = 0;
  uint64_t fast_path_txns = 0;
  uint64_t slow_path_txns = 0;
  uint64_t degraded_txns = 0;
  std::array<uint64_t, kNumWanrtPhases> cross_dc_deliveries{};
  std::array<uint32_t, kNumWanrtPhases> max_phase_hops{};
  /// Distribution of decided_hops over committed read-write transactions.
  std::map<uint32_t, uint64_t> rw_decided_hops;
  /// Distribution of decided_hops over committed read-only transactions.
  std::map<uint32_t, uint64_t> ro_decided_hops;

  void Merge(const WanrtStats& other);
  std::string ToJson(int indent = 0) const;

  /// Quantile over a decided-hops distribution (0 when empty).
  static uint32_t HopsQuantile(const std::map<uint32_t, uint64_t>& hist,
                               double q);
  static uint32_t MaxHops(const std::map<uint32_t, uint64_t>& hist);
};

/// The WANRT accountant: observes every scheduled delivery, maintains
/// per-(transaction, node) causal hop watermarks, and folds sealed
/// transactions into aggregate statistics. Attach to the network with
/// Network::set_delivery_observer; the issuing client brackets each
/// transaction with Begin/Seal (mirroring TraceCollector).
class WanrtLedger final : public sim::DeliveryObserver {
 public:
  /// `topology` decides which edges are cross-DC; must outlive the ledger.
  /// A disabled ledger no-ops everything (and should simply not be
  /// attached to the network).
  WanrtLedger(const Topology* topology, bool enabled);

  bool enabled() const { return enabled_; }
  /// Keep sealed per-transaction records for Find() (tests). Off by
  /// default: long runs would grow without bound.
  void set_retain_all(bool retain) { retain_all_ = retain; }

  /// ---- Transaction lifecycle (issuing client) ----
  void Begin(const TxnId& tid);
  /// Folds the record into stats using the client's current watermark as
  /// decided_hops. Later deliveries for the transaction are ignored.
  void Seal(const TxnId& tid, NodeId client, bool committed, bool read_only);

  /// ---- sim::DeliveryObserver ----
  uint64_t OnSend(const sim::Message& msg, NodeId from, NodeId to) override;
  void OnDeliver(uint64_t token, NodeId to) override;
  void OnDrop(uint64_t token) override;

  /// ---- Queries ----
  /// Live record, or a retained sealed one (retain_all); else nullptr.
  const TxnWanrt* Find(const TxnId& tid) const;
  const WanrtStats& stats() const { return stats_; }
  /// Zeroes the aggregate stats (start of a measurement window); live
  /// per-transaction state is kept so in-flight transactions stay whole.
  void ResetStats();
  size_t live_count() const { return live_.size(); }

  std::string SnapshotJson(int indent = 0) const;

 private:
  struct LiveTxn {
    TxnWanrt rec;
    /// Causal wan-hop watermark per node that has handled this txn,
    /// indexed by NodeId (sized to the topology on first touch). Flat so
    /// the per-delivery fold is an array read, not a hash probe.
    std::vector<uint32_t> watermark;
  };
  struct InFlightSpan {
    TxnId tid;
    uint8_t phase = 0;
    uint32_t hops = 0;
    bool cross_dc = false;
  };
  /// In-flight spans of one scheduled delivery. `first` covers the common
  /// single-span message inline; batch envelopes overflow into `rest`
  /// (whose capacity survives slot reuse, so steady state allocates
  /// nothing per message).
  struct InFlightEntry {
    InFlightSpan first;
    std::vector<InFlightSpan> rest;
    uint32_t count = 0;
  };

  void Fold(const TxnWanrt& rec);
  uint32_t WatermarkOf(const LiveTxn& txn, NodeId node) const {
    return static_cast<size_t>(node) < txn.watermark.size()
               ? txn.watermark[node]
               : 0;
  }

  const Topology* topology_;
  bool enabled_;
  bool retain_all_ = false;
  std::unordered_map<TxnId, LiveTxn, TxnIdHash> live_;
  std::unordered_map<TxnId, TxnWanrt, TxnIdHash> retained_;
  /// Slot arena keyed by token - 1. The network reports every token back
  /// exactly once (OnDeliver or OnDrop), so slots recycle through
  /// free_slots_ without ever growing past the in-flight high-water mark.
  std::vector<InFlightEntry> inflight_;
  std::vector<uint32_t> free_slots_;
  WanrtStats stats_;
  // Scratch buffer reused by OnSend to avoid an allocation per message.
  std::vector<sim::WanSpan> scratch_;
};

}  // namespace carousel::obs

#endif  // CAROUSEL_OBS_WANRT_H_
