#ifndef CAROUSEL_OBS_METRICS_H_
#define CAROUSEL_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace carousel::obs {

class MetricsRegistry;

/// Handles are the only way instrumented code touches the registry on the
/// hot path. Each one wraps a raw pointer into registry-owned storage; a
/// disabled registry hands out null handles whose operations inline to a
/// single predictable branch — no allocation, no lookup, no virtual call.
/// Handles are trivially copyable and must not outlive their registry.
class Counter {
 public:
  Counter() = default;
  void Increment(uint64_t n = 1) {
    if (cell_ != nullptr) *cell_ += n;
  }
  uint64_t value() const { return cell_ == nullptr ? 0 : *cell_; }
  bool active() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(uint64_t* cell) : cell_(cell) {}
  uint64_t* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t v) {
    if (cell_ != nullptr) *cell_ = v;
  }
  void Add(int64_t delta) {
    if (cell_ != nullptr) *cell_ += delta;
  }
  int64_t value() const { return cell_ == nullptr ? 0 : *cell_; }
  bool active() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(int64_t* cell) : cell_(cell) {}
  int64_t* cell_ = nullptr;
};

class Histo {
 public:
  Histo() = default;
  void Record(int64_t micros) {
    if (hist_ != nullptr) hist_->Record(micros);
  }
  bool active() const { return hist_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histo(Histogram* hist) : hist_(hist) {}
  Histogram* hist_ = nullptr;
};

/// Point-in-time copy of a registry's contents, taken at a sim timestamp.
/// Deterministic by construction: every map is name-ordered, so two
/// identical seeded runs produce byte-identical ToJson() output.
struct MetricsSnapshot {
  SimTime at = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// Folds `other` into this snapshot: counters add, gauges add (they are
  /// point samples of per-entity state, so the merged value reads as a
  /// cluster total), histograms merge their buckets. `at` takes the later
  /// timestamp.
  void Merge(const MetricsSnapshot& other);

  /// Structured JSON: {"at": ..., "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, mean, p50, p99, max}}}.
  std::string ToJson(int indent = 0) const;
};

/// A named-metric registry. One instance covers a whole simulated cluster;
/// per-server / per-role scoping is by dotted name ("server.3.participant.
/// prepares_ok"), which keeps the hot path a pointer bump while letting
/// snapshots aggregate by stripping prefixes.
///
/// Two registration styles:
///  * Get*() — the registry owns the cell and returns a handle the caller
///    bumps. Use for event counts recorded at the point of occurrence.
///  * Expose*() — the caller owns the state and the registry reads it at
///    snapshot time (a pointer for counters, a callback for gauges). Use
///    for live values that already exist (queue depths, log sizes); this
///    costs literally nothing between snapshots.
///
/// When constructed disabled, Get*() returns null handles, Expose*() is a
/// no-op, and Snapshot() is empty: instrumented code needs no flag checks
/// of its own.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Re-requesting an existing name returns a handle onto the same cell.
  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  Histo GetHistogram(const std::string& name);

  /// Snapshot reads `*cell` under `name`; `cell` must outlive the registry
  /// or be unregistered by destroying the owning object before snapshots.
  void ExposeCounter(const std::string& name, const uint64_t* cell);
  /// Snapshot calls `fn()` under `name` (gauge semantics).
  void ExposeGauge(const std::string& name, std::function<int64_t()> fn);

  MetricsSnapshot Snapshot(SimTime at) const;

 private:
  bool enabled_;
  // Node-based maps: element addresses are stable across inserts, which is
  // what lets handles hold raw pointers.
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, const uint64_t*> exposed_counters_;
  std::map<std::string, std::function<int64_t()>> exposed_gauges_;
};

/// Samples a registry into a deterministic sim-time series: one row per
/// interval, driven by simulator events. Bounded by `until` so it cannot
/// keep an otherwise-idle simulator's queue non-empty forever.
class MetricsSampler {
 public:
  struct Row {
    SimTime at = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
  };

  MetricsSampler(sim::Simulator* sim, const MetricsRegistry* registry)
      : sim_(sim), registry_(registry) {}

  /// Schedules samples at interval, interval*2, ... up to `until`
  /// (inclusive). May be called once per run.
  void Start(SimTime interval, SimTime until);

  const std::vector<Row>& rows() const { return rows_; }

 private:
  sim::Simulator* sim_;
  const MetricsRegistry* registry_;
  std::vector<Row> rows_;
};

}  // namespace carousel::obs

#endif  // CAROUSEL_OBS_METRICS_H_
