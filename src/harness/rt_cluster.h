#ifndef CAROUSEL_HARNESS_RT_CLUSTER_H_
#define CAROUSEL_HARNESS_RT_CLUSTER_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "carousel/client.h"
#include "carousel/directory.h"
#include "carousel/options.h"
#include "carousel/server.h"
#include "common/rng.h"
#include "common/topology.h"
#include "obs/metrics.h"
#include "runtime/event_fn.h"
#include "runtime/storage.h"
#include "runtime/threaded.h"

namespace carousel::harness {

struct RtClusterOptions {
  /// Inter-node messages over localhost TCP (serialized via wire::Codec)
  /// instead of in-process handoff.
  bool use_tcp = false;
  /// Bound on each node's inbound queue (overflow drops; protocols mask
  /// drops with retries).
  size_t max_inbound_queue = 1 << 16;
  /// Seeds the per-node RNG forks (jittered timers etc.; the threaded
  /// backend is not deterministic regardless).
  uint64_t seed = 1;
  /// Directory for per-server durable state (WAL + snapshot under
  /// <storage_dir>/node-<id>). Empty = no durable state, and
  /// KillServer/RestartServer are unavailable: a restarted node without a
  /// WAL would re-bootstrap and fork history.
  std::string storage_dir;
  /// fsync WAL appends. Off by default for the chaos harness: its kill
  /// model stops threads inside one process, so the page cache survives
  /// every "crash" and fsync only adds latency.
  bool wal_fsync = false;
};

/// A complete Carousel deployment on the threaded runtime: one event-loop
/// thread per node (servers and clients) on a shared monotonic clock —
/// backend #2 of the runtime seam. Same protocol objects as core::Cluster,
/// different substrate: real threads and (optionally) real sockets instead
/// of the discrete-event simulator.
///
/// Threading rules for callers: every client API call (Begin /
/// ReadAndPrepare / Commit / ...) must run on that client's loop thread —
/// use RunOnClient. Server state may only be inspected through
/// RunOnServer for the same reason.
class RtCluster {
 public:
  /// `topology` must already have partitions placed and clients added.
  RtCluster(Topology topology, core::CarouselOptions options,
            RtClusterOptions rt_options = {});
  ~RtCluster();

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  /// Launches all loop threads (and sockets in TCP mode), starts every
  /// server, and waits until every partition serves. Returns false if the
  /// transport could not start (e.g. sockets unavailable) or the cluster
  /// failed to become ready within `timeout_ms`.
  bool Start(int timeout_ms = 10000);

  /// Stops all loop and socket threads. Idempotent; the destructor calls
  /// it too.
  void Stop();

  const Topology& topology() const { return topology_; }
  const core::Directory& directory() const { return *directory_; }
  runtime::ThreadedRuntime& rt() { return *rt_; }
  size_t num_clients() const { return client_ptrs_.size(); }
  core::CarouselClient* client(int index) { return client_ptrs_.at(index); }

  /// The server actor for node `id` (nullptr for client nodes and killed
  /// servers). While the cluster runs, touch its state only through
  /// RunOnServer; after Stop() every loop thread has joined and direct
  /// reads are safe.
  core::CarouselServer* server(NodeId id) {
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    auto it = servers_.find(id);
    return it == servers_.end() ? nullptr : it->second.get();
  }

  /// ---- Node lifecycle (requires RtClusterOptions::storage_dir) ----
  /// SIGKILL equivalent: joins the node's loop thread mid-flight and
  /// destroys the server object — volatile state (queues, timers, roles'
  /// in-memory maps) is gone; only the WAL survives. Thread-safe; returns
  /// false if `id` is not a live server or no storage is configured.
  bool KillServer(NodeId id);
  /// Builds a fresh server over the recovered WAL and restarts its loop.
  /// Returns false if `id` is not currently dead.
  bool RestartServer(NodeId id);
  bool server_alive(NodeId id) const;

  /// Lifetime counters for fault-schedule "did it actually fire" checks.
  size_t restarts() const;
  /// Raft log entries / pending prepare pins recovered from WALs across
  /// all restarts.
  size_t recovered_log_entries() const;
  size_t recovered_pending() const;

  /// Runs `fn` on client `index`'s loop thread (fire and forget).
  void RunOnClient(int index, runtime::EventFn fn);
  /// Runs `fn` on server `id`'s loop thread (fire and forget).
  void RunOnServer(NodeId id, runtime::EventFn fn);

  /// Attaches a verification history recorder to every client and server.
  /// The recorder must be internally synchronized (check::HistoryRecorder
  /// is); call before Start.
  void AttachHistory(check::HistoryRecorder* history);

  /// Messages dropped across the deployment (full queues, dead sockets).
  uint64_t dropped_messages() const { return rt_->dropped_messages(); }

  /// Monotone count of messages accepted cluster-wide; tests poll it for
  /// quiescence (trailing writebacks settled) instead of fixed sleeps.
  uint64_t posted_messages() const { return rt_->posted_messages(); }

  /// Aggregated TCP transport counters: per-reason drop counts
  /// (queue-full / connect-fail / decode-fail), the egress coalescing
  /// factor, and bytes/syscall totals. All zero in in-process mode.
  runtime::TransportStats transport_stats() const {
    return rt_->transport_stats();
  }

  /// Blocks until every live server reports serving (leader known for its
  /// partition) or the timeout passes. Called by Start; also useful after
  /// a fault schedule heals, before extracting state.
  bool WaitUntilServing(int timeout_ms);

 private:
  std::string StorageDirFor(NodeId id) const;

  Topology topology_;
  core::CarouselOptions options_;
  RtClusterOptions rt_options_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<core::Directory> directory_;
  std::unique_ptr<runtime::ThreadedRuntime> rt_;
  carousel::Rng rng_;
  check::HistoryRecorder* history_ = nullptr;
  /// Guards servers_/storage_/dead_ and the counters: KillServer and
  /// RestartServer run on the nemesis driver thread while the owner reads
  /// accessors.
  mutable std::mutex lifecycle_mu_;
  std::unordered_map<NodeId, std::unique_ptr<core::CarouselServer>> servers_;
  std::unordered_map<NodeId, std::unique_ptr<runtime::WalStorage>> storage_;
  std::set<NodeId> dead_;
  size_t restarts_ = 0;
  size_t recovered_log_entries_ = 0;
  size_t recovered_pending_ = 0;
  std::vector<std::unique_ptr<core::CarouselClient>> clients_;
  std::vector<core::CarouselClient*> client_ptrs_;
  bool started_ = false;
};

}  // namespace carousel::harness

#endif  // CAROUSEL_HARNESS_RT_CLUSTER_H_
