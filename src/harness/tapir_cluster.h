#ifndef CAROUSEL_HARNESS_TAPIR_CLUSTER_H_
#define CAROUSEL_HARNESS_TAPIR_CLUSTER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "carousel/directory.h"
#include "common/topology.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "tapir/client.h"
#include "tapir/server.h"

namespace carousel::tapir {

/// A complete simulated TAPIR deployment (baseline system), mirroring
/// core::Cluster so benches can swap systems behind one interface.
class TapirCluster {
 public:
  TapirCluster(Topology topology, TapirOptions options,
               sim::NetworkOptions net_options = {}, uint64_t seed = 1);
  ~TapirCluster();

  TapirCluster(const TapirCluster&) = delete;
  TapirCluster& operator=(const TapirCluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  sim::Network& network() { return *network_; }
  const core::Directory& directory() const { return *directory_; }
  const Topology& topology() const { return topology_; }

  TapirServer* server(NodeId id) { return servers_.at(id).get(); }
  const std::vector<TapirClient*>& clients() { return client_ptrs_; }
  TapirClient* client(int index) { return client_ptrs_.at(index); }

 private:
  Topology topology_;
  sim::Simulator sim_;
  std::unique_ptr<core::Directory> directory_;
  std::unique_ptr<sim::Network> network_;
  std::unordered_map<NodeId, std::unique_ptr<TapirServer>> servers_;
  std::vector<std::unique_ptr<TapirClient>> clients_;
  std::vector<TapirClient*> client_ptrs_;
};

}  // namespace carousel::tapir

#endif  // CAROUSEL_HARNESS_TAPIR_CLUSTER_H_
