#include "harness/rt_cluster.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "wire/wire.h"

namespace carousel::harness {

RtCluster::RtCluster(Topology topology, core::CarouselOptions options,
                     RtClusterOptions rt_options)
    : topology_(std::move(topology)),
      options_(options),
      metrics_(/*enabled=*/false) {
  directory_ = std::make_unique<core::Directory>(&topology_);

  runtime::ThreadedRuntimeOptions rt_opts;
  rt_opts.max_inbound_queue = rt_options.max_inbound_queue;
  rt_opts.use_tcp = rt_options.use_tcp;
  if (rt_options.use_tcp) rt_opts.codec = wire::Codec();
  rt_ = std::make_unique<runtime::ThreadedRuntime>(topology_.nodes().size(),
                                                   std::move(rt_opts));

  carousel::Rng rng(rt_options.seed);
  ClientId next_client_id = 0;
  for (const NodeInfo& info : topology_.nodes()) {
    if (info.is_client) {
      auto client = std::make_unique<core::CarouselClient>(
          info.id, info.dc, next_client_id++, directory_.get(), options_);
      rt_->Register(client.get());
      client_ptrs_.push_back(client.get());
      clients_.push_back(std::move(client));
    } else {
      auto server = std::make_unique<core::CarouselServer>(
          info, directory_.get(), rt_->MakeEnv(info.id, rng.Fork()), options_,
          /*traces=*/nullptr, &metrics_);
      rt_->Register(server.get());
      servers_.emplace(info.id, std::move(server));
    }
  }
}

RtCluster::~RtCluster() { Stop(); }

bool RtCluster::Start(int timeout_ms) {
  if (!rt_->Start()) return false;
  started_ = true;
  for (auto& [id, server] : servers_) {
    core::CarouselServer* s = server.get();
    // Start (Raft bootstrap, timers) must run on the server's own loop.
    rt_->loop(id)->Post([s]() { s->Start(); });
  }
  return WaitUntilServing(timeout_ms);
}

void RtCluster::Stop() { rt_->Stop(); }

void RtCluster::RunOnClient(int index, runtime::EventFn fn) {
  rt_->loop(client_ptrs_.at(index)->id())->Post(std::move(fn));
}

void RtCluster::RunOnServer(NodeId id, runtime::EventFn fn) {
  rt_->loop(id)->Post(std::move(fn));
}

void RtCluster::AttachHistory(check::HistoryRecorder* history) {
  for (core::CarouselClient* client : client_ptrs_) {
    client->set_history(history);
  }
  for (auto& [id, server] : servers_) {
    server->set_history(history);
    if (history != nullptr) server->mutable_store().EnableWriterLog();
  }
}

bool RtCluster::WaitUntilServing(int timeout_ms) {
  // Probe serving() on each server's own loop thread; the probe state is
  // shared_ptr-owned so a timed-out waiter can leave while late probes
  // still complete.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const size_t n = servers_.size();
  while (std::chrono::steady_clock::now() < deadline) {
    struct Probe {
      std::atomic<size_t> done{0};
      std::atomic<size_t> serving{0};
    };
    auto probe = std::make_shared<Probe>();
    for (auto& [id, server] : servers_) {
      core::CarouselServer* s = server.get();
      rt_->loop(id)->Post([probe, s]() {
        if (s->serving()) probe->serving.fetch_add(1);
        probe->done.fetch_add(1);
      });
    }
    while (probe->done.load() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (probe->done.load() == n && probe->serving.load() == n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace carousel::harness
