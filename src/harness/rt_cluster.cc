#include "harness/rt_cluster.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "wire/wire.h"

namespace carousel::harness {

RtCluster::RtCluster(Topology topology, core::CarouselOptions options,
                     RtClusterOptions rt_options)
    : topology_(std::move(topology)),
      options_(options),
      rt_options_(std::move(rt_options)),
      metrics_(/*enabled=*/false),
      rng_(rt_options_.seed) {
  directory_ = std::make_unique<core::Directory>(&topology_);

  runtime::ThreadedRuntimeOptions rt_opts;
  rt_opts.max_inbound_queue = rt_options_.max_inbound_queue;
  rt_opts.use_tcp = rt_options_.use_tcp;
  if (rt_options_.use_tcp) rt_opts.codec = wire::Codec();
  rt_ = std::make_unique<runtime::ThreadedRuntime>(topology_.nodes().size(),
                                                   std::move(rt_opts));

  ClientId next_client_id = 0;
  for (const NodeInfo& info : topology_.nodes()) {
    if (info.is_client) {
      auto client = std::make_unique<core::CarouselClient>(
          info.id, info.dc, next_client_id++, directory_.get(), options_);
      rt_->Register(client.get());
      client_ptrs_.push_back(client.get());
      clients_.push_back(std::move(client));
    } else {
      runtime::WalStorage* storage = nullptr;
      if (!rt_options_.storage_dir.empty()) {
        runtime::WalStorageOptions wal_opts;
        wal_opts.fsync = rt_options_.wal_fsync;
        auto owned = std::make_unique<runtime::WalStorage>(
            StorageDirFor(info.id), wire::Codec(), wal_opts);
        storage = owned.get();
        storage_.emplace(info.id, std::move(owned));
      }
      auto server = std::make_unique<core::CarouselServer>(
          info, directory_.get(), rt_->MakeEnv(info.id, rng_.Fork(), storage),
          options_, /*traces=*/nullptr, &metrics_);
      rt_->Register(server.get());
      servers_.emplace(info.id, std::move(server));
    }
  }
}

RtCluster::~RtCluster() { Stop(); }

bool RtCluster::Start(int timeout_ms) {
  if (!rt_->Start()) return false;
  started_ = true;
  for (auto& [id, server] : servers_) {
    core::CarouselServer* s = server.get();
    // Start (Raft bootstrap, timers) must run on the server's own loop.
    rt_->loop(id)->Post([s]() { s->Start(); });
  }
  return WaitUntilServing(timeout_ms);
}

void RtCluster::Stop() { rt_->Stop(); }

void RtCluster::RunOnClient(int index, runtime::EventFn fn) {
  rt_->loop(client_ptrs_.at(index)->id())->Post(std::move(fn));
}

void RtCluster::RunOnServer(NodeId id, runtime::EventFn fn) {
  rt_->loop(id)->Post(std::move(fn));
}

void RtCluster::AttachHistory(check::HistoryRecorder* history) {
  history_ = history;
  for (core::CarouselClient* client : client_ptrs_) {
    client->set_history(history);
  }
  for (auto& [id, server] : servers_) {
    server->set_history(history);
    if (history != nullptr) server->mutable_store().EnableWriterLog();
  }
}

std::string RtCluster::StorageDirFor(NodeId id) const {
  return rt_options_.storage_dir + "/node-" + std::to_string(id);
}

bool RtCluster::KillServer(NodeId id) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (rt_options_.storage_dir.empty()) return false;
  auto it = servers_.find(id);
  if (it == servers_.end() || dead_.count(id) > 0) return false;
  // Joining the loop thread is the kill: whatever the node was doing at
  // this instant simply never finishes, and only what reached the WAL
  // before this moment survives. TCP sockets stay open — frames arriving
  // for the dead node drain into the drop counter, and the listener keeps
  // its port for the restart.
  rt_->StopNode(id);
  servers_.erase(it);      // Volatile state dies with the object.
  storage_.erase(id);      // Closes the WAL fd; files stay for recovery.
  dead_.insert(id);
  return true;
}

bool RtCluster::RestartServer(NodeId id) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (dead_.count(id) == 0) return false;
  runtime::WalStorageOptions wal_opts;
  wal_opts.fsync = rt_options_.wal_fsync;
  auto storage = std::make_unique<runtime::WalStorage>(
      StorageDirFor(id), wire::Codec(), wal_opts);
  recovered_log_entries_ += storage->state().log.size();
  recovered_pending_ += storage->state().pending.size();

  const NodeInfo& info = topology_.node(id);
  auto server = std::make_unique<core::CarouselServer>(
      info, directory_.get(), rt_->MakeEnv(id, rng_.Fork(), storage.get()),
      options_, /*traces=*/nullptr, &metrics_);
  if (history_ != nullptr) {
    server->set_history(history_);
    server->mutable_store().EnableWriterLog();
  }
  core::CarouselServer* s = server.get();
  rt_->RestartNode(s);  // Relaunches the loop bound to the new object.
  rt_->loop(id)->Post([s]() { s->Start(); });  // Recovers, then serves.
  storage_[id] = std::move(storage);
  servers_[id] = std::move(server);
  dead_.erase(id);
  restarts_++;
  return true;
}

bool RtCluster::server_alive(NodeId id) const {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  return servers_.count(id) > 0 && dead_.count(id) == 0;
}

size_t RtCluster::restarts() const {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  return restarts_;
}

size_t RtCluster::recovered_log_entries() const {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  return recovered_log_entries_;
}

size_t RtCluster::recovered_pending() const {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  return recovered_pending_;
}

bool RtCluster::WaitUntilServing(int timeout_ms) {
  // Probe serving() on each server's own loop thread; the probe state is
  // shared_ptr-owned so a timed-out waiter can leave while late probes
  // still complete.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<std::pair<NodeId, core::CarouselServer*>> live;
    {
      std::lock_guard<std::mutex> lk(lifecycle_mu_);
      for (auto& [id, server] : servers_) live.emplace_back(id, server.get());
    }
    const size_t n = live.size();
    struct Probe {
      std::atomic<size_t> done{0};
      std::atomic<size_t> serving{0};
    };
    auto probe = std::make_shared<Probe>();
    for (auto& [id, s] : live) {
      rt_->loop(id)->Post([probe, s]() {
        if (s->serving()) probe->serving.fetch_add(1);
        probe->done.fetch_add(1);
      });
    }
    while (probe->done.load() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (probe->done.load() == n && probe->serving.load() == n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace carousel::harness
