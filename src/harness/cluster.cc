#include "harness/cluster.h"

namespace carousel::core {

Cluster::Cluster(Topology topology, CarouselOptions options,
                 sim::NetworkOptions net_options, uint64_t seed)
    : topology_(std::move(topology)),
      sim_(seed, net_options.controlled_scheduling),
      metrics_(options.metrics.enabled),
      wanrt_(&topology_, options.metrics.enabled) {
  directory_ = std::make_unique<Directory>(&topology_);
  // The batching config is the single switch benches flip; carry its
  // simulator-level half into the network options here.
  net_options.coalesce_deliveries |= options.batching.coalesce_deliveries;
  network_ = std::make_unique<sim::Network>(&sim_, &topology_, net_options);
  if (options.metrics.enabled) {
    wanrt_.set_retain_all(options.metrics.retain_per_txn);
    network_->set_delivery_observer(&wanrt_);
  }

  ClientId next_client_id = 0;
  for (const NodeInfo& info : topology_.nodes()) {
    if (info.is_client) {
      auto client = std::make_unique<CarouselClient>(
          info.id, info.dc, next_client_id++, directory_.get(), options,
          &traces_);
      client->set_metrics(&metrics_);
      if (options.metrics.enabled) client->set_wanrt(&wanrt_);
      network_->Register(client.get());
      client_ptrs_.push_back(client.get());
      clients_.push_back(std::move(client));
    } else {
      // The RNG fork order (network first, then servers in topology node
      // order) is part of the determinism contract: it must match the
      // pre-seam wiring bit for bit.
      auto server = std::make_unique<CarouselServer>(
          info, directory_.get(),
          runtime::NodeEnv{&sim_, &sim_, sim_.rng()->Fork()}, options,
          &traces_, &metrics_);
      network_->Register(server.get());
      servers_.emplace(info.id, std::move(server));
    }
  }
}

Cluster::~Cluster() = default;

void Cluster::Start() {
  for (auto& [id, server] : servers_) {
    // Timers armed directly from Start (heartbeats, election watchdogs)
    // must carry their owner's label for controlled scheduling.
    sim::Simulator::ScopedNode ctx(&sim_, id);
    server->Start();
  }
  // Settle until every bootstrap leader has committed its initial no-op
  // (up to one WAN roundtrip) and is serving, so measurements start from
  // a steady state.
  for (int rounds = 0; rounds < 1000; ++rounds) {
    bool all_serving = true;
    for (auto& [id, server] : servers_) {
      if (!server->serving()) all_serving = false;
    }
    if (all_serving && rounds > 0) break;
    sim_.RunFor(10 * kMicrosPerMilli);
  }
}

void Cluster::AttachHistory(check::HistoryRecorder* history) {
  for (CarouselClient* client : client_ptrs_) client->set_history(history);
  for (auto& [id, server] : servers_) {
    server->set_history(history);
    if (history != nullptr) server->mutable_store().EnableWriterLog();
  }
}

std::string Cluster::MetricsJson(int indent) const {
  std::string out = "{\n";
  out += "\"metrics\": " + metrics_.Snapshot(sim_.now()).ToJson(indent) + ",\n";
  out += "\"wanrt\": " + wanrt_.SnapshotJson(indent) + "\n";
  out += "}";
  return out;
}

CarouselServer* Cluster::LeaderOf(PartitionId p) {
  for (NodeId id : topology_.Replicas(p)) {
    CarouselServer* server = servers_.at(id).get();
    if (server->alive() && server->raft()->is_leader()) return server;
  }
  return nullptr;
}

}  // namespace carousel::core
