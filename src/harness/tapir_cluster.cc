#include "harness/tapir_cluster.h"

namespace carousel::tapir {

TapirCluster::TapirCluster(Topology topology, TapirOptions options,
                           sim::NetworkOptions net_options, uint64_t seed)
    : topology_(std::move(topology)), sim_(seed) {
  directory_ = std::make_unique<core::Directory>(&topology_);
  network_ = std::make_unique<sim::Network>(&sim_, &topology_, net_options);

  ClientId next_client_id = 0;
  for (const NodeInfo& info : topology_.nodes()) {
    if (info.is_client) {
      auto client = std::make_unique<TapirClient>(
          info.id, info.dc, next_client_id++, directory_.get(), options);
      network_->Register(client.get());
      client_ptrs_.push_back(client.get());
      clients_.push_back(std::move(client));
    } else {
      auto server = std::make_unique<TapirServer>(info, options.cost);
      network_->Register(server.get());
      servers_.emplace(info.id, std::move(server));
    }
  }
}

TapirCluster::~TapirCluster() = default;

}  // namespace carousel::tapir
