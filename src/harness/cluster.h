#ifndef CAROUSEL_HARNESS_CLUSTER_H_
#define CAROUSEL_HARNESS_CLUSTER_H_

#include <memory>
#include <vector>

#include "carousel/client.h"
#include "carousel/directory.h"
#include "carousel/options.h"
#include "carousel/server.h"
#include "common/topology.h"
#include "common/trace.h"
#include "obs/metrics.h"
#include "obs/wanrt.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace carousel::core {

/// Owns a complete simulated Carousel deployment: the simulator, network,
/// directory, one CarouselServer per partition replica, and one
/// CarouselClient per client slot in the topology. Tests, examples, and
/// benches build deployments exclusively through this class.
class Cluster {
 public:
  /// `topology` must already have partitions placed and clients added.
  Cluster(Topology topology, CarouselOptions options,
          sim::NetworkOptions net_options = {}, uint64_t seed = 1);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every server (replica 0 of each partition bootstraps as
  /// leader) and settles the initial heartbeats.
  void Start();

  sim::Simulator& sim() { return sim_; }
  sim::Network& network() { return *network_; }
  const Directory& directory() const { return *directory_; }
  const Topology& topology() const { return topology_; }

  CarouselServer* server(NodeId id) { return servers_.at(id).get(); }
  const std::vector<CarouselClient*>& clients() { return client_ptrs_; }
  CarouselClient* client(int index) { return client_ptrs_.at(index); }

  /// The current leader of a partition (by asking the replicas), or
  /// nullptr during an election.
  CarouselServer* LeaderOf(PartitionId p);

  /// Crashes / recovers a node by id (failure injection passthrough).
  void Crash(NodeId id) { network_->Crash(id); }
  void Recover(NodeId id) { network_->Recover(id); }

  /// The deployment-wide per-transaction phase recorder. Clients open
  /// traces, coordinators and participants stamp protocol phases, and the
  /// benches read the folded stats here.
  TraceCollector& traces() { return traces_; }
  const TraceCollector& traces() const { return traces_; }

  /// Attaches a verification history recorder to every client and server
  /// and enables the per-version writer log on every store. Call before
  /// running a workload; passing null detaches the recorder (the writer
  /// logs stay on).
  void AttachHistory(check::HistoryRecorder* history);

  /// The deployment-wide metrics registry (disabled — null handles — unless
  /// options.metrics.enabled).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The WANRT accountant; attached to the network as a delivery observer
  /// only when options.metrics.enabled.
  obs::WanrtLedger& wanrt() { return wanrt_; }
  const obs::WanrtLedger& wanrt() const { return wanrt_; }
  /// Combined observability snapshot (registry + WANRT stats) as JSON.
  std::string MetricsJson(int indent = 0) const;

 private:
  Topology topology_;
  sim::Simulator sim_;
  TraceCollector traces_;
  obs::MetricsRegistry metrics_;
  obs::WanrtLedger wanrt_;
  std::unique_ptr<Directory> directory_;
  std::unique_ptr<sim::Network> network_;
  std::unordered_map<NodeId, std::unique_ptr<CarouselServer>> servers_;
  std::vector<std::unique_ptr<CarouselClient>> clients_;
  std::vector<CarouselClient*> client_ptrs_;
};

}  // namespace carousel::core

#endif  // CAROUSEL_HARNESS_CLUSTER_H_
