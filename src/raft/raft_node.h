#ifndef CAROUSEL_RAFT_RAFT_NODE_H_
#define CAROUSEL_RAFT_RAFT_NODE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kv/pending_list.h"
#include "raft/messages.h"
#include "runtime/runtime.h"
#include "sim/message.h"

namespace carousel::raft {

/// Tuning for elections and heartbeats. Defaults suit a geo-distributed
/// deployment (timeouts well above the largest RTT in the paper's Table 1).
struct RaftOptions {
  SimTime election_timeout_min = 1'000'000;  // 1 s
  SimTime election_timeout_max = 2'000'000;  // 2 s
  SimTime heartbeat_interval = 200'000;      // 200 ms
  /// Proposals made within this window are coalesced into one
  /// AppendEntries per follower (micro-batching, as etcd does under
  /// load). An idle leader sends immediately.
  SimTime append_batch_interval = 200;  // 200 us
};

/// Role of a Raft member.
enum class RaftRole { kFollower, kCandidate, kLeader };

/// A single member of one Raft consensus group, driven entirely by timer
/// and message events through the runtime seam (it holds only a Clock and
/// a TimerQueue, so it runs under any backend). The hosting server wires
/// up message transport
/// (send_fn), applies committed payloads (apply_fn), and can attach
/// Carousel's pending-transaction list to granted votes
/// (vote_attachment_fn) and intercept leadership changes (leadership_fn) —
/// the hooks CPC's failure-handling protocol needs (paper §4.3.3).
///
/// Implemented from the Raft paper: randomized election timeouts, log
/// matching via (prev_index, prev_term) checks, and the restriction that a
/// leader only advances commit_index over entries of its own term.
/// Persistence is implicit: a crash/recover cycle keeps term, votedFor and
/// the log (a process pause with durable state, paper's fail-stop model).
class RaftNode {
 public:
  using SendFn = std::function<void(NodeId to, sim::MessagePtr msg)>;
  using ApplyFn = std::function<void(uint64_t index, const sim::MessagePtr&)>;
  using VoteAttachmentFn = std::function<std::vector<kv::PendingTxn>()>;
  /// Called when this node wins an election *and* has committed its no-op
  /// entry (so all prior-term entries are durable and applied). Receives
  /// the pending-transaction lists piggybacked on the granted votes (the
  /// caller's own list is not included; it has direct access).
  using LeadershipFn =
      std::function<void(uint64_t term,
                         std::vector<std::vector<kv::PendingTxn>> vote_lists)>;
  /// Called when leadership is lost (stepped down or crashed).
  using StepDownFn = std::function<void(uint64_t term)>;
  /// Called the instant this node becomes leader (before any request can
  /// be served); leadership_fn follows once the log is fully committed.
  using ElectedFn = std::function<void(uint64_t term)>;

  /// `rng` is moved in by value: each member owns an independent stream,
  /// forked by the harness in a deterministic order. `storage`, when
  /// non-null, makes the persistent state (term, votedFor, log, commit
  /// watermark) actually durable: every mutation is journaled before the
  /// message it protects is sent, and Start() restores + replays instead
  /// of bootstrapping when a previous life left state behind. Null keeps
  /// the in-memory model (the simulator's process-pause crashes).
  RaftNode(PartitionId group, NodeId self, std::vector<NodeId> members,
           runtime::Clock* clock, runtime::TimerQueue* timers,
           carousel::Rng rng, RaftOptions options,
           runtime::Storage* storage = nullptr);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  void set_send_fn(SendFn fn) { send_fn_ = std::move(fn); }
  void set_apply_fn(ApplyFn fn) { apply_fn_ = std::move(fn); }
  void set_vote_attachment_fn(VoteAttachmentFn fn) {
    vote_attachment_fn_ = std::move(fn);
  }
  void set_leadership_fn(LeadershipFn fn) { leadership_fn_ = std::move(fn); }
  void set_step_down_fn(StepDownFn fn) { step_down_fn_ = std::move(fn); }
  void set_elected_fn(ElectedFn fn) { elected_fn_ = std::move(fn); }
  /// When on, followers stamp the spans of entries covered by each
  /// successful AppendResponse (WANRT accounting of the ack leg). Off by
  /// default so the disabled-metrics hot path does no span work.
  void set_span_tracking(bool on) { span_tracking_ = on; }

  /// Starts timers. If `bootstrap_as_leader` the node assumes leadership
  /// of term 1 immediately (used at cluster startup to avoid an initial
  /// election storm; all members must be started consistently). When
  /// durable storage holds a previous life's state, the flag is ignored:
  /// the node restores term/votedFor/log, replays the committed prefix
  /// through apply_fn, and rejoins as a follower — claiming a stale term-1
  /// leadership after a restart would fork history.
  void Start(bool bootstrap_as_leader);

  /// True if Start() restored state from durable storage.
  bool recovered() const { return recovered_; }

  /// Feeds a Raft protocol message from peer `from`.
  void HandleMessage(NodeId from, const sim::MessagePtr& msg);

  /// Appends `payload` to the replicated log. Only valid on the leader;
  /// returns the assigned log index. The payload is applied (via apply_fn,
  /// on every live member) once committed.
  Result<uint64_t> Propose(sim::MessagePtr payload);

  /// ---- Crash/recovery (driven by the hosting server) ----
  void OnCrash();
  void OnRecover();

  /// ---- Introspection ----
  bool is_leader() const { return role_ == RaftRole::kLeader && running_; }
  RaftRole role() const { return role_; }
  uint64_t term() const { return term_; }
  /// Best known leader (from AppendEntries), or kInvalidNode.
  NodeId leader_hint() const { return leader_hint_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_log_index() const { return log_.size(); }
  const std::vector<LogEntry>& log() const { return log_; }
  PartitionId group() const { return group_; }
  NodeId self() const { return self_; }
  const std::vector<NodeId>& members() const { return members_; }
  int quorum_size() const { return static_cast<int>(members_.size()) / 2 + 1; }
  /// Times this node assumed leadership (bootstrap included); for metrics.
  uint64_t elections_won() const { return elections_won_; }
  /// Payloads proposed on this node while leader; for metrics.
  uint64_t proposals() const { return proposals_; }

 private:
  void BecomeFollower(uint64_t term);
  void BecomeCandidate();
  void BecomeLeader();
  void ResetElectionTimer();
  void ScheduleHeartbeat();
  void BroadcastAppendEntries();
  /// Sends pending (unsent) entries to every follower.
  void FlushAppends();
  void SendAppendEntries(NodeId peer);
  void AdvanceCommit();
  void ApplyCommitted();
  void MaybeFinishLeaderInit();

  void HandleRequestVote(NodeId from, const RequestVoteMsg& msg);
  void HandleVoteResponse(NodeId from, const VoteResponseMsg& msg);
  void HandleAppendEntries(NodeId from, const AppendEntriesMsg& msg);
  void HandleAppendResponse(NodeId from, const AppendResponseMsg& msg);

  /// Journals (term_, voted_for_) when storage is attached; call after
  /// every hard-state mutation, before the message it protects is sent.
  void PersistHardState();
  /// Journals log entry `index` (which implicitly truncates any persisted
  /// suffix at >= index).
  void PersistEntry(uint64_t index);
  void PersistCommitIndex();

  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  /// Index of `peer` in members_ (for next_index_/match_index_ slots).
  int SlotOf(NodeId peer) const;
  int SelfSlot() const;
  /// log index is 1-based; log_[i-1] is entry i.
  const LogEntry& EntryAt(uint64_t index) const { return log_[index - 1]; }

  PartitionId group_;
  NodeId self_;
  std::vector<NodeId> members_;
  runtime::Clock* clock_;
  runtime::TimerQueue* timers_;
  RaftOptions options_;
  carousel::Rng rng_;
  runtime::Storage* storage_;
  bool recovered_ = false;

  SendFn send_fn_;
  ApplyFn apply_fn_;
  VoteAttachmentFn vote_attachment_fn_;
  LeadershipFn leadership_fn_;
  StepDownFn step_down_fn_;
  ElectedFn elected_fn_;

  // Persistent state.
  uint64_t term_ = 0;
  NodeId voted_for_ = kInvalidNode;
  std::vector<LogEntry> log_;

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  bool running_ = false;
  NodeId leader_hint_ = kInvalidNode;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  uint64_t election_timer_gen_ = 0;
  uint64_t heartbeat_timer_gen_ = 0;
  SimTime last_flush_ = -1'000'000;
  bool flush_scheduled_ = false;
  bool span_tracking_ = false;
  uint64_t elections_won_ = 0;
  uint64_t proposals_ = 0;

  // Candidate state.
  int votes_received_ = 0;
  std::vector<std::vector<kv::PendingTxn>> vote_lists_;

  // Leader state.
  std::vector<uint64_t> next_index_;   // per member slot
  std::vector<uint64_t> match_index_;  // per member slot
  /// Index of the no-op appended on election; leadership_fn fires when it
  /// commits.
  uint64_t leader_init_index_ = 0;
  bool leader_init_done_ = false;
};

}  // namespace carousel::raft

#endif  // CAROUSEL_RAFT_RAFT_NODE_H_
