#ifndef CAROUSEL_RAFT_MESSAGES_H_
#define CAROUSEL_RAFT_MESSAGES_H_

#include <vector>

#include "common/types.h"
#include "kv/pending_list.h"
#include "sim/message.h"

namespace carousel::raft {

/// One replicated log slot: the leader's term when appended plus an opaque
/// payload (a sim::Message subclass defined by the layer above Raft).
struct LogEntry {
  uint64_t term = 0;
  sim::MessagePtr payload;
};

/// No-op entry a new leader appends to commit entries from prior terms
/// (Raft §5.4.2 commit rule) and to detect when its log is fully
/// replicated.
struct NoopPayload final : sim::Message {
  int type() const override { return sim::kLogNoop; }
  size_t SizeBytes() const override { return 8; }
};

/// Approximate wire size of a pending-transaction list entry, for vote
/// message accounting.
size_t PendingTxnWireSize(const kv::PendingTxn& txn);

struct RequestVoteMsg final : sim::Message {
  PartitionId group = kInvalidPartition;
  uint64_t term = 0;
  NodeId candidate = kInvalidNode;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;

  int type() const override { return sim::kRaftRequestVote; }
  size_t SizeBytes() const override { return 40; }
};

/// Vote response. Carousel extension (paper §4.3.3 step 1): when the vote
/// is granted, the voter piggybacks its pending-transaction list so the
/// new leader can reconstruct fast-path prepare decisions.
struct VoteResponseMsg final : sim::Message {
  PartitionId group = kInvalidPartition;
  uint64_t term = 0;
  bool granted = false;
  NodeId voter = kInvalidNode;
  std::vector<kv::PendingTxn> pending_list;

  int type() const override { return sim::kRaftVoteResponse; }
  size_t SizeBytes() const override {
    size_t sz = 24;
    for (const auto& txn : pending_list) sz += PendingTxnWireSize(txn);
    return sz;
  }
};

struct AppendEntriesMsg final : sim::Message {
  PartitionId group = kInvalidPartition;
  uint64_t term = 0;
  NodeId leader = kInvalidNode;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  uint64_t leader_commit = 0;
  std::vector<LogEntry> entries;

  int type() const override { return sim::kRaftAppendEntries; }
  size_t SizeBytes() const override {
    size_t sz = 48;
    for (const auto& e : entries) {
      // WireSize: payloads are shared with the log and re-measured on
      // every retransmission; never re-walk their key lists.
      sz += 16 + (e.payload ? e.payload->WireSize() : 0);
    }
    return sz;
  }
  /// WANRT accounting: an append is attributed to every transaction whose
  /// log payload it carries, so replication legs count toward those
  /// transactions' causal hop chains.
  void CollectSpans(std::vector<sim::WanSpan>* out) const override {
    for (const auto& e : entries) {
      if (e.payload) e.payload->CollectSpans(out);
    }
  }
};

struct AppendResponseMsg final : sim::Message {
  PartitionId group = kInvalidPartition;
  uint64_t term = 0;
  bool success = false;
  NodeId follower = kInvalidNode;
  /// On success: highest index known replicated on the follower. On
  /// failure: a hint for the leader's next_index backoff.
  uint64_t match_index = 0;
  /// WANRT accounting only (zero wire bytes): spans of the transactions
  /// whose entries this ack covers, stamped by the follower when span
  /// tracking is on, so the ack leg of a replication round is attributed
  /// to the transactions it makes durable.
  std::vector<sim::WanSpan> wan_spans;

  int type() const override { return sim::kRaftAppendResponse; }
  size_t SizeBytes() const override { return 32; }
  void CollectSpans(std::vector<sim::WanSpan>* out) const override {
    out->insert(out->end(), wan_spans.begin(), wan_spans.end());
  }
};

}  // namespace carousel::raft

#endif  // CAROUSEL_RAFT_MESSAGES_H_
