#include "raft/raft_node.h"

#include <algorithm>
#include <memory>

#include "runtime/arena.h"
#include "runtime/storage.h"

namespace carousel::raft {

size_t PendingTxnWireSize(const kv::PendingTxn& txn) {
  size_t sz = 24;  // tid + term
  // The wire codec writes one version word per read *key* (not per
  // read_versions entry — the map dedupes duplicate keys), so charge
  // 4 (length) + key + 8 (version) per read key to match it.
  for (const auto& k : txn.read_keys) sz += k.size() + 12;
  for (const auto& k : txn.write_keys) sz += k.size() + 4;
  return sz;
}

RaftNode::RaftNode(PartitionId group, NodeId self, std::vector<NodeId> members,
                   runtime::Clock* clock, runtime::TimerQueue* timers,
                   carousel::Rng rng, RaftOptions options,
                   runtime::Storage* storage)
    : group_(group),
      self_(self),
      members_(std::move(members)),
      clock_(clock),
      timers_(timers),
      options_(options),
      rng_(std::move(rng)),
      storage_(storage) {
  next_index_.assign(members_.size(), 1);
  match_index_.assign(members_.size(), 0);
}

void RaftNode::Start(bool bootstrap_as_leader) {
  running_ = true;
  runtime::DurableNodeState durable;
  if (storage_ != nullptr && storage_->Load(&durable) && !durable.empty()) {
    // Restart of a node that lived before: restore the persistent state
    // and replay the committed prefix through apply_fn so the hosting
    // server rebuilds its decision/prepare state, then rejoin as a
    // follower. bootstrap_as_leader is deliberately ignored — a restarted
    // replica 0 grabbing term-1 leadership again would fork history.
    recovered_ = true;
    term_ = durable.term;
    voted_for_ = durable.voted_for;
    log_.clear();
    log_.reserve(durable.log.size());
    for (auto& entry : durable.log) {
      log_.push_back(LogEntry{entry.term, entry.payload});
    }
    commit_index_ = std::min<uint64_t>(durable.commit_index, log_.size());
    ApplyCommitted();
    BecomeFollower(term_);
    return;
  }
  // Consistent bootstrap: the whole group starts in term 1 with replica 0
  // as leader, so no startup election (and no term skew visible to CPC's
  // up-to-date check) occurs.
  term_ = 1;
  PersistHardState();
  if (bootstrap_as_leader) {
    BecomeLeader();
  } else {
    BecomeFollower(term_);
  }
}

void RaftNode::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  if (!running_) return;
  switch (msg->type()) {
    case sim::kRaftRequestVote:
      HandleRequestVote(from, sim::As<RequestVoteMsg>(*msg));
      break;
    case sim::kRaftVoteResponse:
      HandleVoteResponse(from, sim::As<VoteResponseMsg>(*msg));
      break;
    case sim::kRaftAppendEntries:
      HandleAppendEntries(from, sim::As<AppendEntriesMsg>(*msg));
      break;
    case sim::kRaftAppendResponse:
      HandleAppendResponse(from, sim::As<AppendResponseMsg>(*msg));
      break;
    default:
      break;
  }
}

Result<uint64_t> RaftNode::Propose(sim::MessagePtr payload) {
  if (!is_leader()) {
    return Status::NotLeader("propose on non-leader (group " +
                             std::to_string(group_) + ")");
  }
  log_.push_back(LogEntry{term_, std::move(payload)});
  const uint64_t index = log_.size();
  PersistEntry(index);
  proposals_++;
  match_index_[/*self slot*/ SelfSlot()] = index;
  // Micro-batching: an idle leader replicates immediately; proposals that
  // arrive within append_batch_interval of the last send are coalesced
  // into one AppendEntries per follower.
  if (!flush_scheduled_) {
    const SimTime due = last_flush_ + options_.append_batch_interval;
    if (clock_->now() >= due) {
      FlushAppends();
    } else {
      flush_scheduled_ = true;
      const uint64_t gen = heartbeat_timer_gen_;
      timers_->ScheduleAt(due, [this, gen]() {
        flush_scheduled_ = false;
        if (!running_ || role_ != RaftRole::kLeader ||
            gen != heartbeat_timer_gen_) {
          return;
        }
        FlushAppends();
      });
    }
  }
  // Single-member groups commit immediately.
  AdvanceCommit();
  return index;
}

void RaftNode::FlushAppends() {
  last_flush_ = clock_->now();
  for (NodeId peer : members_) {
    if (peer == self_) continue;
    if (next_index_[SlotOf(peer)] <= last_log_index()) {
      SendAppendEntries(peer);
    }
  }
}

void RaftNode::OnCrash() {
  const bool was_leader = (role_ == RaftRole::kLeader);
  running_ = false;
  election_timer_gen_++;
  heartbeat_timer_gen_++;
  if (was_leader && step_down_fn_) step_down_fn_(term_);
}

void RaftNode::OnRecover() {
  running_ = true;
  role_ = RaftRole::kFollower;
  leader_hint_ = kInvalidNode;
  ResetElectionTimer();
}

void RaftNode::BecomeFollower(uint64_t term) {
  const bool was_leader = (role_ == RaftRole::kLeader);
  if (term > term_) {
    term_ = term;
    voted_for_ = kInvalidNode;
    PersistHardState();
  }
  role_ = RaftRole::kFollower;
  heartbeat_timer_gen_++;  // Stop heartbeats if we were leader.
  ResetElectionTimer();
  if (was_leader && step_down_fn_) step_down_fn_(term_);
}

void RaftNode::BecomeCandidate() {
  role_ = RaftRole::kCandidate;
  term_++;
  voted_for_ = self_;
  PersistHardState();  // Our own ballot must be durable before campaigning.
  votes_received_ = 1;  // Own vote.
  vote_lists_.clear();
  leader_hint_ = kInvalidNode;
  ResetElectionTimer();

  auto msg = runtime::MakeMessage<RequestVoteMsg>();
  msg->group = group_;
  msg->term = term_;
  msg->candidate = self_;
  msg->last_log_index = last_log_index();
  msg->last_log_term = LastLogTerm();
  for (NodeId peer : members_) {
    if (peer != self_) send_fn_(peer, msg);
  }
  // Single-node group: win immediately.
  if (votes_received_ >= quorum_size()) BecomeLeader();
}

void RaftNode::BecomeLeader() {
  role_ = RaftRole::kLeader;
  leader_hint_ = self_;
  elections_won_++;
  election_timer_gen_++;  // No election timeout while leading.
  if (elected_fn_) elected_fn_(term_);
  for (size_t i = 0; i < members_.size(); ++i) {
    next_index_[i] = last_log_index() + 1;
    match_index_[i] = 0;
  }
  match_index_[SelfSlot()] = last_log_index();

  // Append a no-op so entries from earlier terms become committable and we
  // can detect when the log is fully replicated (leader init).
  log_.push_back(LogEntry{term_, runtime::MakeMessage<NoopPayload>()});
  PersistEntry(log_.size());
  leader_init_index_ = log_.size();
  leader_init_done_ = false;
  match_index_[SelfSlot()] = log_.size();

  BroadcastAppendEntries();
  ScheduleHeartbeat();
  AdvanceCommit();
}

void RaftNode::ResetElectionTimer() {
  const uint64_t gen = ++election_timer_gen_;
  const SimTime timeout =
      options_.election_timeout_min +
      rng_.UniformInt(0, options_.election_timeout_max -
                             options_.election_timeout_min);
  timers_->Schedule(timeout, [this, gen]() {
    if (!running_ || gen != election_timer_gen_) return;
    if (role_ != RaftRole::kLeader) BecomeCandidate();
  });
}

void RaftNode::ScheduleHeartbeat() {
  const uint64_t gen = ++heartbeat_timer_gen_;
  timers_->Schedule(options_.heartbeat_interval, [this, gen]() {
    if (!running_ || gen != heartbeat_timer_gen_ ||
        role_ != RaftRole::kLeader) {
      return;
    }
    BroadcastAppendEntries();
    ScheduleHeartbeat();
  });
}

void RaftNode::BroadcastAppendEntries() {
  for (NodeId peer : members_) {
    if (peer != self_) SendAppendEntries(peer);
  }
}

void RaftNode::SendAppendEntries(NodeId peer) {
  const int slot = SlotOf(peer);
  auto msg = runtime::MakeMessage<AppendEntriesMsg>();
  msg->group = group_;
  msg->term = term_;
  msg->leader = self_;
  msg->leader_commit = commit_index_;
  const uint64_t next = next_index_[slot];
  msg->prev_log_index = next - 1;
  msg->prev_log_term =
      msg->prev_log_index == 0 ? 0 : EntryAt(msg->prev_log_index).term;
  for (uint64_t i = next; i <= last_log_index(); ++i) {
    msg->entries.push_back(EntryAt(i));
  }
  // Pipelining: optimistically advance next_index so back-to-back
  // proposals do not retransmit the in-flight suffix (the network
  // preserves per-pair FIFO order; a rejection resets next_index via the
  // follower's hint).
  next_index_[slot] = last_log_index() + 1;
  send_fn_(peer, std::move(msg));
}

void RaftNode::HandleRequestVote(NodeId from, const RequestVoteMsg& msg) {
  if (msg.term > term_) BecomeFollower(msg.term);

  auto reply = runtime::MakeMessage<VoteResponseMsg>();
  reply->group = group_;
  reply->term = term_;
  reply->voter = self_;
  reply->granted = false;

  const bool log_ok =
      msg.last_log_term > LastLogTerm() ||
      (msg.last_log_term == LastLogTerm() &&
       msg.last_log_index >= last_log_index());
  if (msg.term == term_ &&
      (voted_for_ == kInvalidNode || voted_for_ == msg.candidate) && log_ok) {
    voted_for_ = msg.candidate;
    PersistHardState();  // The vote must be durable before the reply leaves.
    reply->granted = true;
    // Carousel extension: piggyback our pending-transaction list.
    if (vote_attachment_fn_) reply->pending_list = vote_attachment_fn_();
    ResetElectionTimer();
  }
  send_fn_(from, std::move(reply));
}

void RaftNode::HandleVoteResponse(NodeId from, const VoteResponseMsg& msg) {
  (void)from;
  if (msg.term > term_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != RaftRole::kCandidate || msg.term != term_ || !msg.granted) {
    return;
  }
  votes_received_++;
  vote_lists_.push_back(msg.pending_list);
  if (votes_received_ >= quorum_size()) BecomeLeader();
}

void RaftNode::HandleAppendEntries(NodeId from, const AppendEntriesMsg& msg) {
  auto reply = runtime::MakeMessage<AppendResponseMsg>();
  reply->group = group_;
  reply->follower = self_;

  if (msg.term > term_ ||
      (msg.term == term_ && role_ != RaftRole::kFollower)) {
    BecomeFollower(msg.term);
  }
  if (msg.term < term_) {
    reply->term = term_;
    reply->success = false;
    reply->match_index = 0;
    send_fn_(from, std::move(reply));
    return;
  }

  // Valid leader for our term.
  leader_hint_ = msg.leader;
  ResetElectionTimer();
  reply->term = term_;

  // Log consistency check.
  if (msg.prev_log_index > last_log_index() ||
      (msg.prev_log_index > 0 &&
       EntryAt(msg.prev_log_index).term != msg.prev_log_term)) {
    reply->success = false;
    // Backoff hint: retry from our log end (or below the conflict).
    reply->match_index =
        std::min<uint64_t>(last_log_index(),
                           msg.prev_log_index == 0 ? 0 : msg.prev_log_index - 1);
    send_fn_(from, std::move(reply));
    return;
  }

  // Append / overwrite entries.
  uint64_t index = msg.prev_log_index;
  for (const LogEntry& entry : msg.entries) {
    index++;
    if (index <= last_log_index()) {
      if (EntryAt(index).term != entry.term) {
        log_.resize(index - 1);  // Delete conflicting suffix.
        log_.push_back(entry);
        PersistEntry(index);  // Journaled re-append truncates the suffix too.
      }
    } else {
      log_.push_back(entry);
      PersistEntry(index);
    }
  }

  if (msg.leader_commit > commit_index_) {
    commit_index_ = std::min<uint64_t>(msg.leader_commit, last_log_index());
    PersistCommitIndex();
    ApplyCommitted();
  }

  reply->success = true;
  reply->match_index = msg.prev_log_index + msg.entries.size();
  // WANRT accounting: the ack that lets the leader commit entry E is part
  // of E's causal chain; stamp the covered entries' spans onto it.
  if (span_tracking_) {
    for (const LogEntry& entry : msg.entries) {
      if (entry.payload) entry.payload->CollectSpans(&reply->wan_spans);
    }
  }
  send_fn_(from, std::move(reply));
}

void RaftNode::HandleAppendResponse(NodeId from, const AppendResponseMsg& msg) {
  if (msg.term > term_) {
    BecomeFollower(msg.term);
    return;
  }
  if (role_ != RaftRole::kLeader || msg.term != term_) return;

  const int slot = SlotOf(from);
  if (msg.success) {
    match_index_[slot] = std::max(match_index_[slot], msg.match_index);
    // Do not rewind the (optimistically advanced) next_index on acks for
    // older in-flight sends.
    next_index_[slot] = std::max(next_index_[slot], msg.match_index + 1);
    AdvanceCommit();
    // Stream any remaining entries.
    if (next_index_[slot] <= last_log_index()) SendAppendEntries(from);
  } else {
    // Rewind to the follower's hint and retransmit from there.
    next_index_[slot] = std::max<uint64_t>(
        1, std::min<uint64_t>(next_index_[slot], msg.match_index + 1));
    SendAppendEntries(from);
  }
}

void RaftNode::AdvanceCommit() {
  if (role_ != RaftRole::kLeader) return;
  for (uint64_t n = last_log_index(); n > commit_index_; --n) {
    if (EntryAt(n).term != term_) break;  // Only commit own-term entries.
    int replicated = 0;
    for (uint64_t m : match_index_) {
      if (m >= n) replicated++;
    }
    if (replicated >= quorum_size()) {
      commit_index_ = n;
      PersistCommitIndex();
      ApplyCommitted();
      break;
    }
  }
  MaybeFinishLeaderInit();
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    last_applied_++;
    if (apply_fn_) apply_fn_(last_applied_, EntryAt(last_applied_).payload);
  }
  MaybeFinishLeaderInit();
}

void RaftNode::MaybeFinishLeaderInit() {
  if (role_ != RaftRole::kLeader || leader_init_done_ ||
      commit_index_ < leader_init_index_) {
    return;
  }
  leader_init_done_ = true;
  if (leadership_fn_) leadership_fn_(term_, vote_lists_);
  vote_lists_.clear();
}

void RaftNode::PersistHardState() {
  if (storage_ != nullptr) storage_->PersistHardState(term_, voted_for_);
}

void RaftNode::PersistEntry(uint64_t index) {
  if (storage_ != nullptr) {
    storage_->PersistLogEntry(index, EntryAt(index).term,
                              EntryAt(index).payload);
  }
}

void RaftNode::PersistCommitIndex() {
  if (storage_ != nullptr) storage_->PersistCommitIndex(commit_index_);
}

int RaftNode::SlotOf(NodeId peer) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == peer) return static_cast<int>(i);
  }
  return 0;  // Unreachable for well-formed groups.
}

int RaftNode::SelfSlot() const { return SlotOf(self_); }

}  // namespace carousel::raft
