#include "tapir/client.h"

#include <memory>

#include "runtime/arena.h"
#include <utility>


namespace carousel::tapir {

TapirClient::TapirClient(NodeId id, DcId dc, ClientId client_id,
                         const core::Directory* directory,
                         const TapirOptions& options)
    : runtime::Endpoint(id, dc),
      client_id_(client_id),
      directory_(directory),
      options_(options) {}

TxnId TapirClient::Begin() { return TxnId{client_id_, ++next_counter_}; }

int TapirClient::FaultThresholdFor(PartitionId p) const {
  return (static_cast<int>(directory_->Replicas(p).size()) - 1) / 2;
}

int TapirClient::SupermajorityFor(PartitionId p) const {
  const int f = FaultThresholdFor(p);
  return (3 * f + 1) / 2 + 1;
}

NodeId TapirClient::ClosestReplica(PartitionId p) const {
  const Topology& topo = directory_->topology();
  NodeId best = kInvalidNode;
  SimTime best_rtt = 0;
  for (NodeId replica : directory_->Replicas(p)) {
    const SimTime rtt = topo.RttMicros(dc(), topo.DcOf(replica));
    if (best == kInvalidNode || rtt < best_rtt) {
      best = replica;
      best_rtt = rtt;
    }
  }
  return best;
}

bool TapirClient::ConflictsWithInflight(const KeyList& reads,
                                        const KeyList& writes) const {
  for (const auto& [tid, keys] : blocked_keys_) {
    for (const Key& k : reads) {
      if (keys.count(k) > 0) return true;
    }
    for (const Key& k : writes) {
      if (keys.count(k) > 0) return true;
    }
  }
  return false;
}

void TapirClient::Read(const TxnId& tid, KeyList reads, KeyList writes,
                       ReadCallback callback) {
  if (ConflictsWithInflight(reads, writes)) {
    start_queue_.push_back(
        QueuedStart{tid, std::move(reads), std::move(writes),
                    std::move(callback)});
    return;
  }
  ActiveTxn& txn = txns_[tid];
  txn.tid = tid;
  txn.read_cb = std::move(callback);
  for (Key& k : reads) {
    txn.all_keys.insert(k);
    txn.keys[directory_->PartitionFor(k)].reads.push_back(std::move(k));
  }
  for (Key& k : writes) {
    txn.all_keys.insert(k);
    txn.keys[directory_->PartitionFor(k)].writes.push_back(std::move(k));
  }
  StartReads(txn);
}

void TapirClient::StartReads(ActiveTxn& txn) {
  for (const auto& [p, rw] : txn.keys) {
    if (rw.reads.empty()) continue;
    txn.awaiting_data.insert(p);
  }
  if (txn.awaiting_data.empty()) {
    txn.reads_done = true;
    if (txn.read_cb) {
      ReadCallback cb = std::move(txn.read_cb);
      cb(Status::OK(), txn.results);
    }
    return;
  }
  for (const auto& [p, rw] : txn.keys) {
    if (rw.reads.empty()) continue;
    auto msg = runtime::MakeMessage<TapirReadMsg>();
    msg->tid = txn.tid;
    msg->partition = p;
    msg->client = id();
    msg->keys = rw.reads;
    Send(ClosestReplica(p), std::move(msg));
  }
}

void TapirClient::Write(const TxnId& tid, Key key, Value value) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  it->second.writes[std::move(key)] = std::move(value);
}

void TapirClient::Commit(const TxnId& tid, CommitCallback callback) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) {
    callback(Status::InvalidArgument("unknown transaction"));
    return;
  }
  ActiveTxn& txn = it->second;
  txn.commit_cb = std::move(callback);
  txn.preparing = true;
  // Proposed commit timestamp: client clock with client-id tiebreak.
  txn.timestamp =
      static_cast<uint64_t>(now()) * 1024 +
      static_cast<uint64_t>(client_id_ % 1024);

  for (const auto& [p, rw] : txn.keys) {
    auto msg = runtime::MakeMessage<TapirPrepareMsg>();
    msg->tid = tid;
    msg->partition = p;
    msg->client = id();
    msg->timestamp = txn.timestamp;
    for (const Key& k : rw.reads) {
      auto v = txn.versions_used.find(k);
      msg->read_versions[k] = v == txn.versions_used.end() ? 0 : v->second;
    }
    for (const Key& k : rw.writes) {
      auto w = txn.writes.find(k);
      if (w != txn.writes.end()) msg->writes[k] = w->second;
    }
    for (NodeId replica : directory_->Replicas(p)) {
      Send(replica, msg);
    }
    txn.parts[p];  // Materialize the vote tracker.
  }
  if (txn.parts.empty()) {
    Decide(txn, true);  // Touched nothing: trivially committed.
    return;
  }
  ArmFastPathTimer(tid);
}

void TapirClient::Abort(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  ActiveTxn& txn = it->second;
  if (txn.preparing && !txn.decided) {
    Decide(txn, false);
    return;
  }
  txns_.erase(it);
}

void TapirClient::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  (void)from;
  switch (msg->type()) {
    case sim::kTapirReadReply: {
      const auto& m = sim::As<TapirReadReplyMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end()) return;
      ActiveTxn& txn = it->second;
      if (txn.awaiting_data.erase(m.partition) == 0) return;
      for (const auto& [k, vv] : m.reads) {
        txn.results[k] = vv;
        txn.versions_used[k] = vv.version;
      }
      if (!txn.reads_done && txn.awaiting_data.empty()) {
        txn.reads_done = true;
        if (txn.read_cb) {
          ReadCallback cb = std::move(txn.read_cb);
          cb(Status::OK(), txn.results);
        }
      }
      return;
    }
    case sim::kTapirPrepareReply: {
      const auto& m = sim::As<TapirPrepareReplyMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end() || !it->second.preparing) return;
      ActiveTxn& txn = it->second;
      if (txn.decided) return;
      PartPrepare& part = txn.parts[m.partition];
      part.votes[m.replica] = m.vote;
      EvaluatePartition(txn, m.partition);
      MaybeDecide(txn);
      return;
    }
    case sim::kTapirFinalizeReply: {
      const auto& m = sim::As<TapirFinalizeReplyMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end() || it->second.decided) return;
      ActiveTxn& txn = it->second;
      PartPrepare& part = txn.parts[m.partition];
      if (!part.finalizing || part.decided) return;
      part.finalize_acks++;
      if (part.finalize_acks >= FaultThresholdFor(m.partition) + 1) {
        part.decided = true;
        part.ok = true;  // Only OK results are finalized; others abort.
      }
      MaybeDecide(txn);
      return;
    }
    case sim::kTapirDecideAck: {
      const auto& m = sim::As<TapirDecideAckMsg>(*msg);
      auto it = txns_.find(m.tid);
      if (it == txns_.end() || !it->second.decided) return;
      it->second.parts[m.partition].decide_acks++;
      FinishIfFullyCommitted(m.tid);
      return;
    }
    default:
      return;
  }
}

void TapirClient::EvaluatePartition(ActiveTxn& txn, PartitionId p) {
  PartPrepare& part = txn.parts[p];
  if (part.decided || part.finalizing) return;

  int ok = 0;
  int abort = 0;
  for (const auto& [node, vote] : part.votes) {
    if (vote == Vote::kOk) ok++;
    if (vote == Vote::kAbort) abort++;
  }
  // A single ABORT (stale read) is final: some replica has already
  // committed a conflicting write.
  if (abort > 0) {
    part.decided = true;
    part.ok = false;
    return;
  }
  if (ok >= SupermajorityFor(p)) {
    part.decided = true;  // Fast path.
    part.ok = true;
    return;
  }
  const int replicas = static_cast<int>(directory_->Replicas(p).size());
  if (options_.slow_path_waits_for_timeout) {
    return;  // The fast-path timeout drives the slow-path fallback.
  }
  if (static_cast<int>(part.votes.size()) == replicas) {
    // Everyone answered and the fast quorum failed: take IR's slow path
    // immediately. A majority of OK can be finalized; anything less
    // aborts.
    if (ok >= FaultThresholdFor(p) + 1) {
      part.finalizing = true;
      slow_path_count_++;
      auto msg = runtime::MakeMessage<TapirFinalizeMsg>();
      msg->tid = txn.tid;
      msg->partition = p;
      msg->vote = Vote::kOk;
      for (NodeId replica : directory_->Replicas(p)) {
        Send(replica, msg);
      }
    } else {
      part.decided = true;
      part.ok = false;
    }
  }
}

void TapirClient::MaybeDecide(ActiveTxn& txn) {
  if (txn.decided) return;
  bool all_ok = true;
  for (auto& [p, part] : txn.parts) {
    if (part.decided && !part.ok) {
      Decide(txn, false);  // Any partition abort aborts the transaction.
      return;
    }
    if (!part.decided) all_ok = false;
  }
  if (all_ok) Decide(txn, true);
}

void TapirClient::Decide(ActiveTxn& txn, bool commit) {
  txn.decided = true;
  txn.committed = commit;
  txn.timer_gen++;

  for (const auto& [p, rw] : txn.keys) {
    auto msg = runtime::MakeMessage<TapirDecideMsg>();
    msg->tid = txn.tid;
    msg->partition = p;
    msg->commit = commit;
    msg->timestamp = txn.timestamp;
    if (commit) {
      for (const Key& k : rw.writes) {
        auto w = txn.writes.find(k);
        if (w != txn.writes.end()) msg->writes[k] = w->second;
      }
    }
    for (NodeId replica : directory_->Replicas(p)) {
      Send(replica, msg);
    }
  }

  // Block this client's conflicting transactions until fully committed.
  blocked_keys_[txn.tid] = txn.all_keys;

  // TAPIR reports the outcome to the application as soon as it decides.
  if (txn.commit_cb) {
    CommitCallback cb = std::move(txn.commit_cb);
    cb(commit ? Status::OK() : Status::Aborted("prepare failed"));
  }
  FinishIfFullyCommitted(txn.tid);
}

void TapirClient::FinishIfFullyCommitted(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  ActiveTxn& txn = it->second;
  if (!txn.decided) return;
  for (const auto& [p, rw] : txn.keys) {
    const int replicas = static_cast<int>(directory_->Replicas(p).size());
    if (txn.parts[p].decide_acks < replicas) return;
  }
  blocked_keys_.erase(tid);
  txns_.erase(it);
  DrainQueue();
}

void TapirClient::DrainQueue() {
  bool progressed = true;
  while (progressed && !start_queue_.empty()) {
    progressed = false;
    for (auto it = start_queue_.begin(); it != start_queue_.end(); ++it) {
      if (!ConflictsWithInflight(it->reads, it->writes)) {
        QueuedStart queued = std::move(*it);
        start_queue_.erase(it);
        Read(queued.tid, std::move(queued.reads), std::move(queued.writes),
             std::move(queued.callback));
        progressed = true;
        break;
      }
    }
  }
}

void TapirClient::ArmFastPathTimer(const TxnId& tid) {
  auto it = txns_.find(tid);
  if (it == txns_.end()) return;
  const uint64_t gen = it->second.timer_gen;
  Schedule(options_.fast_path_timeout, [this, tid, gen]() {
    if (!alive()) return;
    auto it = txns_.find(tid);
    if (it == txns_.end()) return;
    ActiveTxn& txn = it->second;
    if (txn.decided || gen != txn.timer_gen) return;
    // Fast path timed out: push every partition with a majority of
    // replies onto the slow path.
    for (auto& [p, part] : txn.parts) {
      if (part.decided || part.finalizing) continue;
      int ok = 0;
      for (const auto& [node, vote] : part.votes) {
        if (vote == Vote::kOk) ok++;
      }
      if (ok >= FaultThresholdFor(p) + 1) {
        part.finalizing = true;
        slow_path_count_++;
        auto msg = runtime::MakeMessage<TapirFinalizeMsg>();
        msg->tid = txn.tid;
        msg->partition = p;
        msg->vote = Vote::kOk;
        for (NodeId replica : directory_->Replicas(p)) {
          Send(replica, msg);
        }
      } else if (static_cast<int>(part.votes.size()) >=
                 FaultThresholdFor(p) + 1) {
        part.decided = true;
        part.ok = false;
      }
    }
    MaybeDecide(txn);
    if (!txn.decided) ArmFastPathTimer(tid);
  });
}

}  // namespace carousel::tapir
