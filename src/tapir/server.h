#ifndef CAROUSEL_TAPIR_SERVER_H_
#define CAROUSEL_TAPIR_SERVER_H_

#include <unordered_map>

#include "carousel/options.h"
#include "common/types.h"
#include "kv/pending_list.h"
#include "kv/versioned_store.h"
#include "runtime/dispatcher.h"
#include "runtime/endpoint.h"
#include "tapir/messages.h"

namespace carousel::tapir {

/// One TAPIR replica: an inconsistent-replication (IR) member plus the
/// TAPIR-OCC transaction store. Replicas are leaderless; the client acts
/// as the transaction coordinator. Implements the validation checks from
/// Zhang et al. (SOSP'15), reduced to version-based OCC:
///
///  * a read of a version that is no longer current votes ABORT (final);
///  * conflicts with tentatively prepared transactions vote ABSTAIN
///    (the fast path then fails and the client falls back to IR's slow
///    path or aborts).
class TapirServer : public runtime::Endpoint {
 public:
  TapirServer(const NodeInfo& info, const core::ServerCostModel& cost);

  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override;
  SimTime ServiceCost(const sim::Message& msg) const override;

  const kv::VersionedStore& store() const { return store_; }
  size_t prepared_count() const { return prepared_.size(); }
  uint64_t committed_count() const { return committed_count_; }
  /// Message routing table (coverage tests).
  const runtime::Dispatcher& dispatcher() const { return dispatcher_; }

 private:
  struct PreparedTxn {
    uint64_t timestamp = 0;
    ReadVersionMap read_versions;
    WriteSet writes;
  };

  void HandleRead(NodeId from, const TapirReadMsg& msg);
  void HandlePrepare(NodeId from, const TapirPrepareMsg& msg);
  void HandleFinalize(NodeId from, const TapirFinalizeMsg& msg);
  void HandleDecide(NodeId from, const TapirDecideMsg& msg);
  Vote Validate(const TapirPrepareMsg& msg) const;
  void RemovePrepared(const TxnId& tid);

  PartitionId partition_;
  core::ServerCostModel cost_;
  runtime::Dispatcher dispatcher_;
  kv::VersionedStore store_;
  std::unordered_map<TxnId, PreparedTxn, TxnIdHash> prepared_;
  /// Per-key prepared reader/writer counts for O(keys) conflict checks.
  std::unordered_map<Key, int> prepared_readers_;
  std::unordered_map<Key, int> prepared_writers_;
  std::unordered_map<TxnId, bool, TxnIdHash> decided_;
  uint64_t committed_count_ = 0;
};

}  // namespace carousel::tapir

#endif  // CAROUSEL_TAPIR_SERVER_H_
