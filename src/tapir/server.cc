#include "tapir/server.h"

#include <memory>

#include "runtime/arena.h"

namespace carousel::tapir {

TapirServer::TapirServer(const NodeInfo& info,
                         const core::ServerCostModel& cost)
    : runtime::Endpoint(info.id, info.dc),
      partition_(info.partition),
      cost_(cost) {
  set_cores(cost.cores);
  dispatcher_.On<TapirReadMsg>([this](NodeId from, const TapirReadMsg& msg) {
    HandleRead(from, msg);
  });
  dispatcher_.On<TapirPrepareMsg>(
      [this](NodeId from, const TapirPrepareMsg& msg) {
        HandlePrepare(from, msg);
      });
  dispatcher_.On<TapirFinalizeMsg>(
      [this](NodeId from, const TapirFinalizeMsg& msg) {
        HandleFinalize(from, msg);
      });
  dispatcher_.On<TapirDecideMsg>(
      [this](NodeId from, const TapirDecideMsg& msg) {
        HandleDecide(from, msg);
      });
}

void TapirServer::HandleMessage(NodeId from, const sim::MessagePtr& msg) {
  dispatcher_.Dispatch(from, msg);
}

SimTime TapirServer::ServiceCost(const sim::Message& msg) const {
  const core::ServerCostModel& c = cost_;
  if (c.base == 0 && c.per_read_key == 0 && c.per_occ_key == 0 &&
      c.per_write_key == 0 && c.per_log_entry == 0) {
    return 0;
  }
  if (const auto* m = sim::TryAs<TapirReadMsg>(msg)) {
    return c.base + c.per_read_key * static_cast<SimTime>(m->keys.size());
  }
  if (const auto* m = sim::TryAs<TapirPrepareMsg>(msg)) {
    return c.base + c.per_occ_key * static_cast<SimTime>(
                                        m->read_versions.size() +
                                        m->writes.size());
  }
  if (const auto* m = sim::TryAs<TapirDecideMsg>(msg)) {
    return c.base + c.per_write_key * static_cast<SimTime>(m->writes.size());
  }
  return c.base;
}

void TapirServer::HandleRead(NodeId from, const TapirReadMsg& msg) {
  (void)from;
  auto reply = runtime::MakeMessage<TapirReadReplyMsg>();
  reply->tid = msg.tid;
  reply->partition = partition_;
  for (const Key& k : msg.keys) reply->reads[k] = store_.Get(k);
  Send(msg.client, std::move(reply));
}

Vote TapirServer::Validate(const TapirPrepareMsg& msg) const {
  // Stale reads are fatal: the value read has already been overwritten.
  for (const auto& [key, version] : msg.read_versions) {
    if (store_.GetVersion(key) != version) return Vote::kAbort;
  }
  // Conflicts with tentatively prepared transactions are transient.
  for (const auto& [key, version] : msg.read_versions) {
    if (prepared_writers_.count(key) > 0) return Vote::kAbstain;
  }
  for (const auto& [key, value] : msg.writes) {
    if (prepared_writers_.count(key) > 0) return Vote::kAbstain;
    if (prepared_readers_.count(key) > 0) return Vote::kAbstain;
  }
  return Vote::kOk;
}

void TapirServer::HandlePrepare(NodeId from, const TapirPrepareMsg& msg) {
  (void)from;
  auto reply = runtime::MakeMessage<TapirPrepareReplyMsg>();
  reply->tid = msg.tid;
  reply->partition = partition_;
  reply->replica = id();

  auto done = decided_.find(msg.tid);
  if (done != decided_.end()) {
    reply->vote = done->second ? Vote::kOk : Vote::kAbort;
  } else if (prepared_.count(msg.tid) > 0) {
    reply->vote = Vote::kOk;  // Duplicate prepare.
  } else {
    reply->vote = Validate(msg);
    if (reply->vote == Vote::kOk) {
      PreparedTxn txn;
      txn.timestamp = msg.timestamp;
      txn.read_versions = msg.read_versions;
      txn.writes = msg.writes;
      for (const auto& [k, v] : msg.read_versions) prepared_readers_[k]++;
      for (const auto& [k, v] : msg.writes) prepared_writers_[k]++;
      prepared_.emplace(msg.tid, std::move(txn));
    }
  }
  Send(msg.client, std::move(reply));
}

void TapirServer::HandleFinalize(NodeId from, const TapirFinalizeMsg& msg) {
  // IR slow path: persist the consensus result. A replica that had voted
  // differently adopts the finalized result.
  auto reply = runtime::MakeMessage<TapirFinalizeReplyMsg>();
  reply->tid = msg.tid;
  reply->partition = partition_;
  reply->replica = id();
  Send(from, std::move(reply));
}

void TapirServer::RemovePrepared(const TxnId& tid) {
  auto it = prepared_.find(tid);
  if (it == prepared_.end()) return;
  for (const auto& [k, v] : it->second.read_versions) {
    auto rit = prepared_readers_.find(k);
    if (rit != prepared_readers_.end() && --rit->second == 0) {
      prepared_readers_.erase(rit);
    }
  }
  for (const auto& [k, v] : it->second.writes) {
    auto wit = prepared_writers_.find(k);
    if (wit != prepared_writers_.end() && --wit->second == 0) {
      prepared_writers_.erase(wit);
    }
  }
  prepared_.erase(it);
}

void TapirServer::HandleDecide(NodeId from, const TapirDecideMsg& msg) {
  auto ack = runtime::MakeMessage<TapirDecideAckMsg>();
  ack->tid = msg.tid;
  ack->partition = partition_;
  ack->replica = id();

  if (decided_.count(msg.tid) == 0) {
    RemovePrepared(msg.tid);
    if (msg.commit) {
      for (const auto& [k, v] : msg.writes) store_.Apply(k, v);
      committed_count_++;
    }
    decided_[msg.tid] = msg.commit;
  }
  Send(from, std::move(ack));
}

}  // namespace carousel::tapir
