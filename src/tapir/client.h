#ifndef CAROUSEL_TAPIR_CLIENT_H_
#define CAROUSEL_TAPIR_CLIENT_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "carousel/directory.h"
#include "carousel/options.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/endpoint.h"
#include "tapir/messages.h"

namespace carousel::tapir {

/// TAPIR deployment knobs.
struct TapirOptions {
  /// How long the client waits for a fast (super)quorum of matching
  /// prepare results before falling back to IR's slow path. The paper
  /// (§6.3) attributes part of TAPIR's tail latency to this timeout.
  SimTime fast_path_timeout = 500'000;  // 500 ms
  /// The evaluated TAPIR implementation "waits for a fast path timeout
  /// before it begins its slow path" (paper §6.3) even when every reply
  /// has already arrived. Set false for a more charitable variant that
  /// starts the slow path as soon as the fast quorum is impossible.
  bool slow_path_waits_for_timeout = true;
  core::ServerCostModel cost;
};

/// TAPIR client: unlike Carousel, the *client* coordinates 2PC over
/// inconsistent replication (Zhang et al., SOSP'15). Reads go to the
/// closest replica; Prepare goes to every replica of each participant
/// partition and succeeds on the fast path with a supermajority of
/// matching votes; otherwise the client finalizes a majority result via
/// one more roundtrip (slow path) or aborts. The commit decision is
/// reported to the application immediately, but a transaction's keys stay
/// blocked for this client until every replica acknowledged the decision
/// (TAPIR forbids issuing a potentially conflicting transaction before the
/// previous one is fully committed — paper §6.3).
class TapirClient : public runtime::Endpoint {
 public:
  using ReadResults = std::map<Key, VersionedValue>;
  using ReadCallback = std::function<void(Status, const ReadResults&)>;
  using CommitCallback = std::function<void(Status)>;

  TapirClient(NodeId id, DcId dc, ClientId client_id,
              const core::Directory* directory, const TapirOptions& options);

  TxnId Begin();

  /// Starts the transaction: issues all reads concurrently (one batch per
  /// partition, to the closest replica). `writes` is the 2FI write-key
  /// hint used only for the same-client conflict-blocking rule. The call
  /// is queued if it conflicts with one of this client's not-yet-fully-
  /// committed transactions.
  void Read(const TxnId& tid, KeyList reads, KeyList writes,
            ReadCallback callback);

  void Write(const TxnId& tid, Key key, Value value);

  /// Runs TAPIR's prepare (fast path / slow path) across all participants
  /// and reports the outcome.
  void Commit(const TxnId& tid, CommitCallback callback);

  void Abort(const TxnId& tid);

  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override;

  /// Transactions that went through the IR slow path (for reporting).
  uint64_t slow_path_count() const { return slow_path_count_; }

 private:
  struct PartPrepare {
    std::map<NodeId, Vote> votes;
    bool decided = false;
    bool ok = false;
    bool finalizing = false;
    int finalize_acks = 0;
    int decide_acks = 0;
  };
  struct ActiveTxn {
    TxnId tid;
    std::map<PartitionId, core::RwKeys> keys;
    std::set<Key> all_keys;
    std::set<PartitionId> awaiting_data;
    ReadResults results;
    ReadVersionMap versions_used;
    ReadCallback read_cb;
    bool reads_done = false;
    WriteSet writes;
    CommitCallback commit_cb;
    bool preparing = false;
    uint64_t timestamp = 0;
    std::map<PartitionId, PartPrepare> parts;
    bool decided = false;
    bool committed = false;
    uint64_t timer_gen = 0;
  };
  struct QueuedStart {
    TxnId tid;
    KeyList reads;
    KeyList writes;
    ReadCallback callback;
  };

  void StartReads(ActiveTxn& txn);
  void EvaluatePartition(ActiveTxn& txn, PartitionId p);
  void MaybeDecide(ActiveTxn& txn);
  void Decide(ActiveTxn& txn, bool commit);
  void FinishIfFullyCommitted(const TxnId& tid);
  void ArmFastPathTimer(const TxnId& tid);
  NodeId ClosestReplica(PartitionId p) const;
  bool ConflictsWithInflight(const KeyList& reads, const KeyList& writes) const;
  void DrainQueue();
  int SupermajorityFor(PartitionId p) const;
  int FaultThresholdFor(PartitionId p) const;

  ClientId client_id_;
  const core::Directory* directory_;
  TapirOptions options_;
  uint64_t next_counter_ = 0;
  std::unordered_map<TxnId, ActiveTxn, TxnIdHash> txns_;
  /// Keys of decided transactions whose decide-acks are still incomplete.
  std::unordered_map<TxnId, std::set<Key>, TxnIdHash> blocked_keys_;
  std::deque<QueuedStart> start_queue_;
  uint64_t slow_path_count_ = 0;
};

}  // namespace carousel::tapir

#endif  // CAROUSEL_TAPIR_CLIENT_H_
