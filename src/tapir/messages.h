#ifndef CAROUSEL_TAPIR_MESSAGES_H_
#define CAROUSEL_TAPIR_MESSAGES_H_

#include <map>

#include "carousel/messages.h"  // byte-size helpers
#include "common/types.h"
#include "sim/message.h"

namespace carousel::tapir {

/// A replica's OCC validation outcome for a prepare (TAPIR's
/// PREPARE-OK / ABORT / ABSTAIN result set).
enum class Vote : int8_t {
  kOk = 0,      // No conflicts at this replica.
  kAbort = 1,   // The transaction read stale data; abort is final.
  kAbstain = 2  // Conflicts with another prepared transaction.
};

/// Client -> one (closest) replica: read a batch of keys of one partition.
struct TapirReadMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId client = kInvalidNode;
  KeyList keys;

  int type() const override { return sim::kTapirRead; }
  size_t SizeBytes() const override { return 32 + core::SizeOfKeys(keys); }
};

struct TapirReadReplyMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  std::map<Key, VersionedValue> reads;

  int type() const override { return sim::kTapirReadReply; }
  size_t SizeBytes() const override { return 24 + core::SizeOfReads(reads); }
};

/// Client -> every replica of a participant partition (IR consensus
/// operation): validate and tentatively prepare the transaction.
struct TapirPrepareMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId client = kInvalidNode;
  /// Proposed commit timestamp (client clock, tie-broken by client id).
  uint64_t timestamp = 0;
  ReadVersionMap read_versions;
  WriteSet writes;

  int type() const override { return sim::kTapirPrepare; }
  size_t SizeBytes() const override {
    return 40 + core::SizeOfVersions(read_versions) +
           core::SizeOfWrites(writes);
  }
};

struct TapirPrepareReplyMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId replica = kInvalidNode;
  Vote vote = Vote::kAbstain;

  int type() const override { return sim::kTapirPrepareReply; }
  size_t SizeBytes() const override { return 28; }
};

/// Client -> every replica (IR slow path): make the chosen prepare result
/// durable before acting on it.
struct TapirFinalizeMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  Vote vote = Vote::kAbstain;

  int type() const override { return sim::kTapirFinalize; }
  size_t SizeBytes() const override { return 28; }
};

struct TapirFinalizeReplyMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId replica = kInvalidNode;

  int type() const override { return sim::kTapirFinalizeReply; }
  size_t SizeBytes() const override { return 24; }
};

/// Client -> every replica: the commit/abort decision (inconsistent
/// operation; applied on receipt).
struct TapirDecideMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  bool commit = false;
  uint64_t timestamp = 0;
  WriteSet writes;

  int type() const override { return sim::kTapirDecide; }
  size_t SizeBytes() const override {
    return 32 + core::SizeOfWrites(writes);
  }
};

struct TapirDecideAckMsg final : sim::Message {
  TxnId tid;
  PartitionId partition = kInvalidPartition;
  NodeId replica = kInvalidNode;

  int type() const override { return sim::kTapirDecideAck; }
  size_t SizeBytes() const override { return 24; }
};

}  // namespace carousel::tapir

#endif  // CAROUSEL_TAPIR_MESSAGES_H_
