#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselClient;
using core::CarouselOptions;
using core::Cluster;

std::unique_ptr<Cluster> MakeCluster(CarouselOptions options,
                                     uint64_t seed = 41) {
  auto cluster = std::make_unique<Cluster>(SmallTopology(), options,
                                           sim::NetworkOptions{}, seed);
  cluster->Start();
  return cluster;
}

TEST(ClientTest, BeginAssignsUniqueMonotonicTxnIds) {
  auto cluster = MakeCluster(FastRaftOptions());
  CarouselClient* a = cluster->client(0);
  CarouselClient* b = cluster->client(1);
  const TxnId a1 = a->Begin();
  const TxnId a2 = a->Begin();
  const TxnId b1 = b->Begin();
  EXPECT_LT(a1, a2);
  EXPECT_EQ(a1.client, a2.client);
  EXPECT_NE(a1.client, b1.client);  // Client ids differ.
}

TEST(ClientTest, CommitWithoutReadAndPrepareFails) {
  auto cluster = MakeCluster(FastRaftOptions());
  Status result;
  cluster->client(0)->Commit(TxnId{0, 99}, [&](Status s) { result = s; });
  EXPECT_EQ(result.code(), StatusCode::kInvalidArgument);
}

TEST(ClientTest, WriteOnUnknownTxnIsIgnored) {
  auto cluster = MakeCluster(FastRaftOptions());
  cluster->client(0)->Write(TxnId{0, 99}, "k", "v");  // Must not crash.
  cluster->sim().RunFor(kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, "k").version, 0u);
}

TEST(ClientTest, UnwrittenWriteSetKeysKeepTheirValue) {
  auto cluster = MakeCluster(FastRaftOptions());
  ASSERT_TRUE(RunTxn(*cluster, 0, {}, {{"kept", "orig"}}).commit_status.ok());
  cluster->sim().RunFor(3 * kMicrosPerSecond);

  // Declare {kept, other} as write set but only write `other`.
  CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  auto out = std::make_shared<TxnOutcome>();
  client->ReadAndPrepare(tid, {}, {"kept", "other"},
                         [&, out](Status, const CarouselClient::ReadResults&) {
                           client->Write(tid, "other", "x");
                           client->Commit(tid, [out](Status s) {
                             out->commit_done = true;
                             out->commit_status = s;
                           });
                         });
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(out->commit_done);
  EXPECT_TRUE(out->commit_status.ok());
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, "kept").value, "orig");
  EXPECT_EQ(LeaderValue(*cluster, "kept").version, 1u);
  EXPECT_EQ(LeaderValue(*cluster, "other").value, "x");
}

TEST(ClientTest, RptCounterTracksRemotePartitionTransactions) {
  // 3 DCs, 3 partitions, replication 3 => every partition has a replica
  // in every DC, so everything is an LRT.
  auto all_local = MakeCluster(FastRaftOptions());
  TxnOutcome out = RunTxn(*all_local, 0, {"a"}, {});
  EXPECT_EQ(all_local->client(0)->rpt_count(), 0u);

  // 5 DCs, replication 3 => some partitions have no local replica.
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  topo.AddClient(0);
  Cluster cluster(std::move(topo), FastRaftOptions(), sim::NetworkOptions{}, 5);
  cluster.Start();
  // Partition 2 has replicas in DCs 2,3,4: remote from DC0.
  Key remote;
  for (int i = 0;; ++i) {
    remote = "r" + std::to_string(i);
    if (cluster.directory().PartitionFor(remote) == 2) break;
  }
  RunTxn(cluster, 0, {remote}, {});
  EXPECT_EQ(cluster.client(0)->rpt_count(), 1u);
}

TEST(ClientTest, AbortBeforeCommitIsIdempotent) {
  auto cluster = MakeCluster(FastRaftOptions());
  CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  client->ReadAndPrepare(tid, {"z"}, {"z"},
                         [&](Status, const CarouselClient::ReadResults&) {
                           client->Abort(tid);
                           client->Abort(tid);  // Second abort: no-op.
                         });
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, "z").version, 0u);
}

TEST(ClientTest, TimesOutWhenPartitionIsUnavailable) {
  CarouselOptions options = FastRaftOptions();
  options.client_retry_timeout = 300'000;
  auto cluster = MakeCluster(options);
  // Kill the whole consensus group of partition 1: no quorum, no leader.
  for (NodeId replica : cluster->topology().Replicas(1)) {
    cluster->Crash(replica);
  }
  Key key;
  for (int i = 0;; ++i) {
    key = "t" + std::to_string(i);
    if (cluster->directory().PartitionFor(key) == 1) break;
  }
  TxnOutcome out = RunTxn(*cluster, 0, {key}, {{key, "v"}},
                          /*timeout=*/120 * kMicrosPerSecond);
  ASSERT_TRUE(out.commit_done) << "expected a timeout completion";
  EXPECT_EQ(out.commit_status.code(), StatusCode::kTimedOut);
}

TEST(ClientTest, ConcurrentIndependentTxnsFromOneClient) {
  // The library supports multiple outstanding transactions per client
  // object (distinct tids).
  auto cluster = MakeCluster(FastRaftOptions());
  CarouselClient* client = cluster->client(0);
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    const TxnId tid = client->Begin();
    const Key k = "multi" + std::to_string(i);
    client->ReadAndPrepare(tid, {k}, {k},
                           [&, tid, k](Status,
                                       const CarouselClient::ReadResults&) {
                             client->Write(tid, k, "v");
                             client->Commit(tid, [&](Status s) {
                               if (s.ok()) committed++;
                             });
                           });
  }
  cluster->sim().RunFor(10 * kMicrosPerSecond);
  EXPECT_EQ(committed, 5);
}

TEST(ClientTest, ReadOnlySeesNoCoordinatorTraffic) {
  auto cluster = MakeCluster(FastRaftOptions());
  cluster->network().ResetTraffic();
  TxnOutcome out = RunTxn(*cluster, 0, {"ro-a", "ro-b"}, {});
  ASSERT_TRUE(out.commit_status.ok());
  // No CoordPrepare / commit / heartbeat messages were sent: the client
  // contacted only participant leaders (one request per partition).
  const auto& sent = cluster->network().sent_by_type();
  EXPECT_EQ(sent.count(sim::kCarouselCoordPrepare), 0u);
  EXPECT_EQ(sent.count(sim::kCarouselCommitRequest), 0u);
  EXPECT_EQ(sent.count(sim::kCarouselHeartbeat), 0u);
}

TEST(ClientTest, ClosestReadsServeRemotePartitionsFromNearestReplica) {
  // Client in Europe (DC2); partition 4's replicas are in DCs 4, 0, 1 —
  // none local. With closest_reads the read comes from US-East (88 ms)
  // rather than the leader in Australia (290 ms).
  auto measure = [](bool closest) {
    Topology topo = Topology::PaperEc2();
    topo.PlacePartitions(5, 3);
    topo.AddClient(2);
    CarouselOptions options;
    options.fast_path = true;
    options.local_reads = true;
    options.closest_reads = closest;
    Cluster cluster(std::move(topo), options, sim::NetworkOptions{}, 17);
    cluster.Start();
    Key key;
    for (int i = 0;; ++i) {
      key = "cr" + std::to_string(i);
      if (cluster.directory().PartitionFor(key) == 4) break;
    }
    const SimTime start = cluster.sim().now();
    TxnOutcome out = RunTxn(cluster, 0, {key}, {{key, "v"}});
    EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
    return cluster.sim().now() - start;
  };
  const SimTime with_closest = measure(true);
  const SimTime leader_only = measure(false);
  // Reading from US-East (88 ms) instead of the leader in Australia
  // (290 ms) lets the commit phase start ~200 ms earlier.
  EXPECT_LT(with_closest + 150 * kMicrosPerMilli, leader_only);
  EXPECT_LT(with_closest, 380 * kMicrosPerMilli);
}

}  // namespace
}  // namespace carousel::test
