#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace carousel::workload {
namespace {

WorkloadOptions SmallWorkload() {
  WorkloadOptions options;
  options.num_keys = 100000;  // Small key space for fast tests.
  return options;
}

TEST(RetwisTest, MixMatchesTable2) {
  auto generator = MakeRetwisGenerator(SmallWorkload());
  Rng rng(1);
  std::map<std::string, int> mix;
  std::map<std::string, std::pair<int, int>> ops;  // type -> (reads, writes)
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const TxnSpec spec = generator->Next(&rng);
    mix[spec.type]++;
    ops[spec.type] = {static_cast<int>(spec.reads.size()),
                      static_cast<int>(spec.writes.size())};
  }
  // Fractions from paper Table 2, +-1.5 percentage points.
  EXPECT_NEAR(mix["add_user"] / double(kDraws), 0.05, 0.015);
  EXPECT_NEAR(mix["follow"] / double(kDraws), 0.15, 0.015);
  EXPECT_NEAR(mix["post_tweet"] / double(kDraws), 0.30, 0.015);
  EXPECT_NEAR(mix["load_timeline"] / double(kDraws), 0.50, 0.015);
  // Gets/puts per type.
  EXPECT_EQ(ops["add_user"], (std::pair<int, int>(1, 3)));
  EXPECT_EQ(ops["follow"], (std::pair<int, int>(2, 2)));
  EXPECT_EQ(ops["post_tweet"], (std::pair<int, int>(3, 5)));
  EXPECT_EQ(ops["load_timeline"].second, 0);
}

TEST(RetwisTest, LoadTimelineReadCountInRange) {
  auto generator = MakeRetwisGenerator(SmallWorkload());
  Rng rng(2);
  std::set<int> sizes;
  for (int i = 0; i < 20000; ++i) {
    const TxnSpec spec = generator->Next(&rng);
    if (spec.type != "load_timeline") continue;
    const int n = static_cast<int>(spec.reads.size());
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 10);
    sizes.insert(n);
  }
  EXPECT_EQ(sizes.size(), 10u) << "rand(1,10) should cover all sizes";
}

TEST(RetwisTest, ReadOnlyShareIsHalf) {
  auto generator = MakeRetwisGenerator(SmallWorkload());
  Rng rng(3);
  int read_only = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (generator->Next(&rng).read_only()) read_only++;
  }
  EXPECT_NEAR(read_only / double(kDraws), 0.50, 0.02);
}

TEST(YcsbTTest, FourDistinctRmwOps) {
  auto generator = MakeYcsbTGenerator(SmallWorkload());
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec spec = generator->Next(&rng);
    EXPECT_EQ(spec.reads.size(), 4u);
    EXPECT_EQ(spec.writes, spec.reads);
    std::set<Key> distinct(spec.reads.begin(), spec.reads.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_FALSE(spec.read_only());
  }
}

TEST(WorkloadTest, KeysAreZipfSkewed) {
  auto generator = MakeYcsbTGenerator(SmallWorkload());
  Rng rng(5);
  std::map<Key, int> counts;
  for (int i = 0; i < 20000; ++i) {
    for (const Key& k : generator->Next(&rng).reads) counts[k]++;
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  // The hottest key is drawn far more often than the uniform expectation.
  EXPECT_GT(max_count, 80000 / 100000 * 20);
  EXPECT_GT(max_count, 50);
}

TEST(WorkloadTest, KeyForRankIsFixedWidthAndUnique) {
  EXPECT_EQ(KeyForRank(0).size(), KeyForRank(9999999).size());
  EXPECT_NE(KeyForRank(1), KeyForRank(2));
}

/// End-to-end driver run on a small Carousel deployment: accounting adds
/// up and committed throughput approaches the (low) target.
TEST(DriverTest, CarouselRunAccountingAddsUp) {
  core::CarouselOptions options = carousel::test::FastRaftOptions();
  Topology topo = carousel::test::SmallTopology(3, 3, 3, /*clients_per_dc=*/5);
  core::Cluster cluster(topo, options, sim::NetworkOptions{}, 31);
  cluster.Start();
  auto adapter = MakeCarouselAdapter(&cluster, "Carousel Basic");

  WorkloadOptions wopts = SmallWorkload();
  auto generator = MakeRetwisGenerator(wopts);
  DriverOptions dopts;
  dopts.target_tps = 100;
  dopts.duration = 12 * kMicrosPerSecond;
  dopts.warmup = 2 * kMicrosPerSecond;
  dopts.cooldown = 2 * kMicrosPerSecond;
  const RunResult result = RunWorkload(adapter.get(), generator.get(), dopts);

  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.timed_out, 0u);
  EXPECT_NEAR(result.CommittedTps(), 100, 25);
  EXPECT_LT(result.AbortRate(), 0.05);
  EXPECT_EQ(result.latency.count(), static_cast<int64_t>(result.committed));
  // 20 ms uniform RTT: no committed transaction should take > 1 s at
  // this load.
  EXPECT_LT(result.latency.Quantile(0.99), kMicrosPerSecond);
}

TEST(DriverTest, TapirRunWorks) {
  tapir::TapirOptions options;
  options.fast_path_timeout = 200'000;
  Topology topo = carousel::test::SmallTopology(3, 3, 3, /*clients_per_dc=*/5);
  tapir::TapirCluster cluster(topo, options, sim::NetworkOptions{}, 33);
  auto adapter = MakeTapirAdapter(&cluster);

  auto generator = MakeRetwisGenerator(SmallWorkload());
  DriverOptions dopts;
  dopts.target_tps = 100;
  dopts.duration = 12 * kMicrosPerSecond;
  dopts.warmup = 2 * kMicrosPerSecond;
  dopts.cooldown = 2 * kMicrosPerSecond;
  const RunResult result = RunWorkload(adapter.get(), generator.get(), dopts);
  EXPECT_GT(result.committed, 0u);
  EXPECT_NEAR(result.CommittedTps(), 100, 25);
}

/// Saturation: with CPU costs configured and a target far above capacity,
/// committed throughput must fall below target (queueing model works).
TEST(DriverTest, OverloadSaturatesBelowTarget) {
  core::CarouselOptions options = carousel::test::FastRaftOptions();
  options.cost.base = 300;         // 300 us per message -> ~3.3k msg/s/server.
  options.cost.per_read_key = 50;
  options.cost.per_occ_key = 20;
  options.cost.per_log_entry = 50;
  options.cost.per_write_key = 50;
  Topology topo = carousel::test::SmallTopology(3, 3, 3, /*clients_per_dc=*/20);
  core::Cluster cluster(topo, options, sim::NetworkOptions{}, 35);
  cluster.Start();
  auto adapter = MakeCarouselAdapter(&cluster, "Carousel Basic");

  auto generator = MakeRetwisGenerator(SmallWorkload());
  DriverOptions dopts;
  dopts.target_tps = 5000;  // Far beyond what 9 slow servers can do.
  dopts.duration = 10 * kMicrosPerSecond;
  dopts.warmup = 2 * kMicrosPerSecond;
  dopts.cooldown = 2 * kMicrosPerSecond;
  const RunResult result = RunWorkload(adapter.get(), generator.get(), dopts);
  EXPECT_GT(result.committed, 0u);
  EXPECT_LT(result.CommittedTps(), 4000);
  EXPECT_GT(result.dropped + result.aborted, 0u);
}

}  // namespace
}  // namespace carousel::workload
