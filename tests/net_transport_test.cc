// Unit tests for the non-blocking epoll TCP transport (runtime/net.h):
// framing and FIFO delivery, egress coalescing under the per-sendmsg cap,
// partial-write resumption across EAGAIN, counted backpressure drops,
// reconnect after a peer restart, and decode-failure accounting. The
// tests drive NodeNet/NetPoller directly with a trivial blob codec so
// payload sizes are arbitrary (the real wire codec has its own suite).

#include "runtime/net.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/message.h"

namespace carousel::runtime {
namespace {

// ---------------------------------------------------------------------------
// Blob codec: a kPing message carrying an opaque string payload.
// ---------------------------------------------------------------------------

struct BlobMsg final : sim::Message {
  std::string data;
  int type() const override { return sim::kPing; }
  size_t SizeBytes() const override { return data.size(); }
};

WireCodec BlobCodec() {
  WireCodec c;
  c.encode = [](const Message& m) {
    const auto& b = static_cast<const BlobMsg&>(m);
    return std::vector<uint8_t>(b.data.begin(), b.data.end());
  };
  c.encode_append = [](const Message& m, std::vector<uint8_t>* out) {
    const auto& b = static_cast<const BlobMsg&>(m);
    out->insert(out->end(), b.data.begin(), b.data.end());
  };
  c.decode = [](int type, const uint8_t* data, size_t len) -> MessagePtr {
    if (type != sim::kPing) return nullptr;  // Unknown type: decode fail.
    auto m = std::make_shared<BlobMsg>();
    m->data.assign(reinterpret_cast<const char*>(data), len);
    return m;
  };
  return c;
}

BlobMsg Blob(std::string data) {
  BlobMsg m;
  m.data = std::move(data);
  return m;
}

// Collects delivered messages; the DeliverFn contract is "move the
// elements out, leave the vector to its owner".
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, std::string>> got;

  NodeNet::DeliverFn fn() {
    return [this](std::vector<std::pair<NodeId, MessagePtr>>& msgs) {
      std::lock_guard<std::mutex> lk(mu);
      for (auto& [from, msg] : msgs) {
        got.emplace_back(from,
                         static_cast<const BlobMsg*>(msg.get())->data);
      }
      cv.notify_all();
    };
  }

  bool WaitForCount(size_t n,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(5000)) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&]() { return got.size() >= n; });
  }

  size_t count() {
    std::lock_guard<std::mutex> lk(mu);
    return got.size();
  }
};

// Spin-waits (with sleeps) until `pred` holds or ~5 s pass. Transport
// counters are updated by the I/O thread, so tests poll rather than hook.
template <typename Pred>
bool WaitUntil(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    usleep(1000);
  }
  return pred();
}

uint64_t Ld(const std::atomic<uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Raw-socket test peer: a listener the test accepts and reads by hand, so
// it can be arbitrarily slow (backpressure) or write arbitrary bytes
// (malformed frames).
// ---------------------------------------------------------------------------

struct RawPeer {
  int listen_fd = -1;
  uint16_t port = 0;

  bool Listen() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return false;
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // Set before listen so accepted sockets inherit it: a tiny receive
    // buffer keeps the kernel from absorbing megabytes the "slow reader"
    // tests rely on staying unsent.
    const int rcvbuf = 8 * 1024;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd, 4) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return false;
    }
    port = ntohs(addr.sin_port);
    return true;
  }

  /// Blocking accept with a timeout; returns the connection fd or -1.
  int Accept(int timeout_ms = 5000) {
    pollfd p{listen_fd, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return -1;
    return ::accept(listen_fd, nullptr, nullptr);
  }

  ~RawPeer() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

/// Reads from `fd` until `want` bytes arrived or a 5 s deadline; returns
/// the bytes read.
std::vector<uint8_t> ReadExactly(int fd, size_t want) {
  std::vector<uint8_t> out;
  out.reserve(want);
  uint8_t chunk[65536];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (out.size() < want && std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 100) <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  return out;
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

/// Parses a `[u32 len][u32 type][u32 from][payload]` frame stream into
/// payload strings; EXPECTs the framing is intact.
std::vector<std::string> ParseFrames(const std::vector<uint8_t>& bytes) {
  std::vector<std::string> payloads;
  size_t pos = 0;
  while (bytes.size() - pos >= 12) {
    const uint32_t len = GetU32(bytes.data() + pos);
    EXPECT_GE(len, 8u);
    if (bytes.size() - pos < 4 + static_cast<size_t>(len)) break;
    payloads.emplace_back(
        reinterpret_cast<const char*>(bytes.data() + pos + 12), len - 8);
    pos += 4 + len;
  }
  EXPECT_EQ(pos, bytes.size()) << "trailing partial frame";
  return payloads;
}

// ---------------------------------------------------------------------------
// Fixture: a poller plus helpers to build nets on it. Skips everywhere if
// the sandbox forbids sockets.
// ---------------------------------------------------------------------------

class NetTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    poller_ = std::make_unique<NetPoller>();
    if (!poller_->Init()) {
      GTEST_SKIP() << "epoll/eventfd unavailable in this sandbox";
    }
  }

  void TearDown() override {
    // Nets must stop before the poller is destroyed; tests that made nets
    // own them in members so this order is guaranteed here.
    for (auto& net : nets_) net->Stop();
    if (poller_) poller_->Stop();
  }

  /// Builds (but does not Start) a net delivering into `sink`.
  NodeNet* MakeNet(NodeId id, size_t num_nodes, Sink* sink,
                   NetOptions options = {}) {
    nets_.push_back(std::make_unique<NodeNet>(
        id, num_nodes, poller_.get(), BlobCodec(), sink->fn(), options));
    NodeNet* net = nets_.back().get();
    if (!net->Bind()) {
      nets_.pop_back();
      return nullptr;
    }
    return net;
  }

  std::unique_ptr<NetPoller> poller_;
  std::vector<std::unique_ptr<NodeNet>> nets_;
};

// ---------------------------------------------------------------------------

TEST_F(NetTransportTest, DeliversInOrderAcrossManyFrames) {
  Sink sink_a, sink_b;
  NodeNet* a = MakeNet(0, 2, &sink_a);
  NodeNet* b = MakeNet(1, 2, &sink_b);
  if (a == nullptr || b == nullptr) GTEST_SKIP() << "sockets unavailable";
  a->SetPeerPort(1, b->port());
  b->SetPeerPort(0, a->port());
  a->Start();
  b->Start();
  poller_->Start();

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    // Mixed sizes so frames straddle read_chunk boundaries.
    std::string payload = "msg-" + std::to_string(i);
    payload.append(static_cast<size_t>(i % 97) * 13, 'x');
    ASSERT_TRUE(a->Send(1, Blob(std::move(payload))));
  }
  ASSERT_TRUE(sink_b.WaitForCount(kCount));

  ASSERT_EQ(sink_b.got.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(sink_b.got[i].first, 0) << "sender id travels in the frame";
    EXPECT_EQ(sink_b.got[i].second.substr(0, 4 + std::to_string(i).size()),
              "msg-" + std::to_string(i))
        << "per-edge FIFO order must survive coalescing";
  }
  EXPECT_EQ(Ld(a->stats().frames_sent), static_cast<uint64_t>(kCount));
  EXPECT_EQ(Ld(b->stats().frames_received), static_cast<uint64_t>(kCount));
  EXPECT_EQ(Ld(a->stats().drops_queue_full), 0u);
  EXPECT_EQ(Ld(b->stats().drops_decode_fail), 0u);
}

TEST_F(NetTransportTest, BurstCoalescesFramesWithinTheBatchCap) {
  Sink sink_a, sink_b;
  NetOptions options;
  options.max_frames_per_batch = 8;
  NodeNet* a = MakeNet(0, 2, &sink_a, options);
  NodeNet* b = MakeNet(1, 2, &sink_b, options);
  if (a == nullptr || b == nullptr) GTEST_SKIP() << "sockets unavailable";
  a->SetPeerPort(1, b->port());
  b->SetPeerPort(0, a->port());
  a->Start();
  b->Start();

  // Enqueue the whole burst before the I/O thread exists: the first drain
  // pass then sees 100 queued frames for one destination and must gather
  // them max_frames_per_batch at a time.
  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(a->Send(1, Blob("burst-" + std::to_string(i))));
  }
  poller_->Start();
  ASSERT_TRUE(sink_b.WaitForCount(kCount));

  const uint64_t syscalls = Ld(a->stats().send_syscalls);
  EXPECT_EQ(Ld(a->stats().frames_sent), static_cast<uint64_t>(kCount));
  // The cap bounds below: 100 frames over >= ceil(100/8) = 13 syscalls.
  EXPECT_GE(syscalls, 13u);
  // Coalescing bounds above: nowhere near one syscall per frame.
  EXPECT_LE(syscalls, 50u);
  TransportStats t;
  t += a->stats();
  EXPECT_GE(t.frames_per_syscall(), 2.0);
}

TEST_F(NetTransportTest, QueueFullDropsAreCountedAndSurvivorsDeliver) {
  Sink sink_a, sink_b;
  NetOptions options;
  options.max_egress_frames = 4;
  NodeNet* a = MakeNet(0, 2, &sink_a, options);
  NodeNet* b = MakeNet(1, 2, &sink_b);
  if (a == nullptr || b == nullptr) GTEST_SKIP() << "sockets unavailable";
  a->SetPeerPort(1, b->port());
  b->SetPeerPort(0, a->port());
  a->Start();
  b->Start();

  // No I/O thread yet, so nothing drains: sends 4..9 overflow the bound.
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    if (a->Send(1, Blob("q-" + std::to_string(i)))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  EXPECT_EQ(Ld(a->stats().drops_queue_full), 6u);

  poller_->Start();
  ASSERT_TRUE(sink_b.WaitForCount(4));
  EXPECT_EQ(sink_b.got[0].second, "q-0");
  EXPECT_EQ(sink_b.got[3].second, "q-3");
}

TEST_F(NetTransportTest, PartialWritesResumeAcrossEagain) {
  Sink sink_a;
  NetOptions options;
  // A deliberately tiny send buffer: 1 MB frames cannot leave in one
  // sendmsg, so the writer must park on EPOLLOUT and resume mid-frame.
  options.so_sndbuf = 8 * 1024;
  NodeNet* a = MakeNet(0, 2, &sink_a, options);
  if (a == nullptr) GTEST_SKIP() << "sockets unavailable";
  RawPeer peer;
  ASSERT_TRUE(peer.Listen());
  a->SetPeerPort(1, peer.port);
  a->Start();
  poller_->Start();

  constexpr int kCount = 6;
  constexpr size_t kPayload = 1u << 20;
  size_t total_bytes = 0;
  for (int i = 0; i < kCount; ++i) {
    std::string payload(kPayload, static_cast<char>('A' + i));
    payload[0] = static_cast<char>('0' + i);  // Order marker.
    total_bytes += 12 + payload.size();
    ASSERT_TRUE(a->Send(1, Blob(std::move(payload))));
  }

  const int conn = peer.Accept();
  ASSERT_GE(conn, 0);
  // Don't read yet: with ~8 KB in flight per syscall the writer must hit
  // EAGAIN long before the first frame completes.
  ASSERT_TRUE(WaitUntil([&]() { return Ld(a->stats().send_eagain) > 0; }));
  EXPECT_EQ(Ld(a->stats().frames_sent), 0u)
      << "no 1 MB frame can complete into an 8 KB send buffer unread";

  // Now drain the stream and check every byte of every frame arrived in
  // order — the partial-write offset bookkeeping is what's under test.
  const std::vector<uint8_t> bytes = ReadExactly(conn, total_bytes);
  ::close(conn);
  ASSERT_EQ(bytes.size(), total_bytes);
  const std::vector<std::string> frames = ParseFrames(bytes);
  ASSERT_EQ(frames.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(frames[i][0], static_cast<char>('0' + i));
    EXPECT_EQ(frames[i][1], static_cast<char>('A' + i));
    EXPECT_EQ(frames[i].size(), kPayload);
  }
  EXPECT_TRUE(WaitUntil(
      [&]() { return Ld(a->stats().frames_sent) == kCount; }));
  EXPECT_GT(Ld(a->stats().send_eagain), 0u);
}

TEST_F(NetTransportTest, SlowReaderBackpressureDropsAtTheBound) {
  Sink sink_a;
  NetOptions options;
  options.so_sndbuf = 8 * 1024;
  options.max_egress_frames = 8;
  // Keep the in-flight window small too: queued capacity is
  // max_egress_frames pending + max_frames_per_batch in flight.
  options.max_frames_per_batch = 4;
  NodeNet* a = MakeNet(0, 2, &sink_a, options);
  if (a == nullptr) GTEST_SKIP() << "sockets unavailable";
  RawPeer peer;
  ASSERT_TRUE(peer.Listen());
  a->SetPeerPort(1, peer.port);
  a->Start();
  poller_->Start();

  const int conn = peer.Accept(/*timeout_ms=*/100);  // May connect lazily.
  // A reader that never reads: the socket fills, then the egress queue
  // fills, then further sends are counted drops — never unbounded memory.
  constexpr size_t kPayload = 64 * 1024;
  constexpr int kCount = 64;
  for (int i = 0; i < kCount; ++i) {
    a->Send(1, Blob(std::string(kPayload, 'z')));
  }
  ASSERT_TRUE(
      WaitUntil([&]() { return Ld(a->stats().drops_queue_full) > 0; }));
  const uint64_t dropped = Ld(a->stats().drops_queue_full);
  const uint64_t enqueued = Ld(a->stats().frames_enqueued);
  EXPECT_EQ(enqueued + dropped, static_cast<uint64_t>(kCount));

  // The survivors still flow once the reader wakes up.
  const int fd = conn >= 0 ? conn : peer.Accept();
  ASSERT_GE(fd, 0);
  const std::vector<uint8_t> bytes =
      ReadExactly(fd, enqueued * (12 + kPayload));
  ::close(fd);
  EXPECT_EQ(ParseFrames(bytes).size(), enqueued);
}

TEST_F(NetTransportTest, ReconnectsAfterPeerRestartOnANewPort) {
  Sink sink_a, sink_b;
  NodeNet* a = MakeNet(0, 2, &sink_a);
  NodeNet* b = MakeNet(1, 2, &sink_b);
  if (a == nullptr || b == nullptr) GTEST_SKIP() << "sockets unavailable";
  a->SetPeerPort(1, b->port());
  b->SetPeerPort(0, a->port());
  a->Start();
  b->Start();
  poller_->Start();

  ASSERT_TRUE(a->Send(1, Blob("before-restart")));
  ASSERT_TRUE(sink_b.WaitForCount(1));

  // Kill node 1's transport (listener and established connections die),
  // then bring it back on a fresh OS-assigned port, as a restarted
  // process would.
  b->Stop();
  Sink sink_b2;
  NodeNet* b2 = MakeNet(1, 2, &sink_b2);
  ASSERT_NE(b2, nullptr);
  b2->SetPeerPort(0, a->port());
  b2->Start();
  a->SetPeerPort(1, b2->port());

  // Sends race the sender's discovery that the old connection is dead;
  // in-flight frames on it die (counted), later sends reconnect. Retry
  // like a protocol would until one lands.
  ASSERT_TRUE(WaitUntil([&]() {
    a->Send(1, Blob("after-restart"));
    return sink_b2.count() > 0;
  }));
  EXPECT_EQ(sink_b2.got[0].second, "after-restart");
  EXPECT_GE(Ld(a->stats().reconnects), 1u);
}

TEST_F(NetTransportTest, ConnectFailureCountsDropsByReason) {
  Sink sink_a;
  NodeNet* a = MakeNet(0, 2, &sink_a);
  if (a == nullptr) GTEST_SKIP() << "sockets unavailable";
  // Find a port with nothing listening: bind-then-close.
  RawPeer ghost;
  ASSERT_TRUE(ghost.Listen());
  const uint16_t dead_port = ghost.port;
  ::close(ghost.listen_fd);
  ghost.listen_fd = -1;

  a->SetPeerPort(1, dead_port);
  a->Start();
  poller_->Start();

  a->Send(1, Blob("into-the-void"));
  ASSERT_TRUE(
      WaitUntil([&]() { return Ld(a->stats().drops_connect_fail) > 0; }));
  EXPECT_EQ(Ld(a->stats().drops_queue_full), 0u);
  EXPECT_EQ(Ld(a->stats().frames_sent), 0u);
}

TEST_F(NetTransportTest, UnknownTypeCountsDecodeFailAndStreamSurvives) {
  Sink sink_b;
  NodeNet* b = MakeNet(1, 2, &sink_b);
  if (b == nullptr) GTEST_SKIP() << "sockets unavailable";
  b->Start();
  poller_->Start();

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(b->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // One well-framed message of a type the codec rejects, then a valid
  // one on the same connection: the bad frame is a counted drop, not a
  // torn stream.
  const std::string good = "still-alive";
  std::vector<uint8_t> wire(12 + 3 + 12 + good.size());
  PutU32(wire.data(), 8 + 3);
  PutU32(wire.data() + 4, 9999);  // Unknown type.
  PutU32(wire.data() + 8, 0);
  std::memcpy(wire.data() + 12, "bad", 3);
  uint8_t* second = wire.data() + 15;
  PutU32(second, static_cast<uint32_t>(8 + good.size()));
  PutU32(second + 4, sim::kPing);
  PutU32(second + 8, 0);
  std::memcpy(second + 12, good.data(), good.size());
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  ASSERT_TRUE(sink_b.WaitForCount(1));
  EXPECT_EQ(sink_b.got[0].second, good);
  EXPECT_EQ(Ld(b->stats().drops_decode_fail), 1u);
  EXPECT_EQ(Ld(b->stats().frames_received), 1u);
  ::close(fd);
}

}  // namespace
}  // namespace carousel::runtime
