#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;

CarouselOptions FastOptions() { return FastCpcOptions(); }

std::unique_ptr<Cluster> MakeCluster(CarouselOptions options,
                                     uint64_t seed = 21) {
  return MakeSmallCluster(std::move(options), seed);
}

Key KeyIn(const Cluster& cluster, PartitionId p, const std::string& tag) {
  return KeyInPartition(cluster, p, tag);
}

/// Crashing f followers of a partition must not block transactions
/// (paper §4.3.2).
TEST(CarouselFailureTest, FollowerCrashIsTransparent) {
  for (bool fast : {false, true}) {
    auto cluster = MakeCluster(fast ? FastOptions() : FastRaftOptions());
    const Key k = KeyIn(*cluster, 0, "fct");
    // Crash one (f=1) follower of partition 0.
    cluster->Crash(cluster->topology().Replicas(0)[1]);
    TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "v"}});
    ASSERT_TRUE(out.commit_done) << "fast=" << fast;
    EXPECT_TRUE(out.commit_status.ok())
        << "fast=" << fast << ": " << out.commit_status;
    cluster->sim().RunFor(5 * kMicrosPerSecond);
    EXPECT_EQ(LeaderValue(*cluster, k).value, "v");
  }
}

/// A participant-leader crash during the run: Raft elects a new leader and
/// subsequent transactions succeed against it.
TEST(CarouselFailureTest, ParticipantLeaderFailover) {
  for (bool fast : {false, true}) {
    auto cluster = MakeCluster(fast ? FastOptions() : FastRaftOptions());
    const Key k = KeyIn(*cluster, 1, "plf");

    TxnOutcome before = RunTxn(*cluster, 0, {k}, {{k, "v1"}});
    ASSERT_TRUE(before.commit_status.ok());
    cluster->sim().RunFor(3 * kMicrosPerSecond);

    const NodeId old_leader = cluster->topology().InitialLeader(1);
    cluster->Crash(old_leader);
    cluster->sim().RunFor(3 * kMicrosPerSecond);  // Election + recovery.
    core::CarouselServer* new_leader = cluster->LeaderOf(1);
    ASSERT_NE(new_leader, nullptr) << "no leader elected (fast=" << fast << ")";
    EXPECT_NE(new_leader->id(), old_leader);
    EXPECT_TRUE(new_leader->serving());

    TxnOutcome after = RunTxn(*cluster, 0, {k}, {{k, "v2"}});
    ASSERT_TRUE(after.commit_done);
    EXPECT_TRUE(after.commit_status.ok())
        << "fast=" << fast << ": " << after.commit_status;
    EXPECT_EQ(after.reads.at(k).value, "v1") << "lost committed write";
    cluster->sim().RunFor(5 * kMicrosPerSecond);
    EXPECT_EQ(LeaderValue(*cluster, k).version, 2u);
  }
}

/// A transaction issued while the participant leader is down completes
/// after failover via client retransmission.
TEST(CarouselFailureTest, TransactionSurvivesLeaderCrashMidFlight) {
  auto cluster = MakeCluster(FastOptions());
  const Key k = KeyIn(*cluster, 1, "mid");
  // Crash the leader; issue the transaction immediately, before any
  // election has happened.
  cluster->Crash(cluster->topology().InitialLeader(1));
  TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "v"}},
                          /*timeout=*/30 * kMicrosPerSecond);
  ASSERT_TRUE(out.commit_done) << "transaction never completed";
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, k).value, "v");
}

/// Coordinator crash after the client received `committed`: the decision
/// must survive (it is derivable from replicated state), and the
/// participants must still learn it (writeback completes after failover).
TEST(CarouselFailureTest, CoordinatorCrashAfterCommitPreservesDecision) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = KeyIn(*cluster, 1, "ccd");

  // Client 0 lives in DC0; its coordinator is partition 0's leader.
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  auto outcome = std::make_shared<TxnOutcome>();
  client->ReadAndPrepare(
      tid, {k}, {k},
      [&, outcome](Status, const core::CarouselClient::ReadResults&) {
        client->Write(tid, k, "v");
        client->Commit(tid, [outcome](Status s) {
          outcome->commit_done = true;
          outcome->commit_status = s;
        });
      });
  while (!outcome->commit_done) cluster->sim().RunFor(kMicrosPerMilli);
  ASSERT_TRUE(outcome->commit_status.ok());

  // Crash the coordinator immediately after the client's acknowledgment;
  // the writeback may not have reached the participant leader yet.
  const NodeId coordinator = cluster->topology().InitialLeader(0);
  cluster->Crash(coordinator);

  // After failover, the new coordinator-group leader re-derives the
  // decision and finishes the writeback.
  cluster->sim().RunFor(20 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, k).value, "v")
      << "committed write lost after coordinator crash";
  // Pending entries must not leak at the participant replicas.
  for (NodeId replica : cluster->topology().Replicas(1)) {
    if (!cluster->network().IsAlive(replica)) continue;
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u)
        << "replica " << replica;
  }
}

/// Coordinator crash before the client commits: the client's commit
/// retransmission reaches the new leader, which finishes the transaction.
TEST(CarouselFailureTest, CoordinatorCrashBeforeCommit) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = KeyIn(*cluster, 1, "ccb");
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  auto outcome = std::make_shared<TxnOutcome>();
  bool crashed = false;

  client->ReadAndPrepare(
      tid, {k}, {k},
      [&, outcome](Status, const core::CarouselClient::ReadResults&) {
        // Crash the coordinator before sending commit.
        cluster->Crash(cluster->topology().InitialLeader(0));
        crashed = true;
        client->Write(tid, k, "v");
        client->Commit(tid, [outcome](Status s) {
          outcome->commit_done = true;
          outcome->commit_status = s;
        });
      });
  const SimTime deadline = cluster->sim().now() + 60 * kMicrosPerSecond;
  while (!outcome->commit_done && cluster->sim().now() < deadline) {
    cluster->sim().RunFor(kMicrosPerMilli);
  }
  ASSERT_TRUE(crashed);
  ASSERT_TRUE(outcome->commit_done) << "commit never completed after "
                                       "coordinator failover";
  // Either outcome is acceptable (commit or abort), but it must be
  // consistent with the stored state.
  cluster->sim().RunFor(20 * kMicrosPerSecond);
  const Version v = LeaderValue(*cluster, k).version;
  if (outcome->commit_status.ok()) {
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(LeaderValue(*cluster, k).value, "v");
  } else {
    EXPECT_EQ(v, 0u);
  }
}

/// Client crash before commit: the coordinator misses h heartbeats and
/// aborts, releasing the pending entries at the participants (§4.3.1).
TEST(CarouselFailureTest, ClientCrashTriggersHeartbeatAbort) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = KeyIn(*cluster, 1, "cch");
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  bool read_done = false;
  client->ReadAndPrepare(tid, {k}, {k},
                         [&](Status, const core::CarouselClient::ReadResults&) {
                           read_done = true;
                           // Crash instead of committing.
                           cluster->Crash(client->id());
                         });
  cluster->sim().RunFor(2 * kMicrosPerSecond);
  ASSERT_TRUE(read_done);

  // The prepare is pending at partition 1's leader until the abort.
  cluster->sim().RunFor(20 * kMicrosPerSecond);
  for (NodeId replica : cluster->topology().Replicas(1)) {
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u)
        << "pending entry leaked on replica " << replica;
  }
  EXPECT_EQ(LeaderValue(*cluster, k).version, 0u) << "aborted write applied";

  // The key is usable by other clients afterwards.
  TxnOutcome out = RunTxn(*cluster, 1, {k}, {{k, "next"}});
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
}

/// CPC leader-failure recovery (§4.3.3): the leader crashes after exposing
/// a fast-path prepare to the coordinator but before replicating it. The
/// new leader must reconstruct the same prepare decision from the
/// pending-transaction lists piggybacked on votes.
TEST(CarouselFailureTest, FastPathDecisionSurvivesLeaderCrash) {
  CarouselOptions options = FastOptions();
  auto cluster = MakeCluster(options);
  const Key k = KeyIn(*cluster, 1, "fpd");
  const NodeId leader = cluster->topology().InitialLeader(1);

  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  auto outcome = std::make_shared<TxnOutcome>();
  client->ReadAndPrepare(
      tid, {k}, {k},
      [&, outcome](Status, const core::CarouselClient::ReadResults&) {
        client->Write(tid, k, "v");
        client->Commit(tid, [outcome](Status s) {
          outcome->commit_done = true;
          outcome->commit_status = s;
        });
      });

  // Let the prepare reach all replicas (fast path fires) and crash the
  // leader right around replication time.
  cluster->sim().RunFor(45 * kMicrosPerMilli);
  cluster->Crash(leader);

  const SimTime deadline = cluster->sim().now() + 60 * kMicrosPerSecond;
  while (!outcome->commit_done && cluster->sim().now() < deadline) {
    cluster->sim().RunFor(kMicrosPerMilli);
  }
  ASSERT_TRUE(outcome->commit_done);
  cluster->sim().RunFor(20 * kMicrosPerSecond);
  const Version v = LeaderValue(*cluster, k).version;
  if (outcome->commit_status.ok()) {
    EXPECT_EQ(LeaderValue(*cluster, k).value, "v");
    EXPECT_EQ(v, 1u);
  } else {
    EXPECT_EQ(v, 0u);
  }
  // No replica may be left with a dangling pending entry.
  for (NodeId replica : cluster->topology().Replicas(1)) {
    if (!cluster->network().IsAlive(replica)) continue;
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u);
  }
}

/// Recovered crashed nodes rejoin and catch up.
TEST(CarouselFailureTest, CrashedFollowerRecoversAndCatchesUp) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = KeyIn(*cluster, 0, "rec");
  const NodeId follower = cluster->topology().Replicas(0)[2];
  cluster->Crash(follower);

  TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "while-down"}});
  ASSERT_TRUE(out.commit_status.ok());
  cluster->sim().RunFor(2 * kMicrosPerSecond);
  EXPECT_EQ(cluster->server(follower)->store().GetVersion(k), 0u);

  cluster->Recover(follower);
  cluster->sim().RunFor(5 * kMicrosPerSecond);  // Heartbeats resync the log.
  EXPECT_EQ(cluster->server(follower)->store().Get(k).value, "while-down");
}

/// With both the client and the coordinator notification gone, the
/// participant's 2PC termination probe (QueryDecision) must clear the
/// pending entry instead of blocking the key forever.
TEST(CarouselFailureTest, OrphanedPendingEntryIsGarbageCollected) {
  CarouselOptions options = FastRaftOptions();
  options.pending_gc_interval = 3 * kMicrosPerSecond;
  auto cluster = MakeCluster(options);
  const Key k = KeyIn(*cluster, 1, "gc");

  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  client->ReadAndPrepare(tid, {k}, {k},
                         [&](Status, const core::CarouselClient::ReadResults&) {
                           cluster->Crash(client->id());
                         });
  // Crash the coordinator too, then bring it back: its in-memory txn
  // tracking resumes, but suppose the heartbeat record was disrupted.
  cluster->sim().RunFor(200 * kMicrosPerMilli);
  const NodeId coordinator = cluster->topology().InitialLeader(0);
  cluster->Crash(coordinator);
  cluster->sim().RunFor(30 * kMicrosPerSecond);

  for (NodeId replica : cluster->topology().Replicas(1)) {
    if (!cluster->network().IsAlive(replica)) continue;
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u)
        << "replica " << replica << " leaked a pending entry";
  }
  EXPECT_EQ(LeaderValue(*cluster, k).version, 0u);
}

}  // namespace
}  // namespace carousel::test
