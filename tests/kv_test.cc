#include <gtest/gtest.h>

#include "kv/pending_list.h"
#include "kv/versioned_store.h"

namespace carousel::kv {
namespace {

// ---------------------------------------------------------------------------
// VersionedStore
// ---------------------------------------------------------------------------

TEST(VersionedStoreTest, MissingKeyReadsAsVersionZero) {
  VersionedStore store;
  const VersionedValue vv = store.Get("nope");
  EXPECT_EQ(vv.version, 0u);
  EXPECT_EQ(vv.value, "");
  EXPECT_EQ(store.GetVersion("nope"), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(VersionedStoreTest, ApplyBumpsVersionMonotonically) {
  VersionedStore store;
  EXPECT_EQ(store.Apply("k", "a"), 1u);
  EXPECT_EQ(store.Apply("k", "b"), 2u);
  EXPECT_EQ(store.Apply("k", "c"), 3u);
  EXPECT_EQ(store.Get("k").value, "c");
  EXPECT_EQ(store.Get("k").version, 3u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(VersionedStoreTest, KeysAreIndependent) {
  VersionedStore store;
  store.Apply("a", "1");
  store.Apply("b", "1");
  store.Apply("a", "2");
  EXPECT_EQ(store.GetVersion("a"), 2u);
  EXPECT_EQ(store.GetVersion("b"), 1u);
}

TEST(VersionedStoreTest, SameApplyOrderSameVersions) {
  // Replicas applying the same writes in log order compute identical
  // versions — the property the staleness check relies on.
  VersionedStore r1, r2;
  for (int i = 0; i < 100; ++i) {
    const Key k = "k" + std::to_string(i % 7);
    EXPECT_EQ(r1.Apply(k, "v"), r2.Apply(k, "v"));
  }
}

// ---------------------------------------------------------------------------
// PendingList: the paper's OCC conflict matrix.
// ---------------------------------------------------------------------------

PendingTxn MakeTxn(TxnId tid, KeyList reads, KeyList writes) {
  PendingTxn txn;
  txn.tid = tid;
  txn.read_keys = std::move(reads);
  txn.write_keys = std::move(writes);
  txn.term = 1;
  return txn;
}

TEST(PendingListTest, EmptyListHasNoConflicts) {
  PendingList list;
  EXPECT_FALSE(list.HasConflict({"a"}, {"b"}));
  EXPECT_FALSE(list.HasPendingWriter({"a"}));
  EXPECT_EQ(list.size(), 0u);
}

TEST(PendingListTest, ReadWriteConflict) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {}, {"x"})).ok());
  EXPECT_TRUE(list.HasConflict({"x"}, {}));   // New read vs pending write.
  EXPECT_FALSE(list.HasConflict({"y"}, {}));  // Unrelated key.
}

TEST(PendingListTest, WriteReadConflict) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"x"}, {})).ok());
  EXPECT_TRUE(list.HasConflict({}, {"x"}));  // New write vs pending read.
  EXPECT_FALSE(list.HasConflict({"x"}, {}));  // Read-read is fine.
}

TEST(PendingListTest, WriteWriteConflict) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {}, {"x"})).ok());
  EXPECT_TRUE(list.HasConflict({}, {"x"}));
}

TEST(PendingListTest, ReadReadDoesNotConflict) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"x", "y"}, {})).ok());
  EXPECT_FALSE(list.HasConflict({"x", "y"}, {}));
  EXPECT_FALSE(list.HasPendingWriter({"x", "y"}));
}

TEST(PendingListTest, HasPendingWriterForReadOnlyValidation) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"r"}, {"w"})).ok());
  EXPECT_TRUE(list.HasPendingWriter({"w"}));
  EXPECT_FALSE(list.HasPendingWriter({"r"}));
}

TEST(PendingListTest, DuplicateAddFails) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"a"}, {})).ok());
  const Status s = list.Add(MakeTxn({1, 1}, {"b"}, {}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(list.size(), 1u);
}

TEST(PendingListTest, RemoveReleasesConflicts) {
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"r"}, {"w"})).ok());
  EXPECT_TRUE(list.HasConflict({}, {"r"}));
  list.Remove({1, 1});
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.HasConflict({}, {"r"}));
  EXPECT_FALSE(list.HasConflict({"w"}, {"w"}));
}

TEST(PendingListTest, RemoveAbsentIsNoop) {
  PendingList list;
  list.Remove({9, 9});
  EXPECT_EQ(list.size(), 0u);
}

TEST(PendingListTest, OverlappingTxnsKeepCountsCorrect) {
  // Two pending transactions read the same key; removing one must not
  // release the other's read lock.
  PendingList list;
  ASSERT_TRUE(list.Add(MakeTxn({1, 1}, {"k"}, {})).ok());
  ASSERT_TRUE(list.Add(MakeTxn({2, 1}, {"k"}, {})).ok());
  list.Remove({1, 1});
  EXPECT_TRUE(list.HasConflict({}, {"k"}));  // {2,1} still reads k.
  list.Remove({2, 1});
  EXPECT_FALSE(list.HasConflict({}, {"k"}));
}

TEST(PendingListTest, FindReturnsStoredEntry) {
  PendingList list;
  PendingTxn txn = MakeTxn({3, 7}, {"a"}, {"b"});
  txn.read_versions["a"] = 42;
  txn.term = 9;
  txn.coordinator = 5;
  ASSERT_TRUE(list.Add(txn).ok());
  const PendingTxn* found = list.Find({3, 7});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->read_versions.at("a"), 42u);
  EXPECT_EQ(found->term, 9u);
  EXPECT_EQ(found->coordinator, 5);
  EXPECT_EQ(list.Find({3, 8}), nullptr);
}

TEST(PendingListTest, SnapshotContainsAllEntries) {
  PendingList list;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        list.Add(MakeTxn({1, static_cast<uint64_t>(i)},
                         {"r" + std::to_string(i)}, {"w" + std::to_string(i)}))
            .ok());
  }
  auto snapshot = list.Snapshot();
  EXPECT_EQ(snapshot.size(), 10u);
}

TEST(PendingListTest, ManyEntriesConflictCheckStaysCorrect) {
  PendingList list;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(list.Add(MakeTxn({1, i}, {"r" + std::to_string(i)},
                                 {"w" + std::to_string(i)}))
                    .ok());
  }
  EXPECT_TRUE(list.HasConflict({"w500"}, {}));
  EXPECT_TRUE(list.HasConflict({}, {"r999"}));
  EXPECT_FALSE(list.HasConflict({"nope"}, {"nada"}));
}

}  // namespace
}  // namespace carousel::kv
