// Fast tier-1 smoke over the sim chaos runner (check/chaos.cc): one clean
// seed end to end and one injected-bug seed. The heavy seed sweeps live in
// chaos_corpus_test (label: slow) and the carousel_chaos CLI; this test
// keeps the runner itself — deployment sampling, nemesis wiring, history
// certification, reporting — inside the per-commit gate.

#include <gtest/gtest.h>

#include <string>

#include "check/chaos.h"

namespace carousel::check {
namespace {

TEST(ChaosSeedTest, CleanSeedRunsEndToEndAndCertifies) {
  ChaosConfig config;
  config.seed = 2;
  config.txns = 120;
  const ChaosResult r = RunChaosSeed(config);
  EXPECT_EQ(r.seed, 2u);
  EXPECT_TRUE(r.ok()) << r.Report();
  // The run really happened: transactions were invoked, the sampled
  // deployment is reported, and decisions were sealed in the ledger.
  EXPECT_GT(r.txns_invoked, 0u);
  EXPECT_FALSE(r.setup.empty());
  EXPECT_GT(r.wanrt.sealed, 0u);
  EXPECT_EQ(r.wanrt.committed + r.wanrt.aborted, r.wanrt.sealed);
  // Write order was extracted for the checker.
  EXPECT_FALSE(r.chains.empty());
  // One-line summary carries the seed; the observability snapshot rides
  // along for report dirs.
  EXPECT_NE(r.Summary().find("seed"), std::string::npos) << r.Summary();
  EXPECT_NE(r.metrics_json.find("\"wanrt\""), std::string::npos);
}

TEST(ChaosSeedTest, SameSeedReplaysIdentically) {
  ChaosConfig config;
  config.seed = 3;
  config.txns = 60;
  const ChaosResult a = RunChaosSeed(config);
  const ChaosResult b = RunChaosSeed(config);
  // Determinism is what makes a failing CI seed replayable under the CLI:
  // same seed, same sampled deployment, same fault plan, same outcome.
  EXPECT_EQ(a.setup, b.setup);
  EXPECT_EQ(a.nemesis_schedule, b.nemesis_schedule);
  EXPECT_EQ(a.txns_invoked, b.txns_invoked);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(ChaosSeedTest, InjectedBugYieldsSelfContainedReport) {
  ChaosConfig config;
  config.seed = 17;
  config.txns = 120;
  config.inject_bug_fast_path = true;
  const ChaosResult r = RunChaosSeed(config);
  ASSERT_FALSE(r.ok()) << "checker missed the injected fast-path bug";
  const std::string report = r.Report();
  // The failure dump must be a self-contained bug report: seed, sampled
  // deployment, fault plan, and the violation itself.
  EXPECT_NE(report.find("seed"), std::string::npos) << report;
  EXPECT_NE(report.find("17"), std::string::npos) << report;
  EXPECT_NE(report.find("VIOLATION"), std::string::npos) << report;
  EXPECT_NE(report.find(r.setup), std::string::npos) << report;
}

}  // namespace
}  // namespace carousel::check
