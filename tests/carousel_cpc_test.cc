#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;

// Deployment fixtures (FastCpcOptions, Ec2Cluster, KeyInPartition) come
// from test_util.h.
CarouselOptions FastOptions() { return FastCpcOptions(); }

TEST(CarouselCpcTest, FastPathCommits) {
  auto cluster = Ec2Cluster(FastOptions(), /*client_dc=*/2);
  TxnOutcome out = RunTxn(*cluster, 0, {"alpha"}, {{"alpha", "1"}});
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, "alpha").value, "1");
}

/// The headline latency claim (paper §4.4.1): with CPC + local replicas,
/// a transaction whose participants all have replicas in the client's DC
/// completes in ~one WANRT, while Carousel Basic needs ~two (remote read
/// + prepare/commit).
TEST(CarouselCpcTest, LocalReplicaTransactionOneRoundtrip) {
  // Client in Europe (DC2). Partitions 0 (replicas DC0,1,2) and 1
  // (replicas DC1,2,3) both have followers in DC2, but remote leaders.
  const DcId kClientDc = 2;

  auto measure = [&](CarouselOptions options) -> SimTime {
    auto cluster = Ec2Cluster(options, kClientDc);
    const Key k0 = KeyInPartition(*cluster, 0, "lrt-a");
    const Key k1 = KeyInPartition(*cluster, 1, "lrt-b");
    const SimTime start = cluster->sim().now();
    TxnOutcome out = RunTxn(*cluster, 0, {k0, k1}, {{k0, "x"}, {k1, "y"}});
    EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
    return cluster->sim().now() - start;
  };

  const SimTime fast_latency = measure(FastOptions());
  const SimTime basic_latency = measure(FastRaftOptions());

  // One WANRT for Carousel Fast: bounded by the coordinator group's
  // replication RTT (Europe->Asia, 235 ms) plus jitter and processing.
  EXPECT_LT(fast_latency, 280 * kMicrosPerMilli)
      << "Carousel Fast should commit an LRT in ~1 WANRT";
  // Carousel Basic pays a remote read (166 ms) followed by commit-phase
  // replication (235 ms): ~2 WANRTs.
  EXPECT_GT(basic_latency, 350 * kMicrosPerMilli);
  EXPECT_LT(basic_latency, 500 * kMicrosPerMilli);
  EXPECT_LT(fast_latency, basic_latency);
}

/// Reads served by a stale local follower must abort at the coordinator's
/// version check, not commit with a stale snapshot.
TEST(CarouselCpcTest, StaleLocalReadAborts) {
  auto cluster = Ec2Cluster(FastOptions(), /*client_dc=*/2);
  const Key k = KeyInPartition(*cluster, 0, "stale");

  // Install version 1 and let it replicate everywhere.
  TxnOutcome seed_txn = RunTxn(*cluster, 0, {}, {{k, "v1"}});
  ASSERT_TRUE(seed_txn.commit_status.ok());
  cluster->sim().RunFor(5 * kMicrosPerSecond);

  // Knock the DC2 follower of partition 0 off the network so it misses
  // the next update, then recover it with a stale store.
  const NodeId local_follower = cluster->topology().ReplicaIn(0, 2);
  ASSERT_NE(local_follower, kInvalidNode);
  cluster->Crash(local_follower);
  TxnOutcome update = RunTxn(*cluster, 0, {}, {{k, "v2"}});
  ASSERT_TRUE(update.commit_status.ok());
  cluster->sim().RunFor(kMicrosPerSecond);
  cluster->Recover(local_follower);

  // The recovered follower still has version 1 in its store until Raft
  // catches it up; read immediately so the local read is stale.
  ASSERT_EQ(cluster->server(local_follower)->store().GetVersion(k), 1u);
  TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "v3"}});
  ASSERT_TRUE(out.commit_done);
  // Either the local (stale) read won the race and the coordinator
  // aborted, or Raft caught up first and the transaction committed; both
  // preserve serializability. With the follower freshly recovered the
  // stale read wins.
  if (!out.commit_status.ok()) {
    EXPECT_EQ(out.commit_status.code(), StatusCode::kAborted);
    EXPECT_EQ(out.reads.at(k).version, 1u) << "stale version was served";
  }
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  // Whatever happened, the final state is consistent with some serial
  // order: version 2 (abort) or 3 (commit).
  const Version final_version = LeaderValue(*cluster, k).version;
  EXPECT_TRUE(final_version == 2 || final_version == 3);
}

/// Concurrent conflicting transactions: the fast path cannot succeed for
/// both, the slow path resolves, and exactly one commits.
TEST(CarouselCpcTest, ConflictsFallBackToSlowPath) {
  auto cluster = Ec2Cluster(FastOptions(), /*client_dc=*/2, /*seed=*/13);
  Topology topo2 = Topology::PaperEc2();
  topo2.PlacePartitions(5, 3);
  topo2.AddClient(2);
  topo2.AddClient(4);  // Second client in Australia.
  auto cluster2 = std::make_unique<Cluster>(std::move(topo2), FastOptions(),
                                            sim::NetworkOptions{}, 13);
  cluster2->Start();

  const Key k = KeyInPartition(*cluster2, 1, "race");
  auto out1 = std::make_shared<TxnOutcome>();
  auto out2 = std::make_shared<TxnOutcome>();
  auto run = [&](int idx, std::shared_ptr<TxnOutcome> out) {
    core::CarouselClient* client = cluster2->client(idx);
    const TxnId tid = client->Begin();
    client->ReadAndPrepare(
        tid, {k}, {k},
        [out, client, tid, k](Status, const core::CarouselClient::ReadResults&) {
          client->Write(tid, k, "w");
          client->Commit(tid, [out](Status s) {
            out->commit_done = true;
            out->commit_status = s;
          });
        });
  };
  run(0, out1);
  run(1, out2);
  cluster2->sim().RunFor(30 * kMicrosPerSecond);

  ASSERT_TRUE(out1->commit_done && out2->commit_done);
  EXPECT_NE(out1->commit_status.ok(), out2->commit_status.ok());
  cluster2->sim().RunFor(10 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster2, k).version, 1u);
}

/// Read-only transactions complete in one roundtrip to the farthest
/// participant leader.
TEST(CarouselCpcTest, ReadOnlyLatencyIsOneRoundtrip) {
  auto cluster = Ec2Cluster(FastOptions(), /*client_dc=*/0);
  const Key k = KeyInPartition(*cluster, 1, "ro");  // Leader in US-East.
  const SimTime start = cluster->sim().now();
  TxnOutcome out = RunTxn(*cluster, 0, {k}, {});
  EXPECT_TRUE(out.commit_status.ok());
  const SimTime latency = cluster->sim().now() - start;
  // US-West <-> US-East RTT is 73 ms.
  EXPECT_LT(latency, 90 * kMicrosPerMilli);
}

/// Without local replicas for every partition (an RPT), even Carousel
/// Fast needs the read roundtrip, i.e., about two WANRTs total.
TEST(CarouselCpcTest, RemotePartitionTransactionTwoRoundtrips) {
  auto cluster = Ec2Cluster(FastOptions(), /*client_dc=*/0);
  // Partition 3's replicas live in DCs 3, 4, 0 -> local. Partition 2's
  // replicas live in DCs 2, 3, 4 -> all remote from US-West.
  const Key remote = KeyInPartition(*cluster, 2, "rpt");
  const SimTime start = cluster->sim().now();
  TxnOutcome out = RunTxn(*cluster, 0, {remote}, {{remote, "x"}});
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
  const SimTime latency = cluster->sim().now() - start;
  // Still bounded by ~2 WANRTs (paper's headline): read to Europe
  // (166 ms) overlaps the prepare; commit adds coordinator replication.
  EXPECT_LT(latency, 2 * 170 * kMicrosPerMilli + 40 * kMicrosPerMilli);
}

TEST(CarouselCpcTest, SupermajoritySizes) {
  EXPECT_EQ(core::CarouselServer::SupermajorityFor(3), 3);  // f=1
  EXPECT_EQ(core::CarouselServer::SupermajorityFor(5), 4);  // f=2
  EXPECT_EQ(core::CarouselServer::SupermajorityFor(7), 6);  // f=3 (ceil(4.5)+1)
}

}  // namespace
}  // namespace carousel::test
