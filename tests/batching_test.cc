// Batching correctness (runtime/batcher.h, BatchEnvelopeMsg, delivery
// coalescing): flush-boundary behavior around crashes, deterministic
// replay with coalescing on, batched-vs-unbatched state equivalence, and
// the traffic-counter reset that the Figure 7 accounting depends on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "common/topology.h"
#include "runtime/arena.h"
#include "runtime/batcher.h"
#include "sim/message.h"
#include "sim/network.h"
#include "runtime/endpoint.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace carousel {
namespace {

struct ItemMsg final : sim::Message {
  int payload = 0;
  int type() const override { return sim::kPing; }
  size_t SizeBytes() const override { return 64; }
};

sim::MessagePtr Item(int payload) {
  auto msg = runtime::MakeMessage<ItemMsg>();
  msg->payload = payload;
  return msg;
}

/// Records every delivery, unwrapping batch envelopes like a real server.
class UnwrappingNode : public runtime::Endpoint {
 public:
  using runtime::Endpoint::Endpoint;

  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override {
    if (const auto* envelope = sim::TryAs<sim::BatchEnvelopeMsg>(*msg)) {
      envelopes++;
      for (const auto& item : envelope->items) HandleMessage(from, item);
      return;
    }
    payloads.push_back(sim::As<ItemMsg>(*msg).payload);
  }

  std::vector<int> payloads;
  int envelopes = 0;
};

struct BatcherFixture {
  explicit BatcherFixture(runtime::MessageBatcher::Options opts = {}) {
    topo = Topology::Uniform(2, 1.0);
    topo.PlacePartitions(2, 1);  // Nodes 0 (DC0) and 1 (DC1).
    sim = std::make_unique<sim::Simulator>(5);
    net = std::make_unique<sim::Network>(sim.get(), &topo,
                                         sim::NetworkOptions{});
    sender = std::make_unique<UnwrappingNode>(0, 0);
    receiver = std::make_unique<UnwrappingNode>(1, 1);
    net->Register(sender.get());
    net->Register(receiver.get());
    batcher = std::make_unique<runtime::MessageBatcher>(sender.get(), opts);
  }

  Topology topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<UnwrappingNode> sender, receiver;
  std::unique_ptr<runtime::MessageBatcher> batcher;
};

// ---------------------------------------------------------------------------
// MessageBatcher unit behavior
// ---------------------------------------------------------------------------

TEST(BatcherTest, WindowCoalescesIntoOneEnvelope) {
  BatcherFixture f;
  for (int i = 0; i < 5; ++i) f.batcher->Send(1, Item(i));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.receiver->payloads, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(f.receiver->envelopes, 1);
  EXPECT_EQ(f.batcher->stats().envelopes, 1u);
  EXPECT_EQ(f.batcher->stats().enveloped_items, 5u);
}

TEST(BatcherTest, LoneMessageShipsBareAfterWindow) {
  BatcherFixture f;
  f.batcher->Send(1, Item(7));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.receiver->payloads, (std::vector<int>{7}));
  EXPECT_EQ(f.receiver->envelopes, 0);
  EXPECT_EQ(f.batcher->stats().single_flushes, 1u);
}

TEST(BatcherTest, MaxItemsFlushesEarly) {
  runtime::MessageBatcher::Options opts;
  opts.flush_interval = 1'000'000;  // Would stall without the size cap.
  opts.max_items = 3;
  BatcherFixture f(opts);
  for (int i = 0; i < 3; ++i) f.batcher->Send(1, Item(i));
  f.sim->RunFor(1000);  // Far less than the window.
  EXPECT_EQ(f.receiver->payloads, (std::vector<int>{0, 1, 2}));
}

TEST(BatcherTest, SuccessiveWindowsPreserveFifo) {
  BatcherFixture f;
  for (int i = 0; i < 4; ++i) f.batcher->Send(1, Item(i));
  f.sim->RunFor(200);  // First window flushes.
  for (int i = 4; i < 8; ++i) f.batcher->Send(1, Item(i));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.receiver->payloads, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(f.receiver->envelopes, 2);
}

/// The flush boundary under a crash: messages buffered but not yet
/// flushed drop (like bytes in a dead process's socket buffer), the
/// stale flush timer must not resurrect them, and traffic after recovery
/// is delivered exactly once.
TEST(BatcherTest, ClearAtCrashDropsBufferedBatchOnce) {
  BatcherFixture f;
  for (int i = 0; i < 3; ++i) f.batcher->Send(1, Item(i));
  f.batcher->Clear();  // Owner crashed mid-window.
  f.sim->RunFor(1000);  // The scheduled flush fires and must be a no-op.
  EXPECT_TRUE(f.receiver->payloads.empty());
  for (int i = 10; i < 13; ++i) f.batcher->Send(1, Item(i));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.receiver->payloads, (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(f.receiver->envelopes, 1);
}

// ---------------------------------------------------------------------------
// Delivery coalescing determinism
// ---------------------------------------------------------------------------

/// Same-tick deliveries on one edge collapse into one event when
/// coalescing is on; the observable order must be identical to the
/// uncoalesced run and stable across runs.
TEST(CoalescingTest, SameTickOrderMatchesUncoalescedAndReplays) {
  auto run = [](bool coalesce) {
    Topology topo = Topology::Uniform(2, 1.0);
    topo.PlacePartitions(2, 1);
    sim::Simulator sim(9);
    sim::NetworkOptions opts;
    opts.jitter_fraction = 0.0;  // Same-tick arrivals on purpose.
    opts.coalesce_deliveries = coalesce;
    sim::Network net(&sim, &topo, opts);
    UnwrappingNode a(0, 0), b(1, 1);
    net.Register(&a);
    net.Register(&b);
    for (int i = 0; i < 20; ++i) net.Send(0, 1, Item(i));
    sim.RunToCompletion();
    return b.payloads;
  };

  const std::vector<int> plain = run(false);
  const std::vector<int> coalesced = run(true);
  EXPECT_EQ(plain, coalesced);
  EXPECT_EQ(coalesced, run(true)) << "coalesced replay diverged";
}

// ---------------------------------------------------------------------------
// Traffic counter reset (Figure 7 accounting)
// ---------------------------------------------------------------------------

/// ResetTraffic must zero every counter the bandwidth accounting reads:
/// per-node traffic, per-type message and byte counts, and the batching
/// counters. The byte/batch counters were added for the Figure 7
/// breakdown and were originally missed by the reset.
TEST(NetworkResetTest, ResetTrafficClearsAllCounters) {
  BatcherFixture f;
  for (int i = 0; i < 4; ++i) f.batcher->Send(1, Item(i));
  f.net->Send(0, 1, Item(99));  // A bare send alongside the envelope.
  f.sim->RunToCompletion();

  ASSERT_GT(f.net->envelopes_sent(), 0u);
  ASSERT_GT(f.net->enveloped_items_sent(), 0u);
  ASSERT_FALSE(f.net->sent_by_type().empty());
  ASSERT_FALSE(f.net->bytes_by_type().empty());
  ASSERT_GT(f.net->traffic(0).msgs_sent, 0u);
  ASSERT_GT(f.net->traffic(0).bytes_sent, 0u);

  f.net->ResetTraffic();

  EXPECT_EQ(f.net->envelopes_sent(), 0u);
  EXPECT_EQ(f.net->enveloped_items_sent(), 0u);
  EXPECT_EQ(f.net->deliveries_coalesced(), 0u);
  EXPECT_TRUE(f.net->sent_by_type().empty());
  EXPECT_TRUE(f.net->bytes_by_type().empty());
  EXPECT_EQ(f.net->traffic(0).msgs_sent, 0u);
  EXPECT_EQ(f.net->traffic(0).bytes_sent, 0u);
  EXPECT_EQ(f.net->traffic(1).msgs_received, 0u);
  EXPECT_EQ(f.net->traffic(1).bytes_received, 0u);
}

// ---------------------------------------------------------------------------
// Cluster-level batching
// ---------------------------------------------------------------------------

core::CarouselOptions BatchedOptions() {
  core::CarouselOptions options = test::FastRaftOptions();
  options.batching.enabled = true;
  options.batching.coalesce_deliveries = true;
  return options;
}

/// A fixed sequence of non-conflicting transactions — each completes
/// before the next is issued, so commit outcomes cannot depend on
/// timing — must leave the identical versioned store state whether or
/// not the message path batches.
TEST(ClusterBatchingTest, BatchedMatchesUnbatchedFinalState) {
  auto run = [](bool batching) {
    core::CarouselOptions options = test::FastRaftOptions();
    options.batching.enabled = batching;
    options.batching.coalesce_deliveries = batching;
    auto cluster = test::MakeSmallCluster(options, /*seed=*/33);
    std::vector<std::pair<Key, VersionedValue>> state;
    for (int i = 0; i < 12; ++i) {
      const Key key =
          test::KeyInPartition(*cluster, static_cast<PartitionId>(i % 3),
                               "bk" + std::to_string(i) + "_");
      const auto outcome =
          test::RunTxn(*cluster, i % 3, {key},
                       {{key, "v" + std::to_string(i)}});
      EXPECT_TRUE(outcome.commit_status.ok()) << "txn " << i;
      state.emplace_back(key, test::LeaderValue(*cluster, key));
    }
    return state;
  };

  const auto unbatched = run(false);
  const auto batched = run(true);
  ASSERT_EQ(unbatched.size(), batched.size());
  for (size_t i = 0; i < unbatched.size(); ++i) {
    EXPECT_EQ(unbatched[i].first, batched[i].first);
    EXPECT_EQ(unbatched[i].second, batched[i].second)
        << "key " << unbatched[i].first;
  }
}

/// A batch straddling a leader crash: a commit the client saw acknowledged
/// must survive the crash (durable before the ack), while the batches
/// buffered in the dead leader's egress queues drop without wedging
/// recovery — the next transaction on the same partition succeeds and
/// neither value applies twice (versions stay distinct and final).
TEST(ClusterBatchingTest, AckedCommitSurvivesLeaderCrashMidWindow) {
  core::CarouselOptions options = BatchedOptions();
  // A wide window so the crash reliably lands inside one.
  options.batching.flush_interval = 2000;
  auto cluster = test::MakeSmallCluster(options, /*seed=*/44);

  const Key key = test::KeyInPartition(*cluster, 0, "crash_");
  const auto first = test::RunTxn(*cluster, 0, {key}, {{key, "before"}});
  ASSERT_TRUE(first.commit_status.ok());

  // Crash the partition leader immediately — its egress queues still hold
  // unflushed batches from the commit round.
  cluster->Crash(cluster->topology().InitialLeader(0));
  cluster->sim().RunFor(5 * kMicrosPerSecond);  // Election + recovery.

  const VersionedValue recovered = test::LeaderValue(*cluster, key);
  EXPECT_EQ(recovered.value, "before") << "acked commit lost at flush boundary";

  const auto second = test::RunTxn(*cluster, 1, {key}, {{key, "after"}});
  EXPECT_TRUE(second.commit_status.ok());
  // The writeback to the participant leader lands on the coordinator's
  // retry cadence (1.5 s under FastRaftOptions), plus a batch window; let
  // it flush before reading the store.
  cluster->sim().RunFor(3 * kMicrosPerSecond);
  const VersionedValue final_value = test::LeaderValue(*cluster, key);
  EXPECT_EQ(final_value.value, "after");
  EXPECT_GT(final_value.version, recovered.version)
      << "replayed batch re-applied an old write";
}

}  // namespace
}  // namespace carousel
