// Tests for the recovery role (src/carousel/recovery.cc): the CPC
// failure-handling protocol (§4.3.3), the serving gate, and coordinator
// failover reconciliation — a new coordinator-group leader must reach a
// decision consistent with everything already externalized.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;

/// After a participant-leader crash, every alive node eventually serves
/// again: the new leader finishes §4.3.3 and opens its gate; the restarted
/// node rejoins as a follower and serves immediately (OnHostRecover).
TEST(RecoveryTest, ServingGateReopensAfterFailover) {
  auto cluster = MakeSmallCluster(FastCpcOptions(), /*seed=*/71);
  const Key k = KeyInPartition(*cluster, 1, "sg");
  const NodeId old_leader = cluster->topology().InitialLeader(1);

  // Leave a fast-path prepare in flight so recovery has work to do.
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  client->ReadAndPrepare(
      tid, {k}, {k},
      [](Status, const core::CarouselClient::ReadResults&) {});
  cluster->sim().RunFor(45 * kMicrosPerMilli);
  cluster->Crash(old_leader);
  cluster->sim().RunFor(5 * kMicrosPerSecond);

  core::CarouselServer* new_leader = cluster->LeaderOf(1);
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), old_leader);
  EXPECT_TRUE(new_leader->serving()) << "serving gate stuck closed";

  cluster->Recover(old_leader);
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  for (NodeId replica : cluster->topology().Replicas(1)) {
    EXPECT_TRUE(cluster->server(replica)->serving()) << "node " << replica;
  }

  // The partition still takes transactions (a fresh key — the abandoned
  // transaction's client is alive and heartbeating, so k stays pinned).
  const Key k2 = KeyInPartition(*cluster, 1, "sg2-");
  TxnOutcome out = RunTxn(*cluster, 1, {k2}, {{k2, "after"}});
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;

  // And once the abandoned transaction aborts, k frees up too.
  client->Abort(tid);
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  TxnOutcome freed = RunTxn(*cluster, 1, {k}, {{k, "after"}});
  ASSERT_TRUE(freed.commit_done);
  EXPECT_TRUE(freed.commit_status.ok()) << freed.commit_status;
}

/// Coordinator failover with a dead client: the original leader's
/// heartbeat abort (§4.3.1) must reconcile with the new leader — no
/// replica may apply the write, no pending entry may survive.
TEST(RecoveryTest, CoordinatorFailoverReconcilesHeartbeatAbort) {
  auto cluster = MakeSmallCluster(FastCpcOptions(), /*seed=*/73);
  const Key k = KeyInPartition(*cluster, 1, "hba");
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  client->ReadAndPrepare(tid, {k}, {k},
                         [&](Status, const core::CarouselClient::ReadResults&) {
                           // The client dies instead of committing.
                           cluster->Crash(client->id());
                         });
  cluster->sim().RunFor(2 * kMicrosPerSecond);

  // Crash the coordinator right around its heartbeat-abort deadline, so
  // the decision may or may not have been externalized; either way the
  // new leader must reach the same verdict.
  cluster->Crash(cluster->topology().InitialLeader(0));
  cluster->sim().RunFor(40 * kMicrosPerSecond);

  EXPECT_EQ(LeaderValue(*cluster, k).version, 0u)
      << "write of a transaction whose client never committed was applied";
  for (NodeId replica : cluster->topology().Replicas(1)) {
    if (!cluster->network().IsAlive(replica)) continue;
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u)
        << "pending entry leaked on replica " << replica;
  }
}

/// Coordinator failover after the commit was externalized: the client's
/// acknowledged write must survive the crash (decision re-derivation,
/// §4.3.3), including when the crash lands mid-writeback.
TEST(RecoveryTest, CoordinatorFailoverPreservesAcknowledgedCommit) {
  for (const SimTime crash_delay_ms : {0, 5, 50}) {
    auto cluster = MakeSmallCluster(FastCpcOptions(), /*seed=*/79);
    const Key k = KeyInPartition(*cluster, 1, "ack");
    TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "must-survive"}});
    ASSERT_TRUE(out.commit_status.ok()) << out.commit_status;

    cluster->sim().RunFor(crash_delay_ms * kMicrosPerMilli);
    cluster->Crash(cluster->topology().InitialLeader(0));
    cluster->sim().RunFor(30 * kMicrosPerSecond);

    EXPECT_EQ(LeaderValue(*cluster, k).value, "must-survive")
        << "acknowledged commit lost (crash_delay=" << crash_delay_ms
        << "ms)";
    for (NodeId replica : cluster->topology().Replicas(1)) {
      if (!cluster->network().IsAlive(replica)) continue;
      EXPECT_EQ(cluster->server(replica)->pending().size(), 0u);
    }
  }
}

/// A voluntarily aborted transaction stays aborted across coordinator
/// failover: the abort releases the pending entries and no later leader
/// may resurrect the write.
TEST(RecoveryTest, CoordinatorFailoverKeepsVoluntaryAbort) {
  auto cluster = MakeSmallCluster(FastCpcOptions(), /*seed=*/83);
  const Key k = KeyInPartition(*cluster, 1, "va");
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  bool aborted = false;
  client->ReadAndPrepare(tid, {k}, {k},
                         [&](Status, const core::CarouselClient::ReadResults&) {
                           client->Abort(tid);
                           aborted = true;
                         });
  cluster->sim().RunFor(2 * kMicrosPerSecond);
  ASSERT_TRUE(aborted);

  cluster->Crash(cluster->topology().InitialLeader(0));
  cluster->sim().RunFor(30 * kMicrosPerSecond);

  EXPECT_EQ(LeaderValue(*cluster, k).version, 0u) << "aborted write applied";
  for (NodeId replica : cluster->topology().Replicas(1)) {
    if (!cluster->network().IsAlive(replica)) continue;
    EXPECT_EQ(cluster->server(replica)->pending().size(), 0u);
  }
  // The key is free for the next transaction.
  TxnOutcome out = RunTxn(*cluster, 1, {k}, {{k, "next"}});
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
}

/// Double failover: the coordinator group loses two leaders in a row
/// around one transaction; the surviving replica still terminates it
/// consistently (f = 1, so the second crash only lands after the first
/// node recovered).
TEST(RecoveryTest, BackToBackCoordinatorFailovers) {
  auto cluster = MakeSmallCluster(FastCpcOptions(), /*seed=*/89);
  const Key k = KeyInPartition(*cluster, 1, "bb");
  TxnOutcome out = RunTxn(*cluster, 0, {k}, {{k, "v1"}});
  ASSERT_TRUE(out.commit_status.ok());

  const NodeId first = cluster->topology().InitialLeader(0);
  cluster->Crash(first);
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  cluster->Recover(first);
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  core::CarouselServer* second = cluster->LeaderOf(0);
  ASSERT_NE(second, nullptr);
  cluster->Crash(second->id());
  cluster->sim().RunFor(10 * kMicrosPerSecond);

  EXPECT_EQ(LeaderValue(*cluster, k).value, "v1");
  TxnOutcome after = RunTxn(*cluster, 1, {k}, {{k, "v2"}});
  ASSERT_TRUE(after.commit_done);
  EXPECT_TRUE(after.commit_status.ok()) << after.commit_status;
  EXPECT_EQ(after.reads.at(k).value, "v1");
}

}  // namespace
}  // namespace carousel::test
