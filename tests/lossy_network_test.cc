#include <gtest/gtest.h>

#include <map>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselClient;
using core::CarouselOptions;
using core::Cluster;

/// Robustness under an asynchronous, lossy network (paper §3.1 assumes
/// unbounded delays; dropping messages exercises every retransmission
/// path: Raft heartbeats/rejections, client read and commit retries,
/// coordinator query/writeback retries, and the pending-entry GC).
/// Parameterized over (fast path, loss rate, seed); the serializability
/// counter invariant must hold regardless.
struct LossParam {
  bool fast = false;
  double loss = 0.02;
  uint64_t seed = 1;
};

class LossyNetworkTest : public ::testing::TestWithParam<LossParam> {};

TEST_P(LossyNetworkTest, TransactionsCompleteAndCountersStayExact) {
  const LossParam& param = GetParam();
  CarouselOptions options = FastRaftOptions();
  options.fast_path = param.fast;
  options.local_reads = param.fast;
  options.client_retry_timeout = 800'000;
  options.coordinator_retry_interval = 800'000;
  options.pending_gc_interval = 3 * kMicrosPerSecond;

  sim::NetworkOptions net;
  net.loss_fraction = param.loss;

  Cluster cluster(SmallTopology(3, 3, 3, 3), options, net, param.seed);
  cluster.Start();

  const int kTxns = 60;
  const int kKeys = 12;
  Rng rng(param.seed * 7 + 3);
  int done = 0, committed = 0, timed_out = 0;
  std::map<Key, int> commits_per_key;

  for (int i = 0; i < kTxns; ++i) {
    const SimTime at =
        cluster.sim().now() + rng.UniformInt(0, 10 * kMicrosPerSecond);
    const int client_index =
        static_cast<int>(rng.UniformInt(0, cluster.clients().size() - 1));
    const Key k = "loss" + std::to_string(rng.UniformInt(0, kKeys - 1));
    cluster.sim().ScheduleAt(at, [&, client_index, k]() {
      CarouselClient* client = cluster.client(client_index);
      const TxnId tid = client->Begin();
      client->ReadAndPrepare(
          tid, {k}, {k},
          [&, client, tid, k](Status status,
                              const CarouselClient::ReadResults& reads) {
            if (!status.ok()) {
              done++;
              if (status.code() == StatusCode::kTimedOut) timed_out++;
              return;
            }
            const int old =
                reads.at(k).value.empty() ? 0 : std::stoi(reads.at(k).value);
            client->Write(tid, k, std::to_string(old + 1));
            client->Commit(tid, [&, k](Status s) {
              done++;
              if (s.ok()) {
                committed++;
                commits_per_key[k]++;
              } else if (s.code() == StatusCode::kTimedOut) {
                timed_out++;
              }
            });
          });
    });
  }
  // Generous horizon: retries at 0.8 s per attempt.
  cluster.sim().RunFor(90 * kMicrosPerSecond);

  EXPECT_EQ(done, kTxns) << "transactions hung under loss";
  EXPECT_GT(committed, kTxns / 3);
  EXPECT_EQ(timed_out, 0) << "retries should mask " << param.loss * 100
                          << "% loss";

  cluster.sim().RunFor(30 * kMicrosPerSecond);  // GC + writeback drain.
  for (const auto& [k, expected] : commits_per_key) {
    EXPECT_EQ(static_cast<int>(LeaderValue(cluster, k).version), expected)
        << "key " << k;
  }
  for (const NodeInfo& info : cluster.topology().nodes()) {
    if (info.is_client) continue;
    EXPECT_EQ(cluster.server(info.id)->pending().size(), 0u)
        << "leaked pending entry on node " << info.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Loss, LossyNetworkTest,
    ::testing::Values(LossParam{false, 0.01, 5}, LossParam{false, 0.05, 6},
                      LossParam{true, 0.01, 7}, LossParam{true, 0.05, 8},
                      LossParam{true, 0.10, 9}),
    [](const ::testing::TestParamInfo<LossParam>& info) {
      return std::string(info.param.fast ? "fast" : "basic") + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_seed" + std::to_string(info.param.seed);
    });

/// Raft itself makes progress under loss: elections and replication
/// eventually succeed.
TEST(LossyNetworkTest, RaftCommitsThroughLoss) {
  CarouselOptions options = FastRaftOptions();
  sim::NetworkOptions net;
  net.loss_fraction = 0.15;
  Cluster cluster(SmallTopology(3, 1, 3, 1), options, net, 31);
  cluster.Start();
  TxnOutcome out = RunTxn(cluster, 0, {"raft-loss"}, {{"raft-loss", "v"}},
                          /*timeout=*/60 * kMicrosPerSecond);
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
}

}  // namespace
}  // namespace carousel::test
