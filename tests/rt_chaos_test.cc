// Real-time chaos on the threaded backend: every fault class the RtNemesis
// can inject (SIGKILL-style node kill + WAL restart, DC partition,
// per-link delay/drop, coordinator crash) is driven against a live
// cluster and certified with the serializability checker. Each class
// test asserts its faults actually *fired* — a schedule that never killed
// anything is not evidence. Seeds fix only the schedule; interleavings
// are real, so these tests must hold for any execution.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "carousel/client.h"
#include "carousel/server.h"
#include "check/chaos_rt.h"
#include "check/history.h"
#include "check/serializability.h"
#include "common/rng.h"
#include "common/topology.h"
#include "harness/rt_cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

std::string FreshStorageRoot(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "carousel-rt-chaos-" + tag +
                          "-" + std::to_string(::getpid());
  (void)::system(("rm -rf " + dir).c_str());
  return dir;
}

check::RtChaosResult RunSeed(uint64_t seed, const std::string& tag,
                             bool use_tcp = false) {
  check::RtChaosConfig config;
  config.seed = seed;
  config.txns = 150;
  config.use_tcp = use_tcp;
  config.storage_root = FreshStorageRoot(tag);
  return check::RunRtChaosSeed(config);
}

// Schedule classes are keyed by seed % 4 (see chaos_rt.cc): 0 = kill-heavy,
// 1 = partition-heavy, 2 = partition + server kill (the
// coordinator-crash-during-CPC window), 3 = link delay/drop.

TEST(RtChaosTest, KillRestartScheduleFiresAndCertifies) {
  const check::RtChaosResult result = RunSeed(4, "kill");
  ASSERT_FALSE(result.start_failed);
  EXPECT_GE(result.kills_fired, 1u) << result.nemesis_schedule;
  EXPECT_GE(result.restarts_fired, 1u) << result.nemesis_schedule;
  // A restart that read nothing back did not exercise recovery.
  EXPECT_GT(result.recovered_log_entries, 0u);
  EXPECT_TRUE(result.ok()) << result.Report();
}

TEST(RtChaosTest, PartitionScheduleFiresAndCertifies) {
  const check::RtChaosResult result = RunSeed(5, "partition");
  ASSERT_FALSE(result.start_failed);
  EXPECT_GE(result.partitions_fired, 1u) << result.nemesis_schedule;
  // The cut must have actually blocked traffic.
  EXPECT_GT(result.fault_dropped_messages, 0u);
  EXPECT_TRUE(result.ok()) << result.Report();
}

TEST(RtChaosTest, CoordinatorCrashComboFiresAndCertifies) {
  const check::RtChaosResult result = RunSeed(6, "combo");
  ASSERT_FALSE(result.start_failed);
  EXPECT_GE(result.kills_fired, 1u) << result.nemesis_schedule;
  EXPECT_GE(result.partitions_fired, 1u) << result.nemesis_schedule;
  EXPECT_GE(result.restarts_fired, 1u) << result.nemesis_schedule;
  EXPECT_TRUE(result.ok()) << result.Report();
}

TEST(RtChaosTest, LinkFaultScheduleFiresAndCertifies) {
  const check::RtChaosResult result = RunSeed(7, "link");
  ASSERT_FALSE(result.start_failed);
  EXPECT_GE(result.link_faults_fired, 1u) << result.nemesis_schedule;
  EXPECT_TRUE(result.ok()) << result.Report();
}

// ---------------------------------------------------------------------------
// Directed durable-restart test, independent of schedule sampling: commit
// real transactions, SIGKILL a replica, restart it from its WAL, commit
// more, and require (a) the restart recovered journaled state, (b) the
// rejoined replica's write order stays a prefix of its peers', (c) the
// whole history serializes.

struct LoopDriver : std::enable_shared_from_this<LoopDriver> {
  LoopDriver(harness::RtCluster* cluster, std::vector<Key> keys, uint64_t seed,
             std::atomic<int>* committed, std::atomic<bool>* stop,
             std::atomic<bool>* done)
      : cluster(cluster),
        keys(std::move(keys)),
        rng(seed),
        committed(committed),
        stop(stop),
        done(done) {}

  harness::RtCluster* cluster;
  std::vector<Key> keys;
  Rng rng;
  std::atomic<int>* committed;
  std::atomic<bool>* stop;
  std::atomic<bool>* done;
  uint64_t seq = 0;

  void Next() {
    if (stop->load()) {
      done->store(true);
      return;
    }
    core::CarouselClient* client = cluster->client(0);
    const Key read = Pick();
    const Key write = Pick();
    const Value value = "restart-" + std::to_string(seq++);
    const TxnId tid = client->Begin();
    auto self = shared_from_this();
    client->ReadAndPrepare(
        tid, {read}, {write},
        [self, client, tid, write, value](
            Status status, const core::CarouselClient::ReadResults&) {
          if (!status.ok()) {
            self->Next();
            return;
          }
          client->Write(tid, write, value);
          client->Commit(tid, [self](Status commit_status) {
            if (commit_status.ok()) self->committed->fetch_add(1);
            self->Next();
          });
        });
  }

 private:
  Key Pick() {
    return keys[rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1)];
  }
};

bool WaitForCommits(const std::atomic<int>& committed, int target,
                    int timeout_s) {
  return PollUntil([&] { return committed.load() >= target; },
                   std::chrono::seconds(timeout_s));
}

bool IsPrefix(const std::vector<TxnId>& prefix, const std::vector<TxnId>& of) {
  if (prefix.size() > of.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == of[i])) return false;
  }
  return true;
}

TEST(RtChaosTest, KilledReplicaRecoversFromWalAndRejoins) {
  Topology topo = Topology::Uniform(/*num_dcs=*/3, /*inter_dc_rtt_ms=*/1);
  topo.PlacePartitions(/*partitions=*/1, /*replication_factor=*/3);
  topo.AddClient(/*dc=*/0);

  harness::RtClusterOptions rt_options;
  rt_options.seed = 11;
  rt_options.storage_dir = FreshStorageRoot("directed");
  harness::RtCluster cluster(std::move(topo), FastCpcOptions(), rt_options);

  check::HistoryRecorder history;
  cluster.AttachHistory(&history);
  ASSERT_TRUE(cluster.Start(/*timeout_ms=*/20000));

  std::atomic<int> committed{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  auto driver = std::make_shared<LoopDriver>(
      &cluster, std::vector<Key>{"wa", "wb", "wc", "wd"}, /*seed=*/5,
      &committed, &stop, &done);
  cluster.RunOnClient(0, [driver]() { driver->Next(); });

  // Phase 1: a real log builds up. (Timeouts are generous for TSan.)
  ASSERT_TRUE(WaitForCommits(committed, 40, 120));

  // SIGKILL a follower mid-load: its volatile state (queues, in-memory
  // pending list, applied KV) dies with the server object.
  const std::vector<NodeId>& replicas = cluster.topology().Replicas(0);
  NodeId victim = kInvalidNode;
  for (NodeId id : replicas) {
    if (cluster.topology().node(id).replica_index == 1) victim = id;
  }
  ASSERT_NE(victim, kInvalidNode);
  ASSERT_TRUE(cluster.KillServer(victim));
  EXPECT_FALSE(cluster.server_alive(victim));
  EXPECT_FALSE(cluster.KillServer(victim));  // Already dead.

  // Phase 2: the two surviving replicas keep committing (quorum holds).
  const int before_restart = committed.load();
  ASSERT_TRUE(WaitForCommits(committed, before_restart + 40, 120));

  // Restart from the WAL and let it rejoin.
  ASSERT_TRUE(cluster.RestartServer(victim));
  EXPECT_FALSE(cluster.RestartServer(victim));  // Already alive.
  EXPECT_TRUE(cluster.server_alive(victim));
  EXPECT_EQ(cluster.restarts(), 1u);
  EXPECT_GT(cluster.recovered_log_entries(), 0u);
  ASSERT_TRUE(cluster.WaitUntilServing(/*timeout_ms=*/20000));

  // Phase 3: commits continue after the rejoin.
  const int after_restart = committed.load();
  ASSERT_TRUE(WaitForCommits(committed, after_restart + 20, 120));

  stop.store(true);
  ASSERT_TRUE(
      PollUntil([&] { return done.load(); }, std::chrono::seconds(120)));
  // Settle: in-flight writebacks land when cluster traffic stops moving.
  PollUntilQuiescent([&] { return cluster.posted_messages(); },
                     std::chrono::milliseconds(200),
                     std::chrono::seconds(30));
  cluster.Stop();

  // The restarted server really went through WAL recovery.
  core::CarouselServer* restarted = cluster.server(victim);
  ASSERT_NE(restarted, nullptr);
  EXPECT_TRUE(restarted->raft()->recovered());

  // Decision agreement across the restart: every replica's write order —
  // including the rejoined one's — is a prefix of the longest chain.
  check::WriterChains chains;
  std::map<Key, std::vector<const std::vector<TxnId>*>> per_key;
  for (NodeId id : replicas) {
    core::CarouselServer* server = cluster.server(id);
    ASSERT_NE(server, nullptr);
    for (const auto& [key, chain] : server->store().writer_log()) {
      per_key[key].push_back(&chain);
    }
  }
  for (auto& [key, candidates] : per_key) {
    const std::vector<TxnId>* longest = candidates.front();
    for (const auto* chain : candidates) {
      if (chain->size() > longest->size()) longest = chain;
    }
    for (const auto* chain : candidates) {
      EXPECT_TRUE(IsPrefix(*chain, *longest))
          << "replicas disagree on the write order of '" << key
          << "' across the restart";
    }
    chains[key] = *longest;
  }

  const check::CheckResult result =
      check::CheckSerializability(history, chains);
  EXPECT_TRUE(result.ok())
      << result.violations.size() << " violations; first: "
      << (result.violations.empty() ? ""
                                    : result.violations.front().description);
  EXPECT_GE(result.committed, 100);
}

TEST(RtChaosTest, KillRequiresConfiguredStorage) {
  Topology topo = Topology::Uniform(/*num_dcs=*/3, /*inter_dc_rtt_ms=*/1);
  topo.PlacePartitions(/*partitions=*/1, /*replication_factor=*/3);
  topo.AddClient(/*dc=*/0);
  // No storage_dir: a restarted node would re-bootstrap and fork history,
  // so the kill API must refuse outright.
  harness::RtCluster cluster(std::move(topo), FastRaftOptions(), {});
  ASSERT_TRUE(cluster.Start(/*timeout_ms=*/20000));
  const NodeId replica = cluster.topology().Replicas(0).front();
  EXPECT_FALSE(cluster.KillServer(replica));
  EXPECT_TRUE(cluster.server_alive(replica));
  cluster.Stop();
}

}  // namespace
}  // namespace carousel::test
