#include <gtest/gtest.h>

#include <set>

#include "carousel/directory.h"
#include "common/topology.h"

namespace carousel::core {
namespace {

Topology Ec2() {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  return topo;
}

TEST(DirectoryTest, PartitionMappingIsStableAndInRange) {
  Topology topo = Ec2();
  Directory dir(&topo);
  for (int i = 0; i < 1000; ++i) {
    const Key k = "key" + std::to_string(i);
    const PartitionId p = dir.PartitionFor(k);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
    EXPECT_EQ(dir.PartitionFor(k), p);  // Deterministic.
  }
}

TEST(DirectoryTest, CachedLeaderIsReplicaZero) {
  Topology topo = Ec2();
  Directory dir(&topo);
  for (PartitionId p = 0; p < 5; ++p) {
    EXPECT_EQ(dir.CachedLeader(p), topo.InitialLeader(p));
    EXPECT_EQ(topo.node(dir.CachedLeader(p)).replica_index, 0);
  }
}

TEST(DirectoryTest, CoordinatorPrefersLocalParticipantLeader) {
  Topology topo = Ec2();
  Directory dir(&topo);
  // Client in DC1; participants {1, 3}: partition 1's leader is in DC1.
  const NodeId coordinator = dir.CoordinatorFor(1, {1, 3});
  EXPECT_EQ(coordinator, dir.CachedLeader(1));
  EXPECT_EQ(topo.DcOf(coordinator), 1);
}

TEST(DirectoryTest, CoordinatorFallsBackToHomePartitionLeader) {
  Topology topo = Ec2();
  Directory dir(&topo);
  // Client in DC0; participants {2, 3}: neither leader is in DC0, so the
  // home partition of DC0 (partition 0) coordinates.
  const NodeId coordinator = dir.CoordinatorFor(0, {2, 3});
  EXPECT_EQ(coordinator, dir.CachedLeader(0));
  EXPECT_EQ(topo.DcOf(coordinator), 0);
}

TEST(DirectoryTest, LocalReplicaLookup) {
  Topology topo = Ec2();
  Directory dir(&topo);
  // Partition 3's replicas live in DCs 3, 4, 0.
  EXPECT_NE(dir.LocalReplica(3, 3), kInvalidNode);
  EXPECT_NE(dir.LocalReplica(3, 0), kInvalidNode);
  EXPECT_EQ(dir.LocalReplica(3, 1), kInvalidNode);
  EXPECT_EQ(dir.LocalReplica(3, 2), kInvalidNode);
}

TEST(DirectoryTest, EveryPartitionGetsKeys) {
  Topology topo = Ec2();
  Directory dir(&topo);
  std::set<PartitionId> seen;
  for (int i = 0; i < 20000 && seen.size() < 5; ++i) {
    seen.insert(dir.PartitionFor("spread" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace carousel::core
