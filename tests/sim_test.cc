#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/topology.h"
#include "runtime/endpoint.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace carousel::sim {
namespace {

struct PingMsg final : Message {
  int payload = 0;
  int type() const override { return kPing; }
  size_t SizeBytes() const override { return 100; }
};

/// A node that records every delivery (time, from, payload).
class RecorderNode : public runtime::Endpoint {
 public:
  RecorderNode(NodeId id, DcId dc, SimTime cost = 0)
      : runtime::Endpoint(id, dc), cost_(cost) {}

  void HandleMessage(NodeId from, const MessagePtr& msg) override {
    deliveries.push_back({now(), from, As<PingMsg>(*msg).payload});
  }
  SimTime ServiceCost(const Message&) const override { return cost_; }

  struct Delivery {
    SimTime time;
    NodeId from;
    int payload;
  };
  std::vector<Delivery> deliveries;

 private:
  SimTime cost_;
};

MessagePtr Ping(int payload) {
  auto msg = std::make_shared<PingMsg>();
  msg->payload = payload;
  return msg;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { fired++; });
  sim.Schedule(200, [&] { fired++; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, PastSchedulesClampToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunToCompletion();
  bool fired = false;
  sim.ScheduleAt(5, [&] { fired = true; });  // In the past.
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) sim.Schedule(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_processed(), 42u);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

struct NetFixture {
  NetFixture(double rtt_ms = 10, NetworkOptions opts = {}) {
    topo = Topology::Uniform(2, rtt_ms);
    topo.PlacePartitions(2, 1);  // Nodes 0 (DC0) and 1 (DC1).
    sim = std::make_unique<Simulator>(3);
    net = std::make_unique<Network>(sim.get(), &topo, opts);
    a = std::make_unique<RecorderNode>(0, 0);
    b = std::make_unique<RecorderNode>(1, 1);
    net->Register(a.get());
    net->Register(b.get());
  }
  Topology topo;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<RecorderNode> a, b;
};

TEST(NetworkTest, DeliversWithHalfRttLatency) {
  NetFixture f(10, NetworkOptions{.jitter_fraction = 0.0});
  f.net->Send(0, 1, Ping(1));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.b->deliveries.size(), 1u);
  EXPECT_EQ(f.b->deliveries[0].time, 5 * kMicrosPerMilli);
}

TEST(NetworkTest, JitterBoundedAboveBaseLatency) {
  NetFixture f(10, NetworkOptions{.jitter_fraction = 0.10});
  for (int i = 0; i < 200; ++i) f.net->Send(0, 1, Ping(i));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.b->deliveries.size(), 200u);
  for (const auto& d : f.b->deliveries) {
    EXPECT_GE(d.time, 5 * kMicrosPerMilli);
    EXPECT_LE(d.time, static_cast<SimTime>(5.5 * kMicrosPerMilli) + 1);
  }
}

TEST(NetworkTest, FifoPairsPreserveSendOrder) {
  NetFixture f(10, NetworkOptions{.jitter_fraction = 0.5});  // Heavy jitter.
  for (int i = 0; i < 100; ++i) f.net->Send(0, 1, Ping(i));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.b->deliveries.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.b->deliveries[i].payload, i);
}

TEST(NetworkTest, NonFifoMayReorderButDeliversAll) {
  NetworkOptions opts;
  opts.jitter_fraction = 1.0;
  opts.fifo_pairs = false;
  NetFixture f(10, opts);
  for (int i = 0; i < 100; ++i) f.net->Send(0, 1, Ping(i));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.b->deliveries.size(), 100u);
}

TEST(NetworkTest, CrashedReceiverDropsMessages) {
  NetFixture f;
  f.net->Crash(1);
  f.net->Send(0, 1, Ping(1));
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.b->deliveries.empty());
}

TEST(NetworkTest, CrashedSenderCannotSend) {
  NetFixture f;
  f.net->Crash(0);
  f.net->Send(0, 1, Ping(1));
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.b->deliveries.empty());
  EXPECT_EQ(f.net->traffic(0).msgs_sent, 0u);
}

TEST(NetworkTest, InFlightMessagesDropAtCrashedHost) {
  NetFixture f;
  f.net->Send(0, 1, Ping(1));  // In flight for 5 ms.
  f.sim->RunFor(1 * kMicrosPerMilli);
  f.net->Crash(1);
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.b->deliveries.empty());
}

TEST(NetworkTest, RecoveryRestoresDelivery) {
  NetFixture f;
  f.net->Crash(1);
  f.sim->RunFor(kMicrosPerMilli);
  f.net->Recover(1);
  f.net->Send(0, 1, Ping(7));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.b->deliveries.size(), 1u);
  EXPECT_EQ(f.b->deliveries[0].payload, 7);
}

TEST(NetworkTest, BlockedPairDropsBothDirections) {
  NetFixture f;
  f.net->BlockPair(0, 1);
  f.net->Send(0, 1, Ping(1));
  f.net->Send(1, 0, Ping(2));
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.a->deliveries.empty());
  EXPECT_TRUE(f.b->deliveries.empty());
  f.net->UnblockPair(0, 1);
  f.net->Send(0, 1, Ping(3));
  f.sim->RunToCompletion();
  EXPECT_EQ(f.b->deliveries.size(), 1u);
}

TEST(NetworkTest, TrafficAccounting) {
  NetworkOptions opts;
  opts.header_bytes = 80;
  NetFixture f(10, opts);
  f.net->Send(0, 1, Ping(1));  // 100-byte payload.
  f.sim->RunToCompletion();
  EXPECT_EQ(f.net->traffic(0).bytes_sent, 180u);
  EXPECT_EQ(f.net->traffic(0).msgs_sent, 1u);
  EXPECT_EQ(f.net->traffic(1).bytes_received, 180u);
  EXPECT_EQ(f.net->traffic(1).msgs_received, 1u);
  f.net->ResetTraffic();
  EXPECT_EQ(f.net->traffic(0).bytes_sent, 0u);
  // The per-type counters are part of the measurement window too: a reset
  // must clear them, or post-warmup readings double-count warmup traffic.
  EXPECT_TRUE(f.net->sent_by_type().empty());
  f.net->Send(0, 1, Ping(2));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.net->sent_by_type().count(Ping(0)->type()), 1u);
  EXPECT_EQ(f.net->sent_by_type().at(Ping(0)->type()), 1u);
}

/// The single-core FIFO service model: messages queue behind one another,
/// producing saturation when offered load exceeds capacity.
TEST(NetworkTest, ServiceQueueingSerializesProcessing) {
  Topology topo = Topology::Uniform(2, 10);
  topo.PlacePartitions(2, 1);
  Simulator sim(4);
  Network net(&sim, &topo, NetworkOptions{.jitter_fraction = 0.0});
  RecorderNode a(0, 0);
  RecorderNode b(1, 1, /*cost=*/100);  // 100 us per message.
  net.Register(&a);
  net.Register(&b);

  for (int i = 0; i < 10; ++i) net.Send(0, 1, Ping(i));
  sim.RunToCompletion();
  ASSERT_EQ(b.deliveries.size(), 10u);
  // First completes at 5 ms + 100 us; each next 100 us later.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.deliveries[i].time, 5 * kMicrosPerMilli + 100 * (i + 1));
  }
}

TEST(NetworkTest, LoopbackIsFast) {
  NetFixture f;
  f.net->Send(0, 0, Ping(1));
  f.sim->RunToCompletion();
  ASSERT_EQ(f.a->deliveries.size(), 1u);
  EXPECT_LE(f.a->deliveries[0].time, 10);
}

TEST(NetworkTest, IntraDcLatencyUsed) {
  Topology topo = Topology::Uniform(1, 10);
  topo.set_intra_dc_rtt_micros(500);
  topo.PlacePartitions(2, 1);  // Two nodes, same DC.
  Simulator sim(5);
  Network net(&sim, &topo, NetworkOptions{.jitter_fraction = 0.0});
  RecorderNode a(0, 0), b(1, 0);
  net.Register(&a);
  net.Register(&b);
  net.Send(0, 1, Ping(1));
  sim.RunToCompletion();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].time, 250);
}

}  // namespace
}  // namespace carousel::sim
