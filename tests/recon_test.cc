#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "carousel/recon.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselClient;
using core::Cluster;
using core::ReconnaissanceRunner;

std::unique_ptr<Cluster> MakeCluster(uint64_t seed = 61) {
  return MakeSmallCluster(FastCpcOptions(), seed);
}

/// Seeds an index entry name -> id and the record id -> balance.
void Seed(Cluster& cluster, const std::string& name, const std::string& id,
          const std::string& balance) {
  TxnOutcome out = RunTxn(cluster, 0, {},
                          {{"index:" + name, id}, {"cust:" + id, balance}});
  ASSERT_TRUE(out.commit_status.ok());
  cluster.sim().RunFor(3 * kMicrosPerSecond);
}

/// The paper's TPC-C Payment-by-name pattern: look the customer id up
/// through a secondary index (reconnaissance), then update the customer
/// record, validating that the index entry did not change.
void PaymentByName(Cluster& cluster, int client_index,
                   const std::string& name, int amount,
                   ReconnaissanceRunner::DoneFn done) {
  CarouselClient* client = cluster.client(client_index);
  ReconnaissanceRunner::Run(
      client, {"index:" + name},
      [name](const ReconnaissanceRunner::ReadResults& recon) {
        const Key record = "cust:" + recon.at("index:" + name).value;
        return ReconnaissanceRunner::MainTxn{{record}, {record}};
      },
      [name, amount](CarouselClient* client, const TxnId& tid,
                     const ReconnaissanceRunner::ReadResults& reads) {
        for (const auto& [k, vv] : reads) {
          if (k.rfind("cust:", 0) == 0) {
            client->Write(tid, k,
                          std::to_string(std::stoi(vv.value) + amount));
          }
        }
      },
      std::move(done));
}

TEST(ReconTest, PaymentByNameCommits) {
  auto cluster = MakeCluster();
  Seed(*cluster, "ada", "17", "100");

  Status result = Status::Internal("not done");
  int attempts = 0;
  PaymentByName(*cluster, 0, "ada", 25, [&](Status s, int a) {
    result = s;
    attempts = a;
  });
  cluster->sim().RunFor(10 * kMicrosPerSecond);

  EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(LeaderValue(*cluster, "cust:17").value, "125");
  EXPECT_EQ(LeaderValue(*cluster, "index:ada").version, 1u)
      << "reconnaissance must not write the index";
}

TEST(ReconTest, IndexChangeBetweenReconAndMainRetries) {
  auto cluster = MakeCluster();
  Seed(*cluster, "bob", "1", "100");
  Seed(*cluster, "spare", "2", "500");

  // Interleave: start the payment, and while it is in flight re-point the
  // index entry for bob to customer 2 (e.g., an account merge).
  Status result = Status::Internal("not done");
  int attempts = 0;
  PaymentByName(*cluster, 0, "bob", 10, [&](Status s, int a) {
    result = s;
    attempts = a;
  });
  // The index rewrite lands between the reconnaissance read and the main
  // transaction's validation read.
  cluster->sim().Schedule(5 * kMicrosPerMilli, [&]() {
    CarouselClient* other = cluster->client(3);
    const TxnId tid = other->Begin();
    other->ReadAndPrepare(tid, {}, {"index:bob"},
                          [&, other, tid](Status,
                                          const CarouselClient::ReadResults&) {
                            other->Write(tid, "index:bob", "2");
                            other->Commit(tid, [](Status) {});
                          });
  });
  cluster->sim().RunFor(30 * kMicrosPerSecond);

  ASSERT_TRUE(result.ok()) << result;
  EXPECT_GE(attempts, 2) << "expected at least one retry";
  // The payment must have landed on the customer the index pointed to at
  // commit time — customer 2, not customer 1.
  EXPECT_EQ(LeaderValue(*cluster, "cust:1").value, "100");
  EXPECT_EQ(LeaderValue(*cluster, "cust:2").value, "510");
}

TEST(ReconTest, GivesUpAfterMaxAttempts) {
  auto cluster = MakeCluster();
  Seed(*cluster, "hot", "9", "100");

  // A writer hammers the index entry every 50 ms so every validation
  // fails.
  std::function<void()> hammer = [&]() {
    CarouselClient* other = cluster->client(4);
    const TxnId tid = other->Begin();
    other->ReadAndPrepare(tid, {}, {"index:hot"},
                          [&, other, tid](Status,
                                          const CarouselClient::ReadResults&) {
                            other->Write(tid, "index:hot", "9");
                            other->Commit(tid, [](Status) {});
                          });
    cluster->sim().Schedule(50 * kMicrosPerMilli, hammer);
  };
  hammer();

  Status result = Status::Internal("not done");
  int attempts = 0;
  CarouselClient* client = cluster->client(0);
  ReconnaissanceRunner::Run(
      client, {"index:hot"},
      [](const ReconnaissanceRunner::ReadResults& recon) {
        const Key record = "cust:" + recon.at("index:hot").value;
        return ReconnaissanceRunner::MainTxn{{record}, {record}};
      },
      [](CarouselClient* c, const TxnId& tid,
         const ReconnaissanceRunner::ReadResults&) {
        c->Write(tid, "cust:9", "0");
      },
      [&](Status s, int a) {
        result = s;
        attempts = a;
      },
      /*max_attempts=*/3);
  cluster->sim().RunFor(60 * kMicrosPerSecond);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kAborted);
  EXPECT_LE(attempts, 3);
}

TEST(ReconTest, DerivedMultiKeyTransaction) {
  // Reconnaissance discovering several keys at once (an index page
  // listing members of a group).
  auto cluster = MakeCluster();
  ASSERT_TRUE(RunTxn(*cluster, 0, {},
                     {{"group:g", "a,b"},
                      {"member:a", "1"},
                      {"member:b", "2"}})
                  .commit_status.ok());
  cluster->sim().RunFor(3 * kMicrosPerSecond);

  Status result = Status::Internal("not done");
  ReconnaissanceRunner::Run(
      cluster->client(1), {"group:g"},
      [](const ReconnaissanceRunner::ReadResults& recon) {
        ReconnaissanceRunner::MainTxn main;
        std::string members = recon.at("group:g").value;
        size_t start = 0;
        while (start < members.size()) {
          size_t comma = members.find(',', start);
          if (comma == std::string::npos) comma = members.size();
          const Key k = "member:" + members.substr(start, comma - start);
          main.reads.push_back(k);
          main.writes.push_back(k);
          start = comma + 1;
        }
        return main;
      },
      [](CarouselClient* c, const TxnId& tid,
         const ReconnaissanceRunner::ReadResults& reads) {
        for (const auto& [k, vv] : reads) {
          if (k.rfind("member:", 0) == 0) {
            c->Write(tid, k, vv.value + "+");
          }
        }
      },
      [&](Status s, int) { result = s; });
  cluster->sim().RunFor(10 * kMicrosPerSecond);

  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(LeaderValue(*cluster, "member:a").value, "1+");
  EXPECT_EQ(LeaderValue(*cluster, "member:b").value, "2+");
}

}  // namespace
}  // namespace carousel::test
