#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;
using obs::Counter;
using obs::Gauge;
using obs::Histo;
using obs::MetricsRegistry;
using obs::MetricsSampler;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Registry handle semantics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterIncrementsAndShowsInSnapshot) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter c = reg.GetCounter("a.count");
  EXPECT_TRUE(c.active());
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);

  // Re-requesting the same name returns a handle onto the same cell.
  Counter again = reg.GetCounter("a.count");
  again.Increment();
  EXPECT_EQ(c.value(), 6u);

  MetricsSnapshot snap = reg.Snapshot(/*at=*/123);
  EXPECT_EQ(snap.at, 123);
  EXPECT_EQ(snap.counters.at("a.count"), 6u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg(true);
  Gauge g = reg.GetGauge("queue.depth");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(reg.Snapshot(0).gauges.at("queue.depth"), 7);
}

TEST(MetricsRegistryTest, HistogramRecordsIntoSnapshot) {
  MetricsRegistry reg(true);
  Histo h = reg.GetHistogram("latency");
  for (int i = 1; i <= 100; ++i) h.Record(i * 100);
  // Keep the snapshot alive: binding through .at() on the temporary would
  // leave `snap` dangling after the full expression.
  const MetricsSnapshot snapshot = reg.Snapshot(0);
  const Histogram& snap = snapshot.histograms.at("latency");
  EXPECT_EQ(snap.count(), 100);
  EXPECT_EQ(snap.min(), 100);
  EXPECT_EQ(snap.max(), 10000);
  EXPECT_GT(snap.Quantile(0.9), snap.Quantile(0.5));
}

TEST(MetricsRegistryTest, ExposedValuesAreReadAtSnapshotTime) {
  MetricsRegistry reg(true);
  uint64_t cell = 0;
  int64_t live = 0;
  reg.ExposeCounter("exposed.count", &cell);
  reg.ExposeGauge("exposed.gauge", [&live]() { return live; });

  // Nothing is read until a snapshot is taken.
  cell = 42;
  live = -7;
  MetricsSnapshot snap = reg.Snapshot(0);
  EXPECT_EQ(snap.counters.at("exposed.count"), 42u);
  EXPECT_EQ(snap.gauges.at("exposed.gauge"), -7);

  cell = 43;
  EXPECT_EQ(reg.Snapshot(0).counters.at("exposed.count"), 43u);
}

TEST(MetricsRegistryTest, DisabledRegistryHandsOutNullHandles) {
  MetricsRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());

  Counter c = reg.GetCounter("x");
  Gauge g = reg.GetGauge("y");
  Histo h = reg.GetHistogram("z");
  EXPECT_FALSE(c.active());
  EXPECT_FALSE(g.active());
  EXPECT_FALSE(h.active());

  // All operations are no-ops, not crashes.
  c.Increment(100);
  g.Set(5);
  g.Add(5);
  h.Record(1000);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);

  uint64_t cell = 9;
  reg.ExposeCounter("e", &cell);
  reg.ExposeGauge("f", []() { return int64_t{1}; });

  MetricsSnapshot snap = reg.Snapshot(55);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

// A default-constructed handle (what instrumented code holds before any
// registry is attached) behaves exactly like a disabled-registry handle.
TEST(MetricsRegistryTest, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histo h;
  c.Increment();
  g.Add(3);
  h.Record(10);
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.value(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot merge.
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, MergeAddsCountersAndGaugesAndFoldsHistograms) {
  MetricsRegistry a(true);
  MetricsRegistry b(true);
  a.GetCounter("shared").Increment(3);
  b.GetCounter("shared").Increment(4);
  b.GetCounter("only_b").Increment(1);
  a.GetGauge("depth").Set(5);
  b.GetGauge("depth").Set(7);
  a.GetHistogram("lat").Record(100);
  b.GetHistogram("lat").Record(300);

  MetricsSnapshot merged = a.Snapshot(10);
  merged.Merge(b.Snapshot(20));
  EXPECT_EQ(merged.at, 20);  // Later timestamp wins.
  EXPECT_EQ(merged.counters.at("shared"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("depth"), 12);  // Cluster total.
  EXPECT_EQ(merged.histograms.at("lat").count(), 2);
  EXPECT_EQ(merged.histograms.at("lat").min(), 100);
  EXPECT_EQ(merged.histograms.at("lat").max(), 300);
}

// ---------------------------------------------------------------------------
// Sampler: a deterministic sim-time series.
// ---------------------------------------------------------------------------

TEST(MetricsSamplerTest, SamplesAtIntervalUpToBound) {
  sim::Simulator sim(/*seed=*/7);
  MetricsRegistry reg(true);
  Counter c = reg.GetCounter("events");
  // Bump the counter at 150us and 450us.
  sim.ScheduleAt(150, [&c]() { c.Increment(); });
  sim.ScheduleAt(450, [&c]() { c.Increment(); });

  MetricsSampler sampler(&sim, &reg);
  sampler.Start(/*interval=*/100, /*until=*/500);
  sim.RunToCompletion();

  ASSERT_EQ(sampler.rows().size(), 5u);  // 100, 200, ..., 500.
  EXPECT_EQ(sampler.rows()[0].at, 100);
  EXPECT_EQ(sampler.rows()[4].at, 500);
  EXPECT_EQ(sampler.rows()[0].counters.at("events"), 0u);
  EXPECT_EQ(sampler.rows()[1].counters.at("events"), 1u);
  EXPECT_EQ(sampler.rows()[4].counters.at("events"), 2u);
  // The sampler's own events must not extend sim time past `until`.
  EXPECT_LE(sim.now(), 500);
}

// ---------------------------------------------------------------------------
// Whole-cluster properties: metrics must never change simulation results,
// and identical seeds must produce identical snapshots.
// ---------------------------------------------------------------------------

struct RunResult {
  SimTime end_time = 0;
  std::vector<bool> outcomes;
  std::vector<Version> versions;
};

RunResult RunWorkload(bool metrics_enabled, bool batching) {
  CarouselOptions options = FastCpcOptions();
  options.metrics.enabled = metrics_enabled;
  options.batching.enabled = batching;
  options.batching.coalesce_deliveries = batching;
  auto cluster = Ec2Cluster(options, /*client_dc=*/2, /*seed=*/17);

  RunResult result;
  const Key k0 = KeyInPartition(*cluster, 0, "wk-a");
  const Key k1 = KeyInPartition(*cluster, 1, "wk-b");
  for (int i = 0; i < 4; ++i) {
    TxnOutcome rw = RunTxn(*cluster, 0, {k0, k1},
                           {{k0, "v" + std::to_string(i)}, {k1, "w"}});
    result.outcomes.push_back(rw.commit_status.ok());
    TxnOutcome ro = RunTxn(*cluster, 0, {k0}, {});
    result.outcomes.push_back(ro.commit_status.ok());
  }
  cluster->sim().RunFor(kMicrosPerSecond);
  result.end_time = cluster->sim().now();
  result.versions.push_back(LeaderValue(*cluster, k0).version);
  result.versions.push_back(LeaderValue(*cluster, k1).version);
  return result;
}

TEST(MetricsClusterTest, EnablingMetricsDoesNotChangeSimResults) {
  for (const bool batching : {false, true}) {
    SCOPED_TRACE(batching ? "batched" : "unbatched");
    const RunResult off = RunWorkload(/*metrics_enabled=*/false, batching);
    const RunResult on = RunWorkload(/*metrics_enabled=*/true, batching);
    // The observer layer must be invisible: same outcomes, same final
    // versions, and the exact same simulated clock.
    EXPECT_EQ(off.end_time, on.end_time);
    EXPECT_EQ(off.outcomes, on.outcomes);
    EXPECT_EQ(off.versions, on.versions);
  }
}

TEST(MetricsClusterTest, IdenticalSeedsProduceIdenticalSnapshots) {
  auto run = [](uint64_t seed) -> std::string {
    CarouselOptions options = FastCpcOptions();
    options.metrics.enabled = true;
    auto cluster = Ec2Cluster(options, /*client_dc=*/2, seed);
    const Key k0 = KeyInPartition(*cluster, 0, "det-a");
    for (int i = 0; i < 3; ++i) {
      RunTxn(*cluster, 0, {k0}, {{k0, "v" + std::to_string(i)}});
    }
    cluster->sim().RunFor(kMicrosPerSecond);
    return cluster->MetricsJson(2);
  };
  const std::string a = run(29);
  const std::string b = run(29);
  EXPECT_EQ(a, b) << "same seed must produce a byte-identical snapshot";
  EXPECT_NE(a.find("\"wanrt\""), std::string::npos);
  EXPECT_NE(a.find("rw_decided_hops"), std::string::npos);
}

TEST(MetricsClusterTest, ServerRoleCountersAppearUnderDottedNames) {
  CarouselOptions options = FastCpcOptions();
  options.metrics.enabled = true;
  auto cluster = Ec2Cluster(options, /*client_dc=*/2, /*seed=*/31);
  const Key k0 = KeyInPartition(*cluster, 0, "names-a");
  TxnOutcome out = RunTxn(*cluster, 0, {k0}, {{k0, "x"}});
  ASSERT_TRUE(out.commit_status.ok()) << out.commit_status;
  cluster->sim().RunFor(kMicrosPerSecond);

  MetricsSnapshot snap = cluster->metrics().Snapshot(cluster->sim().now());
  uint64_t prepares = 0, commits = 0, dispatched = 0, started = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name.find(".participant.prepares_ok") != std::string::npos) {
      prepares += v;
    }
    if (name.find(".coordinator.commits") != std::string::npos) commits += v;
    if (name.find(".dispatch.messages") != std::string::npos) dispatched += v;
    if (name.find(".txns_started") != std::string::npos) started += v;
  }
  EXPECT_GE(prepares, 1u);
  EXPECT_EQ(commits, 1u);
  EXPECT_GT(dispatched, 0u);
  EXPECT_EQ(started, 1u);
}

}  // namespace
}  // namespace carousel::test
