#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/consistent_hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/topology.h"
#include "common/types.h"
#include "common/zipfian.h"

namespace carousel {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Aborted("conflict on key x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.message(), "conflict on key x");
  EXPECT_EQ(s.ToString(), "Aborted: conflict on key x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kAborted, StatusCode::kNotFound,
        StatusCode::kInvalidArgument, StatusCode::kUnavailable,
        StatusCode::kTimedOut, StatusCode::kNotLeader, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::map<int64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) counts[rng.UniformInt(1, 6)]++;
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, kDraws / 6 * 0.9);
    EXPECT_LT(c, kDraws / 6 * 1.1);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(99);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.2);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

// ---------------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------------

TEST(ZipfianTest, RanksWithinRange) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.75);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(&rng), 1000u);
}

TEST(ZipfianTest, SkewFavorsLowRanks) {
  Rng rng(3);
  ZipfianGenerator zipf(100000, 0.75);
  int top10 = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(&rng) < 10) top10++;
  }
  // With theta=0.75 over 100k items the 10 hottest items draw far more
  // than their uniform share (0.01%).
  EXPECT_GT(top10, kDraws / 100);
}

TEST(ZipfianTest, ZeroThetaIsUniform) {
  Rng rng(3);
  ZipfianGenerator zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[zipf.Next(&rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 10000, 1500);
  }
}

TEST(ZipfianTest, ScrambleStaysInRange) {
  for (uint64_t r = 0; r < 1000; ++r) {
    EXPECT_LT(ScrambleRank(r, 777), 777u);
  }
}

TEST(ZipfianTest, ScrambleSpreadsHotRanks) {
  // The 10 hottest ranks should land far apart after scrambling.
  std::set<uint64_t> positions;
  for (uint64_t r = 0; r < 10; ++r) positions.insert(ScrambleRank(r, 1 << 20));
  EXPECT_EQ(positions.size(), 10u);
  uint64_t prev = 0;
  bool contiguous = true;
  for (uint64_t p : positions) {
    if (p != prev + 1 && prev != 0) contiguous = false;
    prev = p;
  }
  EXPECT_FALSE(contiguous);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(250);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 250);
  EXPECT_EQ(h.max(), 250);
  // Bucketed quantile within one linear bucket (50 us).
  EXPECT_NEAR(h.Quantile(0.5), 250, 50);
}

TEST(HistogramTest, QuantilesAreOrderedAndAccurate) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(i);  // 1 us .. 100 ms
  const int64_t p50 = h.Quantile(0.50);
  const int64_t p95 = h.Quantile(0.95);
  const int64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(static_cast<double>(p50), 50000, 50000 * 0.06);
  EXPECT_NEAR(static_cast<double>(p95), 95000, 95000 * 0.06);
  EXPECT_NEAR(static_cast<double>(p99), 99000, 99000 * 0.06);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // Regression: quantiles used to snap to the covering bucket's upper
  // edge. Two-bucket corpus: 100 samples in [0,25) and 100 in [50,75).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);
  for (int i = 0; i < 100; ++i) h.Record(60);
  // p25 falls mid-way through the first bucket; the old code returned
  // exactly the bucket upper edge (25).
  const int64_t p25 = h.Quantile(0.25);
  EXPECT_GE(p25, 10);
  EXPECT_LT(p25, 25);
  // Quantiles never leave the observed range.
  EXPECT_GE(h.Quantile(0.0), 10);
  EXPECT_LE(h.Quantile(1.0), 60);
  EXPECT_LE(h.Quantile(0.99), 60);
  // Monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
}

TEST(HistogramTest, MergeMatchesRecordingIntoOne) {
  Histogram a, b, whole;
  for (int i = 1; i <= 1000; ++i) {
    (i % 2 == 0 ? a : b).Record(i * 100);
    whole.Record(i * 100);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-6);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
  // Merging an empty histogram is a no-op.
  Histogram empty;
  const int64_t before = a.Quantile(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.Quantile(0.5), before);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1000);
  for (int i = 0; i < 100; ++i) b.Record(9000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 1000);
  EXPECT_EQ(a.max(), 9000);
  EXPECT_NEAR(a.Mean(), 5000, 1);
}

TEST(HistogramTest, CdfPointsAreMonotonic) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Record(rng.UniformInt(100, 400000));
  auto points = h.CdfPoints();
  ASSERT_FALSE(points.empty());
  double prev_x = -1, prev_y = -1;
  for (const auto& [x, y] : points) {
    EXPECT_GT(x, prev_x);
    EXPECT_GE(y, prev_y);
    prev_x = x;
    prev_y = y;
  }
  EXPECT_NEAR(points.back().second, 1.0, 1e-9);
}

TEST(HistogramTest, ExtremeValuesClampedNotLost) {
  Histogram h;
  h.Record(-5);
  h.Record(1LL << 60);
  EXPECT_EQ(h.count(), 2);
}

// ---------------------------------------------------------------------------
// Consistent hashing
// ---------------------------------------------------------------------------

TEST(ConsistentHashTest, CoversAllPartitions) {
  ConsistentHashRing ring(5);
  std::set<PartitionId> seen;
  for (int i = 0; i < 10000; ++i) {
    const PartitionId p = ring.PartitionFor("key" + std::to_string(i));
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 5);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ConsistentHashTest, ReasonablyBalanced) {
  ConsistentHashRing ring(5, 128);
  std::map<PartitionId, int> counts;
  const int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    counts[ring.PartitionFor("key" + std::to_string(i))]++;
  }
  for (const auto& [p, c] : counts) {
    EXPECT_GT(c, kKeys / 5 / 2) << "partition " << p << " underloaded";
    EXPECT_LT(c, kKeys / 5 * 2) << "partition " << p << " overloaded";
  }
}

TEST(ConsistentHashTest, Deterministic) {
  ConsistentHashRing a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    const Key k = "det" + std::to_string(i);
    EXPECT_EQ(a.PartitionFor(k), b.PartitionFor(k));
  }
}

TEST(ConsistentHashTest, RemovalOnlyMovesKeysOfRemovedPartition) {
  ConsistentHashRing ring(5);
  std::map<Key, PartitionId> before;
  for (int i = 0; i < 5000; ++i) {
    const Key k = "mv" + std::to_string(i);
    before[k] = ring.PartitionFor(k);
  }
  ring.RemovePartition(4);
  for (const auto& [k, p] : before) {
    const PartitionId now = ring.PartitionFor(k);
    if (p != 4) {
      EXPECT_EQ(now, p) << "key " << k << " moved needlessly";
    } else {
      EXPECT_NE(now, 4);
    }
  }
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(TopologyTest, PaperEc2MatchesTable1) {
  Topology t = Topology::PaperEc2();
  ASSERT_EQ(t.num_dcs(), 5);
  // Spot checks against Table 1 (ms -> us).
  EXPECT_EQ(t.RttMicros(0, 1), 73 * kMicrosPerMilli);   // USW-USE
  EXPECT_EQ(t.RttMicros(2, 4), 290 * kMicrosPerMilli);  // Euro-Australia
  EXPECT_EQ(t.RttMicros(3, 4), 115 * kMicrosPerMilli);  // Asia-Australia
  // Symmetry.
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(t.RttMicros(a, b), t.RttMicros(b, a));
    }
  }
}

TEST(TopologyTest, PlacementOneReplicaPerDcPerPartition) {
  Topology t = Topology::PaperEc2();
  t.PlacePartitions(5, 3);
  EXPECT_EQ(t.max_failures(), 1);
  for (PartitionId p = 0; p < 5; ++p) {
    std::set<DcId> dcs;
    for (NodeId n : t.Replicas(p)) dcs.insert(t.DcOf(n));
    EXPECT_EQ(dcs.size(), 3u) << "partition " << p;
  }
  // Each DC hosts exactly replication-factor replicas and leads one
  // partition.
  std::map<DcId, int> per_dc;
  for (const NodeInfo& n : t.nodes()) per_dc[n.dc]++;
  for (const auto& [dc, count] : per_dc) EXPECT_EQ(count, 3);
  for (DcId dc = 0; dc < 5; ++dc) {
    EXPECT_EQ(t.HomePartitionOf(dc), dc);
  }
}

TEST(TopologyTest, ReplicaInFindsLocalReplica) {
  Topology t = Topology::PaperEc2();
  t.PlacePartitions(5, 3);
  // Partition 0 replicas: DCs 0, 1, 2.
  EXPECT_NE(t.ReplicaIn(0, 0), kInvalidNode);
  EXPECT_NE(t.ReplicaIn(0, 2), kInvalidNode);
  EXPECT_EQ(t.ReplicaIn(0, 3), kInvalidNode);
  EXPECT_EQ(t.ReplicaIn(0, 4), kInvalidNode);
}

TEST(TopologyTest, ClientsAppendAfterServers) {
  Topology t = Topology::Uniform(3, 10);
  t.PlacePartitions(3, 3);
  const NodeId c = t.AddClient(1);
  EXPECT_EQ(c, 9);
  EXPECT_TRUE(t.node(c).is_client);
  EXPECT_EQ(t.DcOf(c), 1);
  EXPECT_EQ(t.clients().size(), 1u);
}

TEST(TxnIdTest, OrderingAndHash) {
  TxnId a{1, 5}, b{1, 6}, c{2, 1};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (TxnId{1, 5}));
  TxnIdHash h;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(a.ToString(), "1.5");
}

}  // namespace
}  // namespace carousel
