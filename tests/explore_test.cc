// Systematic interleaving exploration (tier-1, label `explore`): the
// bounded-DFS explorer enumerates delivery orderings of the real protocol
// stack under controlled scheduling and certifies every terminal state.
//
// Three claims are locked down here:
//  - Coverage: the canonical configuration (2 conflicting transactions on
//    1 partition x 3 DCs, no crashes) visits >= 10,000 distinct schedules,
//    terminates, and certifies every one of them clean.
//  - Sensitivity: the explorer finds flag-gated injected protocol bugs
//    (the same --inject-bug machinery the chaos harness self-tests with),
//    and the violating schedule it dumps replays deterministically.
//  - Regression: pinned traces under tests/corpus/ — schedules that
//    reproduce each injected bug — keep replaying step-for-step, so
//    neither the scheduler seam nor the trace format can silently drift.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "check/explore.h"

namespace carousel::check {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string CorpusPath(const std::string& name) {
  return std::string(CAROUSEL_CORPUS_DIR) + "/" + name;
}

/// The canonical acceptance sweep: every reachable schedule within the
/// depth bound certifies serializable, and the bound is deep enough to
/// clear the 10k-schedule coverage floor.
TEST(ExploreTest, CanonicalSweepCertifiesTenThousandSchedules) {
  ExploreConfig config;
  config.txns = 2;
  config.max_depth = 7;
  ExploreResult r = Explore(config);
  EXPECT_TRUE(r.ok()) << r.Summary() << "\n" << r.violation_report;
  EXPECT_TRUE(r.exhausted) << r.Summary();
  EXPECT_EQ(r.truncated, 0u) << r.Summary();
  EXPECT_GE(r.schedules, 10000u) << r.Summary();
}

/// Crash points at the prepare/decision persistence boundaries widen the
/// space; the sweep must still terminate and certify clean.
TEST(ExploreTest, CrashPointSweepStaysClean) {
  ExploreConfig config;
  config.txns = 2;
  config.max_depth = 5;
  config.max_crashes = 1;
  ExploreResult r = Explore(config);
  EXPECT_TRUE(r.ok()) << r.Summary() << "\n" << r.violation_report;
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

/// Checker self-test: the flag-gated fast-path bug (skipping the leader
/// check) must be found, and the dumped trace must replay to the same
/// violation — byte-identical through a JSON round-trip.
TEST(ExploreTest, InjectedFastPathBugIsFoundAndReplays) {
  ExploreConfig config;
  config.txns = 2;
  config.max_depth = 7;
  config.inject_bug_fast_path = true;
  ExploreResult r = Explore(config);
  ASSERT_TRUE(r.violation_found) << r.Summary();
  EXPECT_FALSE(r.violation_trace.steps.empty());

  ScheduleTrace trace;
  std::string error;
  ASSERT_TRUE(ScheduleTrace::FromJson(r.violation_trace.ToJson(), &trace,
                                      &error))
      << error;
  EXPECT_EQ(trace.ToJson(), r.violation_trace.ToJson());

  RunOutcome replay = ReplayTrace(trace, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_FALSE(replay.ok()) << "replay did not reproduce the violation";
  EXPECT_EQ(replay.violation, r.violation_trace.violation);
}

/// The stale-local-read bug hides past any feasible prefix depth (the
/// first transaction's own execution exhausts the depth budget); the
/// CHESS-style delay bound reaches it: sequential transactions, local
/// reads on, and two deviations from the default order suffice.
TEST(ExploreTest, InjectedStaleReadBugFoundViaDelayBounding) {
  ExploreConfig config;
  config.txns = 2;
  config.partitions = 1;
  config.sequential = true;
  config.local_reads = true;
  config.inject_bug_stale_read = true;
  config.delay_bound = 2;
  ExploreResult r = Explore(config);
  ASSERT_TRUE(r.violation_found) << r.Summary();

  std::string error;
  RunOutcome replay = ReplayTrace(r.violation_trace, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(replay.ok()) << "replay did not reproduce the violation";
}

/// False-positive control for the delay-bounded sequential regime: the
/// same configuration WITHOUT the injected bug must exhaust clean — the
/// explorer may not manufacture violations out of legal schedules.
TEST(ExploreTest, CleanSequentialDelaySweepStaysClean) {
  ExploreConfig config;
  config.txns = 2;
  config.partitions = 1;
  config.sequential = true;
  config.local_reads = true;
  config.delay_bound = 2;
  ExploreResult r = Explore(config);
  EXPECT_TRUE(r.ok()) << r.Summary() << "\n" << r.violation_report;
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

/// Pinned corpus: each committed trace must parse, replay without a
/// scheduling divergence, and reproduce its recorded violation.
TEST(ExploreTest, CorpusTracesReplayDeterministically) {
  for (const char* name :
       {"explore-fastpath-cycle.json", "explore-stale-read-cycle.json"}) {
    SCOPED_TRACE(name);
    ScheduleTrace trace;
    std::string error;
    ASSERT_TRUE(
        ScheduleTrace::FromJson(ReadFileOrDie(CorpusPath(name)), &trace,
                                &error))
        << error;
    ASSERT_FALSE(trace.violation.empty())
        << "corpus traces pin violations; this one records none";
    RunOutcome replay = ReplayTrace(trace, &error);
    EXPECT_TRUE(error.empty()) << "scheduling divergence: " << error;
    EXPECT_FALSE(replay.ok())
        << "trace no longer reproduces its recorded violation";
  }
}

}  // namespace
}  // namespace carousel::check
