#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/topology.h"
#include "raft/raft_node.h"
#include "sim/network.h"
#include "runtime/endpoint.h"
#include "sim/simulator.h"

namespace carousel::raft {
namespace {

struct TestPayload final : sim::Message {
  int value = 0;
  int type() const override { return 99; }
  size_t SizeBytes() const override { return 16; }
};

sim::MessagePtr Payload(int value) {
  auto msg = std::make_shared<TestPayload>();
  msg->value = value;
  return msg;
}

/// Hosts one RaftNode on the simulated network and records applies.
class RaftHost : public carousel::runtime::Endpoint {
 public:
  RaftHost(NodeId id, DcId dc, std::vector<NodeId> members,
           sim::Simulator* sim, RaftOptions options)
      : carousel::runtime::Endpoint(id, dc) {
    raft = std::make_unique<RaftNode>(0, id, std::move(members), sim, sim,
                                      sim->rng()->Fork(), options);
    raft->set_send_fn([this](NodeId to, sim::MessagePtr msg) {
      Send(to, std::move(msg));
    });
    raft->set_apply_fn([this](uint64_t index, const sim::MessagePtr& payload) {
      if (payload && payload->type() == 99) {
        applied.push_back({index, sim::As<TestPayload>(*payload).value});
      }
    });
  }

  void HandleMessage(NodeId from, const sim::MessagePtr& msg) override {
    raft->HandleMessage(from, msg);
  }
  void OnCrash() override { raft->OnCrash(); }
  void OnRecover() override { raft->OnRecover(); }

  std::unique_ptr<RaftNode> raft;
  std::vector<std::pair<uint64_t, int>> applied;
};

/// A 2f+1-member Raft group, each member in its own DC.
class RaftGroup {
 public:
  explicit RaftGroup(int n, uint64_t seed = 17, double rtt_ms = 10) {
    topo_ = Topology::Uniform(n, rtt_ms);
    topo_.PlacePartitions(n, 1);  // One placeholder node per DC.
    sim = std::make_unique<sim::Simulator>(seed);
    net = std::make_unique<sim::Network>(sim.get(), &topo_,
                                         sim::NetworkOptions{});
    std::vector<NodeId> members;
    for (int i = 0; i < n; ++i) members.push_back(i);
    RaftOptions options;
    options.election_timeout_min = 150'000;
    options.election_timeout_max = 300'000;
    options.heartbeat_interval = 40'000;
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<RaftHost>(i, i, members, sim.get(),
                                                 options));
      net->Register(hosts.back().get());
    }
  }

  void Start(bool bootstrap = true) {
    for (size_t i = 0; i < hosts.size(); ++i) {
      hosts[i]->raft->Start(bootstrap && i == 0);
    }
    sim->RunFor(50 * kMicrosPerMilli);
  }

  RaftHost* Leader() {
    for (auto& h : hosts) {
      if (h->alive() && h->raft->is_leader()) return h.get();
    }
    return nullptr;
  }

  int CountLeaders() {
    int n = 0;
    for (auto& h : hosts) {
      if (h->alive() && h->raft->is_leader()) n++;
    }
    return n;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::Network> net;
  std::vector<std::unique_ptr<RaftHost>> hosts;

 private:
  Topology topo_;
};

TEST(RaftTest, BootstrapElectsReplicaZero) {
  RaftGroup group(3);
  group.Start();
  ASSERT_NE(group.Leader(), nullptr);
  EXPECT_EQ(group.Leader()->id(), 0);
  EXPECT_EQ(group.CountLeaders(), 1);
  // Followers learn the leader via heartbeats.
  EXPECT_EQ(group.hosts[1]->raft->leader_hint(), 0);
  EXPECT_EQ(group.hosts[2]->raft->leader_hint(), 0);
}

TEST(RaftTest, ElectionWithoutBootstrap) {
  RaftGroup group(3);
  group.Start(/*bootstrap=*/false);
  group.sim->RunFor(2 * kMicrosPerSecond);
  ASSERT_NE(group.Leader(), nullptr);
  EXPECT_EQ(group.CountLeaders(), 1);
}

TEST(RaftTest, ProposalsReplicateAndApplyEverywhere) {
  RaftGroup group(3);
  group.Start();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(group.Leader()->raft->Propose(Payload(i)).ok());
  }
  group.sim->RunFor(kMicrosPerSecond);
  for (auto& host : group.hosts) {
    ASSERT_EQ(host->applied.size(), 5u) << "host " << host->id();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(host->applied[i].second, i);
  }
}

TEST(RaftTest, ProposeOnFollowerFails) {
  RaftGroup group(3);
  group.Start();
  auto result = group.hosts[1]->raft->Propose(Payload(1));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotLeader);
}

TEST(RaftTest, LeaderCrashTriggersFailoverAndPreservesLog) {
  RaftGroup group(3);
  group.Start();
  ASSERT_TRUE(group.Leader()->raft->Propose(Payload(42)).ok());
  group.sim->RunFor(kMicrosPerSecond);

  group.net->Crash(0);
  group.sim->RunFor(2 * kMicrosPerSecond);
  RaftHost* leader = group.Leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_NE(leader->id(), 0);
  EXPECT_GT(leader->raft->term(), 1u);

  ASSERT_TRUE(leader->raft->Propose(Payload(43)).ok());
  group.sim->RunFor(kMicrosPerSecond);
  for (auto& host : group.hosts) {
    if (!host->alive()) continue;
    ASSERT_EQ(host->applied.size(), 2u);
    EXPECT_EQ(host->applied[0].second, 42);
    EXPECT_EQ(host->applied[1].second, 43);
  }
}

TEST(RaftTest, CrashedLeaderRejoinsAsFollowerAndCatchesUp) {
  RaftGroup group(3);
  group.Start();
  ASSERT_TRUE(group.Leader()->raft->Propose(Payload(1)).ok());
  group.sim->RunFor(kMicrosPerSecond);
  group.net->Crash(0);
  group.sim->RunFor(2 * kMicrosPerSecond);
  ASSERT_NE(group.Leader(), nullptr);
  ASSERT_TRUE(group.Leader()->raft->Propose(Payload(2)).ok());
  group.sim->RunFor(kMicrosPerSecond);

  group.net->Recover(0);
  group.sim->RunFor(2 * kMicrosPerSecond);
  EXPECT_FALSE(group.hosts[0]->raft->is_leader());
  ASSERT_EQ(group.hosts[0]->applied.size(), 2u);
  EXPECT_EQ(group.hosts[0]->applied[1].second, 2);
  EXPECT_EQ(group.CountLeaders(), 1);
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  RaftGroup group(3);
  group.Start();
  // Isolate the leader from both followers.
  group.net->BlockPair(0, 1);
  group.net->BlockPair(0, 2);
  auto result = group.hosts[0]->raft->Propose(Payload(7));
  // The deposed leader may still accept the proposal locally...
  group.sim->RunFor(2 * kMicrosPerSecond);
  // ...but it must never apply it, and the majority side elects a new
  // leader which does not have the entry.
  for (auto& host : group.hosts) {
    for (auto& [index, value] : host->applied) EXPECT_NE(value, 7);
  }
  RaftHost* new_leader = nullptr;
  for (auto& h : group.hosts) {
    if (h->id() != 0 && h->raft->is_leader()) new_leader = h.get();
  }
  ASSERT_NE(new_leader, nullptr);

  // Heal the partition: the old leader steps down and adopts the new log.
  ASSERT_TRUE(new_leader->raft->Propose(Payload(8)).ok());
  group.net->UnblockPair(0, 1);
  group.net->UnblockPair(0, 2);
  group.sim->RunFor(2 * kMicrosPerSecond);
  EXPECT_FALSE(group.hosts[0]->raft->is_leader());
  ASSERT_FALSE(group.hosts[0]->applied.empty());
  EXPECT_EQ(group.hosts[0]->applied.back().second, 8);
  (void)result;
}

TEST(RaftTest, FiveMemberGroupToleratesTwoFailures) {
  RaftGroup group(5);
  group.Start();
  group.net->Crash(3);
  group.net->Crash(4);
  ASSERT_TRUE(group.Leader()->raft->Propose(Payload(5)).ok());
  group.sim->RunFor(kMicrosPerSecond);
  int applied = 0;
  for (auto& host : group.hosts) {
    if (host->alive() && !host->applied.empty()) applied++;
  }
  EXPECT_EQ(applied, 3);
}

TEST(RaftTest, VoteCarriesPendingListAttachment) {
  RaftGroup group(3);
  // Member 1 attaches a two-entry pending list to granted votes.
  kv::PendingTxn a;
  a.tid = {1, 1};
  a.read_keys = {"x"};
  kv::PendingTxn b;
  b.tid = {2, 1};
  b.write_keys = {"y"};
  group.hosts[1]->raft->set_vote_attachment_fn(
      [a, b]() { return std::vector<kv::PendingTxn>{a, b}; });

  std::vector<std::vector<kv::PendingTxn>> received;
  bool got_leadership = false;
  for (auto& host : group.hosts) {
    host->raft->set_leadership_fn(
        [&received, &got_leadership](
            uint64_t, std::vector<std::vector<kv::PendingTxn>> lists) {
          received = std::move(lists);
          got_leadership = true;
        });
  }
  group.Start();
  got_leadership = false;  // Ignore the bootstrap callback.
  group.net->Crash(0);
  group.sim->RunFor(3 * kMicrosPerSecond);
  ASSERT_TRUE(got_leadership);
  // The new leader collected at least one vote list; if member 1 voted,
  // its list carries the two pending transactions.
  bool found = false;
  for (const auto& list : received) {
    if (list.size() == 2) found = true;
  }
  RaftHost* leader = group.Leader();
  ASSERT_NE(leader, nullptr);
  if (leader->id() == 2) {
    EXPECT_TRUE(found) << "vote from member 1 should carry its pending list";
  }
}

/// Property sweep: across seeds and group sizes, there is never more than
/// one leader per term, and all live members apply the same prefix.
class RaftPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RaftPropertyTest, SingleLeaderAndLogMatchingUnderChurn) {
  const int n = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  RaftGroup group(n, seed);
  group.Start();
  Rng rng(seed * 31 + 7);

  int proposed = 0;
  std::set<NodeId> crashed;
  for (int round = 0; round < 30; ++round) {
    // Random churn: crash or recover a member, keeping a majority alive.
    const NodeId victim = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    if (crashed.count(victim) > 0) {
      group.net->Recover(victim);
      crashed.erase(victim);
    } else if (static_cast<int>(crashed.size()) + 1 <= (n - 1) / 2) {
      group.net->Crash(victim);
      crashed.insert(victim);
    }
    RaftHost* leader = group.Leader();
    if (leader != nullptr) {
      if (leader->raft->Propose(Payload(proposed)).ok()) proposed++;
    }
    group.sim->RunFor(400 * kMicrosPerMilli);
    EXPECT_LE(group.CountLeaders(), 1);
  }
  for (NodeId id : std::vector<NodeId>(crashed.begin(), crashed.end())) {
    group.net->Recover(id);
  }
  group.sim->RunFor(5 * kMicrosPerSecond);

  // All members converge on the same applied sequence.
  ASSERT_GT(proposed, 0);
  const auto& reference = group.hosts[0]->applied;
  for (auto& host : group.hosts) {
    ASSERT_EQ(host->applied.size(), reference.size())
        << "host " << host->id();
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(host->applied[i].second, reference[i].second);
    }
  }
  // Applied values are strictly increasing (no dup, no loss, no reorder).
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_GT(reference[i].second, reference[i - 1].second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, RaftPropertyTest,
    ::testing::Combine(::testing::Values(3, 5),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace
}  // namespace carousel::raft
