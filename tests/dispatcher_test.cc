#include "runtime/dispatcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "carousel/messages.h"
#include "tapir/server.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;

// ---------------------------------------------------------------------------
// Dispatcher unit behaviour
// ---------------------------------------------------------------------------

TEST(DispatcherTest, RoutesTypedMessageToItsHandler) {
  runtime::Dispatcher d;
  NodeId got_from = kInvalidNode;
  TxnId got_tid;
  d.On<core::ReadPrepareMsg>(
      [&](NodeId from, const core::ReadPrepareMsg& msg) {
        got_from = from;
        got_tid = msg.tid;
      });

  auto msg = std::make_shared<core::ReadPrepareMsg>();
  msg->tid = TxnId{7, 42};
  EXPECT_TRUE(d.Dispatch(3, msg));
  EXPECT_EQ(got_from, 3);
  EXPECT_EQ(got_tid, (TxnId{7, 42}));
  EXPECT_EQ(d.unhandled_count(), 0u);
}

// Double registration is a wiring bug that must fail hard in every build
// mode (an assert would compile out under NDEBUG and silently drop the
// second handler).
TEST(DispatcherDeathTest, DuplicateTypedRegistrationAborts) {
  runtime::Dispatcher d;
  d.On<core::ReadPrepareMsg>([](NodeId, const core::ReadPrepareMsg&) {});
  EXPECT_DEATH(
      d.On<core::ReadPrepareMsg>([](NodeId, const core::ReadPrepareMsg&) {}),
      "duplicate handler registration for message type 200");
}

TEST(DispatcherDeathTest, DuplicateRawRegistrationAborts) {
  runtime::Dispatcher d;
  d.OnRaw(sim::kRaftRequestVote, [](NodeId, const sim::MessagePtr&) {});
  EXPECT_DEATH(
      d.OnRaw(sim::kRaftRequestVote, [](NodeId, const sim::MessagePtr&) {}),
      "duplicate handler registration for message type 100");
}

// Raw and typed registration share one handler table: a raw registration
// for a type that already has a typed handler must abort too.
TEST(DispatcherDeathTest, RawOverTypedRegistrationAborts) {
  runtime::Dispatcher d;
  d.On<core::HeartbeatMsg>([](NodeId, const core::HeartbeatMsg&) {});
  EXPECT_DEATH(
      d.OnRaw(sim::kCarouselHeartbeat, [](NodeId, const sim::MessagePtr&) {}),
      "duplicate handler registration for message type 209");
}

TEST(DispatcherTest, UnregisteredTypeIsRejectedLoudly) {
  runtime::Dispatcher d;
  d.On<core::ReadPrepareMsg>(
      [](NodeId, const core::ReadPrepareMsg&) { FAIL() << "wrong handler"; });

  // No handler for CommitRequestMsg: Dispatch must report failure and
  // count it — never run another type's handler on a blind downcast.
  auto msg = std::make_shared<core::CommitRequestMsg>();
  EXPECT_FALSE(d.Dispatch(1, msg));
  EXPECT_EQ(d.unhandled_count(), 1u);
  EXPECT_FALSE(d.Handles(msg->type()));
}

TEST(DispatcherTest, FallbackReceivesUnknownTypes) {
  runtime::Dispatcher d;
  int fallback_hits = 0;
  int fallback_type = -1;
  d.set_fallback([&](NodeId /*from*/, const sim::MessagePtr& msg) {
    fallback_hits++;
    fallback_type = msg->type();
  });
  auto msg = std::make_shared<core::HeartbeatMsg>();
  EXPECT_FALSE(d.Dispatch(1, msg));
  EXPECT_EQ(fallback_hits, 1);
  EXPECT_EQ(fallback_type, sim::kCarouselHeartbeat);
  EXPECT_EQ(d.unhandled_count(), 1u);
}

TEST(DispatcherTest, OnRawForwardsUntyped) {
  runtime::Dispatcher d;
  int hits = 0;
  d.OnRaw(sim::kCarouselHeartbeat,
          [&](NodeId, const sim::MessagePtr&) { hits++; });
  auto msg = std::make_shared<core::HeartbeatMsg>();
  EXPECT_TRUE(d.Dispatch(2, msg));
  EXPECT_EQ(hits, 1);
}

// ---------------------------------------------------------------------------
// Routing-table coverage: every message type a server can receive must be
// registered with exactly one handler (the Dispatcher enforces uniqueness
// at registration; here we verify presence).
// ---------------------------------------------------------------------------

TEST(DispatcherCoverageTest, CarouselServerHandlesEveryInboundType) {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  topo.AddClient(0);
  Cluster cluster(std::move(topo), FastRaftOptions());

  const core::CarouselServer* server = nullptr;
  for (const NodeInfo& info : cluster.topology().nodes()) {
    if (!info.is_client) {
      server = cluster.server(info.id);
      break;
    }
  }
  ASSERT_NE(server, nullptr);

  // Everything a Carousel data server can be sent: the Raft protocol range
  // plus every server-bound Carousel message. Client-bound responses
  // (ReadResponse, CommitResponse, NotLeader) are deliberately absent.
  const std::vector<int> inbound = {
      sim::kRaftRequestVote,        sim::kRaftVoteResponse,
      sim::kRaftAppendEntries,      sim::kRaftAppendResponse,
      sim::kCarouselReadPrepare,    sim::kCarouselPrepareDecision,
      sim::kCarouselCoordPrepare,   sim::kCarouselCommitRequest,
      sim::kCarouselAbortRequest,   sim::kCarouselWriteback,
      sim::kCarouselWritebackAck,   sim::kCarouselHeartbeat,
      sim::kCarouselQueryPrepare,   sim::kCarouselQueryDecision,
  };
  for (int type : inbound) {
    EXPECT_TRUE(server->dispatcher().Handles(type))
        << "no handler registered for inbound message type " << type;
  }
  EXPECT_FALSE(server->dispatcher().Handles(sim::kCarouselReadResponse));
  EXPECT_FALSE(server->dispatcher().Handles(sim::kCarouselCommitResponse));
  EXPECT_FALSE(server->dispatcher().Handles(sim::kCarouselNotLeader));

  // Every Raft log payload the protocol replicates must have an apply
  // route (including the leader's no-op barrier entries).
  const std::vector<int> log_types = {
      sim::kLogTxnInfo, sim::kLogWriteData,     sim::kLogDecision,
      sim::kLogCommit,  sim::kLogPrepareResult, sim::kLogNoop,
  };
  for (int type : log_types) {
    EXPECT_TRUE(server->apply_dispatcher().Handles(type))
        << "no apply handler registered for log payload type " << type;
  }
}

TEST(DispatcherCoverageTest, TapirServerHandlesEveryInboundType) {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(1, 3);
  NodeInfo info = topo.nodes().front();
  tapir::TapirServer server(info, core::ServerCostModel{});

  const std::vector<int> inbound = {sim::kTapirRead, sim::kTapirPrepare,
                                    sim::kTapirFinalize, sim::kTapirDecide};
  for (int type : inbound) {
    EXPECT_TRUE(server.dispatcher().Handles(type))
        << "no handler registered for inbound message type " << type;
  }
  EXPECT_EQ(server.dispatcher().RegisteredTypes().size(), inbound.size());
}

// A stray client-bound message delivered to a server must take the
// defined unknown-type path (counted), not crash or corrupt anything.
TEST(DispatcherCoverageTest, StrayResponseAtServerIsCountedNotFatal) {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  topo.AddClient(0);
  Cluster cluster(std::move(topo), FastRaftOptions());
  cluster.Start();

  core::CarouselServer* server = cluster.LeaderOf(0);
  ASSERT_NE(server, nullptr);
  const uint64_t before = server->dispatcher().unhandled_count();
  auto stray = std::make_shared<core::ReadResponseMsg>();
  stray->tid = TxnId{1, 1};
  server->HandleMessage(/*from=*/0, stray);
  EXPECT_EQ(server->dispatcher().unhandled_count(), before + 1);
  EXPECT_TRUE(server->serving());
}

}  // namespace
}  // namespace carousel::test
