// Loopback smoke tests for the threaded runtime (backend #2 of the
// runtime seam): a full Carousel deployment on real threads — and, in the
// TCP variant, real sockets with every message round-tripped through the
// wire codec — driven closed-loop until well over a thousand
// multi-partition transactions commit, then certified with the same
// serializability checker the simulator's chaos harness uses.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "carousel/client.h"
#include "carousel/server.h"
#include "check/history.h"
#include "check/serializability.h"
#include "common/rng.h"
#include "common/topology.h"
#include "harness/rt_cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

constexpr int kPartitions = 3;
constexpr int kKeysPerPartition = 8;
constexpr int kTargetCommits = 1100;

bool IsPrefix(const std::vector<TxnId>& prefix, const std::vector<TxnId>& of) {
  if (prefix.size() > of.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(prefix[i] == of[i])) return false;
  }
  return true;
}

// Shared across client drivers; everything here is touched from several
// loop threads.
struct Scoreboard {
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> done_clients{0};
};

// One closed-loop transaction driver pinned to a client's loop thread.
// Every transaction reads one key and writes one key in each of two
// distinct partitions, so the whole workload is multi-partition. All
// methods (after the kickoff Post) run on the client's own loop thread;
// only the Scoreboard crosses threads.
struct Driver : std::enable_shared_from_this<Driver> {
  Driver(harness::RtCluster* cluster, int index,
         std::shared_ptr<Scoreboard> board,
         const std::vector<std::vector<Key>>* pool, uint64_t seed,
         int target = kTargetCommits)
      : cluster(cluster),
        index(index),
        board(std::move(board)),
        pool(pool),
        rng(seed),
        target(target) {}

  harness::RtCluster* cluster;
  int index;
  std::shared_ptr<Scoreboard> board;
  const std::vector<std::vector<Key>>* pool;
  Rng rng;
  int target;
  uint64_t seq = 0;

  void Next() {
    if (board->committed.load() >= target) {
      board->done_clients.fetch_add(1);
      return;
    }
    core::CarouselClient* client = cluster->client(index);
    const int p1 = static_cast<int>(rng.UniformInt(0, kPartitions - 1));
    const int p2 =
        (p1 + 1 + static_cast<int>(rng.UniformInt(0, kPartitions - 2))) %
        kPartitions;
    const Key read1 = Pick(p1), read2 = Pick(p2);
    const Key write1 = Pick(p1), write2 = Pick(p2);
    const Value value = "c" + std::to_string(index) + "-" +
                        std::to_string(seq++);

    const TxnId tid = client->Begin();
    auto self = shared_from_this();
    client->ReadAndPrepare(
        tid, {read1, read2}, {write1, write2},
        [self, client, tid, write1, write2, value](
            Status status, const core::CarouselClient::ReadResults&) {
          if (!status.ok()) {
            self->board->aborted.fetch_add(1);
            self->Next();
            return;
          }
          client->Write(tid, write1, value);
          client->Write(tid, write2, value);
          client->Commit(tid, [self](Status commit_status) {
            if (commit_status.ok()) {
              self->board->committed.fetch_add(1);
            } else {
              self->board->aborted.fetch_add(1);
            }
            self->Next();
          });
        });
  }

 private:
  Key Pick(int partition) {
    const auto& keys = (*pool)[partition];
    return keys[rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1)];
  }
};

// Buckets probe keys by partition until every partition has a small pool;
// consistent hashing is pure, so this is safe off the loop threads.
std::vector<std::vector<Key>> BuildKeyPools(const core::Directory& directory) {
  std::vector<std::vector<Key>> pool(kPartitions);
  int filled = 0;
  for (int i = 0; filled < kPartitions && i < 100000; ++i) {
    const Key key = "rtk" + std::to_string(i);
    auto& bucket = pool[directory.PartitionFor(key)];
    if (bucket.size() < kKeysPerPartition) {
      bucket.push_back(key);
      if (bucket.size() == kKeysPerPartition) ++filled;
    }
  }
  return pool;
}

void RunSmoke(bool use_tcp) {
  Topology topo = Topology::Uniform(/*num_dcs=*/3, /*inter_dc_rtt_ms=*/1);
  topo.PlacePartitions(kPartitions, /*replication_factor=*/3);
  for (DcId dc = 0; dc < 3; ++dc) topo.AddClient(dc);

  harness::RtClusterOptions rt_options;
  rt_options.use_tcp = use_tcp;
  rt_options.seed = use_tcp ? 7 : 3;
  // FastRaftOptions timer values are microseconds; on the threaded
  // backend's monotonic clock they are *real* microseconds, which is why
  // the shrunk test timers (60ms heartbeats, 300–600ms elections) suit a
  // wall-clock run.
  harness::RtCluster cluster(std::move(topo), FastRaftOptions(), rt_options);

  check::HistoryRecorder history;
  cluster.AttachHistory(&history);

  if (!cluster.Start(/*timeout_ms=*/20000)) {
    if (use_tcp) GTEST_SKIP() << "TCP transport unavailable in this sandbox";
    FAIL() << "in-process threaded cluster failed to start";
  }

  const std::vector<std::vector<Key>> pool =
      BuildKeyPools(cluster.directory());
  for (const auto& bucket : pool) ASSERT_EQ(bucket.size(), kKeysPerPartition);

  auto board = std::make_shared<Scoreboard>();
  const int num_clients = static_cast<int>(cluster.num_clients());
  std::vector<std::shared_ptr<Driver>> drivers;
  for (int i = 0; i < num_clients; ++i) {
    drivers.push_back(std::make_shared<Driver>(
        &cluster, i, board, &pool, /*seed=*/1000 + 31 * i + (use_tcp ? 7 : 0)));
  }
  for (int i = 0; i < num_clients; ++i) {
    auto driver = drivers[i];
    cluster.RunOnClient(i, [driver]() { driver->Next(); });
  }

  // Closed loop: each driver stops once the shared commit target is met.
  // The timeout is generous because TSan slows the run by an order of
  // magnitude.
  PollUntil(
      [&] { return board->done_clients.load() >= num_clients; },
      std::chrono::seconds(300));
  ASSERT_EQ(board->done_clients.load(), num_clients)
      << "drivers stalled: committed=" << board->committed.load()
      << " aborted=" << board->aborted.load()
      << " dropped=" << cluster.dropped_messages();

  // Let in-flight writebacks and coordinator decisions settle (message
  // traffic stops moving once they land), then join every thread — after
  // Stop() the server state is plain memory.
  PollUntilQuiescent([&] { return cluster.posted_messages(); },
                     std::chrono::milliseconds(200),
                     std::chrono::seconds(30));
  cluster.Stop();

  EXPECT_GE(board->committed.load(), 1000);

  // Ground truth: per key, the longest writer chain across a partition's
  // replicas; with no faults injected every replica must hold a prefix of
  // it (same extraction as the chaos harness).
  check::WriterChains chains;
  for (PartitionId p = 0; p < kPartitions; ++p) {
    std::map<Key, std::vector<const std::vector<TxnId>*>> per_key;
    for (NodeId id : cluster.topology().Replicas(p)) {
      core::CarouselServer* server = cluster.server(id);
      ASSERT_NE(server, nullptr);
      for (const auto& [key, chain] : server->store().writer_log()) {
        per_key[key].push_back(&chain);
      }
    }
    for (auto& [key, candidates] : per_key) {
      const std::vector<TxnId>* longest = candidates.front();
      for (const auto* chain : candidates) {
        if (chain->size() > longest->size()) longest = chain;
      }
      for (const auto* chain : candidates) {
        EXPECT_TRUE(IsPrefix(*chain, *longest))
            << "replicas of partition " << p
            << " disagree on the write order of '" << key << "'";
      }
      chains[key] = *longest;
    }
  }

  const check::CheckResult result = check::CheckSerializability(history, chains);
  EXPECT_TRUE(result.ok()) << result.violations.size() << " violations; first: "
                           << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().description);
  EXPECT_GE(result.committed, 1000);
}

TEST(ThreadedRuntimeSmoke, InProcessClusterCommitsAndSerializes) {
  RunSmoke(/*use_tcp=*/false);
}

TEST(ThreadedRuntimeSmoke, TcpClusterCommitsAndSerializes) {
  RunSmoke(/*use_tcp=*/true);
}

// Regression for the TCP listener port plan: every node binds port 0 and
// lets the OS pick, and peers learn the real ports through the runtime's
// address exchange — there is no fixed port range to collide on. Two full
// TCP clusters must therefore coexist in one process. (A fixed-base port
// scheme fails exactly this test: the second cluster's binds collide with
// the first's.)
TEST(ThreadedRuntimeSmoke, TwoTcpClustersCoexistOnOsAssignedPorts) {
  constexpr int kSmallTarget = 60;
  struct Deployment {
    std::unique_ptr<harness::RtCluster> cluster;
    std::shared_ptr<Scoreboard> board = std::make_shared<Scoreboard>();
    std::vector<std::vector<Key>> pool;
    std::vector<std::shared_ptr<Driver>> drivers;
  };
  Deployment deployments[2];

  for (int d = 0; d < 2; ++d) {
    Topology topo = Topology::Uniform(/*num_dcs=*/3, /*inter_dc_rtt_ms=*/1);
    topo.PlacePartitions(kPartitions, /*replication_factor=*/3);
    topo.AddClient(/*dc=*/0);
    harness::RtClusterOptions rt_options;
    rt_options.use_tcp = true;
    rt_options.seed = 40 + d;
    deployments[d].cluster = std::make_unique<harness::RtCluster>(
        std::move(topo), FastRaftOptions(), rt_options);
    // Both sets of listeners are bound and running before any workload:
    // with a fixed port plan the second Start() would fail right here.
    if (!deployments[d].cluster->Start(/*timeout_ms=*/20000)) {
      GTEST_SKIP() << "TCP transport unavailable in this sandbox";
    }
  }

  for (int d = 0; d < 2; ++d) {
    Deployment& dep = deployments[d];
    dep.pool = BuildKeyPools(dep.cluster->directory());
    const int num_clients = static_cast<int>(dep.cluster->num_clients());
    for (int i = 0; i < num_clients; ++i) {
      dep.drivers.push_back(std::make_shared<Driver>(
          dep.cluster.get(), i, dep.board, &dep.pool, /*seed=*/500 + 13 * d + i,
          kSmallTarget));
    }
    for (int i = 0; i < num_clients; ++i) {
      auto driver = dep.drivers[i];
      dep.cluster->RunOnClient(i, [driver]() { driver->Next(); });
    }
  }

  for (int d = 0; d < 2; ++d) {
    Deployment& dep = deployments[d];
    const int num_clients = static_cast<int>(dep.cluster->num_clients());
    PollUntil(
        [&] { return dep.board->done_clients.load() >= num_clients; },
        std::chrono::seconds(120));
    EXPECT_EQ(dep.board->done_clients.load(), num_clients)
        << "cluster " << d << " stalled: committed="
        << dep.board->committed.load();
    EXPECT_GE(dep.board->committed.load(), kSmallTarget);
  }
  for (int d = 0; d < 2; ++d) deployments[d].cluster->Stop();
}

}  // namespace
}  // namespace carousel::test
