// WAL + snapshot durability layer: write/replay round trips, torn-tail
// truncation, compaction equivalence, and the prepare-pin journal that
// keeps CPC's §4.3.3 supermajority recovery sound across SIGKILL-style
// restarts (a restarted replica must still refuse to flip a prepare it
// already refused — the PR 2 regression class).

#include "runtime/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "carousel/messages.h"
#include "kv/pending_list.h"
#include "raft/messages.h"
#include "wire/wire.h"

namespace carousel::test {
namespace {

using runtime::DurableNodeState;
using runtime::WalStorage;
using runtime::WalStorageOptions;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "carousel-storage-" + name +
                          "-" + std::to_string(::getpid());
  // WalStorage creates it; make sure no previous run's state leaks in.
  (void)::system(("rm -rf " + dir).c_str());
  return dir;
}

WalStorageOptions NoFsync() {
  WalStorageOptions options;
  options.fsync = false;
  return options;
}

sim::MessagePtr DecisionPayload(uint64_t counter, bool commit) {
  auto msg = std::make_shared<core::LogDecision>();
  msg->tid = TxnId{1, counter};
  msg->commit = commit;
  return msg;
}

sim::MessagePtr NoopPayload() { return std::make_shared<raft::NoopPayload>(); }

/// Payload equality via the canonical wire encoding.
void ExpectSamePayload(const sim::MessagePtr& a, const sim::MessagePtr& b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->type(), b->type());
  EXPECT_EQ(wire::Encode(*a), wire::Encode(*b));
}

kv::PendingTxn SamplePin(uint64_t counter) {
  kv::PendingTxn txn;
  txn.tid = TxnId{4, counter};
  txn.read_keys = {"alpha", "beta"};
  txn.write_keys = {"beta"};
  txn.read_versions = {{"alpha", 9}, {"beta", 0}};
  txn.term = 3;
  txn.coordinator = 11;
  txn.prepared_at_micros = 1'234'567;
  return txn;
}

TEST(StorageTest, FreshDirectoryLoadsEmpty) {
  WalStorage storage(FreshDir("fresh"), wire::Codec(), NoFsync());
  DurableNodeState state;
  EXPECT_FALSE(storage.Load(&state));
  EXPECT_TRUE(state.empty());
  EXPECT_EQ(storage.torn_records(), 0u);
}

TEST(StorageTest, StateRoundTripsAcrossReopen) {
  const std::string dir = FreshDir("roundtrip");
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(3, 7);
    storage.PersistLogEntry(1, 2, NoopPayload());
    storage.PersistLogEntry(2, 3, DecisionPayload(42, true));
    storage.PersistLogEntry(3, 3, nullptr);  // Null payloads are legal.
    storage.PersistCommitIndex(2);
    storage.PersistPendingAdd("a", {1, 2, 3});
    storage.PersistPendingAdd("b", {4, 5});
    storage.PersistPendingErase("a");
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  EXPECT_EQ(state.term, 3u);
  EXPECT_EQ(state.voted_for, 7);
  EXPECT_EQ(state.commit_index, 2u);
  ASSERT_EQ(state.log.size(), 3u);
  EXPECT_EQ(state.log[0].term, 2u);
  ExpectSamePayload(state.log[0].payload, NoopPayload());
  EXPECT_EQ(state.log[1].term, 3u);
  ExpectSamePayload(state.log[1].payload, DecisionPayload(42, true));
  EXPECT_EQ(state.log[2].payload, nullptr);
  ASSERT_EQ(state.pending.size(), 1u);
  EXPECT_EQ(state.pending.at("b"), (std::vector<uint8_t>{4, 5}));
}

TEST(StorageTest, ReAppendAtIndexTruncatesThePersistedSuffix) {
  const std::string dir = FreshDir("truncate");
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(1, -1);
    for (uint64_t i = 1; i <= 5; ++i) {
      storage.PersistLogEntry(i, 1, DecisionPayload(i, true));
    }
    storage.PersistCommitIndex(5);
    // Raft conflict resolution: a new leader overwrites from index 3.
    storage.PersistLogEntry(3, 2, DecisionPayload(100, false));
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  ASSERT_EQ(state.log.size(), 3u);
  EXPECT_EQ(state.log[2].term, 2u);
  ExpectSamePayload(state.log[2].payload, DecisionPayload(100, false));
  // The commit watermark can never point past the surviving log.
  EXPECT_LE(state.commit_index, state.log.size());
}

TEST(StorageTest, TornTailIsTruncatedAndRecoveryContinues) {
  const std::string dir = FreshDir("torn");
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(4, 2);
    storage.PersistLogEntry(1, 4, DecisionPayload(1, true));
    storage.PersistCommitIndex(1);
  }
  {
    // A crash mid-append: a record header promising more bytes than were
    // ever written.
    const int fd = ::open((dir + "/wal.log").c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    const uint8_t torn[] = {200, 0, 0, 0, 0xde, 0xad};  // len=200, no body.
    ASSERT_EQ(::write(fd, torn, sizeof(torn)),
              static_cast<ssize_t>(sizeof(torn)));
    ::close(fd);
  }
  {
    WalStorage reopened(dir, wire::Codec(), NoFsync());
    DurableNodeState state;
    ASSERT_TRUE(reopened.Load(&state));
    EXPECT_GE(reopened.torn_records(), 1u);
    EXPECT_EQ(state.term, 4u);
    ASSERT_EQ(state.log.size(), 1u);
    EXPECT_EQ(state.commit_index, 1u);
    // The tear was truncated away; the WAL accepts appends again.
    reopened.PersistLogEntry(2, 4, DecisionPayload(2, false));
  }
  WalStorage again(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(again.Load(&state));
  EXPECT_EQ(again.torn_records(), 0u);  // Clean file after the truncation.
  ASSERT_EQ(state.log.size(), 2u);
  ExpectSamePayload(state.log[1].payload, DecisionPayload(2, false));
}

TEST(StorageTest, CorruptedRecordIsDroppedByCrc) {
  const std::string dir = FreshDir("crc");
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(2, 0);
    storage.PersistLogEntry(1, 2, DecisionPayload(9, true));
  }
  {
    // Flip one byte in the last record's body.
    const int fd = ::open((dir + "/wal.log").c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    const off_t size = ::lseek(fd, 0, SEEK_END);
    ASSERT_GT(size, 4);
    uint8_t byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, size - 1), 1);
    byte ^= 0xff;
    ASSERT_EQ(::pwrite(fd, &byte, 1, size - 1), 1);
    ::close(fd);
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  EXPECT_GE(reopened.torn_records(), 1u);
  EXPECT_EQ(state.term, 2u);       // The earlier record survives.
  EXPECT_EQ(state.log.size(), 0u);  // The corrupted one is gone.
}

TEST(StorageTest, CompactionPreservesStateAndShrinksTheWal) {
  const std::string dir = FreshDir("compact");
  DurableNodeState before;
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(6, 1);
    for (uint64_t i = 1; i <= 20; ++i) {
      storage.PersistLogEntry(i, 6, DecisionPayload(i, i % 2 == 0));
    }
    storage.PersistCommitIndex(20);
    storage.PersistPendingAdd("pin", kv::EncodePendingTxn(SamplePin(5)));
    ASSERT_GT(storage.wal_bytes(), 0u);
    storage.Compact();
    EXPECT_EQ(storage.wal_bytes(), 0u);
    before = storage.state();
    // Post-compaction appends land in the fresh WAL.
    storage.PersistLogEntry(21, 6, NoopPayload());
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  EXPECT_EQ(state.term, before.term);
  EXPECT_EQ(state.voted_for, before.voted_for);
  EXPECT_EQ(state.commit_index, before.commit_index);
  ASSERT_EQ(state.log.size(), 21u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(state.log[i].term, before.log[i].term);
    ExpectSamePayload(state.log[i].payload, before.log[i].payload);
  }
  ASSERT_EQ(state.pending.size(), 1u);
}

TEST(StorageTest, AutoCompactionKeepsStateIntact) {
  const std::string dir = FreshDir("autocompact");
  WalStorageOptions options = NoFsync();
  options.compact_threshold_bytes = 64;  // Compact after nearly every append.
  {
    WalStorage storage(dir, wire::Codec(), options);
    storage.PersistHardState(1, -1);
    for (uint64_t i = 1; i <= 10; ++i) {
      storage.PersistLogEntry(i, 1, DecisionPayload(i, true));
      storage.PersistCommitIndex(i);
    }
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  EXPECT_EQ(state.log.size(), 10u);
  EXPECT_EQ(state.commit_index, 10u);
}

// The PR 2 regression class: a refused prepare must stay refused across a
// restart. The pin journal is what makes the participant's pending set —
// the evidence §4.3.3's supermajority count inspects — outlive a SIGKILL,
// so every field CPC recovery reads must round-trip exactly.
TEST(StorageTest, PreparePinsRoundTripWithFullFidelity) {
  const std::string dir = FreshDir("pins");
  const kv::PendingTxn pin = SamplePin(77);
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistPendingAdd(pin.tid.ToString(), kv::EncodePendingTxn(pin));
    storage.PersistPendingAdd("other", kv::EncodePendingTxn(SamplePin(78)));
    storage.PersistPendingErase("other");  // Decided before the crash.
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  ASSERT_EQ(state.pending.size(), 1u);
  const std::vector<uint8_t>& blob = state.pending.at(pin.tid.ToString());
  kv::PendingTxn decoded;
  ASSERT_TRUE(kv::DecodePendingTxn(blob.data(), blob.size(), &decoded));
  EXPECT_EQ(decoded.tid, pin.tid);
  EXPECT_EQ(decoded.read_keys, pin.read_keys);
  EXPECT_EQ(decoded.write_keys, pin.write_keys);
  EXPECT_EQ(decoded.read_versions, pin.read_versions);
  EXPECT_EQ(decoded.term, pin.term);
  EXPECT_EQ(decoded.coordinator, pin.coordinator);
  EXPECT_EQ(decoded.prepared_at_micros, pin.prepared_at_micros);
}

TEST(StorageTest, PendingDecoderRejectsMalformedBlobs) {
  const std::vector<uint8_t> good = kv::EncodePendingTxn(SamplePin(1));
  kv::PendingTxn out;
  ASSERT_TRUE(kv::DecodePendingTxn(good.data(), good.size(), &out));
  // Every strict prefix must be rejected, never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(kv::DecodePendingTxn(good.data(), cut, &out))
        << "accepted a " << cut << "-byte prefix";
  }
  // A key-count field pointing past the buffer must be rejected too. The
  // read_keys count sits right after the 32-byte fixed header (tid.client
  // u32 + tid.counter u64 + term u64 + coordinator u32 + prepared u64).
  std::vector<uint8_t> huge = good;
  huge[32] = 0xff;  // read_keys count, little-endian low byte.
  EXPECT_FALSE(kv::DecodePendingTxn(huge.data(), huge.size(), &out));
}

TEST(StorageTest, CommitIndexIsClampedToTheRecoveredLog) {
  const std::string dir = FreshDir("clamp");
  {
    WalStorage storage(dir, wire::Codec(), NoFsync());
    storage.PersistHardState(1, -1);
    storage.PersistLogEntry(1, 1, NoopPayload());
    storage.PersistLogEntry(2, 1, NoopPayload());
    // A watermark ahead of the log (as a torn multi-record write could
    // leave behind) must not survive recovery.
    storage.PersistCommitIndex(9);
  }
  WalStorage reopened(dir, wire::Codec(), NoFsync());
  DurableNodeState state;
  ASSERT_TRUE(reopened.Load(&state));
  EXPECT_EQ(state.log.size(), 2u);
  EXPECT_LE(state.commit_index, 2u);
}

}  // namespace
}  // namespace carousel::test
