#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/tapir_cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

/// Serializability stress test based on the classic lost-update check:
/// every transaction reads a set of integer counters and writes back
/// value + 1 for each. Under serializability, each counter's final value
/// equals exactly the number of committed transactions that wrote it, and
/// its version equals its value. A lost update, dirty read, or write
/// skew on a single counter breaks the equality.
///
/// Parameterized over (system, number of hot keys, seed): fewer keys =
/// higher contention = more aborts, but never an incorrect counter.

enum class System { kCarouselBasic, kCarouselFast, kTapir };

std::string SystemName(System s) {
  switch (s) {
    case System::kCarouselBasic:
      return "CarouselBasic";
    case System::kCarouselFast:
      return "CarouselFast";
    case System::kTapir:
      return "TAPIR";
  }
  return "?";
}

struct Counters {
  std::map<Key, int> commits_per_key;
  int committed = 0;
  int aborted = 0;
  int incomplete = 0;
};

int ParseCounter(const Value& value) {
  return value.empty() ? 0 : std::stoi(value);
}

class SerializabilityTest
    : public ::testing::TestWithParam<std::tuple<System, int, uint64_t>> {};

TEST_P(SerializabilityTest, CountersNeverLoseUpdates) {
  const System system = std::get<0>(GetParam());
  const int num_keys = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  const int kTxns = 120;

  KeyList pool;
  for (int i = 0; i < num_keys; ++i) pool.push_back("ctr" + std::to_string(i));

  Topology topo = SmallTopology(3, 3, 3, /*clients_per_dc=*/3);
  Rng rng(seed);
  Counters counters;
  auto track_done = [&counters](const KeyList& written) {
    return [&counters, written](bool committed) {
      if (committed) {
        counters.committed++;
        for (const Key& k : written) counters.commits_per_key[k]++;
      } else {
        counters.aborted++;
      }
    };
  };

  // Issues kTxns increment transactions from random clients at random
  // times over ~10 s of simulated time, then verifies the counters.
  auto choose_keys = [&]() {
    KeyList keys;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    while (static_cast<int>(keys.size()) < n) {
      Key k = pool[rng.UniformInt(0, num_keys - 1)];
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    return keys;
  };

  std::map<Key, VersionedValue> final_state;

  if (system == System::kTapir) {
    tapir::TapirOptions options;
    options.fast_path_timeout = 200'000;
    auto cluster = std::make_unique<tapir::TapirCluster>(
        topo, options, sim::NetworkOptions{}, seed);
    int in_flight = 0;
    for (int i = 0; i < kTxns; ++i) {
      const SimTime at = rng.UniformInt(0, 10 * kMicrosPerSecond);
      const int client_index =
          static_cast<int>(rng.UniformInt(0, cluster->clients().size() - 1));
      cluster->sim().ScheduleAt(at, [&, client_index]() {
        const KeyList keys = choose_keys();
        tapir::TapirClient* client = cluster->client(client_index);
        const TxnId tid = client->Begin();
        in_flight++;
        auto done = track_done(keys);
        client->Read(
            tid, keys, keys,
            [&, client, tid, keys, done](
                Status status, const tapir::TapirClient::ReadResults& reads) {
              if (!status.ok()) {
                done(false);
                in_flight--;
                return;
              }
              for (const Key& k : keys) {
                client->Write(
                    tid, k,
                    std::to_string(ParseCounter(reads.at(k).value) + 1));
              }
              client->Commit(tid, [&, done](Status s) {
                done(s.ok());
                in_flight--;
              });
            });
      });
    }
    cluster->sim().RunFor(60 * kMicrosPerSecond);
    counters.incomplete = in_flight;
    cluster->sim().RunFor(10 * kMicrosPerSecond);
    const NodeId any = cluster->topology().Replicas(0)[0];
    for (const Key& k : pool) {
      const PartitionId p = cluster->directory().PartitionFor(k);
      final_state[k] =
          cluster->server(cluster->topology().Replicas(p)[0])->store().Get(k);
    }
    (void)any;
  } else {
    core::CarouselOptions options = FastRaftOptions();
    if (system == System::kCarouselFast) {
      options.fast_path = true;
      options.local_reads = true;
    }
    auto cluster = std::make_unique<core::Cluster>(topo, options,
                                                   sim::NetworkOptions{}, seed);
    cluster->Start();
    int in_flight = 0;
    for (int i = 0; i < kTxns; ++i) {
      const SimTime at =
          cluster->sim().now() + rng.UniformInt(0, 10 * kMicrosPerSecond);
      const int client_index =
          static_cast<int>(rng.UniformInt(0, cluster->clients().size() - 1));
      cluster->sim().ScheduleAt(at, [&, client_index]() {
        const KeyList keys = choose_keys();
        core::CarouselClient* client = cluster->client(client_index);
        const TxnId tid = client->Begin();
        in_flight++;
        auto done = track_done(keys);
        client->ReadAndPrepare(
            tid, keys, keys,
            [&, client, tid, keys, done](
                Status status,
                const core::CarouselClient::ReadResults& reads) {
              if (!status.ok()) {
                done(false);
                in_flight--;
                return;
              }
              for (const Key& k : keys) {
                client->Write(
                    tid, k,
                    std::to_string(ParseCounter(reads.at(k).value) + 1));
              }
              client->Commit(tid, [&, done](Status s) {
                done(s.ok());
                in_flight--;
              });
            });
      });
    }
    cluster->sim().RunFor(60 * kMicrosPerSecond);
    counters.incomplete = in_flight;
    cluster->sim().RunFor(10 * kMicrosPerSecond);
    for (const Key& k : pool) final_state[k] = LeaderValue(*cluster, k);
  }

  EXPECT_EQ(counters.incomplete, 0)
      << SystemName(system) << ": transactions stuck";
  EXPECT_EQ(counters.committed + counters.aborted, kTxns);
  EXPECT_GT(counters.committed, 0) << SystemName(system);

  for (const Key& k : pool) {
    const int expected = counters.commits_per_key[k];
    EXPECT_EQ(ParseCounter(final_state[k].value), expected)
        << SystemName(system) << " lost/duplicated an update on " << k;
    EXPECT_EQ(static_cast<int>(final_state[k].version), expected)
        << SystemName(system) << " version mismatch on " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Contention, SerializabilityTest,
    ::testing::Combine(::testing::Values(System::kCarouselBasic,
                                         System::kCarouselFast,
                                         System::kTapir),
                       ::testing::Values(4, 32),  // hot vs mild contention
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<SerializabilityTest::ParamType>& info) {
      return SystemName(std::get<0>(info.param)) + "_keys" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

/// Bank-transfer invariant: concurrent transfers between accounts must
/// conserve the total balance on every system.
TEST(BankInvariantTest, TransfersConserveTotalOnCarouselFast) {
  core::CarouselOptions options = FastRaftOptions();
  options.fast_path = true;
  options.local_reads = true;
  auto cluster = std::make_unique<core::Cluster>(
      SmallTopology(3, 3, 3, 3), options, sim::NetworkOptions{}, 77);
  cluster->Start();

  const int kAccounts = 8;
  const int kInitial = 100;
  KeyList accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back("acct" + std::to_string(i));
  }
  // Seed balances.
  for (const Key& a : accounts) {
    TxnOutcome out = RunTxn(*cluster, 0, {}, {{a, std::to_string(kInitial)}});
    ASSERT_TRUE(out.commit_status.ok());
  }
  cluster->sim().RunFor(5 * kMicrosPerSecond);

  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const SimTime at =
        cluster->sim().now() + rng.UniformInt(0, 8 * kMicrosPerSecond);
    const int client_index =
        static_cast<int>(rng.UniformInt(0, cluster->clients().size() - 1));
    int from = static_cast<int>(rng.UniformInt(0, kAccounts - 1));
    int to = static_cast<int>(rng.UniformInt(0, kAccounts - 1));
    if (from == to) to = (to + 1) % kAccounts;
    const Key src = accounts[from], dst = accounts[to];
    const int amount = static_cast<int>(rng.UniformInt(1, 20));
    cluster->sim().ScheduleAt(at, [&, client_index, src, dst, amount]() {
      core::CarouselClient* client = cluster->client(client_index);
      const TxnId tid = client->Begin();
      client->ReadAndPrepare(
          tid, {src, dst}, {src, dst},
          [&, client, tid, src, dst, amount](
              Status status, const core::CarouselClient::ReadResults& reads) {
            if (!status.ok()) return;
            const int from_balance = std::stoi(reads.at(src).value);
            const int to_balance = std::stoi(reads.at(dst).value);
            if (from_balance < amount) {
              client->Abort(tid);
              return;
            }
            client->Write(tid, src, std::to_string(from_balance - amount));
            client->Write(tid, dst, std::to_string(to_balance + amount));
            client->Commit(tid, [](Status) {});
          });
    });
  }
  cluster->sim().RunFor(60 * kMicrosPerSecond);

  int total = 0;
  for (const Key& a : accounts) {
    const Value v = LeaderValue(*cluster, a).value;
    ASSERT_FALSE(v.empty());
    const int balance = std::stoi(v);
    EXPECT_GE(balance, 0) << "account " << a << " went negative";
    total += balance;
  }
  EXPECT_EQ(total, kAccounts * kInitial) << "money created or destroyed";
}

}  // namespace
}  // namespace carousel::test
