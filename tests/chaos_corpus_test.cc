// Pinned chaos seeds (satellite of the chaos harness): a small corpus of
// seeds that replays on every CI run.
//
// Two kinds of seeds live here:
//  - Regression seeds that once reproduced real protocol bugs, pinned so
//    the fixes can never silently regress. Each is listed with the bug it
//    caught; replay any of them under the CLI with
//      carousel_chaos --seed=N [--txns=120]
//  - Checker self-tests: flag-gated injected bugs on known-failing seeds
//    must still be caught, proving the checker has not gone blind.

#include <gtest/gtest.h>

#include <string>

#include "check/chaos.h"

namespace carousel::check {
namespace {

ChaosResult RunSeed(uint64_t seed, bool fast_path_bug = false,
                bool stale_read_bug = false, bool batching = false) {
  ChaosConfig config;
  config.seed = seed;
  config.txns = 120;
  config.inject_bug_fast_path = fast_path_bug;
  config.inject_bug_stale_read = stale_read_bug;
  config.batching = batching;
  return RunChaosSeed(config);
}

/// Seed 24 once produced a fractured read-only snapshot: the client merged
/// per-partition read responses from two different retry attempts ~1.5 s
/// apart into one "snapshot".
TEST(ChaosCorpusTest, Seed24FracturedReadOnlySnapshot) {
  ChaosResult r = RunSeed(24);
  EXPECT_TRUE(r.ok()) << r.Report();
}

/// Seed 484 once externalized a heartbeat abort before it was durable; a
/// successor coordinator leader re-derived the same transaction as a
/// commit and applied its writes.
TEST(ChaosCorpusTest, Seed484NonDurableAbortExternalized) {
  ChaosResult r = RunSeed(484);
  EXPECT_TRUE(r.ok()) << r.Report();
}

/// Seed 465 once flipped a durable prepare refusal: a split-brain
/// coordinator's late QueryPrepare found no participant state (refusals
/// left none), prepared the transaction afresh after the conflict had
/// evaporated, and the two coordinator leaders reached opposite verdicts.
TEST(ChaosCorpusTest, Seed465PrepareRefusalFlipped) {
  ChaosResult r = RunSeed(465);
  EXPECT_TRUE(r.ok()) << r.Report();
}

/// Seed 1598 (batched) once committed a lost update: a transaction's
/// prepare reached only followers (tentative fast-path entries at version
/// v), the coordinator's re-query made the leader prepare it afresh at a
/// later version v', and the leader crashed right after proposing that
/// LogPrepareResult. When the entry committed under the next leader, the
/// replica's stale tentative entry shadowed the logged versions, so the
/// new leader quoted v — matching the client's stale read — and the
/// coordinator's stale-read validation was defeated. The durable log
/// entry now overwrites tentative fast-path pending state on apply.
TEST(ChaosCorpusTest, Seed1598TentativePrepareShadowedLoggedVersions) {
  ChaosResult r = RunSeed(1598, /*fast_path_bug=*/false,
                          /*stale_read_bug=*/false, /*batching=*/true);
  EXPECT_TRUE(r.ok()) << r.Report();
}

/// A few ordinary seeds so the corpus is not only former failures.
TEST(ChaosCorpusTest, OrdinarySeedsStayClean) {
  for (uint64_t seed : {1, 2, 3}) {
    ChaosResult r = RunSeed(seed);
    EXPECT_TRUE(r.ok()) << "seed " << seed << "\n" << r.Report();
  }
}

/// The same corpus with egress batching + delivery coalescing on: crashes
/// and partitions now hit whole batches (the nemesis drops envelopes, not
/// individual messages), and the serializability checker must stay clean.
TEST(ChaosCorpusTest, BatchedSeedsStayClean) {
  for (uint64_t seed : {1, 2, 3, 24, 465, 484, 1598}) {
    ChaosResult r = RunSeed(seed, /*fast_path_bug=*/false,
                            /*stale_read_bug=*/false, /*batching=*/true);
    EXPECT_TRUE(r.ok()) << "batched seed " << seed << "\n" << r.Report();
  }
}

/// Observability integration: seed 9 samples a CPC deployment whose only
/// nemesis event is one DC-level partition (t≈1.6s..5.2s of a ~20s
/// workload window). The partition starves fast quorums of one DC's
/// votes, so most transactions that saw fast votes also saw a slow-path
/// decision — the WANRT ledger must record that fast→slow degradation,
/// and the full snapshot must ride along for artifact dumps.
TEST(ChaosCorpusTest, Seed9PartitionDegradesCpcInLedger) {
  ChaosResult r = RunSeed(9);
  ASSERT_TRUE(r.ok()) << r.Report();
  ASSERT_NE(r.nemesis_schedule.find("partition"), std::string::npos)
      << "seed 9 no longer samples a DC partition:\n"
      << r.nemesis_schedule;
  // The deployment still commits on the fast path outside the cut...
  EXPECT_GT(r.wanrt.fast_path_txns, 0u) << r.Summary();
  // ...but the cut knocks transactions that gathered fast votes onto the
  // replicated slow path, and the ledger records the transition.
  EXPECT_GT(r.wanrt.degraded_txns, 0u) << r.Summary();
  EXPECT_GT(r.wanrt.slow_path_txns, r.wanrt.fast_path_txns) << r.Summary();
  // The counts partition the sealed population.
  EXPECT_EQ(r.wanrt.committed + r.wanrt.aborted, r.wanrt.sealed);
  // The summary line surfaces the path split for sweep logs.
  EXPECT_NE(r.Summary().find("degraded"), std::string::npos) << r.Summary();
  // And the run carries the full observability snapshot for report dirs.
  EXPECT_NE(r.metrics_json.find("\"wanrt\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"metrics\""), std::string::npos);
}

/// Checker self-test: with the flag-gated fast-path bug injected (counting
/// a CPC fast quorum without the leader's vote), the checker must flag the
/// run, and the report must carry everything needed to replay it.
TEST(ChaosCorpusTest, InjectedFastPathBugIsCaught) {
  ChaosResult r = RunSeed(17, /*fast_path_bug=*/true);
  ASSERT_FALSE(r.ok())
      << "checker missed the injected fast-path quorum bug on seed 17";
  const std::string report = r.Report();
  EXPECT_NE(report.find("VIOLATION"), std::string::npos) << report;
  EXPECT_NE(report.find("seed"), std::string::npos) << report;
  EXPECT_NE(report.find("17"), std::string::npos) << report;
}

/// Checker self-test: the flag-gated stale-read bug (skipping §4.4.1
/// validation of local-replica reads) must be caught somewhere in a small
/// seed range — it depends on a conflicting writer racing the stale read,
/// so not every seed trips it.
TEST(ChaosCorpusTest, InjectedStaleReadBugIsCaught) {
  int caught = 0;
  for (uint64_t seed = 1; seed <= 6 && caught == 0; ++seed) {
    ChaosResult r = RunSeed(seed, /*fast_path_bug=*/false, /*stale_read_bug=*/true);
    if (!r.ok()) ++caught;
  }
  EXPECT_GT(caught, 0)
      << "checker missed the injected stale-read bug on seeds 1..6";
}

}  // namespace
}  // namespace carousel::check
