#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;

class CarouselBasicTest : public ::testing::Test {
 protected:
  std::unique_ptr<Cluster> MakeCluster(CarouselOptions options,
                                       int num_dcs = 3, int partitions = 3) {
    return MakeSmallCluster(std::move(options), /*seed=*/7, num_dcs,
                            partitions);
  }
};

TEST_F(CarouselBasicTest, SinglePartitionCommit) {
  auto cluster = MakeCluster(FastRaftOptions());
  KeyList keys;
  // Find two keys in partition 0 for a single-partition transaction.
  for (int i = 0; keys.size() < 2 && i < 1000; ++i) {
    Key k = "spc" + std::to_string(i);
    if (cluster->directory().PartitionFor(k) == 0) keys.push_back(k);
  }
  ASSERT_EQ(keys.size(), 2u);

  TxnOutcome out = RunTxn(*cluster, 0, {keys[0]},
                          {{keys[0], "a"}, {keys[1], "b"}});
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
  EXPECT_EQ(out.reads.at(keys[0]).version, 0u);  // Never written before.

  cluster->sim().RunFor(5 * kMicrosPerSecond);  // Let writeback finish.
  EXPECT_EQ(LeaderValue(*cluster, keys[0]).value, "a");
  EXPECT_EQ(LeaderValue(*cluster, keys[1]).value, "b");
  EXPECT_EQ(LeaderValue(*cluster, keys[0]).version, 1u);
}

TEST_F(CarouselBasicTest, MultiPartitionCommitAppliesEverywhere) {
  auto cluster = MakeCluster(FastRaftOptions());
  // Keys guaranteed to be spread: pick one key per partition.
  std::map<PartitionId, Key> per_part;
  for (int i = 0; per_part.size() < 3 && i < 10000; ++i) {
    Key k = "mp" + std::to_string(i);
    per_part.emplace(cluster->directory().PartitionFor(k), k);
  }
  ASSERT_EQ(per_part.size(), 3u);

  KeyList reads;
  WriteSet writes;
  for (const auto& [p, k] : per_part) {
    reads.push_back(k);
    writes[k] = "val-" + std::to_string(p);
  }
  TxnOutcome out = RunTxn(*cluster, 0, reads, writes);
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;

  cluster->sim().RunFor(5 * kMicrosPerSecond);
  for (const auto& [p, k] : per_part) {
    EXPECT_EQ(LeaderValue(*cluster, k).value, writes[k]) << "partition " << p;
    // Writeback replicated to every replica of the group.
    for (NodeId replica : cluster->topology().Replicas(p)) {
      EXPECT_EQ(cluster->server(replica)->store().Get(k).value, writes[k]);
    }
  }
}

TEST_F(CarouselBasicTest, ReadYourPreviousCommit) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = "ryw-key";
  TxnOutcome w1 = RunTxn(*cluster, 0, {k}, {{k, "v1"}});
  ASSERT_TRUE(w1.commit_status.ok());
  cluster->sim().RunFor(5 * kMicrosPerSecond);

  TxnOutcome r = RunTxn(*cluster, 0, {k}, {});
  ASSERT_TRUE(r.commit_done);
  EXPECT_TRUE(r.commit_status.ok());
  EXPECT_EQ(r.reads.at(k).value, "v1");
  EXPECT_EQ(r.reads.at(k).version, 1u);
}

TEST_F(CarouselBasicTest, ReadOnlyTransactionNeedsNoCoordinator) {
  auto cluster = MakeCluster(FastRaftOptions());
  TxnOutcome out = RunTxn(*cluster, 0, {"ro1", "ro2", "ro3"}, {});
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok());
  EXPECT_EQ(out.reads.size(), 3u);
  for (const auto& [k, vv] : out.reads) {
    EXPECT_EQ(vv.version, 0u);
    EXPECT_EQ(vv.value, "");
  }
}

TEST_F(CarouselBasicTest, BlindWriteTransaction) {
  auto cluster = MakeCluster(FastRaftOptions());
  TxnOutcome out = RunTxn(*cluster, 0, {}, {{"bw1", "x"}, {"bw2", "y"}});
  ASSERT_TRUE(out.commit_done);
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, "bw1").value, "x");
}

TEST_F(CarouselBasicTest, ConflictingConcurrentTransactionsOneAborts) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = "contended";
  // Two clients in different DCs write the same key simultaneously.
  auto out1 = std::make_shared<TxnOutcome>();
  auto out2 = std::make_shared<TxnOutcome>();
  auto run = [&](int idx, std::shared_ptr<TxnOutcome> out) {
    core::CarouselClient* client = cluster->client(idx);
    const TxnId tid = client->Begin();
    client->ReadAndPrepare(
        tid, {k}, {k},
        [out, client, tid, k](Status status,
                              const core::CarouselClient::ReadResults&) {
          out->read_done = true;
          out->read_status = status;
          client->Write(tid, k, "w");
          client->Commit(tid, [out](Status s) {
            out->commit_done = true;
            out->commit_status = s;
          });
        });
  };
  run(0, out1);
  run(2, out2);  // Client in another DC.
  cluster->sim().RunFor(30 * kMicrosPerSecond);

  ASSERT_TRUE(out1->commit_done && out2->commit_done);
  const bool ok1 = out1->commit_status.ok();
  const bool ok2 = out2->commit_status.ok();
  EXPECT_TRUE(ok1 != ok2) << "exactly one of two conflicting transactions "
                             "must commit (got " << ok1 << ", " << ok2 << ")";
  cluster->sim().RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(LeaderValue(*cluster, k).version, 1u);
}

TEST_F(CarouselBasicTest, SequentialTransactionsBumpVersions) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = "version-counter";
  for (int i = 1; i <= 5; ++i) {
    TxnOutcome out = RunTxn(*cluster, i % 6, {k}, {{k, "v" + std::to_string(i)}});
    ASSERT_TRUE(out.commit_status.ok()) << "iteration " << i;
    cluster->sim().RunFor(3 * kMicrosPerSecond);
    EXPECT_EQ(LeaderValue(*cluster, k).version, static_cast<Version>(i));
  }
}

TEST_F(CarouselBasicTest, ClientAbortDiscardsWrites) {
  auto cluster = MakeCluster(FastRaftOptions());
  const Key k = "abandoned";
  core::CarouselClient* client = cluster->client(0);
  const TxnId tid = client->Begin();
  bool read_done = false;
  client->ReadAndPrepare(tid, {k}, {k},
                         [&](Status, const core::CarouselClient::ReadResults&) {
                           read_done = true;
                           client->Write(tid, k, "should-not-appear");
                           client->Abort(tid);
                         });
  cluster->sim().RunFor(10 * kMicrosPerSecond);
  ASSERT_TRUE(read_done);
  EXPECT_EQ(LeaderValue(*cluster, k).version, 0u);

  // The pending entry must be cleaned up so later transactions proceed.
  TxnOutcome out = RunTxn(*cluster, 1, {k}, {{k, "next"}});
  EXPECT_TRUE(out.commit_status.ok()) << out.commit_status;
}

TEST_F(CarouselBasicTest, PendingListsDrainAfterCommit) {
  auto cluster = MakeCluster(FastRaftOptions());
  for (int i = 0; i < 10; ++i) {
    TxnOutcome out =
        RunTxn(*cluster, i % 6, {"drain" + std::to_string(i)},
               {{"drain" + std::to_string(i), "v"}});
    ASSERT_TRUE(out.commit_status.ok());
  }
  cluster->sim().RunFor(10 * kMicrosPerSecond);
  for (const NodeInfo& info : cluster->topology().nodes()) {
    if (info.is_client) continue;
    EXPECT_EQ(cluster->server(info.id)->pending().size(), 0u)
        << "node " << info.id;
  }
}

}  // namespace
}  // namespace carousel::test
