// Slow-tier real-time chaos sweeps: many seeds per transport, mirroring
// what `carousel_rt_chaos` runs in CI but in-process so a failure carries
// the full gtest report. The inproc sweep must always run; the TCP sweep
// skips (not fails) where the sandbox forbids sockets.

#include <string>

#include <gtest/gtest.h>

#include "check/chaos_rt.h"

namespace carousel::test {
namespace {

std::string SweepStorageRoot(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "carousel-rt-sweep-" + tag +
                          "-" + std::to_string(::getpid());
  (void)::system(("rm -rf " + dir).c_str());
  return dir;
}

void Sweep(uint64_t first, uint64_t count, bool use_tcp,
           const std::string& tag) {
  size_t faults = 0;
  for (uint64_t seed = first; seed < first + count; ++seed) {
    check::RtChaosConfig config;
    config.seed = seed;
    config.txns = 150;
    config.use_tcp = use_tcp;
    config.storage_root = SweepStorageRoot(tag);
    const check::RtChaosResult result = check::RunRtChaosSeed(config);
    if (result.start_failed) {
      ASSERT_TRUE(use_tcp) << "in-process transport cannot fail to start";
      GTEST_SKIP() << "TCP transport unavailable in this sandbox";
    }
    EXPECT_TRUE(result.ok()) << result.Report();
    faults += result.kills_fired + result.partitions_fired +
              result.link_faults_fired;
  }
  // The sweep as a whole must have injected real faults.
  EXPECT_GT(faults, 0u);
}

TEST(RtChaosSweepTest, InprocSeedsCheckClean) {
  Sweep(/*first=*/1, /*count=*/8, /*use_tcp=*/false, "inproc");
}

TEST(RtChaosSweepTest, TcpSeedsCheckClean) {
  Sweep(/*first=*/1, /*count=*/4, /*use_tcp=*/true, "tcp");
}

}  // namespace
}  // namespace carousel::test
