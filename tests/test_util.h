#ifndef CAROUSEL_TESTS_TEST_UTIL_H_
#define CAROUSEL_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "carousel/cluster.h"
#include "common/topology.h"

namespace carousel::test {

/// A small deployment: `num_dcs` DCs at a uniform RTT, `partitions`
/// partitions with `replication` replicas, and `clients_per_dc` clients in
/// every DC. Raft timers are shrunk so failover tests run quickly.
inline core::CarouselOptions FastRaftOptions() {
  core::CarouselOptions options;
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.heartbeat_interval = 200'000;
  options.client_retry_timeout = 1'500'000;
  options.coordinator_retry_interval = 1'500'000;
  options.pending_gc_interval = 5'000'000;
  return options;
}

inline Topology SmallTopology(int num_dcs = 3, int partitions = 3,
                              int replication = 3, int clients_per_dc = 2,
                              double rtt_ms = 20) {
  Topology topo = Topology::Uniform(num_dcs, rtt_ms);
  topo.PlacePartitions(partitions, replication);
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

/// Synchronous-looking transaction execution for tests: issues the
/// transaction and pumps the simulator until it completes (or `timeout`
/// sim-time passes).
struct TxnOutcome {
  bool read_done = false;
  bool commit_done = false;
  Status read_status;
  Status commit_status;
  core::CarouselClient::ReadResults reads;
};

inline TxnOutcome RunTxn(core::Cluster& cluster, int client_index,
                         const KeyList& reads, const WriteSet& writes,
                         SimTime timeout = 60 * kMicrosPerSecond) {
  auto outcome = std::make_shared<TxnOutcome>();
  core::CarouselClient* client = cluster.client(client_index);
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : writes) write_keys.push_back(k);

  client->ReadAndPrepare(
      tid, reads, write_keys,
      [&cluster, client, tid, writes, outcome](
          Status status, const core::CarouselClient::ReadResults& results) {
        outcome->read_done = true;
        outcome->read_status = status;
        outcome->reads = results;
        if (writes.empty()) {
          // Read-only transactions complete at the read round.
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        if (!status.ok()) {
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [outcome](Status commit_status) {
          outcome->commit_done = true;
          outcome->commit_status = commit_status;
        });
      });

  const SimTime deadline = cluster.sim().now() + timeout;
  while (!outcome->commit_done && cluster.sim().now() < deadline) {
    cluster.sim().RunFor(kMicrosPerMilli);
  }
  return *outcome;
}

/// The committed value of `key` as seen by the current leader of its
/// partition.
inline VersionedValue LeaderValue(core::Cluster& cluster, const Key& key) {
  const PartitionId p = cluster.directory().PartitionFor(key);
  core::CarouselServer* leader = cluster.LeaderOf(p);
  return leader == nullptr ? VersionedValue{} : leader->store().Get(key);
}

}  // namespace carousel::test

#endif  // CAROUSEL_TESTS_TEST_UTIL_H_
