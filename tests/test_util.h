#ifndef CAROUSEL_TESTS_TEST_UTIL_H_
#define CAROUSEL_TESTS_TEST_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/cluster.h"
#include "common/topology.h"

namespace carousel::test {

/// Polls `cond` until it holds or `timeout` elapses; returns its final
/// value. The condition-driven replacement for fixed sleeps and
/// hand-rolled deadline loops in real-time tests: the wait ends the
/// moment the condition holds, and a slow sanitizer run just polls
/// longer instead of flaking.
inline bool PollUntil(const std::function<bool()>& cond,
                      std::chrono::milliseconds timeout,
                      std::chrono::milliseconds interval =
                          std::chrono::milliseconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return cond();
    std::this_thread::sleep_for(interval);
  }
  return true;
}

/// Polls a monotone counter until it stays unchanged for `stable_for`
/// (or `timeout` elapses; returns false then). Quiescence detection for
/// settle phases with no single completion predicate — e.g. waiting out
/// a real-time cluster's trailing writebacks before Stop(): sample the
/// cluster-wide posted_messages() and return once traffic stops moving.
inline bool PollUntilQuiescent(const std::function<uint64_t()>& sample,
                               std::chrono::milliseconds stable_for,
                               std::chrono::milliseconds timeout,
                               std::chrono::milliseconds interval =
                                   std::chrono::milliseconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  uint64_t last = sample();
  auto stable_since = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(interval);
    const uint64_t cur = sample();
    const auto now = std::chrono::steady_clock::now();
    if (cur != last) {
      last = cur;
      stable_since = now;
    } else if (now - stable_since >= stable_for) {
      return true;
    }
  }
  return false;
}

/// A small deployment: `num_dcs` DCs at a uniform RTT, `partitions`
/// partitions with `replication` replicas, and `clients_per_dc` clients in
/// every DC. Raft timers are shrunk so failover tests run quickly.
inline core::CarouselOptions FastRaftOptions() {
  core::CarouselOptions options;
  options.raft.election_timeout_min = 300'000;
  options.raft.election_timeout_max = 600'000;
  options.raft.heartbeat_interval = 60'000;
  options.heartbeat_interval = 200'000;
  options.client_retry_timeout = 1'500'000;
  options.coordinator_retry_interval = 1'500'000;
  options.pending_gc_interval = 5'000'000;
  return options;
}

/// FastRaftOptions plus the Carousel Fast features (CPC fast path and
/// local-replica reads) that most failure/CPC tests exercise.
inline core::CarouselOptions FastCpcOptions() {
  core::CarouselOptions options = FastRaftOptions();
  options.fast_path = true;
  options.local_reads = true;
  return options;
}

inline Topology SmallTopology(int num_dcs = 3, int partitions = 3,
                              int replication = 3, int clients_per_dc = 2,
                              double rtt_ms = 20) {
  Topology topo = Topology::Uniform(num_dcs, rtt_ms);
  topo.PlacePartitions(partitions, replication);
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }
  return topo;
}

/// A started cluster over SmallTopology() — the common fixture for
/// cluster-level tests.
inline std::unique_ptr<core::Cluster> MakeSmallCluster(
    core::CarouselOptions options, uint64_t seed = 21, int num_dcs = 3,
    int partitions = 3) {
  auto cluster = std::make_unique<core::Cluster>(
      SmallTopology(num_dcs, partitions), options, sim::NetworkOptions{},
      seed);
  cluster->Start();
  return cluster;
}

/// A started cluster over the paper's EC2 deployment (5 DCs, 5 partitions,
/// replication 3) with one client in `client_dc`.
inline std::unique_ptr<core::Cluster> Ec2Cluster(core::CarouselOptions options,
                                                 DcId client_dc,
                                                 uint64_t seed = 11) {
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  topo.AddClient(client_dc);
  auto cluster = std::make_unique<core::Cluster>(
      std::move(topo), options, sim::NetworkOptions{}, seed);
  cluster->Start();
  return cluster;
}

/// A key owned by `partition`, found by probing `tag`-prefixed names.
inline Key KeyInPartition(const core::Cluster& cluster, PartitionId p,
                          const std::string& tag) {
  for (int i = 0; i < 100000; ++i) {
    Key k = tag + std::to_string(i);
    if (cluster.directory().PartitionFor(k) == p) return k;
  }
  return "";
}

/// Synchronous-looking transaction execution for tests: issues the
/// transaction and pumps the simulator until it completes (or `timeout`
/// sim-time passes).
struct TxnOutcome {
  bool read_done = false;
  bool commit_done = false;
  Status read_status;
  Status commit_status;
  core::CarouselClient::ReadResults reads;
};

inline TxnOutcome RunTxn(core::Cluster& cluster, int client_index,
                         const KeyList& reads, const WriteSet& writes,
                         SimTime timeout = 60 * kMicrosPerSecond) {
  auto outcome = std::make_shared<TxnOutcome>();
  core::CarouselClient* client = cluster.client(client_index);
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : writes) write_keys.push_back(k);

  client->ReadAndPrepare(
      tid, reads, write_keys,
      [&cluster, client, tid, writes, outcome](
          Status status, const core::CarouselClient::ReadResults& results) {
        outcome->read_done = true;
        outcome->read_status = status;
        outcome->reads = results;
        if (writes.empty()) {
          // Read-only transactions complete at the read round.
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        if (!status.ok()) {
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [outcome](Status commit_status) {
          outcome->commit_done = true;
          outcome->commit_status = commit_status;
        });
      });

  const SimTime deadline = cluster.sim().now() + timeout;
  while (!outcome->commit_done && cluster.sim().now() < deadline) {
    cluster.sim().RunFor(kMicrosPerMilli);
  }
  return *outcome;
}

/// The committed value of `key` as seen by the current leader of its
/// partition.
inline VersionedValue LeaderValue(core::Cluster& cluster, const Key& key) {
  const PartitionId p = cluster.directory().PartitionFor(key);
  core::CarouselServer* leader = cluster.LeaderOf(p);
  return leader == nullptr ? VersionedValue{} : leader->store().Get(key);
}

}  // namespace carousel::test

#endif  // CAROUSEL_TESTS_TEST_UTIL_H_
