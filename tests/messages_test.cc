#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "carousel/messages.h"
#include "raft/messages.h"
#include "tapir/messages.h"

namespace carousel {
namespace {

using sim::Message;
using sim::MessagePtr;

/// One instance of every message type in the system.
std::vector<MessagePtr> AllMessages() {
  std::vector<MessagePtr> all;
  all.push_back(std::make_shared<raft::RequestVoteMsg>());
  all.push_back(std::make_shared<raft::VoteResponseMsg>());
  all.push_back(std::make_shared<raft::AppendEntriesMsg>());
  all.push_back(std::make_shared<raft::AppendResponseMsg>());
  all.push_back(std::make_shared<core::ReadPrepareMsg>());
  all.push_back(std::make_shared<core::ReadResponseMsg>());
  all.push_back(std::make_shared<core::PrepareDecisionMsg>());
  all.push_back(std::make_shared<core::CoordPrepareMsg>());
  all.push_back(std::make_shared<core::CommitRequestMsg>());
  all.push_back(std::make_shared<core::AbortRequestMsg>());
  all.push_back(std::make_shared<core::CommitResponseMsg>());
  all.push_back(std::make_shared<core::WritebackMsg>());
  all.push_back(std::make_shared<core::WritebackAckMsg>());
  all.push_back(std::make_shared<core::HeartbeatMsg>());
  all.push_back(std::make_shared<core::QueryPrepareMsg>());
  all.push_back(std::make_shared<core::QueryDecisionMsg>());
  all.push_back(std::make_shared<core::NotLeaderMsg>());
  all.push_back(std::make_shared<core::LogTxnInfo>());
  all.push_back(std::make_shared<core::LogWriteData>());
  all.push_back(std::make_shared<core::LogDecision>());
  all.push_back(std::make_shared<core::LogPrepareResult>());
  all.push_back(std::make_shared<core::LogCommit>());
  all.push_back(std::make_shared<raft::NoopPayload>());
  all.push_back(std::make_shared<tapir::TapirReadMsg>());
  all.push_back(std::make_shared<tapir::TapirReadReplyMsg>());
  all.push_back(std::make_shared<tapir::TapirPrepareMsg>());
  all.push_back(std::make_shared<tapir::TapirPrepareReplyMsg>());
  all.push_back(std::make_shared<tapir::TapirFinalizeMsg>());
  all.push_back(std::make_shared<tapir::TapirFinalizeReplyMsg>());
  all.push_back(std::make_shared<tapir::TapirDecideMsg>());
  all.push_back(std::make_shared<tapir::TapirDecideAckMsg>());
  return all;
}

TEST(MessagesTest, TypeTagsAreUnique) {
  std::set<int> types;
  for (const MessagePtr& msg : AllMessages()) {
    EXPECT_TRUE(types.insert(msg->type()).second)
        << "duplicate type tag " << msg->type();
  }
}

TEST(MessagesTest, EmptyMessagesHavePositiveWireSize) {
  for (const MessagePtr& msg : AllMessages()) {
    EXPECT_GT(msg->SizeBytes(), 0u) << "type " << msg->type();
    EXPECT_LT(msg->SizeBytes(), 1024u) << "type " << msg->type();
  }
}

TEST(MessagesTest, SizeGrowsWithPayload) {
  core::ReadPrepareMsg small;
  small.read_keys = {"a"};
  core::ReadPrepareMsg big;
  big.read_keys = {"a", "b", "c", "dddddddddddddddd"};
  big.write_keys = {"w"};
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());

  core::WritebackMsg wb_small, wb_big;
  wb_big.writes["key"] = std::string(1000, 'x');
  EXPECT_GT(wb_big.SizeBytes(), wb_small.SizeBytes() + 900);

  raft::AppendEntriesMsg ae_empty, ae_full;
  auto payload = std::make_shared<core::LogCommit>();
  payload->writes["k"] = std::string(500, 'y');
  ae_full.entries.push_back(raft::LogEntry{1, payload});
  EXPECT_GT(ae_full.SizeBytes(), ae_empty.SizeBytes() + 500);
}

TEST(MessagesTest, VoteResponseCountsPendingListBytes) {
  raft::VoteResponseMsg empty;
  raft::VoteResponseMsg loaded;
  kv::PendingTxn txn;
  txn.tid = {1, 1};
  txn.read_keys = {"some-key", "another-key"};
  txn.write_keys = {"w"};
  txn.read_versions["some-key"] = 3;
  loaded.pending_list.push_back(txn);
  EXPECT_GT(loaded.SizeBytes(), empty.SizeBytes() + 20);
}

TEST(MessagesTest, RangeTagsMatchModuleRanges) {
  for (const MessagePtr& msg : AllMessages()) {
    const int t = msg->type();
    EXPECT_TRUE((t >= 100 && t < 200) ||   // raft
                (t >= 200 && t < 300) ||   // carousel (incl. log payloads)
                (t >= 300 && t < 400))     // tapir
        << "type " << t << " outside module ranges";
  }
}

}  // namespace
}  // namespace carousel
