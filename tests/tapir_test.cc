#include <gtest/gtest.h>

#include <memory>

#include "harness/tapir_cluster.h"
#include "test_util.h"

namespace carousel::tapir {
namespace {

TapirOptions TestOptions() {
  TapirOptions options;
  options.fast_path_timeout = 200'000;
  return options;
}

std::unique_ptr<TapirCluster> MakeCluster(int num_dcs = 3, int partitions = 3,
                                          int clients_per_dc = 2,
                                          uint64_t seed = 5) {
  Topology topo = Topology::Uniform(num_dcs, 20);
  topo.PlacePartitions(partitions, 3);
  for (DcId dc = 0; dc < num_dcs; ++dc) {
    for (int i = 0; i < clients_per_dc; ++i) topo.AddClient(dc);
  }
  return std::make_unique<TapirCluster>(std::move(topo), TestOptions(),
                                        sim::NetworkOptions{}, seed);
}

struct Outcome {
  bool done = false;
  Status status;
  TapirClient::ReadResults reads;
};

std::shared_ptr<Outcome> RunTapirTxn(TapirCluster& cluster, int client_index,
                                     const KeyList& reads,
                                     const WriteSet& writes) {
  auto outcome = std::make_shared<Outcome>();
  TapirClient* client = cluster.client(client_index);
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : writes) write_keys.push_back(k);
  client->Read(tid, reads, write_keys,
               [&cluster, client, tid, writes, outcome](
                   Status status, const TapirClient::ReadResults& results) {
                 outcome->reads = results;
                 if (!status.ok()) {
                   outcome->done = true;
                   outcome->status = status;
                   return;
                 }
                 for (const auto& [k, v] : writes) client->Write(tid, k, v);
                 client->Commit(tid, [outcome](Status s) {
                   outcome->done = true;
                   outcome->status = s;
                 });
               });
  const SimTime deadline = cluster.sim().now() + 30 * kMicrosPerSecond;
  while (!outcome->done && cluster.sim().now() < deadline) {
    cluster.sim().RunFor(kMicrosPerMilli);
  }
  return outcome;
}

TEST(TapirTest, CommitAppliesOnAllReplicas) {
  auto cluster = MakeCluster();
  auto out = RunTapirTxn(*cluster, 0, {"a"}, {{"a", "v1"}, {"b", "v2"}});
  ASSERT_TRUE(out->done);
  EXPECT_TRUE(out->status.ok()) << out->status;
  cluster->sim().RunFor(2 * kMicrosPerSecond);

  const PartitionId pa = cluster->directory().PartitionFor("a");
  for (NodeId replica : cluster->topology().Replicas(pa)) {
    EXPECT_EQ(cluster->server(replica)->store().Get("a").value, "v1");
  }
}

TEST(TapirTest, ReadSeesCommittedValue) {
  auto cluster = MakeCluster();
  ASSERT_TRUE(RunTapirTxn(*cluster, 0, {}, {{"k", "first"}})->status.ok());
  cluster->sim().RunFor(2 * kMicrosPerSecond);
  auto out = RunTapirTxn(*cluster, 1, {"k"}, {});
  ASSERT_TRUE(out->done);
  EXPECT_TRUE(out->status.ok());
  EXPECT_EQ(out->reads.at("k").value, "first");
  EXPECT_EQ(out->reads.at("k").version, 1u);
}

TEST(TapirTest, StaleReadAborts) {
  auto cluster = MakeCluster();
  // Client 0 reads k (version 0). Before it commits, client 2 (another
  // DC) writes k. Client 0's prepare must then vote ABORT.
  TapirClient* slow_client = cluster->client(0);
  const TxnId tid = slow_client->Begin();
  auto outcome = std::make_shared<Outcome>();
  slow_client->Read(tid, {"sk"}, {"sk"},
                    [outcome](Status, const TapirClient::ReadResults& r) {
                      outcome->reads = r;
                    });
  cluster->sim().RunFor(kMicrosPerSecond);  // Reads done, no commit yet.

  ASSERT_TRUE(RunTapirTxn(*cluster, 2, {}, {{"sk", "interloper"}})->status.ok());
  cluster->sim().RunFor(2 * kMicrosPerSecond);

  slow_client->Write(tid, "sk", "mine");
  slow_client->Commit(tid, [outcome](Status s) {
    outcome->done = true;
    outcome->status = s;
  });
  while (!outcome->done) cluster->sim().RunFor(kMicrosPerMilli);
  EXPECT_FALSE(outcome->status.ok());
  EXPECT_EQ(outcome->status.code(), StatusCode::kAborted);
}

TEST(TapirTest, ConflictingConcurrentCommitsOneWins) {
  auto cluster = MakeCluster();
  auto o1 = std::make_shared<Outcome>();
  auto o2 = std::make_shared<Outcome>();
  auto run = [&](int index, std::shared_ptr<Outcome> out) {
    TapirClient* client = cluster->client(index);
    const TxnId tid = client->Begin();
    client->Read(tid, {"cc"}, {"cc"},
                 [client, tid, out](Status, const TapirClient::ReadResults&) {
                   client->Write(tid, "cc", "w");
                   client->Commit(tid, [out](Status s) {
                     out->done = true;
                     out->status = s;
                   });
                 });
  };
  run(0, o1);
  run(2, o2);
  cluster->sim().RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(o1->done && o2->done);
  EXPECT_FALSE(o1->status.ok() && o2->status.ok())
      << "both conflicting transactions committed";

  cluster->sim().RunFor(2 * kMicrosPerSecond);
  const PartitionId p = cluster->directory().PartitionFor("cc");
  const NodeId replica = cluster->topology().Replicas(p)[0];
  const Version v = cluster->server(replica)->store().GetVersion("cc");
  const int commits = static_cast<int>(o1->status.ok()) +
                      static_cast<int>(o2->status.ok());
  EXPECT_EQ(static_cast<int>(v), commits);
}

TEST(TapirTest, ReadOnlyTransactionStillRunsPrepare) {
  auto cluster = MakeCluster();
  // TAPIR has no read-only optimization: the commit callback still fires
  // only after a prepare round.
  auto out = RunTapirTxn(*cluster, 0, {"rr1", "rr2"}, {});
  ASSERT_TRUE(out->done);
  EXPECT_TRUE(out->status.ok());
  EXPECT_EQ(out->reads.size(), 2u);
}

TEST(TapirTest, SameClientConflictingTxnWaitsForFullCommit) {
  auto cluster = MakeCluster();
  TapirClient* client = cluster->client(0);

  // First transaction writes k; issue the second (touching k) right after
  // the first *decides* — it must be deferred until all decide-acks are in
  // but still complete correctly.
  auto first = std::make_shared<Outcome>();
  auto second = std::make_shared<Outcome>();
  const TxnId t1 = client->Begin();
  client->Read(t1, {"blk"}, {"blk"},
               [&, first](Status, const TapirClient::ReadResults&) {
                 client->Write(t1, "blk", "one");
                 client->Commit(t1, [&, first](Status s) {
                   first->done = true;
                   first->status = s;
                   // Immediately start a conflicting transaction.
                   const TxnId t2 = client->Begin();
                   client->Read(
                       t2, {"blk"}, {"blk"},
                       [&, second, t2](Status,
                                       const TapirClient::ReadResults& r) {
                         EXPECT_EQ(r.at("blk").value, "one")
                             << "second txn must observe the first";
                         client->Write(t2, "blk", "two");
                         client->Commit(t2, [second](Status s2) {
                           second->done = true;
                           second->status = s2;
                         });
                       });
                 });
               });
  cluster->sim().RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(first->done && second->done);
  EXPECT_TRUE(first->status.ok());
  EXPECT_TRUE(second->status.ok()) << second->status;

  cluster->sim().RunFor(2 * kMicrosPerSecond);
  const PartitionId p = cluster->directory().PartitionFor("blk");
  const NodeId replica = cluster->topology().Replicas(p)[0];
  EXPECT_EQ(cluster->server(replica)->store().Get("blk").value, "two");
}

TEST(TapirTest, VoteSemantics) {
  // Unit-level check of TAPIR-OCC validation through the wire protocol:
  // a prepared writer causes ABSTAIN for later conflicting prepares.
  auto cluster = MakeCluster();
  TapirClient* client = cluster->client(0);
  const TxnId t1 = client->Begin();
  client->Read(t1, {}, {"vs"},
               [&](Status, const TapirClient::ReadResults&) {
                 client->Write(t1, "vs", "x");
                 client->Commit(t1, [](Status) {});
               });
  // While t1 is prepared-but-undecided on some replica, a conflicting
  // prepare from another client abstains; the slow path or timeout
  // resolves it. End state: both eventually complete without deadlock.
  auto out = RunTapirTxn(*cluster, 3, {"vs"}, {{"vs", "y"}});
  ASSERT_TRUE(out->done);
  cluster->sim().RunFor(5 * kMicrosPerSecond);
}

}  // namespace
}  // namespace carousel::tapir
