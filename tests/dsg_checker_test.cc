// Unit tests for the serializability checker (src/check/serializability.cc)
// on hand-built histories: the DSG cycle test plus every side condition
// (durability, abort invisibility, read well-formedness, decision
// agreement). Each violating history is minimal — one defect each — so a
// checker regression points at exactly one test.

#include <gtest/gtest.h>

#include <string>

#include "check/serializability.h"

namespace carousel::check {
namespace {

TxnId Tid(ClientId client, uint64_t counter) { return TxnId{client, counter}; }

/// Shorthand: a committed read-write transaction.
void Commit(HistoryRecorder& h, const TxnId& tid,
            const std::map<Key, VersionedValue>& reads,
            const WriteSet& writes) {
  KeyList read_keys, write_keys;
  for (const auto& [k, vv] : reads) read_keys.push_back(k);
  for (const auto& [k, v] : writes) write_keys.push_back(k);
  h.Invoke(tid, read_keys, write_keys, writes.empty(), 0);
  h.ObserveReads(tid, reads);
  for (const auto& [k, v] : writes) h.BufferWrite(tid, k, v);
  h.ClientOutcome(tid, Outcome::kCommitted, "", 1);
}

bool HasKind(const CheckResult& r, const std::string& kind) {
  for (const Violation& v : r.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(DsgCheckerTest, SerialHistoryIsClean) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  Commit(h, Tid(0, 2), {{"x", {"a", 1}}}, {{"x", "b"}});
  Commit(h, Tid(1, 1), {{"x", {"b", 2}}}, {});
  WriterChains chains{{"x", {Tid(0, 1), Tid(0, 2)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(r.ok()) << r.Report(h);
  EXPECT_EQ(r.committed, 3u);
  // ww T1->T2, wr T1->T2 (x@1), wr T2->reader (x@2); the reader's rw edge
  // would point past the chain end, so none.
  EXPECT_EQ(r.edges, 3u);
}

TEST(DsgCheckerTest, LostUpdateIsACycle) {
  // The classic lost update: both transactions read x@v0, both commit a
  // write to x. ww orders T1 before T2; T2's read of v0 anti-depends on
  // T1's overwrite — a two-transaction cycle.
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {{"x", {"", 0}}}, {{"x", "a"}});
  Commit(h, Tid(1, 1), {{"x", {"", 0}}}, {{"x", "b"}});
  WriterChains chains{{"x", {Tid(0, 1), Tid(1, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(HasKind(r, "cycle")) << r.Report(h);
  // The minimized cycle covers exactly the two transactions.
  for (const Violation& v : r.violations) {
    if (v.kind == "cycle") EXPECT_EQ(v.cycle.size(), 2u);
  }
  // The report dumps the offending transactions for replay.
  const std::string report = r.Report(h);
  EXPECT_NE(report.find("VIOLATION [cycle]"), std::string::npos) << report;
  EXPECT_NE(report.find("txn 0.1"), std::string::npos) << report;
}

TEST(DsgCheckerTest, WriteSkewIsACycle) {
  // r1(x) r2(y) w1(y) w2(x): each transaction overwrites what the other
  // read — two rw anti-dependency edges, no ww/wr at all.
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {{"x", {"", 0}}}, {{"y", "a"}});
  Commit(h, Tid(1, 1), {{"y", {"", 0}}}, {{"x", "b"}});
  WriterChains chains{{"x", {Tid(1, 1)}}, {"y", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  ASSERT_TRUE(HasKind(r, "cycle")) << r.Report(h);
}

TEST(DsgCheckerTest, AbortedWriterInChainIsFlagged) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  h.Invoke(Tid(1, 1), {}, {"x"}, false, 0);
  h.BufferWrite(Tid(1, 1), "x", "b");
  h.ClientOutcome(Tid(1, 1), Outcome::kAborted, "conflict", 1);
  WriterChains chains{{"x", {Tid(0, 1), Tid(1, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "aborted-write-visible")) << r.Report(h);
}

TEST(DsgCheckerTest, ReadOfNeverInstalledVersionIsDirty) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  Commit(h, Tid(1, 1), {{"x", {"phantom", 5}}}, {});
  WriterChains chains{{"x", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "dirty-read")) << r.Report(h);
}

TEST(DsgCheckerTest, ValueMismatchIsCorruptRead) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "real"}});
  Commit(h, Tid(1, 1), {{"x", {"forged", 1}}}, {});
  WriterChains chains{{"x", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "corrupt-read")) << r.Report(h);
}

TEST(DsgCheckerTest, CommittedWriteMissingFromChainIsLost) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}, {"y", "b"}});
  WriterChains chains{{"x", {Tid(0, 1)}}};  // The write to y vanished.

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "lost-write")) << r.Report(h);
}

TEST(DsgCheckerTest, DoubleAppliedWriteIsFlagged) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  WriterChains chains{{"x", {Tid(0, 1), Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "double-apply")) << r.Report(h);
}

TEST(DsgCheckerTest, ChainEntryWithoutBufferedWriteIsGhost) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"y", "a"}});  // Never wrote x.
  WriterChains chains{{"x", {Tid(0, 1)}}, {"y", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "ghost-write")) << r.Report(h);
}

TEST(DsgCheckerTest, UnknownChainWriterIsFlagged) {
  HistoryRecorder h;
  WriterChains chains{{"x", {Tid(9, 9)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "unrecorded-writer")) << r.Report(h);
}

TEST(DsgCheckerTest, DisagreeingCoordinatorsAreFlagged) {
  // Two coordinator leaders (a failover, or split brain) reached opposite
  // verdicts for the same transaction.
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  h.CoordinatorDecision(Tid(0, 1), /*coordinator=*/2, /*committed=*/true, "",
                        10);
  h.CoordinatorDecision(Tid(0, 1), /*coordinator=*/5, /*committed=*/false,
                        "re-derived", 20);
  WriterChains chains{{"x", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "divergent-decision")) << r.Report(h);
}

TEST(DsgCheckerTest, ClientOutcomeMustMatchCoordinator) {
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {}, {{"x", "a"}});
  h.CoordinatorDecision(Tid(0, 1), 2, /*committed=*/false, "conflict", 10);
  WriterChains chains{{"x", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(HasKind(r, "divergent-decision")) << r.Report(h);
}

TEST(DsgCheckerTest, IndeterminateOutcomesResolveByChain) {
  // A client that crashed mid-flight: commit and abort are both legal.
  // In the chain -> counts as committed (and its effects must be
  // consistent); absent -> counts as aborted, with no lost-write charge.
  HistoryRecorder h;
  h.Invoke(Tid(0, 1), {}, {"x"}, false, 0);
  h.BufferWrite(Tid(0, 1), "x", "a");  // Ends up in the chain.
  h.Invoke(Tid(1, 1), {}, {"y"}, false, 0);
  h.BufferWrite(Tid(1, 1), "y", "b");  // Vanished with the client.
  WriterChains chains{{"x", {Tid(0, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  EXPECT_TRUE(r.ok()) << r.Report(h);
  EXPECT_EQ(r.indeterminate, 2u);
}

TEST(DsgCheckerTest, FoundCycleIsMinimized) {
  // wr edges T1->T2->T3->T1 form a 3-cycle, and the extra key d adds a
  // T1->T3 chord, embedding a 2-cycle {T1, T3}. Whichever cycle the DFS
  // stumbles on, the report must carry the minimal one — and never the
  // uninvolved bystander T4.
  HistoryRecorder h;
  Commit(h, Tid(0, 1), {{"c", {"vc", 1}}}, {{"a", "va"}, {"d", "vd"}});
  Commit(h, Tid(0, 2), {{"a", {"va", 1}}}, {{"b", "vb"}});
  Commit(h, Tid(0, 3), {{"b", {"vb", 1}}, {"d", {"vd", 1}}}, {{"c", "vc"}});
  Commit(h, Tid(1, 1), {}, {{"e", "z"}});
  WriterChains chains{{"a", {Tid(0, 1)}},
                      {"b", {Tid(0, 2)}},
                      {"c", {Tid(0, 3)}},
                      {"d", {Tid(0, 1)}},
                      {"e", {Tid(1, 1)}}};

  CheckResult r = CheckSerializability(h, chains);
  ASSERT_TRUE(HasKind(r, "cycle")) << r.Report(h);
  for (const Violation& v : r.violations) {
    if (v.kind != "cycle") continue;
    EXPECT_EQ(v.cycle.size(), 2u) << r.Report(h);
    for (const TxnId& tid : v.cycle) {
      EXPECT_NE(tid, Tid(0, 2)) << "chord made 0.2 bypassable";
      EXPECT_NE(tid, Tid(1, 1)) << "bystander dragged into the cycle";
    }
  }
}

}  // namespace
}  // namespace carousel::check
