// Unit tests for the history recorder (src/check/history.cc): the
// append-only per-run record the serializability checker consumes.

#include <gtest/gtest.h>

#include "check/history.h"

namespace carousel::check {
namespace {

TxnId Tid(ClientId client, uint64_t counter) { return TxnId{client, counter}; }

TEST(HistoryTest, RecordsKeepInvocationOrder) {
  HistoryRecorder h;
  h.Invoke(Tid(0, 1), {"a"}, {"a"}, /*read_only=*/false, /*now=*/10);
  h.Invoke(Tid(1, 1), {"b"}, {}, /*read_only=*/true, /*now=*/20);
  h.Invoke(Tid(0, 2), {}, {"c"}, /*read_only=*/false, /*now=*/30);

  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.records()[0].tid, Tid(0, 1));
  EXPECT_EQ(h.records()[1].tid, Tid(1, 1));
  EXPECT_EQ(h.records()[2].tid, Tid(0, 2));
  EXPECT_TRUE(h.records()[1].read_only);
  EXPECT_EQ(h.records()[0].invoked_at, 10);

  const TxnRecord* rec = h.Find(Tid(1, 1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->read_keys, KeyList{"b"});
  EXPECT_EQ(h.Find(Tid(9, 9)), nullptr);
}

TEST(HistoryTest, ReadsAndWritesAccumulate) {
  HistoryRecorder h;
  h.Invoke(Tid(0, 1), {"x", "y"}, {"x"}, false, 0);
  h.ObserveReads(Tid(0, 1), {{"x", {"vx", 3}}});
  h.ObserveReads(Tid(0, 1), {{"y", {"vy", 1}}});
  h.BufferWrite(Tid(0, 1), "x", "new");

  const TxnRecord* rec = h.Find(Tid(0, 1));
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->reads.size(), 2u);
  EXPECT_EQ(rec->reads.at("x").version, 3u);
  EXPECT_EQ(rec->writes.at("x"), "new");
}

TEST(HistoryTest, LaterReadOfSameKeyOverwrites) {
  // A read-only retry observes a fresh snapshot; the record must keep the
  // last observation, not a mix.
  HistoryRecorder h;
  h.ObserveReads(Tid(0, 1), {{"x", {"old", 1}}});
  h.ObserveReads(Tid(0, 1), {{"x", {"new", 2}}});
  EXPECT_EQ(h.Find(Tid(0, 1))->reads.at("x").version, 2u);
  EXPECT_EQ(h.Find(Tid(0, 1))->reads.at("x").value, "new");
}

TEST(HistoryTest, FirstClientOutcomeWins) {
  // A transaction finishes once at its client; a late duplicate reply
  // (e.g. a retransmitted decision) must not rewrite history.
  HistoryRecorder h;
  h.Invoke(Tid(0, 1), {}, {"x"}, false, 0);
  h.ClientOutcome(Tid(0, 1), Outcome::kAborted, "conflict", 50);
  h.ClientOutcome(Tid(0, 1), Outcome::kCommitted, "", 60);

  const TxnRecord* rec = h.Find(Tid(0, 1));
  EXPECT_EQ(rec->outcome, Outcome::kAborted);
  EXPECT_EQ(rec->reason, "conflict");
  EXPECT_EQ(rec->finished_at, 50);
}

TEST(HistoryTest, CoordinatorDecisionsOnUnknownTidCreateRecord) {
  // A coordinator can heartbeat-abort a transaction whose client never ran
  // under this recorder; the decision must still be auditable.
  HistoryRecorder h;
  h.CoordinatorDecision(Tid(7, 3), /*coordinator=*/2, /*committed=*/false,
                        "heartbeat abort", 100);
  h.CoordinatorDecision(Tid(7, 3), /*coordinator=*/4, /*committed=*/false,
                        "termination fence", 200);

  const TxnRecord* rec = h.Find(Tid(7, 3));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, Outcome::kUnknown);
  ASSERT_EQ(rec->decisions.size(), 2u);
  EXPECT_EQ(rec->decisions[0].coordinator, 2);
  EXPECT_EQ(rec->decisions[1].reason, "termination fence");
}

TEST(HistoryTest, ToStringIsSelfContained) {
  HistoryRecorder h;
  h.Invoke(Tid(0, 1), {"x"}, {"x"}, false, 10);
  h.ObserveReads(Tid(0, 1), {{"x", {"v", 1}}});
  h.BufferWrite(Tid(0, 1), "x", "w");
  h.ClientOutcome(Tid(0, 1), Outcome::kCommitted, "", 20);

  const std::string s = h.Find(Tid(0, 1))->ToString();
  EXPECT_NE(s.find("0.1"), std::string::npos) << s;
  EXPECT_NE(s.find("committed"), std::string::npos) << s;
  EXPECT_NE(s.find("x@v1"), std::string::npos) << s;
}

}  // namespace
}  // namespace carousel::check
