// Directed unit tests for the sim-layer Nemesis: the schedulable fault
// injector must be idempotent (double-crash fires once), must only undo
// faults it injected itself, and must describe its plan in time order so
// failing chaos seeds print a faithful fault schedule.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/topology.h"
#include "runtime/endpoint.h"
#include "sim/message.h"
#include "sim/nemesis.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace carousel::sim {
namespace {

struct PingMsg final : Message {
  int payload = 0;
  int type() const override { return kPing; }
  size_t SizeBytes() const override { return 100; }
};

class RecorderNode : public runtime::Endpoint {
 public:
  RecorderNode(NodeId id, DcId dc) : runtime::Endpoint(id, dc) {}
  void HandleMessage(NodeId from, const MessagePtr& msg) override {
    received.push_back(As<PingMsg>(*msg).payload);
    (void)from;
  }
  SimTime ServiceCost(const Message&) const override { return 0; }
  std::vector<int> received;
};

MessagePtr Ping(int payload) {
  auto msg = std::make_shared<PingMsg>();
  msg->payload = payload;
  return msg;
}

/// Three single-node DCs (nodes 0, 1, 2) with a 10ms uniform RTT.
struct NemesisFixture {
  NemesisFixture() {
    topo = Topology::Uniform(3, /*inter_dc_rtt_ms=*/10);
    topo.PlacePartitions(/*partitions=*/3, /*replication_factor=*/1);
    sim = std::make_unique<Simulator>(7);
    net = std::make_unique<Network>(sim.get(), &topo,
                                    NetworkOptions{.jitter_fraction = 0.0});
    for (NodeId id = 0; id < 3; ++id) {
      nodes.push_back(std::make_unique<RecorderNode>(id, topo.node(id).dc));
      net->Register(nodes.back().get());
    }
    nemesis = std::make_unique<Nemesis>(net.get());
  }

  /// Sends a ping 0->1 at `at` and returns whether it arrived by the end
  /// of the run-so-far.
  void SendAt(SimTime at, NodeId from, NodeId to, int payload) {
    sim->ScheduleAt(at, [this, from, to, payload] {
      net->Send(from, to, Ping(payload));
    });
  }

  Topology topo;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<RecorderNode>> nodes;
  std::unique_ptr<Nemesis> nemesis;
};

TEST(NemesisTest, CrashFiresOnceAndDropsTraffic) {
  NemesisFixture f;
  f.nemesis->CrashAt(100, 1);
  f.nemesis->CrashAt(200, 1);  // Already down: must not double-count.
  f.SendAt(300, 0, 1, 42);
  f.sim->RunToCompletion();
  EXPECT_EQ(f.nemesis->faults_injected(), 1u);
  EXPECT_FALSE(f.net->IsAlive(1));
  EXPECT_TRUE(f.nodes[1]->received.empty());
}

TEST(NemesisTest, RecoverRestoresOnlyWhatItCrashed) {
  NemesisFixture f;
  // Node 2 goes down outside the nemesis; the nemesis must not "recover"
  // a node it never crashed.
  f.sim->ScheduleAt(50, [&f] { f.net->Crash(2); });
  f.nemesis->CrashAt(100, 1);
  f.nemesis->RecoverAt(400, 1);
  f.nemesis->RecoverAt(400, 2);  // Not ours: no-op.
  f.SendAt(500, 0, 1, 7);
  f.SendAt(500, 0, 2, 8);
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.net->IsAlive(1));
  EXPECT_FALSE(f.net->IsAlive(2));
  EXPECT_EQ(f.nodes[1]->received, (std::vector<int>{7}));
  EXPECT_TRUE(f.nodes[2]->received.empty());
}

TEST(NemesisTest, PartitionBlocksBothDirectionsUntilHealed) {
  NemesisFixture f;
  f.nemesis->PartitionAt(100, {0}, {1, 2});
  // Re-partitioning an already-blocked pair must not double-count.
  f.nemesis->PartitionAt(150, {0}, {1});
  f.SendAt(200, 0, 1, 1);   // Dropped: across the cut.
  f.SendAt(200, 2, 0, 2);   // Dropped: cuts are bidirectional.
  f.SendAt(200, 1, 2, 3);   // Delivered: same side.
  f.nemesis->HealPartitionAt(300, {0}, {1, 2});
  f.SendAt(400, 0, 1, 4);   // Delivered: healed.
  f.sim->RunToCompletion();
  EXPECT_EQ(f.nemesis->faults_injected(), 2u);  // Pairs {0,1} and {0,2}.
  EXPECT_TRUE(f.nodes[0]->received.empty());
  EXPECT_EQ(f.nodes[1]->received, (std::vector<int>{4}));
  EXPECT_EQ(f.nodes[2]->received, (std::vector<int>{3}));
}

TEST(NemesisTest, HealAllUndoesEveryOutstandingFault) {
  NemesisFixture f;
  f.nemesis->CrashAt(100, 1);
  f.nemesis->PartitionAt(100, {0}, {2});
  f.nemesis->HealAllAt(300);
  f.SendAt(400, 0, 1, 10);
  f.SendAt(400, 0, 2, 11);
  f.sim->RunToCompletion();
  EXPECT_TRUE(f.net->IsAlive(1));
  EXPECT_EQ(f.nodes[1]->received, (std::vector<int>{10}));
  EXPECT_EQ(f.nodes[2]->received, (std::vector<int>{11}));
}

TEST(NemesisTest, DescribeListsPlanInTimeOrder) {
  NemesisFixture f;
  // Scheduled out of order; Describe must sort by fire time.
  f.nemesis->HealAllAt(900);
  f.nemesis->CrashAt(100, 1);
  f.nemesis->PartitionAt(500, {0}, {2});
  const std::string plan = f.nemesis->Describe();
  const size_t crash = plan.find("crash node 1");
  const size_t part = plan.find("partition {0} | {2}");
  const size_t heal = plan.find("heal all");
  ASSERT_NE(crash, std::string::npos) << plan;
  ASSERT_NE(part, std::string::npos) << plan;
  ASSERT_NE(heal, std::string::npos) << plan;
  EXPECT_LT(crash, part) << plan;
  EXPECT_LT(part, heal) << plan;
}

}  // namespace
}  // namespace carousel::sim
