#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "harness/cluster.h"
#include "test_util.h"

namespace carousel::test {
namespace {

using core::CarouselClient;
using core::CarouselOptions;
using core::Cluster;

/// Property sweep over deployment shapes: (fast path on/off, number of
/// partitions, inter-DC RTT, seed). For each configuration a batch of
/// randomized read-modify-write transactions runs concurrently and the
/// suite checks the protocol-independent invariants:
///   * every transaction completes (no hangs, no lost callbacks);
///   * per-key version == number of commits that wrote the key
///     (serializability: no lost or phantom update);
///   * replicas converge (writebacks drain; pending lists empty);
///   * transaction latency at idle is bounded by a small number of WAN
///     roundtrips (the paper's headline property).
struct PropertyParam {
  bool fast = false;
  int partitions = 3;
  double rtt_ms = 20;
  uint64_t seed = 1;
};

class CarouselPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(CarouselPropertyTest, InvariantsHoldUnderRandomConcurrentLoad) {
  const PropertyParam& param = GetParam();
  CarouselOptions options = FastRaftOptions();
  options.fast_path = param.fast;
  options.local_reads = param.fast;

  Topology topo = Topology::Uniform(3, param.rtt_ms);
  topo.PlacePartitions(param.partitions, 3);
  for (DcId dc = 0; dc < 3; ++dc) {
    for (int i = 0; i < 2; ++i) topo.AddClient(dc);
  }
  Cluster cluster(std::move(topo), options, sim::NetworkOptions{}, param.seed);
  cluster.Start();

  const int kTxns = 80;
  const int kKeys = 24;
  Rng rng(param.seed * 1337);
  int done = 0, committed = 0;
  std::map<Key, int> commits_per_key;

  for (int i = 0; i < kTxns; ++i) {
    const SimTime at =
        cluster.sim().now() + rng.UniformInt(0, 8 * kMicrosPerSecond);
    const int client_index =
        static_cast<int>(rng.UniformInt(0, cluster.clients().size() - 1));
    KeyList keys;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    while (static_cast<int>(keys.size()) < n) {
      Key k = "pk" + std::to_string(rng.UniformInt(0, kKeys - 1));
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    cluster.sim().ScheduleAt(at, [&, client_index, keys]() {
      CarouselClient* client = cluster.client(client_index);
      const TxnId tid = client->Begin();
      client->ReadAndPrepare(
          tid, keys, keys,
          [&, client, tid, keys](Status status,
                                 const CarouselClient::ReadResults& reads) {
            if (!status.ok()) {
              done++;
              return;
            }
            for (const Key& k : keys) {
              const int old = reads.at(k).value.empty()
                                  ? 0
                                  : std::stoi(reads.at(k).value);
              client->Write(tid, k, std::to_string(old + 1));
            }
            client->Commit(tid, [&, keys](Status s) {
              done++;
              if (s.ok()) {
                committed++;
                for (const Key& k : keys) commits_per_key[k]++;
              }
            });
          });
    });
  }
  cluster.sim().RunFor(40 * kMicrosPerSecond);

  EXPECT_EQ(done, kTxns) << "transactions hung";
  EXPECT_GT(committed, 0);

  cluster.sim().RunFor(20 * kMicrosPerSecond);  // Drain writebacks.
  for (int i = 0; i < kKeys; ++i) {
    const Key k = "pk" + std::to_string(i);
    const VersionedValue vv = LeaderValue(cluster, k);
    EXPECT_EQ(static_cast<int>(vv.version), commits_per_key[k])
        << "key " << k;
    if (commits_per_key[k] > 0) {
      EXPECT_EQ(std::stoi(vv.value), commits_per_key[k]) << "key " << k;
    }
    // All replicas converge to the same value.
    const PartitionId p = cluster.directory().PartitionFor(k);
    for (NodeId replica : cluster.topology().Replicas(p)) {
      EXPECT_EQ(cluster.server(replica)->store().Get(k).version, vv.version)
          << "key " << k << " replica " << replica;
    }
  }
  for (const NodeInfo& info : cluster.topology().nodes()) {
    if (info.is_client) continue;
    EXPECT_EQ(cluster.server(info.id)->pending().size(), 0u)
        << "node " << info.id;
  }
}

std::vector<PropertyParam> AllParams() {
  std::vector<PropertyParam> params;
  for (bool fast : {false, true}) {
    for (int partitions : {1, 3, 5}) {
      for (double rtt : {5.0, 60.0}) {
        for (uint64_t seed : {11u, 22u}) {
          params.push_back({fast, partitions, rtt, seed});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CarouselPropertyTest, ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const PropertyParam& p = info.param;
      return std::string(p.fast ? "fast" : "basic") + "_p" +
             std::to_string(p.partitions) + "_rtt" +
             std::to_string(static_cast<int>(p.rtt_ms)) + "_s" +
             std::to_string(p.seed);
    });

/// Idle-latency property: at zero load a read-write transaction finishes
/// within ~2 WANRTs (Basic) and a read-only one within ~1 WANRT,
/// whatever the RTT (the paper's roundtrip guarantees, parameterized).
class LatencyBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(LatencyBoundTest, RoundtripBudgetsScaleWithRtt) {
  const double rtt_ms = GetParam();
  CarouselOptions options = FastRaftOptions();
  Topology topo = Topology::Uniform(3, rtt_ms);
  topo.PlacePartitions(3, 3);
  topo.AddClient(0);
  Cluster cluster(std::move(topo), options, sim::NetworkOptions{}, 7);
  cluster.Start();

  const SimTime rtt = static_cast<SimTime>(rtt_ms * kMicrosPerMilli);
  const SimTime slack = 8 * kMicrosPerMilli + rtt / 4;  // Jitter + intra-DC.

  SimTime start = cluster.sim().now();
  TxnOutcome rw = RunTxn(cluster, 0, {"lb"}, {{"lb", "v"}});
  ASSERT_TRUE(rw.commit_status.ok());
  EXPECT_LE(cluster.sim().now() - start, 2 * rtt + slack)
      << "read-write exceeded 2 WANRTs at rtt " << rtt_ms;

  // Let the asynchronous Writeback phase clear the pending entry; a
  // read-only transaction issued inside that window correctly aborts.
  cluster.sim().RunFor(4 * rtt + kMicrosPerSecond);
  start = cluster.sim().now();
  TxnOutcome ro = RunTxn(cluster, 0, {"lb"}, {});
  ASSERT_TRUE(ro.commit_status.ok());
  EXPECT_LE(cluster.sim().now() - start, rtt + slack)
      << "read-only exceeded 1 WANRT at rtt " << rtt_ms;
}

INSTANTIATE_TEST_SUITE_P(Rtts, LatencyBoundTest,
                         ::testing::Values(10.0, 50.0, 150.0, 300.0));

}  // namespace
}  // namespace carousel::test
