#include "wire/wire.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "carousel/messages.h"
#include "raft/messages.h"
#include "sim/message.h"
#include "tapir/messages.h"

namespace carousel {
namespace {

// ---------------------------------------------------------------------------
// Sample construction: for every registered type, a default-constructed
// instance and one with every field populated (nested payloads included).
// ---------------------------------------------------------------------------

TxnId Tid() { return TxnId{3, 77}; }
KeyList SampleKeys() { return {"alpha", "k2", ""}; }
WriteSet SampleWrites() { return {{"alpha", "value-1"}, {"beta", ""}}; }
ReadVersionMap SampleVersions() { return {{"alpha", 5}, {"k2", 0}}; }
std::map<Key, VersionedValue> SampleReads() {
  return {{"alpha", {"val", 9}}, {"k2", {"", 0}}};
}
std::map<PartitionId, core::RwKeys> SamplePartitionKeys() {
  return {{0, {SampleKeys(), {"w1"}}}, {2, {{}, SampleKeys()}}};
}

kv::PendingTxn SamplePendingTxn() {
  kv::PendingTxn txn;
  txn.tid = Tid();
  txn.read_keys = {"alpha", "k2"};
  txn.write_keys = {"w1"};
  // The codec carries one version per read key; the pending list always
  // records all of them.
  txn.read_versions = {{"alpha", 4}, {"k2", 0}};
  txn.term = 6;
  txn.coordinator = 11;
  // prepared_at_micros is local bookkeeping, never serialized.
  return txn;
}

template <typename T, typename Fill>
std::vector<std::shared_ptr<sim::Message>> Pair(Fill fill) {
  auto populated = std::make_shared<T>();
  fill(*populated);
  return {std::make_shared<T>(), populated};
}

std::vector<std::shared_ptr<sim::Message>> Samples(int type) {
  switch (type) {
    case sim::kBatchEnvelope:
      return Pair<sim::BatchEnvelopeMsg>([](sim::BatchEnvelopeMsg& m) {
        auto hb = std::make_shared<core::HeartbeatMsg>();
        hb->tid = Tid();
        hb->client = 9;
        auto ack = std::make_shared<core::WritebackAckMsg>();
        ack->tid = Tid();
        ack->partition = 2;
        m.items = {hb, ack};
      });

    case sim::kRaftRequestVote:
      return Pair<raft::RequestVoteMsg>([](raft::RequestVoteMsg& m) {
        m.group = 1;
        m.term = 9;
        m.candidate = 4;
        m.last_log_index = 100;
        m.last_log_term = 8;
      });
    case sim::kRaftVoteResponse:
      return Pair<raft::VoteResponseMsg>([](raft::VoteResponseMsg& m) {
        m.group = 1;
        m.term = 9;
        m.granted = true;
        m.voter = 5;
        m.pending_list = {SamplePendingTxn()};
      });
    case sim::kRaftAppendEntries:
      return Pair<raft::AppendEntriesMsg>([](raft::AppendEntriesMsg& m) {
        m.group = 2;
        m.term = 7;
        m.leader = 3;
        m.prev_log_index = 41;
        m.prev_log_term = 6;
        m.leader_commit = 40;
        auto commit = std::make_shared<core::LogCommit>();
        commit->tid = Tid();
        commit->coordinator = 8;
        commit->commit = true;
        commit->writes = SampleWrites();
        m.entries.push_back(raft::LogEntry{7, commit});
        m.entries.push_back(
            raft::LogEntry{7, std::make_shared<raft::NoopPayload>()});
        m.entries.push_back(raft::LogEntry{6, nullptr});
      });
    case sim::kRaftAppendResponse:
      return Pair<raft::AppendResponseMsg>([](raft::AppendResponseMsg& m) {
        m.group = 2;
        m.term = 7;
        m.success = true;
        m.follower = 4;
        m.match_index = 44;
      });

    case sim::kCarouselReadPrepare:
      return Pair<core::ReadPrepareMsg>([](core::ReadPrepareMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.client = 12;
        m.coordinator = 4;
        m.read_keys = SampleKeys();
        m.write_keys = {"w1"};
        m.read_only = true;
        m.fast_path = true;
        m.want_data = true;
        m.is_retry = true;
        m.attempt = 3;
      });
    case sim::kCarouselReadResponse:
      return Pair<core::ReadResponseMsg>([](core::ReadResponseMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.ok = false;
        m.from_leader = false;
        m.attempt = 2;
        m.reads = SampleReads();
      });
    case sim::kCarouselPrepareDecision:
      return Pair<core::PrepareDecisionMsg>([](core::PrepareDecisionMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.replica = 6;
        m.is_leader = true;
        m.via_fast_path = true;
        m.prepared = true;
        m.read_versions = SampleVersions();
        m.term = 5;
      });
    case sim::kCarouselCoordPrepare:
      return Pair<core::CoordPrepareMsg>([](core::CoordPrepareMsg& m) {
        m.tid = Tid();
        m.client = 12;
        m.fast_path = true;
        m.keys = SamplePartitionKeys();
      });
    case sim::kCarouselCommitRequest:
      return Pair<core::CommitRequestMsg>([](core::CommitRequestMsg& m) {
        m.tid = Tid();
        m.client = 12;
        m.writes = SampleWrites();
        m.read_versions = SampleVersions();
        m.keys = SamplePartitionKeys();
      });
    case sim::kCarouselAbortRequest:
      return Pair<core::AbortRequestMsg>([](core::AbortRequestMsg& m) {
        m.tid = Tid();
        m.client = 12;
      });
    case sim::kCarouselCommitResponse:
      return Pair<core::CommitResponseMsg>([](core::CommitResponseMsg& m) {
        m.tid = Tid();
        m.committed = false;
        m.reason = "conflict";
      });
    case sim::kCarouselWriteback:
      return Pair<core::WritebackMsg>([](core::WritebackMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.coordinator = 4;
        m.commit = true;
        m.writes = SampleWrites();
      });
    case sim::kCarouselWritebackAck:
      return Pair<core::WritebackAckMsg>([](core::WritebackAckMsg& m) {
        m.tid = Tid();
        m.partition = 1;
      });
    case sim::kCarouselHeartbeat:
      return Pair<core::HeartbeatMsg>([](core::HeartbeatMsg& m) {
        m.tid = Tid();
        m.client = 12;
      });
    case sim::kCarouselQueryPrepare:
      return Pair<core::QueryPrepareMsg>([](core::QueryPrepareMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.coordinator = 4;
        m.read_keys = SampleKeys();
        m.write_keys = {"w1"};
      });
    case sim::kCarouselNotLeader:
      return Pair<core::NotLeaderMsg>([](core::NotLeaderMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.leader_hint = 7;
      });
    case sim::kCarouselQueryDecision:
      return Pair<core::QueryDecisionMsg>([](core::QueryDecisionMsg& m) {
        m.tid = Tid();
        m.partition = 1;
      });

    case sim::kLogTxnInfo:
      return Pair<core::LogTxnInfo>([](core::LogTxnInfo& m) {
        m.tid = Tid();
        m.client = 12;
        m.fast_path = true;
        m.keys = SamplePartitionKeys();
      });
    case sim::kLogWriteData:
      return Pair<core::LogWriteData>([](core::LogWriteData& m) {
        m.tid = Tid();
        m.writes = SampleWrites();
        m.client_versions = SampleVersions();
      });
    case sim::kLogDecision:
      return Pair<core::LogDecision>([](core::LogDecision& m) {
        m.tid = Tid();
        m.commit = true;
      });
    case sim::kLogPrepareResult:
      return Pair<core::LogPrepareResult>([](core::LogPrepareResult& m) {
        m.tid = Tid();
        m.coordinator = 4;
        m.prepared = true;
        m.read_keys = SampleKeys();
        m.write_keys = {"w1"};
        m.read_versions = SampleVersions();
        m.term = 5;
      });
    case sim::kLogCommit:
      return Pair<core::LogCommit>([](core::LogCommit& m) {
        m.tid = Tid();
        m.coordinator = 4;
        m.commit = true;
        m.writes = SampleWrites();
      });
    case sim::kLogNoop:
      return Pair<raft::NoopPayload>([](raft::NoopPayload&) {});

    case sim::kTapirRead:
      return Pair<tapir::TapirReadMsg>([](tapir::TapirReadMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.client = 12;
        m.keys = SampleKeys();
      });
    case sim::kTapirReadReply:
      return Pair<tapir::TapirReadReplyMsg>([](tapir::TapirReadReplyMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.reads = SampleReads();
      });
    case sim::kTapirPrepare:
      return Pair<tapir::TapirPrepareMsg>([](tapir::TapirPrepareMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.client = 12;
        m.timestamp = 1234567;
        m.read_versions = SampleVersions();
        m.writes = SampleWrites();
      });
    case sim::kTapirPrepareReply:
      return Pair<tapir::TapirPrepareReplyMsg>(
          [](tapir::TapirPrepareReplyMsg& m) {
            m.tid = Tid();
            m.partition = 1;
            m.replica = 6;
            m.vote = tapir::Vote::kAbort;
          });
    case sim::kTapirFinalize:
      return Pair<tapir::TapirFinalizeMsg>([](tapir::TapirFinalizeMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.vote = tapir::Vote::kOk;
      });
    case sim::kTapirFinalizeReply:
      return Pair<tapir::TapirFinalizeReplyMsg>(
          [](tapir::TapirFinalizeReplyMsg& m) {
            m.tid = Tid();
            m.partition = 1;
            m.replica = 6;
          });
    case sim::kTapirDecide:
      return Pair<tapir::TapirDecideMsg>([](tapir::TapirDecideMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.commit = true;
        m.timestamp = 1234567;
        m.writes = SampleWrites();
      });
    case sim::kTapirDecideAck:
      return Pair<tapir::TapirDecideAckMsg>([](tapir::TapirDecideAckMsg& m) {
        m.tid = Tid();
        m.partition = 1;
        m.replica = 6;
      });
  }
  return {};
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

TEST(WireTest, RegistryCoversEveryProtocolType) {
  // Everything that can cross the network or ride in a replicated log.
  // (kPing/kPong are test-local fixtures, deliberately absent.)
  const std::vector<int> expected = {
      sim::kBatchEnvelope,          sim::kRaftRequestVote,
      sim::kRaftVoteResponse,       sim::kRaftAppendEntries,
      sim::kRaftAppendResponse,     sim::kCarouselReadPrepare,
      sim::kCarouselReadResponse,   sim::kCarouselPrepareDecision,
      sim::kCarouselCoordPrepare,   sim::kCarouselCommitRequest,
      sim::kCarouselAbortRequest,   sim::kCarouselCommitResponse,
      sim::kCarouselWriteback,      sim::kCarouselWritebackAck,
      sim::kCarouselHeartbeat,      sim::kCarouselQueryPrepare,
      sim::kCarouselNotLeader,      sim::kCarouselQueryDecision,
      sim::kLogTxnInfo,             sim::kLogWriteData,
      sim::kLogDecision,            sim::kLogPrepareResult,
      sim::kLogCommit,              sim::kLogNoop,
      sim::kTapirRead,              sim::kTapirReadReply,
      sim::kTapirPrepare,           sim::kTapirPrepareReply,
      sim::kTapirFinalize,          sim::kTapirFinalizeReply,
      sim::kTapirDecide,            sim::kTapirDecideAck,
  };
  for (int type : expected) {
    EXPECT_TRUE(wire::Encodable(type)) << "type " << type << " not registered";
  }
  EXPECT_EQ(wire::RegisteredTypes().size(), expected.size());
}

/// The size property the threaded transport relies on: the encoded payload
/// is byte-for-byte the size the simulator's bandwidth accounting charges.
/// The round-trip property: decode(encode(m)) re-encodes to identical
/// bytes (fields survive; the encoding is canonical).
TEST(WireTest, EveryRegisteredTypeRoundTripsAtItsAccountedSize) {
  for (int type : wire::RegisteredTypes()) {
    auto samples = Samples(type);
    ASSERT_FALSE(samples.empty()) << "no sample builder for type " << type;
    for (const auto& msg : samples) {
      ASSERT_EQ(msg->type(), type);
      const std::vector<uint8_t> bytes = wire::Encode(*msg);
      EXPECT_EQ(bytes.size(), msg->SizeBytes())
          << "encoded size != SizeBytes for type " << type;

      sim::MessagePtr decoded = wire::Decode(type, bytes.data(), bytes.size());
      ASSERT_NE(decoded, nullptr) << "decode failed for type " << type;
      EXPECT_EQ(decoded->type(), type);
      EXPECT_EQ(decoded->SizeBytes(), msg->SizeBytes());
      EXPECT_EQ(wire::Encode(*decoded), bytes)
          << "re-encode mismatch for type " << type;
    }
  }
}

TEST(WireTest, FieldFidelitySpotChecks) {
  {  // Rich flat message.
    auto samples = Samples(sim::kCarouselReadPrepare);
    const auto bytes = wire::Encode(*samples[1]);
    auto decoded = wire::Decode(sim::kCarouselReadPrepare, bytes.data(),
                                bytes.size());
    ASSERT_NE(decoded, nullptr);
    const auto& m = sim::As<core::ReadPrepareMsg>(*decoded);
    EXPECT_EQ(m.tid, Tid());
    EXPECT_EQ(m.partition, 1);
    EXPECT_EQ(m.client, 12);
    EXPECT_EQ(m.coordinator, 4);
    EXPECT_EQ(m.read_keys, SampleKeys());
    EXPECT_EQ(m.write_keys, KeyList{"w1"});
    EXPECT_TRUE(m.read_only);
    EXPECT_TRUE(m.fast_path);
    EXPECT_TRUE(m.want_data);
    EXPECT_TRUE(m.is_retry);
    EXPECT_EQ(m.attempt, 3u);
  }
  {  // Nested log payloads survive an AppendEntries round trip.
    auto samples = Samples(sim::kRaftAppendEntries);
    const auto bytes = wire::Encode(*samples[1]);
    auto decoded =
        wire::Decode(sim::kRaftAppendEntries, bytes.data(), bytes.size());
    ASSERT_NE(decoded, nullptr);
    const auto& m = sim::As<raft::AppendEntriesMsg>(*decoded);
    ASSERT_EQ(m.entries.size(), 3u);
    ASSERT_NE(m.entries[0].payload, nullptr);
    const auto& commit = sim::As<core::LogCommit>(*m.entries[0].payload);
    EXPECT_EQ(commit.tid, Tid());
    EXPECT_TRUE(commit.commit);
    EXPECT_EQ(commit.writes, SampleWrites());
    ASSERT_NE(m.entries[1].payload, nullptr);
    EXPECT_EQ(m.entries[1].payload->type(), sim::kLogNoop);
    EXPECT_EQ(m.entries[2].payload, nullptr);
  }
  {  // Pending-transaction piggyback on votes (recovery input).
    auto samples = Samples(sim::kRaftVoteResponse);
    const auto bytes = wire::Encode(*samples[1]);
    auto decoded =
        wire::Decode(sim::kRaftVoteResponse, bytes.data(), bytes.size());
    ASSERT_NE(decoded, nullptr);
    const auto& m = sim::As<raft::VoteResponseMsg>(*decoded);
    ASSERT_EQ(m.pending_list.size(), 1u);
    const kv::PendingTxn& txn = m.pending_list[0];
    const kv::PendingTxn sample = SamplePendingTxn();
    EXPECT_EQ(txn.tid, sample.tid);
    EXPECT_EQ(txn.read_keys, sample.read_keys);
    EXPECT_EQ(txn.write_keys, sample.write_keys);
    EXPECT_EQ(txn.read_versions, sample.read_versions);
    EXPECT_EQ(txn.term, sample.term);
    EXPECT_EQ(txn.coordinator, sample.coordinator);
  }
  {  // Batch envelope items are unwrapped intact.
    auto samples = Samples(sim::kBatchEnvelope);
    const auto bytes = wire::Encode(*samples[1]);
    auto decoded =
        wire::Decode(sim::kBatchEnvelope, bytes.data(), bytes.size());
    ASSERT_NE(decoded, nullptr);
    const auto& m = sim::As<sim::BatchEnvelopeMsg>(*decoded);
    ASSERT_EQ(m.items.size(), 2u);
    EXPECT_EQ(m.items[0]->type(), sim::kCarouselHeartbeat);
    EXPECT_EQ(sim::As<core::HeartbeatMsg>(*m.items[0]).client, 9);
    EXPECT_EQ(m.items[1]->type(), sim::kCarouselWritebackAck);
  }
}

TEST(WireTest, TruncatedInputDecodesToNull) {
  for (int type : wire::RegisteredTypes()) {
    auto samples = Samples(type);
    const auto bytes = wire::Encode(*samples[1]);
    ASSERT_FALSE(bytes.empty());
    // Every strict prefix must be rejected, never crash or mis-decode.
    for (size_t cut : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
      if (cut >= bytes.size()) continue;
      EXPECT_EQ(wire::Decode(type, bytes.data(), cut), nullptr)
          << "type " << type << " accepted a " << cut << "-byte prefix of "
          << bytes.size();
    }
  }
}

struct PingProbe final : sim::Message {
  int type() const override { return sim::kPing; }
  size_t SizeBytes() const override { return 100; }
};

TEST(WireTest, UnknownTypeIsRejected) {
  EXPECT_FALSE(wire::Encodable(sim::kPing));
  EXPECT_EQ(wire::Encode(PingProbe{}).size(), 0u);
  const uint8_t junk[16] = {};
  EXPECT_EQ(wire::Decode(9999, junk, sizeof(junk)), nullptr);
}

// ---------------------------------------------------------------------------
// Fuzz: the decoders sit on the network boundary, so any byte sequence a
// peer (or a bit-flipping link) can produce must either be rejected or
// decode to a self-consistent message — never read out of bounds or crash.
// The seeds are fixed so failures replay; the ASan CI leg is what gives
// the out-of-bounds claims teeth.

/// A decoder may accept a mutated buffer only if the result is
/// self-consistent: it re-encodes at its own accounted size.
void ExpectRejectedOrSelfConsistent(int type, const std::vector<uint8_t>& bytes,
                                    const char* what) {
  auto decoded = wire::Decode(type, bytes.data(), bytes.size());
  if (decoded == nullptr) return;
  EXPECT_EQ(decoded->type(), type) << what << " for type " << type;
  const auto reencoded = wire::Encode(*decoded);
  EXPECT_EQ(reencoded.size(), decoded->SizeBytes())
      << what << " decoded type " << type
      << " to a message that re-encodes at the wrong size";
}

TEST(WireFuzzTest, MutatedEncodingsNeverCrashTheDecoders) {
  std::mt19937_64 rng(0xca70u);  // Fixed seed: failures must replay.
  for (int type : wire::RegisteredTypes()) {
    for (const auto& sample : Samples(type)) {
      const std::vector<uint8_t> base = wire::Encode(*sample);
      for (int round = 0; round < 250; ++round) {
        std::vector<uint8_t> bytes = base;
        const int mutations = 1 + static_cast<int>(rng() % 3);
        for (int m = 0; m < mutations; ++m) {
          switch (rng() % 4) {
            case 0:  // Flip one bit somewhere.
              if (!bytes.empty()) {
                bytes[rng() % bytes.size()] ^=
                    static_cast<uint8_t>(1u << (rng() % 8));
              }
              break;
            case 1:  // Truncate at a random point.
              bytes.resize(bytes.empty() ? 0 : rng() % bytes.size());
              break;
            case 2:  // Extend with random junk.
              for (uint64_t n = 1 + rng() % 16; n > 0; --n) {
                bytes.push_back(static_cast<uint8_t>(rng()));
              }
              break;
            default:  // Saturate a 4-byte window: the length-field attack.
              if (bytes.size() >= 4) {
                const size_t at = rng() % (bytes.size() - 3);
                for (size_t i = 0; i < 4; ++i) bytes[at + i] = 0xff;
              }
              break;
          }
        }
        ExpectRejectedOrSelfConsistent(type, bytes, "mutation");
      }
    }
  }
}

TEST(WireFuzzTest, SplicedEncodingsNeverCrashTheDecoders) {
  // A prefix of one type's encoding grafted onto a suffix of another's,
  // decoded as either type: simulates framing bugs that hand a decoder
  // the wrong (but individually well-formed) payload.
  std::mt19937_64 rng(0x5e1fu);
  const std::vector<int> types = wire::RegisteredTypes();
  for (int round = 0; round < 2000; ++round) {
    const int ta = types[rng() % types.size()];
    const int tb = types[rng() % types.size()];
    const auto a = wire::Encode(*Samples(ta)[1]);
    const auto b = wire::Encode(*Samples(tb)[1]);
    std::vector<uint8_t> spliced(a.begin(), a.begin() + rng() % (a.size() + 1));
    spliced.insert(spliced.end(), b.begin() + rng() % (b.size() + 1), b.end());
    ExpectRejectedOrSelfConsistent(ta, spliced, "splice");
    ExpectRejectedOrSelfConsistent(tb, spliced, "splice");
  }
}

TEST(WireFuzzTest, RandomBytesNeverCrashTheDecoders) {
  std::mt19937_64 rng(0xf00du);
  for (int type : wire::RegisteredTypes()) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{32},
                       size_t{128}, size_t{1024}}) {
      for (int round = 0; round < 40; ++round) {
        std::vector<uint8_t> bytes(len);
        for (auto& byte : bytes) byte = static_cast<uint8_t>(rng());
        ExpectRejectedOrSelfConsistent(type, bytes, "random bytes");
      }
    }
  }
}

}  // namespace
}  // namespace carousel
