#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace carousel::test {
namespace {

using workload::DriverOptions;
using workload::RunResult;
using workload::WorkloadOptions;

WorkloadOptions SmallWorkload() {
  WorkloadOptions options;
  // Large enough that Zipf(0.75) hot-key contention stays low, as with
  // the paper's 10 M keys; small enough to keep the test fast.
  options.num_keys = 2'000'000;
  return options;
}

DriverOptions ShortRun(double tps, uint64_t seed) {
  DriverOptions options;
  options.target_tps = tps;
  options.duration = 15 * kMicrosPerSecond;
  options.warmup = 3 * kMicrosPerSecond;
  options.cooldown = 3 * kMicrosPerSecond;
  options.seed = seed;
  return options;
}

/// Each system runs the full Retwis mix on the paper's EC2 topology and
/// sustains a light load with low aborts — the end-to-end smoke of the
/// Figure 4 configuration.
class Ec2WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(Ec2WorkloadTest, RetwisOnPaperTopology) {
  const std::string& system = GetParam();
  Topology topo = Topology::PaperEc2();
  topo.PlacePartitions(5, 3);
  for (DcId dc = 0; dc < 5; ++dc) {
    for (int i = 0; i < 4; ++i) topo.AddClient(dc);
  }

  auto generator = workload::MakeRetwisGenerator(SmallWorkload());
  const DriverOptions dopts = ShortRun(50, 91);
  RunResult result;

  if (system == "tapir") {
    tapir::TapirOptions options;
    tapir::TapirCluster cluster(topo, options, sim::NetworkOptions{}, 91);
    auto adapter = workload::MakeTapirAdapter(&cluster);
    result = workload::RunWorkload(adapter.get(), generator.get(), dopts);
  } else {
    core::CarouselOptions options = FastRaftOptions();
    if (system == "fast") {
      options.fast_path = true;
      options.local_reads = true;
    }
    core::Cluster cluster(topo, options, sim::NetworkOptions{}, 91);
    cluster.Start();
    auto adapter = workload::MakeCarouselAdapter(&cluster, system);
    result = workload::RunWorkload(adapter.get(), generator.get(), dopts);
  }

  EXPECT_GT(result.committed, 200u) << system;
  EXPECT_EQ(result.timed_out, 0u) << system;
  EXPECT_LT(result.AbortRate(), 0.05) << system;
  // Geo latencies: median between 1 and ~3 WANRTs.
  EXPECT_GT(result.latency.Median(), 30 * kMicrosPerMilli) << system;
  EXPECT_LT(result.latency.Median(), 600 * kMicrosPerMilli) << system;
}

INSTANTIATE_TEST_SUITE_P(Systems, Ec2WorkloadTest,
                         ::testing::Values("basic", "fast", "tapir"),
                         [](const auto& info) { return info.param; });

/// Carousel keeps committing (with a latency blip, not an outage) through
/// a participant-leader crash and recovery mid-run.
TEST(IntegrationTest, CarouselSurvivesLeaderCrashMidWorkload) {
  Topology topo = SmallTopology(3, 3, 3, /*clients_per_dc=*/4);
  core::CarouselOptions options = FastRaftOptions();
  options.fast_path = true;
  options.local_reads = true;
  core::Cluster cluster(topo, options, sim::NetworkOptions{}, 93);
  cluster.Start();

  // Crash partition 1's leader a third into the run; recover it later.
  const NodeId victim = cluster.topology().InitialLeader(1);
  cluster.sim().Schedule(6 * kMicrosPerSecond,
                         [&]() { cluster.Crash(victim); });
  cluster.sim().Schedule(12 * kMicrosPerSecond,
                         [&]() { cluster.Recover(victim); });

  auto adapter = workload::MakeCarouselAdapter(&cluster, "fast");
  auto generator = workload::MakeRetwisGenerator(SmallWorkload());
  DriverOptions dopts;
  dopts.target_tps = 80;
  dopts.duration = 20 * kMicrosPerSecond;
  dopts.warmup = 2 * kMicrosPerSecond;
  dopts.cooldown = 2 * kMicrosPerSecond;
  const RunResult result =
      workload::RunWorkload(adapter.get(), generator.get(), dopts);

  // The vast majority of transactions complete; a handful may time out or
  // abort around the crash.
  const double total = static_cast<double>(
      result.committed + result.aborted + result.timed_out);
  EXPECT_GT(result.committed / total, 0.90);
  // The cluster has one leader per partition again.
  for (PartitionId p = 0; p < 3; ++p) {
    EXPECT_NE(cluster.LeaderOf(p), nullptr) << "partition " << p;
  }
}

/// Identical seeds produce identical results (full determinism of the
/// simulation), and different seeds differ.
TEST(IntegrationTest, RunsAreDeterministic) {
  auto run = [](uint64_t seed) {
    Topology topo = SmallTopology(3, 3, 3, 3);
    core::CarouselOptions options = FastRaftOptions();
    core::Cluster cluster(topo, options, sim::NetworkOptions{}, seed);
    cluster.Start();
    auto adapter = workload::MakeCarouselAdapter(&cluster, "basic");
    auto generator = workload::MakeRetwisGenerator(
        WorkloadOptions{.num_keys = 50000, .zipf_theta = 0.75});
    return workload::RunWorkload(adapter.get(), generator.get(),
                                 ShortRun(60, seed));
  };
  const RunResult a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.latency.Median(), b.latency.Median());
  EXPECT_TRUE(a.committed != c.committed ||
              a.latency.Median() != c.latency.Median());
}

/// Store state stays consistent across replicas after a full workload
/// (writebacks eventually reach every live replica).
TEST(IntegrationTest, ReplicasConvergeAfterWorkload) {
  Topology topo = SmallTopology(3, 3, 3, 3);
  core::CarouselOptions options = FastRaftOptions();
  core::Cluster cluster(topo, options, sim::NetworkOptions{}, 95);
  cluster.Start();
  auto adapter = workload::MakeCarouselAdapter(&cluster, "basic");
  auto generator = workload::MakeYcsbTGenerator(
      WorkloadOptions{.num_keys = 500, .zipf_theta = 0.5});
  workload::RunWorkload(adapter.get(), generator.get(), ShortRun(40, 95));
  cluster.sim().RunFor(20 * kMicrosPerSecond);  // Drain writebacks.

  for (PartitionId p = 0; p < 3; ++p) {
    const auto& replicas = cluster.topology().Replicas(p);
    const auto& reference = cluster.server(replicas[0])->store();
    for (size_t r = 1; r < replicas.size(); ++r) {
      EXPECT_EQ(cluster.server(replicas[r])->store().size(), reference.size())
          << "partition " << p << " replica " << r;
    }
  }
}

}  // namespace
}  // namespace carousel::test
