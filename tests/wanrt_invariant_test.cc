#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "obs/wanrt.h"
#include "test_util.h"

// The paper's latency claims as *countable* invariants: every test here
// asserts wide-area round trips via the WanrtLedger's causal hop counts,
// never wall-clock. A WANRT is two cross-DC hops on the longest causal
// message chain behind the client-observed decision, so these numbers are
// exact properties of the protocol's message pattern — independent of RTT
// matrices, jitter, and queueing — and hold identically on the EC2
// (Table 1) and uniform-5ms topologies.

namespace carousel::test {
namespace {

using core::CarouselOptions;
using core::Cluster;
using obs::TxnWanrt;
using obs::WanrtStats;

CarouselOptions WithMetrics(CarouselOptions options) {
  options.metrics.enabled = true;
  options.metrics.retain_per_txn = true;  // Keep sealed records for Find().
  return options;
}

/// RunTxn, but also reporting the TxnId so the ledger record can be
/// looked up afterwards.
struct TidOutcome {
  TxnId tid{};
  TxnOutcome out;
};

TidOutcome RunTxnTid(Cluster& cluster, int client_index, const KeyList& reads,
                     const WriteSet& writes,
                     SimTime timeout = 60 * kMicrosPerSecond) {
  auto outcome = std::make_shared<TxnOutcome>();
  core::CarouselClient* client = cluster.client(client_index);
  const TxnId tid = client->Begin();
  KeyList write_keys;
  for (const auto& [k, v] : writes) write_keys.push_back(k);

  client->ReadAndPrepare(
      tid, reads, write_keys,
      [&cluster, client, tid, writes, outcome](
          Status status, const core::CarouselClient::ReadResults& results) {
        outcome->read_done = true;
        outcome->read_status = status;
        outcome->reads = results;
        if (writes.empty()) {
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        if (!status.ok()) {
          outcome->commit_done = true;
          outcome->commit_status = status;
          return;
        }
        for (const auto& [k, v] : writes) client->Write(tid, k, v);
        client->Commit(tid, [outcome](Status commit_status) {
          outcome->commit_done = true;
          outcome->commit_status = commit_status;
        });
      });

  const SimTime deadline = cluster.sim().now() + timeout;
  while (!outcome->commit_done && cluster.sim().now() < deadline) {
    cluster.sim().RunFor(kMicrosPerMilli);
  }
  return TidOutcome{tid, *outcome};
}

/// The sealed ledger record of `tid`, which must exist (retain_per_txn).
const TxnWanrt& Record(Cluster& cluster, const TxnId& tid) {
  const TxnWanrt* rec = cluster.wanrt().Find(tid);
  EXPECT_NE(rec, nullptr) << "no ledger record for " << tid.ToString();
  static TxnWanrt empty;
  return rec == nullptr ? empty : *rec;
}

// ---------------------------------------------------------------------------
// Carousel Basic: 2FI + 2PC + consensus overlap commits a multi-partition
// read-write transaction in at most 2 WANRTs (paper §3).
// ---------------------------------------------------------------------------

void CheckBasicMultiPartition(Cluster& cluster) {
  const Key k0 = KeyInPartition(cluster, 0, "basic-a");
  const Key k1 = KeyInPartition(cluster, 1, "basic-b");
  TidOutcome r =
      RunTxnTid(cluster, 0, {k0, k1}, {{k0, "x"}, {k1, "y"}});
  ASSERT_TRUE(r.out.commit_done);
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;

  const TxnWanrt& rec = Record(cluster, r.tid);
  EXPECT_TRUE(rec.sealed);
  EXPECT_TRUE(rec.committed);
  EXPECT_FALSE(rec.read_only);
  // The decision chain: client -> participant leader (1 WAN hop), prepare
  // replication round trip (2 hops), slow decision to the local
  // coordinator (1 hop); the commit is externalized before decision
  // replication. Four hops = the paper's two WANRTs.
  EXPECT_LE(rec.decided_hops, 4u)
      << "Basic multi-partition commit exceeded 2 WANRTs";
  EXPECT_GT(rec.decided_hops, 0u);
  EXPECT_LE(rec.DecidedWanrts(), 2.0);
  // Basic has no fast path at all.
  EXPECT_FALSE(rec.SawFastVotes());
  EXPECT_FALSE(rec.Degraded());

  const WanrtStats& stats = cluster.wanrt().stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.fast_path_txns, 0u);
  EXPECT_LE(WanrtStats::MaxHops(stats.rw_decided_hops), 4u);
}

TEST(WanrtInvariantTest, Ec2BasicMultiPartitionWithinTwoWanrts) {
  // Client in Europe; partitions 0 and 1 lead from US-West / US-East, so
  // both participants are remote and the coordinator is Europe's home
  // partition leader.
  auto cluster = Ec2Cluster(WithMetrics(FastRaftOptions()), /*client_dc=*/2);
  CheckBasicMultiPartition(*cluster);
}

TEST(WanrtInvariantTest, UniformBasicMultiPartitionWithinTwoWanrts) {
  // Uniform 5 ms mesh (paper §6.4's local-cluster setting): the hop counts
  // must be identical to EC2 because only the message pattern matters.
  auto cluster = MakeSmallCluster(WithMetrics(FastRaftOptions()),
                                  /*seed=*/21, /*num_dcs=*/3,
                                  /*partitions=*/3);
  const Key k1 = KeyInPartition(*cluster, 1, "u-basic-a");
  const Key k2 = KeyInPartition(*cluster, 2, "u-basic-b");
  TidOutcome r = RunTxnTid(*cluster, 0, {k1, k2}, {{k1, "x"}, {k2, "y"}});
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;
  const TxnWanrt& rec = Record(*cluster, r.tid);
  EXPECT_TRUE(rec.committed);
  EXPECT_LE(rec.decided_hops, 4u);
  EXPECT_FALSE(rec.SawFastVotes());
}

// ---------------------------------------------------------------------------
// CPC fast path: with a local replica of every participant partition, a
// read-write transaction commits in 1 WANRT (paper §4.4.1).
// ---------------------------------------------------------------------------

void CheckCpcFastLrt(Cluster& cluster, PartitionId p0, PartitionId p1) {
  const Key k0 = KeyInPartition(cluster, p0, "fast-a");
  const Key k1 = KeyInPartition(cluster, p1, "fast-b");
  TidOutcome r = RunTxnTid(cluster, 0, {k0, k1}, {{k0, "x"}, {k1, "y"}});
  ASSERT_TRUE(r.out.commit_done);
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;

  const TxnWanrt& rec = Record(cluster, r.tid);
  EXPECT_TRUE(rec.committed);
  // Local reads cost zero WAN hops; the fast votes reach the local
  // coordinator in two (out to the remote replicas, votes back). One
  // WANRT, the paper's headline.
  EXPECT_LE(rec.decided_hops, 2u)
      << "CPC fast-path LRT exceeded 1 WANRT";
  EXPECT_LE(rec.DecidedWanrts(), 1.0);
  EXPECT_TRUE(rec.SawFastVotes());
  EXPECT_FALSE(rec.SawSlowPath())
      << "clean fast-path commit must not involve a slow-path decision";
  EXPECT_FALSE(rec.Degraded());

  const WanrtStats& stats = cluster.wanrt().stats();
  EXPECT_EQ(stats.fast_path_txns, 1u);
  EXPECT_EQ(stats.slow_path_txns, 0u);
  EXPECT_EQ(stats.degraded_txns, 0u);
}

TEST(WanrtInvariantTest, Ec2CpcFastPathOneWanrt) {
  // Client in US-West (DC0): partitions 3 (DCs 3,4,0) and 4 (DCs 4,0,1)
  // both keep a follower there, so this is an LRT. Geometry matters for a
  // *clean* fast commit: every fast vote must reach the coordinator before
  // the participant leader's majority-replicated slow decision does. From
  // US-West that holds for partitions 3 and 4 (votes by 161 ms, slow
  // decisions at 204/322 ms); from Europe it would not — partition 1's
  // Asia replica is so far that the slow path organically outruns the
  // fast quorum (which the CPC race is designed to tolerate).
  auto cluster = Ec2Cluster(WithMetrics(FastCpcOptions()), /*client_dc=*/0);
  CheckCpcFastLrt(*cluster, 3, 4);
}

TEST(WanrtInvariantTest, UniformCpcFastPathOneWanrt) {
  // In the 3-DC uniform mesh every DC hosts a replica of every partition,
  // so any transaction is an LRT.
  auto cluster = MakeSmallCluster(WithMetrics(FastCpcOptions()),
                                  /*seed=*/21, /*num_dcs=*/3,
                                  /*partitions=*/3);
  CheckCpcFastLrt(*cluster, 1, 2);
}

// ---------------------------------------------------------------------------
// CPC degradation: when the fast quorum cannot form, the slow path decides
// within 2 WANRTs, and the ledger records the fast->slow transition
// (paper §4.3).
// ---------------------------------------------------------------------------

void CheckDegradedSlowPath(Cluster& cluster, PartitionId part,
                           DcId blocked_replica_dc, NodeId coordinator) {
  // Sever one participant replica from the coordinator. Its fast vote is
  // lost, so the supermajority (all 3 of 3) can never form; Raft
  // replication inside the group is untouched, so the leader's replicated
  // slow-path decision still reaches the coordinator.
  const NodeId blocked = cluster.topology().ReplicaIn(part, blocked_replica_dc);
  ASSERT_NE(blocked, kInvalidNode);
  cluster.network().BlockPair(blocked, coordinator);

  const Key k = KeyInPartition(cluster, part, "degraded");
  TidOutcome r = RunTxnTid(cluster, 0, {k}, {{k, "x"}});
  ASSERT_TRUE(r.out.commit_done);
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;

  const TxnWanrt& rec = Record(cluster, r.tid);
  EXPECT_TRUE(rec.committed);
  // Fast votes arrived (from the unblocked replicas)...
  EXPECT_TRUE(rec.SawFastVotes());
  // ...but the decision came via the replicated slow path.
  EXPECT_TRUE(rec.SawSlowPath());
  EXPECT_TRUE(rec.Degraded());
  // Degraded CPC costs what Basic costs: prepare replication plus the
  // slow decision hop — at most 2 WANRTs, never more.
  EXPECT_LE(rec.decided_hops, 4u)
      << "degraded CPC commit exceeded 2 WANRTs";

  const WanrtStats& stats = cluster.wanrt().stats();
  EXPECT_EQ(stats.degraded_txns, 1u);
  EXPECT_EQ(stats.slow_path_txns, 1u);
  EXPECT_EQ(stats.fast_path_txns, 0u);
}

TEST(WanrtInvariantTest, Ec2CpcDegradedSlowPathWithinTwoWanrts) {
  // Client in Europe; the transaction touches partition 0 (leader
  // US-West), coordinated by Europe's home partition leader. Blocking the
  // US-East follower's path to the coordinator starves the fast quorum.
  auto cluster = Ec2Cluster(WithMetrics(FastCpcOptions()), /*client_dc=*/2);
  core::CarouselServer* coord = cluster->LeaderOf(2);
  ASSERT_NE(coord, nullptr);
  CheckDegradedSlowPath(*cluster, /*part=*/0, /*blocked_replica_dc=*/1,
                        coord->id());
}

TEST(WanrtInvariantTest, UniformCpcDegradedSlowPathWithinTwoWanrts) {
  auto cluster = MakeSmallCluster(WithMetrics(FastCpcOptions()),
                                  /*seed=*/21, /*num_dcs=*/3,
                                  /*partitions=*/3);
  // Client in DC0 writes partition 1 (leader DC1); coordinator is DC0's
  // home partition leader. Block the DC2 replica of partition 1.
  core::CarouselServer* coord = cluster->LeaderOf(0);
  ASSERT_NE(coord, nullptr);
  CheckDegradedSlowPath(*cluster, /*part=*/1, /*blocked_replica_dc=*/2,
                        coord->id());
}

// ---------------------------------------------------------------------------
// Read-only transactions: one WANRT to the farthest participant leader;
// zero when the leader is local (paper §3.2).
// ---------------------------------------------------------------------------

TEST(WanrtInvariantTest, Ec2ReadOnlyRemoteOneWanrt) {
  // Client in US-West; partition 2's replicas all live in Europe/Asia/
  // Australia, so the read must cross the WAN — once.
  auto cluster = Ec2Cluster(WithMetrics(FastCpcOptions()), /*client_dc=*/0);
  const Key k = KeyInPartition(*cluster, 2, "ro-remote");
  TidOutcome r = RunTxnTid(*cluster, 0, {k}, {});
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;

  const TxnWanrt& rec = Record(*cluster, r.tid);
  EXPECT_TRUE(rec.read_only);
  EXPECT_TRUE(rec.committed);
  EXPECT_LE(rec.decided_hops, 2u) << "read-only txn exceeded 1 WANRT";
  EXPECT_GT(rec.decided_hops, 0u) << "a remote read must cross the WAN";
  EXPECT_EQ(cluster->wanrt().stats().read_only, 1u);
  EXPECT_LE(WanrtStats::MaxHops(cluster->wanrt().stats().ro_decided_hops), 2u);
}

TEST(WanrtInvariantTest, UniformReadOnlyHomePartitionIsFree) {
  // A read served by the local partition leader never leaves the DC:
  // exactly zero WAN hops.
  auto cluster = MakeSmallCluster(WithMetrics(FastRaftOptions()),
                                  /*seed=*/21, /*num_dcs=*/3,
                                  /*partitions=*/3);
  const Key k = KeyInPartition(*cluster, 0, "ro-home");
  TidOutcome r = RunTxnTid(*cluster, 0, {k}, {});
  ASSERT_TRUE(r.out.commit_status.ok()) << r.out.commit_status;
  const TxnWanrt& rec = Record(*cluster, r.tid);
  EXPECT_TRUE(rec.read_only);
  EXPECT_EQ(rec.decided_hops, 0u);
}

// ---------------------------------------------------------------------------
// Ledger bookkeeping across a small mixed workload.
// ---------------------------------------------------------------------------

TEST(WanrtInvariantTest, LedgerAggregatesAreConsistent) {
  auto cluster = Ec2Cluster(WithMetrics(FastCpcOptions()), /*client_dc=*/2);
  const Key k0 = KeyInPartition(*cluster, 0, "agg-a");
  const Key k1 = KeyInPartition(*cluster, 1, "agg-b");

  for (int i = 0; i < 3; ++i) {
    TidOutcome rw = RunTxnTid(*cluster, 0, {k0}, {{k0, "v"}});
    ASSERT_TRUE(rw.out.commit_done);
    TidOutcome ro = RunTxnTid(*cluster, 0, {k0, k1}, {});
    ASSERT_TRUE(ro.out.commit_done);
  }

  const WanrtStats& stats = cluster->wanrt().stats();
  EXPECT_EQ(stats.sealed, 6u);
  EXPECT_EQ(stats.committed + stats.aborted, stats.sealed);
  EXPECT_EQ(stats.read_only, 3u);
  // Every committed txn landed in exactly one decided-hops histogram.
  uint64_t hist_total = 0;
  for (const auto& [hops, n] : stats.rw_decided_hops) hist_total += n;
  for (const auto& [hops, n] : stats.ro_decided_hops) hist_total += n;
  EXPECT_EQ(hist_total, stats.committed);
  // No in-flight transactions remain after everything sealed.
  EXPECT_EQ(cluster->wanrt().live_count(), 0u);

  // ResetStats() zeroes the aggregates for a fresh measurement window.
  cluster->wanrt().ResetStats();
  EXPECT_EQ(cluster->wanrt().stats().sealed, 0u);
}

}  // namespace
}  // namespace carousel::test
