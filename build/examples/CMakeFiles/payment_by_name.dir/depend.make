# Empty dependencies file for payment_by_name.
# This may be replaced when dependencies are built.
