file(REMOVE_RECURSE
  "CMakeFiles/payment_by_name.dir/payment_by_name.cpp.o"
  "CMakeFiles/payment_by_name.dir/payment_by_name.cpp.o.d"
  "payment_by_name"
  "payment_by_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payment_by_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
