file(REMOVE_RECURSE
  "libcarousel_common.a"
)
