file(REMOVE_RECURSE
  "CMakeFiles/carousel_common.dir/consistent_hash.cc.o"
  "CMakeFiles/carousel_common.dir/consistent_hash.cc.o.d"
  "CMakeFiles/carousel_common.dir/histogram.cc.o"
  "CMakeFiles/carousel_common.dir/histogram.cc.o.d"
  "CMakeFiles/carousel_common.dir/rng.cc.o"
  "CMakeFiles/carousel_common.dir/rng.cc.o.d"
  "CMakeFiles/carousel_common.dir/status.cc.o"
  "CMakeFiles/carousel_common.dir/status.cc.o.d"
  "CMakeFiles/carousel_common.dir/topology.cc.o"
  "CMakeFiles/carousel_common.dir/topology.cc.o.d"
  "CMakeFiles/carousel_common.dir/zipfian.cc.o"
  "CMakeFiles/carousel_common.dir/zipfian.cc.o.d"
  "libcarousel_common.a"
  "libcarousel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
