# Empty dependencies file for carousel_common.
# This may be replaced when dependencies are built.
