file(REMOVE_RECURSE
  "CMakeFiles/carousel_workload.dir/driver.cc.o"
  "CMakeFiles/carousel_workload.dir/driver.cc.o.d"
  "CMakeFiles/carousel_workload.dir/workload.cc.o"
  "CMakeFiles/carousel_workload.dir/workload.cc.o.d"
  "libcarousel_workload.a"
  "libcarousel_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
