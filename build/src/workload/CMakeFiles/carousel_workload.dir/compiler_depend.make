# Empty compiler generated dependencies file for carousel_workload.
# This may be replaced when dependencies are built.
