file(REMOVE_RECURSE
  "libcarousel_workload.a"
)
