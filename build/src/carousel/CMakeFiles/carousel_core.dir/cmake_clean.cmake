file(REMOVE_RECURSE
  "CMakeFiles/carousel_core.dir/client.cc.o"
  "CMakeFiles/carousel_core.dir/client.cc.o.d"
  "CMakeFiles/carousel_core.dir/cluster.cc.o"
  "CMakeFiles/carousel_core.dir/cluster.cc.o.d"
  "CMakeFiles/carousel_core.dir/recon.cc.o"
  "CMakeFiles/carousel_core.dir/recon.cc.o.d"
  "CMakeFiles/carousel_core.dir/server.cc.o"
  "CMakeFiles/carousel_core.dir/server.cc.o.d"
  "libcarousel_core.a"
  "libcarousel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
