
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carousel/client.cc" "src/carousel/CMakeFiles/carousel_core.dir/client.cc.o" "gcc" "src/carousel/CMakeFiles/carousel_core.dir/client.cc.o.d"
  "/root/repo/src/carousel/cluster.cc" "src/carousel/CMakeFiles/carousel_core.dir/cluster.cc.o" "gcc" "src/carousel/CMakeFiles/carousel_core.dir/cluster.cc.o.d"
  "/root/repo/src/carousel/recon.cc" "src/carousel/CMakeFiles/carousel_core.dir/recon.cc.o" "gcc" "src/carousel/CMakeFiles/carousel_core.dir/recon.cc.o.d"
  "/root/repo/src/carousel/server.cc" "src/carousel/CMakeFiles/carousel_core.dir/server.cc.o" "gcc" "src/carousel/CMakeFiles/carousel_core.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carousel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/carousel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/carousel_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/carousel_raft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
