# Empty dependencies file for carousel_core.
# This may be replaced when dependencies are built.
