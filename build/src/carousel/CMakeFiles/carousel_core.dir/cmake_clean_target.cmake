file(REMOVE_RECURSE
  "libcarousel_core.a"
)
