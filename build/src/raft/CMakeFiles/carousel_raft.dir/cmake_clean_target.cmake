file(REMOVE_RECURSE
  "libcarousel_raft.a"
)
