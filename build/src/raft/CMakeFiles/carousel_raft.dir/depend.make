# Empty dependencies file for carousel_raft.
# This may be replaced when dependencies are built.
